// Unit tests for the proof subsystem proper: DRAT serialization in
// both formats, format autodetection, parser error paths, and the
// independent DratChecker (RUP, RAT, backward marking, deletion
// handling, adversarial mutations).

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "proof/certify.h"
#include "proof/checker.h"
#include "proof/drat.h"
#include "proof/proof_log.h"

namespace arbiter::proof {
namespace {

using sat::Lit;

Lit P(int v) { return Lit::Pos(v); }
Lit N(int v) { return Lit::Neg(v); }

std::vector<ProofStep> Steps(std::vector<ProofStep> s) { return s; }

ProofStep Add(std::vector<Lit> lits) { return ProofStep{false, std::move(lits)}; }
ProofStep Del(std::vector<Lit> lits) { return ProofStep{true, std::move(lits)}; }

// ---------------------------------------------------------------------------
// DRAT serialization
// ---------------------------------------------------------------------------

TEST(DratFormatTest, AsciiRendering) {
  const std::vector<ProofStep> steps = {
      Add({P(0)}),
      Del({P(0), N(1)}),
      Add({}),
  };
  EXPECT_EQ(ToDratAscii(steps), "1 0\nd 1 -2 0\n0\n");
}

TEST(DratFormatTest, AsciiRoundTrip) {
  const std::vector<ProofStep> steps = {
      Add({P(4), N(2), P(0)}),
      Del({N(0)}),
      Add({}),
  };
  const auto parsed = ParseDratAscii(ToDratAscii(steps));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(*parsed, steps);
}

TEST(DratFormatTest, AsciiToleratesCommentsAndWhitespace) {
  const auto parsed =
      ParseDratAscii("c a comment\n  1   -2 0\nc more\nd 1 0\n");
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), 2u);
  EXPECT_EQ((*parsed)[0], Add({P(0), N(1)}));
  EXPECT_EQ((*parsed)[1], Del({P(0)}));
}

TEST(DratFormatTest, AsciiRejectsMalformedInput) {
  EXPECT_FALSE(ParseDratAscii("1 x 0\n").ok());
  EXPECT_FALSE(ParseDratAscii("1 - 2 0\n").ok());
  EXPECT_FALSE(ParseDratAscii("1 2\n").ok());  // unterminated step
}

TEST(DratFormatTest, BinaryRoundTrip) {
  const std::vector<ProofStep> steps = {
      Add({P(0), N(63), P(200)}),  // multi-byte varints
      Del({P(0), N(63), P(200)}),
      Add({}),
  };
  const std::string bytes = ToDratBinary(steps);
  const auto parsed = ParseDratBinary(bytes);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(*parsed, steps);
}

TEST(DratFormatTest, BinaryRejectsTruncationAndBadTags) {
  const std::string bytes = ToDratBinary({Add({P(0), N(1)})});
  EXPECT_FALSE(ParseDratBinary(bytes.substr(0, bytes.size() - 1)).ok());
  EXPECT_FALSE(ParseDratBinary("x\x02\x00").ok());
}

TEST(DratFormatTest, AutodetectsFormat) {
  const std::vector<ProofStep> steps = {Add({P(0), N(1)}), Add({})};
  EXPECT_FALSE(DetectDratBinary(ToDratAscii(steps)));
  EXPECT_TRUE(DetectDratBinary(ToDratBinary(steps)));
  // Deletion-first proofs are the ambiguous case ('d' leads both).
  const std::vector<ProofStep> dfirst = {Del({P(0)}), Add({})};
  EXPECT_FALSE(DetectDratBinary(ToDratAscii(dfirst)));
  EXPECT_TRUE(DetectDratBinary(ToDratBinary(dfirst)));
  const auto via_auto = ParseDrat(ToDratBinary(steps));
  ASSERT_TRUE(via_auto.ok());
  EXPECT_EQ(*via_auto, steps);
}

TEST(DratFormatTest, WriterMatchesBatchSerialization) {
  const std::vector<ProofStep> steps = {Add({P(1), P(2)}), Del({P(1), P(2)}),
                                        Add({})};
  for (const bool binary : {false, true}) {
    DratWriter w(binary);
    for (const ProofStep& s : steps) {
      if (s.is_delete) {
        w.OnDelete(s.lits);
      } else {
        w.OnAdd(s.lits);
      }
    }
    EXPECT_EQ(w.data(), binary ? ToDratBinary(steps) : ToDratAscii(steps));
  }
}

TEST(ProofRecorderTest, RecordsAndDetectsEmptyClause) {
  ProofRecorder rec;
  rec.OnAdd({P(0)});
  rec.OnDelete({P(0), P(1)});
  EXPECT_FALSE(rec.HasEmptyClause());
  rec.OnAdd({});
  EXPECT_TRUE(rec.HasEmptyClause());
  ASSERT_EQ(rec.steps().size(), 3u);
  EXPECT_TRUE(rec.steps()[1].is_delete);
}

// ---------------------------------------------------------------------------
// DratChecker
// ---------------------------------------------------------------------------

// The running example: (a|b)(a|~b)(~a|c)(~a|~c), refuted by deriving
// the units a and c.  Variables a=0, b=1, c=2.
class PigeonholeFreeChecker : public ::testing::Test {
 protected:
  void LoadFormula(DratChecker* checker) {
    checker->AddFormulaClause({P(0), P(1)});
    checker->AddFormulaClause({P(0), N(1)});
    checker->AddFormulaClause({N(0), P(2)});
    checker->AddFormulaClause({N(0), N(2)});
  }
  std::vector<ProofStep> ValidProof() {
    return Steps({
        Add({P(0)}),
        Del({P(0), P(1)}),
        Add({P(2)}),
        Del({N(0), P(2)}),
        Add({}),
    });
  }
};

TEST_F(PigeonholeFreeChecker, AcceptsValidProof) {
  DratChecker checker;
  LoadFormula(&checker);
  const DratCheckResult result = checker.Check(ValidProof());
  EXPECT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.stats.additions, 3u);
  EXPECT_EQ(result.stats.deletions, 2u);
  EXPECT_EQ(result.stats.unmatched_deletions, 0u);
}

TEST_F(PigeonholeFreeChecker, AcceptsInBothCheckingModes) {
  for (const bool backward : {true, false}) {
    DratChecker checker;
    LoadFormula(&checker);
    DratCheckOptions options;
    options.backward = backward;
    const DratCheckResult result = checker.Check(ValidProof(), options);
    EXPECT_TRUE(result.ok) << "backward=" << backward << ": " << result.error;
  }
}

TEST_F(PigeonholeFreeChecker, ReportsFormulaCore) {
  DratChecker checker;
  LoadFormula(&checker);
  const DratCheckResult result = checker.Check(ValidProof());
  ASSERT_TRUE(result.ok);
  // All four clauses are needed to refute this formula.
  EXPECT_EQ(result.core, (std::vector<size_t>{0, 1, 2, 3}));
}

TEST_F(PigeonholeFreeChecker, RejectsDroppedStep) {
  // Dropping the derivation of `a` makes `c` underivable.
  auto proof = ValidProof();
  proof.erase(proof.begin());
  DratChecker checker;
  LoadFormula(&checker);
  const DratCheckResult result = checker.Check(proof);
  EXPECT_FALSE(result.ok);
  // Depending on which later step the gap breaks, the checker reports
  // either the underivable lemma or the underivable empty clause.
  EXPECT_NE(result.error.find("RUP"), std::string::npos) << result.error;
}

TEST_F(PigeonholeFreeChecker, RejectsFlippedLiteral) {
  auto proof = ValidProof();
  proof[0].lits[0] = N(0);  // claim ~a instead of a
  DratChecker checker;
  LoadFormula(&checker);
  EXPECT_FALSE(checker.Check(proof).ok);
}

TEST_F(PigeonholeFreeChecker, RejectsReorderedDeletion) {
  // Moving the deletion of (a|b) after... rather: deleting (~a|c)
  // *before* the addition of c removes c's antecedent.
  auto proof = ValidProof();
  std::swap(proof[2], proof[3]);  // del (~a|c) now precedes add (c)
  DratChecker checker;
  LoadFormula(&checker);
  const DratCheckResult result = checker.Check(proof);
  EXPECT_FALSE(result.ok);
}

TEST_F(PigeonholeFreeChecker, TruncatingOnlyTheEmptyClauseStillCloses) {
  // Dropping just the trailing empty clause is NOT a refutation-losing
  // mutation: the remaining steps still propagate to conflict, and the
  // checker (like drat-trim) closes the refutation implicitly.
  auto proof = ValidProof();
  proof.pop_back();
  DratChecker checker;
  LoadFormula(&checker);
  EXPECT_TRUE(checker.Check(proof).ok);
}

TEST(DratCheckerMutationTest, RejectsTruncatedProof) {
  // Two genuine lemmas are needed here: after {a} alone the four
  // ternary clauses have no units, so a proof cut before {c} loses
  // the refutation (unlike truncating only the final empty clause,
  // which the implicit closure forgives).
  DratChecker checker;
  const auto a = P(0), b = P(1), c = P(2), d = P(3);
  checker.AddFormulaClause({a, b});
  checker.AddFormulaClause({a, ~b});
  checker.AddFormulaClause({~a, c, d});
  checker.AddFormulaClause({~a, c, ~d});
  checker.AddFormulaClause({~a, ~c, d});
  checker.AddFormulaClause({~a, ~c, ~d});
  const std::vector<ProofStep> full = {Add({a}), Add({c}), Add({})};
  EXPECT_TRUE(checker.Check(full).ok);
  const std::vector<ProofStep> truncated = {Add({a})};
  const DratCheckResult result = checker.Check(truncated);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("does not derive"), std::string::npos)
      << result.error;
}

TEST_F(PigeonholeFreeChecker, RejectsProofForSatisfiableFormula) {
  DratChecker checker;
  checker.AddFormulaClause({P(0), P(1)});
  checker.AddFormulaClause({N(0), P(1)});
  EXPECT_FALSE(checker.Check(Steps({Add({})})).ok);
  EXPECT_FALSE(checker.Check(Steps({Add({P(1)}), Add({})})).ok);
}

TEST_F(PigeonholeFreeChecker, StrictModeRejectsUnmatchedDeletion) {
  auto proof = ValidProof();
  proof.insert(proof.begin(), Del({P(5), P(6)}));  // never added
  DratChecker checker;
  LoadFormula(&checker);
  // Lenient (default): tolerated and counted.
  const DratCheckResult lenient = checker.Check(proof);
  EXPECT_TRUE(lenient.ok) << lenient.error;
  EXPECT_EQ(lenient.stats.unmatched_deletions, 1u);
  // Strict: rejected.
  DratCheckOptions options;
  options.strict_deletions = true;
  const DratCheckResult strict = checker.Check(proof, options);
  EXPECT_FALSE(strict.ok);
  EXPECT_NE(strict.error.find("unmatched deletion"), std::string::npos);
}

TEST_F(PigeonholeFreeChecker, CheckerIsReusable) {
  DratChecker checker;
  LoadFormula(&checker);
  EXPECT_TRUE(checker.Check(ValidProof()).ok);
  auto broken = ValidProof();
  broken.erase(broken.begin());
  EXPECT_FALSE(checker.Check(broken).ok);
  EXPECT_TRUE(checker.Check(ValidProof()).ok);
}

TEST(DratCheckerTest, ProofWithoutExplicitEmptyStepStillCloses) {
  // Adding the two opposing units makes the database propagate to a
  // conflict even though no explicit `0` step follows.
  DratChecker checker;
  checker.AddFormulaClause({P(0), P(1)});
  checker.AddFormulaClause({P(0), N(1)});
  checker.AddFormulaClause({N(0), P(1)});
  checker.AddFormulaClause({N(0), N(1)});
  const auto proof = Steps({Add({P(0)}), Add({N(0)})});
  const DratCheckResult result = checker.Check(proof);
  EXPECT_TRUE(result.ok) << result.error;
}

TEST(DratCheckerTest, EmptyFormulaClauseIsTriviallyUnsat) {
  DratChecker checker;
  checker.AddFormulaClause({P(0)});
  checker.AddFormulaClause({});
  const DratCheckResult result = checker.Check({});
  EXPECT_TRUE(result.ok);
  EXPECT_EQ(result.core, (std::vector<size_t>{1}));
}

TEST(DratCheckerTest, SkipsUnmarkedLemmasInBackwardMode) {
  DratChecker checker;
  checker.AddFormulaClause({P(0)});
  checker.AddFormulaClause({N(0), P(1)});
  checker.AddFormulaClause({N(1)});
  // The (2|3) lemma is valid-but-noise (RAT on 2: no clause contains
  // ~2, vacuously fine) and never used; backward marking skips it.
  const auto proof = Steps({Add({P(2), P(3)}), Add({P(1)}), Add({})});
  const DratCheckResult result = checker.Check(proof);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_GE(result.stats.skipped, 1u);
}

TEST(DratCheckerTest, RupHookAgreesWithTextbookExamples) {
  DratChecker checker;
  checker.AddFormulaClause({P(0), P(1)});
  checker.AddFormulaClause({N(1), P(2)});
  EXPECT_TRUE(checker.IsRupForTesting({P(0), P(2)}));   // resolvent
  EXPECT_TRUE(checker.IsRupForTesting({P(0), P(1), P(5)}));  // weakening
  EXPECT_FALSE(checker.IsRupForTesting({P(0)}));
  EXPECT_TRUE(checker.IsRupForTesting({P(3), N(3)}));  // tautology
}

TEST(DratCheckerTest, RatButNotRup) {
  // F = {(~a | b)}.  C = (a | ~b) is not RUP (assuming ~a, b yields no
  // conflict) but is RAT on pivot a: the only resolvent, with (~a|b),
  // is (b | ~b) — a tautology.
  DratChecker checker;
  checker.AddFormulaClause({N(0), P(1)});
  EXPECT_FALSE(checker.IsRupForTesting({P(0), N(1)}));
  EXPECT_TRUE(checker.IsRatForTesting({P(0), N(1)}));
}

TEST(DratCheckerTest, RatChecksFailingResolvent) {
  // F = {(~a | b), (~a | c), (~b)}.  C = (a) resolves with both ~a
  // clauses; the resolvent (b) is refuted by (~b)... i.e. (b) is NOT
  // RUP-derivable as needed — wait: RAT requires each resolvent to BE
  // RUP.  Resolvent (b): assume ~b, propagate (~b) — no conflict from
  // the rest, so (b) is not RUP and RAT fails.
  DratChecker checker;
  checker.AddFormulaClause({N(0), P(1)});
  checker.AddFormulaClause({N(0), P(2)});
  EXPECT_FALSE(checker.IsRatForTesting({P(0)}));
}

TEST(DratCheckerTest, RatStepInsideProofIsAccepted) {
  // A unit over a fresh variable (nothing mentions ~d) is the classic
  // RAT-but-not-RUP step: assuming ~d propagates to no conflict, but
  // the pivot d has no resolution partners, so RAT holds vacuously —
  // exactly the shape BVE-style reasoning produces.  Forward mode
  // verifies every addition, so the RAT fallback genuinely runs
  // (backward marking would just skip the unused lemma).
  DratChecker checker;
  checker.AddFormulaClause({P(0), P(1)});
  checker.AddFormulaClause({P(0), N(1)});
  checker.AddFormulaClause({N(0), P(2)});
  checker.AddFormulaClause({N(0), N(2)});
  const auto proof =
      Steps({Add({P(9)}), Add({P(0)}), Add({P(2)}), Add({})});
  DratCheckOptions options;
  options.backward = false;
  const DratCheckResult result = checker.Check(proof, options);
  EXPECT_TRUE(result.ok) << result.error;
  EXPECT_GE(result.stats.rat_checks, 1u);
}

// Regression for a finding from the thread-safety annotation pass
// (PR: capability locks + -Wthread-safety): the certification
// override globals were plain int/bool, but CertificationEnabled() is
// read from server sessions and pool workers while a test or an
// embedding process toggles the override.  They are atomics now; under
// the tsan CI job this test is a live data-race detector, elsewhere it
// pins the contract that concurrent toggle/query is allowed.
TEST(CertifyToggleTest, ConcurrentToggleAndQueryIsSafe) {
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> queries{0};
  std::vector<std::thread> readers;
  readers.reserve(4);
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        (void)CertificationEnabled();
        queries.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // Keep toggling until every reader has demonstrably run, so the
  // toggle and query sides genuinely overlap (a fixed iteration count
  // can finish before the readers are even scheduled).
  uint64_t i = 0;
  while (i < 1000 || queries.load(std::memory_order_relaxed) < 4) {
    SetCertificationEnabled(i % 2 == 0);
    if (i % 97 == 0) ClearCertificationOverride();
    ++i;
  }
  ClearCertificationOverride();  // leave the pristine env-driven state
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : readers) t.join();
  EXPECT_GT(queries.load(), 0u);
}

}  // namespace
}  // namespace arbiter::proof
