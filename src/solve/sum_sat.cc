#include "solve/sum_sat.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "enc/tseitin.h"
#include "sat/count.h"
#include "solve/sat_bridge.h"
#include "util/logging.h"

namespace arbiter::solve {

using sat::Lit;

std::string Int128ToString(Int128 value) {
  if (value == 0) return "0";
  const bool negative = value < 0;
  // Negate via the unsigned type to survive Int128's minimum value.
  unsigned __int128 magnitude =
      negative ? static_cast<unsigned __int128>(-(value + 1)) + 1
               : static_cast<unsigned __int128>(value);
  std::string out;
  while (magnitude != 0) {
    out.push_back(static_cast<char>('0' + static_cast<int>(magnitude % 10)));
    magnitude /= 10;
  }
  if (negative) out.push_back('-');
  std::reverse(out.begin(), out.end());
  return out;
}

namespace {

/// DPLL branch-and-bound minimizing a linear objective over the inputs.
///
/// The admissible bound at any node is
///   obj (true inputs so far)  +  Σ min(0, w_v) over unassigned inputs,
/// maintained incrementally.  Pruning is strict (lb > best) when ties
/// must be collected, non-strict (lb >= best) in value-only mode.
struct LinearBnB {
  const std::vector<std::vector<Lit>>& clauses;
  const std::vector<Int128>& weights;
  const int num_inputs;
  const int64_t max_models;
  const bool collect;

  std::vector<int8_t> value;  // per var: -1 unassigned, else 0/1
  std::vector<int> trail;
  std::vector<int> input_order;  // inputs by |weight| descending
  Int128 obj = 0;
  Int128 neg_slack = 0;  // Σ min(0, w) over unassigned inputs

  bool found = false;
  Int128 best = 0;
  std::vector<uint64_t> models;
  bool truncated = false;
  uint64_t steps_left;
  uint64_t decisions = 0;
  bool aborted = false;

  LinearBnB(const sat::CnfFormula& cnf, int inputs,
            const std::vector<Int128>& w, int64_t cap, uint64_t budget)
      : clauses(cnf.clauses()),
        weights(w),
        num_inputs(inputs),
        max_models(cap),
        collect(inputs <= 63 && cap > 0),
        value(cnf.NumVars(), -1),
        steps_left(budget) {
    input_order.reserve(num_inputs);
    for (int v = 0; v < num_inputs; ++v) {
      input_order.push_back(v);
      if (weights[v] < 0) neg_slack += weights[v];
    }
    std::stable_sort(input_order.begin(), input_order.end(),
                     [&](int a, int b) {
                       Int128 wa = weights[a] < 0 ? -weights[a] : weights[a];
                       Int128 wb = weights[b] < 0 ? -weights[b] : weights[b];
                       return wa > wb;
                     });
  }

  bool LitTrue(Lit lit) const {
    return (value[lit.var()] == 1) != lit.negated();
  }

  void Assign(int var, bool to) {
    value[var] = to ? 1 : 0;
    trail.push_back(var);
    if (var < num_inputs) {
      if (weights[var] < 0) neg_slack -= weights[var];
      if (to) obj += weights[var];
    }
  }

  void UndoTo(size_t mark) {
    while (trail.size() > mark) {
      int var = trail.back();
      trail.pop_back();
      if (var < num_inputs) {
        if (value[var] == 1) obj -= weights[var];
        if (weights[var] < 0) neg_slack += weights[var];
      }
      value[var] = -1;
    }
  }

  /// Unit propagation by repeated clause scan.  Returns false on
  /// conflict (a clause with every literal false).
  bool Propagate() {
    bool changed = true;
    while (changed) {
      changed = false;
      for (const auto& clause : clauses) {
        Lit unit(0, false);
        int unassigned = 0;
        bool satisfied = false;
        for (Lit lit : clause) {
          int8_t v = value[lit.var()];
          if (v < 0) {
            if (++unassigned >= 2) break;  // neither unit nor conflict
            unit = lit;
          } else if ((v == 1) != lit.negated()) {
            satisfied = true;
            break;
          }
        }
        if (satisfied || unassigned >= 2) continue;
        if (unassigned == 0) return false;
        Assign(unit.var(), !unit.negated());
        changed = true;
      }
    }
    return true;
  }

  bool AllClausesSatisfied() const {
    for (const auto& clause : clauses) {
      bool satisfied = false;
      for (Lit lit : clause) {
        if (value[lit.var()] >= 0 && LitTrue(lit)) {
          satisfied = true;
          break;
        }
      }
      if (!satisfied) return false;
    }
    return true;
  }

  int PickBranchVar() const {
    for (int v : input_order) {
      if (value[v] < 0) return v;
    }
    for (int v = num_inputs; v < static_cast<int>(value.size()); ++v) {
      if (value[v] < 0) return v;
    }
    return -1;
  }

  uint64_t InputMask() const {
    uint64_t mask = 0;
    for (int v = 0; v < num_inputs; ++v) {
      if (value[v] == 1) mask |= 1ULL << v;
    }
    return mask;
  }

  void RecordValue(Int128 candidate) {
    if (!found || candidate < best) {
      found = true;
      best = candidate;
    }
  }

  void RecordModel() {
    if (!found || obj < best) {
      found = true;
      best = obj;
      models.clear();
      truncated = false;
    } else if (obj > best) {
      return;
    }
    if (static_cast<int64_t>(models.size()) >= max_models) {
      truncated = true;
      return;
    }
    models.push_back(InputMask());
  }

  void Search() {
    if (aborted) return;
    const size_t mark = trail.size();
    if (!Propagate()) {
      UndoTo(mark);
      return;
    }
    if (found) {
      const Int128 lb = obj + neg_slack;
      const bool prune = collect ? (lb > best) : (lb >= best);
      if (prune) {
        UndoTo(mark);
        return;
      }
    }
    if (AllClausesSatisfied()) {
      bool all_inputs_assigned = true;
      for (int v = 0; v < num_inputs; ++v) {
        if (value[v] < 0) {
          all_inputs_assigned = false;
          break;
        }
      }
      if (!collect) {
        // Every remaining input is free; the best completion sets
        // exactly the negative-weight ones.
        RecordValue(obj + neg_slack);
        UndoTo(mark);
        return;
      }
      if (all_inputs_assigned) {
        RecordModel();
        UndoTo(mark);
        return;
      }
      // collect mode with free inputs: fall through and branch them so
      // every optimal projection is materialized.
    }
    const int var = PickBranchVar();
    if (var < 0) {
      // All variables assigned without conflict: a full model.
      if (collect) {
        RecordModel();
      } else {
        RecordValue(obj);
      }
      UndoTo(mark);
      return;
    }
    if (steps_left == 0) {
      aborted = true;
      UndoTo(mark);
      return;
    }
    --steps_left;
    ++decisions;
    // Try the objective-friendly polarity first so the incumbent drops
    // fast and the bound starts pruning early.
    const bool prefer_true = var < num_inputs && weights[var] < 0;
    for (int attempt = 0; attempt < 2 && !aborted; ++attempt) {
      const size_t branch_mark = trail.size();
      Assign(var, attempt == 0 ? prefer_true : !prefer_true);
      Search();
      UndoTo(branch_mark);
    }
    UndoTo(mark);
  }
};

}  // namespace

LinearMinResult MinimizeLinearOverCnf(const sat::CnfFormula& cnf,
                                      int num_inputs,
                                      const std::vector<Int128>& weights,
                                      int64_t max_models,
                                      uint64_t max_decisions) {
  ARBITER_CHECK(num_inputs >= 0 && num_inputs <= cnf.NumVars());
  ARBITER_CHECK(static_cast<int>(weights.size()) == num_inputs);
  LinearMinResult result;
  if (cnf.contradiction()) return result;

  LinearBnB bnb(cnf, num_inputs, weights, max_models, max_decisions);
  bnb.Search();
  result.decisions = bnb.decisions;
  if (bnb.aborted) {
    result.completed = false;
    return result;
  }
  result.sat = bnb.found;
  if (!bnb.found) return result;
  result.optimal = bnb.best;
  result.truncated = bnb.truncated;
  std::sort(bnb.models.begin(), bnb.models.end());
  bnb.models.erase(std::unique(bnb.models.begin(), bnb.models.end()),
                   bnb.models.end());
  result.models = std::move(bnb.models);
  return result;
}

const sat::ColumnCountResult* ColumnCountCache::Find(const Formula& psi,
                                                     int num_terms) {
  auto it = map_.find(psi.Hash());
  if (it != map_.end()) {
    for (const Entry& entry : it->second) {
      if (entry.num_terms == num_terms && entry.psi.Equals(psi)) {
        ++hits_;
        return &entry.counts;
      }
    }
  }
  ++misses_;
  return nullptr;
}

void ColumnCountCache::Insert(const Formula& psi, int num_terms,
                              sat::ColumnCountResult counts) {
  map_[psi.Hash()].push_back(Entry{psi, num_terms, std::move(counts)});
}

SumFittingResult SatSumFitting(const Formula& psi, const Formula& mu,
                               int num_terms, int64_t max_models,
                               const std::vector<int64_t>& metric,
                               ColumnCountCache* cache) {
  ARBITER_CHECK(num_terms >= 1 && num_terms <= 120);
  SumFittingResult result;

  // μ first: unsatisfiable μ makes the fitting empty regardless of ψ.
  // The CDCL check only covers vocabularies the solver handles; past
  // that the optimizer's own unsat answer is authoritative.
  if (num_terms <= 63 && !SatIsSatisfiable(mu, num_terms)) {
    result.mu_unsat = true;
    return result;
  }

  // One counting pass over ψ yields C = |Mod(ψ)| and the column
  // tallies o_b, collapsing sdist into a linear objective over I.
  sat::ColumnCountResult counts;
  const sat::ColumnCountResult* cached =
      cache != nullptr ? cache->Find(psi, num_terms) : nullptr;
  if (cached != nullptr) {
    counts = *cached;
  } else {
    sat::CnfFormula psi_cnf;
    enc::TseitinEncoder psi_encoder(&psi_cnf);
    psi_encoder.ReserveInputVars(num_terms);
    psi_encoder.Assert(psi);
    counts = sat::CountColumns(psi_cnf, num_terms);
    if (cache != nullptr && counts.completed) {
      cache->Insert(psi, num_terms, counts);
    }
  }
  result.count_components = counts.components_solved;
  result.count_cache_hits = counts.cache_hits;
  if (!counts.completed) {
    result.completed = false;
    return result;
  }
  if (counts.total == 0) {
    result.psi_unsat = true;  // (A2): Σ-fitting of unsat ψ is empty
    return result;
  }

  const Int128 c = static_cast<Int128>(counts.total);
  Int128 constant_part = 0;  // Σ_b m_b·o_b
  std::vector<Int128> weights(num_terms);
  for (int b = 0; b < num_terms; ++b) {
    int64_t m = b < static_cast<int>(metric.size()) ? metric[b] : 1;
    ARBITER_CHECK_MSG(m >= 0, "metric weights must be non-negative");
    const Int128 ones = static_cast<Int128>(counts.ones[b]);
    constant_part += static_cast<Int128>(m) * ones;
    weights[b] = static_cast<Int128>(m) * (c - 2 * ones);
  }

  sat::CnfFormula mu_cnf;
  enc::TseitinEncoder mu_encoder(&mu_cnf);
  mu_encoder.ReserveInputVars(num_terms);
  mu_encoder.Assert(mu);
  LinearMinResult optimum = MinimizeLinearOverCnf(
      mu_cnf, num_terms, weights, num_terms <= 63 ? max_models : 0);
  if (!optimum.completed) {
    result.completed = false;
    return result;
  }
  if (!optimum.sat) {
    result.mu_unsat = true;
    return result;
  }
  result.optimal_decimal = Int128ToString(constant_part + optimum.optimal);
  result.models = std::move(optimum.models);
  result.truncated = optimum.truncated;
  return result;
}

}  // namespace arbiter::solve
