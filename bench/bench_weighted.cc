// Weighted operator benchmarks (Section 4): the ⊔/⊓ algebra, the wdist
// pre-order, weighted model-fitting and weighted arbitration.

#include <benchmark/benchmark.h>

#include "change/weighted.h"
#include "util/random.h"

namespace {

using namespace arbiter;

WeightedKnowledgeBase RandomWkb(Rng* rng, int n, double density) {
  WeightedKnowledgeBase kb(n);
  for (uint64_t m = 0; m < (1ULL << n); ++m) {
    if (rng->NextBool(density)) kb.SetWeight(m, 1 + rng->NextBelow(20));
  }
  if (!kb.IsSatisfiable()) kb.SetWeight(0, 1.0);
  return kb;
}

void BM_WeightedOr(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(n);
  WeightedKnowledgeBase a = RandomWkb(&rng, n, 0.4);
  WeightedKnowledgeBase b = RandomWkb(&rng, n, 0.4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Or(b));
  }
  state.SetItemsProcessed(state.iterations() * (1LL << n));
}
BENCHMARK(BM_WeightedOr)->Arg(10)->Arg(14)->Arg(18);

void BM_WeightedAnd(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(n + 1);
  WeightedKnowledgeBase a = RandomWkb(&rng, n, 0.4);
  WeightedKnowledgeBase b = RandomWkb(&rng, n, 0.4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.And(b));
  }
}
BENCHMARK(BM_WeightedAnd)->Arg(10)->Arg(14)->Arg(18);

void BM_WdistPreorder(benchmark::State& state) {
  // Materializing ≤ψ̃ costs |space| wdist evaluations, each O(|support|).
  const int n = static_cast<int>(state.range(0));
  Rng rng(n + 2);
  WeightedKnowledgeBase psi = RandomWkb(&rng, n, 0.3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(psi.WdistPreorder());
  }
}
BENCHMARK(BM_WdistPreorder)->Arg(8)->Arg(10)->Arg(12);

void BM_WdistFitting(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(n + 3);
  WeightedKnowledgeBase psi = RandomWkb(&rng, n, 0.3);
  WeightedKnowledgeBase mu = RandomWkb(&rng, n, 0.3);
  WdistFitting op;
  for (auto _ : state) {
    benchmark::DoNotOptimize(op.Change(psi, mu));
  }
}
BENCHMARK(BM_WdistFitting)->Arg(8)->Arg(10)->Arg(12);

void BM_WeightedArbitration(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(n + 4);
  WeightedKnowledgeBase a = RandomWkb(&rng, n, 0.3);
  WeightedKnowledgeBase b = RandomWkb(&rng, n, 0.3);
  WeightedArbitration op;
  for (auto _ : state) {
    benchmark::DoNotOptimize(op.Change(a, b));
  }
}
BENCHMARK(BM_WeightedArbitration)->Arg(8)->Arg(10)->Arg(12);

}  // namespace
