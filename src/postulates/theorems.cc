#include "postulates/theorems.h"

namespace arbiter {

namespace {

/// Checks one impossibility claim ("no operator satisfies all of
/// `axioms`") against one operator.
DisjointnessRow CheckClaim(std::shared_ptr<const TheoryChangeOperator> op,
                           const std::vector<Postulate>& axioms,
                           int num_terms) {
  PostulateChecker checker(op, num_terms);
  DisjointnessRow row;
  row.op_name = op->name();
  for (Postulate p : axioms) {
    auto cex = checker.CheckExhaustive(p);
    if (cex.has_value()) {
      row.violated_premises.push_back(PostulateName(p));
      if (row.detail.empty()) row.detail = cex->Describe();
    } else {
      row.satisfied_premises.push_back(PostulateName(p));
    }
  }
  row.conclusion_blocked = !row.violated_premises.empty();
  return row;
}

/// Renders a model-set as bit strings.
std::string Show(const ModelSet& s) { return s.ToString(); }

}  // namespace

Theorem32Report VerifyTheorem32(
    const std::vector<std::shared_ptr<const TheoryChangeOperator>>& ops,
    int num_terms) {
  Theorem32Report report;
  const std::vector<Postulate> claim1 = {Postulate::kR2, Postulate::kA8};
  const std::vector<Postulate> claim2 = {Postulate::kU2, Postulate::kU8,
                                         Postulate::kA8};
  const std::vector<Postulate> claim3 = {Postulate::kR1, Postulate::kR2,
                                         Postulate::kR3, Postulate::kU8};
  for (const auto& op : ops) {
    report.r2_a8.push_back(CheckClaim(op, claim1, num_terms));
    report.u2_u8_a8.push_back(CheckClaim(op, claim2, num_terms));
    report.r123_u8.push_back(CheckClaim(op, claim3, num_terms));
  }
  for (const auto* rows : {&report.r2_a8, &report.u2_u8_a8,
                           &report.r123_u8}) {
    for (const DisjointnessRow& row : *rows) {
      if (!row.conclusion_blocked) report.all_claims_hold = false;
    }
  }
  return report;
}

std::string TraceR2A8Witness(const TheoryChangeOperator& op,
                             int num_terms) {
  ARBITER_CHECK(num_terms >= 1);
  // Appendix B, claim 1: m1, m2 singletons.
  const uint64_t m1 = 0, m2 = 1;
  ModelSet sm1 = ModelSet::Singleton(m1, num_terms);
  ModelSet sm2 = ModelSet::Singleton(m2, num_terms);
  ModelSet psi1 = sm1.Union(sm2);  // m1 ∨ m2
  ModelSet psi2 = sm2;             // m2
  ModelSet mu = sm1.Union(sm2);    // m1 ∨ m2

  std::string out;
  out += "Theorem 3.2 claim 1 witness (no operator satisfies R2 and A8)\n";
  out += "  operator: " + op.name() + "\n";
  out += "  psi1 = m1|m2 = " + Show(psi1) + ", psi2 = m2 = " + Show(psi2) +
         ", mu = m1|m2 = " + Show(mu) + "\n";
  ModelSet r_union = op.Change(psi1.Union(psi2), mu);
  out += "  (psi1|psi2) * mu = " + Show(r_union) +
         "   [R2 predicts m1|m2 since (psi1|psi2) & mu is satisfiable]\n";
  ModelSet r1 = op.Change(psi1, mu);
  ModelSet r2 = op.Change(psi2, mu);
  out += "  psi1 * mu = " + Show(r1) + "   [R2 predicts m1|m2]\n";
  out += "  psi2 * mu = " + Show(r2) + "   [R2 predicts m2]\n";
  ModelSet both = r1.Intersect(r2);
  out += "  conjunction = " + Show(both) + " (satisfiable: " +
         (both.empty() ? "no" : "yes") + ")\n";
  bool a8_would_need = !both.empty() && r_union.IsSubsetOf(both);
  out += "  A8 requires (psi1|psi2)*mu to imply the conjunction: " +
         std::string(a8_would_need ? "holds (so R2 must have failed)"
                                   : "FAILS -> R2 and A8 incompatible") +
         "\n";
  return out;
}

std::string TraceU2U8A8Witness(const TheoryChangeOperator& op,
                               int num_terms) {
  ARBITER_CHECK(num_terms >= 1);
  const uint64_t m1 = 0, m2 = 1;
  ModelSet sm1 = ModelSet::Singleton(m1, num_terms);
  ModelSet sm2 = ModelSet::Singleton(m2, num_terms);
  ModelSet psi1 = sm1.Union(sm2);
  ModelSet psi2 = sm2;
  ModelSet mu = sm1.Union(sm2);

  std::string out;
  out += "Theorem 3.2 claim 2 witness (no operator satisfies U2, U8, A8)\n";
  out += "  operator: " + op.name() + "\n";
  out += "  psi1 = " + Show(psi1) + " implies mu = " + Show(mu) +
         "; psi2 = " + Show(psi2) + " implies mu\n";
  ModelSet r1 = op.Change(psi1, mu);
  ModelSet r2 = op.Change(psi2, mu);
  out += "  psi1 * mu = " + Show(r1) + "   [U2 predicts psi1]\n";
  out += "  psi2 * mu = " + Show(r2) + "   [U2 predicts psi2]\n";
  ModelSet r_union = op.Change(psi1.Union(psi2), mu);
  out += "  (psi1|psi2) * mu = " + Show(r_union) +
         "   [U8 predicts (psi1*mu)|(psi2*mu) = " +
         Show(r1.Union(r2)) + "]\n";
  ModelSet both = r1.Intersect(r2);
  out += "  conjunction = " + Show(both) +
         "; A8 then requires (psi1|psi2)*mu to imply it: " +
         std::string(!both.empty() && r_union.IsSubsetOf(both)
                         ? "holds (so U2/U8 must have failed)"
                         : "FAILS -> U2+U8 and A8 incompatible") +
         "\n";
  return out;
}

std::string TraceR123U8Witness(const TheoryChangeOperator& op,
                               int num_terms) {
  ARBITER_CHECK(num_terms >= 2);  // need three distinct interpretations
  const uint64_t m1 = 0, m2 = 1, m3 = 2;
  ModelSet sm1 = ModelSet::Singleton(m1, num_terms);
  ModelSet sm2 = ModelSet::Singleton(m2, num_terms);
  ModelSet sm3 = ModelSet::Singleton(m3, num_terms);
  ModelSet psi1 = sm1;
  ModelSet psi2 = sm2;
  ModelSet mu = sm2.Union(sm3);  // m2 ∨ m3

  std::string out;
  out += "Theorem 3.2 claim 3 witness (no operator satisfies R1-R3, U8)\n";
  out += "  operator: " + op.name() + "\n";
  out += "  psi1 = m1 = " + Show(psi1) + ", psi2 = m2 = " + Show(psi2) +
         ", mu = m2|m3 = " + Show(mu) + "\n";
  ModelSet r1 = op.Change(psi1, mu);
  out += "  psi1 * mu = " + Show(r1) +
         "   [R1+R3: nonempty subset of m2|m3]\n";
  ModelSet r2 = op.Change(psi2, mu);
  out += "  psi2 * mu = " + Show(r2) + "   [R2 predicts m2]\n";
  ModelSet r_union = op.Change(psi1.Union(psi2), mu);
  out += "  (psi1|psi2) * mu = " + Show(r_union) +
         "   [R2 predicts m2; U8 predicts " + Show(r1.Union(r2)) + "]\n";
  bool u8_matches = r_union == r1.Union(r2);
  bool r2_matches = r_union == r2;
  out += "  U8 and R2 agree here: " +
         std::string(u8_matches && r2_matches
                         ? "yes (psi1*mu collapsed to m2 - check R1-R3!)"
                         : "NO -> R1-R3 and U8 incompatible") +
         "\n";
  return out;
}

}  // namespace arbiter
