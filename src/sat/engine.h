#ifndef ARBITER_SAT_ENGINE_H_
#define ARBITER_SAT_ENGINE_H_

#include <vector>

#include "sat/cnf.h"
#include "sat/types.h"

/// \file engine.h
/// SatEngine: the solving interface shared by the plain CDCL `Solver`
/// and the preprocessing wrapper `SatPreprocessor`.  Consumers that
/// only need "load clauses, solve, read a model" (AllSAT, the solve/
/// distance encodings, lint) target this so either engine can serve
/// them — in particular the preprocessor, whose variable remapping and
/// model reconstruction stay invisible behind this interface.

namespace arbiter::sat {

/// A clause sink that can also decide satisfiability.
class SatEngine : public ClauseSink {
 public:
  /// Solves the current formula.  kUnknown only under a conflict budget.
  virtual SolveStatus Solve() = 0;

  /// Solves under the given assumptions (temporary unit literals).
  virtual SolveStatus SolveAssuming(const std::vector<Lit>& assumptions) = 0;

  /// Value of v in the most recent satisfying model.  Only valid after
  /// a solve returned kSat.
  virtual bool ModelValue(Var v) const = 0;

  /// After SolveAssuming returned kUnsat: a subset of the assumptions
  /// already inconsistent with the clause database.
  virtual const std::vector<Lit>& FailedAssumptions() const = 0;

  /// True iff top-level unsatisfiability has been derived.
  virtual bool InConflict() const = 0;
};

}  // namespace arbiter::sat

#endif  // ARBITER_SAT_ENGINE_H_
