#ifndef ARBITER_LOGIC_GENERATOR_H_
#define ARBITER_LOGIC_GENERATOR_H_

#include <vector>

#include "logic/formula.h"
#include "util/random.h"

/// \file generator.h
/// Random workload generators used by property tests and benchmarks.

namespace arbiter {

/// Options for random AST generation.
struct RandomFormulaOptions {
  int num_terms = 4;     ///< variables drawn from [0, num_terms)
  int max_depth = 5;     ///< maximum nesting depth
  double leaf_prob = 0.3;  ///< chance of cutting recursion early
  bool use_extended_connectives = true;  ///< allow →, ↔, ⊕
};

/// Returns a random formula per `options`, deterministic in *rng.
Formula RandomFormula(Rng* rng, const RandomFormulaOptions& options);

/// Returns a random k-CNF formula: `num_clauses` clauses of `k` distinct
/// literals over `num_terms` variables.  Requires k <= num_terms.
Formula RandomKCnf(Rng* rng, int num_terms, int num_clauses, int k);

/// Returns a uniformly random nonempty model set over n terms as a
/// sorted vector of bitmasks; each interpretation is included with
/// probability `density` (re-drawn until nonempty).  Requires n <=
/// kMaxEnumTerms.
std::vector<uint64_t> RandomModelSetMasks(Rng* rng, int num_terms,
                                          double density);

}  // namespace arbiter

#endif  // ARBITER_LOGIC_GENERATOR_H_
