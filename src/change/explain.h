#ifndef ARBITER_CHANGE_EXPLAIN_H_
#define ARBITER_CHANGE_EXPLAIN_H_

#include <string>
#include <vector>

#include "logic/vocabulary.h"
#include "model/model_set.h"
#include "util/status.h"

/// \file explain.h
/// Human-readable explanations of theory change decisions: for each
/// candidate model of μ, why it was selected or rejected by a given
/// operator.  Powers the REPL's `explain` command and the examples.
///
/// The explanation is computed from the operator's own distance
/// semantics (min/max/sum Hamming distance, minimal difference sets,
/// per-model origins), so the scores shown are exactly the quantities
/// the operator minimized.

namespace arbiter {

/// One candidate model of μ with its score under the operator.
struct CandidateExplanation {
  uint64_t model = 0;
  /// Operator-specific rank (lower = preferred); < 0 when the operator
  /// has no numeric rank.
  double rank = -1;
  bool selected = false;
  /// e.g. "odist 2 (farthest voice {S,D,Q})".
  std::string note;
};

/// The full decision trace of one Change call.
struct ChangeExplanation {
  std::string op_name;
  /// One-line narrative, e.g. "selected the 1 candidate minimizing
  /// the maximum distance to the 3 voices".
  std::string summary;
  std::vector<CandidateExplanation> candidates;

  /// Renders an indented table using the vocabulary's names.
  std::string ToString(const Vocabulary& vocab) const;
};

/// Explains op_name's decision on (psi, mu).  Supports every
/// registered operator; distance-based operators get numeric ranks and
/// witness notes, others a selected/rejected trace.
Result<ChangeExplanation> ExplainChange(const std::string& op_name,
                                        const ModelSet& psi,
                                        const ModelSet& mu);

}  // namespace arbiter

#endif  // ARBITER_CHANGE_EXPLAIN_H_
