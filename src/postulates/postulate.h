#ifndef ARBITER_POSTULATES_POSTULATE_H_
#define ARBITER_POSTULATES_POSTULATE_H_

#include <string>
#include <vector>

/// \file postulate.h
/// The three postulate families of the paper:
///
///  * (R1)–(R6)  AGM revision, in the Katsuno–Mendelzon propositional
///               form (paper, Appendix A);
///  * (U1)–(U8)  Katsuno–Mendelzon update (paper, Appendix A);
///  * (A1)–(A8)  Revesz model-fitting (paper, Section 3).
///
/// The weighted family (F1)–(F8) mirrors (A1)–(A8) over weighted
/// knowledge bases and is handled by the weighted checker.

namespace arbiter {

enum class Postulate {
  kR1, kR2, kR3, kR4, kR5, kR6,
  kU1, kU2, kU3, kU4, kU5, kU6, kU7, kU8,
  kA1, kA2, kA3, kA4, kA5, kA6, kA7, kA8,
};

/// "R1", "U8", "A2", ...
std::string PostulateName(Postulate p);

/// One-line informal statement, e.g. "psi * mu implies mu".
std::string PostulateStatement(Postulate p);

/// The six revision postulates.
std::vector<Postulate> RevisionPostulates();
/// The eight update postulates.
std::vector<Postulate> UpdatePostulates();
/// The eight model-fitting postulates.
std::vector<Postulate> FittingPostulates();
/// All twenty-two, in R/U/A order.
std::vector<Postulate> AllPostulates();

}  // namespace arbiter

#endif  // ARBITER_POSTULATES_POSTULATE_H_
