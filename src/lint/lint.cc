#include "lint/lint.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <sstream>

#include "change/backend.h"
#include "change/registry.h"
#include "lint/emitter.h"
#include "lint/flow_checks.h"
#include "logic/parser.h"
#include "logic/vocabulary.h"
#include "proof/certify.h"
#include "sat/dimacs.h"
#include "sat/dpll.h"
#include "solve/sat_bridge.h"
#include "util/string_util.h"

namespace arbiter::lint {

namespace {

/// Doubles above this lose exact integer arithmetic; weighted distance
/// sums (wdist = Σ dist·w) that can cross it silently drop mass.
constexpr double kExactDoubleLimit = 9007199254740992.0;  // 2^53

const std::vector<CheckInfo> kChecks = {
    // Belief scripts.
    {"script/syntax", Severity::kError,
     "statement does not parse"},
    {"script/formula-syntax", Severity::kError,
     "formula payload does not parse"},
    {"script/capacity", Severity::kError,
     "script vocabulary exceeds the selected backend's limit"},
    {"script/capacity-backend", Severity::kNote,
     "vocabulary beyond the enumeration limit, served by the counting "
     "backend"},
    {"script/unknown-backend", Severity::kError,
     "set backend names an unregistered backend"},
    {"script/negative-weight", Severity::kError,
     "set weight with a negative metric weight"},
    {"script/use-before-define", Severity::kError,
     "base used before any define"},
    {"script/unknown-operator", Severity::kError,
     "change names an unregistered operator"},
    {"script/undo-empty", Severity::kError,
     "undo with no change to revert"},
    {"script/redefine", Severity::kWarning,
     "redefinition shadows an existing base and clears its history"},
    {"script/unsat-define", Severity::kWarning,
     "base defined unsatisfiable (the (A2) absorbing edge)"},
    {"script/unsat-evidence", Severity::kWarning,
     "change evidence is unsatisfiable (the (A2)/(A3) edge)"},
    {"script/vacuous-change", Severity::kWarning,
     "revision/update evidence already entailed by the base ((R2)/(U2))"},
    {"script/guard-tautology", Severity::kWarning,
     "if-guard formula is a tautology; the conditional is redundant"},
    {"script/guard-unsat", Severity::kWarning,
     "if-guard formula is unsatisfiable; guarded statement unreachable"},
    {"script/trivial-assert", Severity::kWarning,
     "assertion holds or fails for every possible base"},
    {"script/unconstrained-atom", Severity::kWarning,
     "atom queried but never constrained by any define/change"},
    // Belief scripts: path-sensitive dataflow (flow_checks.h).
    {"flow/unreachable", Severity::kError,
     "statement provably never executes"},
    {"flow/redundant-change", Severity::kWarning,
     "revision/update provably a no-op on every path ((R2)/(U2))"},
    {"flow/dead-define", Severity::kWarning,
     "defined value never read before redefinition or script end"},
    {"flow/undo-empty", Severity::kError,
     "undo history provably empty on every path"},
    {"flow/assert-passes", Severity::kNote,
     "assertion provably holds on every path reaching it"},
    {"flow/assert-fails", Severity::kError,
     "assertion provably fails whenever it executes"},
    // DIMACS CNF.
    {"dimacs/syntax", Severity::kError,
     "malformed DIMACS input"},
    {"dimacs/undeclared-var", Severity::kError,
     "literal exceeds the declared variable count"},
    {"dimacs/clause-count-mismatch", Severity::kError,
     "header clause count disagrees with the body"},
    {"dimacs/empty-clause", Severity::kWarning,
     "explicit empty clause; the instance is trivially unsatisfiable"},
    {"dimacs/duplicate-literal", Severity::kWarning,
     "clause repeats a literal"},
    {"dimacs/tautological-clause", Severity::kWarning,
     "clause contains a variable and its negation"},
    {"dimacs/unused-var", Severity::kWarning,
     "declared variable never occurs in any clause"},
    {"dimacs/unsat", Severity::kWarning,
     "instance is unsatisfiable (the (A2)/(A3) absorbing edge)"},
    // Weighted KBs.
    {"wkb/syntax", Severity::kError,
     "malformed wkb input"},
    {"wkb/terms-range", Severity::kError,
     "num_terms outside [1, kMaxEnumTerms]"},
    {"wkb/bits-range", Severity::kError,
     "interpretation bitmask out of range for num_terms"},
    {"wkb/negative-weight", Severity::kError,
     "weight is negative or not finite"},
    {"wkb/duplicate-entry", Severity::kWarning,
     "interpretation listed twice; the later entry wins"},
    {"wkb/unsatisfiable", Severity::kWarning,
     "no interpretation has positive weight (weighted (A2) edge)"},
    {"wkb/weight-overflow", Severity::kWarning,
     "weights large enough for wdist sums to lose integer precision"},
};

/// 1-based column of `token` in `line_text` (identifier-boundary aware
/// when the token looks like an identifier); 1 when not found.
int ColOf(const std::string& line_text, const std::string& token) {
  if (token.empty()) return 1;
  const bool ident = IsIdentStart(token[0]);
  size_t from = 0;
  while (from < line_text.size()) {
    const size_t pos = line_text.find(token, from);
    if (pos == std::string::npos) return 1;
    if (!ident) return static_cast<int>(pos + 1);
    const bool left_ok = pos == 0 || !IsIdentCont(line_text[pos - 1]);
    const size_t end = pos + token.size();
    const bool right_ok =
        end >= line_text.size() || !IsIdentCont(line_text[end]);
    if (left_ok && right_ok) return static_cast<int>(pos + 1);
    from = pos + 1;
  }
  return 1;
}

void CollectVars(const Formula& f, std::set<int>* vars) {
  if (f.is_var()) {
    vars->insert(f.var());
    return;
  }
  for (const Formula& child : f.children()) CollectVars(child, vars);
}

// ---------------------------------------------------------------------
// Belief scripts
// ---------------------------------------------------------------------

class ScriptLinter {
 public:
  ScriptLinter(Emitter* emit, std::vector<std::string> lines)
      : emit_(emit), lines_(std::move(lines)) {}

  void Run() {
    for (size_t i = 0; i < lines_.size(); ++i) {
      const int line_no = static_cast<int>(i + 1);
      const std::string line = Trim(lines_[i]);
      if (line.empty() || line[0] == '#') continue;
      // The language is line-based, so each line parses independently;
      // that gives the linter statement-level error recovery where the
      // runtime parser stops at the first bad line.
      Result<BeliefScript> one = ParseScript(line);
      if (!one.ok()) {
        emit_->Emit("script/syntax", line_no, 1,
                    StripLinePrefix(one.status().message()));
        continue;
      }
      if (one->statements.empty()) continue;
      ScriptStatement stmt = one->statements[0];
      SetLineRecursive(&stmt, line_no);
      Statement(stmt, /*guarded=*/false);
    }
    FinishHygiene();
  }

 private:
  struct BaseState {
    bool defined = false;
    int def_line = 0;
    /// Statically known undo depth; inexact once any history-affecting
    /// statement ran under a guard.
    int depth = 0;
    bool depth_exact = true;
    /// The base's exact current formula, when derivable from the
    /// postulates alone; reset to nullopt after any change whose result
    /// is not statically forced.
    std::optional<Formula> current;
    std::vector<std::optional<Formula>> undo_formulas;
  };

  static std::string StripLinePrefix(const std::string& message) {
    // Single-line parses anchor errors at "line 1: "; the linter
    // re-anchors them on the real source line.
    const std::string prefix = "line 1: ";
    if (message.rfind(prefix, 0) == 0) return message.substr(prefix.size());
    return message;
  }

  static void SetLineRecursive(ScriptStatement* stmt, int line) {
    stmt->line = line;
    for (ScriptStatement& inner : stmt->inner) {
      SetLineRecursive(&inner, line);
    }
  }

  const std::string& LineText(int line_no) const {
    static const std::string kEmpty;
    if (line_no < 1 || line_no > static_cast<int>(lines_.size())) {
      return kEmpty;
    }
    return lines_[line_no - 1];
  }

  /// Satisfiability over the script vocabulary.  Under --certify an
  /// UNSAT answer is recorded+re-checked by the independent DRAT
  /// checker, and `last_certified_` is set to the verdict (1/0) — the
  /// check sites pass it to Emit for the diagnostic that the answer
  /// decides.  SAT answers (and certification off) reset it to -1.
  bool Sat(const Formula& f) const {
    last_certified_ = -1;
    if (!emit_->options().certify) {
      return solve::SatIsSatisfiable(f, vocab_.size());
    }
    const solve::CertifiedSatResult r =
        solve::SatIsSatisfiableCertified(f, vocab_.size());
    if (r.certify_attempted) last_certified_ = r.certified ? 1 : 0;
    return r.sat;
  }
  bool Taut(const Formula& f) const { return !Sat(Not(f)); }
  bool Entails(const Formula& a, const Formula& b) const {
    return !Sat(And(a, Not(b)));
  }
  /// Certification status of the UNSAT verdict the most recent Sat /
  /// Taut / Entails query produced (see Sat).
  int LastCertified() const { return last_certified_; }

  /// Parses a statement's formula payload against the script-wide
  /// vocabulary.  Reports formula-syntax and capacity diagnostics; the
  /// vocabulary is left untouched when parsing fails.
  std::optional<Formula> ParsePayload(const std::string& text, int line_no) {
    const Vocabulary backup = vocab_;
    Result<Formula> f = Parse(text, &vocab_);
    if (!f.ok()) {
      vocab_ = backup;
      if (!capacity_blown_) {
        emit_->Emit("script/formula-syntax", line_no,
                    ColOf(LineText(line_no), text),
                    f.status().message());
      }
      return std::nullopt;
    }
    CheckCapacity(line_no);
    return *f;
  }

  /// Capacity limit of the backend selected so far in script order.
  int CapacityLimit() const {
    return backend_ == "enum" ? kMaxEnumTerms : kMaxVocabularyTerms - 1;
  }

  /// Emits the capacity diagnostic for the current vocabulary size under
  /// the selected backend: a hard error past the enumeration wall on the
  /// enumerating backend, a one-time note in the counting backend's
  /// SAT-served range, and a hard error past the 63-term mask limit.
  void CheckCapacity(int line_no) {
    const int n = vocab_.size();
    if (n <= kMaxEnumTerms) return;
    if (backend_ == "enum") {
      if (capacity_blown_) return;
      capacity_blown_ = true;
      emit_->Emit(
          "script/capacity", line_no, 1,
          "script mentions " + std::to_string(n) +
              " distinct atoms; execution enumerates at most 2^" +
              std::to_string(kMaxEnumTerms) + " interpretations",
          "the store rejects the first formula that grows its "
          "vocabulary past " + std::to_string(kMaxEnumTerms) +
          " terms; 'set backend counting' lifts the wall to " +
          std::to_string(kMaxVocabularyTerms - 1) + " terms");
      return;
    }
    if (n > kMaxVocabularyTerms - 1) {
      if (capacity_blown_) return;
      capacity_blown_ = true;
      emit_->Emit(
          "script/capacity", line_no, 1,
          "script mentions " + std::to_string(n) +
              " distinct atoms; even the counting backend serves at "
              "most " + std::to_string(kMaxVocabularyTerms - 1),
          "model masks must fit in 64 bits");
      return;
    }
    if (counting_noted_) return;
    counting_noted_ = true;
    emit_->Emit(
        "script/capacity-backend", line_no, 1,
        "vocabulary has " + std::to_string(n) +
            " atoms, past the 2^" + std::to_string(kMaxEnumTerms) +
            " enumeration wall; the counting backend serves distance "
            "operators via SAT without enumeration",
        "non-distance operators and model dumps stay unavailable past " +
            std::to_string(kMaxEnumTerms) + " terms");
  }

  /// Resolves a base for a use-site; reports use-before-define.
  BaseState* Use(const std::string& name, int line_no) {
    auto it = bases_.find(name);
    if (it == bases_.end()) {
      emit_->Emit("script/use-before-define", line_no,
                  ColOf(LineText(line_no), name),
                  "base '" + name + "' is used before any define",
                  "add 'define " + name + " := <formula>' first");
      return nullptr;
    }
    return &it->second;
  }

  void RecordPayloadAtoms(const Formula& f) {
    std::set<int> vars;
    CollectVars(f, &vars);
    for (int v : vars) payload_atoms_.insert(vocab_.Name(v));
  }

  void RecordQueryAtoms(const Formula& f, int line_no) {
    std::set<int> vars;
    CollectVars(f, &vars);
    for (int v : vars) {
      const std::string& name = vocab_.Name(v);
      query_atoms_.emplace(name, line_no);
    }
  }

  void Statement(const ScriptStatement& stmt, bool guarded) {
    switch (stmt.kind) {
      case ScriptStatement::Kind::kDefine: return Define(stmt, guarded);
      case ScriptStatement::Kind::kChange: return Change(stmt, guarded);
      case ScriptStatement::Kind::kUndo: return Undo(stmt, guarded);
      case ScriptStatement::Kind::kAssertEntails:
      case ScriptStatement::Kind::kAssertConsistent:
      case ScriptStatement::Kind::kAssertEquivalent:
        return Assert(stmt);
      case ScriptStatement::Kind::kConditional:
        return Conditional(stmt, guarded);
      case ScriptStatement::Kind::kSetBackend:
        return SetBackend(stmt);
      case ScriptStatement::Kind::kSetWeight:
        return SetWeight(stmt);
    }
  }

  void SetBackend(const ScriptStatement& stmt) {
    const std::vector<std::string> known = DistanceBackendNames();
    if (std::find(known.begin(), known.end(), stmt.formula) == known.end()) {
      emit_->Emit("script/unknown-backend", stmt.line,
                  ColOf(LineText(stmt.line), stmt.formula),
                  "unknown backend '" + stmt.formula + "'",
                  "registered backends: " + Join(known, ", "));
      return;
    }
    const int new_limit = stmt.formula == "enum"
                              ? kMaxEnumTerms
                              : kMaxVocabularyTerms - 1;
    if (vocab_.size() > new_limit) {
      if (!capacity_blown_) {
        capacity_blown_ = true;
        emit_->Emit("script/capacity", stmt.line,
                    ColOf(LineText(stmt.line), stmt.formula),
                    "cannot select the '" + stmt.formula +
                        "' backend: the script already mentions " +
                        std::to_string(vocab_.size()) +
                        " atoms (limit " + std::to_string(new_limit) + ")",
                    "the store rejects this statement at run time");
      }
      return;
    }
    backend_ = stmt.formula;
  }

  void SetWeight(const ScriptStatement& stmt) {
    int64_t weight = 0;
    if (ParseInt64(stmt.formula, &weight) && weight < 0) {
      emit_->Emit("script/negative-weight", stmt.line,
                  ColOf(LineText(stmt.line), stmt.formula),
                  "metric weight must be >= 0, got " + stmt.formula,
                  "the store rejects negative weights");
    }
    // The weighted term joins the script vocabulary like a payload atom
    // would, so it counts against backend capacity.
    Result<int> idx = vocab_.GetOrAddTerm(stmt.base);
    if (idx.ok()) CheckCapacity(stmt.line);
  }

  void Define(const ScriptStatement& stmt, bool guarded) {
    std::optional<Formula> f = ParsePayload(stmt.formula, stmt.line);
    if (f) {
      RecordPayloadAtoms(*f);
      if (!capacity_blown_ && !Sat(*f)) {
        emit_->Emit("script/unsat-define", stmt.line,
                    ColOf(LineText(stmt.line), stmt.formula),
                    "base '" + stmt.base + "' is defined unsatisfiable",
                    "model fitting keeps an unsatisfiable base "
                    "unsatisfiable ((A2)), and every 'entails' "
                    "assertion on it holds vacuously",
                    {}, LastCertified());
      }
    }
    BaseState& state = bases_[stmt.base];
    if (state.defined && !guarded) {
      emit_->Emit("script/redefine", stmt.line,
                  ColOf(LineText(stmt.line), stmt.base),
                  "redefinition of base '" + stmt.base +
                      "' discards its undo history",
                  "first defined on line " +
                      std::to_string(state.def_line));
    }
    if (guarded) {
      // The define may or may not run: everything becomes inexact, but
      // the name counts as (maybe) defined so later uses aren't flagged.
      state.defined = true;
      if (state.def_line == 0) state.def_line = stmt.line;
      state.depth_exact = false;
      state.current = std::nullopt;
      state.undo_formulas.clear();
      return;
    }
    state.defined = true;
    state.def_line = stmt.line;
    state.depth = 0;
    state.depth_exact = true;
    state.current = f;
    state.undo_formulas.clear();
  }

  void Change(const ScriptStatement& stmt, bool guarded) {
    BaseState* state = Use(stmt.base, stmt.line);
    const bool known_op = registered_ops_.count(stmt.op_name) > 0;
    std::optional<OperatorFamily> family;
    if (!known_op) {
      emit_->Emit("script/unknown-operator", stmt.line,
                  ColOf(LineText(stmt.line), stmt.op_name),
                  "unknown operator '" + stmt.op_name + "'",
                  "registered operators: " +
                      Join(RegisteredOperatorNames(), ", "));
    } else {
      family = MakeOperator(stmt.op_name).ValueOrDie()->family();
    }
    std::optional<Formula> mu = ParsePayload(stmt.formula, stmt.line);
    bool mu_unsat = false;
    if (mu) {
      RecordPayloadAtoms(*mu);
      if (!capacity_blown_) {
        mu_unsat = !Sat(*mu);
        if (mu_unsat) {
          emit_->Emit("script/unsat-evidence", stmt.line,
                      ColOf(LineText(stmt.line), stmt.formula),
                      "change evidence is unsatisfiable",
                      "revision, update, and fitting results entail "
                      "their evidence ((R1)/(U1)/(A1)), so '" +
                          stmt.base + "' becomes unsatisfiable",
                      {}, LastCertified());
        }
      }
    }
    if (state == nullptr) return;

    // Vacuous change: by (R2)/(U2), revising or updating with evidence
    // the base already entails is a no-op.  Model fitting is loyal to
    // *all* models of the base and genuinely moves even then (the
    // paper's Example 3.1), so only revision/update are flagged.
    const bool tracked = state->current.has_value() && !capacity_blown_;
    bool entailed = false;
    if (tracked && mu && !mu_unsat && Sat(*state->current)) {
      entailed = Entails(*state->current, *mu);
      if (entailed && family &&
          (*family == OperatorFamily::kRevision ||
           *family == OperatorFamily::kUpdate)) {
        emit_->Emit("script/vacuous-change", stmt.line,
                    ColOf(LineText(stmt.line), stmt.formula),
                    "'" + stmt.base + "' already entails the evidence; "
                    "this " + std::string(OperatorFamilyName(*family)) +
                        " is a no-op",
                    "(R2)/(U2): when the base entails the evidence the "
                    "result is equivalent to the base",
                    {}, LastCertified());
      }
    }

    if (guarded) {
      state->depth_exact = false;
      state->current = std::nullopt;
      return;
    }
    state->undo_formulas.push_back(state->current);
    if (state->depth_exact) ++state->depth;

    // Track the base's formula only where a postulate forces the
    // result; otherwise stop tracking until the next define/undo.
    state->current = std::nullopt;
    if (!family || !mu) return;
    if (mu_unsat && (*family == OperatorFamily::kRevision ||
                     *family == OperatorFamily::kUpdate ||
                     *family == OperatorFamily::kModelFitting)) {
      state->current = Formula::False();  // (R1)/(U1)/(A1)
    } else if (tracked && entailed &&
               (*family == OperatorFamily::kRevision ||
                *family == OperatorFamily::kUpdate)) {
      state->current = And(*state->undo_formulas.back(), *mu);
    } else if (tracked && *family == OperatorFamily::kRevision && mu &&
               !capacity_blown_ &&
               Sat(And(*state->undo_formulas.back(), *mu))) {
      // (R2): consistent revision is conjunction.
      state->current = And(*state->undo_formulas.back(), *mu);
    }
  }

  void Undo(const ScriptStatement& stmt, bool guarded) {
    BaseState* state = Use(stmt.base, stmt.line);
    if (state == nullptr) return;
    if (state->depth_exact && state->depth == 0) {
      emit_->Emit("script/undo-empty", stmt.line,
                  ColOf(LineText(stmt.line), stmt.base),
                  "'" + stmt.base + "' has no applied change to undo",
                  state->def_line > 0
                      ? "history is empty since the define on line " +
                            std::to_string(state->def_line)
                      : "");
      return;
    }
    if (guarded) {
      state->depth_exact = false;
      state->current = std::nullopt;
      return;
    }
    if (state->depth_exact) {
      --state->depth;
      state->current = state->undo_formulas.back();
      state->undo_formulas.pop_back();
    }
  }

  void Assert(const ScriptStatement& stmt) {
    Use(stmt.base, stmt.line);
    std::optional<Formula> f = ParsePayload(stmt.formula, stmt.line);
    if (!f) return;
    RecordQueryAtoms(*f, stmt.line);
    if (capacity_blown_) return;
    if (stmt.kind == ScriptStatement::Kind::kAssertEntails && Taut(*f)) {
      emit_->Emit("script/trivial-assert", stmt.line,
                  ColOf(LineText(stmt.line), stmt.formula),
                  "formula is a tautology; every base entails it",
                  "the assertion can never fail", {}, LastCertified());
    } else if (stmt.kind == ScriptStatement::Kind::kAssertConsistent &&
               !Sat(*f)) {
      emit_->Emit("script/trivial-assert", stmt.line,
                  ColOf(LineText(stmt.line), stmt.formula),
                  "formula is unsatisfiable; no base is consistent "
                  "with it",
                  "the assertion can never hold", {}, LastCertified());
    }
  }

  void Conditional(const ScriptStatement& stmt, bool guarded) {
    Use(stmt.base, stmt.line);
    std::optional<Formula> guard = ParsePayload(stmt.formula, stmt.line);
    if (guard) {
      RecordQueryAtoms(*guard, stmt.line);
      if (!capacity_blown_) {
        if (Taut(*guard)) {
          emit_->Emit("script/guard-tautology", stmt.line,
                      ColOf(LineText(stmt.line), stmt.formula),
                      "guard formula is a tautology; the condition "
                      "always holds",
                      "drop the 'if ... then' wrapper", {},
                      LastCertified());
        } else if (!Sat(*guard)) {
          emit_->Emit("script/guard-unsat", stmt.line,
                      ColOf(LineText(stmt.line), stmt.formula),
                      "guard formula is unsatisfiable; the guarded "
                      "statement only runs if '" + stmt.base +
                          "' is itself inconsistent",
                      "an inconsistent base entails everything, "
                      "including unsatisfiable formulas",
                      {}, LastCertified());
        }
      }
    }
    if (!stmt.inner.empty()) Statement(stmt.inner[0], /*guarded=*/true);
    (void)guarded;
  }

  void FinishHygiene() {
    // Atoms that are only ever queried can never be constrained: every
    // assertion about them reflects the free vocabulary, not beliefs.
    std::set<std::string> reported;
    for (const auto& [atom, line] : query_atoms_) {
      if (payload_atoms_.count(atom) > 0) continue;
      if (!reported.insert(atom).second) continue;
      emit_->Emit("script/unconstrained-atom", line,
                  ColOf(LineText(line), atom),
                  "atom '" + atom + "' is used in assertions or guards "
                  "but never constrained by any define or change",
                  "no statement can make a belief about '" + atom +
                      "' true or false");
    }
  }

  Emitter* emit_;
  mutable int last_certified_ = -1;
  std::vector<std::string> lines_;
  Vocabulary vocab_;
  bool capacity_blown_ = false;
  /// Backend selected so far in script order ("enum" until a
  /// `set backend` statement switches it).
  std::string backend_ = "enum";
  bool counting_noted_ = false;
  std::map<std::string, BaseState> bases_;
  std::set<std::string> payload_atoms_;
  /// (atom, first use line), ordered so reports are deterministic.
  std::set<std::pair<std::string, int>> query_atoms_;
  const std::set<std::string> registered_ops_ = [] {
    const std::vector<std::string> names = RegisteredOperatorNames();
    return std::set<std::string>(names.begin(), names.end());
  }();
};

// ---------------------------------------------------------------------
// DIMACS CNF
// ---------------------------------------------------------------------

void LintDimacs(Emitter* emit, const std::string& text) {
  const std::vector<std::string> lines = Split(text, '\n');
  bool saw_header = false;
  bool reported_preheader = false;
  int header_line = 1;
  int num_vars = 0;
  int declared_clauses = 0;
  bool syntax_clean = true;
  bool saw_empty_clause = false;
  std::set<long long> undeclared_reported;
  std::vector<bool> used;
  std::vector<std::vector<sat::Lit>> clauses;
  std::vector<long long> current;
  int current_line = 0;  // line of the pending clause's last literal
  for (size_t i = 0; i < lines.size(); ++i) {
    const int line_no = static_cast<int>(i + 1);
    const std::string& line = lines[i];
    if (line.empty() || line[0] == 'c') continue;
    if (line[0] == 'p') {
      if (saw_header) {
        emit->Emit("dimacs/syntax", line_no, 1, "duplicate header");
        syntax_clean = false;
        continue;
      }
      std::istringstream header(line);
      std::string p, cnf;
      header >> p >> cnf >> num_vars >> declared_clauses;
      if (cnf != "cnf" || num_vars < 0 || declared_clauses < 0 ||
          header.fail()) {
        emit->Emit("dimacs/syntax", line_no, 1,
                   "malformed header (expected 'p cnf <vars> <clauses>')");
        syntax_clean = false;
        num_vars = 0;
        declared_clauses = -1;
      }
      saw_header = true;
      header_line = line_no;
      used.assign(static_cast<size_t>(num_vars), false);
      continue;
    }
    if (!saw_header) {
      if (!reported_preheader) {
        emit->Emit("dimacs/syntax", line_no, 1,
                   "clause before the 'p cnf' header");
        reported_preheader = true;
        syntax_clean = false;
      }
      continue;
    }
    std::istringstream body(line);
    long long x = 0;
    while (body >> x) {
      if (x != 0) {
        current.push_back(x);
        current_line = line_no;
        continue;
      }
      // Clause finalized: structural checks, then keep it for DPLL.
      if (current.empty()) {
        saw_empty_clause = true;
        emit->Emit("dimacs/empty-clause", line_no, 1,
                   "empty clause; the instance is trivially "
                   "unsatisfiable");
      }
      std::set<long long> seen;
      std::vector<sat::Lit> clause;
      bool taut_reported = false;
      for (long long lit : current) {
        const long long v = lit > 0 ? lit : -lit;
        if (v > num_vars) {
          if (undeclared_reported.insert(v).second) {
            emit->Emit("dimacs/undeclared-var", line_no,
                       ColOf(line, std::to_string(lit)),
                       "literal " + std::to_string(lit) +
                           " exceeds the declared " +
                           std::to_string(num_vars) + " variable(s)");
          }
          syntax_clean = false;
          continue;
        }
        used[static_cast<size_t>(v - 1)] = true;
        if (!seen.insert(lit).second) {
          emit->Emit("dimacs/duplicate-literal", line_no, 1,
                     "literal " + std::to_string(lit) +
                         " repeated within one clause");
        }
        if (seen.count(-lit) > 0 && !taut_reported) {
          taut_reported = true;
          emit->Emit("dimacs/tautological-clause", line_no, 1,
                     "clause contains both " + std::to_string(v) +
                         " and -" + std::to_string(v) +
                         "; it constrains nothing");
        }
        clause.push_back(
            sat::Lit(static_cast<sat::Var>(v - 1), lit < 0));
      }
      clauses.push_back(std::move(clause));
      current.clear();
    }
    if (!body.eof()) {
      emit->Emit("dimacs/syntax", line_no, 1,
                 "non-integer token in clause data");
      syntax_clean = false;
      body.clear();
      std::string rest;
      body >> rest;  // skip the offending token's line
    }
  }
  if (!saw_header) {
    emit->Emit("dimacs/syntax", 1, 1, "missing 'p cnf' header");
    return;
  }
  if (!current.empty()) {
    emit->Emit("dimacs/syntax", current_line, 1,
               "final clause not terminated by 0");
    syntax_clean = false;
  }
  if (declared_clauses >= 0 &&
      clauses.size() != static_cast<size_t>(declared_clauses)) {
    emit->Emit("dimacs/clause-count-mismatch", header_line, 1,
               "header declares " + std::to_string(declared_clauses) +
                   " clause(s) but the body has " +
                   std::to_string(clauses.size()));
  }
  std::vector<std::string> unused;
  for (int v = 0; v < num_vars; ++v) {
    if (!used[static_cast<size_t>(v)]) {
      unused.push_back(std::to_string(v + 1));
    }
  }
  if (!unused.empty()) {
    std::string shown =
        unused.size() <= 8
            ? Join(unused, ", ")
            : Join(std::vector<std::string>(unused.begin(),
                                            unused.begin() + 8),
                   ", ") + ", ...";
    emit->Emit("dimacs/unused-var", header_line, 1,
               std::to_string(unused.size()) +
                   " declared variable(s) never occur in any clause: " +
                   shown,
               "declared-vs-used mismatch; models leave these "
               "variables free");
  }
  // Satisfiability via the DPLL core, for instances small enough that
  // the budget-free solver cannot run away.  An explicit empty clause
  // already reported the instance as trivially unsatisfiable.
  if (syntax_clean && !saw_empty_clause &&
      num_vars <= emit->options().dimacs_solve_max_vars) {
    sat::DpllSolver solver(num_vars);
    for (const std::vector<sat::Lit>& clause : clauses) {
      solver.AddClause(clause);
    }
    if (solver.Solve() == sat::SolveStatus::kUnsat) {
      // Under --certify the verdict is re-derived with the CDCL tier
      // recording a DRAT refutation, which the independent checker
      // then re-checks; the DPLL default path stays untouched.
      int certified = -1;
      if (emit->options().certify) {
        sat::CnfInstance instance;
        instance.num_vars = num_vars;
        instance.clauses = clauses;
        const proof::CnfProofResult certified_run =
            proof::SolveCnfWithProof(instance, /*use_preprocessor=*/true);
        certified = certified_run.status == sat::SolveStatus::kUnsat &&
                            certified_run.certified
                        ? 1
                        : 0;
      }
      emit->Emit("dimacs/unsat", header_line, 1,
                 "the instance is unsatisfiable",
                 "as a knowledge base it is the (A2) absorbing edge; "
                 "as evidence it forces any revision, update, or "
                 "fitting result to be inconsistent ((A3) fails)",
                 {}, certified);
    }
  }
}

// ---------------------------------------------------------------------
// Weighted KBs
// ---------------------------------------------------------------------

void LintWeightedKb(Emitter* emit, const std::string& text) {
  const std::vector<std::string> lines = Split(text, '\n');
  int num_terms = -1;
  bool terms_valid = false;
  int header_line = 1;
  bool any_positive = false;
  bool entry_overflow = false;
  double total_mass = 0;
  std::map<uint64_t, int> first_line;
  for (size_t i = 0; i < lines.size(); ++i) {
    const int line_no = static_cast<int>(i + 1);
    const std::string line = Trim(lines[i]);
    if (line.empty() || line[0] == '#') continue;
    std::istringstream in(line);
    if (num_terms < 0) {
      std::string magic;
      in >> magic >> num_terms;
      std::string extra;
      if (magic != "wkb" || in.fail() || (in >> extra)) {
        emit->Emit("wkb/syntax", line_no, 1,
                   "expected 'wkb <num_terms>' header");
        return;
      }
      header_line = line_no;
      if (num_terms < 1 || num_terms > kMaxEnumTerms) {
        emit->Emit("wkb/terms-range", line_no, ColOf(line, "wkb") + 4,
                   "num_terms must be in [1, " +
                       std::to_string(kMaxEnumTerms) + "], got " +
                       std::to_string(num_terms),
                   "weights are stored densely over all 2^n "
                   "interpretations");
      } else {
        terms_valid = true;
      }
      continue;
    }
    uint64_t bits = 0;
    double weight = 0;
    in >> bits >> weight;
    std::string extra;
    if (in.fail() || (in >> extra) || line[0] == '-') {
      emit->Emit("wkb/syntax", line_no, 1,
                 "expected '<bits> <weight>', got '" + line + "'");
      continue;
    }
    if (terms_valid && bits >= (uint64_t{1} << num_terms)) {
      emit->Emit("wkb/bits-range", line_no, 1,
                 "interpretation " + std::to_string(bits) +
                     " out of range for " + std::to_string(num_terms) +
                     " term(s)");
      continue;
    }
    if (!(weight >= 0) || !std::isfinite(weight)) {
      emit->Emit("wkb/negative-weight", line_no, 1,
                 std::isfinite(weight)
                     ? "weight is negative"
                     : "weight is not finite");
      continue;
    }
    auto [it, inserted] = first_line.emplace(bits, line_no);
    if (!inserted) {
      emit->Emit("wkb/duplicate-entry", line_no, 1,
                 "interpretation " + std::to_string(bits) +
                     " already listed on line " +
                     std::to_string(it->second),
                 "the later entry overwrites the earlier weight");
    }
    if (weight > 0) any_positive = true;
    total_mass += weight;
    if (weight > kExactDoubleLimit) {
      entry_overflow = true;
      emit->Emit("wkb/weight-overflow", line_no, 1,
                 "weight exceeds 2^53, the largest exactly "
                 "representable double integer",
                 "wdist(ψ̃, I) = Σ dist·weight and ⊔ (pointwise sum) "
                 "silently lose precision beyond this");
    }
  }
  if (num_terms < 0) {
    emit->Emit("wkb/syntax", 1, 1, "missing 'wkb <num_terms>' header");
    return;
  }
  if (!any_positive) {
    emit->Emit("wkb/unsatisfiable", header_line, 1,
               "no interpretation has positive weight; the base is "
               "unsatisfiable",
               "the everywhere-zero base is absorbing: fitting it to "
               "anything stays unsatisfiable (weighted (A2))");
  }
  if (!entry_overflow && terms_valid &&
      total_mass * num_terms > kExactDoubleLimit) {
    emit->Emit("wkb/weight-overflow", header_line, 1,
               "max_dist x total weight = " +
                   std::to_string(num_terms) + " x " +
                   std::to_string(total_mass) +
                   " exceeds 2^53; wdist sums can lose integer "
                   "precision",
               "wdist(ψ̃, I) sums dist(I, J)·ψ̃(J) over the support");
  }
}

}  // namespace

Result<InputKind> InputKindForPath(const std::string& path) {
  const size_t dot = path.find_last_of('.');
  std::string ext =
      dot == std::string::npos ? "" : path.substr(dot + 1);
  for (char& c : ext) {
    c = static_cast<char>(c >= 'A' && c <= 'Z' ? c - 'A' + 'a' : c);
  }
  if (ext == "belief") return InputKind::kBeliefScript;
  if (ext == "cnf" || ext == "dimacs") return InputKind::kDimacsCnf;
  if (ext == "wkb") return InputKind::kWeightedKb;
  return Status::InvalidArgument(
      "cannot infer input kind of '" + path +
      "' (known extensions: .belief .cnf .dimacs .wkb)");
}

const std::vector<CheckInfo>& AllChecks() { return kChecks; }

const CheckInfo* FindCheck(const std::string& id) {
  for (const CheckInfo& info : kChecks) {
    if (id == info.id) return &info;
  }
  return nullptr;
}

std::vector<Diagnostic> LintScriptText(const std::string& file,
                                       const std::string& text,
                                       const LintOptions& options) {
  std::vector<Diagnostic> out;
  Emitter emit(file, options, &out);
  ScriptLinter linter(&emit, Split(text, '\n'));
  linter.Run();

  // The dataflow pass sees what the single-statement pass emitted so
  // it can drop same-line restatements of the same finding.
  std::set<std::pair<int, std::string>> emitted;
  for (const Diagnostic& d : out) emitted.insert({d.line, d.check_id});
  FlowAnalysis flow = AnalyzeScriptFlow(file, text, options, emitted);
  for (Diagnostic& d : flow.diagnostics) out.push_back(std::move(d));
  // Tautological-guard unwrap fix-its attach to the single-statement
  // pass's script/guard-tautology diagnostics.
  for (Diagnostic& d : out) {
    if (d.check_id != "script/guard-tautology") continue;
    auto it = flow.guard_unwraps.find(d.line);
    if (it != flow.guard_unwraps.end()) d.fixits.push_back(it->second);
  }

  NormalizeDiagnostics(&out);
  return out;
}

std::vector<Diagnostic> LintDimacsText(const std::string& file,
                                       const std::string& text,
                                       const LintOptions& options) {
  std::vector<Diagnostic> out;
  Emitter emit(file, options, &out);
  LintDimacs(&emit, text);
  NormalizeDiagnostics(&out);
  return out;
}

std::vector<Diagnostic> LintWeightedKbText(const std::string& file,
                                           const std::string& text,
                                           const LintOptions& options) {
  std::vector<Diagnostic> out;
  Emitter emit(file, options, &out);
  LintWeightedKb(&emit, text);
  NormalizeDiagnostics(&out);
  return out;
}

std::vector<Diagnostic> LintText(InputKind kind, const std::string& file,
                                 const std::string& text,
                                 const LintOptions& options) {
  switch (kind) {
    case InputKind::kBeliefScript:
      return LintScriptText(file, text, options);
    case InputKind::kDimacsCnf:
      return LintDimacsText(file, text, options);
    case InputKind::kWeightedKb:
      return LintWeightedKbText(file, text, options);
  }
  return {};
}

ScriptLintHook MakeScriptLintHook(const std::string& text,
                                  const LintOptions& options) {
  auto by_line = std::make_shared<std::map<int, std::vector<std::string>>>();
  for (const Diagnostic& d : LintScriptText("<script>", text, options)) {
    std::string rendered = std::string(SeverityName(d.severity)) + ": " +
                           d.message + " [" + d.check_id + "]";
    (*by_line)[d.line].push_back(std::move(rendered));
  }
  return [by_line](const ScriptStatement& stmt) {
    auto it = by_line->find(stmt.line);
    return it == by_line->end() ? std::vector<std::string>{} : it->second;
  };
}

Result<ScriptReport> RunScriptTextLinted(const std::string& text,
                                         BeliefStore* store,
                                         const LintOptions& options) {
  Result<BeliefScript> script = ParseScript(text);
  if (!script.ok()) return script.status();
  return RunScript(*script, store, MakeScriptLintHook(text, options));
}

FixResult ApplyAllFixIts(InputKind kind, const std::string& file,
                         const std::string& text,
                         const LintOptions& options, int max_iterations) {
  FixResult result;
  result.text = text;
  while (result.iterations < max_iterations) {
    const std::vector<Diagnostic> diagnostics =
        LintText(kind, file, result.text, options);
    bool any_fixit = false;
    for (const Diagnostic& d : diagnostics) {
      if (!d.fixits.empty()) any_fixit = true;
    }
    if (!any_fixit) break;
    int applied = 0;
    result.text = ApplyFixIts(result.text, diagnostics, &applied);
    ++result.iterations;
    if (applied == 0) break;  // every remaining edit overlapped/stale
    result.applied += applied;
  }
  return result;
}

}  // namespace arbiter::lint
