#include "change/commutative.h"

#include "change/revision.h"

namespace arbiter {

RevisionBasedArbitration::RevisionBasedArbitration(
    std::shared_ptr<const TheoryChangeOperator> revision)
    : revision_(std::move(revision)) {
  ARBITER_CHECK(revision_ != nullptr);
}

ModelSet RevisionBasedArbitration::Change(const ModelSet& psi,
                                          const ModelSet& phi) const {
  ARBITER_CHECK(psi.num_terms() == phi.num_terms());
  // Edge cases: one unsatisfiable voice concedes to the other.
  if (psi.empty()) return phi;
  if (phi.empty()) return psi;
  return revision_->Change(psi, phi).Union(revision_->Change(phi, psi));
}

RevisionBasedArbitration MakeTwoSidedDalalArbitration() {
  return RevisionBasedArbitration(std::make_shared<DalalRevision>());
}

}  // namespace arbiter
