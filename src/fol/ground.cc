#include "fol/ground.h"

#include <algorithm>

#include "util/string_util.h"

namespace arbiter::fol {

namespace {

FolPtr MakeNode(FolFormula node) {
  return std::make_shared<const FolFormula>(std::move(node));
}

FolPtr MakeConnective(FolFormula::Kind kind, std::vector<FolPtr> children) {
  FolFormula node;
  node.kind = kind;
  node.children = std::move(children);
  return MakeNode(std::move(node));
}

/// Recursive-descent parser for the first-order syntax.  Produces the
/// FolFormula AST; name classification (variable vs constant) happens
/// at grounding time against the quantifier environment.
class FolParser {
 public:
  explicit FolParser(const std::string& text) : text_(text) {}

  Result<FolPtr> Run() {
    Result<FolPtr> f = ParseQuantified();
    if (!f.ok()) return f;
    SkipSpace();
    if (pos_ != text_.size()) return Error("unexpected trailing input");
    return f;
  }

 private:
  Status Error(const std::string& msg) const {
    return Status::InvalidArgument(msg + " at position " +
                                   std::to_string(pos_) + " in \"" + text_ +
                                   "\"");
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Eat(const char* tok) {
    SkipSpace();
    size_t len = 0;
    while (tok[len] != '\0') ++len;
    if (text_.compare(pos_, len, tok) != 0) return false;
    if (IsIdentStart(tok[0])) {
      size_t end = pos_ + len;
      if (end < text_.size() && IsIdentCont(text_[end])) return false;
    }
    pos_ += len;
    return true;
  }

  bool EatIdent(std::string* out) {
    SkipSpace();
    if (pos_ >= text_.size() || !IsIdentStart(text_[pos_])) return false;
    size_t start = pos_;
    while (pos_ < text_.size() && IsIdentCont(text_[pos_])) ++pos_;
    *out = text_.substr(start, pos_ - start);
    return true;
  }

  /// Parses a quantifier if one is next; *found reports whether it was.
  /// The body extends as far right as possible (maximal scope).
  Result<FolPtr> TryParseQuantifier(bool* found) {
    *found = false;
    for (auto [word, kind] :
         {std::pair<const char*, FolFormula::Kind>{
              "forall", FolFormula::Kind::kForall},
          {"exists", FolFormula::Kind::kExists}}) {
      if (Eat(word)) {
        *found = true;
        std::string var;
        if (!EatIdent(&var)) {
          return Error("expected a variable after quantifier");
        }
        if (!Eat(".")) return Error("expected '.' after quantifier");
        Result<FolPtr> body = ParseQuantified();
        if (!body.ok()) return body;
        FolFormula node;
        node.kind = kind;
        node.bound_variable = var;
        node.children = {*body};
        return MakeNode(std::move(node));
      }
    }
    return Error("no quantifier");  // unused when *found is false
  }

  Result<FolPtr> ParseQuantified() {
    bool found = false;
    Result<FolPtr> q = TryParseQuantifier(&found);
    if (found) return q;
    return ParseIff();
  }

  Result<FolPtr> ParseIff() {
    Result<FolPtr> lhs = ParseImplies();
    if (!lhs.ok()) return lhs;
    FolPtr acc = *lhs;
    while (Eat("<->") || Eat("iff")) {
      Result<FolPtr> rhs = ParseImplies();
      if (!rhs.ok()) return rhs;
      acc = MakeConnective(FolFormula::Kind::kIff, {acc, *rhs});
    }
    return acc;
  }

  Result<FolPtr> ParseImplies() {
    Result<FolPtr> lhs = ParseOr();
    if (!lhs.ok()) return lhs;
    if (Eat("->") || Eat("implies")) {
      // The consequent may itself be quantified.
      Result<FolPtr> rhs = ParseQuantified();
      if (!rhs.ok()) return rhs;
      return MakeConnective(FolFormula::Kind::kImplies, {*lhs, *rhs});
    }
    return lhs;
  }

  Result<FolPtr> ParseOr() {
    Result<FolPtr> lhs = ParseAnd();
    if (!lhs.ok()) return lhs;
    std::vector<FolPtr> parts = {*lhs};
    while (Eat("||") || Eat("|") || Eat("or")) {
      Result<FolPtr> rhs = ParseAnd();
      if (!rhs.ok()) return rhs;
      parts.push_back(*rhs);
    }
    if (parts.size() == 1) return parts[0];
    return MakeConnective(FolFormula::Kind::kOr, std::move(parts));
  }

  Result<FolPtr> ParseAnd() {
    Result<FolPtr> lhs = ParseUnary();
    if (!lhs.ok()) return lhs;
    std::vector<FolPtr> parts = {*lhs};
    while (Eat("&&") || Eat("&") || Eat("and")) {
      Result<FolPtr> rhs = ParseUnary();
      if (!rhs.ok()) return rhs;
      parts.push_back(*rhs);
    }
    if (parts.size() == 1) return parts[0];
    return MakeConnective(FolFormula::Kind::kAnd, std::move(parts));
  }

  Result<FolPtr> ParseUnary() {
    if (Eat("!") || Eat("~") || Eat("not")) {
      Result<FolPtr> operand = ParseUnary();
      if (!operand.ok()) return operand;
      return MakeConnective(FolFormula::Kind::kNot, {*operand});
    }
    // Inline quantifiers take maximal scope to the right.
    bool found = false;
    Result<FolPtr> q = TryParseQuantifier(&found);
    if (found) return q;
    return ParseAtom();
  }

  Result<FolPtr> ParseAtom() {
    SkipSpace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    if (Eat("(")) {
      Result<FolPtr> inner = ParseQuantified();
      if (!inner.ok()) return inner;
      if (!Eat(")")) return Error("expected ')'");
      return inner;
    }
    if (Eat("true")) {
      FolFormula node;
      node.kind = FolFormula::Kind::kTrue;
      return MakeNode(std::move(node));
    }
    if (Eat("false")) {
      FolFormula node;
      node.kind = FolFormula::Kind::kFalse;
      return MakeNode(std::move(node));
    }
    std::string name;
    if (!EatIdent(&name)) return Error("expected an atom");
    FolFormula node;
    node.kind = FolFormula::Kind::kAtom;
    node.relation = name;
    if (Eat("(")) {
      for (;;) {
        std::string arg;
        if (!EatIdent(&arg)) return Error("expected a term");
        node.args.push_back(Term{false, arg});
        if (Eat(")")) break;
        if (!Eat(",")) return Error("expected ',' or ')'");
      }
    }
    return MakeNode(std::move(node));
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Grounder::Grounder(const std::vector<std::string>& constants)
    : constants_(constants) {
  ARBITER_CHECK_MSG(!constants.empty(), "domain must be nonempty");
}

Status Grounder::DeclareRelation(const std::string& name, int arity) {
  if (name.empty()) return Status::InvalidArgument("empty relation name");
  if (arity < 0) return Status::InvalidArgument("negative arity");
  if (relation_arity_.count(name)) {
    return Status::InvalidArgument("relation already declared: " + name);
  }
  relation_arity_[name] = arity;
  relations_.push_back(name);
  return Status::OK();
}

Result<int> Grounder::GroundAtom(
    const std::string& relation,
    const std::vector<std::string>& constant_args) {
  auto it = relation_arity_.find(relation);
  if (it == relation_arity_.end()) {
    return Status::NotFound("undeclared relation: " + relation);
  }
  if (static_cast<int>(constant_args.size()) != it->second) {
    return Status::InvalidArgument(
        relation + " has arity " + std::to_string(it->second) + ", got " +
        std::to_string(constant_args.size()) + " argument(s)");
  }
  std::string name = relation;
  if (!constant_args.empty()) {
    name += "(" + Join(constant_args, ",") + ")";
  }
  return vocab_.GetOrAddTerm(name);
}

Status Grounder::MaterializeAtoms() {
  for (const std::string& rel : relations_) {
    int arity = relation_arity_[rel];
    // Iterate all |D|^arity argument tuples in lexicographic order.
    std::vector<int> idx(arity, 0);
    for (;;) {
      std::vector<std::string> args;
      args.reserve(arity);
      for (int i : idx) args.push_back(constants_[i]);
      Result<int> atom = GroundAtom(rel, args);
      if (!atom.ok()) return atom.status();
      // Advance the tuple.
      int pos = arity - 1;
      while (pos >= 0 &&
             ++idx[pos] == static_cast<int>(constants_.size())) {
        idx[pos--] = 0;
      }
      if (pos < 0) break;
    }
  }
  return Status::OK();
}

Result<FolPtr> Grounder::ParseFol(const std::string& text) const {
  return FolParser(text).Run();
}

Result<Formula> Grounder::GroundWithEnv(
    const FolFormula& node, std::map<std::string, std::string>* env) {
  switch (node.kind) {
    case FolFormula::Kind::kTrue:
      return Formula::True();
    case FolFormula::Kind::kFalse:
      return Formula::False();
    case FolFormula::Kind::kAtom: {
      std::vector<std::string> resolved;
      resolved.reserve(node.args.size());
      for (const Term& arg : node.args) {
        auto bound = env->find(arg.name);
        if (bound != env->end()) {
          resolved.push_back(bound->second);
        } else if (std::find(constants_.begin(), constants_.end(),
                             arg.name) != constants_.end()) {
          resolved.push_back(arg.name);
        } else {
          return Status::InvalidArgument(
              "unknown term '" + arg.name +
              "' (not a constant, not bound by a quantifier)");
        }
      }
      Result<int> atom = GroundAtom(node.relation, resolved);
      if (!atom.ok()) return atom.status();
      return Formula::Var(*atom);
    }
    case FolFormula::Kind::kNot: {
      Result<Formula> inner = GroundWithEnv(*node.children[0], env);
      if (!inner.ok()) return inner;
      return Not(*inner);
    }
    case FolFormula::Kind::kAnd:
    case FolFormula::Kind::kOr: {
      std::vector<Formula> parts;
      parts.reserve(node.children.size());
      for (const FolPtr& child : node.children) {
        Result<Formula> part = GroundWithEnv(*child, env);
        if (!part.ok()) return part;
        parts.push_back(*part);
      }
      return node.kind == FolFormula::Kind::kAnd ? And(std::move(parts))
                                                 : Or(std::move(parts));
    }
    case FolFormula::Kind::kImplies:
    case FolFormula::Kind::kIff: {
      Result<Formula> lhs = GroundWithEnv(*node.children[0], env);
      if (!lhs.ok()) return lhs;
      Result<Formula> rhs = GroundWithEnv(*node.children[1], env);
      if (!rhs.ok()) return rhs;
      return node.kind == FolFormula::Kind::kImplies ? Implies(*lhs, *rhs)
                                                     : Iff(*lhs, *rhs);
    }
    case FolFormula::Kind::kForall:
    case FolFormula::Kind::kExists: {
      std::vector<Formula> parts;
      parts.reserve(constants_.size());
      // Save any shadowed binding.
      auto shadowed = env->find(node.bound_variable);
      bool had = shadowed != env->end();
      std::string old = had ? shadowed->second : "";
      for (const std::string& constant : constants_) {
        (*env)[node.bound_variable] = constant;
        Result<Formula> part = GroundWithEnv(*node.children[0], env);
        if (!part.ok()) {
          if (had) {
            (*env)[node.bound_variable] = old;
          } else {
            env->erase(node.bound_variable);
          }
          return part;
        }
        parts.push_back(*part);
      }
      if (had) {
        (*env)[node.bound_variable] = old;
      } else {
        env->erase(node.bound_variable);
      }
      return node.kind == FolFormula::Kind::kForall ? And(std::move(parts))
                                                    : Or(std::move(parts));
    }
  }
  ARBITER_CHECK_MSG(false, "unreachable FOL kind");
  return Formula::False();
}

Result<Formula> Grounder::GroundAst(const FolPtr& ast) {
  ARBITER_CHECK(ast != nullptr);
  std::map<std::string, std::string> env;
  return GroundWithEnv(*ast, &env);
}

Result<Formula> Grounder::Ground(const std::string& text) {
  Result<FolPtr> ast = ParseFol(text);
  if (!ast.ok()) return ast.status();
  return GroundAst(*ast);
}

}  // namespace arbiter::fol
