#include "model/preorder.h"

#include <atomic>
#include <limits>

#include "util/logging.h"
#include "util/parallel.h"

namespace arbiter {

namespace {

/// Sentinel "no incumbent yet"; doubles as the first prune bound.
constexpr int64_t kNoBound = std::numeric_limits<int64_t>::max();

/// Candidates per chunk for argmin scans.  Rank evaluations are
/// O(|Mod(ψ)|) each, so even modest chunks amortize pool overhead;
/// anything at or below one chunk runs inline on the calling thread.
constexpr uint64_t kArgminGrain = 512;

/// Interpretations per chunk when materializing rank tables.
constexpr uint64_t kRankTableGrain = 2048;

}  // namespace

TotalPreorder::TotalPreorder(int num_terms, const RankFn& rank)
    : num_terms_(num_terms) {
  ARBITER_CHECK(num_terms >= 0 && num_terms <= kMaxEnumTerms);
  const uint64_t space = 1ULL << num_terms;
  ranks_.resize(space);
  double* out = ranks_.data();
  ParallelFor(0, space, kRankTableGrain, [&](uint64_t lo, uint64_t hi) {
    for (uint64_t i = lo; i < hi; ++i) out[i] = rank(i);
  });
}

ModelSet TotalPreorder::MinOf(const ModelSet& s) const {
  ARBITER_CHECK(s.num_terms() == num_terms_);
  if (s.empty()) return ModelSet(num_terms_);
  double best = ranks_[s[0]];
  for (uint64_t m : s) best = std::min(best, ranks_[m]);
  std::vector<uint64_t> out;
  for (uint64_t m : s) {
    if (ranks_[m] == best) out.push_back(m);
  }
  return ModelSet::FromMasks(std::move(out), num_terms_);
}

ModelSet MinBy(const ModelSet& s, const RankFn& rank) {
  if (s.empty()) return ModelSet(s.num_terms());
  double best = rank(s[0]);
  std::vector<double> ranks;
  ranks.reserve(s.size());
  for (uint64_t m : s) {
    double r = rank(m);
    ranks.push_back(r);
    best = std::min(best, r);
  }
  std::vector<uint64_t> out;
  for (size_t i = 0; i < s.size(); ++i) {
    if (ranks[i] == best) out.push_back(s[i]);
  }
  return ModelSet::FromMasks(std::move(out), s.num_terms());
}

ModelSet MinByInt(const ModelSet& s,
                  const std::function<int64_t(uint64_t)>& rank) {
  return MinByIntBounded(
      s, [&rank](uint64_t m, int64_t /*bound*/) { return rank(m); });
}

ModelSet MinByIntBounded(const ModelSet& s, const BoundedRankFn& rank) {
  if (s.empty()) return ModelSet(s.num_terms());
  const uint64_t size = s.size();

  if (size <= kArgminGrain || ThreadPool::Instance().num_threads() <= 1) {
    // Serial single pass with pruning.  bound = best + 1 keeps ties:
    // an abort certifies rank > best, never rank == best.
    int64_t best = kNoBound;
    std::vector<uint64_t> ties;
    for (uint64_t m : s) {
      const int64_t bound = best == kNoBound ? kNoBound : best + 1;
      const int64_t r = rank(m, bound);
      if (r >= bound) continue;  // pruned: exact rank > best
      if (r < best) {
        best = r;
        ties.clear();
      }
      if (r == best) ties.push_back(m);
    }
    return ModelSet::FromMasks(std::move(ties), s.num_terms());
  }

  // Single parallel pass: each chunk tracks its own exact (best, ties)
  // while pruning at bound = min(chunk best, shared incumbent) + 1.
  // Both terms of that floor are >= the final minimum at all times, so
  // a pruned element has exact rank > final minimum and can never be a
  // tie; conversely every element whose rank equals the final minimum
  // sees bound > rank, is computed exactly, and is recorded by its
  // chunk.  Chunk tie lists therefore depend only on exact ranks,
  // never on scheduling, and concatenating the lists of chunks whose
  // best equals the global minimum — in chunk order — reproduces the
  // serial scan bit for bit.
  const uint64_t num_chunks = ParallelForNumChunks(0, size, kArgminGrain);
  std::vector<int64_t> chunk_best(num_chunks, kNoBound);
  std::vector<std::vector<uint64_t>> chunk_ties(num_chunks);
  std::atomic<int64_t> shared{kNoBound};
  ParallelFor(0, size, kArgminGrain, [&](uint64_t lo, uint64_t hi) {
    const uint64_t c = lo / kArgminGrain;
    int64_t local = kNoBound;  // exact best among this chunk's elements
    std::vector<uint64_t>& ties = chunk_ties[c];
    for (uint64_t idx = lo; idx < hi; ++idx) {
      const int64_t floor =
          std::min(local, shared.load(std::memory_order_relaxed));
      const int64_t bound = floor == kNoBound ? kNoBound : floor + 1;
      const int64_t r = rank(s[idx], bound);
      if (r >= bound) continue;  // exact rank > floor >= final minimum
      if (r < local) {
        local = r;
        ties.clear();
        int64_t cur = shared.load(std::memory_order_relaxed);
        while (r < cur &&
               !shared.compare_exchange_weak(cur, r,
                                             std::memory_order_relaxed)) {
        }
      }
      if (r == local) ties.push_back(s[idx]);
    }
    chunk_best[c] = local;
  });
  int64_t min_rank = kNoBound;
  for (int64_t b : chunk_best) min_rank = std::min(min_rank, b);
  std::vector<uint64_t> ties;
  for (uint64_t c = 0; c < num_chunks; ++c) {
    if (chunk_best[c] == min_rank) {
      ties.insert(ties.end(), chunk_ties[c].begin(), chunk_ties[c].end());
    }
  }
  return ModelSet::FromMasks(std::move(ties), s.num_terms());
}

}  // namespace arbiter
