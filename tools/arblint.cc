// arblint: lint belief scripts and knowledge-base files without
// executing them.
//
//   arblint [options] <file>...          # kind inferred from extension
//   arblint --kind=belief -              # lint stdin
//
// Options:
//   --format=text|json|sarif  output format (default text)
//   --werror             promote warnings to errors
//   --certify            re-check every SAT-decided verdict with the
//                        independent DRAT proof checker; findings whose
//                        verdict fails certification are downgraded one
//                        severity notch and tagged certified:false in
//                        json/sarif output
//   --kind=belief|cnf|wkb  override extension-based dispatch
//   --disable=<id>[,..]  suppress specific checks
//   --fix                apply fix-its (in place for files; stdin input
//                        writes fixed text to stdout, findings to stderr)
//   --list-checks        print the check registry and exit
//
// Exit codes: 0 clean (notes allowed), 1 warnings, 2 errors,
// 3 usage or I/O failure.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lint.h"
#include "lint/sarif.h"
#include "util/string_util.h"

namespace {

using arbiter::lint::AllChecks;
using arbiter::lint::CheckInfo;
using arbiter::lint::Diagnostic;
using arbiter::lint::InputKind;
using arbiter::lint::ApplyAllFixIts;
using arbiter::lint::FixResult;
using arbiter::lint::LintOptions;
using arbiter::lint::LintText;
using arbiter::lint::Severity;
using arbiter::lint::SeverityName;

int Usage() {
  std::cerr
      << "usage: arblint [options] <file>...\n"
      << "  lints .belief scripts, .cnf/.dimacs CNF, and .wkb weighted\n"
      << "  knowledge bases; '-' reads stdin (requires --kind)\n"
      << "options:\n"
      << "  --format=text|json|sarif  output format (default text)\n"
      << "  --werror               promote warnings to errors\n"
      << "  --certify              certify SAT verdicts with the DRAT\n"
      << "                         checker; uncertified findings are\n"
      << "                         downgraded and tagged in json/sarif\n"
      << "  --kind=belief|cnf|wkb  override extension-based dispatch\n"
      << "  --disable=<id>[,<id>]  suppress checks by id\n"
      << "  --fix                  apply fix-its (files in place; stdin\n"
      << "                         prints fixed text, findings to stderr)\n"
      << "  --list-checks          print the check registry and exit\n"
      << "exit codes: 0 clean, 1 warnings, 2 errors, 3 usage/IO error\n";
  return 3;
}

int ListChecks() {
  for (const CheckInfo& info : AllChecks()) {
    std::printf("%-28s %-8s %s\n", info.id, SeverityName(info.severity),
                info.summary);
  }
  return 0;
}

bool ReadInput(const std::string& path, std::string* text) {
  if (path == "-") {
    std::ostringstream buffer;
    buffer << std::cin.rdbuf();
    *text = buffer.str();
    return true;
  }
  std::ifstream in(path);
  if (!in) return false;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  *text = buffer.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string format = "text";
  bool werror = false;
  bool fix = false;
  bool have_kind = false;
  InputKind forced_kind = InputKind::kBeliefScript;
  LintOptions options;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      Usage();
      return 0;
    } else if (arg == "--list-checks") {
      return ListChecks();
    } else if (arg == "--werror") {
      werror = true;
    } else if (arg == "--certify") {
      options.certify = true;
    } else if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(9);
      if (format != "text" && format != "json" && format != "sarif") {
        return Usage();
      }
    } else if (arg.rfind("--kind=", 0) == 0) {
      const std::string kind = arg.substr(7);
      have_kind = true;
      if (kind == "belief") {
        forced_kind = InputKind::kBeliefScript;
      } else if (kind == "cnf" || kind == "dimacs") {
        forced_kind = InputKind::kDimacsCnf;
      } else if (kind == "wkb") {
        forced_kind = InputKind::kWeightedKb;
      } else {
        return Usage();
      }
    } else if (arg == "--fix") {
      fix = true;
    } else if (arg.rfind("--disable=", 0) == 0) {
      for (const std::string& id : arbiter::Split(arg.substr(10), ',')) {
        options.disabled_checks.push_back(arbiter::Trim(id));
      }
    } else if (arg.size() > 1 && arg[0] == '-') {
      std::cerr << "arblint: unknown option '" << arg << "'\n";
      return Usage();
    } else {
      files.push_back(arg);
    }
  }
  if (files.empty()) return Usage();

  bool io_error = false;
  std::vector<Diagnostic> all;
  for (const std::string& path : files) {
    InputKind kind = forced_kind;
    if (!have_kind) {
      arbiter::Result<InputKind> inferred =
          arbiter::lint::InputKindForPath(path);
      if (!inferred.ok()) {
        std::cerr << "arblint: " << inferred.status().message() << "\n";
        io_error = true;
        continue;
      }
      kind = *inferred;
    } else if (path == "-" && files.size() > 1) {
      std::cerr << "arblint: '-' cannot be combined with other inputs\n";
      return Usage();
    }
    std::string text;
    if (!ReadInput(path, &text)) {
      std::cerr << "arblint: cannot read '" << path << "'\n";
      io_error = true;
      continue;
    }
    const std::string label = path == "-" ? "<stdin>" : path;
    if (fix) {
      const FixResult fixed = ApplyAllFixIts(kind, label, text, options);
      if (path == "-") {
        std::cout << fixed.text;
      } else if (fixed.applied > 0) {
        std::ofstream out(path, std::ios::trunc);
        if (!out) {
          std::cerr << "arblint: cannot write '" << path << "'\n";
          io_error = true;
          continue;
        }
        out << fixed.text;
      }
      std::cerr << "arblint: " << label << ": applied " << fixed.applied
                << " fix-it(s) in " << fixed.iterations
                << " iteration(s)\n";
      // Findings below describe the *fixed* text.
      std::vector<Diagnostic> diags =
          LintText(kind, label, fixed.text, options);
      all.insert(all.end(), diags.begin(), diags.end());
      continue;
    }
    std::vector<Diagnostic> diags = LintText(kind, label, text, options);
    all.insert(all.end(), diags.begin(), diags.end());
  }

  if (werror) {
    for (Diagnostic& d : all) {
      if (d.severity == Severity::kWarning) d.severity = Severity::kError;
    }
  }
  arbiter::lint::NormalizeDiagnostics(&all);
  std::ostream& sink = fix ? std::cerr : std::cout;
  if (format == "json") {
    sink << arbiter::lint::RenderJsonReport(all);
  } else if (format == "sarif") {
    sink << arbiter::lint::RenderSarif(all);
  } else {
    sink << arbiter::lint::RenderText(all);
  }
  if (io_error) return 3;
  switch (arbiter::lint::MaxSeverity(all)) {
    case Severity::kError: return 2;
    case Severity::kWarning: return 1;
    case Severity::kNote: break;
  }
  return 0;
}
