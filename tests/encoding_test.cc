// Tests for Tseitin transformation and cardinality encodings:
// differential against brute-force model counting.

#include <gtest/gtest.h>

#include "enc/cardinality.h"
#include "enc/totalizer.h"
#include "enc/tseitin.h"
#include "logic/generator.h"
#include "logic/semantics.h"
#include "sat/all_sat.h"
#include "sat/solver.h"
#include "util/bit.h"

namespace arbiter::enc {
namespace {

using sat::AllSatOptions;
using sat::CollectAllSat;
using sat::Lit;
using sat::Solver;
using sat::SolveStatus;

TEST(TseitinTest, ProjectedModelsEqualBruteForce) {
  Rng rng(808);
  RandomFormulaOptions options;
  options.num_terms = 4;
  options.max_depth = 6;
  for (int i = 0; i < 100; ++i) {
    Formula f = RandomFormula(&rng, options);
    Solver solver;
    TseitinEncoder encoder(&solver);
    encoder.ReserveInputVars(4);
    encoder.Assert(f);
    AllSatOptions as;
    as.num_project = 4;
    EXPECT_EQ(CollectAllSat(&solver, as), EnumerateModels(f, 4))
        << "round " << i;
  }
}

TEST(TseitinTest, SharedSubtreesEncodedOnce) {
  Solver solver;
  TseitinEncoder encoder(&solver);
  encoder.ReserveInputVars(2);
  Formula shared = And(Formula::Var(0), Formula::Var(1));
  Formula f = Or(shared, Not(shared));
  Lit l1 = encoder.Encode(shared);
  int vars_after_first = solver.NumVars();
  encoder.Encode(f);
  Lit l2 = encoder.Encode(shared);
  EXPECT_EQ(l1, l2);
  // Only the Or node (and nothing for the cached And) was added;
  // Not is free.
  EXPECT_EQ(solver.NumVars(), vars_after_first + 1);
}

TEST(TseitinTest, ConstantsEncode) {
  Solver solver;
  TseitinEncoder encoder(&solver);
  EXPECT_TRUE(encoder.Assert(Formula::True()));
  EXPECT_EQ(solver.Solve(), SolveStatus::kSat);
  Solver solver2;
  TseitinEncoder encoder2(&solver2);
  encoder2.Assert(Formula::False());
  EXPECT_EQ(solver2.Solve(), SolveStatus::kUnsat);
}

// Counts the models of the clauses in `solver` projected on n vars.
int CountProjected(Solver* solver, int n) {
  AllSatOptions as;
  as.num_project = n;
  return static_cast<int>(CollectAllSat(solver, as).size());
}

// Binomial coefficient sum helper: number of n-bit words with <= k
// (or >= k, or == k) bits set.
int CountWords(int n, int k, int mode) {  // 0: <=, 1: >=, 2: ==
  int count = 0;
  for (uint64_t w = 0; w < (1ULL << n); ++w) {
    int pc = PopCount(w);
    if ((mode == 0 && pc <= k) || (mode == 1 && pc >= k) ||
        (mode == 2 && pc == k)) {
      ++count;
    }
  }
  return count;
}

class CardinalityTest : public ::testing::TestWithParam<std::pair<int, int>> {
 protected:
  std::vector<Lit> MakeInputs(Solver* solver, int n) {
    std::vector<Lit> lits;
    for (int i = 0; i < n; ++i) lits.push_back(Lit::Pos(solver->NewVar()));
    return lits;
  }
};

TEST_P(CardinalityTest, AtMostKCountsMatch) {
  auto [n, k] = GetParam();
  Solver solver;
  std::vector<Lit> lits = MakeInputs(&solver, n);
  AddAtMostK(&solver, lits, k);
  EXPECT_EQ(CountProjected(&solver, n), CountWords(n, k, 0));
}

TEST_P(CardinalityTest, AtLeastKCountsMatch) {
  auto [n, k] = GetParam();
  Solver solver;
  std::vector<Lit> lits = MakeInputs(&solver, n);
  AddAtLeastK(&solver, lits, k);
  EXPECT_EQ(CountProjected(&solver, n), CountWords(n, k, 1));
}

TEST_P(CardinalityTest, ExactlyKCountsMatch) {
  auto [n, k] = GetParam();
  Solver solver;
  std::vector<Lit> lits = MakeInputs(&solver, n);
  AddExactlyK(&solver, lits, k);
  EXPECT_EQ(CountProjected(&solver, n), CountWords(n, k, 2));
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, CardinalityTest,
    ::testing::Values(std::pair{1, 0}, std::pair{1, 1}, std::pair{3, 0},
                      std::pair{3, 1}, std::pair{3, 2}, std::pair{3, 3},
                      std::pair{5, 2}, std::pair{5, 4}, std::pair{6, 3},
                      std::pair{7, 1}, std::pair{7, 6}));

TEST(CardinalityTest, NegativeKIsUnsat) {
  Solver solver;
  std::vector<Lit> lits = {Lit::Pos(solver.NewVar())};
  AddAtMostK(&solver, lits, -1);
  EXPECT_EQ(solver.Solve(), SolveStatus::kUnsat);
}

TEST(CardinalityTest, AtLeastMoreThanNIsUnsat) {
  Solver solver;
  std::vector<Lit> lits = {Lit::Pos(solver.NewVar()),
                           Lit::Pos(solver.NewVar())};
  AddAtLeastK(&solver, lits, 3);
  EXPECT_EQ(solver.Solve(), SolveStatus::kUnsat);
}

TEST(CardinalityTest, MixedPolarities) {
  // at-most-1 over {a, !b}: models where a + (1-b) <= 1.
  Solver solver;
  Lit a = Lit::Pos(solver.NewVar());
  Lit b = Lit::Pos(solver.NewVar());
  AddAtMostK(&solver, {a, ~b}, 1);
  AllSatOptions as;
  as.num_project = 2;
  std::vector<uint64_t> models = CollectAllSat(&solver, as);
  // a=bit0, b=bit1.  Excluded: a=1, b=0 (count 2).
  EXPECT_EQ(models, (std::vector<uint64_t>{0b00, 0b10, 0b11}));
}

TEST(XorEqualsTest, TruthTable) {
  Solver solver;
  Lit a = Lit::Pos(solver.NewVar());
  Lit b = Lit::Pos(solver.NewVar());
  Lit d = EncodeXorEquals(&solver, a, b);
  for (int va = 0; va <= 1; ++va) {
    for (int vb = 0; vb <= 1; ++vb) {
      ASSERT_EQ(solver.SolveAssuming({Lit(a.var(), va == 0),
                                      Lit(b.var(), vb == 0)}),
                SolveStatus::kSat);
      EXPECT_EQ(solver.ModelValue(d.var()), (va ^ vb) == 1);
    }
  }
}

class UnaryCounterTest : public ::testing::TestWithParam<int> {};

TEST_P(UnaryCounterTest, ThresholdsMatchPopcount) {
  const int n = GetParam();
  Solver solver;
  std::vector<Lit> lits;
  for (int i = 0; i < n; ++i) lits.push_back(Lit::Pos(solver.NewVar()));
  UnaryCounter counter(&solver, lits);
  ASSERT_EQ(counter.size(), n);
  // Force every input pattern via assumptions and read the outputs.
  for (uint64_t w = 0; w < (1ULL << n); ++w) {
    std::vector<Lit> assumptions;
    for (int i = 0; i < n; ++i) {
      assumptions.push_back(Lit(lits[i].var(), ((w >> i) & 1) == 0));
    }
    ASSERT_EQ(solver.SolveAssuming(assumptions), SolveStatus::kSat);
    int pc = PopCount(w);
    for (int k = 1; k <= n; ++k) {
      EXPECT_EQ(solver.ModelValue(counter.AtLeast(k).var()), pc >= k)
          << "w=" << w << " k=" << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, UnaryCounterTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

class TotalizerTest : public ::testing::TestWithParam<int> {};

TEST_P(TotalizerTest, ThresholdsMatchPopcount) {
  const int n = GetParam();
  Solver solver;
  std::vector<Lit> lits;
  for (int i = 0; i < n; ++i) lits.push_back(Lit::Pos(solver.NewVar()));
  Totalizer counter(&solver, lits);
  ASSERT_EQ(counter.size(), n);
  for (uint64_t w = 0; w < (1ULL << n); ++w) {
    std::vector<Lit> assumptions;
    for (int i = 0; i < n; ++i) {
      assumptions.push_back(Lit(lits[i].var(), ((w >> i) & 1) == 0));
    }
    ASSERT_EQ(solver.SolveAssuming(assumptions), SolveStatus::kSat);
    int pc = PopCount(w);
    for (int k = 1; k <= n; ++k) {
      EXPECT_EQ(solver.ModelValue(counter.AtLeast(k).var()), pc >= k)
          << "w=" << w << " k=" << k;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, TotalizerTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7));

TEST(TotalizerTest, AgreesWithSequentialCounterOnCounts) {
  // Both encodings must admit exactly C(n, k) solutions under an
  // exactly-k constraint.
  const int n = 6;
  for (int k = 0; k <= n; ++k) {
    int counts[2] = {0, 0};
    for (int which = 0; which < 2; ++which) {
      Solver solver;
      std::vector<Lit> lits;
      for (int i = 0; i < n; ++i) {
        lits.push_back(Lit::Pos(solver.NewVar()));
      }
      if (which == 0) {
        UnaryCounter counter(&solver, lits);
        if (k >= 1) solver.AddUnit(counter.AtLeast(k));
        if (k < n) solver.AddUnit(counter.AtMost(k));
      } else {
        Totalizer counter(&solver, lits);
        if (k >= 1) solver.AddUnit(counter.AtLeast(k));
        if (k < n) solver.AddUnit(counter.AtMost(k));
      }
      AllSatOptions as;
      as.num_project = n;
      counts[which] =
          static_cast<int>(CollectAllSat(&solver, as).size());
    }
    EXPECT_EQ(counts[0], counts[1]) << "k=" << k;
    EXPECT_EQ(counts[0], CountWords(n, k, 2)) << "k=" << k;
  }
}

TEST(TotalizerTest, EmptyInputHasNoOutputs) {
  Solver solver;
  Totalizer counter(&solver, {});
  EXPECT_EQ(counter.size(), 0);
}

TEST(UnaryCounterTest, AtMostIsComplementOfAtLeast) {
  Solver solver;
  std::vector<Lit> lits = {Lit::Pos(solver.NewVar()),
                           Lit::Pos(solver.NewVar())};
  UnaryCounter counter(&solver, lits);
  EXPECT_EQ(counter.AtMost(0), ~counter.AtLeast(1));
  EXPECT_EQ(counter.AtMost(1), ~counter.AtLeast(2));
}

}  // namespace
}  // namespace arbiter::enc
