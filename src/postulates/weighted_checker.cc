#include "postulates/weighted_checker.h"

#include <atomic>
#include <optional>
#include <vector>

#include "util/logging.h"
#include "util/parallel.h"
#include "util/random.h"

namespace arbiter {

std::string WeightedPostulateName(WeightedPostulate p) {
  switch (p) {
    case WeightedPostulate::kF1: return "F1";
    case WeightedPostulate::kF2: return "F2";
    case WeightedPostulate::kF3: return "F3";
    case WeightedPostulate::kF4: return "F4";
    case WeightedPostulate::kF5: return "F5";
    case WeightedPostulate::kF6: return "F6";
    case WeightedPostulate::kF7: return "F7";
    case WeightedPostulate::kF8: return "F8";
  }
  return "?";
}

WeightedPostulateChecker::WeightedPostulateChecker(
    const WeightedChangeOperator* op, int num_terms)
    : op_(op), num_terms_(num_terms) {
  ARBITER_CHECK(op != nullptr);
  ARBITER_CHECK(num_terms >= 1 && num_terms <= kMaxEnumTerms);
}

namespace {

/// Which arguments a weighted postulate quantifies over.
enum class WShape { kPsiMu, kPsiMuPhi, kPsi1Psi2Mu };

WShape WShapeOf(WeightedPostulate p) {
  switch (p) {
    case WeightedPostulate::kF5:
    case WeightedPostulate::kF6:
      return WShape::kPsiMuPhi;
    case WeightedPostulate::kF7:
    case WeightedPostulate::kF8:
      return WShape::kPsi1Psi2Mu;
    default:
      return WShape::kPsiMu;
  }
}

std::string DescribeWkb(const WeightedKnowledgeBase& kb) {
  std::string out = "[";
  bool first = true;
  for (uint64_t i = 0; i < kb.space_size(); ++i) {
    double w = kb.Weight(i);
    if (w <= 0) continue;
    if (!first) out += " ";
    out += std::to_string(i) + ":" + std::to_string(w);
    first = false;
  }
  out += "]";
  return out;
}

}  // namespace

bool WeightedPostulateChecker::Holds(
    WeightedPostulate p, const WeightedKnowledgeBase& psi1,
    const WeightedKnowledgeBase& psi2, const WeightedKnowledgeBase& mu,
    const WeightedKnowledgeBase& /*mu2*/, const WeightedKnowledgeBase& phi,
    std::string* what) const {
  auto fail = [&](const std::string& msg) {
    *what = msg + " psi1=" + DescribeWkb(psi1) + " psi2=" +
            DescribeWkb(psi2) + " mu=" + DescribeWkb(mu) +
            " phi=" + DescribeWkb(phi);
    return false;
  };
  switch (p) {
    case WeightedPostulate::kF1:
      if (!op_->Change(psi1, mu).Implies(mu)) {
        return fail("psi |> mu does not imply mu");
      }
      return true;
    case WeightedPostulate::kF2:
      if (!psi1.IsSatisfiable() &&
          op_->Change(psi1, mu).IsSatisfiable()) {
        return fail("unsatisfiable psi produced satisfiable result");
      }
      return true;
    case WeightedPostulate::kF3:
      if (psi1.IsSatisfiable() && mu.IsSatisfiable() &&
          !op_->Change(psi1, mu).IsSatisfiable()) {
        return fail("satisfiable inputs gave unsatisfiable result");
      }
      return true;
    case WeightedPostulate::kF4:
      if (!op_->Change(psi1, mu).EquivalentTo(op_->Change(psi1, mu))) {
        return fail("operator not deterministic");
      }
      return true;
    case WeightedPostulate::kF5: {
      WeightedKnowledgeBase lhs = op_->Change(psi1, mu).And(phi);
      WeightedKnowledgeBase rhs = op_->Change(psi1, mu.And(phi));
      if (!lhs.Implies(rhs)) return fail("(psi|>mu)&phi !=> psi|>(mu&phi)");
      return true;
    }
    case WeightedPostulate::kF6: {
      WeightedKnowledgeBase narrowed = op_->Change(psi1, mu).And(phi);
      if (!narrowed.IsSatisfiable()) return true;
      if (!op_->Change(psi1, mu.And(phi)).Implies(narrowed)) {
        return fail("psi|>(mu&phi) !=> (psi|>mu)&phi");
      }
      return true;
    }
    case WeightedPostulate::kF7: {
      WeightedKnowledgeBase lhs =
          op_->Change(psi1, mu).And(op_->Change(psi2, mu));
      if (!lhs.Implies(op_->Change(psi1.Or(psi2), mu))) {
        return fail("(psi1|>mu)&(psi2|>mu) !=> (psi1 v psi2)|>mu");
      }
      return true;
    }
    case WeightedPostulate::kF8: {
      WeightedKnowledgeBase both =
          op_->Change(psi1, mu).And(op_->Change(psi2, mu));
      if (!both.IsSatisfiable()) return true;
      if (!op_->Change(psi1.Or(psi2), mu).Implies(both)) {
        return fail("(psi1 v psi2)|>mu !=> (psi1|>mu)&(psi2|>mu)");
      }
      return true;
    }
  }
  ARBITER_CHECK_MSG(false, "unreachable weighted postulate");
  return false;
}

std::optional<WeightedCounterexample>
WeightedPostulateChecker::CheckExhaustiveBinary(WeightedPostulate p) {
  ARBITER_CHECK_MSG(num_terms_ <= 2,
                    "binary-exhaustive weighted checking needs n <= 2");
  const uint64_t space = 1ULL << num_terms_;
  const uint64_t num_codes = 1ULL << space;
  auto from_code = [&](uint64_t code) {
    WeightedKnowledgeBase kb(num_terms_);
    for (uint64_t m = 0; m < space; ++m) {
      if ((code >> m) & 1) kb.SetWeight(m, 1.0);
    }
    return kb;
  };
  const WeightedKnowledgeBase empty(num_terms_);
  // One slice = all tuples with outer code `a`, scanned in serial
  // order; each worker keeps its own `what` buffer.  Slices run on the
  // thread pool; the first violation in slice order is reported at any
  // thread count.
  auto scan_slice =
      [&](uint64_t a) -> std::optional<WeightedCounterexample> {
    std::string what;
    WeightedKnowledgeBase wa = from_code(a);
    for (uint64_t b = 0; b < num_codes; ++b) {
      WeightedKnowledgeBase wb = from_code(b);
      switch (WShapeOf(p)) {
        case WShape::kPsiMu:
          if (!Holds(p, wa, empty, wb, empty, empty, &what)) {
            return WeightedCounterexample{p, what};
          }
          break;
        default:
          for (uint64_t c = 0; c < num_codes; ++c) {
            WeightedKnowledgeBase wc = from_code(c);
            bool ok = (WShapeOf(p) == WShape::kPsiMuPhi)
                          ? Holds(p, wa, empty, wb, empty, wc, &what)
                          : Holds(p, wa, wb, wc, empty, empty, &what);
            if (!ok) return WeightedCounterexample{p, what};
          }
          break;
      }
    }
    return std::nullopt;
  };
  std::vector<std::optional<WeightedCounterexample>> found(num_codes);
  std::atomic<uint64_t> first_hit{num_codes};
  ParallelFor(0, num_codes, 1, [&](uint64_t lo, uint64_t hi) {
    for (uint64_t a = lo; a < hi; ++a) {
      if (first_hit.load(std::memory_order_relaxed) < a) return;
      std::optional<WeightedCounterexample> hit = scan_slice(a);
      if (hit.has_value()) {
        found[a] = std::move(hit);
        uint64_t cur = first_hit.load(std::memory_order_relaxed);
        while (a < cur && !first_hit.compare_exchange_weak(
                              cur, a, std::memory_order_relaxed)) {
        }
        return;
      }
    }
  });
  for (uint64_t a = 0; a < num_codes; ++a) {
    if (found[a].has_value()) return found[a];
  }
  return std::nullopt;
}

std::optional<WeightedCounterexample> WeightedPostulateChecker::CheckSampled(
    WeightedPostulate p, int num_samples, uint64_t seed) {
  Rng rng(seed);
  const uint64_t space = 1ULL << num_terms_;
  auto random_wkb = [&]() {
    static const double kPalette[] = {0.5, 1.0, 2.0, 3.0, 5.0, 10.0, 20.0};
    WeightedKnowledgeBase kb(num_terms_);
    for (uint64_t m = 0; m < space; ++m) {
      if (rng.NextBool(0.5)) {
        kb.SetWeight(m, kPalette[rng.NextBelow(7)]);
      }
    }
    return kb;
  };
  std::string what;
  for (int s = 0; s < num_samples; ++s) {
    WeightedKnowledgeBase a = random_wkb();
    WeightedKnowledgeBase b = random_wkb();
    WeightedKnowledgeBase c = random_wkb();
    const WeightedKnowledgeBase empty(num_terms_);
    bool ok = true;
    switch (WShapeOf(p)) {
      case WShape::kPsiMu:
        ok = Holds(p, a, empty, b, empty, empty, &what);
        break;
      case WShape::kPsiMuPhi:
        ok = Holds(p, a, empty, b, empty, c, &what);
        break;
      case WShape::kPsi1Psi2Mu:
        ok = Holds(p, a, b, c, empty, empty, &what);
        break;
    }
    if (!ok) return WeightedCounterexample{p, what};
  }
  return std::nullopt;
}

}  // namespace arbiter
