#include "sat/preprocessor.h"

#include <algorithm>
#include <utility>
#include <atomic>

#include "util/logging.h"

namespace arbiter::sat {

namespace {

// Process-wide switch, sampled by each SatPreprocessor at construction.
std::atomic<bool> g_preprocessing_enabled{true};

// Pipeline size floor, read when Preprocess runs.
std::atomic<int> g_pp_min_clauses{160};

// Resolvent-size guards, in the SatELite tradition: skip a variable if
// either side's occurrence list is long (quadratic resolvent count) or
// any resolvent would be long (clause blowup); eliminate only when the
// clause count does not grow.
constexpr size_t kBveMaxSideOccs = 10;
constexpr size_t kBveMaxResolventLen = 24;
constexpr uint64_t kMaxRounds = 12;

}  // namespace

void SetSatPreprocessingEnabled(bool enabled) {
  g_preprocessing_enabled.store(enabled, std::memory_order_relaxed);
}

bool SatPreprocessingEnabled() {
  return g_preprocessing_enabled.load(std::memory_order_relaxed);
}

void SetSatPreprocessMinClauses(int min_clauses) {
  g_pp_min_clauses.store(min_clauses, std::memory_order_relaxed);
}

int SatPreprocessMinClauses() {
  return g_pp_min_clauses.load(std::memory_order_relaxed);
}

void SatPreprocessor::SetProofLog(proof::ProofLog* log) {
  proof_ = log;
  if (replay_) {
    // Passthrough mode: solver numbering is the original numbering.
    solver_.SetProofLog(log);
  } else if (log != nullptr) {
    // The inner solver works in dense post-elimination indices; its
    // steps are translated back through solver2orig_, which is read at
    // call time (so it is fine that the map is built later, and that
    // post-preprocess NewVar calls keep growing it).
    remap_log_ = std::make_unique<proof::RemapProofLog>(log, &solver2orig_);
    solver_.SetProofLog(remap_log_.get());
  } else {
    remap_log_.reset();
    solver_.SetProofLog(nullptr);
  }
}

uint64_t SatPreprocessor::Signature(const std::vector<Lit>& lits) {
  uint64_t sig = 0;
  for (const Lit l : lits) sig |= uint64_t{1} << (l.var() & 63);
  return sig;
}

Var SatPreprocessor::NewVar() {
  if (replay_) {
    ++num_vars_;
    return solver_.NewVar();
  }
  const Var v = num_vars_++;
  frozen_.push_back(0);
  fixed_.push_back(LBool::kUndef);
  if (preprocessed_) {
    // Post-preprocess variables map straight through.  (Before
    // preprocessing only `frozen_` and `fixed_` are maintained;
    // `Preprocess` sizes the occurrence-list arrays in one shot.)
    eliminated_.push_back(0);
    touched_.push_back(1);
    occ_.emplace_back();
    occ_.emplace_back();
    const Var sv = solver_.NewVar();
    orig2solver_.push_back(sv);
    ARBITER_DCHECK(static_cast<size_t>(sv) == solver2orig_.size());
    solver2orig_.push_back(v);
  }
  return v;
}

void SatPreprocessor::Freeze(Var v) {
  ARBITER_CHECK_MSG(v >= 0 && v < num_vars_, "freezing unknown variable");
  if (replay_) return;  // nothing is ever eliminated in replay mode
  ARBITER_CHECK_MSG(!preprocessed_ || !eliminated_[v],
                    "variable frozen after elimination");
  frozen_[v] = 1;
}

void SatPreprocessor::FreezeRange(Var begin, Var end) {
  for (Var v = begin; v < end; ++v) Freeze(v);
}

LBool SatPreprocessor::FixedValue(Lit l) const {
  return LitValue(fixed_[l.var()], l.negated());
}

bool SatPreprocessor::SetFixed(Lit l) {
  const LBool cur = FixedValue(l);
  if (cur == LBool::kTrue) return true;
  if (cur == LBool::kFalse) {
    // Both polarities derived: the refutation is complete ({~l} is
    // already in the proof database, and l's derivation is RUP there).
    if (proof_ != nullptr) {
      proof_->OnAdd({l});
      proof_->OnAdd({});
    }
    contradiction_ = true;
    return false;
  }
  if (proof_ != nullptr) proof_->OnAdd({l});
  fixed_[l.var()] = BoolToLBool(!l.negated());
  ++pstats_.fixed_vars;
  fixed_queue_.push_back(l);
  return true;
}

void SatPreprocessor::AttachOcc(int ci) {
  for (const Lit l : pending_[ci].lits) occ_[l.code()].push_back(ci);
  if (!in_subsume_queue_[ci]) {
    in_subsume_queue_[ci] = 1;
    subsume_queue_.push_back(ci);
  }
}

bool SatPreprocessor::ClauseContains(const PendingClause& c, Lit l) const {
  return std::binary_search(c.lits.begin(), c.lits.end(), l);
}

bool SatPreprocessor::AddPending(std::vector<Lit> lits) {
  // Same normalization as Solver::AddClause: sort, dedup, drop
  // root-false literals, detect tautologies and satisfied clauses.
  std::sort(lits.begin(), lits.end());
  std::vector<Lit> out;
  Lit prev;
  for (const Lit l : lits) {
    ARBITER_CHECK_MSG(l.var() >= 0 && l.var() < num_vars_,
                      "literal over unknown variable");
    if (FixedValue(l) == LBool::kTrue || (prev.defined() && l == ~prev)) {
      return true;
    }
    if (FixedValue(l) == LBool::kFalse || l == prev) continue;
    out.push_back(l);
    prev = l;
  }
  if (out.empty()) {
    if (proof_ != nullptr) proof_->OnAdd(out);
    contradiction_ = true;
    return false;
  }
  if (out.size() == 1) return SetFixed(out[0]);  // logs the unit
  // A root-shrunk form is a derived clause (RUP via the original plus
  // the fixed-literal units, all of which are in the proof database).
  if (proof_ != nullptr && out.size() != lits.size()) proof_->OnAdd(out);
  const int ci = static_cast<int>(pending_.size());
  pending_.push_back(PendingClause{std::move(out), 0, false});
  pending_[ci].sig = Signature(pending_[ci].lits);
  in_subsume_queue_.push_back(0);
  AttachOcc(ci);
  TouchClause(ci);
  return true;
}

bool SatPreprocessor::AddClause(std::vector<Lit> lits) {
  if (replay_) return solver_.AddClause(std::move(lits));
  if (contradiction_) return false;
  if (!preprocessed_) {
    // Units (and the empty clause) are handled eagerly so root
    // contradictions are reported at add time; everything else is
    // buffered verbatim, with normalization and occurrence bookkeeping
    // deferred to Preprocess so tiny instances can skip it entirely.
    for (const Lit l : lits) {
      ARBITER_CHECK_MSG(l.var() >= 0 && l.var() < num_vars_,
                        "literal over unknown variable");
    }
    if (lits.empty()) {
      contradiction_ = true;
      return false;
    }
    if (lits.size() == 1) return SetFixed(lits[0]);
    buffer_.push_back(std::move(lits));
    return true;
  }
  // After preprocessing: translate to solver indices, simplifying
  // against root-fixed values on the way.
  std::vector<Lit> mapped;
  std::vector<Lit> kept;  // original numbering, for proof logging
  mapped.reserve(lits.size());
  for (const Lit l : lits) {
    const Var v = l.var();
    ARBITER_CHECK_MSG(v >= 0 && v < num_vars_,
                      "literal over unknown variable");
    ARBITER_CHECK_MSG(!eliminated_[v],
                      "clause over an eliminated variable; freeze "
                      "variables that are mentioned after preprocessing");
    const LBool fv = FixedValue(l);
    if (fv == LBool::kTrue) return true;
    if (fv == LBool::kFalse) continue;
    if (proof_ != nullptr) kept.push_back(l);
    mapped.push_back(Lit(orig2solver_[v], l.negated()));
  }
  if (mapped.empty()) {
    if (proof_ != nullptr) proof_->OnAdd(mapped);
    contradiction_ = true;
    return false;
  }
  // Literals dropped against root-fixed values make the loaded clause
  // a derived form; log it in original numbering (the fixed-literal
  // units are in the proof database, so it is RUP).  The inner solver
  // then logs only what *it* changes, remapped back the same way.
  if (proof_ != nullptr && kept.size() != lits.size()) proof_->OnAdd(kept);
  return solver_.AddClause(std::move(mapped));
}

void SatPreprocessor::TouchClause(int ci) {
  for (const Lit l : pending_[ci].lits) touched_[l.var()] = 1;
}

void SatPreprocessor::KillClause(int ci) {
  TouchClause(ci);  // neighbours may have become eliminable
  pending_[ci].dead = true;
}

bool SatPreprocessor::StrengthenClause(int ci, Lit l) {
  PendingClause& c = pending_[ci];
  const auto it = std::lower_bound(c.lits.begin(), c.lits.end(), l);
  if (it == c.lits.end() || *it != l) return true;  // already gone
  std::vector<Lit> old_lits;
  if (proof_ != nullptr) old_lits = c.lits;
  c.lits.erase(it);
  touched_[l.var()] = 1;
  TouchClause(ci);
  ++pstats_.strengthened_literals;
  if (c.lits.size() == 1) {
    const Lit unit = c.lits[0];
    // Derive-then-retire order: SetFixed logs the unit addition (RUP
    // via the old form, still in the proof database), after which the
    // old form can be deleted.  KillClause only marks/touches, so the
    // swap from the historical kill-then-fix order is behavior-neutral.
    const bool ok = SetFixed(unit);
    if (proof_ != nullptr) proof_->OnDelete(old_lits);
    KillClause(ci);
    return ok;
  }
  if (proof_ != nullptr) {
    proof_->OnAdd(c.lits);
    proof_->OnDelete(old_lits);
  }
  c.sig = Signature(c.lits);
  if (!in_subsume_queue_[ci]) {
    in_subsume_queue_[ci] = 1;
    subsume_queue_.push_back(ci);
  }
  return true;
}

bool SatPreprocessor::PropagateFixed() {
  while (!fixed_queue_.empty() && !contradiction_) {
    const Lit l = fixed_queue_.back();
    fixed_queue_.pop_back();
    // Clauses containing l are satisfied; clauses containing ~l lose
    // the literal (which may cascade into further units).
    std::vector<int> pos_occs = std::move(occ_[l.code()]);
    occ_[l.code()].clear();
    for (const int ci : pos_occs) {
      if (!pending_[ci].dead && ClauseContains(pending_[ci], l)) {
        if (proof_ != nullptr) proof_->OnDelete(pending_[ci].lits);
        KillClause(ci);
      }
    }
    std::vector<int> neg_occs = std::move(occ_[(~l).code()]);
    occ_[(~l).code()].clear();
    for (const int ci : neg_occs) {
      if (!pending_[ci].dead && ClauseContains(pending_[ci], ~l)) {
        if (!StrengthenClause(ci, ~l)) return false;
      }
    }
  }
  return !contradiction_;
}

// Returns kLitUndefCode-coded "subsumes" or the single flipped literal.
// `small` must be a subset of `big` up to at most one flipped literal;
// both are sorted by code (hence by variable).
namespace {
enum class SubsumeResult { kNone, kSubsumes, kStrengthen };

/// Length of the resolvent of two sorted clauses on `skip_a`/`skip_b`
/// (the pivot literals), or -1 if it is a tautology.  A two-pointer
/// merge: no allocation, so variable elimination can price every
/// candidate before materializing anything.
int ResolventLen(const std::vector<Lit>& a, Lit skip_a,
                 const std::vector<Lit>& b, Lit skip_b) {
  size_t i = 0, j = 0;
  int len = 0;
  while (true) {
    while (i < a.size() && a[i] == skip_a) ++i;
    while (j < b.size() && b[j] == skip_b) ++j;
    if (i == a.size() && j == b.size()) return len;
    if (i == a.size() || (j < b.size() && b[j] < a[i])) {
      if (i < a.size() && a[i].var() == b[j].var()) return -1;
      ++len;
      ++j;
      continue;
    }
    if (j == b.size()) {
      ++len;
      ++i;
      continue;
    }
    if (a[i] == b[j]) {
      ++len;
      ++i;
      ++j;
      continue;
    }
    if (a[i].var() == b[j].var()) return -1;  // opposite polarities
    ++len;
    ++i;
  }
}

SubsumeResult SubsumeCheck(const std::vector<Lit>& small,
                           const std::vector<Lit>& big, Lit* flipped) {
  size_t j = 0;
  Lit flip;
  for (const Lit lc : small) {
    const Var vc = lc.var();
    while (j < big.size() && big[j].var() < vc) ++j;
    if (j >= big.size() || big[j].var() > vc) return SubsumeResult::kNone;
    if (big[j] != lc) {
      // Same variable, opposite sign: one flip allowed.
      if (flip.defined()) return SubsumeResult::kNone;
      flip = lc;
    }
    ++j;
  }
  if (!flip.defined()) return SubsumeResult::kSubsumes;
  *flipped = flip;
  return SubsumeResult::kStrengthen;
}
}  // namespace

bool SatPreprocessor::TrySubsumeWith(int ci) {
  bool changed = false;
  const PendingClause& c = pending_[ci];
  // Scan the occurrence list of the least-occurring literal in c; the
  // negated list too, which catches strengthenings where that literal
  // itself is the flipped one (occurrence lists are per-literal, so the
  // positive scan alone would miss them).
  Lit best = c.lits[0];
  size_t best_size = occ_[best.code()].size() + occ_[(~best).code()].size();
  for (const Lit l : c.lits) {
    const size_t s = occ_[l.code()].size() + occ_[(~l).code()].size();
    if (s < best_size) {
      best = l;
      best_size = s;
    }
  }
  for (const int list_code : {best.code(), (~best).code()}) {
    std::vector<int>& list = occ_[list_code];
    size_t keep = 0;
    for (size_t i = 0; i < list.size(); ++i) {
      const int cj = list[i];
      // Lazily compact stale entries (dead or strengthened-away).
      if (pending_[cj].dead ||
          !ClauseContains(pending_[cj], Lit::FromCode(list_code))) {
        continue;
      }
      list[keep++] = cj;
      if (cj == ci || pending_[ci].dead) continue;
      const PendingClause& d = pending_[cj];
      if (d.lits.size() < c.lits.size()) continue;
      if ((c.sig & ~d.sig) != 0) continue;
      Lit flipped;
      switch (SubsumeCheck(c.lits, d.lits, &flipped)) {
        case SubsumeResult::kNone:
          break;
        case SubsumeResult::kSubsumes:
          if (proof_ != nullptr) proof_->OnDelete(pending_[cj].lits);
          KillClause(cj);
          ++pstats_.subsumed_clauses;
          changed = true;
          --keep;  // entry now stale
          break;
        case SubsumeResult::kStrengthen:
          if (!StrengthenClause(cj, ~flipped)) {
            list.resize(keep);
            return changed;
          }
          changed = true;
          break;
      }
    }
    list.resize(keep);
  }
  return changed;
}

bool SatPreprocessor::SubsumptionPass() {
  bool changed = false;
  while (!subsume_queue_.empty() && !contradiction_) {
    const int ci = subsume_queue_.back();
    subsume_queue_.pop_back();
    in_subsume_queue_[ci] = 0;
    if (pending_[ci].dead) continue;
    changed |= TrySubsumeWith(ci);
    if (!fixed_queue_.empty() && !PropagateFixed()) break;
  }
  return changed;
}

bool SatPreprocessor::TryEliminate(Var v) {
  // Collect the live clauses of each polarity, compacting stale
  // occurrence entries on the way.
  auto gather = [this](Lit l, std::vector<int>* out) {
    std::vector<int>& list = occ_[l.code()];
    size_t keep = 0;
    for (const int ci : list) {
      if (pending_[ci].dead || !ClauseContains(pending_[ci], l)) continue;
      list[keep++] = ci;
      out->push_back(ci);
    }
    list.resize(keep);
  };
  const Lit pos = Lit::Pos(v);
  const Lit neg = Lit::Neg(v);
  std::vector<int> ps, ns;
  gather(pos, &ps);
  gather(neg, &ns);
  if (ps.size() > kBveMaxSideOccs || ns.size() > kBveMaxSideOccs) {
    return false;
  }
  // Dry run: price the elimination before allocating anything.  Most
  // candidates fail the growth bound, so the resolvents are only
  // materialized once the counting pass has committed to eliminating.
  size_t count = 0;
  for (const int pi : ps) {
    for (const int ni : ns) {
      const int len =
          ResolventLen(pending_[pi].lits, pos, pending_[ni].lits, neg);
      if (len < 0) continue;  // tautology
      if (len > static_cast<int>(kBveMaxResolventLen)) return false;
      if (++count > ps.size() + ns.size()) return false;
    }
  }
  std::vector<std::vector<Lit>> resolvents;
  resolvents.reserve(count);
  for (const int pi : ps) {
    for (const int ni : ns) {
      if (ResolventLen(pending_[pi].lits, pos, pending_[ni].lits, neg) < 0) {
        continue;
      }
      std::vector<Lit> res;
      res.reserve(pending_[pi].lits.size() + pending_[ni].lits.size() - 2);
      for (const Lit l : pending_[pi].lits) {
        if (l != pos) res.push_back(l);
      }
      for (const Lit l : pending_[ni].lits) {
        if (l != neg) res.push_back(l);
      }
      std::sort(res.begin(), res.end());
      res.erase(std::unique(res.begin(), res.end()), res.end());
      resolvents.push_back(std::move(res));
    }
  }
  // Commit: record the smaller polarity side for model reconstruction,
  // retire the originals, add the resolvents.
  ElimRecord record;
  record.p = ps.size() <= ns.size() ? pos : neg;
  const std::vector<int>& side = ps.size() <= ns.size() ? ps : ns;
  for (const int ci : side) {
    std::vector<Lit> others;
    others.reserve(pending_[ci].lits.size() - 1);
    for (const Lit l : pending_[ci].lits) {
      if (l != record.p) others.push_back(l);
    }
    record.clauses.push_back(std::move(others));
  }
  elim_stack_.push_back(std::move(record));
  if (proof_ != nullptr) {
    // Additions strictly before deletions: each resolvent is RUP via
    // its two parent clauses, so the parents must still be in the
    // proof database when the resolvent is introduced.  (DRAT-wise the
    // originals are merely deleted — the UNSAT direction of BVE needs
    // no RAT step; RAT is only required to *add* clauses of the
    // eliminated variable, which this pipeline never does.)
    for (const std::vector<Lit>& res : resolvents) proof_->OnAdd(res);
    for (const int ci : ps) proof_->OnDelete(pending_[ci].lits);
    for (const int ci : ns) proof_->OnDelete(pending_[ci].lits);
  }
  for (const int ci : ps) KillClause(ci);
  for (const int ci : ns) KillClause(ci);
  occ_[pos.code()].clear();
  occ_[neg.code()].clear();
  eliminated_[v] = 1;
  ++pstats_.eliminated_vars;
  for (std::vector<Lit>& res : resolvents) {
    ++pstats_.resolvents_added;
    if (!AddPending(std::move(res))) return true;  // contradiction
  }
  return true;
}

bool SatPreprocessor::BvePass() {
  // Cheapest variables first: fewest occurrences, so the resolvent
  // count bound usually holds and the formula shrinks monotonically.
  // Only variables whose occurrence lists changed since their last
  // attempt are candidates — a failed attempt stays failed until its
  // neighbourhood changes, so later rounds are nearly free.
  std::vector<std::pair<size_t, Var>> order;
  for (Var v = 0; v < num_vars_; ++v) {
    if (!touched_[v] || frozen_[v] || eliminated_[v] ||
        fixed_[v] != LBool::kUndef) {
      continue;
    }
    const size_t occs = occ_[Lit::Pos(v).code()].size() +
                        occ_[Lit::Neg(v).code()].size();
    order.emplace_back(occs, v);
  }
  std::sort(order.begin(), order.end());
  bool changed = false;
  for (const auto& [occs, v] : order) {
    if (contradiction_) break;
    if (fixed_[v] != LBool::kUndef) continue;  // fixed by a cascade
    touched_[v] = 0;
    if (TryEliminate(v)) {
      changed = true;
      if (!fixed_queue_.empty() && !PropagateFixed()) break;
    }
  }
  return changed;
}

void SatPreprocessor::BuildSolver() {
  orig2solver_.assign(num_vars_, -1);
  solver2orig_.clear();
  for (Var v = 0; v < num_vars_; ++v) {
    if (eliminated_[v] || fixed_[v] != LBool::kUndef) continue;
    const Var sv = solver_.NewVar();
    orig2solver_[v] = sv;
    ARBITER_DCHECK(static_cast<size_t>(sv) == solver2orig_.size());
    solver2orig_.push_back(v);
  }
  for (const PendingClause& c : pending_) {
    if (c.dead) continue;
    std::vector<Lit> mapped;
    mapped.reserve(c.lits.size());
    for (const Lit l : c.lits) {
      ARBITER_DCHECK(orig2solver_[l.var()] >= 0);
      mapped.push_back(Lit(orig2solver_[l.var()], l.negated()));
    }
    solver_.AddClause(std::move(mapped));
  }
}

void SatPreprocessor::Preprocess() {
  if (preprocessed_) return;
  preprocessed_ = true;
  if (replay_) return;  // clauses already went straight to the solver
  if (contradiction_) {
    buffer_.clear();
    fixed_queue_.clear();
    return;  // every solve path reports kUnsat before touching solver_
  }
  eliminated_.assign(num_vars_, 0);
  touched_.assign(num_vars_, 1);
  occ_.assign(2 * static_cast<size_t>(num_vars_), std::vector<int>());
  if (buffer_.size() < static_cast<size_t>(SatPreprocessMinClauses())) {
    // Below the size floor the pipeline costs more than it saves: load
    // identically (root units included) and let the solver's own
    // simplification do the rest.  Nothing is eliminated and variable
    // numbering is unchanged, so the wrapper degenerates to the same
    // passthrough as disabled mode from here on.
    if (proof_ != nullptr) {
      // Identity numbering: the solver logs directly, no remap.
      remap_log_.reset();
      solver_.SetProofLog(proof_);
    }
    for (Var v = 0; v < num_vars_; ++v) solver_.NewVar();
    for (const Lit l : fixed_queue_) solver_.AddClause({l});
    fixed_queue_.clear();
    for (std::vector<Lit>& lits : buffer_) solver_.AddClause(std::move(lits));
    buffer_.clear();
    replay_ = true;
    return;
  }
  for (std::vector<Lit>& lits : buffer_) {
    if (!AddPending(std::move(lits))) break;  // contradiction at root
  }
  buffer_.clear();
  if (!contradiction_) PropagateFixed();
  // Seed the subsumption queue with everything, then alternate
  // subsumption/strengthening and elimination until a fixpoint.
  bool changed = true;
  while (changed && !contradiction_ && pstats_.rounds < kMaxRounds) {
    ++pstats_.rounds;
    changed = SubsumptionPass();
    if (!contradiction_) changed |= BvePass();
  }
  if (!contradiction_) BuildSolver();
}

SolveStatus SatPreprocessor::Solve() { return SolveAssuming({}); }

SolveStatus SatPreprocessor::SolveAssuming(
    const std::vector<Lit>& assumptions) {
  if (replay_) {
    preprocessed_ = true;
    return solver_.SolveAssuming(assumptions);
  }
  if (!preprocessed_) {
    // Assumption variables of the triggering solve stay meaningful.
    for (const Lit a : assumptions) Freeze(a.var());
    Preprocess();
    // Preprocess may have taken the identity-load path, leaving the
    // wrapper in passthrough mode.
    if (replay_) return solver_.SolveAssuming(assumptions);
  }
  failed_assumptions_.clear();
  if (contradiction_) return SolveStatus::kUnsat;
  std::vector<Lit> mapped;
  mapped.reserve(assumptions.size());
  for (const Lit a : assumptions) {
    const Var v = a.var();
    ARBITER_CHECK_MSG(v >= 0 && v < num_vars_, "assumption over unknown var");
    ARBITER_CHECK_MSG(!eliminated_[v],
                      "assumption over an eliminated variable; freeze "
                      "assumption variables before preprocessing");
    const LBool fv = FixedValue(a);
    if (fv == LBool::kTrue) continue;
    if (fv == LBool::kFalse) {
      // Refuted at the root: this assumption alone is a core.  {~a} is
      // the corresponding derived clause (RUP: the unit ~a is already
      // in the proof database).
      if (proof_ != nullptr) proof_->OnAdd({~a});
      failed_assumptions_.assign(1, a);
      return SolveStatus::kUnsat;
    }
    mapped.push_back(Lit(orig2solver_[v], a.negated()));
  }
  const SolveStatus status = solver_.SolveAssuming(mapped);
  if (status == SolveStatus::kSat) {
    ExtendModel();
  } else if (status == SolveStatus::kUnsat) {
    for (const Lit l : solver_.FailedAssumptions()) {
      failed_assumptions_.push_back(Lit(solver2orig_[l.var()], l.negated()));
    }
  }
  return status;
}

void SatPreprocessor::ExtendModel() {
  model_.assign(num_vars_, LBool::kUndef);
  for (Var v = 0; v < num_vars_; ++v) {
    if (orig2solver_[v] >= 0) {
      model_[v] = BoolToLBool(solver_.ModelValue(orig2solver_[v]));
    } else if (fixed_[v] != LBool::kUndef) {
      model_[v] = fixed_[v];
    }
  }
  // Reverse order: a record's stored clauses mention only variables
  // still live when it was pushed, so later eliminations (extended
  // first) and solver variables are all decided by the time they are
  // read here.
  auto lit_true = [this](Lit l) {
    return LitValue(model_[l.var()], l.negated()) == LBool::kTrue;
  };
  for (auto it = elim_stack_.rbegin(); it != elim_stack_.rend(); ++it) {
    bool forced = false;
    for (const std::vector<Lit>& others : it->clauses) {
      bool sat = false;
      for (const Lit l : others) {
        if (lit_true(l)) {
          sat = true;
          break;
        }
      }
      if (!sat) {
        forced = true;
        break;
      }
    }
    // p true iff some stored clause needs it; otherwise p false (the
    // resolvents guarantee the ~p side is then satisfied elsewhere).
    const bool var_value = forced != it->p.negated();
    model_[it->p.var()] = BoolToLBool(var_value);
  }
}

bool SatPreprocessor::ModelValue(Var v) const {
  if (replay_) return solver_.ModelValue(v);
  ARBITER_DCHECK(v >= 0 && v < num_vars_);
  ARBITER_DCHECK(static_cast<size_t>(v) < model_.size());
  return model_[v] == LBool::kTrue;
}

bool SatPreprocessor::InConflict() const {
  if (replay_) return solver_.InConflict();
  return contradiction_ || solver_.InConflict();
}

}  // namespace arbiter::sat
