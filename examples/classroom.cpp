// The classroom scenario: Examples 3.1 and 4.1 of the paper, end to
// end.  An instructor offers course content (mu); students state
// wishes (psi).  Model-fitting picks the offer that best fits the
// whole class; weighted model-fitting lets a 35-student class vote
// with its feet.
//
// Build & run:  ./build/examples/classroom

#include <cstdio>

#include "change/fitting.h"
#include "change/weighted.h"
#include "core/arbiter.h"
#include "logic/interpretation.h"
#include "model/distance.h"

int main() {
  using namespace arbiter;

  Arbiter arb({"S", "D", "Q"});  // SQL, Datalog, Query-by-Example
  const Vocabulary& vocab = arb.vocabulary();

  std::printf("=== Example 3.1: three students ===\n");
  // The instructor offers Datalog only, or SQL and Datalog (no QBE).
  KnowledgeBase mu = *arb.ParseKb("((!S & D) | (S & D)) & !Q");
  // Student wishes: SQL only; Datalog only; all three.
  KnowledgeBase psi =
      *arb.ParseKb("(S & !D & !Q) | (!S & D & !Q) | (S & D & Q)");

  std::printf("offer mu:   %s\n", mu.models().ToString(vocab).c_str());
  std::printf("wishes psi: %s\n", psi.models().ToString(vocab).c_str());
  for (uint64_t option : mu.models()) {
    std::printf("  odist(psi, %s) = %d\n",
                Interpretation(option, 3).ToString(vocab).c_str(),
                OverallDist(psi.models(), option));
  }
  KnowledgeBase fitted = arb.Fit(psi, mu);
  std::printf("model-fitting verdict: %s   (paper: {S, D})\n",
              fitted.models().ToString(vocab).c_str());
  KnowledgeBase revised = arb.Revise(psi, mu);
  std::printf("Dalal revision would give: %s — one happy student, two "
              "dropouts\n\n",
              revised.models().ToString(vocab).c_str());

  std::printf("=== Example 4.1: thirty-five students ===\n");
  WeightedKnowledgeBase offer(3);
  offer.SetWeight(0b010, 1.0);  // {D}
  offer.SetWeight(0b011, 1.0);  // {S,D}
  WeightedKnowledgeBase wishes(3);
  wishes.SetWeight(0b001, 10.0);  // 10 x SQL only
  wishes.SetWeight(0b010, 20.0);  // 20 x Datalog only
  wishes.SetWeight(0b111, 5.0);   // 5 x everything
  std::printf("wishes: %s\n", wishes.ToString(vocab).c_str());
  for (uint64_t option : offer.Support()) {
    std::printf("  wdist(psi, %s) = %.0f\n",
                Interpretation(option, 3).ToString(vocab).c_str(),
                wishes.WeightedDistTo(option));
  }
  WdistFitting weighted;
  WeightedKnowledgeBase verdict = weighted.Change(wishes, offer);
  std::printf("weighted verdict: %s   (paper: {D} — the majority wins)\n",
              verdict.ToString(vocab).c_str());

  std::printf("\n=== If the instructor would teach anything ===\n");
  // Arbitration: fit the full interpretation space instead of mu.
  KnowledgeBase open_minded = arb.Arbitrate(psi, mu);
  std::printf("arbitration over all offers: %s\n",
              open_minded.models().ToString(vocab).c_str());
  return 0;
}
