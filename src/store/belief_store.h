#ifndef ARBITER_STORE_BELIEF_STORE_H_
#define ARBITER_STORE_BELIEF_STORE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "change/backend.h"
#include "change/result_cache.h"
#include "kb/knowledge_base.h"
#include "logic/vocabulary.h"
#include "util/status.h"

/// \file belief_store.h
/// A small transactional repository of named belief bases — the
/// database-facing surface of the library.  Each base is a knowledge
/// base over the store's shared vocabulary; changes are applied
/// through any registered theory change operator and every applied
/// change is journaled, so they can be undone.
///
///   BeliefStore store;
///   store.Define("jury", "g & a & (g & a -> v)");
///   store.Apply("jury", "dalal", "!v");          // revise in place
///   store.Entails("jury", "g");                  // -> true
///   store.Undo("jury");                          // back to the start
///
/// The vocabulary grows as formulas mention new terms; bases defined
/// earlier are transparently re-evaluated over the grown vocabulary
/// (their formulas don't mention the new terms, so their models simply
/// leave them free).
///
/// ## Distance backends and metrics
///
/// Each store owns a distance backend (change/backend.h) selecting how
/// distance-based operators are computed.  The default "enum" backend
/// enumerates interpretations and caps the vocabulary at kMaxEnumTerms
/// (24) terms.  Selecting "counting" (`SetBackend("counting")`, or
/// `set backend counting` in a belief script) lifts the cap to 63
/// terms: distance operators (dalal, revesz-max, revesz-sum,
/// arbitration-max/-sum) run via SAT/#SAT, and entailment/consistency
/// queries switch to CDCL past the enumeration limit.  Non-distance
/// operators still enumerate and stay capped at 24 terms.
///
/// Per-atom metric weights (`SetWeight("S", 3)`, or `set weight S 3`)
/// turn every distance into the weighted Hamming metric; operators
/// that cannot honor a non-unit metric fail loudly.
///
/// ## Failure semantics (strong error guarantee)
///
/// Every operation that can fail is transactional: inputs are parsed
/// and validated against a *scratch copy* of the store vocabulary, and
/// the store commits — vocabulary growth, base formula, undo stack and
/// journal together — only after every validation step has succeeded.
/// A non-OK Status therefore implies the store is observably unchanged:
/// `Dump()`, `Names()`, `vocabulary()`, `History()` and `HistoryDepth()`
/// all return exactly what they returned before the call.  In
/// particular a parse error or capacity overflow in `Define`, `Apply`,
/// `Entails`, `ConsistentWith` or `Counterfactual` never leaks
/// partially-registered terms into the vocabulary (which would silently
/// reinterpret every existing base over a larger universe).  The
/// differential fuzz harness (`src/test_support/`) replays randomized
/// op scripts with injected failures to enforce this guarantee.

namespace arbiter {

/// One journaled change applied to a base.
struct ChangeRecord {
  std::string op_name;
  std::string evidence_text;
};

/// Largest accepted metric weight.  Aggregated distances multiply
/// weights by atom flips and sum across up to ~120 atoms and 4096
/// models; capping each weight at 1e9 keeps every int64 accumulation
/// (diameters, Σ-aggregates) far from signed overflow.
inline constexpr int64_t kMaxMetricWeight = 1'000'000'000;

class BeliefStore {
 public:
  BeliefStore() = default;

  /// Copies share the operator-result cache (it is thread-safe and
  /// keyed independently of any one store) but never the distance
  /// backend: backends memoize mutable state (#SAT column caches), so
  /// each copy gets a fresh instance.  This is what makes
  /// copy-on-write snapshots safe for concurrent readers.
  BeliefStore(const BeliefStore& other);
  BeliefStore& operator=(const BeliefStore& other);
  BeliefStore(BeliefStore&&) = default;
  BeliefStore& operator=(BeliefStore&&) = default;

  const Vocabulary& vocabulary() const { return vocab_; }

  /// Selects the distance backend ("enum" or "counting").  Fails with
  /// kNotFound for unknown names and kInvalidArgument if the current
  /// vocabulary already exceeds the new backend's capacity.
  Status SetBackend(const std::string& name);

  /// The selected backend's registry name ("enum" by default).
  const std::string& backend_name() const { return backend_name_; }

  /// Sets the metric weight of a term (registering the term if new).
  /// Weights must be in [0, kMaxMetricWeight]; unset terms weigh 1.
  Status SetWeight(const std::string& term, int64_t weight);

  /// Attaches a (possibly shared) operator-result cache.  Apply and
  /// QueryDistance consult it before computing; pass nullptr to
  /// detach.  The cache key pins backend, operator, metric, ordered
  /// vocabulary, and the canonical forms of both formulas, so sharing
  /// one cache across many stores is sound.
  void SetResultCache(std::shared_ptr<OperatorResultCache> cache);

  const std::shared_ptr<OperatorResultCache>& result_cache() const {
    return cache_;
  }

  /// The explicitly-set weights, by term name.
  const std::map<std::string, int64_t>& weights() const { return weights_; }

  /// Per-index metric vector over the current vocabulary; empty when no
  /// weight was ever set (the unit/Dalal metric).
  std::vector<int64_t> MetricVector() const;

  /// Largest vocabulary the selected backend supports.
  int CapacityLimit() const;

  /// Defines (or redefines) a named base from formula text.
  /// Redefinition clears the base's history.
  Status Define(const std::string& name, const std::string& formula_text);

  /// True iff a base with this name exists.
  bool Contains(const std::string& name) const;

  /// Removes a base.
  Status Drop(const std::string& name);

  /// Names of all bases, sorted.
  std::vector<std::string> Names() const;

  /// Current contents of a base (re-evaluated over the current
  /// vocabulary if it has grown since the base was last touched).
  Result<KnowledgeBase> Get(const std::string& name) const;

  /// Applies `target <- target <op> evidence` in place and journals
  /// the change.  `op_name` is any registry name ("dalal", "winslett",
  /// "revesz-max", "arbitration-max", "two-sided-dalal", ...).
  Status Apply(const std::string& target, const std::string& op_name,
               const std::string& evidence_text);

  /// Reverts the most recent Apply on the base.  Fails if there is
  /// nothing to undo.
  Status Undo(const std::string& target);

  /// Number of undoable changes on a base (0 if unknown base).
  int HistoryDepth(const std::string& name) const;

  /// The journal of a base, oldest first.
  std::vector<ChangeRecord> History(const std::string& name) const;

  /// Semantic entailment: does the base imply the formula?  Enumerates
  /// up to kMaxEnumTerms; decided by CDCL past that (counting backend).
  Result<bool> Entails(const std::string& name,
                       const std::string& formula_text);

  /// Consistency: is base ∧ formula satisfiable?  Same dual-path rule
  /// as Entails.
  Result<bool> ConsistentWith(const std::string& name,
                              const std::string& formula_text);

  /// Logical equivalence of the base and the formula.  Same dual-path
  /// rule as Entails.
  Result<bool> EquivalentTo(const std::string& name,
                            const std::string& formula_text);

  /// KM counterfactual via update (the Ramsey test): "if `antecedent`
  /// were made true, would `consequent` hold?" — evaluated as
  /// (base ⋄ antecedent) ⊨ consequent with Winslett's update.
  Result<bool> Counterfactual(const std::string& name,
                              const std::string& antecedent_text,
                              const std::string& consequent_text);

  /// ## Snapshot reads
  ///
  /// The Query* family answers the same questions as Entails /
  /// ConsistentWith / EquivalentTo but never mutates the store: query
  /// formulas are parsed against a scratch vocabulary that is thrown
  /// away afterwards.  Terms the store has never seen are free in
  /// every base, so the answers are identical to the committing
  /// variants'.  Being `const`, these are safe to run concurrently
  /// from many readers against an immutable snapshot.
  Result<bool> QueryEntails(const std::string& name,
                            const std::string& formula_text) const;
  Result<bool> QueryConsistentWith(const std::string& name,
                                   const std::string& formula_text) const;
  Result<bool> QueryEquivalentTo(const std::string& name,
                                 const std::string& formula_text) const;

  /// Renders the base's model set (enumeration only: <= kMaxEnumTerms
  /// terms, kCapacityExceeded past that).
  Result<std::string> QueryModels(const std::string& name) const;

  /// The aggregated optimal distance of `base <op> mu` in decimal, or
  /// "undefined" when the distance is undefined (empty result / ψ
  /// unsatisfiable convention).  Runs on a fresh backend instance (the
  /// store's own backend memoizes state and this is const), consulting
  /// the result cache when one is attached.
  Result<std::string> QueryDistance(const std::string& name,
                                    const std::string& op_name,
                                    const std::string& mu_text) const;

  /// Human-readable listing of every base and its models.
  std::string Dump() const;

  /// Serializes the store (vocabulary, base formulas, undo stacks, and
  /// journals) to a line-based text format.  Each base is written as
  /// its *current* formula, one `undo` line per pre-change formula
  /// (oldest first), and its journal as `hist` lines.  State is
  /// persisted verbatim, never reconstructed by re-running operators:
  /// not every operator commutes with vocabulary growth, so replay
  /// over the final vocabulary could diverge from the saved state.
  std::string Save() const;

  /// Reconstructs a store from Save() output.  Formulas, undo stacks,
  /// and journals are restored syntactically (operator names and
  /// evidence are validated but not re-executed), so `History()`,
  /// `HistoryDepth()`, and `Undo()` survive a Save/Load round trip
  /// exactly.
  static Result<BeliefStore> Load(const std::string& text);

 private:
  struct Entry {
    Formula formula;
    std::vector<Formula> undo_stack;   // previous formulas
    std::vector<ChangeRecord> journal;  // applied changes
  };

  /// Parses `text` against `*scratch` (a copy of vocab_) and validates
  /// the backend's capacity.  Callers commit the scratch vocabulary
  /// back into the store only once the whole operation has succeeded.
  Result<Formula> ParseValidated(const std::string& text,
                                 Vocabulary* scratch) const;
  Result<const Entry*> Find(const std::string& name) const;

  /// MetricVector over an arbitrary (scratch) vocabulary.
  std::vector<int64_t> MetricVectorFor(const Vocabulary& vocab) const;

  /// Satisfiability of `f` over an n-term universe, routed by size:
  /// enumeration within kMaxEnumTerms, CDCL beyond.
  bool IsSatisfiableOver(const Formula& f, int num_terms) const;

  Result<bool> ComputeEntails(const Formula& base, const Formula& query,
                              int num_terms) const;
  Result<bool> ComputeConsistentWith(const Formula& base,
                                     const Formula& query,
                                     int num_terms) const;
  Result<bool> ComputeEquivalentTo(const Formula& base,
                                   const Formula& query,
                                   int num_terms) const;

  Vocabulary vocab_;
  std::map<std::string, Entry> bases_;
  std::string backend_name_ = "enum";
  std::shared_ptr<DistanceBackend> backend_;
  std::map<std::string, int64_t> weights_;
  std::shared_ptr<OperatorResultCache> cache_;
};

}  // namespace arbiter

#endif  // ARBITER_STORE_BELIEF_STORE_H_
