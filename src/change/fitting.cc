#include "change/fitting.h"

#include <array>
#include <memory>
#include <mutex>

#include "model/distance.h"
#include "model/preorder.h"

namespace arbiter {

namespace {

/// ModelSet::Full(n) materializes all 2^n masks; arbitration calls it
/// on every Change.  Cache one immutable copy per vocabulary size
/// (built once, then shared — safe to read concurrently).
const ModelSet& CachedFullUniverse(int num_terms) {
  static std::array<std::once_flag, kMaxEnumTerms + 1> flags;
  static std::array<std::unique_ptr<const ModelSet>, kMaxEnumTerms + 1> sets;
  ARBITER_CHECK(num_terms >= 0 && num_terms <= kMaxEnumTerms);
  std::call_once(flags[num_terms], [num_terms] {
    sets[num_terms] =
        std::make_unique<const ModelSet>(ModelSet::Full(num_terms));
  });
  return *sets[num_terms];
}

}  // namespace

ModelSet MaxFitting::Change(const ModelSet& psi, const ModelSet& mu) const {
  ARBITER_CHECK(psi.num_terms() == mu.num_terms());
  if (psi.empty() || mu.empty()) return ModelSet(mu.num_terms());
  // odist never exceeds the diameter, so clamping the prune bound to
  // diameter + 1 keeps the kernel's exact-below-bound contract intact.
  const int64_t diameter_bound = psi.num_terms() + 1;
  return MinByIntBounded(
      mu, [&psi, diameter_bound](uint64_t i, int64_t bound) -> int64_t {
        const int b =
            static_cast<int>(bound < diameter_bound ? bound : diameter_bound);
        return OverallDistBounded(psi, i, b);
      });
}

ModelSet SumFitting::Change(const ModelSet& psi, const ModelSet& mu) const {
  ARBITER_CHECK(psi.num_terms() == mu.num_terms());
  if (psi.empty() || mu.empty()) return ModelSet(mu.num_terms());
  // Column-count oracle: O(n) exact sdist per candidate, so the argmin
  // is linear in |Mod(μ)| + |Mod(ψ)| and pruning is moot.
  const SumDistOracle sdist(psi);
  return MinByIntBounded(
      mu, [&sdist](uint64_t i, int64_t /*bound*/) { return sdist(i); });
}

ArbitrationOperator::ArbitrationOperator(
    std::shared_ptr<const TheoryChangeOperator> fitting)
    : fitting_(std::move(fitting)) {
  ARBITER_CHECK(fitting_ != nullptr);
}

ModelSet ArbitrationOperator::Change(const ModelSet& psi,
                                     const ModelSet& phi) const {
  ARBITER_CHECK(psi.num_terms() == phi.num_terms());
  ModelSet combined = psi.Union(phi);
  return fitting_->Change(combined, CachedFullUniverse(psi.num_terms()));
}

ModelSet LexFitting::Change(const ModelSet& psi, const ModelSet& mu) const {
  ARBITER_CHECK(psi.num_terms() == mu.num_terms());
  if (psi.empty() || mu.empty()) return ModelSet(mu.num_terms());
  // Fixed order irrespective of ψ: smallest interpretation mask wins.
  return ModelSet::Singleton(mu[0], mu.num_terms());
}

ArbitrationOperator MakeMaxArbitration() {
  return ArbitrationOperator(std::make_shared<MaxFitting>());
}

ArbitrationOperator MakeSumArbitration() {
  return ArbitrationOperator(std::make_shared<SumFitting>());
}

}  // namespace arbiter
