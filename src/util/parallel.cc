#include "util/parallel.h"

#include <algorithm>
#include <cstdlib>

namespace arbiter {

namespace {

/// Default lane count: ARBITER_THREADS env var (clamped to [1, 512]),
/// else hardware concurrency, else 1.
int DefaultNumThreads() {
  if (const char* env = std::getenv("ARBITER_THREADS")) {
    char* end = nullptr;
    const long parsed = std::strtol(env, &end, 10);
    if (end != env && parsed >= 1) {
      return static_cast<int>(std::min(parsed, 512L));
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace

ThreadPool& ThreadPool::Instance() {
  static ThreadPool pool;
  return pool;
}

ThreadPool::ThreadPool() : num_threads_(DefaultNumThreads()) {
  StartWorkers();
}

ThreadPool::~ThreadPool() { StopWorkers(); }

void ThreadPool::StartWorkers() {
  {
    // No workers exist yet, but shutdown_ is guarded by queue_mu_ and
    // the annotations hold on every path, constructor included.
    MutexLock lock(&queue_mu_);
    shutdown_ = false;
  }
  const int spawn = num_threads_ - 1;
  workers_.reserve(spawn > 0 ? spawn : 0);
  for (int i = 0; i < spawn; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void ThreadPool::StopWorkers() {
  {
    MutexLock lock(&queue_mu_);
    shutdown_ = true;
  }
  queue_cv_.NotifyAll();
  for (std::thread& t : workers_) t.join();
  workers_.clear();
}

void ThreadPool::SetNumThreads(int n) {
  StopWorkers();
  num_threads_ = n <= 0 ? DefaultNumThreads() : std::min(n, 512);
  StartWorkers();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      MutexLock lock(&queue_mu_);
      while (!shutdown_ && queue_.empty()) queue_cv_.Wait(queue_mu_);
      if (shutdown_) return;
      // All idle workers pile onto the front job; exhausted jobs are
      // dropped (their in-flight chunks finish on the claiming threads).
      job = queue_.front();
      if (job->next.load(std::memory_order_relaxed) >= job->num_chunks) {
        queue_.erase(queue_.begin());
        continue;
      }
    }
    HelpWith(job);
  }
}

void ThreadPool::HelpWith(const std::shared_ptr<Job>& job) {
  uint64_t chunk;
  while ((chunk = job->next.fetch_add(1, std::memory_order_relaxed)) <
         job->num_chunks) {
    (*job->fn)(chunk);
    if (job->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        job->num_chunks) {
      // The lock pairs with the waiter's predicate check so the final
      // notify cannot slip between its check and its wait.
      { MutexLock lock(&job->mu); }
      job->cv.NotifyAll();
    }
  }
}

void ThreadPool::RunChunks(uint64_t num_chunks,
                           const std::function<void(uint64_t)>& fn) {
  if (num_chunks == 0) return;
  if (num_threads_ <= 1 || num_chunks == 1) {
    for (uint64_t c = 0; c < num_chunks; ++c) fn(c);
    return;
  }
  auto job = std::make_shared<Job>();
  job->num_chunks = num_chunks;
  job->fn = &fn;
  {
    MutexLock lock(&queue_mu_);
    queue_.push_back(job);
  }
  queue_cv_.NotifyAll();
  HelpWith(job);
  {
    MutexLock lock(&job->mu);
    while (job->done.load(std::memory_order_acquire) != job->num_chunks) {
      job->cv.Wait(job->mu);
    }
  }
  {
    MutexLock lock(&queue_mu_);
    auto it = std::find(queue_.begin(), queue_.end(), job);
    if (it != queue_.end()) queue_.erase(it);
  }
}

void ParallelFor(uint64_t begin, uint64_t end, uint64_t grain,
                 const std::function<void(uint64_t, uint64_t)>& fn) {
  if (begin >= end) return;
  if (grain == 0) grain = 1;
  const uint64_t num_chunks = (end - begin + grain - 1) / grain;
  ThreadPool::Instance().RunChunks(num_chunks, [&](uint64_t chunk) {
    const uint64_t lo = begin + chunk * grain;
    const uint64_t hi = std::min(end, lo + grain);
    fn(lo, hi);
  });
}

}  // namespace arbiter
