#include "change/fitting.h"

#include <array>
#include <memory>
#include <mutex>
#include <string>
#include <utility>

#include "model/distance.h"
#include "model/preorder.h"

namespace arbiter {

namespace {

/// ModelSet::Full(n) materializes all 2^n masks; arbitration calls it
/// on every Change.  Cache one immutable copy per vocabulary size
/// (built once, then shared — safe to read concurrently).
const ModelSet& CachedFullUniverse(int num_terms) {
  static std::array<std::once_flag, kMaxEnumTerms + 1> flags;
  static std::array<std::unique_ptr<const ModelSet>, kMaxEnumTerms + 1> sets;
  ARBITER_CHECK(num_terms >= 0 && num_terms <= kMaxEnumTerms);
  std::call_once(flags[num_terms], [num_terms] {
    sets[num_terms] =
        std::make_unique<const ModelSet>(ModelSet::Full(num_terms));
  });
  return *sets[num_terms];
}

}  // namespace

DistanceFittingOperator::DistanceFittingOperator(DistanceSemantics semantics,
                                                 std::string name)
    : semantics_(std::move(semantics)), name_(std::move(name)) {
  if (name_.empty()) name_ = "fitting(" + semantics_.DebugName() + ")";
}

ModelSet DistanceFittingOperator::Change(const ModelSet& psi,
                                         const ModelSet& mu) const {
  return SemanticArgmin(semantics_, psi, mu);
}

std::shared_ptr<const DistanceFittingOperator> MakeFittingOperator(
    DistanceSemantics semantics, std::string name) {
  return std::make_shared<const DistanceFittingOperator>(std::move(semantics),
                                                         std::move(name));
}

ModelSet MaxFitting::Change(const ModelSet& psi, const ModelSet& mu) const {
  return SemanticArgmin(MaxSemantics(), psi, mu);
}

ModelSet SumFitting::Change(const ModelSet& psi, const ModelSet& mu) const {
  return SemanticArgmin(SumSemantics(), psi, mu);
}

ArbitrationOperator::ArbitrationOperator(
    std::shared_ptr<const TheoryChangeOperator> fitting)
    : fitting_(std::move(fitting)) {
  ARBITER_CHECK(fitting_ != nullptr);
}

ModelSet ArbitrationOperator::Change(const ModelSet& psi,
                                     const ModelSet& phi) const {
  ARBITER_CHECK(psi.num_terms() == phi.num_terms());
  ModelSet combined = psi.Union(phi);
  return fitting_->Change(combined, CachedFullUniverse(psi.num_terms()));
}

ModelSet LexFitting::Change(const ModelSet& psi, const ModelSet& mu) const {
  ARBITER_CHECK(psi.num_terms() == mu.num_terms());
  if (psi.empty() || mu.empty()) return ModelSet(mu.num_terms());
  // Fixed order irrespective of ψ: smallest interpretation mask wins.
  return ModelSet::Singleton(mu[0], mu.num_terms());
}

ArbitrationOperator MakeMaxArbitration() {
  return ArbitrationOperator(std::make_shared<MaxFitting>());
}

ArbitrationOperator MakeSumArbitration() {
  return ArbitrationOperator(std::make_shared<SumFitting>());
}

}  // namespace arbiter
