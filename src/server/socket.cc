#include "server/socket.h"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <istream>
#include <ostream>
#include <streambuf>
#include <utility>

#include "server/session.h"

namespace arbiter::server {

namespace {

/// Minimal buffered streambuf over a file descriptor — enough for the
/// line-based frame protocol, with EINTR retries.
class FdStreambuf : public std::streambuf {
 public:
  explicit FdStreambuf(int fd) : fd_(fd) {
    setg(in_, in_, in_);
    setp(out_, out_ + sizeof(out_));
  }

 protected:
  int_type underflow() override {
    if (gptr() < egptr()) return traits_type::to_int_type(*gptr());
    ssize_t n;
    do {
      n = ::read(fd_, in_, sizeof(in_));
    } while (n < 0 && errno == EINTR);
    if (n <= 0) return traits_type::eof();
    setg(in_, in_, in_ + n);
    return traits_type::to_int_type(*gptr());
  }

  int_type overflow(int_type ch) override {
    if (Flush() != 0) return traits_type::eof();
    if (!traits_type::eq_int_type(ch, traits_type::eof())) {
      *pptr() = traits_type::to_char_type(ch);
      pbump(1);
    }
    return traits_type::not_eof(ch);
  }

  int sync() override { return Flush(); }

 private:
  int Flush() {
    const char* p = pbase();
    size_t len = static_cast<size_t>(pptr() - pbase());
    while (len > 0) {
      ssize_t n = ::write(fd_, p, len);
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) return -1;
      p += n;
      len -= static_cast<size_t>(n);
    }
    setp(out_, out_ + sizeof(out_));
    return 0;
  }

  int fd_;
  char in_[4096];
  char out_[4096];
};

}  // namespace

UnixSocketServer::UnixSocketServer(BeliefServer* server) : server_(server) {}

UnixSocketServer::~UnixSocketServer() { Stop(); }

Status UnixSocketServer::Start(const std::string& path) {
  if (listen_fd_ >= 0) {
    return Status::InvalidArgument("socket server already started");
  }
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument(
        "socket path exceeds " + std::to_string(sizeof(addr.sun_path) - 1) +
        " bytes: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket(): ") + std::strerror(errno));
  }
  ::unlink(path.c_str());  // a stale file from a dead server blocks bind
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status status(StatusCode::kInternal,
                  "bind(" + path + "): " + std::strerror(errno));
    ::close(fd);
    return status;
  }
  if (::listen(fd, 16) != 0) {
    Status status(StatusCode::kInternal,
                  "listen(" + path + "): " + std::strerror(errno));
    ::close(fd);
    ::unlink(path.c_str());
    return status;
  }
  path_ = path;
  listen_fd_ = fd;
  stopping_.store(false, std::memory_order_release);
  accept_thread_ = std::thread(&UnixSocketServer::AcceptLoop, this);
  return Status::OK();
}

void UnixSocketServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listener closed (Stop) or fatal error
    }
    MutexLock lock(&conns_mu_);
    live_fds_.push_back(fd);
    conn_threads_.emplace_back(&UnixSocketServer::ServeConnection, this, fd);
  }
}

void UnixSocketServer::ServeConnection(int fd) {
  {
    FdStreambuf buf(fd);
    std::istream in(&buf);
    std::ostream out(&buf);
    if (ServeStream(in, out, server_)) {
      shutdown_requested_.store(true, std::memory_order_release);
    }
  }
  {
    MutexLock lock(&conns_mu_);
    for (size_t i = 0; i < live_fds_.size(); ++i) {
      if (live_fds_[i] == fd) {
        live_fds_.erase(live_fds_.begin() + static_cast<ptrdiff_t>(i));
        break;
      }
    }
  }
  ::close(fd);
}

void UnixSocketServer::Stop() {
  if (listen_fd_ < 0) return;
  stopping_.store(true, std::memory_order_release);
  // Closing the listener unblocks accept(); shutting down live
  // connections unblocks their reads.  The connection threads own
  // their fds and close them on exit.
  ::shutdown(listen_fd_, SHUT_RDWR);
  ::close(listen_fd_);
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> threads;
  {
    MutexLock lock(&conns_mu_);
    for (int fd : live_fds_) ::shutdown(fd, SHUT_RDWR);
    threads = std::move(conn_threads_);
    conn_threads_.clear();
  }
  for (std::thread& t : threads) {
    if (t.joinable()) t.join();
  }
  ::unlink(path_.c_str());
  listen_fd_ = -1;
}

}  // namespace arbiter::server
