// Tests for weighted model-fitting and weighted arbitration
// (paper, Section 4).

#include "change/weighted.h"

#include <gtest/gtest.h>

#include "change/fitting.h"
#include "util/random.h"

namespace arbiter {
namespace {

WeightedKnowledgeBase Wkb(int n,
                          std::vector<std::pair<uint64_t, double>> weights) {
  WeightedKnowledgeBase kb(n);
  for (auto [m, w] : weights) kb.SetWeight(m, w);
  return kb;
}

TEST(WdistFittingTest, ResultKeepsMuWeights) {
  // The paper's weighted Min keeps mu's weights on the minimal support.
  WdistFitting op;
  WeightedKnowledgeBase psi = Wkb(2, {{0b00, 3}});
  WeightedKnowledgeBase mu = Wkb(2, {{0b01, 7}, {0b11, 9}});
  WeightedKnowledgeBase result = op.Change(psi, mu);
  EXPECT_DOUBLE_EQ(result.Weight(0b01), 7);  // wdist 3 < 6
  EXPECT_DOUBLE_EQ(result.Weight(0b11), 0);
}

TEST(WdistFittingTest, UnsatisfiableInputs) {
  WdistFitting op;
  WeightedKnowledgeBase empty(2);
  WeightedKnowledgeBase mu = Wkb(2, {{0b01, 1}});
  EXPECT_FALSE(op.Change(empty, mu).IsSatisfiable()) << "(F2)";
  EXPECT_FALSE(op.Change(mu, empty).IsSatisfiable()) << "(F1)";
  EXPECT_TRUE(op.Change(mu, mu).IsSatisfiable()) << "(F3)";
}

TEST(WdistFittingTest, ScalingPsiWeightsPreservesResult) {
  // wdist is linear in psi's weights, so uniform scaling cannot change
  // the argmin.
  Rng rng(10);
  WdistFitting op;
  for (int round = 0; round < 30; ++round) {
    WeightedKnowledgeBase psi(3), mu(3);
    for (uint64_t m = 0; m < 8; ++m) {
      if (rng.NextBool()) psi.SetWeight(m, 1 + rng.NextBelow(5));
      if (rng.NextBool()) mu.SetWeight(m, 1 + rng.NextBelow(5));
    }
    if (!psi.IsSatisfiable() || !mu.IsSatisfiable()) continue;
    WeightedKnowledgeBase scaled(3);
    for (uint64_t m = 0; m < 8; ++m) {
      scaled.SetWeight(m, psi.Weight(m) * 10);
    }
    EXPECT_TRUE(
        op.Change(psi, mu).EquivalentTo(op.Change(scaled, mu)));
  }
}

TEST(WdistFittingTest, ZeroOneEmbeddingMatchesSumFitting) {
  // With 0/1 weights, wdist == SumDist, so the weighted operator's
  // support must match the plain sum-fitting result.
  Rng rng(20);
  WdistFitting weighted;
  SumFitting plain;
  for (int round = 0; round < 50; ++round) {
    std::vector<uint64_t> mp, mm;
    for (uint64_t m = 0; m < 8; ++m) {
      if (rng.NextBool(0.4)) mp.push_back(m);
      if (rng.NextBool(0.4)) mm.push_back(m);
    }
    if (mp.empty() || mm.empty()) continue;
    ModelSet psi = ModelSet::FromMasks(mp, 3);
    ModelSet mu = ModelSet::FromMasks(mm, 3);
    WeightedKnowledgeBase result = weighted.Change(
        WeightedKnowledgeBase::FromModelSet(psi),
        WeightedKnowledgeBase::FromModelSet(mu));
    EXPECT_EQ(result.Support(), plain.Change(psi, mu)) << round;
  }
}

TEST(WeightedArbitrationTest, IsCommutative) {
  Rng rng(30);
  WeightedArbitration op;
  for (int round = 0; round < 50; ++round) {
    WeightedKnowledgeBase a(3), b(3);
    for (uint64_t m = 0; m < 8; ++m) {
      if (rng.NextBool()) a.SetWeight(m, rng.NextBelow(10));
      if (rng.NextBool()) b.SetWeight(m, rng.NextBelow(10));
    }
    EXPECT_TRUE(op.Change(a, b).EquivalentTo(op.Change(b, a))) << round;
  }
}

TEST(WeightedArbitrationTest, MajorityWins) {
  // Example 4.1's moral: weight mass pulls the arbitration outcome.
  WeightedArbitration op;
  WeightedKnowledgeBase many = Wkb(2, {{0b01, 100}});
  WeightedKnowledgeBase few = Wkb(2, {{0b10, 1}});
  WeightedKnowledgeBase verdict = op.Change(many, few);
  EXPECT_GT(verdict.Weight(0b01), 0);
  EXPECT_DOUBLE_EQ(verdict.Weight(0b10), 0);
}

TEST(WeightedArbitrationTest, ResultMinimizesCombinedWdist) {
  Rng rng(40);
  WeightedArbitration op;
  for (int round = 0; round < 30; ++round) {
    WeightedKnowledgeBase a(3), b(3);
    for (uint64_t m = 0; m < 8; ++m) {
      if (rng.NextBool()) a.SetWeight(m, rng.NextBelow(6));
      if (rng.NextBool()) b.SetWeight(m, rng.NextBelow(6));
    }
    if (!a.IsSatisfiable() && !b.IsSatisfiable()) continue;
    WeightedKnowledgeBase combined = a.Or(b);
    WeightedKnowledgeBase verdict = op.Change(a, b);
    double best = 1e300;
    for (uint64_t m = 0; m < 8; ++m) {
      best = std::min(best, combined.WeightedDistTo(m));
    }
    for (uint64_t m = 0; m < 8; ++m) {
      EXPECT_EQ(verdict.Weight(m) > 0,
                combined.WeightedDistTo(m) == best)
          << "round " << round << " m=" << m;
    }
  }
}

TEST(WeightedArbitrationTest, EmbeddedPlainBasesDifferFromMaxArbitration) {
  // Weighted arbitration is majority-driven; the paper's unweighted Δ
  // is egalitarian.  On a 2-vs-1 conflict they disagree.
  WeightedArbitration weighted;
  WeightedKnowledgeBase crowd = Wkb(3, {{0b000, 1}, {0b001, 1}});
  WeightedKnowledgeBase lone = Wkb(3, {{0b111, 1}});
  WeightedKnowledgeBase verdict = weighted.Change(crowd, lone);
  // Sum pulls toward the two-voice cluster: 001 has wdist 1+0+2=3,
  // 000 has 0+1+3=4, 011 has 2+1+1=4, 111 has 3+2+0=5.
  EXPECT_GT(verdict.Weight(0b001), 0);
  EXPECT_DOUBLE_EQ(verdict.Weight(0b111), 0);
}

TEST(WeightedChangeTest, Names) {
  EXPECT_EQ(WdistFitting().name(), "wdist-fitting");
  EXPECT_EQ(WeightedArbitration().name(), "weighted-arbitration");
}

}  // namespace
}  // namespace arbiter
