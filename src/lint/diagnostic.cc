#include "lint/diagnostic.h"

namespace arbiter::lint {

namespace {

/// Escapes a string for inclusion in a JSON string literal.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xF];
          out += hex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

const char* SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

std::string Diagnostic::ToString() const {
  std::string out = file + ":" + std::to_string(line) + ":" +
                    std::to_string(col) + ": " + SeverityName(severity) +
                    ": " + message + " [" + check_id + "]";
  if (!note.empty()) out += "\n  note: " + note;
  return out;
}

std::string RenderText(const std::vector<Diagnostic>& diagnostics) {
  std::string out;
  for (const Diagnostic& d : diagnostics) {
    out += d.ToString();
    out += "\n";
  }
  return out;
}

std::string RenderJson(const std::vector<Diagnostic>& diagnostics) {
  std::string out = "[";
  for (size_t i = 0; i < diagnostics.size(); ++i) {
    const Diagnostic& d = diagnostics[i];
    if (i > 0) out += ",";
    out += "\n  {\"file\": \"" + JsonEscape(d.file) + "\"";
    out += ", \"line\": " + std::to_string(d.line);
    out += ", \"col\": " + std::to_string(d.col);
    out += std::string(", \"severity\": \"") + SeverityName(d.severity) +
           "\"";
    out += ", \"check_id\": \"" + JsonEscape(d.check_id) + "\"";
    out += ", \"message\": \"" + JsonEscape(d.message) + "\"";
    out += ", \"note\": \"" + JsonEscape(d.note) + "\"}";
  }
  out += diagnostics.empty() ? "]" : "\n]";
  out += "\n";
  return out;
}

Severity MaxSeverity(const std::vector<Diagnostic>& diagnostics) {
  Severity max = Severity::kNote;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity > max) max = d.severity;
  }
  return max;
}

int CountAtSeverity(const std::vector<Diagnostic>& diagnostics,
                    Severity severity) {
  int count = 0;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == severity) ++count;
  }
  return count;
}

}  // namespace arbiter::lint
