// Concurrent-session differential tests: randomized writer/reader
// threads against a live BeliefServer, then a serial replay that must
// reproduce every batch's outcomes bit for bit against the epoch it
// observed (src/server/differential.h).  The tsan CI job builds this
// binary under ThreadSanitizer, so the same net catches data races.

#include "server/differential.h"

#include <gtest/gtest.h>

namespace arbiter::server {
namespace {

TEST(ServerConcurrencyTest, FixedSeedSmoke) {
  for (uint64_t seed : {1u, 7u, 42u}) {
    ServerFuzzOptions options;
    options.seed = seed;
    ServerFuzzReport report = RunServerInterleavingFuzz(options);
    EXPECT_TRUE(report.ok()) << "seed " << seed << ":\n" << report.detail;
    EXPECT_GT(report.batches, 0);
  }
}

TEST(ServerConcurrencyTest, WriterHeavyInterleaving) {
  ServerFuzzOptions options;
  options.seed = 11;
  options.writers = 4;
  options.readers = 1;
  options.stores = 1;  // all writers contend on one store
  options.batches_per_writer = 8;
  ServerFuzzReport report = RunServerInterleavingFuzz(options);
  EXPECT_TRUE(report.ok()) << report.detail;
}

TEST(ServerConcurrencyTest, ReaderHeavyInterleaving) {
  ServerFuzzOptions options;
  options.seed = 23;
  options.writers = 1;
  options.readers = 6;
  options.batches_per_reader = 8;
  ServerFuzzReport report = RunServerInterleavingFuzz(options);
  EXPECT_TRUE(report.ok()) << report.detail;
}

}  // namespace
}  // namespace arbiter::server
