#ifndef ARBITER_ENC_CARDINALITY_H_
#define ARBITER_ENC_CARDINALITY_H_

#include <vector>

#include "sat/cnf.h"
#include "util/logging.h"

/// \file cardinality.h
/// Cardinality constraints over literals, encoded with the sequential
/// (unary) counter of Sinz (2005).  Used by the SAT-based Dalal
/// revision and the CEGAR arbitration loop to bound Hamming distances.

namespace arbiter::enc {

/// Adds clauses enforcing  Σ lits <= k.  k >= lits.size() adds nothing;
/// k == 0 forces every literal false; k < 0 adds the empty clause.
void AddAtMostK(sat::ClauseSink* sink, const std::vector<sat::Lit>& lits,
                int k);

/// Adds clauses enforcing  Σ lits >= k  (via at-most on negations).
void AddAtLeastK(sat::ClauseSink* sink, const std::vector<sat::Lit>& lits,
                 int k);

/// Adds clauses enforcing  Σ lits == k.
void AddExactlyK(sat::ClauseSink* sink, const std::vector<sat::Lit>& lits,
                 int k);

/// Creates a fresh literal d with  d <-> (a xor b)  and returns it.
/// This is the "difference bit" used for Hamming distance encodings.
sat::Lit EncodeXorEquals(sat::ClauseSink* sink, sat::Lit a, sat::Lit b);

/// A unary counter exposing per-threshold outputs: output(k) is a
/// literal that is true iff at least k of the inputs are true.  Built
/// once, thresholds can then be asserted or assumed incrementally —
/// the core of the binary-search distance minimization in src/solve/.
class UnaryCounter {
 public:
  /// Builds the counter circuit over `lits` in `sink`.
  UnaryCounter(sat::ClauseSink* sink, const std::vector<sat::Lit>& lits);

  int size() const { return static_cast<int>(outputs_.size()); }

  /// Literal true iff >= k inputs are true.  Requires 1 <= k <= size().
  sat::Lit AtLeast(int k) const {
    ARBITER_CHECK(k >= 1 && k <= size());
    return outputs_[k - 1];
  }

  /// Literal true iff <= k inputs are true (negation of AtLeast(k+1)).
  /// Requires 0 <= k < size(); k >= size() is trivially true.
  sat::Lit AtMost(int k) const { return ~AtLeast(k + 1); }

 private:
  std::vector<sat::Lit> outputs_;
};

}  // namespace arbiter::enc

#endif  // ARBITER_ENC_CARDINALITY_H_
