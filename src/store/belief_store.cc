#include "store/belief_store.h"

#include "change/registry.h"
#include "change/update.h"
#include "logic/parser.h"
#include "logic/printer.h"
#include "util/string_util.h"

namespace arbiter {

Result<Formula> BeliefStore::ParseOverVocabulary(const std::string& text) {
  Result<Formula> f = Parse(text, &vocab_);
  if (!f.ok()) return f;
  if (vocab_.size() > kMaxEnumTerms) {
    return Status::CapacityExceeded(
        "store vocabulary exceeds the enumeration limit (" +
        std::to_string(kMaxEnumTerms) + " terms)");
  }
  return f;
}

Result<const BeliefStore::Entry*> BeliefStore::Find(
    const std::string& name) const {
  auto it = bases_.find(name);
  if (it == bases_.end()) {
    return Status::NotFound("no belief base named \"" + name + "\"");
  }
  return {&it->second};
}

Status BeliefStore::Define(const std::string& name,
                           const std::string& formula_text) {
  if (name.empty()) return Status::InvalidArgument("empty base name");
  Result<Formula> f = ParseOverVocabulary(formula_text);
  if (!f.ok()) return f.status();
  Entry& entry = bases_[name];
  entry.formula = *f;
  entry.undo_stack.clear();
  entry.journal.clear();
  return Status::OK();
}

bool BeliefStore::Contains(const std::string& name) const {
  return bases_.count(name) != 0;
}

Status BeliefStore::Drop(const std::string& name) {
  if (bases_.erase(name) == 0) {
    return Status::NotFound("no belief base named \"" + name + "\"");
  }
  return Status::OK();
}

std::vector<std::string> BeliefStore::Names() const {
  std::vector<std::string> out;
  out.reserve(bases_.size());
  for (const auto& [name, entry] : bases_) out.push_back(name);
  return out;
}

Result<KnowledgeBase> BeliefStore::Get(const std::string& name) const {
  Result<const Entry*> entry = Find(name);
  if (!entry.ok()) return entry.status();
  return KnowledgeBase((*entry)->formula, vocab_.size());
}

Status BeliefStore::Apply(const std::string& target,
                          const std::string& op_name,
                          const std::string& evidence_text) {
  auto it = bases_.find(target);
  if (it == bases_.end()) {
    return Status::NotFound("no belief base named \"" + target + "\"");
  }
  auto op = MakeOperator(op_name);
  if (!op.ok()) return op.status();
  Result<Formula> evidence = ParseOverVocabulary(evidence_text);
  if (!evidence.ok()) return evidence.status();

  Entry& entry = it->second;
  KnowledgeBase current(entry.formula, vocab_.size());
  KnowledgeBase mu(*evidence, vocab_.size());
  KnowledgeBase changed = (*op)->Apply(current, mu);
  entry.undo_stack.push_back(entry.formula);
  entry.journal.push_back(ChangeRecord{op_name, evidence_text});
  entry.formula = changed.formula();
  return Status::OK();
}

Status BeliefStore::Undo(const std::string& target) {
  auto it = bases_.find(target);
  if (it == bases_.end()) {
    return Status::NotFound("no belief base named \"" + target + "\"");
  }
  Entry& entry = it->second;
  if (entry.undo_stack.empty()) {
    return Status::InvalidArgument("nothing to undo on \"" + target + "\"");
  }
  entry.formula = entry.undo_stack.back();
  entry.undo_stack.pop_back();
  entry.journal.pop_back();
  return Status::OK();
}

int BeliefStore::HistoryDepth(const std::string& name) const {
  auto it = bases_.find(name);
  return it == bases_.end()
             ? 0
             : static_cast<int>(it->second.undo_stack.size());
}

std::vector<ChangeRecord> BeliefStore::History(
    const std::string& name) const {
  auto it = bases_.find(name);
  if (it == bases_.end()) return {};
  return it->second.journal;
}

Result<bool> BeliefStore::Entails(const std::string& name,
                                  const std::string& formula_text) {
  Result<KnowledgeBase> kb = Get(name);
  if (!kb.ok()) return kb.status();
  Result<Formula> f = ParseOverVocabulary(formula_text);
  if (!f.ok()) return f.status();
  // Re-evaluate the base in case parsing grew the vocabulary.
  KnowledgeBase base(kb->formula(), vocab_.size());
  KnowledgeBase query(*f, vocab_.size());
  return base.Implies(query);
}

Result<bool> BeliefStore::ConsistentWith(const std::string& name,
                                         const std::string& formula_text) {
  Result<KnowledgeBase> kb = Get(name);
  if (!kb.ok()) return kb.status();
  Result<Formula> f = ParseOverVocabulary(formula_text);
  if (!f.ok()) return f.status();
  KnowledgeBase base(kb->formula(), vocab_.size());
  KnowledgeBase query(*f, vocab_.size());
  return !base.models().Intersect(query.models()).empty();
}

Result<bool> BeliefStore::Counterfactual(
    const std::string& name, const std::string& antecedent_text,
    const std::string& consequent_text) {
  Result<KnowledgeBase> kb = Get(name);
  if (!kb.ok()) return kb.status();
  Result<Formula> antecedent = ParseOverVocabulary(antecedent_text);
  if (!antecedent.ok()) return antecedent.status();
  Result<Formula> consequent = ParseOverVocabulary(consequent_text);
  if (!consequent.ok()) return consequent.status();
  KnowledgeBase base(kb->formula(), vocab_.size());
  KnowledgeBase mu(*antecedent, vocab_.size());
  KnowledgeBase then(*consequent, vocab_.size());
  KnowledgeBase updated = WinslettUpdate().Apply(base, mu);
  return updated.Implies(then);
}

std::string BeliefStore::Save() const {
  std::string out = "arbiter-store v1\n";
  out += "vocab";
  for (const std::string& name : vocab_.names()) out += " " + name;
  out += "\n";
  for (const auto& [name, entry] : bases_) {
    out += "base " + name + " := " + ToString(entry.formula, vocab_) + "\n";
  }
  return out;
}

Result<BeliefStore> BeliefStore::Load(const std::string& text) {
  BeliefStore store;
  std::vector<std::string> lines = Split(text, '\n');
  if (lines.empty() || Trim(lines[0]) != "arbiter-store v1") {
    return Status::InvalidArgument("not an arbiter-store v1 file");
  }
  for (size_t i = 1; i < lines.size(); ++i) {
    std::string line = Trim(lines[i]);
    if (line.empty() || line[0] == '#') continue;
    if (line.rfind("vocab", 0) == 0) {
      std::vector<std::string> parts = Split(line, ' ');
      for (size_t j = 1; j < parts.size(); ++j) {
        if (parts[j].empty()) continue;
        Result<int> added = store.vocab_.GetOrAddTerm(parts[j]);
        if (!added.ok()) return added.status();
      }
      continue;
    }
    if (line.rfind("base ", 0) == 0) {
      size_t assign = line.find(" := ");
      if (assign == std::string::npos) {
        return Status::InvalidArgument("malformed base line: " + line);
      }
      std::string name = Trim(line.substr(5, assign - 5));
      std::string formula = line.substr(assign + 4);
      ARBITER_RETURN_NOT_OK(store.Define(name, formula));
      continue;
    }
    return Status::InvalidArgument("unrecognized line: " + line);
  }
  return store;
}

std::string BeliefStore::Dump() const {
  std::string out;
  for (const auto& [name, entry] : bases_) {
    KnowledgeBase kb(entry.formula, vocab_.size());
    out += name + " := " + ToString(entry.formula, vocab_) + "\n";
    out += "  models: " + kb.models().ToString(vocab_) + "\n";
    if (!entry.journal.empty()) {
      out += "  history:";
      for (const ChangeRecord& record : entry.journal) {
        out += " [" + record.op_name + " \"" + record.evidence_text + "\"]";
      }
      out += "\n";
    }
  }
  return out;
}

}  // namespace arbiter
