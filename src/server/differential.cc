#include "server/differential.h"

#include <iterator>
#include <map>
#include <thread>
#include <vector>

#include "server/server.h"
#include "store/belief_store.h"
#include "util/random.h"
#include "util/sync.h"

namespace arbiter::server {

namespace {

const char* const kAtoms[] = {"a", "b", "c", "d", "e"};
const char* const kBases[] = {"k0", "k1", "k2"};
const char* const kOps[] = {"dalal", "revesz-max", "arbitration-max",
                            "winslett"};

std::string RandomFormula(Rng* rng, int depth) {
  if (depth <= 0 || rng->NextBool(0.4)) {
    std::string atom = kAtoms[rng->NextBelow(std::size(kAtoms))];
    return rng->NextBool(0.3) ? "!" + atom : atom;
  }
  const char* op = rng->NextBool(0.5) ? " & " : (rng->NextBool(0.5) ? " | "
                                                                    : " -> ");
  return "(" + RandomFormula(rng, depth - 1) + op +
         RandomFormula(rng, depth - 1) + ")";
}

std::string RandomWriteLine(Rng* rng) {
  const std::string base = kBases[rng->NextBelow(std::size(kBases))];
  switch (rng->NextBelow(8)) {
    case 0:
    case 1:
      return "define " + base + " := " + RandomFormula(rng, 2);
    case 2:
    case 3:
    case 4:
      return "change " + base + " by " +
             kOps[rng->NextBelow(std::size(kOps))] + " with " +
             RandomFormula(rng, 2);
    case 5:
      return "undo " + base;
    case 6:
      return "if " + base + " entails " + RandomFormula(rng, 1) +
             " then change " + base + " by dalal with " +
             RandomFormula(rng, 1);
    default:
      // Deliberately broken lines exercise the per-statement error
      // path without aborting the batch.
      return rng->NextBool(0.5) ? "change " + base + " by"
                                : "define " + base + " := ((a &";
  }
}

std::string RandomReadLine(Rng* rng) {
  const std::string base = kBases[rng->NextBelow(std::size(kBases))];
  switch (rng->NextBelow(6)) {
    case 0:
      return "assert " + base + " entails " + RandomFormula(rng, 2);
    case 1:
      return "query " + base + " entails " + RandomFormula(rng, 2);
    case 2:
      return "query " + base + " consistent-with " + RandomFormula(rng, 2);
    case 3:
      return "query " + base + " models";
    case 4:
      return "query " + base + " dist dalal " + RandomFormula(rng, 2);
    default:
      return "query " + base + " equivalent-to " + RandomFormula(rng, 2);
  }
}

struct BatchRecord {
  std::string store;
  std::vector<std::string> lines;
  uint64_t epoch = 0;
  bool committed = false;
  std::vector<std::string> outcomes;
};

std::vector<std::string> RenderAll(const BatchResult& result) {
  std::vector<std::string> out;
  out.reserve(result.outcomes.size());
  for (const StatementOutcome& outcome : result.outcomes) {
    out.push_back(RenderOutcome(outcome));
  }
  return out;
}

class Mismatches {
 public:
  void Add(const std::string& what) {
    ++count_;
    if (count_ <= 5) {
      detail_ += what;
      detail_ += '\n';
    }
  }
  int count() const { return count_; }
  const std::string& detail() const { return detail_; }

 private:
  int count_ = 0;
  std::string detail_;
};

void CompareOutcomes(const BatchRecord& record,
                     const std::vector<std::string>& replayed,
                     Mismatches* mismatches) {
  if (record.outcomes == replayed) return;
  std::string what = "store " + record.store + " epoch " +
                     std::to_string(record.epoch) + ": outcome divergence";
  for (size_t i = 0; i < record.lines.size(); ++i) {
    const std::string& live =
        i < record.outcomes.size() ? record.outcomes[i] : "<missing>";
    const std::string& serial = i < replayed.size() ? replayed[i]
                                                    : "<missing>";
    if (live != serial) {
      what += "\n  stmt: " + record.lines[i] + "\n  live:   " + live +
              "\n  serial: " + serial;
    }
  }
  mismatches->Add(what);
}

}  // namespace

ServerFuzzReport RunServerInterleavingFuzz(const ServerFuzzOptions& options) {
  BeliefServer live;
  // kLeaf: acquired only after ExecuteBatch returns, with nothing
  // held.  The worker threads below run batches with LockRank active
  // (when enabled), so every recorded interleaving also validates the
  // full acquisition order — the tsan CI job builds with
  // -DARBITER_LOCK_RANK=ON to get both checks in one run.
  Mutex record_mu{LockRank::kLeaf, "RunServerInterleavingFuzz::record_mu"};
  std::vector<BatchRecord> records;

  auto run_worker = [&](uint64_t seed, bool writer, int batches) {
    Rng rng(seed);
    for (int b = 0; b < batches; ++b) {
      BatchRecord record;
      record.store =
          "s" + std::to_string(rng.NextBelow(
                    static_cast<uint64_t>(options.stores < 1
                                              ? 1
                                              : options.stores)));
      for (int i = 0; i < options.statements_per_batch; ++i) {
        record.lines.push_back(writer ? RandomWriteLine(&rng)
                                      : RandomReadLine(&rng));
      }
      BatchResult result = live.ExecuteBatch(record.store, record.lines);
      record.epoch = result.epoch;
      record.committed = result.committed;
      record.outcomes = RenderAll(result);
      MutexLock lock(&record_mu);
      records.push_back(std::move(record));
    }
  };

  std::vector<std::thread> threads;
  for (int w = 0; w < options.writers; ++w) {
    threads.emplace_back(run_worker, options.seed * 7919 + w * 2 + 1, true,
                         options.batches_per_writer);
  }
  for (int r = 0; r < options.readers; ++r) {
    threads.emplace_back(run_worker, options.seed * 104729 + r * 2 + 2,
                         false, options.batches_per_reader);
  }
  for (std::thread& t : threads) t.join();

  ServerFuzzReport report;
  report.batches = static_cast<int>(records.size());
  Mismatches mismatches;

  // Serial replay, one store at a time.
  std::map<std::string, std::vector<const BatchRecord*>> by_store;
  for (const BatchRecord& record : records) {
    by_store[record.store].push_back(&record);
  }
  for (const auto& [store_name, store_records] : by_store) {
    // Committed batches must occupy distinct, contiguous epochs: each
    // ran under the store's writer lock, copied epoch e, and published
    // e+1.
    std::map<uint64_t, const BatchRecord*> commits;
    for (const BatchRecord* record : store_records) {
      if (!record->committed) continue;
      if (!commits.emplace(record->epoch, record).second) {
        mismatches.Add("store " + store_name + ": two commits observed epoch " +
                       std::to_string(record->epoch));
      }
    }

    std::map<uint64_t, std::string> saves;
    saves[0] = BeliefStore().Save();
    uint64_t epoch = 0;
    while (commits.count(epoch) != 0) {
      const BatchRecord* record = commits[epoch];
      Result<BeliefStore> snapshot = BeliefStore::Load(saves[epoch]);
      if (!snapshot.ok()) {
        mismatches.Add("store " + store_name + ": epoch " +
                       std::to_string(epoch) +
                       " snapshot failed to load: " +
                       snapshot.status().ToString());
        break;
      }
      BeliefStore final_state;
      BatchResult replayed =
          ReplayBatch(*snapshot, record->lines, &final_state);
      CompareOutcomes(*record, RenderAll(replayed), &mismatches);
      if (!replayed.committed) {
        mismatches.Add("store " + store_name + ": epoch " +
                       std::to_string(epoch) +
                       " committed live but not serially");
      }
      saves[epoch + 1] = final_state.Save();
      ++epoch;
    }
    if (!commits.empty() && commits.rbegin()->first >= epoch) {
      mismatches.Add("store " + store_name +
                     ": commit epochs are not contiguous (gap before " +
                     std::to_string(commits.rbegin()->first) + ")");
    }

    // The live server's final state must match the last serial state.
    Result<std::string> live_save = live.SaveStore(store_name);
    if (!live_save.ok()) {
      mismatches.Add("store " + store_name +
                     ": SaveStore failed: " + live_save.status().ToString());
    } else if (*live_save != saves[epoch]) {
      mismatches.Add("store " + store_name +
                     ": final state diverges from serial replay");
    }

    // Non-committing batches (reads and failed writes) replay against
    // the snapshot of the epoch they observed.
    for (const BatchRecord* record : store_records) {
      if (record->committed) continue;
      auto it = saves.find(record->epoch);
      if (it == saves.end()) {
        mismatches.Add("store " + store_name + ": batch observed epoch " +
                       std::to_string(record->epoch) +
                       " but replay produced no such snapshot");
        continue;
      }
      Result<BeliefStore> snapshot = BeliefStore::Load(it->second);
      if (!snapshot.ok()) {
        mismatches.Add("store " + store_name + ": epoch " +
                       std::to_string(record->epoch) +
                       " snapshot failed to load: " +
                       snapshot.status().ToString());
        continue;
      }
      BatchResult replayed = ReplayBatch(*snapshot, record->lines);
      CompareOutcomes(*record, RenderAll(replayed), &mismatches);
      if (replayed.committed) {
        mismatches.Add("store " + store_name +
                       ": batch committed serially but not live");
      }
    }
  }

  report.mismatches = mismatches.count();
  report.detail = mismatches.detail();
  return report;
}

}  // namespace arbiter::server
