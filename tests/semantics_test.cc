// Tests for evaluation, enumeration-based semantics, NNF/folding, and
// the random generators.

#include "logic/semantics.h"

#include <gtest/gtest.h>

#include <functional>
#include <set>

#include "logic/eval.h"
#include "logic/generator.h"
#include "logic/parser.h"
#include "logic/simplify.h"

namespace arbiter {
namespace {

TEST(EvalTest, Connectives) {
  Vocabulary v;
  Formula f = MustParse("A & (B | !C)", &v);
  // A=bit0, B=bit1, C=bit2.
  EXPECT_TRUE(Evaluate(f, 0b011));   // A,B
  EXPECT_TRUE(Evaluate(f, 0b001));   // A only (!C true)
  EXPECT_FALSE(Evaluate(f, 0b101));  // A,C but no B
  EXPECT_FALSE(Evaluate(f, 0b010));  // no A
}

TEST(EvalTest, ExtendedConnectives) {
  Vocabulary v;
  Formula imp = MustParse("A -> B", &v);
  EXPECT_TRUE(Evaluate(imp, 0b00));
  EXPECT_TRUE(Evaluate(imp, 0b10));
  EXPECT_FALSE(Evaluate(imp, 0b01));
  EXPECT_TRUE(Evaluate(imp, 0b11));
  Formula iff = MustParse("A <-> B", &v);
  EXPECT_TRUE(Evaluate(iff, 0b00));
  EXPECT_FALSE(Evaluate(iff, 0b01));
  Formula x = MustParse("A ^ B", &v);
  EXPECT_FALSE(Evaluate(x, 0b00));
  EXPECT_TRUE(Evaluate(x, 0b01));
}

TEST(SemanticsTest, EnumerateModels) {
  Vocabulary v;
  Formula f = MustParse("A & !B", &v);
  EXPECT_EQ(EnumerateModels(f, 2), (std::vector<uint64_t>{0b01}));
  EXPECT_EQ(EnumerateModels(Formula::True(), 2),
            (std::vector<uint64_t>{0, 1, 2, 3}));
  EXPECT_TRUE(EnumerateModels(Formula::False(), 2).empty());
}

TEST(SemanticsTest, CountAndSat) {
  Vocabulary v;
  Formula f = MustParse("A | B", &v);
  EXPECT_EQ(CountModels(f, 2), 3u);
  EXPECT_TRUE(IsSatisfiable(f, 2));
  EXPECT_FALSE(IsSatisfiable(MustParse("A & !A", &v), 2));
  EXPECT_TRUE(IsTautology(MustParse("A | !A", &v), 2));
  EXPECT_FALSE(IsTautology(f, 2));
}

TEST(SemanticsTest, EquivalenceAndImplication) {
  Vocabulary v;
  Formula a = MustParse("A -> B", &v);
  Formula b = MustParse("!A | B", &v);
  EXPECT_TRUE(AreEquivalent(a, b, 2));
  EXPECT_TRUE(SemanticallyImplies(MustParse("A & B", &v), a, 2));
  EXPECT_FALSE(SemanticallyImplies(a, MustParse("A & B", &v), 2));
}

TEST(SemanticsTest, MintermHasOneModel) {
  for (uint64_t bits = 0; bits < 8; ++bits) {
    Formula m = Minterm(bits, 3);
    EXPECT_EQ(EnumerateModels(m, 3), (std::vector<uint64_t>{bits}));
  }
}

TEST(SemanticsTest, FormulaFromModelsRoundTrip) {
  std::vector<uint64_t> models = {0b000, 0b011, 0b110};
  Formula f = FormulaFromModels(models, 3);
  EXPECT_EQ(EnumerateModels(f, 3), models);
  EXPECT_TRUE(FormulaFromModels({}, 3).is_false());
  EXPECT_TRUE(FormulaFromModels({0, 1, 2, 3}, 2).is_true());
}

TEST(SemanticsTest, ZeroTermVocabulary) {
  EXPECT_EQ(EnumerateModels(Formula::True(), 0),
            (std::vector<uint64_t>{0}));
  EXPECT_TRUE(EnumerateModels(Formula::False(), 0).empty());
}

TEST(SimplifyTest, NnfPreservesSemanticsOnRandomFormulas) {
  Rng rng(2024);
  RandomFormulaOptions options;
  options.num_terms = 5;
  options.max_depth = 6;
  for (int i = 0; i < 200; ++i) {
    Formula f = RandomFormula(&rng, options);
    Formula nnf = Nnf(f);
    EXPECT_TRUE(AreEquivalent(f, nnf, options.num_terms)) << i;
    // NNF uses only core connectives with negation at literals.
    std::function<void(const Formula&)> check = [&](const Formula& g) {
      EXPECT_NE(g.kind(), FormulaKind::kImplies);
      EXPECT_NE(g.kind(), FormulaKind::kIff);
      EXPECT_NE(g.kind(), FormulaKind::kXor);
      if (g.kind() == FormulaKind::kNot) {
        EXPECT_TRUE(g.child(0).is_var());
      }
      for (const Formula& c : g.children()) check(c);
    };
    check(nnf);
  }
}

TEST(SimplifyTest, AssignFixesVariable) {
  Vocabulary v;
  Formula f = MustParse("A & (B | C)", &v);
  Formula f_a_true = Assign(f, 0, true);
  EXPECT_TRUE(AreEquivalent(f_a_true, MustParse("B | C", &v), 3));
  Formula f_a_false = Assign(f, 0, false);
  EXPECT_TRUE(f_a_false.is_false());
}

TEST(SimplifyTest, AssignOnRandomFormulasMatchesSemantics) {
  Rng rng(77);
  RandomFormulaOptions options;
  options.num_terms = 4;
  for (int i = 0; i < 100; ++i) {
    Formula f = RandomFormula(&rng, options);
    int var = static_cast<int>(rng.NextBelow(4));
    bool value = rng.NextBool();
    Formula g = Assign(f, var, value);
    for (uint64_t bits = 0; bits < 16; ++bits) {
      uint64_t fixed = value ? (bits | (1ULL << var))
                             : (bits & ~(1ULL << var));
      EXPECT_EQ(Evaluate(g, bits), Evaluate(f, fixed));
    }
  }
}

TEST(SimplifyTest, FoldIsSemanticallyNeutral) {
  Rng rng(31);
  RandomFormulaOptions options;
  options.num_terms = 4;
  for (int i = 0; i < 100; ++i) {
    Formula f = RandomFormula(&rng, options);
    EXPECT_TRUE(AreEquivalent(f, Fold(f), 4));
  }
}

TEST(GeneratorTest, RandomFormulaRespectsBounds) {
  Rng rng(1);
  RandomFormulaOptions options;
  options.num_terms = 3;
  options.max_depth = 4;
  for (int i = 0; i < 100; ++i) {
    Formula f = RandomFormula(&rng, options);
    EXPECT_LT(f.MaxVar(), 3);
    // Depth bound: max_depth internal levels plus a leaf.
    EXPECT_LE(f.Depth(), options.max_depth + 1);
  }
}

TEST(GeneratorTest, RandomKCnfShape) {
  Rng rng(2);
  Formula f = RandomKCnf(&rng, 6, 10, 3);
  ASSERT_EQ(f.kind(), FormulaKind::kAnd);
  EXPECT_EQ(f.num_children(), 10);
  for (const Formula& clause : f.children()) {
    ASSERT_EQ(clause.kind(), FormulaKind::kOr);
    EXPECT_EQ(clause.num_children(), 3);
    // Distinct variables within a clause.
    std::set<int> vars;
    for (const Formula& lit : clause.children()) {
      vars.insert(lit.is_var() ? lit.var() : lit.child(0).var());
    }
    EXPECT_EQ(vars.size(), 3u);
  }
}

TEST(GeneratorTest, RandomModelSetMasksNonEmptyAndBounded) {
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    std::vector<uint64_t> masks = RandomModelSetMasks(&rng, 3, 0.3);
    EXPECT_FALSE(masks.empty());
    for (uint64_t m : masks) EXPECT_LT(m, 8u);
  }
}

TEST(GeneratorTest, DeterministicGivenSeed) {
  Rng a(42), b(42);
  RandomFormulaOptions options;
  EXPECT_TRUE(RandomFormula(&a, options).Equals(RandomFormula(&b, options)));
}

}  // namespace
}  // namespace arbiter
