// Error-path atomicity of the BeliefStore (strong error guarantee):
// after ANY failed operation, Dump(), Names(), the vocabulary, and the
// history must be byte-identical to before.  The seed code leaked
// vocabulary terms from failed parses — every existing base was then
// silently reinterpreted over a larger universe.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "store/belief_store.h"

namespace arbiter {
namespace {

/// Full observable state of a store.
struct Observed {
  std::string dump;
  std::vector<std::string> names;
  std::vector<std::string> vocab;
  std::vector<int> depths;
  std::vector<std::string> journals;

  static Observed Of(const BeliefStore& store) {
    Observed o;
    o.dump = store.Dump();
    o.names = store.Names();
    o.vocab = store.vocabulary().names();
    for (const std::string& name : o.names) {
      o.depths.push_back(store.HistoryDepth(name));
      std::string journal;
      for (const ChangeRecord& r : store.History(name)) {
        journal += r.op_name + "|" + r.evidence_text + ";";
      }
      o.journals.push_back(journal);
    }
    return o;
  }

  bool operator==(const Observed& other) const {
    return dump == other.dump && names == other.names &&
           vocab == other.vocab && depths == other.depths &&
           journals == other.journals;
  }
};

/// A formula that parses but pushes the vocabulary past kMaxEnumTerms.
std::string CapacityBomb() {
  std::string out = "zz0";
  for (int i = 1; i <= kMaxEnumTerms; ++i) out += " & zz" + std::to_string(i);
  return out;
}

class StoreAtomicityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(store_.Define("jury", "g & a & (g & a -> v)").ok());
    ASSERT_TRUE(store_.Define("witness", "!v | w").ok());
    ASSERT_TRUE(store_.Apply("jury", "dalal", "!v").ok());
  }

  /// Runs `fn`, expects it to fail, and asserts nothing was observed
  /// to change.
  template <typename Fn>
  void ExpectFailedAndUnchanged(const Fn& fn, const char* what) {
    const Observed before = Observed::Of(store_);
    const Status status = fn();
    EXPECT_FALSE(status.ok()) << what << " unexpectedly succeeded";
    EXPECT_TRUE(Observed::Of(store_) == before)
        << what << " failed (" << status.ToString()
        << ") but mutated the store";
  }

  BeliefStore store_;
};

TEST_F(StoreAtomicityTest, FailedDefineParseError) {
  // "brand_new" precedes the syntax error; it must not leak into the
  // vocabulary.
  ExpectFailedAndUnchanged(
      [&] { return store_.Define("fresh", "brand_new & ("); },
      "Define with parse error");
}

TEST_F(StoreAtomicityTest, FailedDefineCapacityOverflow) {
  ExpectFailedAndUnchanged(
      [&] { return store_.Define("fresh", CapacityBomb()); },
      "Define past the enumeration limit");
  EXPECT_FALSE(store_.vocabulary().Contains("zz0"));
}

TEST_F(StoreAtomicityTest, FailedDefineEmptyName) {
  ExpectFailedAndUnchanged([&] { return store_.Define("", "g"); },
                           "Define with empty name");
}

TEST_F(StoreAtomicityTest, FailedApplyUnknownBase) {
  ExpectFailedAndUnchanged(
      [&] { return store_.Apply("ghost", "dalal", "fresh_term"); },
      "Apply on unknown base");
  EXPECT_FALSE(store_.vocabulary().Contains("fresh_term"));
}

TEST_F(StoreAtomicityTest, FailedApplyUnknownOperator) {
  ExpectFailedAndUnchanged(
      [&] { return store_.Apply("jury", "zorp", "also_fresh"); },
      "Apply with unknown operator");
  EXPECT_FALSE(store_.vocabulary().Contains("also_fresh"));
}

TEST_F(StoreAtomicityTest, FailedApplyBadEvidence) {
  ExpectFailedAndUnchanged(
      [&] { return store_.Apply("jury", "dalal", "leaky & ("); },
      "Apply with unparseable evidence");
  EXPECT_FALSE(store_.vocabulary().Contains("leaky"));
}

TEST_F(StoreAtomicityTest, FailedApplyCapacityOverflow) {
  ExpectFailedAndUnchanged(
      [&] { return store_.Apply("jury", "dalal", CapacityBomb()); },
      "Apply past the enumeration limit");
}

TEST_F(StoreAtomicityTest, FailedEntailsDoesNotLeakTerms) {
  ExpectFailedAndUnchanged(
      [&] { return store_.Entails("jury", "qqq & (").status(); },
      "Entails with parse error");
  EXPECT_FALSE(store_.vocabulary().Contains("qqq"));
  ExpectFailedAndUnchanged(
      [&] { return store_.Entails("jury", CapacityBomb()).status(); },
      "Entails past the enumeration limit");
}

TEST_F(StoreAtomicityTest, FailedConsistentWithDoesNotLeakTerms) {
  ExpectFailedAndUnchanged(
      [&] { return store_.ConsistentWith("jury", "rrr |").status(); },
      "ConsistentWith with parse error");
  EXPECT_FALSE(store_.vocabulary().Contains("rrr"));
}

TEST_F(StoreAtomicityTest, FailedCounterfactualSecondParseRollsBackFirst) {
  // The antecedent parses and registers "ante_term" on the scratch
  // copy; the consequent then fails — NEITHER term may survive.
  ExpectFailedAndUnchanged(
      [&] {
        return store_.Counterfactual("jury", "ante_term", "cons & (")
            .status();
      },
      "Counterfactual with bad consequent");
  EXPECT_FALSE(store_.vocabulary().Contains("ante_term"));
}

TEST_F(StoreAtomicityTest, FailedUndoAndDrop) {
  ASSERT_TRUE(store_.Undo("jury").ok());
  ExpectFailedAndUnchanged([&] { return store_.Undo("jury"); },
                           "Undo with empty history");
  ExpectFailedAndUnchanged([&] { return store_.Drop("ghost"); },
                           "Drop on unknown base");
}

TEST_F(StoreAtomicityTest, SuccessfulQueryStillGrowsVocabulary) {
  // The transactional rewrite must not break auto-registration on the
  // success path.
  ASSERT_TRUE(store_.Entails("jury", "novel | !novel").ok());
  EXPECT_TRUE(store_.vocabulary().Contains("novel"));
}

}  // namespace
}  // namespace arbiter
