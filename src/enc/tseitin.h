#ifndef ARBITER_ENC_TSEITIN_H_
#define ARBITER_ENC_TSEITIN_H_

#include <unordered_map>

#include "logic/formula.h"
#include "sat/cnf.h"

/// \file tseitin.h
/// Tseitin transformation: clausifies an arbitrary formula into an
/// equisatisfiable CNF over the solver, introducing one auxiliary
/// variable per internal connective (shared subtrees are encoded once).
///
/// Formula variable i maps to solver variable i; the encoder creates
/// solver variables on demand so the projection onto the original
/// vocabulary is simply the prefix [0, num_terms).
///
/// The encoding is a full equivalence (both directions of every
/// definition clause), so every auxiliary variable is functionally
/// determined by the input variables.  The model counter in
/// sat/count.h relies on this: counting models over *all* variables of
/// the encoding equals counting models projected onto the inputs.

namespace arbiter::enc {

/// Encodes formulas into any sat::ClauseSink (a Solver, a CnfFormula).
class TseitinEncoder {
 public:
  /// The encoder appends clauses/variables to *solver (not owned).
  explicit TseitinEncoder(sat::ClauseSink* solver) : solver_(solver) {
    ARBITER_CHECK(solver != nullptr);
  }

  /// Makes sure solver variables 0..n-1 exist, so that later auxiliary
  /// variables do not collide with vocabulary indices.  Call before the
  /// first Encode with the full vocabulary size.
  void ReserveInputVars(int n);

  /// Returns a literal equivalent to f (under the added definition
  /// clauses).  Does not assert f.
  sat::Lit Encode(const Formula& f);

  /// Asserts f: Encode(f) plus a unit clause.  Returns false if the
  /// solver became trivially unsatisfiable.
  bool Assert(const Formula& f);

 private:
  sat::Lit EncodeVar(int var);
  sat::Lit FreshLit();

  sat::ClauseSink* solver_;
  /// Cache keyed by node identity (pointer), exploiting DAG sharing.
  std::unordered_map<const void*, sat::Lit> cache_;
};

}  // namespace arbiter::enc

#endif  // ARBITER_ENC_TSEITIN_H_
