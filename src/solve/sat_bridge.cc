#include "solve/sat_bridge.h"

#include "enc/cardinality.h"
#include "enc/tseitin.h"
#include "proof/certify.h"
#include "sat/preprocessor.h"

namespace arbiter::solve {

Formula ShiftVars(const Formula& f, int offset) {
  switch (f.kind()) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
      return f;
    case FormulaKind::kVar:
      return Formula::Var(f.var() + offset);
    case FormulaKind::kNot:
      return Not(ShiftVars(f.child(0), offset));
    case FormulaKind::kAnd: {
      std::vector<Formula> parts;
      parts.reserve(f.num_children());
      for (const Formula& c : f.children()) {
        parts.push_back(ShiftVars(c, offset));
      }
      return And(std::move(parts));
    }
    case FormulaKind::kOr: {
      std::vector<Formula> parts;
      parts.reserve(f.num_children());
      for (const Formula& c : f.children()) {
        parts.push_back(ShiftVars(c, offset));
      }
      return Or(std::move(parts));
    }
    case FormulaKind::kImplies:
      return Implies(ShiftVars(f.child(0), offset),
                     ShiftVars(f.child(1), offset));
    case FormulaKind::kIff:
      return Iff(ShiftVars(f.child(0), offset),
                 ShiftVars(f.child(1), offset));
    case FormulaKind::kXor:
      return Xor(ShiftVars(f.child(0), offset),
                 ShiftVars(f.child(1), offset));
  }
  ARBITER_CHECK_MSG(false, "unreachable formula kind");
  return Formula::False();
}

bool SatIsSatisfiable(const Formula& f, int num_terms) {
  // Nothing is queried after the solve, so no variable needs freezing.
  sat::SatPreprocessor solver;
  enc::TseitinEncoder encoder(&solver);
  encoder.ReserveInputVars(num_terms);
  if (!encoder.Assert(f)) return false;
  return solver.Solve() == sat::SolveStatus::kSat;
}

CertifiedSatResult SatIsSatisfiableCertified(const Formula& f,
                                             int num_terms) {
  CertifiedSatResult result;
  proof::CertifyingSolver solver(/*enabled=*/true);
  enc::TseitinEncoder encoder(&solver);
  encoder.ReserveInputVars(num_terms);
  // A failed Assert means the encoder tripped the solver into a root
  // contradiction; the empty clause is already in the recorded proof,
  // so the solve below returns UNSAT immediately and certifies.
  encoder.Assert(f);
  result.sat = solver.Solve() == sat::SolveStatus::kSat;
  if (!result.sat) {
    result.certify_attempted = true;
    result.certified = solver.CertifyLastUnsat().ok;
  }
  return result;
}

std::vector<sat::Lit> MakeDiffBits(sat::ClauseSink* sink, int num_terms,
                                   int offset) {
  std::vector<sat::Lit> diffs;
  diffs.reserve(num_terms);
  for (int i = 0; i < num_terms; ++i) {
    diffs.push_back(enc::EncodeXorEquals(sink, sat::Lit::Pos(i),
                                         sat::Lit::Pos(i + offset)));
  }
  return diffs;
}

std::vector<sat::Lit> MakeConstDiffLits(int num_terms, uint64_t constant) {
  std::vector<sat::Lit> lits;
  lits.reserve(num_terms);
  for (int i = 0; i < num_terms; ++i) {
    // Literal true iff x_i differs from bit i of the constant.
    lits.push_back(sat::Lit(i, /*negated=*/((constant >> i) & 1) != 0));
  }
  return lits;
}

std::vector<sat::Lit> RepeatByWeights(const std::vector<sat::Lit>& lits,
                                      const std::vector<int64_t>& weights) {
  if (weights.empty()) return lits;
  std::vector<sat::Lit> out;
  out.reserve(lits.size());
  for (size_t i = 0; i < lits.size(); ++i) {
    const int64_t w = i < weights.size() ? weights[i] : 1;
    ARBITER_CHECK_MSG(w >= 0, "negative metric weight");
    for (int64_t k = 0; k < w; ++k) out.push_back(lits[i]);
  }
  return out;
}

}  // namespace arbiter::solve
