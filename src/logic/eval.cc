#include "logic/eval.h"

namespace arbiter {

bool Evaluate(const Formula& f, uint64_t bits) {
  switch (f.kind()) {
    case FormulaKind::kTrue:
      return true;
    case FormulaKind::kFalse:
      return false;
    case FormulaKind::kVar:
      return (bits >> f.var()) & 1;
    case FormulaKind::kNot:
      return !Evaluate(f.child(0), bits);
    case FormulaKind::kAnd:
      for (const Formula& c : f.children()) {
        if (!Evaluate(c, bits)) return false;
      }
      return true;
    case FormulaKind::kOr:
      for (const Formula& c : f.children()) {
        if (Evaluate(c, bits)) return true;
      }
      return false;
    case FormulaKind::kImplies:
      return !Evaluate(f.child(0), bits) || Evaluate(f.child(1), bits);
    case FormulaKind::kIff:
      return Evaluate(f.child(0), bits) == Evaluate(f.child(1), bits);
    case FormulaKind::kXor:
      return Evaluate(f.child(0), bits) != Evaluate(f.child(1), bits);
  }
  ARBITER_CHECK_MSG(false, "unreachable formula kind");
  return false;
}

bool Evaluate(const Formula& f, const Interpretation& interp) {
  ARBITER_DCHECK(f.MaxVar() < interp.num_terms());
  return Evaluate(f, interp.bits());
}

}  // namespace arbiter
