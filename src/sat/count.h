#ifndef ARBITER_SAT_COUNT_H_
#define ARBITER_SAT_COUNT_H_

#include <cstdint>
#include <vector>

#include "sat/cnf.h"

/// \file count.h
/// Exact model counting with per-column tallies.
///
/// `CountColumns` counts the satisfying assignments of a CNF and, for
/// each of the first `num_inputs` variables, how many of those models
/// set the variable to true.  This is the quantity the counting
/// distance backend needs: for ψ encoded over n input atoms,
///
///     sdist(ψ, I) = Σ_b m_b·o_b  +  Σ_b I_b · m_b·(C − 2·o_b)
///
/// where C = |Mod(ψ)| and o_b = column count of atom b — so a single
/// counting pass over ψ turns the Σ-aggregated distance into a *linear*
/// pseudo-Boolean objective over I, no model enumeration required.
///
/// The counter is a DPLL procedure with unit propagation, connected-
/// component decomposition, and component caching (keyed on the
/// component's canonical clause list; variables are never renamed, so
/// per-column attribution survives the cache).  Counts are exact in
/// unsigned __int128, sound for inputs up to ~120 variables.
///
/// Soundness of projection: when the CNF comes from the Tseitin
/// encoder (a full-equivalence encoding), every auxiliary variable is
/// functionally determined by the inputs, so the unprojected count
/// equals the count projected onto the inputs.

namespace arbiter::sat {

/// Result of CountColumns.
struct ColumnCountResult {
  /// False if the step budget was exhausted (total/ones meaningless).
  bool completed = true;
  /// Number of satisfying assignments.
  unsigned __int128 total = 0;
  /// ones[b] = number of satisfying assignments with variable b true,
  /// for b in [0, num_inputs).
  std::vector<unsigned __int128> ones;
  /// Decomposition statistics (for tests/benchmarks).
  uint64_t cache_hits = 0;
  uint64_t components_solved = 0;
};

inline constexpr uint64_t kDefaultCountSteps = 1ull << 22;

/// Counts models of `cnf` and per-column tallies for the first
/// `num_inputs` variables.  `max_steps` bounds the number of branching
/// steps; on exhaustion the result has completed == false.
ColumnCountResult CountColumns(const CnfFormula& cnf, int num_inputs,
                               uint64_t max_steps = kDefaultCountSteps);

}  // namespace arbiter::sat

#endif  // ARBITER_SAT_COUNT_H_
