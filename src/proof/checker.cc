#include "proof/checker.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"

namespace arbiter::proof {

namespace {

// FNV-1a over the canonical (sorted, deduplicated) literal codes.
uint64_t CanonHash(const std::vector<int>& canon) {
  uint64_t h = 1469598103934665603ULL;
  for (const int code : canon) {
    h ^= static_cast<uint64_t>(static_cast<uint32_t>(code));
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

void DratChecker::AddFormulaClause(const std::vector<sat::Lit>& lits) {
  formula_.push_back(lits);
}

std::vector<int> DratChecker::Canonicalize(const std::vector<sat::Lit>& lits,
                                           bool* tautology) {
  std::vector<int> canon;
  canon.reserve(lits.size());
  for (const sat::Lit l : lits) canon.push_back(l.code());
  std::sort(canon.begin(), canon.end());
  canon.erase(std::unique(canon.begin(), canon.end()), canon.end());
  *tautology = false;
  for (size_t i = 0; i + 1 < canon.size(); ++i) {
    if ((canon[i] ^ 1) == canon[i + 1]) {
      *tautology = true;
      break;
    }
  }
  return canon;
}

void DratChecker::Reset() {
  clauses_.clear();
  watches_.clear();
  units_.clear();
  canon_index_.clear();
  value_.clear();
  reason_.clear();
  trail_.clear();
  qhead_ = 0;
  visit_counter_ = 0;
  num_vars_ = 0;
  stats_ = DratCheckStats{};
}

void DratChecker::EnsureVar(int var) {
  if (var < num_vars_) return;
  num_vars_ = var + 1;
  value_.resize(static_cast<size_t>(num_vars_), 0);
  reason_.resize(static_cast<size_t>(num_vars_), -1);
  watches_.resize(static_cast<size_t>(num_vars_) * 2);
}

int DratChecker::AddDbClause(const std::vector<int>& canon,
                             int formula_index) {
  const int ci = static_cast<int>(clauses_.size());
  Clause c;
  c.lits = canon;
  c.formula_index = formula_index;
  bool taut = false;
  for (size_t i = 0; i + 1 < canon.size(); ++i) {
    if ((canon[i] ^ 1) == canon[i + 1]) taut = true;
  }
  c.tautology = taut;
  for (const int code : canon) EnsureVar(code >> 1);
  clauses_.push_back(std::move(c));
  canon_index_[CanonHash(canon)].push_back(ci);
  Activate(ci);
  return ci;
}

void DratChecker::Activate(int ci) {
  Clause& c = clauses_[static_cast<size_t>(ci)];
  ARBITER_DCHECK(!c.active);
  c.active = true;
  // Watch entries persist across deactivate/reactivate (the watched
  // positions cannot move while the clause is inactive), so only the
  // first activation attaches them.
  if (c.attached) return;
  c.attached = true;
  if (c.lits.size() == 1) {
    units_.push_back(ci);
  } else if (c.lits.size() >= 2) {
    watches_[static_cast<size_t>(c.lits[0])].push_back(ci);
    watches_[static_cast<size_t>(c.lits[1])].push_back(ci);
  }
}

int DratChecker::FindActive(const std::vector<int>& canon) const {
  const auto it = canon_index_.find(CanonHash(canon));
  if (it == canon_index_.end()) return -1;
  for (const int ci : it->second) {
    const Clause& c = clauses_[static_cast<size_t>(ci)];
    if (!c.active) continue;
    // Compare as sets; both sides are sorted + deduplicated, but watch
    // maintenance reorders c.lits, so compare sorted copies.
    if (c.lits.size() != canon.size()) continue;
    std::vector<int> sorted = c.lits;
    std::sort(sorted.begin(), sorted.end());
    if (sorted == canon) return ci;
  }
  return -1;
}

int DratChecker::LitValue(int code) const {
  const int8_t v = value_[static_cast<size_t>(code >> 1)];
  if (v == 0) return 0;
  return (code & 1) != 0 ? -v : v;
}

void DratChecker::Assign(int code, int reason) {
  value_[static_cast<size_t>(code >> 1)] =
      (code & 1) != 0 ? static_cast<int8_t>(-1) : static_cast<int8_t>(1);
  reason_[static_cast<size_t>(code >> 1)] = reason;
  trail_.push_back(code);
}

int DratChecker::Propagate() {
  while (qhead_ < trail_.size()) {
    const int p = trail_[qhead_++];
    const int fl = p ^ 1;  // literal that just became false
    std::vector<int>& ws = watches_[static_cast<size_t>(fl)];
    size_t out = 0;
    for (size_t i = 0; i < ws.size(); ++i) {
      const int ci = ws[i];
      Clause& c = clauses_[static_cast<size_t>(ci)];
      if (!c.active) {
        // Keep the entry: an inactive clause's watches stay valid and
        // must survive reactivation during the backward pass.
        ws[out++] = ci;
        continue;
      }
      if (c.lits[0] == fl) std::swap(c.lits[0], c.lits[1]);
      ARBITER_DCHECK(c.lits[1] == fl);
      const int first = c.lits[0];
      const int fv = LitValue(first);
      if (fv > 0) {  // satisfied by the other watch
        ws[out++] = ci;
        continue;
      }
      bool moved = false;
      for (size_t k = 2; k < c.lits.size(); ++k) {
        if (LitValue(c.lits[k]) >= 0) {
          std::swap(c.lits[1], c.lits[k]);
          watches_[static_cast<size_t>(c.lits[1])].push_back(ci);
          moved = true;
          break;
        }
      }
      if (moved) continue;  // watch moved; drop from this list
      ws[out++] = ci;
      if (fv < 0) {  // all literals false: conflict
        for (++i; i < ws.size(); ++i) ws[out++] = ws[i];
        ws.resize(out);
        qhead_ = trail_.size();
        return ci;
      }
      ++stats_.propagations;
      Assign(first, ci);
    }
    ws.resize(out);
  }
  return -1;
}

void DratChecker::UndoAll() {
  for (const int code : trail_) {
    value_[static_cast<size_t>(code >> 1)] = 0;
    reason_[static_cast<size_t>(code >> 1)] = -1;
  }
  trail_.clear();
  qhead_ = 0;
}

void DratChecker::MarkConflict(int conflict_ci) {
  ++visit_counter_;
  std::vector<int> stack = {conflict_ci};
  while (!stack.empty()) {
    const int ci = stack.back();
    stack.pop_back();
    Clause& c = clauses_[static_cast<size_t>(ci)];
    if (c.visit_stamp == visit_counter_) continue;
    c.visit_stamp = visit_counter_;
    c.marked = true;
    for (const int code : c.lits) {
      const int r = reason_[static_cast<size_t>(code >> 1)];
      if (r >= 0 &&
          clauses_[static_cast<size_t>(r)].visit_stamp != visit_counter_) {
        stack.push_back(r);
      }
    }
  }
}

bool DratChecker::Rup(const std::vector<int>& canon, bool mark) {
  ARBITER_DCHECK(trail_.empty());
  int conflict = -1;
  // Assume the negation of the candidate clause.
  for (const int code : canon) {
    const int v = LitValue(code);
    if (v > 0) {
      // ~code is already false, i.e. the negation of the clause is
      // contradictory on its own (tautology) — vacuously RUP.
      UndoAll();
      return true;
    }
    if (v == 0) Assign(code ^ 1, -1);
  }
  // Enqueue the database's unit clauses.
  for (const int ci : units_) {
    const Clause& c = clauses_[static_cast<size_t>(ci)];
    if (!c.active) continue;
    const int l = c.lits[0];
    const int v = LitValue(l);
    if (v < 0) {
      conflict = ci;
      break;
    }
    if (v == 0) {
      ++stats_.propagations;
      Assign(l, ci);
    }
  }
  if (conflict < 0) conflict = Propagate();
  const bool ok = conflict >= 0;
  if (ok && mark) MarkConflict(conflict);
  UndoAll();
  return ok;
}

bool DratChecker::Rat(const std::vector<int>& canon, int pivot, bool mark) {
  ++stats_.rat_checks;
  const int neg_pivot = pivot ^ 1;
  // Resolve against every active clause containing ~pivot.  This scans
  // the whole database — acceptable because RAT is the rare fallback
  // (RUP covers every clause the solver itself derives).
  for (size_t ci = 0; ci < clauses_.size(); ++ci) {
    const Clause& d = clauses_[ci];
    if (!d.active) continue;
    if (std::find(d.lits.begin(), d.lits.end(), neg_pivot) == d.lits.end()) {
      continue;
    }
    // Resolvent = (canon \ {pivot}) ∪ (d \ {~pivot}).
    std::vector<int> resolvent;
    resolvent.reserve(canon.size() + d.lits.size());
    for (const int code : canon) {
      if (code != pivot) resolvent.push_back(code);
    }
    for (const int code : d.lits) {
      if (code != neg_pivot) resolvent.push_back(code);
    }
    std::sort(resolvent.begin(), resolvent.end());
    resolvent.erase(std::unique(resolvent.begin(), resolvent.end()),
                    resolvent.end());
    bool taut = false;
    for (size_t i = 0; i + 1 < resolvent.size(); ++i) {
      if ((resolvent[i] ^ 1) == resolvent[i + 1]) {
        taut = true;
        break;
      }
    }
    if (taut) continue;
    if (!Rup(resolvent, mark)) return false;
    if (mark) clauses_[ci].marked = true;
  }
  return true;
}

DratCheckResult DratChecker::Check(const std::vector<ProofStep>& proof,
                                   const DratCheckOptions& options) {
  Reset();
  DratCheckResult result;

  // Load the formula.  An explicit empty formula clause makes the
  // instance trivially unsatisfiable whatever the proof says.
  int trivial_empty = -1;
  for (size_t fi = 0; fi < formula_.size(); ++fi) {
    bool taut = false;
    const std::vector<int> canon = Canonicalize(formula_[fi], &taut);
    const int ci = AddDbClause(canon, static_cast<int>(fi));
    if (canon.empty() && trivial_empty < 0) trivial_empty = ci;
  }
  if (trivial_empty >= 0) {
    result.ok = true;
    result.core.push_back(static_cast<size_t>(
        clauses_[static_cast<size_t>(trivial_empty)].formula_index));
    result.stats = stats_;
    return result;
  }

  struct StepInfo {
    bool is_delete = false;
    int clause = -1;  ///< added clause id, or matched deleted clause id
  };
  std::vector<StepInfo> infos;
  infos.reserve(proof.size());

  // Forward pass: replay the proof into the database, stopping at the
  // first empty-clause addition (the refutation target).  In forward
  // mode every addition is verified before insertion.
  bool have_target = false;
  for (size_t s = 0; s < proof.size() && !have_target; ++s) {
    const ProofStep& step = proof[s];
    ++stats_.steps;
    StepInfo info;
    info.is_delete = step.is_delete;
    bool taut = false;
    const std::vector<int> canon = Canonicalize(step.lits, &taut);
    if (step.is_delete) {
      ++stats_.deletions;
      const int ci = FindActive(canon);
      if (ci >= 0) {
        clauses_[static_cast<size_t>(ci)].active = false;
        info.clause = ci;
      } else {
        ++stats_.unmatched_deletions;
        if (options.strict_deletions) {
          result.error = "unmatched deletion at proof step " +
                         std::to_string(s);
          result.stats = stats_;
          return result;
        }
      }
    } else {
      ++stats_.additions;
      if (canon.empty()) {
        have_target = true;
        infos.push_back(info);
        break;
      }
      if (!options.backward) {
        const int pivot = step.lits.empty() ? -1 : step.lits[0].code();
        // Grow var state first so Rup can assign the new literals.
        for (const int code : canon) EnsureVar(code >> 1);
        ++stats_.verified;
        if (!taut && !Rup(canon, /*mark=*/true) &&
            !Rat(canon, pivot, /*mark=*/true)) {
          result.error = "addition at proof step " + std::to_string(s) +
                         " is neither RUP nor RAT";
          result.stats = stats_;
          return result;
        }
      }
      info.clause = AddDbClause(canon, -1);
    }
    infos.push_back(info);
  }

  // Establish the refutation: either the proof's empty clause is RUP
  // over the database at that point, or (for proofs that end without
  // an explicit empty step) the final database propagates to conflict.
  if (!Rup({}, /*mark=*/true)) {
    result.error = have_target
                       ? "empty clause at proof step " +
                             std::to_string(infos.size() - 1) + " is not RUP"
                       : "proof does not derive the empty clause";
    result.stats = stats_;
    return result;
  }
  if (have_target) ++stats_.verified;

  if (options.backward) {
    // Backward pass: undo steps newest-first; verify marked additions
    // against the database as it stood just before them.
    const size_t last = infos.empty() ? 0 : infos.size() - 1;
    for (size_t s = infos.size(); s-- > 0;) {
      const StepInfo& info = infos[s];
      if (have_target && s == last && !info.is_delete) continue;  // target
      if (info.is_delete) {
        if (info.clause >= 0) clauses_[static_cast<size_t>(info.clause)].active = true;
        continue;
      }
      if (info.clause < 0) continue;
      Clause& c = clauses_[static_cast<size_t>(info.clause)];
      c.active = false;
      if (!c.marked) {
        ++stats_.skipped;
        continue;
      }
      ++stats_.verified;
      if (c.tautology) continue;
      std::vector<int> canon = c.lits;
      std::sort(canon.begin(), canon.end());
      const int pivot = proof[s].lits.empty() ? -1 : proof[s].lits[0].code();
      if (!Rup(canon, /*mark=*/true) && !Rat(canon, pivot, /*mark=*/true)) {
        result.error = "addition at proof step " + std::to_string(s) +
                       " is neither RUP nor RAT";
        result.stats = stats_;
        return result;
      }
    }
  }

  for (const Clause& c : clauses_) {
    if (c.formula_index >= 0 && c.marked) {
      result.core.push_back(static_cast<size_t>(c.formula_index));
    }
  }
  std::sort(result.core.begin(), result.core.end());
  result.ok = true;
  result.stats = stats_;
  return result;
}

bool DratChecker::IsRupForTesting(const std::vector<sat::Lit>& lits) {
  Reset();
  for (const auto& f : formula_) {
    bool taut = false;
    AddDbClause(Canonicalize(f, &taut), -1);
  }
  bool taut = false;
  const std::vector<int> canon = Canonicalize(lits, &taut);
  if (taut) return true;
  for (const int code : canon) EnsureVar(code >> 1);
  return Rup(canon, /*mark=*/false);
}

bool DratChecker::IsRatForTesting(const std::vector<sat::Lit>& lits) {
  Reset();
  for (const auto& f : formula_) {
    bool taut = false;
    AddDbClause(Canonicalize(f, &taut), -1);
  }
  bool taut = false;
  const std::vector<int> canon = Canonicalize(lits, &taut);
  if (taut) return true;
  if (lits.empty()) return Rup(canon, /*mark=*/false);
  for (const int code : canon) EnsureVar(code >> 1);
  if (Rup(canon, /*mark=*/false)) return true;
  return Rat(canon, lits[0].code(), /*mark=*/false);
}

}  // namespace arbiter::proof
