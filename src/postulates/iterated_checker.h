#ifndef ARBITER_POSTULATES_ITERATED_CHECKER_H_
#define ARBITER_POSTULATES_ITERATED_CHECKER_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "change/operator.h"
#include "postulates/checker.h"

/// \file iterated_checker.h
/// Iterated-revision postulates in their knowledge-base-level reading
/// (after Darwiche & Pearl).  The paper's operators all act on plain
/// knowledge bases, so iteration means literally re-applying the
/// operator to its own output; the DP postulates then say how the
/// second change should respect the first:
///
///   (I1) if μ2 ⊨ μ1      then (ψ * μ1) * μ2 ≡ ψ * μ2
///   (I2) if μ2 ⊨ ¬μ1     then (ψ * μ1) * μ2 ≡ ψ * μ2
///   (I3) if ψ * μ2 ⊨ μ1  then (ψ * μ1) * μ2 ⊨ μ1
///   (I4) if ψ * μ2 ⊭ ¬μ1 then (ψ * μ1) * μ2 ⊭ ¬μ1
///
/// KB-level operators famously cannot satisfy all of these (the DP
/// theory needs epistemic states, not bases); the checker quantifies
/// the gap per operator — another paper-adjacent matrix, since the
/// jury of the introduction hears witnesses *in sequence*.

namespace arbiter {

enum class IteratedPostulate { kI1, kI2, kI3, kI4 };

std::string IteratedPostulateName(IteratedPostulate p);
std::string IteratedPostulateStatement(IteratedPostulate p);
std::vector<IteratedPostulate> AllIteratedPostulates();

struct IteratedCounterexample {
  IteratedPostulate postulate;
  int num_terms;
  SetCode psi;
  SetCode mu1;
  SetCode mu2;

  std::string Describe() const;
};

/// Exhaustive checker over every (ψ, μ1, μ2) triple of an n-term
/// vocabulary (n <= 3), with memoized Change calls.
class IteratedChecker {
 public:
  IteratedChecker(std::shared_ptr<const TheoryChangeOperator> op,
                  int num_terms);

  std::optional<IteratedCounterexample> CheckExhaustive(
      IteratedPostulate p);

  /// Names of the failing postulates, in order.
  std::vector<std::string> FailingPostulates();

 private:
  SetCode Change(SetCode psi, SetCode mu);
  ModelSet CodeToModelSet(SetCode code) const;

  std::shared_ptr<const TheoryChangeOperator> op_;
  int num_terms_;
  uint64_t space_;
  uint64_t num_codes_;
  std::vector<SetCode> cache_;
};

}  // namespace arbiter

#endif  // ARBITER_POSTULATES_ITERATED_CHECKER_H_
