// DistanceBackend contract tests: the enumerating oracle and the
// SAT/#SAT counting backend must agree bit-identically on every shared
// aggregator, including the edge conventions (empty mu, psi == True,
// psi unsatisfiable, single-model psi) and the paper's worked examples
// (3.1 and 4.1).  The counting backend must also serve vocabularies the
// oracle cannot touch, and fail loudly (not wrongly) where it cannot.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "change/backend.h"
#include "logic/parser.h"
#include "logic/vocabulary.h"
#include "model/distance.h"
#include "model/distance_semantics.h"
#include "model/model_set.h"
#include "solve/sum_sat.h"

namespace arbiter {
namespace {

Formula Syn(const std::string& text, int num_terms) {
  Result<Formula> f = ParseSynthetic(text, num_terms);
  ARBITER_CHECK_MSG(f.ok(), f.status().message().c_str());
  return *f;
}

/// Runs psi |> mu on both backends and requires identical model sets,
/// identical optimal-distance strings, and no truncation.
void ExpectBackendsAgree(const DistanceSemantics& semantics,
                         const Formula& psi, const Formula& mu,
                         int num_terms) {
  SCOPED_TRACE(semantics.DebugName() + " over " +
               std::to_string(num_terms) + " terms");
  std::shared_ptr<DistanceBackend> enumerating = MakeEnumeratingBackend();
  std::shared_ptr<DistanceBackend> counting = MakeCountingBackend();
  Result<DistanceChangeResult> a =
      enumerating->Change(semantics, psi, mu, num_terms, /*max_models=*/
                          int64_t{1} << 24);
  Result<DistanceChangeResult> b =
      counting->Change(semantics, psi, mu, num_terms, /*max_models=*/
                       int64_t{1} << 24);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  ASSERT_TRUE(b.ok()) << b.status().ToString();
  EXPECT_FALSE(a->truncated);
  EXPECT_FALSE(b->truncated);
  EXPECT_FALSE(a->models_omitted);
  EXPECT_FALSE(b->models_omitted);
  EXPECT_EQ(a->models, b->models);
  EXPECT_EQ(a->optimal, b->optimal);
}

std::vector<DistanceSemantics> SharedSemantics() {
  return {MinSemantics(), MaxSemantics(), SumSemantics(),
          MinSemantics({2, 1, 3, 1}), MaxSemantics({2, 1, 3, 1}),
          SumSemantics({2, 1, 3, 1})};
}

// --- Registry ----------------------------------------------------------

TEST(BackendRegistry, NamesAndLookup) {
  EXPECT_EQ(DistanceBackendNames(),
            (std::vector<std::string>{"enum", "counting"}));
  for (const std::string& name : DistanceBackendNames()) {
    Result<std::shared_ptr<DistanceBackend>> backend =
        MakeDistanceBackend(name);
    ASSERT_TRUE(backend.ok());
    EXPECT_EQ((*backend)->name(), name);
  }
  Result<std::shared_ptr<DistanceBackend>> missing =
      MakeDistanceBackend("no-such-backend");
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
}

TEST(BackendRegistry, MaxTermsReflectTheRepresentation) {
  std::shared_ptr<DistanceBackend> enumerating = MakeEnumeratingBackend();
  std::shared_ptr<DistanceBackend> counting = MakeCountingBackend();
  EXPECT_EQ(enumerating->MaxTerms(MaxSemantics()), kMaxEnumTerms);
  EXPECT_EQ(counting->MaxTerms(MaxSemantics()), kMaxVocabularyTerms - 1);
  EXPECT_GE(counting->MaxTerms(SumSemantics()), 100)
      << "the sum aggregator only needs the optimum, not model masks";
  EXPECT_EQ(counting->MaxTerms(WeightedSumSemantics([](uint64_t) {
              return 1.0;
            })),
            0)
      << "per-model weight functions require enumeration";
}

// --- Operator-name resolution ------------------------------------------

TEST(BackendOperatorSpec, DistanceOperatorsResolve) {
  Result<BackendOperatorSpec> dalal = BackendOperatorFor("dalal");
  ASSERT_TRUE(dalal.ok());
  EXPECT_EQ(dalal->semantics.aggregator, DistanceAggregator::kMin);
  EXPECT_FALSE(dalal->arbitration);

  Result<BackendOperatorSpec> arb = BackendOperatorFor("arbitration-sum");
  ASSERT_TRUE(arb.ok());
  EXPECT_EQ(arb->semantics.aggregator, DistanceAggregator::kSum);
  EXPECT_TRUE(arb->arbitration);

  EXPECT_EQ(BackendOperatorFor("wu").status().code(),
            StatusCode::kUnsupported)
      << "updates are pointwise, not distance argmins";
}

// --- Edge conventions, identical across backends -----------------------

TEST(BackendEdgeCases, EmptyMuIsEmptyEverywhere) {
  const int n = 4;
  const Formula psi = Syn("p0 | p1", n);
  const Formula mu = Syn("p2 & !p2", n);
  for (const DistanceSemantics& semantics : SharedSemantics()) {
    ExpectBackendsAgree(semantics, psi, mu, n);
    std::shared_ptr<DistanceBackend> counting = MakeCountingBackend();
    Result<DistanceChangeResult> r =
        counting->Change(semantics, psi, mu, n);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r->models.empty());
    EXPECT_TRUE(r->optimal.empty());
  }
}

TEST(BackendEdgeCases, TautologicalPsiKeepsAllOfMu) {
  const int n = 4;
  const Formula psi = Formula::True();
  const Formula mu = Syn("(p0 & p1) | (!p2 & p3)", n);
  const ModelSet expected = ModelSet::FromFormula(mu, n);
  for (const DistanceSemantics& semantics : SharedSemantics()) {
    ExpectBackendsAgree(semantics, psi, mu, n);
    std::shared_ptr<DistanceBackend> counting = MakeCountingBackend();
    Result<DistanceChangeResult> r =
        counting->Change(semantics, psi, mu, n);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->models, expected)
        << "a full psi ranks every candidate equally";
  }
}

TEST(BackendEdgeCases, UnsatPsiFollowsTheAggregatorConvention) {
  const int n = 4;
  const Formula psi = Syn("p0 & !p0", n);
  const Formula mu = Syn("p1 | p2", n);
  const ModelSet mu_models = ModelSet::FromFormula(mu, n);
  for (const DistanceSemantics& semantics : SharedSemantics()) {
    ExpectBackendsAgree(semantics, psi, mu, n);
    std::shared_ptr<DistanceBackend> counting = MakeCountingBackend();
    Result<DistanceChangeResult> r =
        counting->Change(semantics, psi, mu, n);
    ASSERT_TRUE(r.ok());
    if (semantics.aggregator == DistanceAggregator::kMin) {
      EXPECT_EQ(r->models, mu_models) << "revision convention: Mod(mu)";
    } else {
      EXPECT_TRUE(r->models.empty()) << "model-fitting (A2): empty";
    }
    EXPECT_TRUE(r->optimal.empty()) << "distance to nothing is undefined";
  }
}

TEST(BackendEdgeCases, SingleModelPsiCollapsesAllAggregators) {
  // With |Mod(psi)| = 1 min, max, and sum all rank by plain distance
  // to that one model, so every aggregator returns the same argmin.
  const int n = 4;
  const Formula psi = Syn("p0 & !p1 & p2 & !p3", n);
  const Formula mu = Syn("!p0 | p3", n);
  ModelSet reference = ModelSet(0);
  bool first = true;
  for (const DistanceSemantics& semantics :
       {MinSemantics(), MaxSemantics(), SumSemantics()}) {
    ExpectBackendsAgree(semantics, psi, mu, n);
    std::shared_ptr<DistanceBackend> counting = MakeCountingBackend();
    Result<DistanceChangeResult> r =
        counting->Change(semantics, psi, mu, n);
    ASSERT_TRUE(r.ok());
    if (first) {
      reference = r->models;
      first = false;
    } else {
      EXPECT_EQ(r->models, reference);
    }
  }
  EXPECT_FALSE(reference.empty());
}

// --- The paper's worked examples ---------------------------------------

TEST(BackendPaperExamples, Example31OnBothBackends) {
  // Vocabulary in paper order: S=p0, D=p1, Q=p2.
  const int n = 3;
  const Formula psi =
      Syn("(p0 & !p1 & !p2) | (!p0 & p1 & !p2) | (p0 & p1 & p2)", n);
  const Formula mu = Syn("((!p0 & p1) | (p0 & p1)) & !p2", n);
  for (auto backend : {MakeEnumeratingBackend(), MakeCountingBackend()}) {
    SCOPED_TRACE(backend->name());
    Result<DistanceChangeResult> r =
        backend->Change(MaxSemantics(), psi, mu, n);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    // odist(psi, {D}) = 2 and odist(psi, {S,D}) = 1: fitting keeps
    // exactly {S,D}.
    EXPECT_EQ(r->models, ModelSet::FromMasks({0b011}, n));
    EXPECT_EQ(r->optimal, "1");
  }
  ExpectBackendsAgree(MaxSemantics(), psi, mu, n);
  ExpectBackendsAgree(SumSemantics(), psi, mu, n);
}

TEST(BackendPaperExamples, Example41WeightedSumIsEnumerationOnly) {
  // 10 students want SQL only, 20 Datalog only, 5 all three;
  // wdist(psi, {D}) = 30 beats wdist(psi, {S,D}) = 35.
  const int n = 3;
  const Formula psi =
      Syn("(p0 & !p1 & !p2) | (!p0 & p1 & !p2) | (p0 & p1 & p2)", n);
  const Formula mu = Syn("((!p0 & p1) | (p0 & p1)) & !p2", n);
  DistanceSemantics semantics = WeightedSumSemantics([](uint64_t model) {
    switch (model) {
      case 0b001: return 10.0;  // {S}
      case 0b010: return 20.0;  // {D}
      case 0b111: return 5.0;   // {S,D,Q}
      default: return 0.0;
    }
  });
  std::shared_ptr<DistanceBackend> enumerating = MakeEnumeratingBackend();
  Result<DistanceChangeResult> r =
      enumerating->Change(semantics, psi, mu, n);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->models, ModelSet::FromMasks({0b010}, n));

  std::shared_ptr<DistanceBackend> counting = MakeCountingBackend();
  EXPECT_EQ(counting->Change(semantics, psi, mu, n).status().code(),
            StatusCode::kUnsupported);
}

// --- Cross-checks on denser formulas -----------------------------------

TEST(BackendAgreement, StructuredFormulasAgreeOnAllAggregators) {
  const int n = 6;
  const std::vector<std::pair<std::string, std::string>> cases = {
      {"(p0 | p1) & (p2 | !p3) & (p4 | p5)", "!p0 & (p1 | p2) & !p5"},
      {"p0 ^ p1 ^ p2", "(p3 & p4) | (!p1 & p5)"},
      {"(p0 -> p1) & (p1 -> p2) & (p2 -> p0)", "p3 | (p4 & !p0)"},
      {"!(p0 & p1 & p2 & p3)", "p0 & p1 & (p2 | p3) & !p4"},
  };
  for (const auto& [psi_text, mu_text] : cases) {
    SCOPED_TRACE(psi_text + "  |>  " + mu_text);
    const Formula psi = Syn(psi_text, n);
    const Formula mu = Syn(mu_text, n);
    for (const DistanceSemantics& semantics : SharedSemantics()) {
      ExpectBackendsAgree(semantics, psi, mu, n);
    }
  }
}

// --- Past the enumeration wall -----------------------------------------

TEST(BackendCapacity, EnumeratingBackendRefusesLargeVocabularies) {
  const int n = 30;
  const Formula psi = Syn("p0", n);
  const Formula mu = Syn("p1", n);
  std::shared_ptr<DistanceBackend> enumerating = MakeEnumeratingBackend();
  Result<DistanceChangeResult> r =
      enumerating->Change(MinSemantics(), psi, mu, n);
  EXPECT_EQ(r.status().code(), StatusCode::kCapacityExceeded);
}

TEST(BackendCapacity, CountingBackendServesThirtyAtomMinAndMax) {
  // psi pins p0..p4 true; mu forces p0 false.  The closest mu-world
  // flips exactly p0, so the Dalal optimum is 1 at every vocabulary
  // size; the max aggregator's optimum stays diameter-dependent.
  const int n = 30;
  const Formula psi = Syn("p0 & p1 & p2 & p3 & p4", n);
  const Formula mu = Syn("!p0 & p1", n);
  std::shared_ptr<DistanceBackend> counting = MakeCountingBackend();
  Result<DistanceChangeResult> min_r =
      counting->Change(MinSemantics(), psi, mu, n);
  ASSERT_TRUE(min_r.ok()) << min_r.status().ToString();
  EXPECT_EQ(min_r->optimal, "1");
  EXPECT_FALSE(min_r->models.empty());
  for (uint64_t model : min_r->models) {
    EXPECT_EQ(model & 0b11, uint64_t{0b10}) << "must satisfy mu";
  }
}

TEST(BackendCapacity, SumOptimumBeyondSixtyThreeAtomsOmitsModels) {
  // 70 atoms: psi = p0, so C = 2^69 and the column counts are C for
  // p0 and C/2 elsewhere.  sdist is minimized by any mu-world with p0
  // true; the optimum is 69 * 2^68 (every free column contributes
  // C/2 regardless of the candidate's bit).
  // Vocabulary objects cap at 64 names, but the backend only needs
  // variable indices: build the formulas directly.
  const int n = 70;
  const Formula psi = Formula::Var(0);
  const Formula mu = Formula::Var(1);
  std::shared_ptr<DistanceBackend> counting = MakeCountingBackend();
  Result<DistanceChangeResult> r =
      counting->Change(SumSemantics(), psi, mu, n);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(r->models_omitted);
  EXPECT_TRUE(r->models.empty());
  solve::Int128 expected = solve::Int128{69} << 68;
  EXPECT_EQ(r->optimal, solve::Int128ToString(expected));
}

// --- SumDistOracle regression ------------------------------------------

TEST(SumDistOracleDeath, EmptyModelSetFailsLoudly) {
  // Column counts over an empty Mod(psi) would rank every candidate
  // equal (sdist == 0 everywhere); construction must abort instead of
  // silently degenerating.
  EXPECT_DEATH(SumDistOracle(ModelSet(3)), "empty model set");
}

TEST(SumDistOracleDeath, NegativeMetricWeightFailsLoudly) {
  const ModelSet psi = ModelSet::FromMasks({0b01}, 2);
  EXPECT_DEATH(SumDistOracle(psi, {1, -2}), "negative metric weight");
}

}  // namespace
}  // namespace arbiter
