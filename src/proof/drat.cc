#include "proof/drat.h"

#include <cctype>
#include <cstdlib>

namespace arbiter::proof {

namespace {

void AppendAsciiStep(std::string* out, bool is_delete,
                     const std::vector<sat::Lit>& lits) {
  if (is_delete) *out += "d ";
  for (const sat::Lit l : lits) {
    if (l.negated()) *out += '-';
    *out += std::to_string(l.var() + 1);
    *out += ' ';
  }
  *out += "0\n";
}

void AppendBinaryStep(std::string* out, bool is_delete,
                      const std::vector<sat::Lit>& lits) {
  *out += is_delete ? 'd' : 'a';
  for (const sat::Lit l : lits) {
    uint64_t u = (static_cast<uint64_t>(l.var()) + 1) * 2 +
                 (l.negated() ? 1 : 0);
    while (u >= 0x80) {
      *out += static_cast<char>(0x80 | (u & 0x7F));
      u >>= 7;
    }
    *out += static_cast<char>(u);
  }
  *out += '\0';
}

}  // namespace

void DratWriter::Append(bool is_delete, const std::vector<sat::Lit>& lits) {
  if (binary_) {
    AppendBinaryStep(&data_, is_delete, lits);
  } else {
    AppendAsciiStep(&data_, is_delete, lits);
  }
}

std::string ToDratAscii(const std::vector<ProofStep>& steps) {
  std::string out;
  for (const ProofStep& s : steps) AppendAsciiStep(&out, s.is_delete, s.lits);
  return out;
}

std::string ToDratBinary(const std::vector<ProofStep>& steps) {
  std::string out;
  for (const ProofStep& s : steps) {
    AppendBinaryStep(&out, s.is_delete, s.lits);
  }
  return out;
}

Result<std::vector<ProofStep>> ParseDratAscii(const std::string& text) {
  std::vector<ProofStep> steps;
  ProofStep current;
  bool in_step = false;
  size_t i = 0;
  const size_t n = text.size();
  while (i < n) {
    const char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c)) != 0) {
      ++i;
      continue;
    }
    if (c == 'c') {  // comment line (drat-trim tolerates them)
      while (i < n && text[i] != '\n') ++i;
      continue;
    }
    if (c == 'd' && !in_step) {
      current.is_delete = true;
      in_step = true;
      ++i;
      continue;
    }
    if (c != '-' && std::isdigit(static_cast<unsigned char>(c)) == 0) {
      return Status::InvalidArgument(
          "drat: unexpected character '" + std::string(1, c) +
          "' at offset " + std::to_string(i));
    }
    const size_t start = i;
    if (c == '-') ++i;
    while (i < n && std::isdigit(static_cast<unsigned char>(text[i])) != 0) {
      ++i;
    }
    if (i == start || (text[start] == '-' && i == start + 1)) {
      return Status::InvalidArgument("drat: bare '-' at offset " +
                                     std::to_string(start));
    }
    const long long v = std::strtoll(text.c_str() + start, nullptr, 10);
    if (v == 0) {
      steps.push_back(std::move(current));
      current = ProofStep{};
      in_step = false;
      continue;
    }
    in_step = true;
    const long long var = v > 0 ? v : -v;
    current.lits.push_back(
        sat::Lit(static_cast<sat::Var>(var - 1), v < 0));
  }
  if (in_step) {
    return Status::InvalidArgument(
        "drat: final step not terminated by 0");
  }
  return steps;
}

Result<std::vector<ProofStep>> ParseDratBinary(const std::string& bytes) {
  std::vector<ProofStep> steps;
  size_t i = 0;
  const size_t n = bytes.size();
  while (i < n) {
    const char tag = bytes[i++];
    if (tag != 'a' && tag != 'd') {
      return Status::InvalidArgument(
          "drat: unknown binary step tag at offset " +
          std::to_string(i - 1));
    }
    ProofStep step;
    step.is_delete = (tag == 'd');
    for (;;) {
      if (i >= n) {
        return Status::InvalidArgument(
            "drat: truncated binary step (missing terminator)");
      }
      if (bytes[i] == '\0') {
        ++i;
        break;
      }
      uint64_t u = 0;
      int shift = 0;
      for (;;) {
        if (i >= n) {
          return Status::InvalidArgument("drat: truncated binary literal");
        }
        const uint8_t b = static_cast<uint8_t>(bytes[i++]);
        if (shift >= 63) {
          return Status::InvalidArgument("drat: binary literal overflow");
        }
        u |= static_cast<uint64_t>(b & 0x7F) << shift;
        shift += 7;
        if ((b & 0x80) == 0) break;
      }
      if (u < 2) {
        return Status::InvalidArgument("drat: binary literal under 2");
      }
      step.lits.push_back(sat::Lit(
          static_cast<sat::Var>(u / 2 - 1), (u & 1) != 0));
    }
    steps.push_back(std::move(step));
  }
  return steps;
}

bool DetectDratBinary(const std::string& bytes) {
  // drat-trim heuristic, simplified: a binary proof starts with an
  // 'a'/'d' tag whose payload byte is either a terminator (0), has the
  // continuation bit set, or encodes a literal — none of which are
  // legal second characters of an ASCII proof ("d " or a digit/sign).
  if (bytes.empty()) return false;
  if (bytes[0] != 'a' && bytes[0] != 'd') return false;
  if (bytes.size() == 1) return bytes[0] == 'a';
  const uint8_t second = static_cast<uint8_t>(bytes[1]);
  if (bytes[0] == 'a') return true;  // ASCII steps never start with 'a'
  // 'd' is ambiguous: ASCII deletions continue with whitespace.
  return second != ' ' && second != '\t';
}

Result<std::vector<ProofStep>> ParseDrat(const std::string& bytes) {
  return DetectDratBinary(bytes) ? ParseDratBinary(bytes)
                                 : ParseDratAscii(bytes);
}

}  // namespace arbiter::proof
