// Tests for model-fitting operators and arbitration (paper, Section 3).

#include "change/fitting.h"

#include <gtest/gtest.h>

#include "model/distance.h"
#include "util/random.h"

namespace arbiter {
namespace {

ModelSet Ms(std::vector<uint64_t> masks, int n) {
  return ModelSet::FromMasks(std::move(masks), n);
}

TEST(MaxFittingTest, PicksOverallClosest) {
  // Example 3.1 in raw model sets.
  MaxFitting op;
  ModelSet psi = Ms({0b001, 0b010, 0b111}, 3);
  ModelSet mu = Ms({0b010, 0b011}, 3);
  EXPECT_EQ(op.Change(psi, mu), Ms({0b011}, 3));
}

TEST(MaxFittingTest, EgalitarianVersusMajority) {
  // 3 voices at 000 and 1 at 111, mu = {000, 111, 011}:
  // max-distances: 000 -> 3, 111 -> 3, 011 -> 2: the compromise wins
  // even though the majority sits at 000.
  MaxFitting op;
  ModelSet psi = Ms({0b000, 0b111}, 3);
  ModelSet mu = Ms({0b000, 0b111, 0b011}, 3);
  EXPECT_EQ(op.Change(psi, mu), Ms({0b011}, 3));
}

TEST(SumFittingTest, MajoritySensitive) {
  // Sum aggregates the crowd: with psi = {000, 001, 010} (mass near
  // zero) and mu = {000, 111}: sums are 2 vs 7: 000 wins.
  SumFitting op;
  ModelSet psi = Ms({0b000, 0b001, 0b010}, 3);
  ModelSet mu = Ms({0b000, 0b111}, 3);
  EXPECT_EQ(op.Change(psi, mu), Ms({0b000}, 3));
}

TEST(FittingTest, EdgeCasesFollowA1A2) {
  ModelSet empty(2);
  ModelSet mu = Ms({0b01}, 2);
  for (const TheoryChangeOperator* op :
       {static_cast<const TheoryChangeOperator*>(new MaxFitting()),
        static_cast<const TheoryChangeOperator*>(new SumFitting()),
        static_cast<const TheoryChangeOperator*>(new LexFitting())}) {
    EXPECT_TRUE(op->Change(empty, mu).empty()) << op->name() << " (A2)";
    EXPECT_TRUE(op->Change(mu, empty).empty()) << op->name() << " (A1)";
    EXPECT_FALSE(op->Change(mu, mu).empty()) << op->name() << " (A3)";
    delete op;
  }
}

TEST(FittingTest, ResultIsArgminOfItsRank) {
  Rng rng(42);
  MaxFitting max_op;
  SumFitting sum_op;
  for (int round = 0; round < 100; ++round) {
    std::vector<uint64_t> mp, mm;
    for (uint64_t m = 0; m < 16; ++m) {
      if (rng.NextBool(0.3)) mp.push_back(m);
      if (rng.NextBool(0.3)) mm.push_back(m);
    }
    if (mp.empty() || mm.empty()) continue;
    ModelSet psi = Ms(mp, 4), mu = Ms(mm, 4);
    ModelSet max_result = max_op.Change(psi, mu);
    int best_max = OverallDist(psi, max_result[0]);
    ModelSet sum_result = sum_op.Change(psi, mu);
    int64_t best_sum = SumDist(psi, sum_result[0]);
    for (uint64_t m : mu) {
      EXPECT_GE(OverallDist(psi, m), best_max);
      EXPECT_GE(SumDist(psi, m), best_sum);
      EXPECT_EQ(max_result.Contains(m), OverallDist(psi, m) == best_max);
      EXPECT_EQ(sum_result.Contains(m), SumDist(psi, m) == best_sum);
    }
  }
}

TEST(LexFittingTest, PsiObliviousButA2Compliant) {
  LexFitting op;
  ModelSet mu = Ms({0b10, 0b01, 0b11}, 2);
  // Picks the smallest mask regardless of psi.
  EXPECT_EQ(op.Change(Ms({0b00}, 2), mu), Ms({0b01}, 2));
  EXPECT_EQ(op.Change(Ms({0b11}, 2), mu), Ms({0b01}, 2));
}

TEST(ArbitrationTest, IsCommutative) {
  Rng rng(2718);
  ArbitrationOperator max_arb = MakeMaxArbitration();
  ArbitrationOperator sum_arb = MakeSumArbitration();
  for (int round = 0; round < 100; ++round) {
    std::vector<uint64_t> ma, mb;
    for (uint64_t m = 0; m < 8; ++m) {
      if (rng.NextBool(0.4)) ma.push_back(m);
      if (rng.NextBool(0.4)) mb.push_back(m);
    }
    ModelSet a = Ms(ma, 3), b = Ms(mb, 3);
    EXPECT_EQ(max_arb.Change(a, b), max_arb.Change(b, a)) << round;
    EXPECT_EQ(sum_arb.Change(a, b), sum_arb.Change(b, a)) << round;
  }
}

TEST(ArbitrationTest, EqualsFittingOverFullSpace) {
  // Definition: psi Δ phi = (psi ∨ phi) |> M.
  Rng rng(6);
  ArbitrationOperator arb = MakeMaxArbitration();
  MaxFitting fitting;
  for (int round = 0; round < 50; ++round) {
    std::vector<uint64_t> ma, mb;
    for (uint64_t m = 0; m < 8; ++m) {
      if (rng.NextBool(0.4)) ma.push_back(m);
      if (rng.NextBool(0.4)) mb.push_back(m);
    }
    ModelSet a = Ms(ma, 3), b = Ms(mb, 3);
    EXPECT_EQ(arb.Change(a, b),
              fitting.Change(a.Union(b), ModelSet::Full(3)));
  }
}

TEST(ArbitrationTest, AgreementIsKept) {
  // If both voices agree on a world, arbitration keeps it (it has
  // overall distance bounded by every alternative).
  ArbitrationOperator arb = MakeMaxArbitration();
  ModelSet a = Ms({0b011}, 3);
  ModelSet b = Ms({0b011}, 3);
  EXPECT_EQ(arb.Change(a, b), Ms({0b011}, 3));
}

TEST(ArbitrationTest, SingletonConflictSplitsTheDifference) {
  // Voices at 000 and 110: both mid-points 010 and 100 (distance 1
  // from each) and the endpoints themselves (max distance 2) compete;
  // minimal max-distance 1 is achieved exactly by the midpoints.
  ArbitrationOperator arb = MakeMaxArbitration();
  ModelSet a = Ms({0b000}, 3);
  ModelSet b = Ms({0b110}, 3);
  EXPECT_EQ(arb.Change(a, b), Ms({0b010, 0b100}, 3));
}

TEST(ArbitrationTest, NamesAndFamilies) {
  EXPECT_EQ(MakeMaxArbitration().name(), "arbitration(revesz-max)");
  EXPECT_EQ(MakeMaxArbitration().family(),
            OperatorFamily::kArbitration);
  EXPECT_EQ(MaxFitting().family(), OperatorFamily::kModelFitting);
  EXPECT_EQ(OperatorFamilyName(OperatorFamily::kModelFitting),
            std::string("model-fitting"));
}

}  // namespace
}  // namespace arbiter
