// Tests for the BeliefStore: named bases, in-place changes with
// journaled undo, entailment/consistency queries, counterfactuals.

#include "store/belief_store.h"

#include <gtest/gtest.h>

namespace arbiter {
namespace {

TEST(BeliefStoreTest, DefineAndGet) {
  BeliefStore store;
  ASSERT_TRUE(store.Define("jury", "g & a").ok());
  EXPECT_TRUE(store.Contains("jury"));
  Result<KnowledgeBase> kb = store.Get("jury");
  ASSERT_TRUE(kb.ok());
  EXPECT_TRUE(kb->IsSatisfiable());
  EXPECT_EQ(store.Names(), std::vector<std::string>{"jury"});
}

TEST(BeliefStoreTest, GetUnknownFails) {
  BeliefStore store;
  EXPECT_EQ(store.Get("nope").status().code(), StatusCode::kNotFound);
}

TEST(BeliefStoreTest, DefineRejectsBadInput) {
  BeliefStore store;
  EXPECT_FALSE(store.Define("", "a").ok());
  EXPECT_FALSE(store.Define("x", "a &").ok());
}

TEST(BeliefStoreTest, ApplyRevisesInPlace) {
  BeliefStore store;
  ASSERT_TRUE(store.Define("jury", "g & a & (g & a -> v)").ok());
  ASSERT_TRUE(store.Apply("jury", "dalal", "!v").ok());
  EXPECT_EQ(*store.Entails("jury", "!v"), true);
  EXPECT_EQ(*store.Entails("jury", "g & a"), true);
}

TEST(BeliefStoreTest, ApplyUnknownOperatorFails) {
  BeliefStore store;
  ASSERT_TRUE(store.Define("x", "a").ok());
  EXPECT_EQ(store.Apply("x", "zorp", "b").code(), StatusCode::kNotFound);
  EXPECT_EQ(store.HistoryDepth("x"), 0) << "failed apply not journaled";
}

TEST(BeliefStoreTest, UndoRestoresPreviousState) {
  BeliefStore store;
  ASSERT_TRUE(store.Define("kb", "a & b").ok());
  ASSERT_TRUE(store.Apply("kb", "dalal", "!a").ok());
  EXPECT_EQ(*store.Entails("kb", "!a"), true);
  EXPECT_EQ(store.HistoryDepth("kb"), 1);
  ASSERT_TRUE(store.Undo("kb").ok());
  EXPECT_EQ(*store.Entails("kb", "a & b"), true);
  EXPECT_EQ(store.HistoryDepth("kb"), 0);
  EXPECT_FALSE(store.Undo("kb").ok()) << "nothing left to undo";
}

TEST(BeliefStoreTest, HistoryJournalsOperatorAndEvidence) {
  BeliefStore store;
  ASSERT_TRUE(store.Define("kb", "a").ok());
  ASSERT_TRUE(store.Apply("kb", "winslett", "b").ok());
  ASSERT_TRUE(store.Apply("kb", "arbitration-max", "!a").ok());
  std::vector<ChangeRecord> history = store.History("kb");
  ASSERT_EQ(history.size(), 2u);
  EXPECT_EQ(history[0].op_name, "winslett");
  EXPECT_EQ(history[0].evidence_text, "b");
  EXPECT_EQ(history[1].op_name, "arbitration-max");
}

TEST(BeliefStoreTest, RedefineClearsHistory) {
  BeliefStore store;
  ASSERT_TRUE(store.Define("kb", "a").ok());
  ASSERT_TRUE(store.Apply("kb", "dalal", "!a").ok());
  ASSERT_TRUE(store.Define("kb", "b").ok());
  EXPECT_EQ(store.HistoryDepth("kb"), 0);
}

TEST(BeliefStoreTest, DropRemovesBase) {
  BeliefStore store;
  ASSERT_TRUE(store.Define("kb", "a").ok());
  ASSERT_TRUE(store.Drop("kb").ok());
  EXPECT_FALSE(store.Contains("kb"));
  EXPECT_FALSE(store.Drop("kb").ok());
}

TEST(BeliefStoreTest, VocabularyGrowsAcrossBases) {
  BeliefStore store;
  ASSERT_TRUE(store.Define("one", "a").ok());
  ASSERT_TRUE(store.Define("two", "b & c").ok());
  // "one" leaves the later terms free: 1 * 2 * 2 models.
  EXPECT_EQ(store.Get("one")->models().size(), 4u);
  EXPECT_EQ(store.vocabulary().size(), 3);
}

TEST(BeliefStoreTest, EntailsAndConsistency) {
  BeliefStore store;
  ASSERT_TRUE(store.Define("kb", "a & (a -> b)").ok());
  EXPECT_EQ(*store.Entails("kb", "b"), true);
  EXPECT_EQ(*store.Entails("kb", "!b"), false);
  EXPECT_EQ(*store.ConsistentWith("kb", "a & b"), true);
  EXPECT_EQ(*store.ConsistentWith("kb", "!a"), false);
}

TEST(BeliefStoreTest, EntailmentWithFreshTermInQuery) {
  // Querying with a never-seen term grows the vocabulary mid-query;
  // the base must be re-evaluated consistently.
  BeliefStore store;
  ASSERT_TRUE(store.Define("kb", "a").ok());
  EXPECT_EQ(*store.Entails("kb", "brand_new | !brand_new"), true);
  EXPECT_EQ(*store.Entails("kb", "brand_new"), false);
}

TEST(BeliefStoreTest, CounterfactualViaUpdate) {
  // "The book is on the table XOR the magazine is" — if the book were
  // put on the table, the magazine's state is unchanged per world, so
  // the magazine being off the table is NOT guaranteed.
  BeliefStore store;
  ASSERT_TRUE(store.Define("table", "(book & !mag) | (!book & mag)").ok());
  EXPECT_EQ(*store.Counterfactual("table", "book", "book"), true);
  EXPECT_EQ(*store.Counterfactual("table", "book", "!mag"), false);
  // Revision (the wrong tool for counterfactuals) would conclude !mag:
  ASSERT_TRUE(store.Apply("table", "dalal", "book").ok());
  EXPECT_EQ(*store.Entails("table", "!mag"), true);
}

TEST(BeliefStoreTest, ArbitrationBetweenStoredBases) {
  // Two shards stored side by side, merged into a third via Δ.
  BeliefStore store;
  ASSERT_TRUE(store.Define("shard_a", "d & i").ok());
  ASSERT_TRUE(store.Define("merged", "d & i").ok());
  ASSERT_TRUE(store.Apply("merged", "two-sided-dalal", "!d & !i").ok());
  EXPECT_EQ(*store.ConsistentWith("merged", "d & i"), true);
  EXPECT_EQ(*store.ConsistentWith("merged", "!d & !i"), true);
}

TEST(BeliefStoreTest, SaveLoadRoundTrip) {
  BeliefStore store;
  ASSERT_TRUE(store.Define("jury", "g & a & (g & a -> v)").ok());
  ASSERT_TRUE(store.Define("witness", "!v").ok());
  ASSERT_TRUE(store.Apply("jury", "dalal", "!v").ok());
  std::string saved = store.Save();

  Result<BeliefStore> loaded = BeliefStore::Load(saved);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  BeliefStore copy = *loaded;
  EXPECT_EQ(copy.Names(), store.Names());
  EXPECT_EQ(copy.vocabulary().names(), store.vocabulary().names());
  for (const std::string& name : store.Names()) {
    EXPECT_TRUE(
        copy.Get(name)->EquivalentTo(*store.Get(name)))
        << name;
  }
  // Journals ARE persisted: Load restores the hist lines.
  EXPECT_EQ(copy.HistoryDepth("jury"), 1);
  std::vector<ChangeRecord> history = copy.History("jury");
  ASSERT_EQ(history.size(), 1u);
  EXPECT_EQ(history[0].op_name, "dalal");
  EXPECT_EQ(history[0].evidence_text, "!v");
  // ... so Undo works on the reloaded store and lands on the original.
  ASSERT_TRUE(copy.Undo("jury").ok());
  ASSERT_TRUE(store.Undo("jury").ok());
  EXPECT_TRUE(copy.Get("jury")->EquivalentTo(*store.Get("jury")));
}

TEST(BeliefStoreTest, SaveEmitsUndoAndHistLines) {
  BeliefStore store;
  ASSERT_TRUE(store.Define("kb", "a").ok());
  ASSERT_TRUE(store.Apply("kb", "winslett", "b | !a").ok());
  ASSERT_TRUE(store.Apply("kb", "dalal", "!b").ok());
  std::string saved = store.Save();
  // The base line holds the CURRENT formula; each pre-change state is
  // an undo line and each applied change a hist line, both in order.
  EXPECT_NE(saved.find("base kb := "), std::string::npos) << saved;
  EXPECT_NE(saved.find("undo kb := a\n"), std::string::npos) << saved;
  size_t first = saved.find("hist kb winslett := b | !a");
  size_t second = saved.find("hist kb dalal := !b");
  ASSERT_NE(first, std::string::npos) << saved;
  ASSERT_NE(second, std::string::npos) << saved;
  EXPECT_LT(first, second);
}

TEST(BeliefStoreTest, LoadRejectsMalformedHistLines) {
  EXPECT_FALSE(
      BeliefStore::Load("arbiter-store v1\nhist broken\n").ok());
  EXPECT_FALSE(
      BeliefStore::Load("arbiter-store v1\nhist kb := x\n").ok());
  // hist for a base that was never defined.
  EXPECT_FALSE(
      BeliefStore::Load("arbiter-store v1\nhist kb dalal := a\n").ok());
  // hist naming an unregistered operator.
  EXPECT_FALSE(
      BeliefStore::Load(
          "arbiter-store v1\nbase kb := a\nundo kb := a\n"
          "hist kb zorp := a\n")
          .ok());
}

TEST(BeliefStoreTest, LoadRejectsMalformedUndoLines) {
  EXPECT_FALSE(
      BeliefStore::Load("arbiter-store v1\nundo broken\n").ok());
  // undo for a base that was never defined.
  EXPECT_FALSE(
      BeliefStore::Load("arbiter-store v1\nundo kb := a\n").ok());
  // Each hist line needs a matching undo line and vice versa.
  EXPECT_FALSE(
      BeliefStore::Load("arbiter-store v1\nbase kb := a\n"
                        "hist kb dalal := !a\n")
          .ok());
  EXPECT_FALSE(
      BeliefStore::Load("arbiter-store v1\nbase kb := a\n"
                        "undo kb := a\n")
          .ok());
}

TEST(BeliefStoreTest, LoadAcceptsJournalFreeV1Files) {
  // Files written before journal persistence (no hist lines) load.
  Result<BeliefStore> loaded =
      BeliefStore::Load("arbiter-store v1\nvocab a b\nbase kb := a & b\n");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->HistoryDepth("kb"), 0);
}

TEST(BeliefStoreTest, LoadRejectsGarbage) {
  EXPECT_FALSE(BeliefStore::Load("").ok());
  EXPECT_FALSE(BeliefStore::Load("not a store\n").ok());
  EXPECT_FALSE(
      BeliefStore::Load("arbiter-store v1\nbase broken\n").ok());
  EXPECT_FALSE(
      BeliefStore::Load("arbiter-store v1\nmystery line\n").ok());
}

TEST(BeliefStoreTest, LoadPreservesVocabularyOrder) {
  // Term indices must survive the round trip so saved formulas keep
  // their meaning.
  BeliefStore store;
  ASSERT_TRUE(store.Define("x", "zebra | aardvark").ok());
  Result<BeliefStore> loaded = BeliefStore::Load(store.Save());
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->vocabulary().names(), store.vocabulary().names());
}

TEST(BeliefStoreTest, DumpListsEverything) {
  BeliefStore store;
  ASSERT_TRUE(store.Define("kb", "a").ok());
  ASSERT_TRUE(store.Apply("kb", "dalal", "!a").ok());
  std::string dump = store.Dump();
  EXPECT_NE(dump.find("kb :="), std::string::npos);
  EXPECT_NE(dump.find("models:"), std::string::npos);
  EXPECT_NE(dump.find("dalal"), std::string::npos);
}

// --- Distance backends and metric weights ------------------------------

/// p1 <op> p2 <op> ... <op> pn: grows the vocabulary past the 24-term
/// enumeration wall in one statement.
std::string WideChain(int n, const std::string& op) {
  std::string text;
  for (int i = 1; i <= n; ++i) {
    if (i > 1) text += " " + op + " ";
    text += "p" + std::to_string(i);
  }
  return text;
}

TEST(BeliefStoreBackend, SetBackendRaisesTheCapacityLimit) {
  BeliefStore store;
  EXPECT_EQ(store.backend_name(), "enum");
  EXPECT_EQ(store.CapacityLimit(), kMaxEnumTerms);
  ASSERT_TRUE(store.SetBackend("counting").ok());
  EXPECT_EQ(store.backend_name(), "counting");
  EXPECT_EQ(store.CapacityLimit(), kMaxVocabularyTerms - 1);
  EXPECT_EQ(store.SetBackend("no-such").code(), StatusCode::kNotFound);
  EXPECT_EQ(store.backend_name(), "counting") << "failed set is a no-op";
}

TEST(BeliefStoreBackend, EnumBackendStillRejectsWideVocabularies) {
  BeliefStore store;
  EXPECT_EQ(store.Define("wide", WideChain(30, "|")).code(),
            StatusCode::kCapacityExceeded);
}

TEST(BeliefStoreBackend, CountingBackendServesThirtyAtoms) {
  BeliefStore store;
  ASSERT_TRUE(store.SetBackend("counting").ok());
  // A conjunction pins every atom, so the revised base stays a single
  // model (the store must hold the exact result).
  ASSERT_TRUE(store.Define("wide", WideChain(30, "&")).ok());
  ASSERT_TRUE(store.Apply("wide", "dalal", "!p1").ok());
  // Queries route through CDCL past the enumeration wall.
  EXPECT_EQ(*store.Entails("wide", "!p1"), true);
  EXPECT_EQ(*store.Entails("wide", "p2"), true);
  EXPECT_EQ(*store.ConsistentWith("wide", "p3"), true);
  // Model materialization stays out of reach.
  EXPECT_EQ(store.Get("wide").status().code(),
            StatusCode::kCapacityExceeded);
}

TEST(BeliefStoreBackend, SwitchingBackToEnumNeedsASmallVocabulary) {
  BeliefStore store;
  ASSERT_TRUE(store.SetBackend("counting").ok());
  ASSERT_TRUE(store.Define("wide", WideChain(30, "|")).ok());
  EXPECT_EQ(store.SetBackend("enum").code(),
            StatusCode::kInvalidArgument);

  BeliefStore small;
  ASSERT_TRUE(small.SetBackend("counting").ok());
  ASSERT_TRUE(small.Define("kb", "a & b").ok());
  EXPECT_TRUE(small.SetBackend("enum").ok());
}

TEST(BeliefStoreBackend, CountingApplyMatchesEnumOnSmallVocabularies) {
  // Example 3.1 through both backends: S=s, D=d, Q=q.
  const std::string psi = "(s & !d & !q) | (!s & d & !q) | (s & d & q)";
  const std::string mu = "((!s & d) | (s & d)) & !q";
  for (const std::string& op : {std::string("dalal"),
                                std::string("revesz-max"),
                                std::string("revesz-sum"),
                                std::string("arbitration-max")}) {
    SCOPED_TRACE(op);
    BeliefStore enumerating;
    ASSERT_TRUE(enumerating.Define("kb", psi).ok());
    ASSERT_TRUE(enumerating.Apply("kb", op, mu).ok());

    BeliefStore counting;
    ASSERT_TRUE(counting.SetBackend("counting").ok());
    ASSERT_TRUE(counting.Define("kb", psi).ok());
    ASSERT_TRUE(counting.Apply("kb", op, mu).ok());

    Result<KnowledgeBase> a = enumerating.Get("kb");
    Result<KnowledgeBase> b = counting.Get("kb");
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_EQ(a->models(), b->models());
  }
}

TEST(BeliefStoreBackend, WeightsShapeTheMetric) {
  BeliefStore store;
  ASSERT_TRUE(store.Define("kb", "a & b").ok());
  // Flipping a costs 5, flipping b costs 1: revision by !(a & b)
  // prefers to give up b.
  ASSERT_TRUE(store.SetWeight("a", 5).ok());
  ASSERT_TRUE(store.SetWeight("b", 1).ok());
  EXPECT_EQ(store.weights().at("a"), 5);
  ASSERT_TRUE(store.Apply("kb", "dalal", "!(a & b)").ok());
  EXPECT_EQ(*store.Entails("kb", "a"), true);
  EXPECT_EQ(*store.Entails("kb", "!b"), true);
  EXPECT_EQ(store.SetWeight("a", -1).code(),
            StatusCode::kInvalidArgument);
}

TEST(BeliefStoreBackend, SaveLoadRoundTripsBackendAndWeights) {
  BeliefStore store;
  ASSERT_TRUE(store.SetBackend("counting").ok());
  ASSERT_TRUE(store.Define("kb", "a & b").ok());
  ASSERT_TRUE(store.SetWeight("a", 7).ok());
  const std::string saved = store.Save();
  EXPECT_NE(saved.find("backend counting"), std::string::npos);
  EXPECT_NE(saved.find("weight a 7"), std::string::npos);

  Result<BeliefStore> loaded = BeliefStore::Load(saved);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->backend_name(), "counting");
  EXPECT_EQ(loaded->weights().at("a"), 7);

  // The default backend writes no backend line.
  BeliefStore plain;
  ASSERT_TRUE(plain.Define("kb", "a").ok());
  EXPECT_EQ(plain.Save().find("backend"), std::string::npos);
}

TEST(BeliefStoreBackend, LoadRejectsMalformedBackendAndWeightLines) {
  EXPECT_FALSE(
      BeliefStore::Load("arbiter-store v1\nbackend zorp\n").ok());
  EXPECT_FALSE(
      BeliefStore::Load("arbiter-store v1\nweight a\n").ok());
  EXPECT_FALSE(
      BeliefStore::Load("arbiter-store v1\nweight a twelve\n").ok());
}

TEST(BeliefStoreBackend, WeightsPastTheCapAreOutOfRange) {
  // A weight near INT64_MAX would overflow the Σ accumulation in
  // diameter/sum distances; the cap keeps every reachable sum exact.
  BeliefStore store;
  ASSERT_TRUE(store.SetWeight("a", kMaxMetricWeight).ok());
  EXPECT_EQ(store.SetWeight("a", kMaxMetricWeight + 1).code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(store.weights().at("a"), kMaxMetricWeight)
      << "rejected weight must not half-apply";
}

// --- Const query family (server read path) -----------------------------

TEST(BeliefStoreQuery, QueriesMatchMutatingCountsAndCommitNothing) {
  BeliefStore store;
  ASSERT_TRUE(store.Define("kb", "g & a").ok());
  const size_t vocab_before = store.vocabulary().size();

  const BeliefStore& reader = store;
  EXPECT_EQ(*reader.QueryEntails("kb", "g"), true);
  EXPECT_EQ(*reader.QueryEntails("kb", "!g"), false);
  EXPECT_EQ(*reader.QueryConsistentWith("kb", "g & z"), true);
  EXPECT_EQ(*reader.QueryEquivalentTo("kb", "a & g"), true);
  // Queries parse over a scratch vocabulary: the new term z above must
  // not have grown the store.
  EXPECT_EQ(store.vocabulary().size(), vocab_before);

  Result<std::string> models = reader.QueryModels("kb");
  ASSERT_TRUE(models.ok());
  EXPECT_FALSE(models->empty());
  Result<std::string> dist = reader.QueryDistance("kb", "dalal", "!g & !a");
  ASSERT_TRUE(dist.ok());
  EXPECT_EQ(*dist, "2");

  EXPECT_EQ(reader.QueryEntails("ghost", "g").status().code(),
            StatusCode::kNotFound);
  EXPECT_FALSE(reader.QueryDistance("kb", "zorp", "a").ok());
}

TEST(BeliefStoreQuery, CopySharesCacheButNotBackendState) {
  auto cache = std::make_shared<OperatorResultCache>(16);
  BeliefStore store;
  store.SetResultCache(cache);
  ASSERT_TRUE(store.Define("kb", "g & a").ok());
  ASSERT_TRUE(store.Apply("kb", "dalal", "!a").ok());
  EXPECT_EQ(cache->stats().misses, 1u);

  BeliefStore copy = store;
  ASSERT_TRUE(copy.Define("kb", "g & a").ok());
  ASSERT_TRUE(copy.Apply("kb", "dalal", "!a").ok());
  EXPECT_EQ(cache->stats().hits, 1u) << "copies share the result cache";
  EXPECT_EQ(copy.Save(), store.Save());
}

}  // namespace
}  // namespace arbiter
