// Integration tests for the Arbiter façade.

#include "core/arbiter.h"

#include <gtest/gtest.h>

namespace arbiter {
namespace {

TEST(ArbiterTest, QuickstartFlow) {
  Arbiter arb({"rain", "wet"});
  KnowledgeBase psi = *arb.ParseKb("rain & (rain -> wet)");
  KnowledgeBase mu = *arb.ParseKb("!wet");
  KnowledgeBase revised = arb.Revise(psi, mu);
  EXPECT_TRUE(revised.IsSatisfiable());
  EXPECT_TRUE(revised.Implies(mu));
}

TEST(ArbiterTest, VocabularyGrowsWhileParsing) {
  Arbiter arb;
  EXPECT_EQ(arb.vocabulary().size(), 0);
  ASSERT_TRUE(arb.ParseKb("a & b").ok());
  EXPECT_EQ(arb.vocabulary().size(), 2);
  ASSERT_TRUE(arb.ParseKb("c").ok());
  EXPECT_EQ(arb.vocabulary().size(), 3);
}

TEST(ArbiterTest, RebaseReevaluatesOverGrownVocabulary) {
  Arbiter arb;
  KnowledgeBase early = *arb.ParseKb("a");
  ASSERT_TRUE(arb.ParseKb("b & c").ok());
  KnowledgeBase rebased = arb.Rebase(early);
  EXPECT_EQ(rebased.num_terms(), 3);
  EXPECT_EQ(rebased.models().size(), 4u);  // a true, b/c free
}

TEST(ArbiterTest, ParseErrorsSurface) {
  Arbiter arb;
  Result<KnowledgeBase> bad = arb.ParseKb("a &");
  EXPECT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
}

TEST(ArbiterTest, ChangeByOperatorName) {
  Arbiter arb({"x", "y"});
  KnowledgeBase psi = *arb.ParseKb("x & y");
  KnowledgeBase mu = *arb.ParseKb("!x");
  for (const std::string& name : RegisteredOperatorNames()) {
    Result<KnowledgeBase> result = arb.Change(name, psi, mu);
    ASSERT_TRUE(result.ok()) << name;
  }
  EXPECT_FALSE(arb.Change("no-such-op", psi, mu).ok());
}

TEST(ArbiterTest, ReviseUpdateFitArbitrateDiffer) {
  // One scenario where all four built-in entry points give defensible
  // but different answers.
  Arbiter arb({"a", "b"});
  KnowledgeBase psi = *arb.ParseKb("(a & b) | (!a & !b)");
  KnowledgeBase mu = *arb.ParseKb("a ^ b");
  KnowledgeBase revised = arb.Revise(psi, mu);
  KnowledgeBase updated = arb.Update(psi, mu);
  KnowledgeBase fitted = arb.Fit(psi, mu);
  EXPECT_TRUE(revised.Implies(mu));
  EXPECT_TRUE(updated.Implies(mu));
  EXPECT_TRUE(fitted.Implies(mu));
  KnowledgeBase arbitrated = arb.Arbitrate(psi, mu);
  EXPECT_TRUE(arbitrated.IsSatisfiable());
}

TEST(ArbiterTest, ArbitrateIsCommutativeAtTheFacade) {
  Arbiter arb({"a", "b", "c"});
  KnowledgeBase x = *arb.ParseKb("a & !b");
  KnowledgeBase y = *arb.ParseKb("b & c");
  EXPECT_TRUE(arb.Arbitrate(x, y).EquivalentTo(arb.Arbitrate(y, x)));
}

TEST(ArbiterTest, WeightedEntryPoints) {
  Arbiter arb({"a", "b"});
  WeightedKnowledgeBase wa = *arb.ParseWeightedKb("a");
  WeightedKnowledgeBase wb = *arb.ParseWeightedKb("!a & b");
  WeightedKnowledgeBase verdict = arb.ArbitrateWeighted(wa, wb);
  EXPECT_TRUE(verdict.IsSatisfiable());
}

TEST(ArbiterTest, RegistryNamesAllConstruct) {
  for (const std::string& name : RegisteredOperatorNames()) {
    EXPECT_TRUE(MakeOperator(name).ok()) << name;
  }
  EXPECT_EQ(AllOperators().size(), RegisteredOperatorNames().size());
}

TEST(ArbiterTest, VersionIsSet) {
  EXPECT_STRNE(Version(), "");
}

}  // namespace
}  // namespace arbiter
