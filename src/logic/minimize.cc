#include "logic/minimize.h"

#include <algorithm>
#include <set>

#include "logic/vocabulary.h"
#include "util/bit.h"
#include "util/logging.h"

namespace arbiter {

std::vector<Implicant> PrimeImplicants(const std::vector<uint64_t>& models,
                                       int num_terms) {
  ARBITER_CHECK(num_terms >= 0 && num_terms <= kMaxEnumTerms);
  const uint64_t full = LowMask(num_terms);
  // Level 0: minterms.
  std::set<Implicant> current;
  for (uint64_t m : models) {
    ARBITER_CHECK((m & ~full) == 0);
    current.insert(Implicant{full, m});
  }
  std::vector<Implicant> primes;
  while (!current.empty()) {
    std::set<Implicant> next;
    std::set<Implicant> combined;
    std::vector<Implicant> level(current.begin(), current.end());
    for (size_t i = 0; i < level.size(); ++i) {
      for (size_t j = i + 1; j < level.size(); ++j) {
        if (level[i].care_mask != level[j].care_mask) continue;
        uint64_t diff = level[i].value ^ level[j].value;
        if (!IsSingleBit(diff)) continue;
        next.insert(Implicant{level[i].care_mask & ~diff,
                              level[i].value & ~diff});
        combined.insert(level[i]);
        combined.insert(level[j]);
      }
    }
    for (const Implicant& imp : level) {
      if (combined.count(imp) == 0) primes.push_back(imp);
    }
    current = std::move(next);
  }
  std::sort(primes.begin(), primes.end());
  return primes;
}

namespace {

Formula ImplicantToFormula(const Implicant& imp) {
  std::vector<Formula> literals;
  ForEachBit(imp.care_mask, [&](int i) {
    Formula v = Formula::Var(i);
    literals.push_back(((imp.value >> i) & 1) ? v : Not(v));
  });
  return And(std::move(literals));  // empty care mask -> ⊤
}

}  // namespace

Formula MinimizeToDnf(const std::vector<uint64_t>& models, int num_terms) {
  ARBITER_CHECK(num_terms >= 0 && num_terms <= kMaxEnumTerms);
  if (models.empty()) return Formula::False();
  std::vector<uint64_t> sorted = models;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());
  if (sorted.size() == (1ULL << num_terms)) return Formula::True();

  std::vector<Implicant> primes = PrimeImplicants(sorted, num_terms);

  // Greedy cover: repeatedly take the prime covering the most
  // still-uncovered models (ties: fewer literals first, then order).
  std::set<uint64_t> uncovered(sorted.begin(), sorted.end());
  std::vector<Formula> chosen;
  while (!uncovered.empty()) {
    const Implicant* best = nullptr;
    int best_count = 0;
    for (const Implicant& p : primes) {
      int count = 0;
      for (uint64_t m : uncovered) {
        if (p.Covers(m)) ++count;
      }
      if (count > best_count ||
          (count == best_count && best != nullptr && count > 0 &&
           PopCount(p.care_mask) < PopCount(best->care_mask))) {
        best = &p;
        best_count = count;
      }
    }
    ARBITER_CHECK_MSG(best != nullptr && best_count > 0,
                      "prime implicants failed to cover the models");
    chosen.push_back(ImplicantToFormula(*best));
    for (auto it = uncovered.begin(); it != uncovered.end();) {
      if (best->Covers(*it)) {
        it = uncovered.erase(it);
      } else {
        ++it;
      }
    }
  }
  return Or(std::move(chosen));
}

}  // namespace arbiter
