// Tests for the change-explanation facility.

#include "change/explain.h"

#include <gtest/gtest.h>

#include "change/registry.h"
#include "model/distance.h"

namespace arbiter {
namespace {

ModelSet Ms(std::vector<uint64_t> masks, int n) {
  return ModelSet::FromMasks(std::move(masks), n);
}

TEST(ExplainTest, UnknownOperatorFails) {
  EXPECT_FALSE(ExplainChange("zorp", Ms({0}, 2), Ms({1}, 2)).ok());
}

TEST(ExplainTest, DalalRanksAreMinDistances) {
  ModelSet psi = Ms({0b111}, 3);
  ModelSet mu = Ms({0b000, 0b110, 0b100}, 3);
  Result<ChangeExplanation> ex = ExplainChange("dalal", psi, mu);
  ASSERT_TRUE(ex.ok());
  EXPECT_EQ(ex->candidates.size(), 3u);
  for (const CandidateExplanation& c : ex->candidates) {
    EXPECT_DOUBLE_EQ(c.rank, MinDist(psi, c.model));
    EXPECT_EQ(c.selected, c.model == 0b110);
  }
  // Sorted by rank ascending: the selected model first.
  EXPECT_TRUE(ex->candidates[0].selected);
  EXPECT_LE(ex->candidates[0].rank, ex->candidates[1].rank);
}

TEST(ExplainTest, SelectionMatchesOperator) {
  for (const std::string& name : RegisteredOperatorNames()) {
    ModelSet psi = Ms({0b001, 0b010}, 3);
    ModelSet mu = Ms({0b010, 0b100, 0b111}, 3);
    auto op = MakeOperator(name).ValueOrDie();
    ModelSet expected = op->Change(psi, mu);
    Result<ChangeExplanation> ex = ExplainChange(name, psi, mu);
    ASSERT_TRUE(ex.ok()) << name;
    for (const CandidateExplanation& c : ex->candidates) {
      EXPECT_EQ(c.selected, expected.Contains(c.model))
          << name << " model " << c.model;
    }
  }
}

TEST(ExplainTest, MaxFittingNotesFarthestVoice) {
  // Example 3.1: the {D} option's worst critic is the {S,D,Q} student.
  ModelSet psi = Ms({0b001, 0b010, 0b111}, 3);
  ModelSet mu = Ms({0b010, 0b011}, 3);
  Result<ChangeExplanation> ex = ExplainChange("revesz-max", psi, mu);
  ASSERT_TRUE(ex.ok());
  for (const CandidateExplanation& c : ex->candidates) {
    EXPECT_DOUBLE_EQ(c.rank, OverallDist(psi, c.model));
    EXPECT_NE(c.note.find("farthest voice"), std::string::npos);
  }
}

TEST(ExplainTest, ArbitrationExplainsOverTheFullSpace) {
  ModelSet a = Ms({0b000}, 3);
  ModelSet b = Ms({0b110}, 3);
  Result<ChangeExplanation> ex = ExplainChange("arbitration-max", a, b);
  ASSERT_TRUE(ex.ok());
  EXPECT_EQ(ex->candidates.size(), 8u) << "all interpretations compete";
  int selected = 0;
  for (const CandidateExplanation& c : ex->candidates) {
    if (c.selected) ++selected;
  }
  EXPECT_EQ(selected, 2) << "the two midpoints";
}

TEST(ExplainTest, RenderingIsReadable) {
  auto vocab = Vocabulary::FromNames({"S", "D", "Q"}).ValueOrDie();
  ModelSet psi = Ms({0b001, 0b010, 0b111}, 3);
  ModelSet mu = Ms({0b010, 0b011}, 3);
  Result<ChangeExplanation> ex = ExplainChange("revesz-max", psi, mu);
  ASSERT_TRUE(ex.ok());
  std::string text = ex->ToString(vocab);
  EXPECT_NE(text.find("[*] {S, D}"), std::string::npos) << text;
  EXPECT_NE(text.find("[ ] {D}"), std::string::npos) << text;
  EXPECT_NE(text.find("rank 1"), std::string::npos) << text;
}

TEST(ExplainTest, UnsatisfiablePsiIsFlagged) {
  Result<ChangeExplanation> ex =
      ExplainChange("revesz-max", ModelSet(2), Ms({0b01}, 2));
  ASSERT_TRUE(ex.ok());
  EXPECT_NE(ex->summary.find("unsatisfiable"), std::string::npos);
}

}  // namespace
}  // namespace arbiter
