#include "test_support/differential.h"

#include <algorithm>
#include <limits>

#include "change/backend.h"
#include "change/commutative.h"
#include "change/fitting.h"
#include "change/registry.h"
#include "change/weighted.h"
#include "logic/generator.h"
#include "logic/parser.h"
#include "lint/flow_checks.h"
#include "lint/lint.h"
#include "model/distance.h"
#include "sat/dpll.h"
#include "sat/preprocessor.h"
#include "test_support/cnf_instances.h"
#include "model/loyal.h"
#include "model/preorder.h"
#include "store/belief_store.h"
#include "test_support/fuzz_generators.h"
#include "util/parallel.h"
#include "util/random.h"

namespace arbiter::test_support {

namespace {

/// Restores the pool to its default lane count when a sweep exits.
struct ThreadCountGuard {
  ~ThreadCountGuard() { ThreadPool::Instance().SetNumThreads(0); }
};

/// Re-enables SAT preprocessing when a disabled-mode sweep exits.
struct PreprocessingGuard {
  ~PreprocessingGuard() { sat::SetSatPreprocessingEnabled(true); }
};

/// Drops the preprocessing size floor to zero for a scope, so the
/// small fuzz instances still exercise the full simplification
/// pipeline (production keeps the floor: tiny instances skip it).
struct PpFloorGuard {
  const int saved = sat::SatPreprocessMinClauses();
  PpFloorGuard() { sat::SetSatPreprocessMinClauses(0); }
  ~PpFloorGuard() { sat::SetSatPreprocessMinClauses(saved); }
};

std::string Truncate(std::string s, size_t limit = 160) {
  if (s.size() > limit) {
    s.resize(limit);
    s += "...";
  }
  return s;
}

/// Collects divergences for one case; counts every comparison made.
class CaseContext {
 public:
  CaseContext(int case_index, uint64_t case_seed, DifferentialReport* report)
      : case_index_(case_index), case_seed_(case_seed), report_(report) {}

  void Check(bool ok, const std::string& check, const std::string& detail) {
    ++report_->checks_run;
    if (!ok) {
      report_->divergences.push_back(
          Divergence{case_index_, case_seed_, check, Truncate(detail)});
    }
  }

 private:
  int case_index_;
  uint64_t case_seed_;
  DifferentialReport* report_;
};

/// Byte-level observable state of a BeliefStore, for atomicity checks.
struct StoreSnapshot {
  std::string dump;
  std::vector<std::string> names;
  std::vector<std::string> vocab;
  std::vector<int> depths;

  static StoreSnapshot Of(const BeliefStore& store) {
    StoreSnapshot snap;
    snap.dump = store.Dump();
    snap.names = store.Names();
    snap.vocab = store.vocabulary().names();
    for (const std::string& name : snap.names) {
      snap.depths.push_back(store.HistoryDepth(name));
    }
    return snap;
  }

  bool operator==(const StoreSnapshot& o) const {
    return dump == o.dump && names == o.names && vocab == o.vocab &&
           depths == o.depths;
  }
};

/// Executes one script op; returns its Status and whether the op kind
/// mutates on success (Undo/Drop/Define/Apply).
Status RunStoreOp(BeliefStore* store, const StoreOp& op) {
  using Kind = StoreOp::Kind;
  switch (op.kind) {
    case Kind::kDefine:
    case Kind::kBadDefine:
      return store->Define(op.base, op.text);
    case Kind::kApply:
    case Kind::kBadApply:
      return store->Apply(op.base, op.op_name, op.text);
    case Kind::kUndo:
      return store->Undo(op.base);
    case Kind::kDrop:
      return store->Drop(op.base);
    case Kind::kEntails:
    case Kind::kBadQuery:
      return store->Entails(op.base, op.text).status();
    case Kind::kConsistentWith:
      return store->ConsistentWith(op.base, op.text).status();
  }
  return Status::Internal("unhandled op kind");
}

void CheckKernels(CaseContext* ctx, Rng* rng, const ModelSet& psi,
                  const ModelSet& mu,
                  const std::vector<int>& thread_counts) {
  const int n = psi.num_terms();
  const uint64_t space = 1ULL << n;

  // Pointwise aggregates on sampled interpretations, including the
  // exact-below-bound contract of the pruned kernels.
  for (int s = 0; s < 24; ++s) {
    const uint64_t i = rng->NextBelow(space);
    const int ref_max = ReferenceOverallDist(psi, i);
    const int64_t ref_sum = ReferenceSumDist(psi, i);
    ctx->Check(OverallDist(psi, i) == ref_max, "kernel/odist",
               "I=" + std::to_string(i) + " psi=" + psi.ToString());
    ctx->Check(OverallDistBounded(psi, i, n + 1) == ref_max,
               "kernel/odist-bounded-exact",
               "I=" + std::to_string(i) + " psi=" + psi.ToString());
    ctx->Check(SumDist(psi, i) == ref_sum, "kernel/sdist",
               "I=" + std::to_string(i) + " psi=" + psi.ToString());
    ctx->Check(
        SumDistBounded(psi, i, std::numeric_limits<int64_t>::max()) ==
            ref_sum,
        "kernel/sdist-bounded-exact",
        "I=" + std::to_string(i) + " psi=" + psi.ToString());

    const int bound = static_cast<int>(rng->NextBelow(n + 2));
    const int pruned = OverallDistBounded(psi, i, bound);
    ctx->Check(ref_max < bound ? pruned == ref_max : pruned >= bound,
               "kernel/odist-bounded-contract",
               "I=" + std::to_string(i) + " bound=" + std::to_string(bound) +
                   " got=" + std::to_string(pruned) +
                   " exact=" + std::to_string(ref_max));
    const int64_t sbound = static_cast<int64_t>(
        rng->NextBelow(static_cast<uint64_t>(ref_sum) + 2));
    const int64_t spruned = SumDistBounded(psi, i, sbound);
    ctx->Check(ref_sum < sbound ? spruned == ref_sum : spruned >= sbound,
               "kernel/sdist-bounded-contract",
               "I=" + std::to_string(i) + " bound=" + std::to_string(sbound) +
                   " got=" + std::to_string(spruned) +
                   " exact=" + std::to_string(ref_sum));
  }

  // Column-count oracle vs direct summation, over the whole support.
  const SumDistOracle oracle(psi);
  for (int s = 0; s < 16; ++s) {
    const uint64_t i = rng->NextBelow(space);
    ctx->Check(oracle(i) == ReferenceSumDist(psi, i), "kernel/sdist-oracle",
               "I=" + std::to_string(i) + " psi=" + psi.ToString());
  }

  // The production argmin (pruned, possibly parallel) vs the naive
  // scan, bit-identical at every thread count.
  const ModelSet ref_max_fit = ReferenceFitting(psi, mu, /*use_sum=*/false);
  const ModelSet ref_sum_fit = ReferenceFitting(psi, mu, /*use_sum=*/true);
  ThreadCountGuard guard;
  for (int threads : thread_counts) {
    ThreadPool::Instance().SetNumThreads(threads);
    ctx->Check(MaxFitting().Change(psi, mu) == ref_max_fit,
               "kernel/max-fitting@t" + std::to_string(threads),
               "psi=" + psi.ToString() + " mu=" + mu.ToString());
    ctx->Check(SumFitting().Change(psi, mu) == ref_sum_fit,
               "kernel/sum-fitting@t" + std::to_string(threads),
               "psi=" + psi.ToString() + " mu=" + mu.ToString());
  }
}

/// Cross-checks the counting backend against the enumerating oracle on
/// a random formula pair: min/max/Σ aggregation, unit and weighted
/// metrics, every configured thread count.  Bit-identical means equal
/// model sets, equal optimal-distance strings, and equal flags.
void CheckBackends(CaseContext* ctx, Rng* rng, const Vocabulary& vocab,
                   const std::vector<int>& thread_counts) {
  Vocabulary scratch = vocab;
  const std::string psi_text = RandomFormulaText(rng, scratch, 4);
  const std::string mu_text = RandomFormulaText(rng, scratch, 4);
  const Result<Formula> psi = Parse(psi_text, &scratch);
  const Result<Formula> mu = Parse(mu_text, &scratch);
  ctx->Check(psi.ok() && mu.ok(), "backend/generator-parse",
             psi_text + " | " + mu_text);
  if (!psi.ok() || !mu.ok()) return;
  const int n = vocab.size();

  // Half the cases run weighted: the metric reshapes every aggregate
  // and sends the counting backend down its weighted encodings.
  std::vector<int64_t> metric;
  if (rng->NextBelow(2) == 1) {
    metric.resize(n);
    for (int b = 0; b < n; ++b) {
      metric[b] = static_cast<int64_t>(rng->NextBelow(5)) + 1;
    }
  }
  const std::vector<std::pair<std::string, DistanceSemantics>> semantics = {
      {"min", MinSemantics(metric)},
      {"max", MaxSemantics(metric)},
      {"sum", SumSemantics(metric)},
  };

  const auto oracle = MakeEnumeratingBackend();
  const auto counting = MakeCountingBackend();
  constexpr int64_t kMaxModels = int64_t{1} << 20;
  ThreadCountGuard guard;
  for (const auto& [name, sem] : semantics) {
    // The counting backend is serial SAT code — one run suffices.  The
    // enumerating side's argmin scan goes through the thread pool, so
    // that is the side swept over thread counts.
    const Result<DistanceChangeResult> got =
        counting->Change(sem, *psi, *mu, n, kMaxModels);
    ctx->Check(got.ok(), "backend/counting-" + name,
               psi_text + " |> " + mu_text + ": " + got.status().ToString());
    if (!got.ok()) continue;
    {
      // Same query with SAT preprocessing off: the simplification layer
      // must be semantically invisible, down to truncation flags.
      PreprocessingGuard pp_guard;
      sat::SetSatPreprocessingEnabled(false);
      const Result<DistanceChangeResult> plain =
          counting->Change(sem, *psi, *mu, n, kMaxModels);
      ctx->Check(plain.ok() && got->models == plain->models &&
                     got->optimal == plain->optimal &&
                     got->truncated == plain->truncated &&
                     got->models_omitted == plain->models_omitted,
                 "backend/" + name + "-preprocess-toggle",
                 psi_text + " |> " + mu_text);
    }
    for (int threads : thread_counts) {
      ThreadPool::Instance().SetNumThreads(threads);
      const Result<DistanceChangeResult> ref =
          oracle->Change(sem, *psi, *mu, n, kMaxModels);
      ctx->Check(ref.ok(), "backend/enum-" + name,
                 psi_text + " |> " + mu_text + ": " +
                     ref.status().ToString());
      if (!ref.ok()) continue;
      ctx->Check(got->models == ref->models && got->optimal == ref->optimal &&
                     got->truncated == ref->truncated &&
                     got->models_omitted == ref->models_omitted,
                 "backend/" + name + "@t" + std::to_string(threads),
                 psi_text + " |> " + mu_text + ": enum={" +
                     ref->models.ToString() + " d=" + ref->optimal +
                     "} counting={" + got->models.ToString() +
                     " d=" + got->optimal + "}");
    }
  }
}

/// Cross-checks the preprocessing solver tier against the DPLL baseline
/// on random 3-CNF with a random frozen subset.  Statuses must agree;
/// tier models — including values reconstructed for variables BVE
/// eliminated — must satisfy every original clause; assumption solves
/// must auto-freeze their variables (no explicit Freeze here); failed-
/// assumption cores must be subsets that are genuinely unsatisfiable
/// with the clause set; and the preprocessing-disabled replay must
/// agree on status too.
void CheckSatTier(CaseContext* ctx, Rng* rng) {
  PpFloorGuard floor_guard;
  const int n = 4 + static_cast<int>(rng->NextBelow(12));
  const int m =
      2 * n + static_cast<int>(rng->NextBelow(static_cast<uint64_t>(3 * n)));
  const Formula f = RandomKCnf(rng, n, m, 3);
  const std::vector<std::vector<sat::Lit>> clauses = KCnfClauses(f);
  const std::string tag = "n=" + std::to_string(n) + " m=" + std::to_string(m);

  auto model_satisfies = [&clauses](const sat::SatEngine& engine) {
    for (const std::vector<sat::Lit>& c : clauses) {
      bool satisfied = false;
      for (const sat::Lit l : c) {
        if (engine.ModelValue(l.var()) != l.negated()) {
          satisfied = true;
          break;
        }
      }
      if (!satisfied) return false;
    }
    return true;
  };
  auto load = [n, &clauses](sat::SatEngine* engine) {
    for (int i = 0; i < n; ++i) engine->NewVar();
    for (const std::vector<sat::Lit>& c : clauses) engine->AddClause(c);
  };

  sat::DpllSolver reference(n);
  for (const std::vector<sat::Lit>& c : clauses) reference.AddClause(c);
  const bool ref_sat = reference.Solve() == sat::SolveStatus::kSat;

  // Plain solve, with a random half of the variables frozen: the rest
  // are elimination candidates, so a SAT model exercises the
  // reconstruction stack.
  sat::SatPreprocessor tier;
  load(&tier);
  for (int v = 0; v < n; ++v) {
    if (rng->NextBelow(2) == 1) tier.Freeze(v);
  }
  const bool tier_sat = tier.Solve() == sat::SolveStatus::kSat;
  ctx->Check(tier_sat == ref_sat, "sat/tier-status", tag);
  if (tier_sat && ref_sat) {
    ctx->Check(model_satisfies(tier), "sat/tier-model", tag);
  }

  // Disabled mode is a verbatim replay: status must match as well.
  {
    PreprocessingGuard pp_guard;
    sat::SetSatPreprocessingEnabled(false);
    sat::SatPreprocessor replay;
    load(&replay);
    ctx->Check((replay.Solve() == sat::SolveStatus::kSat) == ref_sat,
               "sat/replay-status", tag);
  }

  // Assumption solve with lazy preprocessing: the assumption variables
  // are frozen automatically, nothing else is.
  std::vector<sat::Lit> assumptions;
  for (int v = 0; v < n; ++v) {
    if (rng->NextBelow(4) == 0) {
      assumptions.push_back(sat::Lit(v, /*negated=*/rng->NextBelow(2) == 1));
    }
  }
  sat::SatPreprocessor assuming;
  load(&assuming);
  const sat::SolveStatus status = assuming.SolveAssuming(assumptions);

  sat::DpllSolver assumed_ref(n);
  for (const std::vector<sat::Lit>& c : clauses) assumed_ref.AddClause(c);
  for (const sat::Lit a : assumptions) assumed_ref.AddClause({a});
  const bool assumed_sat = assumed_ref.Solve() == sat::SolveStatus::kSat;
  ctx->Check((status == sat::SolveStatus::kSat) == assumed_sat,
             "sat/assume-status",
             tag + " k=" + std::to_string(assumptions.size()));
  if (status == sat::SolveStatus::kSat) {
    bool honored = true;
    for (const sat::Lit a : assumptions) {
      if (assuming.ModelValue(a.var()) == a.negated()) honored = false;
    }
    ctx->Check(honored && model_satisfies(assuming), "sat/assume-model",
               tag + " k=" + std::to_string(assumptions.size()));
  } else {
    // The core must be a subset of the assumptions (in original
    // variable indices) that is itself inconsistent with the clauses.
    const std::vector<sat::Lit>& core = assuming.FailedAssumptions();
    bool subset = true;
    for (const sat::Lit l : core) {
      bool found = false;
      for (const sat::Lit a : assumptions) {
        if (a == l) found = true;
      }
      if (!found) subset = false;
    }
    ctx->Check(subset, "sat/assume-core-subset",
               tag + " core=" + std::to_string(core.size()));
    sat::DpllSolver core_ref(n);
    for (const std::vector<sat::Lit>& c : clauses) core_ref.AddClause(c);
    for (const sat::Lit l : core) core_ref.AddClause({l});
    ctx->Check(core_ref.Solve() == sat::SolveStatus::kUnsat,
               "sat/assume-core-unsat",
               tag + " core=" + std::to_string(core.size()));
  }
}

void CheckRepresentationTheorems(CaseContext* ctx, const ModelSet& psi,
                                 const ModelSet& mu) {
  // Theorem 3.1, concrete side: the operators must coincide with
  // Min(Mod(mu), <=psi) for their loyal assignments.
  ctx->Check(
      OverallDistPreorder(psi).MinOf(mu) == MaxFitting().Change(psi, mu),
      "representation/odist-preorder",
      "psi=" + psi.ToString() + " mu=" + mu.ToString());
  ctx->Check(SumDistPreorder(psi).MinOf(mu) == SumFitting().Change(psi, mu),
             "representation/sdist-preorder",
             "psi=" + psi.ToString() + " mu=" + mu.ToString());
  const auto dalal = MakeOperator("dalal").ValueOrDie();
  ctx->Check(DalalPreorder(psi).MinOf(mu) == dalal->Change(psi, mu),
             "representation/dalal-preorder",
             "psi=" + psi.ToString() + " mu=" + mu.ToString());
  ctx->Check(ReferenceDalalRevision(psi, mu) == dalal->Change(psi, mu),
             "representation/dalal-reference",
             "psi=" + psi.ToString() + " mu=" + mu.ToString());
}

void CheckWeighted(CaseContext* ctx, Rng* rng, int num_terms) {
  const WeightedKnowledgeBase psi = RandomWeightedBase(rng, num_terms, 0.4);
  const WeightedKnowledgeBase mu = RandomWeightedBase(rng, num_terms, 0.4);
  // Theorem 4.1, concrete side: production wdist fitting (preorder
  // materialized through the thread pool) vs the naive weighted Min.
  ctx->Check(WdistFitting().Change(psi, mu) == ReferenceWdistFitting(psi, mu),
             "weighted/wdist-fitting", "num_terms=" +
                 std::to_string(num_terms));
  // Weighted arbitration is (psi u phi) fitted to the uniform base;
  // pointwise sum commutes, so the operator must too.
  WeightedArbitration arb;
  ctx->Check(arb.Change(psi, mu) == arb.Change(mu, psi),
             "weighted/arbitration-commutes",
             "num_terms=" + std::to_string(num_terms));
}

void CheckCommutativity(CaseContext* ctx, const ModelSet& psi,
                        const ModelSet& mu) {
  for (const auto& op : AllOperators()) {
    if (op->family() != OperatorFamily::kArbitration) continue;
    ctx->Check(op->Change(psi, mu) == op->Change(mu, psi),
               "commutativity/" + op->name(),
               "psi=" + psi.ToString() + " mu=" + mu.ToString());
  }
}

void CheckStore(CaseContext* ctx, Rng* rng, const Vocabulary& vocab) {
  BeliefStore store;
  const std::vector<StoreOp> script =
      RandomStoreScript(rng, vocab, /*length=*/14, /*bad_prob=*/0.35);
  for (const StoreOp& op : script) {
    const StoreSnapshot before = StoreSnapshot::Of(store);
    const Status status = RunStoreOp(&store, op);
    if (!status.ok()) {
      // Strong error guarantee: a failed op leaves the store
      // byte-identical.
      ctx->Check(StoreSnapshot::Of(store) == before, "store/atomicity",
                 op.ToString() + " -> " + status.ToString());
    }
  }

  // Save -> Load -> replay must reproduce the store.
  const std::string saved = store.Save();
  Result<BeliefStore> loaded = BeliefStore::Load(saved);
  ctx->Check(loaded.ok(), "store/load", loaded.status().ToString());
  if (!loaded.ok()) return;
  BeliefStore copy = *std::move(loaded);

  ctx->Check(copy.Save() == saved, "store/save-fixpoint", saved);
  ctx->Check(copy.Names() == store.Names(), "store/names", saved);
  ctx->Check(copy.vocabulary().names() == store.vocabulary().names(),
             "store/vocab", saved);
  for (const std::string& name : store.Names()) {
    ctx->Check(copy.Get(name)->EquivalentTo(*store.Get(name)),
               "store/base-equivalence", name);
    ctx->Check(copy.HistoryDepth(name) == store.HistoryDepth(name),
               "store/history-depth", name);
    const auto lhs = store.History(name);
    const auto rhs = copy.History(name);
    bool journals_equal = lhs.size() == rhs.size();
    for (size_t i = 0; journals_equal && i < lhs.size(); ++i) {
      journals_equal = lhs[i].op_name == rhs[i].op_name &&
                       lhs[i].evidence_text == rhs[i].evidence_text;
    }
    ctx->Check(journals_equal, "store/journal", name);
  }

  // Replay rebuilt the undo stacks: unwinding both stores step by step
  // must stay semantically in lockstep.
  for (const std::string& name : store.Names()) {
    while (store.HistoryDepth(name) > 0) {
      ctx->Check(store.Undo(name).ok() && copy.Undo(name).ok(),
                 "store/undo-replay", name);
      ctx->Check(copy.Get(name)->EquivalentTo(*store.Get(name)),
                 "store/undo-equivalence", name);
    }
    ctx->Check(copy.HistoryDepth(name) == 0, "store/undo-depth", name);
  }
}

bool IsHardError(const ScriptStepResult& step) {
  return !step.ok && step.detail != "assertion failed";
}

bool IsAssertText(const std::string& text) {
  return text.rfind("assert ", 0) == 0;
}

/// Multiset of (text, ok) over the executed assert steps of a report —
/// the behavioral footprint `arblint --fix` must preserve.
std::vector<std::pair<std::string, bool>> AssertFootprint(
    const ScriptReport& report) {
  std::vector<std::pair<std::string, bool>> out;
  for (const ScriptStepResult& step : report.steps) {
    if (!step.skipped && IsAssertText(step.text)) {
      out.emplace_back(step.text, step.ok);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// Holds one flow verdict against the concrete run report.  Verdict
/// claims are execution-conditional, so steps are matched by
/// (line, rendered text) and an absent match is always consistent.
void CheckVerdictAgainstRun(CaseContext* ctx,
                            const lint::FlowVerdict& verdict,
                            const ScriptReport& report,
                            const std::string& text) {
  for (const ScriptStepResult& step : report.steps) {
    if (step.line != verdict.line || step.text != verdict.statement) {
      continue;
    }
    switch (verdict.kind) {
      case lint::FlowVerdict::Kind::kUnreachable:
        // The statement provably never executes; the only way its
        // rendered text appears as a step is behind a false guard,
        // and then the step belongs to the guard, not the statement.
        ctx->Check(step.skipped, "flow/unreachable-executed",
                   "line " + std::to_string(step.line) + ": " + step.text +
                       " | " + text);
        break;
      case lint::FlowVerdict::Kind::kAssertPasses:
        ctx->Check(step.skipped || step.ok, "flow/assert-passes-failed",
                   "line " + std::to_string(step.line) + ": " + step.text +
                       " | " + text);
        break;
      case lint::FlowVerdict::Kind::kAssertFails:
        ctx->Check(step.skipped || !step.ok, "flow/assert-fails-held",
                   "line " + std::to_string(step.line) + ": " + step.text +
                       " | " + text);
        break;
      case lint::FlowVerdict::Kind::kUndoEmpty:
        // An executed empty-history undo is a hard error.
        ctx->Check(step.skipped || IsHardError(step),
                   "flow/undo-empty-succeeded",
                   "line " + std::to_string(step.line) + ": " + step.text +
                       " | " + text);
        break;
      case lint::FlowVerdict::Kind::kRedundantChange:
      case lint::FlowVerdict::Kind::kDeadDefine:
        // Value-level claims; not observable in the step report.
        break;
    }
  }
}

void CheckScriptLint(CaseContext* ctx, Rng* rng, const Vocabulary& vocab) {
  const BeliefScriptCase c =
      RandomBeliefScript(rng, vocab, /*length=*/10, /*bad_prob=*/0.4);
  const std::vector<lint::Diagnostic> diags =
      lint::LintScriptText("<fuzz>", c.text);
  int errors = 0;
  for (const lint::Diagnostic& d : diags) {
    if (d.severity == lint::Severity::kError &&
        d.check_id.rfind("flow/", 0) != 0) {
      ++errors;
    }
  }
  if (c.ill_formed) {
    // The generator injected a defect arblint certainly flags.
    ctx->Check(errors > 0, "lint/injected-defect-missed", c.text);
    return;
  }
  // Flow errors are legitimate on well-formed scripts (a random
  // assertion can provably fail); every other error is a false
  // positive.
  ctx->Check(errors == 0, "lint/false-positive",
             c.text + " | " + lint::RenderText(diags));
  // The contract the linter documents: no error-severity diagnostics
  // outside flow/ => the script parses and executes without hard
  // errors (assertion failures are fine — those need the runtime).
  BeliefStore store;
  const Result<ScriptReport> report =
      lint::RunScriptTextLinted(c.text, &store);
  ctx->Check(report.ok(), "lint/parse",
             c.text + " | " + report.status().ToString());
  if (!report.ok()) return;
  bool any_hard_error = false;
  for (const ScriptStepResult& step : report->steps) {
    if (IsHardError(step)) any_hard_error = true;
    ctx->Check(!IsHardError(step), "lint/hard-error",
               "line " + std::to_string(step.line) + ": " + step.detail +
                   " | " + c.text);
  }

  // Soundness: every flow verdict (including suppressed ones) must
  // agree with what the concrete run observed.
  const lint::FlowAnalysis flow =
      lint::AnalyzeScriptFlow("<fuzz>", c.text, lint::LintOptions{}, {});
  for (const lint::FlowVerdict& verdict : flow.verdicts) {
    CheckVerdictAgainstRun(ctx, verdict, *report, c.text);
  }

  // Fix-it preservation: applying every fix-it to a script that runs
  // without hard errors must keep it parseable, hard-error free, and
  // leave the executed assertion outcomes untouched.
  if (any_hard_error) return;
  const lint::FixResult fixed =
      lint::ApplyAllFixIts(lint::InputKind::kBeliefScript, "<fuzz>", c.text);
  if (fixed.applied == 0) return;
  BeliefStore fixed_store;
  const Result<ScriptReport> fixed_report =
      lint::RunScriptTextLinted(fixed.text, &fixed_store);
  ctx->Check(fixed_report.ok(), "fix/parse",
             fixed.text + " | " + fixed_report.status().ToString());
  if (!fixed_report.ok()) return;
  for (const ScriptStepResult& step : fixed_report->steps) {
    ctx->Check(!IsHardError(step), "fix/hard-error",
               "line " + std::to_string(step.line) + ": " + step.detail +
                   " | " + fixed.text);
  }
  ctx->Check(AssertFootprint(*report) == AssertFootprint(*fixed_report),
             "fix/assert-footprint",
             c.text + " =>\n" + fixed.text);
  // The fixed text must be free of further fixable findings.
  for (const lint::Diagnostic& d :
       lint::LintScriptText("<fuzz>", fixed.text)) {
    ctx->Check(d.fixits.empty(), "fix/not-fixpoint",
               d.ToString() + " | " + fixed.text);
  }
}

}  // namespace

int ReferenceOverallDist(const ModelSet& psi, uint64_t interpretation) {
  int best = 0;
  for (uint64_t j : psi) best = std::max(best, Dist(interpretation, j));
  return best;
}

int64_t ReferenceSumDist(const ModelSet& psi, uint64_t interpretation) {
  int64_t total = 0;
  for (uint64_t j : psi) total += Dist(interpretation, j);
  return total;
}

ModelSet ReferenceFitting(const ModelSet& psi, const ModelSet& mu,
                          bool use_sum) {
  if (psi.empty() || mu.empty()) return ModelSet(mu.num_terms());
  int64_t best = std::numeric_limits<int64_t>::max();
  std::vector<uint64_t> ties;
  for (uint64_t i : mu) {
    const int64_t score = use_sum
                              ? ReferenceSumDist(psi, i)
                              : static_cast<int64_t>(
                                    ReferenceOverallDist(psi, i));
    if (score < best) {
      best = score;
      ties.clear();
    }
    if (score == best) ties.push_back(i);
  }
  return ModelSet::FromMasks(std::move(ties), mu.num_terms());
}

ModelSet ReferenceDalalRevision(const ModelSet& psi, const ModelSet& mu) {
  if (mu.empty()) return ModelSet(mu.num_terms());
  if (psi.empty()) return mu;
  int best = std::numeric_limits<int>::max();
  std::vector<uint64_t> ties;
  for (uint64_t i : mu) {
    int closest = std::numeric_limits<int>::max();
    for (uint64_t j : psi) closest = std::min(closest, Dist(i, j));
    if (closest < best) {
      best = closest;
      ties.clear();
    }
    if (closest == best) ties.push_back(i);
  }
  return ModelSet::FromMasks(std::move(ties), mu.num_terms());
}

WeightedKnowledgeBase ReferenceWdistFitting(const WeightedKnowledgeBase& psi,
                                            const WeightedKnowledgeBase& mu) {
  const int n = mu.num_terms();
  WeightedKnowledgeBase out(n);
  if (!psi.IsSatisfiable() || !mu.IsSatisfiable()) return out;
  // wdist by direct summation, in the same ascending interpretation
  // order as the production kernel so double rounding agrees exactly.
  const uint64_t space = uint64_t{1} << n;
  auto wdist = [&psi, space](uint64_t i) {
    double total = 0;
    for (uint64_t j = 0; j < space; ++j) {
      if (psi.Weight(j) > 0) {
        total += static_cast<double>(Dist(i, j)) * psi.Weight(j);
      }
    }
    return total;
  };
  double best = std::numeric_limits<double>::infinity();
  for (uint64_t i = 0; i < space; ++i) {
    if (mu.Weight(i) > 0) best = std::min(best, wdist(i));
  }
  for (uint64_t i = 0; i < space; ++i) {
    if (mu.Weight(i) > 0 && wdist(i) == best) out.SetWeight(i, mu.Weight(i));
  }
  return out;
}

std::string Divergence::ToString() const {
  return "[case " + std::to_string(case_index) + " seed " +
         std::to_string(case_seed) + "] " + check + ": " + detail;
}

std::string DifferentialReport::Summary() const {
  std::string out = std::to_string(cases_run) + " cases, " +
                    std::to_string(checks_run) + " checks, " +
                    std::to_string(divergences.size()) + " divergences";
  const size_t show = std::min<size_t>(divergences.size(), 10);
  for (size_t i = 0; i < show; ++i) {
    out += "\n  " + divergences[i].ToString();
  }
  if (divergences.size() > show) {
    out += "\n  ... and " + std::to_string(divergences.size() - show) +
           " more";
  }
  return out;
}

DifferentialReport RunDifferentialFuzz(const DifferentialOptions& options) {
  DifferentialReport report;
  uint64_t seed_state = options.seed;
  for (int c = 0; c < options.num_cases; ++c) {
    const uint64_t case_seed = SplitMix64(&seed_state);
    Rng rng(case_seed);
    CaseContext ctx(c, case_seed, &report);

    const bool large = options.large_kernel_every > 0 &&
                       c % options.large_kernel_every ==
                           options.large_kernel_every - 1;
    if (large) {
      // A candidate set wide enough to leave the argmin's inline fast
      // path: the pruned parallel scan really runs chunked here.
      const int n = options.large_terms;
      const ModelSet psi = RandomModelSet(&rng, n, 0.04);
      const ModelSet mu = RandomModelSet(&rng, n, 0.7);
      if (options.check_kernels) {
        CheckKernels(&ctx, &rng, psi, mu, options.thread_counts);
      }
      if (options.check_backends) {
        // The same wide space stresses the counting backend's CEGAR /
        // branch-and-bound paths well past the toy vocabularies.
        CheckBackends(&ctx, &rng, Vocabulary::Synthetic(n),
                      options.thread_counts);
      }
      ++report.cases_run;
      continue;
    }

    const Vocabulary vocab =
        RandomVocabulary(&rng, options.min_terms, options.max_terms);
    const int n = vocab.size();
    const ModelSet psi = RandomModelSet(&rng, n, 0.45);
    const ModelSet mu = RandomModelSet(&rng, n, 0.45);

    if (options.check_kernels) {
      CheckKernels(&ctx, &rng, psi, mu, options.thread_counts);
    }
    if (options.check_backends) {
      CheckBackends(&ctx, &rng, vocab, options.thread_counts);
    }
    if (options.check_sat) {
      CheckSatTier(&ctx, &rng);
    }
    if (options.check_representation) {
      CheckRepresentationTheorems(&ctx, psi, mu);
    }
    if (options.check_weighted) {
      CheckWeighted(&ctx, &rng, n);
    }
    if (options.check_commutativity) {
      CheckCommutativity(&ctx, psi, mu);
    }
    if (options.check_store) {
      CheckStore(&ctx, &rng, vocab);
    }
    if (options.check_script_lint) {
      CheckScriptLint(&ctx, &rng, vocab);
    }
    ++report.cases_run;
  }
  return report;
}

}  // namespace arbiter::test_support
