#ifndef ARBITER_POSTULATES_CHECKER_H_
#define ARBITER_POSTULATES_CHECKER_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "change/operator.h"
#include "postulates/postulate.h"

/// \file checker.h
/// Executable postulate checking.
///
/// Because every operator in this library is a semantic function of
/// model sets, a knowledge base over an n-term vocabulary is fully
/// described by a *set code*: a bitmask over the 2^n interpretations
/// (bit m set iff interpretation m is a model).  Quantifying "for all
/// knowledge bases" then means quantifying over all 2^(2^n) codes —
/// exhaustive for n <= 3, randomized sampling beyond.
///
/// The syntax-irrelevance postulates (R4)/(U4)/(A4) hold by
/// construction for semantic operators; the checker verifies them as
/// determinism (re-applying the operator reproduces the same result).

namespace arbiter {

/// A set code: bit m <=> interpretation with bitmask m is a member.
using SetCode = uint64_t;

/// Sentinel for unused counterexample slots.
inline constexpr SetCode kUnusedCode = ~SetCode{0};

/// A concrete violation of a postulate.
struct PostulateCounterexample {
  Postulate postulate;
  int num_terms;
  SetCode psi1 = kUnusedCode;
  SetCode psi2 = kUnusedCode;
  SetCode mu1 = kUnusedCode;
  SetCode mu2 = kUnusedCode;
  SetCode phi = kUnusedCode;

  /// Renders e.g. "A8 violated: psi1={00,01} psi2={11} mu={00,10} ...".
  std::string Describe() const;
};

/// One row of a compliance matrix.
struct ComplianceEntry {
  Postulate postulate;
  bool satisfied;
  std::optional<PostulateCounterexample> counterexample;
};

/// Checks postulates of a TheoryChangeOperator over an n-term
/// vocabulary.  Change results are memoized across checks.
class PostulateChecker {
 public:
  /// Exhaustive checking requires num_terms <= 3 (2^(2^3) = 256
  /// knowledge bases); sampled checking requires num_terms <= 6.
  PostulateChecker(std::shared_ptr<const TheoryChangeOperator> op,
                   int num_terms);

  int num_terms() const { return num_terms_; }
  const TheoryChangeOperator& op() const { return *op_; }

  /// Exhaustively checks one postulate over every knowledge-base tuple.
  /// Returns the first counterexample (in ψ-major scan order), or
  /// nullopt if the postulate holds.  The sweep over the outer ψ
  /// universe runs on the thread pool; per-worker counterexamples are
  /// merged in scan order, so the report is identical at any thread
  /// count.
  std::optional<PostulateCounterexample> CheckExhaustive(Postulate p);

  /// Randomized check: `num_samples` tuples of set codes drawn
  /// uniformly (including empty sets).  Complete only in the limit.
  std::optional<PostulateCounterexample> CheckSampled(Postulate p,
                                                      int num_samples,
                                                      uint64_t seed);

  /// Exhaustive compliance matrix over all 22 postulates.
  std::vector<ComplianceEntry> ComplianceMatrix();

  /// Mod(code) as a ModelSet, for diagnostics.
  ModelSet CodeToModelSet(SetCode code) const;

  /// Number of Change invocations so far (cache misses; concurrent
  /// sweeps may recompute a slot they raced on, which counts twice).
  uint64_t num_change_calls() const {
    return num_change_calls_.load(std::memory_order_relaxed);
  }

 private:
  SetCode Change(SetCode psi, SetCode mu);
  /// Evaluates postulate `p` on one tuple; returns false on violation.
  /// Thread-safe on the flat-cache path (num_terms <= 3).
  bool Holds(Postulate p, SetCode psi1, SetCode psi2, SetCode mu1,
             SetCode mu2, SetCode phi);

  std::shared_ptr<const TheoryChangeOperator> op_;
  int num_terms_;
  uint64_t space_;      // 2^num_terms
  uint64_t num_codes_;  // 2^space (only meaningful when space <= 32)
  /// Flat pair-indexed memo (num_terms <= 3); kUnusedCode = not cached.
  /// Atomic slots: racing workers may both compute a miss, but the
  /// operator is deterministic so every store writes the same value.
  std::unique_ptr<std::atomic<SetCode>[]> flat_cache_;
  /// Fallback memo for sampled checking on larger vocabularies
  /// (sampled checks stay serial).
  std::map<std::pair<SetCode, SetCode>, SetCode> map_cache_;
  std::atomic<uint64_t> num_change_calls_{0};
};

/// Convenience: true iff the operator satisfies every postulate in
/// `postulates` exhaustively over n terms.
bool SatisfiesAll(std::shared_ptr<const TheoryChangeOperator> op,
                  const std::vector<Postulate>& postulates, int num_terms);

}  // namespace arbiter

#endif  // ARBITER_POSTULATES_CHECKER_H_
