#include "util/string_util.h"

#include <cctype>

namespace arbiter {

std::string Join(const std::vector<std::string>& pieces,
                 const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

std::string Trim(const std::string& s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> Split(const std::string& s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentCont(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '\'';
}

}  // namespace arbiter
