#include "model/distance_semantics.h"

#include <algorithm>
#include <utility>

#include "model/distance.h"
#include "model/preorder.h"
#include "util/logging.h"

namespace arbiter {

std::string AggregatorName(DistanceAggregator aggregator) {
  switch (aggregator) {
    case DistanceAggregator::kMin:
      return "min";
    case DistanceAggregator::kMax:
      return "max";
    case DistanceAggregator::kSum:
      return "sum";
    case DistanceAggregator::kWeightedSum:
      return "weighted-sum";
  }
  return "?";
}

std::string DistanceSemantics::DebugName() const {
  return AggregatorName(aggregator) +
         (unit_metric() ? "/dalal" : "/weighted-metric");
}

DistanceSemantics MinSemantics(std::vector<int64_t> metric) {
  DistanceSemantics s;
  s.aggregator = DistanceAggregator::kMin;
  s.metric = std::move(metric);
  return s;
}

DistanceSemantics MaxSemantics(std::vector<int64_t> metric) {
  DistanceSemantics s;
  s.aggregator = DistanceAggregator::kMax;
  s.metric = std::move(metric);
  return s;
}

DistanceSemantics SumSemantics(std::vector<int64_t> metric) {
  DistanceSemantics s;
  s.aggregator = DistanceAggregator::kSum;
  s.metric = std::move(metric);
  return s;
}

DistanceSemantics WeightedSumSemantics(
    std::function<double(uint64_t)> model_weight,
    std::vector<int64_t> metric) {
  DistanceSemantics s;
  s.aggregator = DistanceAggregator::kWeightedSum;
  s.metric = std::move(metric);
  s.model_weight = std::move(model_weight);
  return s;
}

int64_t MetricDist(const DistanceSemantics& semantics, uint64_t a,
                   uint64_t b) {
  if (semantics.metric.empty()) return Dist(a, b);
  int64_t total = 0;
  ForEachBit(a ^ b, [&semantics, &total](int bit) {
    total += semantics.AtomWeight(bit);
  });
  return total;
}

int64_t MetricDiameter(const DistanceSemantics& semantics, int num_terms) {
  int64_t total = 0;
  for (int b = 0; b < num_terms; ++b) total += semantics.AtomWeight(b);
  return total;
}

int64_t MetricMinDist(const DistanceSemantics& semantics,
                      const ModelSet& psi, uint64_t interpretation) {
  ARBITER_CHECK_MSG(!psi.empty(), "MetricMinDist over empty model set");
  if (semantics.metric.empty()) return MinDist(psi, interpretation);
  int64_t best = MetricDiameter(semantics, psi.num_terms()) + 1;
  for (uint64_t j : psi) {
    best = std::min(best, MetricDist(semantics, interpretation, j));
    if (best == 0) break;
  }
  return best;
}

int64_t MetricOverallDistBounded(const DistanceSemantics& semantics,
                                 const ModelSet& psi,
                                 uint64_t interpretation, int64_t bound) {
  ARBITER_CHECK_MSG(!psi.empty(),
                    "MetricOverallDist over empty model set");
  const int64_t diameter = MetricDiameter(semantics, psi.num_terms());
  int64_t worst = -1;
  for (uint64_t j : psi) {
    worst = std::max(worst, MetricDist(semantics, interpretation, j));
    if (worst >= bound || worst == diameter) break;
  }
  return worst;
}

ModelSet SemanticArgmin(const DistanceSemantics& semantics,
                        const ModelSet& psi, const ModelSet& mu) {
  ARBITER_CHECK(psi.num_terms() == mu.num_terms());
  if (mu.empty()) return ModelSet(mu.num_terms());
  if (psi.empty()) {
    // Revision convention for min (ψ unsat ⇒ Mod(μ)); model-fitting
    // (A2) for the aggregating semantics (ψ unsat ⇒ unsat).
    return semantics.aggregator == DistanceAggregator::kMin
               ? mu
               : ModelSet(mu.num_terms());
  }
  switch (semantics.aggregator) {
    case DistanceAggregator::kMin:
      return MinByInt(mu, [&semantics, &psi](uint64_t i) {
        return MetricMinDist(semantics, psi, i);
      });
    case DistanceAggregator::kMax: {
      // The aggregate never exceeds the diameter, so clamping the
      // prune bound keeps the kernel's exact-below-bound contract.
      const int64_t diameter_bound =
          MetricDiameter(semantics, psi.num_terms()) + 1;
      if (semantics.metric.empty()) {
        return MinByIntBounded(
            mu,
            [&psi, diameter_bound](uint64_t i, int64_t bound) -> int64_t {
              const int b = static_cast<int>(
                  bound < diameter_bound ? bound : diameter_bound);
              return OverallDistBounded(psi, i, b);
            });
      }
      return MinByIntBounded(
          mu, [&semantics, &psi, diameter_bound](uint64_t i,
                                                 int64_t bound) -> int64_t {
            const int64_t b =
                bound < diameter_bound ? bound : diameter_bound;
            return MetricOverallDistBounded(semantics, psi, i, b);
          });
    }
    case DistanceAggregator::kSum: {
      const SumDistOracle sdist(psi, semantics.metric);
      return MinByIntBounded(
          mu, [&sdist](uint64_t i, int64_t /*bound*/) { return sdist(i); });
    }
    case DistanceAggregator::kWeightedSum: {
      ARBITER_CHECK_MSG(semantics.model_weight != nullptr,
                        "kWeightedSum requires a model_weight function");
      return MinBy(mu, [&semantics, &psi](uint64_t i) {
        double total = 0.0;
        for (uint64_t j : psi) {
          total += static_cast<double>(MetricDist(semantics, i, j)) *
                   semantics.model_weight(j);
        }
        return total;
      });
    }
  }
  return ModelSet(mu.num_terms());
}

}  // namespace arbiter
