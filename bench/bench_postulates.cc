// Postulate-checker benchmarks: cost of exhaustive and sampled
// verification — the machinery behind experiments E4-E7.

#include <benchmark/benchmark.h>

#include "change/registry.h"
#include "postulates/checker.h"

namespace {

using namespace arbiter;

void BM_CheckTwoArgPostulate(benchmark::State& state) {
  // R1 quantifies over (psi, mu) pairs: 2^(2^n) squared tuples.
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    PostulateChecker checker(MakeOperator("dalal").ValueOrDie(), n);
    benchmark::DoNotOptimize(checker.CheckExhaustive(Postulate::kR1));
  }
}
BENCHMARK(BM_CheckTwoArgPostulate)->Arg(2)->Arg(3);

void BM_CheckThreeArgPostulate(benchmark::State& state) {
  // A8 quantifies over (psi1, psi2, mu) triples: the expensive shape.
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    PostulateChecker checker(MakeOperator("revesz-max").ValueOrDie(), n);
    benchmark::DoNotOptimize(checker.CheckExhaustive(Postulate::kA7));
  }
}
BENCHMARK(BM_CheckThreeArgPostulate)->Arg(2)->Arg(3);

void BM_FullComplianceMatrix(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    PostulateChecker checker(MakeOperator("dalal").ValueOrDie(), n);
    benchmark::DoNotOptimize(checker.ComplianceMatrix());
  }
}
BENCHMARK(BM_FullComplianceMatrix)->Arg(2)->Unit(benchmark::kMillisecond);

void BM_SampledCheck(benchmark::State& state) {
  // Sampling at n = 4 (beyond the exhaustive limit).
  const int samples = static_cast<int>(state.range(0));
  PostulateChecker checker(MakeOperator("dalal").ValueOrDie(), 4);
  uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        checker.CheckSampled(Postulate::kR5, samples, seed++));
  }
  state.SetItemsProcessed(state.iterations() * samples);
}
BENCHMARK(BM_SampledCheck)->Arg(100)->Arg(1000);

void BM_MemoizedChangeLookup(benchmark::State& state) {
  // After the first pass the checker's flat cache turns Change into an
  // array load; measure a repeated postulate check.
  PostulateChecker checker(MakeOperator("dalal").ValueOrDie(), 3);
  checker.CheckExhaustive(Postulate::kR1);  // warm the cache
  for (auto _ : state) {
    benchmark::DoNotOptimize(checker.CheckExhaustive(Postulate::kR1));
  }
}
BENCHMARK(BM_MemoizedChangeLookup);

}  // namespace
