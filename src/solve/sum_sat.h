#ifndef ARBITER_SOLVE_SUM_SAT_H_
#define ARBITER_SOLVE_SUM_SAT_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "logic/formula.h"
#include "sat/cnf.h"
#include "sat/count.h"

/// \file sum_sat.h
/// Counting-based Σ-fitting: the scalable implementation of the
/// paper's sdist (and metric-weighted wdist-with-unit-model-weights)
/// argmin, with no enumeration of Mod(ψ) or Mod(μ).
///
/// The key identity (see sat/count.h): with C = |Mod(ψ)| and o_b the
/// per-column true-counts of Mod(ψ),
///
///   sdist(ψ, I) = Σ_b m_b·o_b + Σ_b I_b · m_b·(C − 2·o_b),
///
/// a *linear* pseudo-Boolean objective over I.  So Σ-fitting is:
///  1. count ψ's models and columns once (#SAT with component
///     caching) — O(1) per candidate afterwards;
///  2. minimize the linear objective over Mod(μ) with a DPLL
///     branch-and-bound that collects *all* optima (ties kept), which
///     is what makes the result bit-identical to the enumerating
///     oracle.
///
/// Vocabulary bound: models are materialized as uint64 masks, so
/// num_terms <= 63 for model extraction; the counting itself is exact
/// to ~120 atoms (unsigned __int128).

namespace arbiter::solve {

/// Signed 128-bit integers carry the objective: column counts reach
/// 2^n for n up to ~120 atoms, past what int64 holds.
using Int128 = __int128;

/// Decimal rendering of an Int128 (for reports and goldens).
std::string Int128ToString(Int128 value);

/// Minimizes  Σ_{v < num_inputs, v true} weights[v]  over the models
/// of `cnf`, collecting every input-projection that attains the
/// minimum.  `weights` has one entry per input (may be negative —
/// that's how the column identity arrives).  When num_inputs <= 63,
/// all optimal projections are collected up to `max_models`
/// (`truncated` beyond that); for larger vocabularies only the
/// optimal value is computed and `models` stays empty.
struct LinearMinResult {
  bool sat = false;
  /// False if the decision budget ran out (treat as failure).
  bool completed = true;
  /// The minimal objective value (valid when sat).
  Int128 optimal = 0;
  /// All optimal models projected onto the inputs (sorted, deduped);
  /// only populated when num_inputs <= 63.
  std::vector<uint64_t> models;
  bool truncated = false;
  uint64_t decisions = 0;
};

LinearMinResult MinimizeLinearOverCnf(const sat::CnfFormula& cnf,
                                      int num_inputs,
                                      const std::vector<Int128>& weights,
                                      int64_t max_models,
                                      uint64_t max_decisions = 1ull << 24);

/// Memo for ψ's column counts across repeated fittings against the
/// same belief base (the expensive half of Σ-fitting is the #SAT pass
/// over ψ; the μ-side optimization is different every call).  Keyed on
/// structural formula equality plus the vocabulary size.
class ColumnCountCache {
 public:
  /// Returns the cached counts for (psi, num_terms), or nullptr.
  const sat::ColumnCountResult* Find(const Formula& psi, int num_terms);

  void Insert(const Formula& psi, int num_terms,
              sat::ColumnCountResult counts);

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

 private:
  struct Entry {
    Formula psi;
    int num_terms;
    sat::ColumnCountResult counts;
  };
  /// Structural hash → entries (chained to survive collisions).
  std::unordered_map<uint64_t, std::vector<Entry>> map_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

/// Outcome of a counting-backed Σ-fitting run.
struct SumFittingResult {
  bool psi_unsat = false;
  bool mu_unsat = false;
  /// False if a counting/optimization budget was exhausted.
  bool completed = true;
  /// sdist value at the argmin, as a decimal string (the aggregate can
  /// exceed 64 bits: |Mod(ψ)| alone may be 2^60).  Empty when the
  /// result is empty.
  std::string optimal_decimal;
  /// All models of ψ ▷_Σ μ (sorted), capped at max_models.
  std::vector<uint64_t> models;
  bool truncated = false;
  /// #SAT statistics for benchmarks.
  uint64_t count_components = 0;
  uint64_t count_cache_hits = 0;
};

/// Computes Σ-fitting ψ ▷ μ = argmin_{x ⊨ μ} sdist(ψ, x) over an
/// n-term vocabulary (n <= 120; models are only collected for n <= 63,
/// past that only the optimum is reported) by column counting + linear
/// branch-and-bound.  Edge conventions match SumFitting: ψ or μ
/// unsatisfiable ⇒ empty result.  A non-empty `metric` weights the
/// per-atom distances (sdist becomes the metric-weighted sum).  An
/// optional `cache` memoizes ψ's column counts across calls.
SumFittingResult SatSumFitting(const Formula& psi, const Formula& mu,
                               int num_terms, int64_t max_models = 1024,
                               const std::vector<int64_t>& metric = {},
                               ColumnCountCache* cache = nullptr);

}  // namespace arbiter::solve

#endif  // ARBITER_SOLVE_SUM_SAT_H_
