#ifndef ARBITER_UTIL_SYNC_H_
#define ARBITER_UTIL_SYNC_H_

#include <condition_variable>
#include <mutex>
#include <shared_mutex>

#include "util/thread_annotations.h"

/// \file sync.h
/// The repository's only synchronization entry point: capability-
/// annotated wrappers over the standard primitives, plus a debug-build
/// lock-order registry.
///
/// Raw `std::mutex` / `std::lock_guard` / `std::condition_variable`
/// are banned outside this header (tools/check_sync_usage.sh enforces
/// it in CI) for two reasons:
///
///  1. **Static proof.**  `Mutex`/`SharedMutex` are Clang
///     `CAPABILITY` types and the guards are `SCOPED_CAPABILITY`
///     types, so a clang build with `-Werror=thread-safety` proves
///     every `GUARDED_BY` field is only touched under its mutex and
///     every `ACQUIRED_BEFORE` edge is respected — at every compile,
///     on every path, not just the interleavings a TSan run explores.
///
///  2. **Runtime order checking.**  In debug builds (or with
///     `-DARBITER_LOCK_RANK=ON`) every Mutex carries a `LockRank` and
///     each thread records its held locks; acquiring a lock whose rank
///     is not strictly greater than everything already held aborts
///     with both acquisition stacks.  Rank order is a total order, so
///     a clean run can contain no lock cycle — this is a deadlock
///     detector that fires on the *potential*, not the deadlock.
///     Release builds compile the registry out entirely: the
///     static_asserts at the bottom of this header pin
///     `sizeof(Mutex) == sizeof(std::mutex)`.
///
/// The global lock order (see docs/CONCURRENCY.md for the map of
/// which field each mutex guards):
///
///   kConnections < kStores < kStoreWriter < kStorePtr
///                < kResultCache < kPoolQueue < kPoolJob < kLeaf
///
/// `kLeaf` is for mutexes that are never held across another
/// acquisition (two leaves can therefore never nest).

// ARBITER_LOCK_RANK: 1 = runtime lock-order checking on.  Defaults to
// on exactly when assertions are on (debug builds); override with
// -DARBITER_LOCK_RANK={0,1} (the CMake ARBITER_LOCK_RANK option).
#ifndef ARBITER_LOCK_RANK
#ifdef NDEBUG
#define ARBITER_LOCK_RANK 0
#else
#define ARBITER_LOCK_RANK 1
#endif
#endif

namespace arbiter {

/// Global acquisition order: a thread may only acquire a mutex whose
/// rank is strictly greater than every rank it already holds.
enum class LockRank : int {
  kConnections = 10,  ///< UnixSocketServer::conns_mu_
  kStores = 20,       ///< BeliefServer::stores_mu_
  kStoreWriter = 30,  ///< BeliefServer::Hosted::writer_mu
  kStorePtr = 40,     ///< BeliefServer::Hosted::ptr_mu
  kResultCache = 50,  ///< OperatorResultCache::mu_
  kPoolQueue = 60,    ///< ThreadPool::queue_mu_
  kPoolJob = 70,      ///< ThreadPool::Job::mu
  kLeaf = 1000,       ///< never held across another acquisition
};

/// True iff this build records and enforces lock ranks at runtime.
inline constexpr bool kLockRankEnabled = ARBITER_LOCK_RANK != 0;

namespace sync_internal {
#if ARBITER_LOCK_RANK
/// Checks `rank` against the calling thread's held set (unless the
/// acquisition was a try-lock, which cannot block and so cannot
/// deadlock) and records the acquisition with its capture stack.
/// Aborts on a violation, printing the held stack, the conflicting
/// lock's acquisition backtrace, and the current backtrace.
void NoteAcquire(const void* mu, int rank, const char* name, bool try_lock);
/// Removes the most recent record for `mu`; aborts if none exists.
void NoteRelease(const void* mu);
/// Number of locks the calling thread currently records (tests).
int HeldLockCountForTesting();
#endif
}  // namespace sync_internal

/// Exclusive mutex.  `rank`/`name` feed the debug lock-order registry;
/// in release builds both are discarded and this is exactly a
/// std::mutex.
class CAPABILITY("mutex") Mutex {
 public:
  explicit Mutex(LockRank rank = LockRank::kLeaf, const char* name = "mutex")
#if ARBITER_LOCK_RANK
      : rank_(static_cast<int>(rank)), name_(name) {
  }
#else
  {
    (void)rank;
    (void)name;
  }
#endif

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() {
#if ARBITER_LOCK_RANK
    // Check before blocking: a rank violation is reported even when
    // (especially when) the lock would have deadlocked.
    sync_internal::NoteAcquire(this, rank_, name_, /*try_lock=*/false);
#endif
    mu_.lock();
  }

  void Unlock() RELEASE() {
    mu_.unlock();
#if ARBITER_LOCK_RANK
    sync_internal::NoteRelease(this);
#endif
  }

  /// Non-blocking acquisition; exempt from rank checking (a try-lock
  /// out of order is a legal deadlock-avoidance idiom) but still
  /// recorded so locks acquired *under* it are checked.
  bool TryLock() TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
#if ARBITER_LOCK_RANK
    sync_internal::NoteAcquire(this, rank_, name_, /*try_lock=*/true);
#endif
    return true;
  }

 private:
  friend class CondVar;

  std::mutex mu_;
#if ARBITER_LOCK_RANK
  int rank_;
  const char* name_;
#endif
};

/// Reader/writer mutex with the same rank discipline (shared and
/// exclusive acquisitions obey the same order).
class CAPABILITY("shared_mutex") SharedMutex {
 public:
  explicit SharedMutex(LockRank rank = LockRank::kLeaf,
                       const char* name = "shared_mutex")
#if ARBITER_LOCK_RANK
      : rank_(static_cast<int>(rank)), name_(name) {
  }
#else
  {
    (void)rank;
    (void)name;
  }
#endif

  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() ACQUIRE() {
#if ARBITER_LOCK_RANK
    sync_internal::NoteAcquire(this, rank_, name_, /*try_lock=*/false);
#endif
    mu_.lock();
  }

  void Unlock() RELEASE() {
    mu_.unlock();
#if ARBITER_LOCK_RANK
    sync_internal::NoteRelease(this);
#endif
  }

  void LockShared() ACQUIRE_SHARED() {
#if ARBITER_LOCK_RANK
    sync_internal::NoteAcquire(this, rank_, name_, /*try_lock=*/false);
#endif
    mu_.lock_shared();
  }

  void UnlockShared() RELEASE_SHARED() {
    mu_.unlock_shared();
#if ARBITER_LOCK_RANK
    sync_internal::NoteRelease(this);
#endif
  }

 private:
  std::shared_mutex mu_;
#if ARBITER_LOCK_RANK
  int rank_;
  const char* name_;
#endif
};

/// RAII exclusive lock (the only way library code should hold a
/// Mutex — bare Lock/Unlock pairs do not survive early returns).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// RAII shared (reader) lock on a SharedMutex.
class SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex* mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_->LockShared();
  }
  ~ReaderMutexLock() RELEASE() { mu_->UnlockShared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// RAII exclusive (writer) lock on a SharedMutex.
class SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex* mu) ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~WriterMutexLock() RELEASE() { mu_->Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex* const mu_;
};

/// Condition variable bound to Mutex.  Wait REQUIRES the mutex, which
/// lets the analysis verify the standard pattern:
///
///   MutexLock lock(&mu_);
///   while (!predicate_guarded_by_mu) cv_.Wait(mu_);
///
/// The wait releases and reacquires the underlying std::mutex; the
/// LockRank record for `mu` intentionally stays in place across the
/// wait — the thread is blocked, so no other acquisition can be
/// checked against a stale held set, and the reacquired state matches
/// the record again on return.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // ownership stays with the caller's guard
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

#if !ARBITER_LOCK_RANK
// Zero-cost pin: with the registry compiled out, the wrappers must be
// layout-identical to the primitives they wrap.  Fires on every
// release compile (NDEBUG) of any TU including this header.
static_assert(sizeof(Mutex) == sizeof(std::mutex),
              "release Mutex must carry no LockRank state");
static_assert(sizeof(SharedMutex) == sizeof(std::shared_mutex),
              "release SharedMutex must carry no LockRank state");
#endif

}  // namespace arbiter

#endif  // ARBITER_UTIL_SYNC_H_
