#ifndef ARBITER_SAT_SOLVER_H_
#define ARBITER_SAT_SOLVER_H_

#include <cstdint>
#include <vector>

#include "proof/proof_log.h"
#include "sat/clause_arena.h"
#include "sat/engine.h"
#include "sat/types.h"

/// \file solver.h
/// A conflict-driven clause-learning (CDCL) SAT solver built from
/// scratch in the MiniSat/Glucose tradition:
///
///  * arena-allocated clauses (ClauseRef offsets into one flat buffer)
///    with a compacting garbage collector,
///  * two-watched-literal propagation with blocker literals and a
///    dedicated binary-clause watch tier,
///  * first-UIP conflict analysis with recursive clause minimization,
///  * exponential VSIDS variable activities with a binary heap,
///  * phase saving,
///  * Glucose-style dynamic restarts — fire when the recent-50 learnt
///    LBD average drifts above the lifetime average, blocked when the
///    trail is unusually deep (near-model heuristic) — under a Luby
///    budget cap,
///  * LBD-aware learnt-clause database reduction (glue clauses with
///    LBD <= 2 are never removed; eviction order is worst (LBD,
///    activity) first),
///  * incremental solving under assumptions with a learnt-DB limit
///    that persists across Solve calls (used by AllSAT and the CEGAR
///    arbitration loop in src/solve/).

namespace arbiter::sat {

/// Aggregate solver statistics (monotone over the solver's lifetime).
struct SolverStats {
  uint64_t decisions = 0;
  uint64_t propagations = 0;
  uint64_t conflicts = 0;
  uint64_t restarts = 0;
  uint64_t learnt_clauses = 0;
  uint64_t learnt_literals = 0;
  uint64_t minimized_literals = 0;
  uint64_t reduce_db_runs = 0;
  /// Sum of learn-time LBDs (lbd_sum / learnt_clauses = mean glue).
  uint64_t lbd_sum = 0;
  /// Learnt clauses born with LBD <= 2 (protected from ReduceDB).
  uint64_t glue_learnts = 0;
  /// LBD improvements discovered when a learnt clause reappeared as a
  /// reason during conflict analysis.
  uint64_t lbd_updates = 0;
  /// Dynamic restarts suppressed because the trail was unusually deep
  /// (the solver looked close to a model).
  uint64_t blocked_restarts = 0;
  /// Arena compactions and the words they reclaimed.
  uint64_t gc_runs = 0;
  uint64_t gc_words_reclaimed = 0;
};

/// CDCL SAT solver.  Not thread-safe.  Typical use:
///
///   Solver s;
///   Var a = s.NewVar(), b = s.NewVar();
///   s.AddClause({Lit::Pos(a), Lit::Neg(b)});
///   if (s.Solve() == SolveStatus::kSat) { bool va = s.ModelValue(a); }
class Solver : public SatEngine {
 public:
  Solver();
  ~Solver() override;

  Solver(const Solver&) = delete;
  Solver& operator=(const Solver&) = delete;

  /// Creates a fresh variable and returns it.
  Var NewVar() override;

  /// Number of variables created so far.
  int NumVars() const override { return static_cast<int>(assigns_.size()); }

  /// Adds a clause (disjunction of literals).  Returns false if the
  /// solver became trivially unsatisfiable (empty clause, or conflict
  /// at decision level 0).  Literals over unseen variables are invalid.
  bool AddClause(std::vector<Lit> lits) override;

  /// Top-level (decision level 0) database simplification: removes
  /// clauses satisfied by root assignments and strips falsified
  /// literals.  Called automatically at the start of each Solve; safe
  /// to call manually between solves.
  void SimplifyDb();

  /// Solves the current formula.  Returns kUnsat/kSat, or kUnknown if
  /// the conflict budget (if any) is exhausted.
  SolveStatus Solve() override;

  /// Solves under the given assumptions (temporary unit literals).
  SolveStatus SolveAssuming(const std::vector<Lit>& assumptions) override;

  /// After SolveAssuming returned kUnsat: a subset of the assumptions
  /// that is already inconsistent with the clause database (the
  /// "unsat core" over assumptions; empty if the database is
  /// unsatisfiable on its own).
  const std::vector<Lit>& FailedAssumptions() const override {
    return failed_assumptions_;
  }

  /// Value of v in the most recent satisfying model.  Only valid after
  /// Solve() returned kSat.
  bool ModelValue(Var v) const override {
    ARBITER_DCHECK(v >= 0 && v < static_cast<int>(model_.size()));
    return model_[v] == LBool::kTrue;
  }

  /// True iff the solver has derived top-level unsatisfiability.
  bool InConflict() const override { return !ok_; }

  /// Sets a conflict budget for subsequent Solve calls; < 0 disables.
  void SetConflictBudget(int64_t conflicts) { conflict_budget_ = conflicts; }

  const SolverStats& stats() const { return stats_; }

  /// Number of problem (non-learnt) clauses currently held.
  int NumProblemClauses() const { return num_problem_clauses_; }
  /// Number of learnt clauses currently held.
  int NumLearntClauses() const { return num_learnt_clauses_; }

  /// The current learnt-DB size limit.  Initialized lazily on the
  /// first Search, then grown geometrically at each ReduceDB — and
  /// kept across Solve/SolveAssuming calls, so incremental users
  /// (CEGAR's MaxDistOracle) don't thrash ReduceDB by restarting the
  /// growth from scratch every query.  < 0 means not yet initialized.
  double MaxLearnts() const { return max_learnts_; }

  /// Installs a DRAT proof sink (nullptr disables).  The solver then
  /// reports every derived clause (root units, learnt clauses,
  /// simplified forms, the empty clause on refutation) and every
  /// retired clause (ReduceDB eviction, root-satisfied removal).
  /// Deletions already logged are not re-reported at arena GC time —
  /// GC only compacts clauses RemoveClause marked.  With no sink
  /// installed every site is a single untaken branch.
  void SetProofLog(proof::ProofLog* log) { proof_ = log; }
  proof::ProofLog* proof_log() const { return proof_; }

 private:
  struct Watcher {
    ClauseRef cref;
    Lit blocker;
  };
  /// Binary clauses get their own watch tier: the watcher itself holds
  /// the other literal, so propagation over binaries never touches the
  /// arena (the cref is only needed when the clause becomes a reason
  /// or a conflict).
  struct BinWatcher {
    Lit other;
    ClauseRef cref;
  };

  // --- assignment & trail ---
  LBool Value(Var v) const { return assigns_[v]; }
  LBool Value(Lit l) const { return LitValue(assigns_[l.var()], l.negated()); }
  // Branchless literal value for the propagation hot loop: XOR with the
  // sign flips kFalse <-> kTrue and maps kUndef to 2 or 3.  Returns
  // 0 = false, 1 = true, >= 2 = unassigned.
  int ValueCode(Lit l) const {
    return static_cast<int>(assigns_[l.var()]) ^
           static_cast<int>(l.negated());
  }
  int DecisionLevel() const { return static_cast<int>(trail_lim_.size()); }
  void UncheckedEnqueue(Lit l, ClauseRef reason);
  ClauseRef Propagate();
  void CancelUntil(int level);

  // --- conflict analysis ---
  void Analyze(ClauseRef conflict, std::vector<Lit>* out_learnt,
               int* out_btlevel);
  bool LitRedundant(Lit l, uint32_t abstract_levels);
  void AnalyzeFinal(Lit p, std::vector<Lit>* out_conflict);
  /// Distinct decision levels among the clause's literals.
  uint32_t ComputeLbd(ClauseRef c);
  uint32_t ComputeLbd(const std::vector<Lit>& lits);

  // --- decision heuristics ---
  void VarBumpActivity(Var v);
  void VarDecayActivity();
  void ClauseBumpActivity(ClauseRef c);
  void ClauseDecayActivity();
  Lit PickBranchLit();

  // --- order heap (max-heap on activity) ---
  void HeapInsert(Var v);
  void HeapUpdate(Var v);
  Var HeapRemoveMax();
  bool HeapEmpty() const { return heap_.empty(); }
  void HeapPercolateUp(int i);
  void HeapPercolateDown(int i);
  bool HeapContains(Var v) const { return heap_index_[v] >= 0; }

  // --- clause management ---
  ClauseRef AllocClause(const std::vector<Lit>& lits, bool learnt);
  void AttachClause(ClauseRef c);
  void DetachClause(ClauseRef c);
  void RemoveClause(ClauseRef c);
  bool Locked(ClauseRef c) const;
  void ReduceDB();
  bool Satisfied(ClauseRef c) const;

  // --- garbage collection ---
  void MaybeGarbageCollect();
  void GarbageCollect();
  void RelocAll(ClauseArena* to);

  // --- search ---
  SolveStatus Search(int64_t max_conflicts);
  static double LubySequence(double y, int i);

  bool ok_ = true;

  ClauseArena arena_;
  std::vector<ClauseRef> clauses_;  // problem clauses
  std::vector<ClauseRef> learnts_;  // learnt clauses
  int num_problem_clauses_ = 0;
  int num_learnt_clauses_ = 0;

  std::vector<std::vector<Watcher>> watches_;        // indexed by lit code
  std::vector<std::vector<BinWatcher>> bin_watches_;  // indexed by lit code
  std::vector<LBool> assigns_;    // indexed by var
  std::vector<bool> polarity_;    // saved phase, per var
  std::vector<ClauseRef> reason_;  // per var
  std::vector<int> level_;        // per var
  std::vector<Lit> trail_;
  std::vector<int> trail_lim_;
  int qhead_ = 0;

  std::vector<double> activity_;  // per var
  double var_inc_ = 1.0;
  double var_decay_ = 0.95;
  double clause_inc_ = 1.0;
  double clause_decay_ = 0.999;

  std::vector<Var> heap_;        // binary max-heap of vars
  std::vector<int> heap_index_;  // var -> heap position or -1

  std::vector<Lit> assumptions_;
  std::vector<Lit> failed_assumptions_;
  std::vector<LBool> model_;

  // Scratch for Analyze.
  std::vector<bool> seen_;
  std::vector<Lit> analyze_stack_;
  std::vector<Lit> analyze_toclear_;
  // Scratch for ComputeLbd: per-level stamp.
  std::vector<uint64_t> lbd_stamp_;
  uint64_t lbd_stamp_counter_ = 0;

  // --- Glucose-style dynamic restarts ---
  // Ring of the most recent learnt-clause LBDs.  A restart fires when
  // the ring is full and its average, scaled by kRestartMargin, still
  // exceeds the lifetime average: recent learning is getting worse, so
  // explore elsewhere.  A conflict whose trail is deeper than
  // kTrailBlockFactor times the mean conflict-time trail instead
  // empties the ring, postponing the restart — the solver looks close
  // to a model and aggressive restarts would throw that progress away.
  static constexpr int kLbdRingSize = 50;
  static constexpr double kRestartMargin = 0.8;
  static constexpr double kTrailBlockFactor = 1.4;
  static constexpr uint64_t kTrailBlockWarmup = 100;
  uint32_t lbd_ring_[kLbdRingSize] = {};
  int lbd_ring_size_ = 0;
  int lbd_ring_pos_ = 0;
  uint64_t lbd_ring_sum_ = 0;
  uint64_t trail_size_sum_ = 0;  // over all conflicts, for the mean

  proof::ProofLog* proof_ = nullptr;

  int64_t conflict_budget_ = -1;
  double max_learnts_factor_ = 1.0 / 3.0;
  double learnt_growth_ = 1.02;
  double max_learnts_ = -1.0;

  SolverStats stats_;
};

}  // namespace arbiter::sat

#endif  // ARBITER_SAT_SOLVER_H_
