// Lint-throughput microbenchmark (ISSUE: arblint v2 dataflow layer).
// Emits machine-readable JSON to BENCH_lint.json (or argv[1]).
//
// Arms, per synthetic N-statement belief script:
//   * single_pass — LintScriptText with the dataflow layer disabled:
//                   the per-statement checks only, the arblint v1 cost.
//   * dataflow    — the full pipeline: CFG construction, the worklist
//                   fixpoint over the satisfiability/fact/depth/count
//                   domain, and the flow/* check family.
//
// The synthetic scripts cycle defines, changes, guarded statements,
// and asserts over a fixed 4-atom vocabulary, so the semantic oracle
// works over a 16-interpretation space and the numbers measure the
// analysis machinery rather than SAT blowup.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "lint/lint.h"

namespace {

using namespace arbiter;
using Clock = std::chrono::steady_clock;

std::string SyntheticScript(int num_statements) {
  // A four-statement motif per base; bases recycle every 8 motifs so
  // dead-define and redundancy logic sees joins and redefinitions.
  static const char* kFormulas[] = {"a & b", "b | c", "c -> d", "a ^ d"};
  std::string text;
  for (int i = 0; i < num_statements; ++i) {
    const std::string base = "b" + std::to_string((i / 4) % 8);
    const char* f = kFormulas[i % 4];
    switch (i % 4) {
      case 0:
        text += "define " + base + " := " + f + "\n";
        break;
      case 1:
        text += "change " + base + " by dalal with " + f + "\n";
        break;
      case 2:
        text += "if " + base + " entails " + f + " then change " + base +
                " by revesz-max with a | b\n";
        break;
      default:
        text += "assert " + base + " consistent-with " + f + "\n";
        break;
    }
  }
  return text;
}

struct ArmResult {
  std::string arm;
  double ms_per_lint = 0;
  double statements_per_sec = 0;
  int reps = 0;
  size_t diagnostics = 0;
};

template <typename Fn>
ArmResult TimeArm(const std::string& name, int num_statements,
                  const Fn& fn) {
  constexpr double kTargetSec = 0.4;
  constexpr int kMinReps = 3;
  auto t0 = Clock::now();
  size_t diags = fn();
  double once = std::chrono::duration<double>(Clock::now() - t0).count();
  int reps = std::max(kMinReps, static_cast<int>(kTargetSec / (once + 1e-9)));
  reps = std::min(reps, 2000);
  t0 = Clock::now();
  for (int r = 0; r < reps; ++r) fn();
  double total = std::chrono::duration<double>(Clock::now() - t0).count();
  const double per_call = total / reps;
  return {name, per_call * 1e3, num_statements / per_call, reps, diags};
}

struct Workload {
  int num_statements = 0;
  std::vector<ArmResult> arms;
};

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_lint.json";

  std::vector<Workload> workloads;
  for (int n : {64, 256, 1024}) {
    const std::string text = SyntheticScript(n);
    Workload w;
    w.num_statements = n;

    lint::LintOptions off;
    off.enable_dataflow = false;
    w.arms.push_back(TimeArm("single_pass", n, [&] {
      return lint::LintScriptText("bench.belief", text, off).size();
    }));

    lint::LintOptions on;
    w.arms.push_back(TimeArm("dataflow", n, [&] {
      return lint::LintScriptText("bench.belief", text, on).size();
    }));

    std::printf("n=%-5d\n", n);
    for (const ArmResult& a : w.arms) {
      std::printf("  %-12s %10.3f ms/lint  %12.0f stmts/s  "
                  "(%zu diagnostics, reps=%d)\n",
                  a.arm.c_str(), a.ms_per_lint, a.statements_per_sec,
                  a.diagnostics, a.reps);
    }
    workloads.push_back(std::move(w));
  }

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "bench_lint: cannot open %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f, "{\n  \"benchmark\": \"bench_lint\",\n  \"workloads\": [\n");
  for (size_t i = 0; i < workloads.size(); ++i) {
    const Workload& w = workloads[i];
    std::fprintf(f, "    {\"num_statements\": %d, \"arms\": [\n",
                 w.num_statements);
    for (size_t j = 0; j < w.arms.size(); ++j) {
      const ArmResult& a = w.arms[j];
      std::fprintf(f,
                   "      {\"arm\": \"%s\", \"ms_per_lint\": %.3f, "
                   "\"statements_per_sec\": %.0f, \"diagnostics\": %zu, "
                   "\"reps\": %d}%s\n",
                   a.arm.c_str(), a.ms_per_lint, a.statements_per_sec,
                   a.diagnostics, a.reps, j + 1 < w.arms.size() ? "," : "");
    }
    std::fprintf(f, "    ]}%s\n", i + 1 < workloads.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
