#ifndef ARBITER_PROOF_CHECKER_H_
#define ARBITER_PROOF_CHECKER_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "proof/proof_log.h"
#include "sat/types.h"

/// \file checker.h
/// An independent DRAT proof checker in the drat-trim tradition.  It
/// shares *nothing* with the CDCL solver beyond the literal encoding
/// (sat/types.h): its own clause storage, its own two-watched-literal
/// propagation, its own trail.  That separation is the point — the
/// checker is the trust base, so a solver bug cannot also be a checker
/// bug (docs/PROOFS.md discusses the trust argument).
///
/// Checking modes:
///  * **Backward** (default): a forward pass replays the proof into
///    the clause database up to the first empty-clause addition, then
///    a backward pass undoes each step and verifies only the additions
///    that were *marked* as antecedents of some later verified
///    conflict.  Unmarked lemmas are skipped (they cost nothing), and
///    the marked formula clauses form an unsat core, reported in
///    `DratCheckResult::core`.
///  * **Forward**: every addition is verified, in order, before it
///    enters the database.
///
/// Additions are verified as RUP (reverse unit propagation: assume the
/// negation, propagate, require a conflict) with a RAT fallback on the
/// step's first literal (resolution asymmetric tautology — every
/// resolvent against the pivot's negation must be RUP).  Deletions are
/// matched set-wise against an active database clause; unmatched
/// deletions are counted and skipped by default (they only ever leave
/// the database stronger, which cannot turn a bogus proof valid), or
/// rejected under `strict_deletions`.

namespace arbiter::proof {

struct DratCheckOptions {
  /// Backward checking with lemma marking (see file comment); when
  /// false every addition is verified forward.
  bool backward = true;
  /// Reject a deletion that matches no active database clause.
  bool strict_deletions = false;
};

struct DratCheckStats {
  size_t steps = 0;             ///< proof steps processed
  size_t additions = 0;
  size_t deletions = 0;
  size_t verified = 0;          ///< additions actually RUP/RAT-checked
  size_t skipped = 0;           ///< unmarked additions (backward mode)
  size_t rat_checks = 0;        ///< additions that needed the RAT fallback
  size_t unmatched_deletions = 0;
  uint64_t propagations = 0;
};

struct DratCheckResult {
  bool ok = false;
  /// Empty when ok; otherwise what failed and at which proof step.
  std::string error;
  DratCheckStats stats;
  /// Indices (in AddFormulaClause order) of the formula clauses marked
  /// as antecedents of the refutation — an unsat core.  Backward mode
  /// only; forward mode reports every formula clause used in some
  /// verified conflict.
  std::vector<size_t> core;
};

class DratChecker {
 public:
  /// Adds one formula (input CNF) clause, in original literals.
  void AddFormulaClause(const std::vector<sat::Lit>& lits);

  size_t NumFormulaClauses() const { return formula_.size(); }

  /// Checks that `proof` is a valid DRAT refutation of the formula.
  /// Reusable: each call rebuilds the database from the formula.
  DratCheckResult Check(const std::vector<ProofStep>& proof,
                        const DratCheckOptions& options = {});

  /// Test hooks: whether `lits` is RUP / RAT-on-first-literal with
  /// respect to the formula alone.
  bool IsRupForTesting(const std::vector<sat::Lit>& lits);
  bool IsRatForTesting(const std::vector<sat::Lit>& lits);

 private:
  struct Clause {
    std::vector<int> lits;   ///< literal codes; [0] and [1] are watched
    bool active = false;
    bool attached = false;   ///< watch/unit entries exist (attach-once)
    bool tautology = false;
    bool marked = false;
    int formula_index = -1;  ///< >= 0 for formula clauses
    uint64_t visit_stamp = 0;
  };

  // --- database construction ---
  void Reset();
  void EnsureVar(int var);
  int AddDbClause(const std::vector<int>& canon, int formula_index);
  void Activate(int ci);
  /// Finds an active clause equal (as a set) to `canon`; -1 if none.
  int FindActive(const std::vector<int>& canon) const;
  static std::vector<int> Canonicalize(const std::vector<sat::Lit>& lits,
                                       bool* tautology);

  // --- propagation over the checker's own watch lists ---
  int LitValue(int code) const;  ///< 1 true, -1 false, 0 unassigned
  void Assign(int code, int reason);
  int Propagate();               ///< conflict clause id or -1
  void UndoAll();

  // --- checks ---
  /// RUP: assume the negation of `canon`, propagate; true iff conflict.
  /// Marks antecedents of the conflict when `mark`.
  bool Rup(const std::vector<int>& canon, bool mark);
  /// RAT on `pivot` (a literal code): every resolvent with an active
  /// clause containing ~pivot must be RUP.
  bool Rat(const std::vector<int>& canon, int pivot, bool mark);
  void MarkConflict(int conflict_ci);

  std::vector<std::vector<sat::Lit>> formula_;

  std::vector<Clause> clauses_;
  std::vector<std::vector<int>> watches_;  ///< by literal code
  std::vector<int> units_;                 ///< ids of size-1 clauses
  std::unordered_map<uint64_t, std::vector<int>> canon_index_;
  std::vector<int8_t> value_;              ///< by var
  std::vector<int> reason_;                ///< by var; clause id or -1
  std::vector<int> trail_;                 ///< literal codes
  size_t qhead_ = 0;
  uint64_t visit_counter_ = 0;
  int num_vars_ = 0;
  DratCheckStats stats_;
};

}  // namespace arbiter::proof

#endif  // ARBITER_PROOF_CHECKER_H_
