#ifndef ARBITER_CHANGE_MERGE_H_
#define ARBITER_CHANGE_MERGE_H_

#include <string>
#include <vector>

#include "kb/weighted_kb.h"
#include "model/distance_semantics.h"
#include "model/model_set.h"

/// \file merge.h
/// Belief merging of k equally important sources — the line of work
/// this paper seeded (its §1 motivates arbitration with large
/// heterogeneous databases; the binary Δ is the k = 2 case).  We
/// implement the two classic distance-based merging aggregates
/// formalized later by Konieczny & Pino Pérez:
///
///  * Σ (sum) merging: rank I by Σ_i dist(source_i, I);
///  * GMax (leximax) merging: rank I by the vector of per-source
///    distances sorted descending, compared lexicographically.
///
/// Merging is performed under an integrity constraint μ: the result is
/// Min(Mod(μ), ≤) for the chosen aggregate.  With a single source and
/// μ = ⊤ both coincide with fitting-based arbitration variants.

namespace arbiter {

/// The distance-aggregation policy.
enum class MergeAggregate {
  kSum,   ///< Σ of per-source min-distances (majority-leaning)
  kGMax,  ///< leximax of per-source min-distances (egalitarian)
  kMax,   ///< plain max (the paper's odist generalized to k sources)
};

const char* MergeAggregateName(MergeAggregate aggregate);

/// Merges the given sources under constraint μ.  Empty sources are
/// ignored (an unsatisfiable voice carries no information); if all
/// sources are empty or μ is unsatisfiable the result is empty.
ModelSet Merge(const std::vector<ModelSet>& sources, const ModelSet& mu,
               MergeAggregate aggregate);

/// Merge with a per-atom metric on the underlying Hamming distance
/// (empty = unit weights, identical to the overload above).
ModelSet Merge(const std::vector<ModelSet>& sources, const ModelSet& mu,
               MergeAggregate aggregate, const std::vector<int64_t>& metric);

/// Merge with μ = ⊤ (no integrity constraint).
ModelSet Merge(const std::vector<ModelSet>& sources,
               MergeAggregate aggregate);

/// Weighted merging — the Section 4 generalization to k sources.
/// Each source is a weighted crowd (not a theory): the sources are
/// ⊔-summed into one weighted base and the constraint is fitted by
/// wdist, so every individual voice in every source keeps its weight
/// in the aggregation.  Commutative and associative in the sources by
/// construction.
WeightedKnowledgeBase MergeWeighted(
    const std::vector<WeightedKnowledgeBase>& sources,
    const WeightedKnowledgeBase& constraint);

/// Weighted merge with a uniform (unconstrained) μ̃.
WeightedKnowledgeBase MergeWeighted(
    const std::vector<WeightedKnowledgeBase>& sources);

}  // namespace arbiter

#endif  // ARBITER_CHANGE_MERGE_H_
