#include "model/loyal.h"

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "model/distance.h"
#include "util/logging.h"

namespace arbiter {

std::string LoyaltyViolation::Describe() const {
  std::string out = "loyalty condition (" + std::to_string(condition) +
                    ") violated: psi1=" + psi1.ToString() +
                    " psi2=" + psi2.ToString() + " I=" + std::to_string(i) +
                    " J=" + std::to_string(j);
  return out;
}

std::optional<LoyaltyViolation> CheckLoyalty(
    const PreorderAssignment& assignment, int num_terms) {
  ARBITER_CHECK(num_terms >= 1 && num_terms <= 4);
  const uint64_t space = 1ULL << num_terms;
  const uint64_t num_kbs = 1ULL << space;  // subsets of the space

  // Materialize every nonempty knowledge base and its pre-order.
  std::vector<ModelSet> kbs;
  std::vector<TotalPreorder> orders;
  kbs.reserve(num_kbs - 1);
  for (uint64_t subset = 1; subset < num_kbs; ++subset) {
    std::vector<uint64_t> masks;
    for (uint64_t m = 0; m < space; ++m) {
      if ((subset >> m) & 1) masks.push_back(m);
    }
    kbs.push_back(ModelSet::FromMasks(std::move(masks), num_terms));
    orders.push_back(assignment(kbs.back()));
  }

  // Condition (1): determinism / semantic keying — re-invoking the
  // assignment must reproduce identical ranks.
  for (size_t k = 0; k < kbs.size(); ++k) {
    TotalPreorder again = assignment(kbs[k]);
    for (uint64_t m = 0; m < space; ++m) {
      for (uint64_t m2 = 0; m2 < space; ++m2) {
        if (orders[k].Leq(m, m2) != again.Leq(m, m2)) {
          return LoyaltyViolation{1, kbs[k], kbs[k], m, m2};
        }
      }
    }
  }

  // Precompute the index of each union: kb index is (subset - 1).
  auto index_of_union = [&](size_t a, size_t b) -> size_t {
    uint64_t sa = static_cast<uint64_t>(a) + 1;
    uint64_t sb = static_cast<uint64_t>(b) + 1;
    return (sa | sb) - 1;
  };

  for (size_t a = 0; a < kbs.size(); ++a) {
    for (size_t b = 0; b < kbs.size(); ++b) {
      const TotalPreorder& pa = orders[a];
      const TotalPreorder& pb = orders[b];
      const TotalPreorder& pu = orders[index_of_union(a, b)];
      for (uint64_t i = 0; i < space; ++i) {
        for (uint64_t j = 0; j < space; ++j) {
          // (2) strict in one, weak in the other => strict in union.
          if (pa.Less(i, j) && pb.Leq(i, j) && !pu.Less(i, j)) {
            return LoyaltyViolation{2, kbs[a], kbs[b], i, j};
          }
          // (3) weak in both => weak in union.
          if (pa.Leq(i, j) && pb.Leq(i, j) && !pu.Leq(i, j)) {
            return LoyaltyViolation{3, kbs[a], kbs[b], i, j};
          }
        }
      }
    }
  }
  return std::nullopt;
}

TotalPreorder DalalPreorder(const ModelSet& psi) {
  ARBITER_CHECK(!psi.empty());
  return TotalPreorder(psi.num_terms(), [&psi](uint64_t i) {
    return static_cast<double>(MinDist(psi, i));
  });
}

TotalPreorder OverallDistPreorder(const ModelSet& psi) {
  ARBITER_CHECK(!psi.empty());
  return TotalPreorder(psi.num_terms(), [&psi](uint64_t i) {
    return static_cast<double>(OverallDist(psi, i));
  });
}

TotalPreorder SumDistPreorder(const ModelSet& psi) {
  ARBITER_CHECK(!psi.empty());
  return TotalPreorder(psi.num_terms(), [&psi](uint64_t i) {
    return static_cast<double>(SumDist(psi, i));
  });
}

TotalPreorder SemanticsPreorder(const DistanceSemantics& semantics,
                                const ModelSet& psi) {
  ARBITER_CHECK(!psi.empty());
  const int64_t no_bound = INT64_MAX;
  switch (semantics.aggregator) {
    case DistanceAggregator::kMin:
      return TotalPreorder(psi.num_terms(), [&semantics, &psi](uint64_t i) {
        return static_cast<double>(MetricMinDist(semantics, psi, i));
      });
    case DistanceAggregator::kMax:
      return TotalPreorder(
          psi.num_terms(), [&semantics, &psi, no_bound](uint64_t i) {
            return static_cast<double>(
                MetricOverallDistBounded(semantics, psi, i, no_bound));
          });
    case DistanceAggregator::kSum: {
      // The oracle is shared across the whole materialization pass.
      auto sdist = std::make_shared<SumDistOracle>(psi, semantics.metric);
      return TotalPreorder(psi.num_terms(), [sdist](uint64_t i) {
        return static_cast<double>((*sdist)(i));
      });
    }
    case DistanceAggregator::kWeightedSum: {
      ARBITER_CHECK_MSG(semantics.model_weight != nullptr,
                        "kWeightedSum requires a model_weight function");
      return TotalPreorder(psi.num_terms(), [&semantics, &psi](uint64_t i) {
        double total = 0.0;
        for (uint64_t j : psi) {
          total += static_cast<double>(MetricDist(semantics, i, j)) *
                   semantics.model_weight(j);
        }
        return total;
      });
    }
  }
  ARBITER_CHECK_MSG(false, "unknown aggregator");
  return TotalPreorder(psi.num_terms(), [](uint64_t) { return 0.0; });
}

PreorderAssignment MakeSemanticsAssignment(DistanceSemantics semantics) {
  return [semantics = std::move(semantics)](const ModelSet& psi) {
    return SemanticsPreorder(semantics, psi);
  };
}

}  // namespace arbiter
