#ifndef ARBITER_SERVER_DIFFERENTIAL_H_
#define ARBITER_SERVER_DIFFERENTIAL_H_

#include <cstdint>
#include <string>

/// \file differential.h
/// Concurrent-session differential harness: the executable form of the
/// server's epoch consistency model.
///
/// Phase 1 (concurrent): N writer and M reader threads fire randomized
/// batches at shared named stores through a live BeliefServer,
/// recording for every batch the statements sent, the epoch observed,
/// whether it committed, and the rendered outcomes.
///
/// Phase 2 (serial replay): per store, the committed write batches are
/// ordered by observed epoch — the single-writer lock makes that order
/// total and contiguous — and replayed one by one through the shared
/// statement engine, snapshotting Save() at every epoch.  Every
/// recorded batch (committed writes, failed writes, and reads alike)
/// must then reproduce its outcomes bit for bit against the snapshot
/// of the epoch it observed, and the live server's final state must
/// equal the last serial snapshot.
///
/// The replay runs without the server's result cache, so a pass also
/// certifies that the cache changed no answer.  Run the fixed-seed
/// smoke under ThreadSanitizer (the tsan CI job does) and data races
/// get caught in the same net.

namespace arbiter::server {

struct ServerFuzzOptions {
  uint64_t seed = 1;
  int writers = 2;
  int readers = 2;
  int stores = 2;
  int batches_per_writer = 6;
  int batches_per_reader = 6;
  int statements_per_batch = 4;
};

struct ServerFuzzReport {
  int batches = 0;     ///< concurrent batches executed
  int mismatches = 0;  ///< divergences between live and serial replay
  std::string detail;  ///< first few mismatch descriptions

  bool ok() const { return mismatches == 0; }
};

/// Runs one concurrent-vs-serial differential case.
ServerFuzzReport RunServerInterleavingFuzz(const ServerFuzzOptions& options);

}  // namespace arbiter::server

#endif  // ARBITER_SERVER_DIFFERENTIAL_H_
