#include "store/belief_store.h"

#include <utility>

#include "change/registry.h"
#include "change/update.h"
#include "logic/parser.h"
#include "logic/printer.h"
#include "solve/sat_bridge.h"
#include "util/string_util.h"

namespace arbiter {

namespace {

/// Largest exact result a backend-served Apply may produce: the store
/// holds results as formulas built from their models, so a truncated
/// model list would silently change the base's meaning.
constexpr int64_t kStoreBackendMaxModels = 4096;

/// Journal payloads are persisted one per line; the parser treats all
/// whitespace alike, so flattening embedded line breaks preserves the
/// formula while keeping the Save format line-based.
std::string SingleLine(const std::string& text) {
  std::string out = text;
  for (char& c : out) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return out;
}

}  // namespace

BeliefStore::BeliefStore(const BeliefStore& other)
    : vocab_(other.vocab_),
      bases_(other.bases_),
      backend_name_(other.backend_name_),
      weights_(other.weights_),
      cache_(other.cache_) {
  if (other.backend_ != nullptr) {
    Result<std::shared_ptr<DistanceBackend>> fresh =
        MakeDistanceBackend(backend_name_);
    // backend_name_ was validated when the source store selected it.
    ARBITER_CHECK(fresh.ok());
    backend_ = *std::move(fresh);
  }
}

BeliefStore& BeliefStore::operator=(const BeliefStore& other) {
  if (this != &other) {
    BeliefStore copy(other);
    *this = std::move(copy);
  }
  return *this;
}

int BeliefStore::CapacityLimit() const {
  // The enum backend materializes 2^n interpretations; the counting
  // backend only needs model masks to fit in a uint64.
  return backend_name_ == "enum" ? kMaxEnumTerms : kMaxVocabularyTerms - 1;
}

Result<Formula> BeliefStore::ParseValidated(const std::string& text,
                                            Vocabulary* scratch) const {
  Result<Formula> f = Parse(text, scratch);
  if (!f.ok()) return f;
  if (scratch->size() > CapacityLimit()) {
    if (backend_name_ == "enum") {
      return Status::CapacityExceeded(
          "store vocabulary exceeds the enumeration limit (" +
          std::to_string(kMaxEnumTerms) +
          " terms); select the counting backend to go further");
    }
    return Status::CapacityExceeded(
        "store vocabulary exceeds the " + backend_name_ +
        " backend limit (" + std::to_string(CapacityLimit()) + " terms)");
  }
  return f;
}

Status BeliefStore::SetBackend(const std::string& name) {
  Result<std::shared_ptr<DistanceBackend>> backend =
      MakeDistanceBackend(name);
  if (!backend.ok()) return backend.status();
  const int new_limit =
      name == "enum" ? kMaxEnumTerms : kMaxVocabularyTerms - 1;
  if (vocab_.size() > new_limit) {
    return Status::InvalidArgument(
        "cannot select backend \"" + name + "\": vocabulary already has " +
        std::to_string(vocab_.size()) + " terms (limit " +
        std::to_string(new_limit) + ")");
  }
  backend_name_ = name;
  backend_ = name == "enum" ? nullptr : *std::move(backend);
  return Status::OK();
}

Status BeliefStore::SetWeight(const std::string& term, int64_t weight) {
  if (weight < 0) {
    return Status::InvalidArgument("metric weights must be >= 0, got " +
                                   std::to_string(weight));
  }
  if (weight > kMaxMetricWeight) {
    // Unbounded weights let diameter and Σ accumulations overflow
    // int64 — a hostile `set weight` must fail, not corrupt distances.
    return Status::OutOfRange("metric weights must be <= " +
                              std::to_string(kMaxMetricWeight) + ", got " +
                              std::to_string(weight));
  }
  Vocabulary scratch = vocab_;
  Result<int> index = scratch.GetOrAddTerm(term);
  if (!index.ok()) return index.status();
  if (scratch.size() > CapacityLimit()) {
    return Status::CapacityExceeded(
        "cannot register weighted term \"" + term +
        "\": vocabulary limit is " + std::to_string(CapacityLimit()));
  }
  vocab_ = std::move(scratch);
  weights_[term] = weight;
  return Status::OK();
}

std::vector<int64_t> BeliefStore::MetricVector() const {
  return MetricVectorFor(vocab_);
}

std::vector<int64_t> BeliefStore::MetricVectorFor(
    const Vocabulary& vocab) const {
  if (weights_.empty()) return {};
  std::vector<int64_t> metric(vocab.size(), 1);
  for (const auto& [term, weight] : weights_) {
    Result<int> index = vocab.Lookup(term);
    // Weighted terms are registered at SetWeight time; a scratch vocab
    // derived from vocab_ therefore always contains them.
    if (index.ok()) metric[*index] = weight;
  }
  return metric;
}

void BeliefStore::SetResultCache(std::shared_ptr<OperatorResultCache> cache) {
  cache_ = std::move(cache);
}

bool BeliefStore::IsSatisfiableOver(const Formula& f, int num_terms) const {
  if (num_terms <= kMaxEnumTerms) {
    return !ModelSet::FromFormula(f, num_terms).empty();
  }
  return solve::SatIsSatisfiable(f, num_terms);
}

Result<const BeliefStore::Entry*> BeliefStore::Find(
    const std::string& name) const {
  auto it = bases_.find(name);
  if (it == bases_.end()) {
    return Status::NotFound("no belief base named \"" + name + "\"");
  }
  return {&it->second};
}

Status BeliefStore::Define(const std::string& name,
                           const std::string& formula_text) {
  if (name.empty()) return Status::InvalidArgument("empty base name");
  Vocabulary scratch = vocab_;
  Result<Formula> f = ParseValidated(formula_text, &scratch);
  if (!f.ok()) return f.status();
  // Commit point: every validation passed.
  vocab_ = std::move(scratch);
  Entry& entry = bases_[name];
  entry.formula = *f;
  entry.undo_stack.clear();
  entry.journal.clear();
  return Status::OK();
}

bool BeliefStore::Contains(const std::string& name) const {
  return bases_.count(name) != 0;
}

Status BeliefStore::Drop(const std::string& name) {
  if (bases_.erase(name) == 0) {
    return Status::NotFound("no belief base named \"" + name + "\"");
  }
  return Status::OK();
}

std::vector<std::string> BeliefStore::Names() const {
  std::vector<std::string> out;
  out.reserve(bases_.size());
  for (const auto& [name, entry] : bases_) out.push_back(name);
  return out;
}

Result<KnowledgeBase> BeliefStore::Get(const std::string& name) const {
  Result<const Entry*> entry = Find(name);
  if (!entry.ok()) return entry.status();
  if (vocab_.size() > kMaxEnumTerms) {
    return Status::CapacityExceeded(
        "Get materializes the model set, which needs <= " +
        std::to_string(kMaxEnumTerms) +
        " terms; use Entails/ConsistentWith/EquivalentTo instead");
  }
  return KnowledgeBase((*entry)->formula, vocab_.size());
}

Status BeliefStore::Apply(const std::string& target,
                          const std::string& op_name,
                          const std::string& evidence_text) {
  auto it = bases_.find(target);
  if (it == bases_.end()) {
    return Status::NotFound("no belief base named \"" + target + "\"");
  }
  Vocabulary scratch = vocab_;
  Result<Formula> evidence = ParseValidated(evidence_text, &scratch);
  if (!evidence.ok()) return evidence.status();
  const std::vector<int64_t> metric = MetricVectorFor(scratch);

  Entry& entry = it->second;

  // A successful Apply is a pure function of (backend, operator,
  // metric, vocabulary binding, base, evidence) — exactly the cache
  // key.  An uncacheable request (canonicalization over budget) only
  // skips memoization.
  std::string cache_key;
  std::string optimal;
  if (cache_ != nullptr) {
    Result<std::string> key = OperatorCacheKey(
        backend_name_, op_name, metric, scratch, entry.formula, *evidence);
    if (key.ok()) {
      cache_key = *std::move(key);
      if (std::optional<OperatorResultCache::Value> hit =
              cache_->Lookup(cache_key)) {
        vocab_ = std::move(scratch);
        entry.undo_stack.push_back(entry.formula);
        entry.journal.push_back(ChangeRecord{op_name, evidence_text});
        entry.formula = hit->result;
        return Status::OK();
      }
    } else {
      cache_->RecordSkip();
    }
  }

  // Within the enumeration limit the registry operators are the
  // reference path; the registry metric overload handles weights.
  auto enumerate_apply = [&]() -> Result<Formula> {
    auto op = MakeOperator(op_name, metric);
    if (!op.ok()) return op.status();
    KnowledgeBase current(entry.formula, scratch.size());
    KnowledgeBase mu(*evidence, scratch.size());
    return (*op)->Apply(current, mu).formula();
  };

  Result<Formula> changed = Status::Internal("unset");
  if (backend_name_ == "enum") {
    changed = enumerate_apply();
  } else {
    Result<BackendOperatorSpec> spec = BackendOperatorFor(op_name, metric);
    if (spec.ok() && scratch.size() > 0) {
      ARBITER_CHECK(backend_ != nullptr);
      const Formula psi = spec->arbitration
                              ? Or(entry.formula, *evidence)
                              : entry.formula;
      const Formula mu =
          spec->arbitration ? Formula::True() : *evidence;
      Result<DistanceChangeResult> result = backend_->Change(
          spec->semantics, psi, mu, scratch.size(), kStoreBackendMaxModels);
      if (!result.ok()) return result.status();
      if (result->truncated || result->models_omitted) {
        return Status::CapacityExceeded(
            "change result exceeds " +
            std::to_string(kStoreBackendMaxModels) +
            " models; the store must hold the exact result");
      }
      optimal = result->optimal;
      changed = result->models.ToFormula();
    } else if (scratch.size() <= kMaxEnumTerms) {
      // Non-distance operators (updates, set-theoretic revisions) keep
      // enumerating while the vocabulary permits it.
      changed = enumerate_apply();
    } else {
      return spec.status();
    }
  }
  if (!changed.ok()) return changed.status();
  if (cache_ != nullptr && !cache_key.empty()) {
    cache_->Insert(cache_key,
                   OperatorResultCache::Value{*changed, std::move(optimal)});
  }
  // Commit point: vocabulary, journal, and formula move together.
  vocab_ = std::move(scratch);
  entry.undo_stack.push_back(entry.formula);
  entry.journal.push_back(ChangeRecord{op_name, evidence_text});
  entry.formula = *changed;
  return Status::OK();
}

Status BeliefStore::Undo(const std::string& target) {
  auto it = bases_.find(target);
  if (it == bases_.end()) {
    return Status::NotFound("no belief base named \"" + target + "\"");
  }
  Entry& entry = it->second;
  if (entry.undo_stack.empty()) {
    return Status::InvalidArgument("nothing to undo on \"" + target + "\"");
  }
  entry.formula = entry.undo_stack.back();
  entry.undo_stack.pop_back();
  entry.journal.pop_back();
  return Status::OK();
}

int BeliefStore::HistoryDepth(const std::string& name) const {
  auto it = bases_.find(name);
  return it == bases_.end()
             ? 0
             : static_cast<int>(it->second.undo_stack.size());
}

std::vector<ChangeRecord> BeliefStore::History(
    const std::string& name) const {
  auto it = bases_.find(name);
  if (it == bases_.end()) return {};
  return it->second.journal;
}

Result<bool> BeliefStore::ComputeEntails(const Formula& base,
                                         const Formula& query,
                                         int num_terms) const {
  if (num_terms > kMaxEnumTerms) {
    // base ⊨ f  ⟺  base ∧ ¬f is unsatisfiable.
    return !IsSatisfiableOver(And(base, Not(query)), num_terms);
  }
  KnowledgeBase base_kb(base, num_terms);
  KnowledgeBase query_kb(query, num_terms);
  return base_kb.Implies(query_kb);
}

Result<bool> BeliefStore::ComputeConsistentWith(const Formula& base,
                                                const Formula& query,
                                                int num_terms) const {
  if (num_terms > kMaxEnumTerms) {
    return IsSatisfiableOver(And(base, query), num_terms);
  }
  KnowledgeBase base_kb(base, num_terms);
  KnowledgeBase query_kb(query, num_terms);
  return !base_kb.models().Intersect(query_kb.models()).empty();
}

Result<bool> BeliefStore::ComputeEquivalentTo(const Formula& base,
                                              const Formula& query,
                                              int num_terms) const {
  if (num_terms > kMaxEnumTerms) {
    // Equivalence as two unsatisfiability checks.
    return !IsSatisfiableOver(And(base, Not(query)), num_terms) &&
           !IsSatisfiableOver(And(Not(base), query), num_terms);
  }
  KnowledgeBase base_kb(base, num_terms);
  KnowledgeBase query_kb(query, num_terms);
  return base_kb.EquivalentTo(query_kb);
}

Result<bool> BeliefStore::Entails(const std::string& name,
                                  const std::string& formula_text) {
  Result<const Entry*> entry = Find(name);
  if (!entry.ok()) return entry.status();
  Vocabulary scratch = vocab_;
  Result<Formula> f = ParseValidated(formula_text, &scratch);
  if (!f.ok()) return f.status();
  vocab_ = std::move(scratch);
  // The base is evaluated over the (possibly grown) vocabulary.
  return ComputeEntails((*entry)->formula, *f, vocab_.size());
}

Result<bool> BeliefStore::ConsistentWith(const std::string& name,
                                         const std::string& formula_text) {
  Result<const Entry*> entry = Find(name);
  if (!entry.ok()) return entry.status();
  Vocabulary scratch = vocab_;
  Result<Formula> f = ParseValidated(formula_text, &scratch);
  if (!f.ok()) return f.status();
  vocab_ = std::move(scratch);
  return ComputeConsistentWith((*entry)->formula, *f, vocab_.size());
}

Result<bool> BeliefStore::EquivalentTo(const std::string& name,
                                       const std::string& formula_text) {
  Result<const Entry*> entry = Find(name);
  if (!entry.ok()) return entry.status();
  Vocabulary scratch = vocab_;
  Result<Formula> f = ParseValidated(formula_text, &scratch);
  if (!f.ok()) return f.status();
  vocab_ = std::move(scratch);
  return ComputeEquivalentTo((*entry)->formula, *f, vocab_.size());
}

Result<bool> BeliefStore::QueryEntails(const std::string& name,
                                       const std::string& formula_text) const {
  Result<const Entry*> entry = Find(name);
  if (!entry.ok()) return entry.status();
  Vocabulary scratch = vocab_;
  Result<Formula> f = ParseValidated(formula_text, &scratch);
  if (!f.ok()) return f.status();
  // The scratch vocabulary is discarded: terms the store never saw are
  // free in every base, so the verdict matches the committing variant.
  return ComputeEntails((*entry)->formula, *f, scratch.size());
}

Result<bool> BeliefStore::QueryConsistentWith(
    const std::string& name, const std::string& formula_text) const {
  Result<const Entry*> entry = Find(name);
  if (!entry.ok()) return entry.status();
  Vocabulary scratch = vocab_;
  Result<Formula> f = ParseValidated(formula_text, &scratch);
  if (!f.ok()) return f.status();
  return ComputeConsistentWith((*entry)->formula, *f, scratch.size());
}

Result<bool> BeliefStore::QueryEquivalentTo(
    const std::string& name, const std::string& formula_text) const {
  Result<const Entry*> entry = Find(name);
  if (!entry.ok()) return entry.status();
  Vocabulary scratch = vocab_;
  Result<Formula> f = ParseValidated(formula_text, &scratch);
  if (!f.ok()) return f.status();
  return ComputeEquivalentTo((*entry)->formula, *f, scratch.size());
}

Result<std::string> BeliefStore::QueryModels(const std::string& name) const {
  Result<const Entry*> entry = Find(name);
  if (!entry.ok()) return entry.status();
  if (vocab_.size() > kMaxEnumTerms) {
    return Status::CapacityExceeded(
        "models enumerates the interpretation space, which needs <= " +
        std::to_string(kMaxEnumTerms) + " terms (store has " +
        std::to_string(vocab_.size()) + ")");
  }
  KnowledgeBase kb((*entry)->formula, vocab_.size());
  return kb.models().ToString(vocab_);
}

Result<std::string> BeliefStore::QueryDistance(
    const std::string& name, const std::string& op_name,
    const std::string& mu_text) const {
  Result<const Entry*> entry = Find(name);
  if (!entry.ok()) return entry.status();
  Vocabulary scratch = vocab_;
  Result<Formula> mu = ParseValidated(mu_text, &scratch);
  if (!mu.ok()) return mu.status();
  if (scratch.size() == 0) {
    return Status::InvalidArgument(
        "dist needs at least one registered term");
  }
  const std::vector<int64_t> metric = MetricVectorFor(scratch);
  Result<BackendOperatorSpec> spec = BackendOperatorFor(op_name, metric);
  if (!spec.ok()) return spec.status();

  std::string cache_key;
  if (cache_ != nullptr) {
    Result<std::string> key = OperatorCacheKey(
        backend_name_, op_name, metric, scratch, (*entry)->formula, *mu);
    if (key.ok()) {
      cache_key = *std::move(key);
      std::optional<OperatorResultCache::Value> hit =
          cache_->Lookup(cache_key);
      // Entries inserted by the enumeration Apply path carry no
      // distance; fall through and compute (refreshing the entry).
      if (hit.has_value() && !hit->optimal.empty()) return hit->optimal;
      if (hit.has_value() && hit->result.kind() == FormulaKind::kFalse) {
        return std::string("undefined");
      }
    } else {
      cache_->RecordSkip();
    }
  }

  // Fresh backend per call: `this` may be a snapshot shared across
  // readers, and backends memoize internal state.
  Result<std::shared_ptr<DistanceBackend>> backend =
      MakeDistanceBackend(backend_name_);
  if (!backend.ok()) return backend.status();
  const Formula psi = spec->arbitration ? Or((*entry)->formula, *mu)
                                        : (*entry)->formula;
  const Formula goal = spec->arbitration ? Formula::True() : *mu;
  Result<DistanceChangeResult> result = (*backend)->Change(
      spec->semantics, psi, goal, scratch.size(), kStoreBackendMaxModels);
  if (!result.ok()) return result.status();
  if (!cache_key.empty() && !result->truncated && !result->models_omitted) {
    cache_->Insert(cache_key,
                   OperatorResultCache::Value{result->models.ToFormula(),
                                              result->optimal});
  }
  if (result->optimal.empty()) return std::string("undefined");
  return result->optimal;
}

Result<bool> BeliefStore::Counterfactual(
    const std::string& name, const std::string& antecedent_text,
    const std::string& consequent_text) {
  Result<const Entry*> entry = Find(name);
  if (!entry.ok()) return entry.status();
  Vocabulary scratch = vocab_;
  Result<Formula> antecedent = ParseValidated(antecedent_text, &scratch);
  if (!antecedent.ok()) return antecedent.status();
  Result<Formula> consequent = ParseValidated(consequent_text, &scratch);
  if (!consequent.ok()) return consequent.status();
  if (scratch.size() > kMaxEnumTerms) {
    return Status::CapacityExceeded(
        "counterfactual update is pointwise over interpretations and "
        "needs <= " +
        std::to_string(kMaxEnumTerms) + " terms");
  }
  vocab_ = std::move(scratch);
  KnowledgeBase base((*entry)->formula, vocab_.size());
  KnowledgeBase mu(*antecedent, vocab_.size());
  KnowledgeBase then(*consequent, vocab_.size());
  KnowledgeBase updated = WinslettUpdate().Apply(base, mu);
  return updated.Implies(then);
}

std::string BeliefStore::Save() const {
  std::string out = "arbiter-store v1\n";
  out += "vocab";
  for (const std::string& name : vocab_.names()) out += " " + name;
  out += "\n";
  // Backend and metric lines precede the bases so Load applies the
  // right capacity limit while parsing them.  The default backend and
  // unit weights are elided (older files stay loadable unchanged).
  if (backend_name_ != "enum") out += "backend " + backend_name_ + "\n";
  for (const auto& [term, weight] : weights_) {
    out += "weight " + term + " " + std::to_string(weight) + "\n";
  }
  for (const auto& [name, entry] : bases_) {
    out += "base " + name + " := " + ToString(entry.formula, vocab_) + "\n";
    // Undo stack and journal are persisted verbatim (oldest first)
    // rather than recomputed by replaying the operators: replay would
    // re-run each change over the final (possibly larger) vocabulary,
    // and not every operator commutes with adding free terms — the
    // differential harness caught lex-fitting drifting exactly there.
    for (const Formula& previous : entry.undo_stack) {
      out += "undo " + name + " := " + ToString(previous, vocab_) + "\n";
    }
    for (const ChangeRecord& record : entry.journal) {
      out += "hist " + name + " " + record.op_name + " := " +
             SingleLine(record.evidence_text) + "\n";
    }
  }
  return out;
}

Result<BeliefStore> BeliefStore::Load(const std::string& text) {
  BeliefStore store;
  std::vector<std::string> lines = Split(text, '\n');
  if (lines.empty() || Trim(lines[0]) != "arbiter-store v1") {
    return Status::InvalidArgument("not an arbiter-store v1 file");
  }
  for (size_t i = 1; i < lines.size(); ++i) {
    std::string line = Trim(lines[i]);
    if (line.empty() || line[0] == '#') continue;
    if (line.rfind("vocab", 0) == 0) {
      std::vector<std::string> parts = Split(line, ' ');
      for (size_t j = 1; j < parts.size(); ++j) {
        if (parts[j].empty()) continue;
        Result<int> added = store.vocab_.GetOrAddTerm(parts[j]);
        if (!added.ok()) return added.status();
      }
      continue;
    }
    if (line.rfind("backend ", 0) == 0) {
      ARBITER_RETURN_NOT_OK(store.SetBackend(Trim(line.substr(8))));
      continue;
    }
    if (line.rfind("weight ", 0) == 0) {
      // "weight <term> <integer>"
      std::vector<std::string> parts = Split(Trim(line.substr(7)), ' ');
      if (parts.size() != 2) {
        return Status::InvalidArgument("malformed weight line: " + line);
      }
      int64_t weight = 0;
      if (!ParseInt64(parts[1], &weight)) {
        return Status::InvalidArgument("malformed weight line: " + line);
      }
      ARBITER_RETURN_NOT_OK(store.SetWeight(parts[0], weight));
      continue;
    }
    if (line.rfind("base ", 0) == 0) {
      size_t assign = line.find(" := ");
      if (assign == std::string::npos) {
        return Status::InvalidArgument("malformed base line: " + line);
      }
      std::string name = Trim(line.substr(5, assign - 5));
      std::string formula = line.substr(assign + 4);
      ARBITER_RETURN_NOT_OK(store.Define(name, formula));
      continue;
    }
    if (line.rfind("undo ", 0) == 0) {
      // "undo <base> := <previous formula>": one pre-state per past
      // change, oldest first.  Restored verbatim — never recomputed by
      // re-running the operator, whose result could differ over the
      // final vocabulary.
      size_t assign = line.find(" := ");
      if (assign == std::string::npos) {
        return Status::InvalidArgument("malformed undo line: " + line);
      }
      std::string name = Trim(line.substr(5, assign - 5));
      auto it = store.bases_.find(name);
      if (it == store.bases_.end()) {
        return Status::InvalidArgument(
            "undo line for undefined base: " + line);
      }
      Vocabulary scratch = store.vocab_;
      Result<Formula> previous =
          store.ParseValidated(line.substr(assign + 4), &scratch);
      if (!previous.ok()) return previous.status();
      store.vocab_ = std::move(scratch);
      it->second.undo_stack.push_back(*previous);
      continue;
    }
    if (line.rfind("hist ", 0) == 0) {
      // "hist <base> <op> := <evidence>"; the operator name is the
      // last pre-":=" token, so base names keep any interior spaces.
      size_t assign = line.find(" := ");
      if (assign == std::string::npos) {
        return Status::InvalidArgument("malformed hist line: " + line);
      }
      std::string head = Trim(line.substr(5, assign - 5));
      size_t op_start = head.rfind(' ');
      if (op_start == std::string::npos) {
        return Status::InvalidArgument("malformed hist line: " + line);
      }
      std::string name = Trim(head.substr(0, op_start));
      std::string op_name = head.substr(op_start + 1);
      std::string evidence = line.substr(assign + 4);
      auto it = store.bases_.find(name);
      if (it == store.bases_.end()) {
        return Status::InvalidArgument(
            "hist line for undefined base: " + line);
      }
      auto op = MakeOperator(op_name);
      if (!op.ok()) return op.status();
      Vocabulary scratch = store.vocab_;
      Result<Formula> parsed = store.ParseValidated(evidence, &scratch);
      if (!parsed.ok()) return parsed.status();
      store.vocab_ = std::move(scratch);
      it->second.journal.push_back(ChangeRecord{op_name, evidence});
      continue;
    }
    return Status::InvalidArgument("unrecognized line: " + line);
  }
  for (const auto& [name, entry] : store.bases_) {
    if (entry.undo_stack.size() != entry.journal.size()) {
      return Status::InvalidArgument(
          "base \"" + name + "\" has " +
          std::to_string(entry.undo_stack.size()) + " undo line(s) but " +
          std::to_string(entry.journal.size()) + " hist line(s)");
    }
  }
  return store;
}

std::string BeliefStore::Dump() const {
  std::string out;
  for (const auto& [name, entry] : bases_) {
    out += name + " := " + ToString(entry.formula, vocab_) + "\n";
    if (vocab_.size() <= kMaxEnumTerms) {
      KnowledgeBase kb(entry.formula, vocab_.size());
      out += "  models: " + kb.models().ToString(vocab_) + "\n";
    } else {
      out += "  models: (not enumerated: " +
             std::to_string(vocab_.size()) + " terms)\n";
    }
    if (!entry.journal.empty()) {
      out += "  history:";
      for (const ChangeRecord& record : entry.journal) {
        out += " [" + record.op_name + " \"" + record.evidence_text + "\"]";
      }
      out += "\n";
    }
  }
  return out;
}

}  // namespace arbiter
