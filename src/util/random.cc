#include "util/random.h"

#include "util/logging.h"

namespace arbiter {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

namespace {
inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (int i = 0; i < 4; ++i) s_[i] = SplitMix64(&sm);
  // All-zero state would be a fixed point; SplitMix64 cannot produce four
  // zeros from any seed, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  ARBITER_DCHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInRange(int64_t lo, int64_t hi) {
  ARBITER_DCHECK(lo <= hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // full 64-bit range
  return lo + static_cast<int64_t>(NextBelow(span));
}

double Rng::NextDouble() {
  // 53 top bits → uniform double in [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) {
  if (p <= 0) return false;
  if (p >= 1) return true;
  return NextDouble() < p;
}

}  // namespace arbiter
