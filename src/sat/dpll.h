#ifndef ARBITER_SAT_DPLL_H_
#define ARBITER_SAT_DPLL_H_

#include <vector>

#include "sat/types.h"

/// \file dpll.h
/// A plain DPLL solver (unit propagation + chronological backtracking,
/// no learning).  It exists as a differential-testing baseline for the
/// CDCL solver and as the "naive" comparator in the solver benchmarks.

namespace arbiter::sat {

/// A self-contained DPLL solver over an immutable clause list.
class DpllSolver {
 public:
  explicit DpllSolver(int num_vars) : num_vars_(num_vars) {}

  /// Adds a clause; empty clauses make the instance unsatisfiable.
  void AddClause(std::vector<Lit> lits);

  /// Runs DPLL.  On kSat, `model()` holds a satisfying assignment.
  SolveStatus Solve();

  /// The satisfying assignment found by the last Solve (true = positive).
  const std::vector<bool>& model() const { return model_; }

  uint64_t num_decisions() const { return decisions_; }

 private:
  bool Dpll(std::vector<LBool>* assign);
  /// Applies unit propagation; returns false on conflict.
  bool PropagateUnits(std::vector<LBool>* assign) const;
  /// Picks the first unassigned variable, or kUndefVar.
  Var PickVar(const std::vector<LBool>& assign) const;

  int num_vars_;
  bool trivially_unsat_ = false;
  std::vector<std::vector<Lit>> clauses_;
  std::vector<bool> model_;
  uint64_t decisions_ = 0;
};

}  // namespace arbiter::sat

#endif  // ARBITER_SAT_DPLL_H_
