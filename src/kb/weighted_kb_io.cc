#include "kb/weighted_kb_io.h"

#include <cmath>
#include <cstdio>
#include <sstream>

#include "logic/vocabulary.h"
#include "util/string_util.h"

namespace arbiter {

namespace {

Status LineError(int line, const std::string& msg) {
  return Status::InvalidArgument("line " + std::to_string(line) + ": " +
                                 msg);
}

}  // namespace

Result<WeightedKnowledgeBase> ParseWeightedKb(const std::string& text) {
  const std::vector<std::string> lines = Split(text, '\n');
  int num_terms = -1;
  WeightedKnowledgeBase base(0);
  for (size_t i = 0; i < lines.size(); ++i) {
    const int line_no = static_cast<int>(i + 1);
    const std::string line = Trim(lines[i]);
    if (line.empty() || line[0] == '#') continue;
    std::istringstream in(line);
    if (num_terms < 0) {
      std::string magic;
      in >> magic >> num_terms;
      if (magic != "wkb" || in.fail()) {
        return LineError(line_no, "expected 'wkb <num_terms>' header");
      }
      std::string extra;
      if (in >> extra) {
        return LineError(line_no, "trailing input after header");
      }
      if (num_terms < 1 || num_terms > kMaxEnumTerms) {
        return LineError(line_no, "num_terms must be in [1, " +
                                      std::to_string(kMaxEnumTerms) +
                                      "], got " + std::to_string(num_terms));
      }
      base = WeightedKnowledgeBase(num_terms);
      continue;
    }
    uint64_t bits = 0;
    double weight = 0;
    in >> bits >> weight;
    std::string extra;
    if (in.fail() || (in >> extra) || line[0] == '-') {
      return LineError(line_no, "expected '<bits> <weight>', got '" + line +
                                    "'");
    }
    if (bits >= base.space_size()) {
      return LineError(line_no, "interpretation " + std::to_string(bits) +
                                    " out of range for " +
                                    std::to_string(num_terms) + " terms");
    }
    if (!(weight >= 0) || !std::isfinite(weight)) {
      return LineError(line_no, "weight must be finite and >= 0");
    }
    base.SetWeight(bits, weight);
  }
  if (num_terms < 0) {
    return Status::InvalidArgument("missing 'wkb <num_terms>' header");
  }
  return base;
}

std::string ToWkbText(const WeightedKnowledgeBase& base) {
  std::string out = "wkb " + std::to_string(base.num_terms()) + "\n";
  char buf[64];
  for (uint64_t i = 0; i < base.space_size(); ++i) {
    const double w = base.Weight(i);
    if (w <= 0) continue;
    std::snprintf(buf, sizeof buf, "%llu %.17g\n",
                  static_cast<unsigned long long>(i), w);
    out += buf;
  }
  return out;
}

}  // namespace arbiter
