#include "solve/satoh_sat.h"

#include <algorithm>

#include "enc/tseitin.h"
#include "sat/all_sat.h"
#include "sat/preprocessor.h"
#include "solve/sat_bridge.h"
#include "util/bit.h"

namespace arbiter::solve {

using sat::Lit;
using sat::SatPreprocessor;
using sat::SolveStatus;

namespace {

/// The joint encoding used by both phases: x ⊨ μ on [0, n),
/// y ⊨ ψ on [n, 2n), difference bits d_i <-> x_i xor y_i.
struct JointProblem {
  SatPreprocessor solver;
  std::vector<Lit> diffs;

  JointProblem(const Formula& psi, const Formula& mu, int n) {
    enc::TseitinEncoder encoder(&solver);
    encoder.ReserveInputVars(2 * n);
    encoder.Assert(mu);
    encoder.Assert(ShiftVars(psi, n));
    // Simplify away the Tseitin auxiliaries before the diff-bit layer;
    // the diff variables are created post-preprocess, so assumptions
    // over them stay valid.
    solver.FreezeRange(0, 2 * n);
    solver.Preprocess();
    diffs = MakeDiffBits(&solver, n, n);
  }

  uint64_t ExtractDiff() const {
    uint64_t d = 0;
    for (size_t i = 0; i < diffs.size(); ++i) {
      if (solver.ModelValue(diffs[i].var())) d |= 1ULL << i;
    }
    return d;
  }

  uint64_t ExtractX(int n) const {
    uint64_t x = 0;
    for (int i = 0; i < n; ++i) {
      if (solver.ModelValue(i)) x |= 1ULL << i;
    }
    return x;
  }

  /// Assumptions forcing diff ⊆ allowed.
  std::vector<Lit> WithinAssumptions(uint64_t allowed) const {
    std::vector<Lit> out;
    for (size_t i = 0; i < diffs.size(); ++i) {
      if (!((allowed >> i) & 1)) out.push_back(~diffs[i]);
    }
    return out;
  }

  /// Assumptions forcing diff == exactly.
  std::vector<Lit> ExactAssumptions(uint64_t exactly) const {
    std::vector<Lit> out;
    for (size_t i = 0; i < diffs.size(); ++i) {
      out.push_back(((exactly >> i) & 1) ? diffs[i] : ~diffs[i]);
    }
    return out;
  }
};

}  // namespace

SatSatohResult SatSatohRevise(const Formula& psi, const Formula& mu,
                              int num_terms, int64_t max_diffs,
                              int64_t max_models) {
  ARBITER_CHECK(num_terms >= 1 && num_terms <= 31);
  SatSatohResult result;

  if (!SatIsSatisfiable(mu, num_terms)) {
    ++result.num_sat_calls;
    return result;
  }
  if (!SatIsSatisfiable(psi, num_terms)) {
    result.num_sat_calls += 2;
    result.psi_unsat = true;
    SatPreprocessor solver;
    enc::TseitinEncoder encoder(&solver);
    encoder.ReserveInputVars(num_terms);
    encoder.Assert(mu);
    solver.FreezeRange(0, num_terms);  // AllSAT projects onto the inputs
    sat::AllSatOptions options;
    options.num_project = num_terms;
    options.max_models = max_models + 1;
    result.models = sat::CollectAllSat(&solver, options);
    if (static_cast<int64_t>(result.models.size()) > max_models) {
      result.models.resize(max_models);
      result.truncated = true;
    }
    return result;
  }

  // Phase 1+2: enumerate the antichain of ⊆-minimal difference sets.
  JointProblem finder(psi, mu, num_terms);
  while (static_cast<int64_t>(result.minimal_diffs.size()) < max_diffs) {
    ++result.num_sat_calls;
    if (finder.solver.Solve() != SolveStatus::kSat) break;
    uint64_t diff = finder.ExtractDiff();
    // Greedy shrink to a ⊆-minimal achievable difference.
    bool shrunk = true;
    while (shrunk && diff != 0) {
      shrunk = false;
      uint64_t bits = diff;
      while (bits != 0) {
        int b = LowestBit(bits);
        bits = ClearLowestBit(bits);
        uint64_t candidate = diff & ~(1ULL << b);
        ++result.num_sat_calls;
        if (finder.solver.SolveAssuming(
                finder.WithinAssumptions(candidate)) ==
            SolveStatus::kSat) {
          diff = finder.ExtractDiff();  // ⊆ candidate, maybe smaller
          shrunk = true;
          break;
        }
      }
    }
    result.minimal_diffs.push_back(diff);
    if (diff == 0) {
      // The empty difference dominates everything: ψ ∧ μ consistent.
      result.minimal_diffs = {0};
      break;
    }
    // Block every superset of diff: some bit of diff must be false.
    std::vector<Lit> block;
    ForEachBit(diff, [&](int i) { block.push_back(~finder.diffs[i]); });
    if (!finder.solver.AddClause(std::move(block))) break;
  }
  std::sort(result.minimal_diffs.begin(), result.minimal_diffs.end());

  // Phase 3: collect the models of μ that realize a minimal difference.
  JointProblem collector(psi, mu, num_terms);
  for (uint64_t diff : result.minimal_diffs) {
    std::vector<Lit> exact = collector.ExactAssumptions(diff);
    while (static_cast<int64_t>(result.models.size()) <= max_models) {
      ++result.num_sat_calls;
      if (collector.solver.SolveAssuming(exact) != SolveStatus::kSat) {
        break;
      }
      uint64_t x = collector.ExtractX(num_terms);
      result.models.push_back(x);
      // Block this x permanently (it is in the result regardless of
      // which minimal difference found it).
      std::vector<Lit> block;
      for (int i = 0; i < num_terms; ++i) {
        block.push_back(Lit(i, /*negated=*/((x >> i) & 1) != 0));
      }
      if (!collector.solver.AddClause(std::move(block))) break;
    }
    if (static_cast<int64_t>(result.models.size()) > max_models) break;
  }
  std::sort(result.models.begin(), result.models.end());
  result.models.erase(
      std::unique(result.models.begin(), result.models.end()),
      result.models.end());
  if (static_cast<int64_t>(result.models.size()) > max_models) {
    result.models.resize(max_models);
    result.truncated = true;
  }
  return result;
}

}  // namespace arbiter::solve
