#include "change/result_cache.h"

#include "logic/canonical.h"

namespace arbiter {

OperatorResultCache::OperatorResultCache(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  stats_.capacity = capacity_;
}

std::optional<OperatorResultCache::Value> OperatorResultCache::Lookup(
    const std::string& key) {
  MutexLock lock(&mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    return std::nullopt;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++stats_.hits;
  return it->second->second;
}

void OperatorResultCache::Insert(const std::string& key, Value value) {
  MutexLock lock(&mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(value);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (lru_.size() >= capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.evictions;
  }
  lru_.emplace_front(key, std::move(value));
  index_[key] = lru_.begin();
  stats_.size = lru_.size();
}

void OperatorResultCache::RecordSkip() {
  MutexLock lock(&mu_);
  ++stats_.skipped;
}

OperatorResultCache::Stats OperatorResultCache::stats() const {
  MutexLock lock(&mu_);
  Stats out = stats_;
  out.size = lru_.size();
  out.capacity = capacity_;
  return out;
}

void OperatorResultCache::Clear() {
  MutexLock lock(&mu_);
  lru_.clear();
  index_.clear();
  stats_ = Stats();
  stats_.capacity = capacity_;
}

Result<std::string> OperatorCacheKey(const std::string& backend_name,
                                     const std::string& op_name,
                                     const std::vector<int64_t>& metric,
                                     const Vocabulary& vocab,
                                     const Formula& base,
                                     const Formula& evidence) {
  Result<std::string> base_form = CanonicalFormText(base, vocab);
  if (!base_form.ok()) return base_form.status();
  Result<std::string> evidence_form = CanonicalFormText(evidence, vocab);
  if (!evidence_form.ok()) return evidence_form.status();
  std::string key = backend_name;
  key += '\x1f';
  key += op_name;
  key += '\x1f';
  for (int64_t w : metric) {
    key += std::to_string(w);
    key += ',';
  }
  key += '\x1f';
  // Ordered names: the cached Formula is over indices, so index
  // binding is part of the key.
  for (const std::string& name : vocab.names()) {
    key += name;
    key += ' ';
  }
  key += '\x1f';
  key += *base_form;
  key += '\x1f';
  key += *evidence_form;
  return key;
}

}  // namespace arbiter
