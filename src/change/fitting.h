#ifndef ARBITER_CHANGE_FITTING_H_
#define ARBITER_CHANGE_FITTING_H_

#include <memory>
#include <string>

#include "change/operator.h"
#include "model/distance_semantics.h"

/// \file fitting.h
/// Model-fitting operators (paper, Section 3) and arbitration.
///
/// Model-fitting selects from Mod(μ) the interpretations *overall*
/// closest to the whole of Mod(ψ):
///
///   Mod(ψ ▷ μ) = Min(Mod(μ), ≤ψ)      with ≤ψ a loyal assignment.
///
/// Two concrete pre-orders are provided:
///
///  * MaxFitting — the paper's printed example,
///    odist(ψ, I) = max_{J ∈ Mod(ψ)} dist(I, J).  NOTE: our exhaustive
///    checker (tests/postulates) shows this operator satisfies
///    (A1)–(A7) but *violates* (A8): the max aggregate fails loyalty
///    condition (2) (strict + weak need not stay strict under max).
///    The paper asserts loyalty without proof ("clearly"); the claim
///    holds for conditions (1) and (3) only.  See EXPERIMENTS.md (E4).
///
///  * SumFitting — odist replaced by Σ_{J ∈ Mod(ψ)} dist(I, J), i.e.
///    the Section 4 wdist with unit weights.  Sum preserves strictness,
///    the assignment is loyal, and the operator satisfies all of
///    (A1)–(A8).
///
/// Arbitration is the derived operator ψ Δ φ = (ψ ∨ φ) ▷ ⊤ (Section 3):
/// fit the full interpretation space to the combined information.
/// Arbitration is commutative by construction.
///
/// Edge cases per the axioms: ψ unsatisfiable → result unsatisfiable
/// (A2); μ unsatisfiable → result unsatisfiable (A1).

namespace arbiter {

/// Model-fitting over an arbitrary distance semantics: Change is
/// exactly SemanticArgmin(semantics, ψ, μ).  The concrete operators
/// below (and Dalal revision in revision.h) are fixed instances; this
/// class is the open end of the family — plug in a non-unit metric or
/// a different aggregator and every downstream consumer (arbitration,
/// the store, the postulate checkers) works unchanged.
class DistanceFittingOperator : public TheoryChangeOperator {
 public:
  /// `name` is reported by name(); defaults to "fitting(<semantics>)".
  explicit DistanceFittingOperator(DistanceSemantics semantics,
                                   std::string name = "");

  std::string name() const override { return name_; }
  OperatorFamily family() const override {
    return semantics_.aggregator == DistanceAggregator::kMin
               ? OperatorFamily::kRevision
               : OperatorFamily::kModelFitting;
  }
  const DistanceSemantics& semantics() const { return semantics_; }
  ModelSet Change(const ModelSet& psi, const ModelSet& mu) const override;

 private:
  DistanceSemantics semantics_;
  std::string name_;
};

/// Shared-ownership convenience used by the registry and tests.
std::shared_ptr<const DistanceFittingOperator> MakeFittingOperator(
    DistanceSemantics semantics, std::string name = "");

/// The paper's max-based model-fitting operator (Section 3).
class MaxFitting : public TheoryChangeOperator {
 public:
  std::string name() const override { return "revesz-max"; }
  OperatorFamily family() const override {
    return OperatorFamily::kModelFitting;
  }
  ModelSet Change(const ModelSet& psi, const ModelSet& mu) const override;
};

/// Sum-based model-fitting (unit-weight wdist; fully loyal).
class SumFitting : public TheoryChangeOperator {
 public:
  std::string name() const override { return "revesz-sum"; }
  OperatorFamily family() const override {
    return OperatorFamily::kModelFitting;
  }
  ModelSet Change(const ModelSet& psi, const ModelSet& mu) const override;
};

/// Arbitration derived from a model-fitting operator:
/// Change(ψ, φ) = fitting(ψ ∨ φ, ⊤).  Commutative by construction.
class ArbitrationOperator : public TheoryChangeOperator {
 public:
  /// Takes shared ownership of the underlying fitting operator.
  explicit ArbitrationOperator(
      std::shared_ptr<const TheoryChangeOperator> fitting);

  std::string name() const override {
    return "arbitration(" + fitting_->name() + ")";
  }
  OperatorFamily family() const override {
    return OperatorFamily::kArbitration;
  }
  ModelSet Change(const ModelSet& psi, const ModelSet& phi) const override;

 private:
  std::shared_ptr<const TheoryChangeOperator> fitting_;
};

/// Convenience: arbitration over max-based fitting (the paper's Δ).
ArbitrationOperator MakeMaxArbitration();
/// Convenience: arbitration over sum-based fitting.
ArbitrationOperator MakeSumArbitration();

/// A deliberately ψ-oblivious model-fitting operator used as a
/// positive control for Theorem 3.1: the assignment maps every
/// satisfiable ψ to one fixed total order (interpretations by integer
/// value), which satisfies loyalty conditions (1)–(3) vacuously, so
/// the operator provably satisfies all of (A1)–(A8).  It demonstrates
/// that the axiom class is nonempty even though the paper's
/// distance-based examples fall outside it (see fitting.h notes).
class LexFitting : public TheoryChangeOperator {
 public:
  std::string name() const override { return "lex-fitting"; }
  OperatorFamily family() const override {
    return OperatorFamily::kModelFitting;
  }
  ModelSet Change(const ModelSet& psi, const ModelSet& mu) const override;
};

}  // namespace arbiter

#endif  // ARBITER_CHANGE_FITTING_H_
