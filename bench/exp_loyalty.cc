// Experiment E4 detail: loyalty analysis of the paper's concrete
// assignments, and the Theorem 3.1 representation construction run
// against every operator family.
//
// The paper claims (Section 3) that ranking by odist is "clearly" a
// loyal assignment, and Section 4 claims the same for wdist.  This
// binary shows mechanically:
//   * min-, max-, and sum-distance assignments all violate loyalty
//     condition (2) in the plain union semantics;
//   * the proof's own pre-order construction recovers each operator's
//     ranking exactly (the representation step) — the failure is
//     loyalty, nothing else;
//   * the weighted semantics fixes it: wdist is additive over ⊔.

#include <cstdio>

#include "change/registry.h"
#include "change/weighted.h"
#include "kb/weighted_kb.h"
#include "model/loyal.h"
#include "postulates/representation.h"
#include "postulates/weighted_representation.h"
#include "util/random.h"

namespace {

using namespace arbiter;

void LoyaltyTable() {
  std::printf("== loyalty of distance-based assignments (exhaustive) ==\n");
  std::printf("%-28s %-6s %s\n", "assignment", "n", "verdict");
  const std::pair<const char*, PreorderAssignment> assignments[] = {
      {"min dist (Dalal/revision)", DalalPreorder},
      {"max dist (paper's odist)", OverallDistPreorder},
      {"sum dist (unit wdist)", SumDistPreorder},
  };
  for (const auto& [name, fn] : assignments) {
    for (int n = 2; n <= 3; ++n) {
      auto violation = CheckLoyalty(fn, n);
      std::printf("%-28s %-6d %s\n", name, n,
                  violation ? violation->Describe().c_str() : "LOYAL");
    }
  }
  PreorderAssignment constant = [](const ModelSet& psi) {
    return TotalPreorder(psi.num_terms(),
                         [](uint64_t b) { return static_cast<double>(b); });
  };
  for (int n = 2; n <= 3; ++n) {
    auto violation = CheckLoyalty(constant, n);
    std::printf("%-28s %-6d %s\n", "constant order (control)", n,
                violation ? violation->Describe().c_str() : "LOYAL");
  }
}

void RepresentationTable() {
  std::printf("\n== Theorem 3.1 construction, per operator (n=2) ==\n");
  std::printf("%-18s %-10s %-12s %-8s %-16s %s\n", "operator", "preorder",
              "transitive", "loyal", "representable", "model-fitting?");
  for (const char* name :
       {"dalal", "satoh", "winslett", "forbus", "revesz-max",
        "revesz-sum", "lex-fitting"}) {
    RepresentationReport report =
        CheckRepresentation(MakeOperator(name).ValueOrDie(), 2);
    std::printf("%-18s %-10s %-12s %-8s %-16s %s\n", name,
                report.preorders_total ? "total" : "NOT total",
                report.preorders_transitive ? "yes" : "no",
                report.assignment_loyal ? "yes" : "no",
                report.representation_exact ? "exact" : "mismatch",
                report.IsModelFitting() ? "YES" : "no");
  }
}

void WeightedAdditivity() {
  std::printf("\n== the weighted fix: wdist is additive over v ==\n");
  Rng rng(99);
  WeightedKnowledgeBase a(3), b(3);
  for (uint64_t m = 0; m < 8; ++m) {
    if (rng.NextBool()) a.SetWeight(m, 1 + rng.NextBelow(5));
    if (rng.NextBool()) b.SetWeight(m, 1 + rng.NextBelow(5));
  }
  WeightedKnowledgeBase both = a.Or(b);
  bool additive = true;
  for (uint64_t x = 0; x < 8; ++x) {
    if (both.WeightedDistTo(x) !=
        a.WeightedDistTo(x) + b.WeightedDistTo(x)) {
      additive = false;
    }
  }
  std::printf("wdist(a v b, .) == wdist(a, .) + wdist(b, .): %s\n",
              additive ? "yes (strictness survives -> loyal -> F1-F8)"
                       : "NO");

  // Theorem 4.1's construction end-to-end.
  WdistFitting op;
  WeightedRepresentationReport report =
      CheckWeightedRepresentation(op, 3, /*num_samples=*/60, /*seed=*/7);
  std::printf(
      "Theorem 4.1 construction on wdist-fitting (n=3, 60 samples): "
      "preorders %s, loyal %s, representation %s -> weighted "
      "model-fitting: %s\n",
      report.preorders_ok ? "ok" : "BROKEN",
      report.assignment_loyal ? "yes" : "NO",
      report.representation_exact ? "exact" : "MISMATCH",
      report.IsWeightedModelFitting() ? "YES" : "no");
}

}  // namespace

int main() {
  LoyaltyTable();
  RepresentationTable();
  WeightedAdditivity();
  return 0;
}
