#ifndef ARBITER_UTIL_THREAD_ANNOTATIONS_H_
#define ARBITER_UTIL_THREAD_ANNOTATIONS_H_

/// \file thread_annotations.h
/// Macro shims for Clang's Thread Safety Analysis.
///
/// Under clang these expand to the `capability`/`guarded_by`/... family
/// of attributes, which lets `-Wthread-safety -Wthread-safety-beta`
/// prove at compile time that every access to a `GUARDED_BY` field
/// happens with its mutex held and that `ACQUIRED_BEFORE` edges are
/// respected.  Under GCC/MSVC every macro expands to nothing, so the
/// annotations are free documentation there; the CI `thread-safety`
/// job compiles with clang and `-Werror=thread-safety`, making the
/// annotations a machine-checked invariant rather than a comment.
///
/// Use these only through the wrappers in util/sync.h — a CI grep
/// (tools/check_sync_usage.sh) rejects raw `std::mutex` outside it.
/// Naming follows the Clang documentation's mutex.h example so the
/// attribute semantics can be looked up verbatim:
/// https://clang.llvm.org/docs/ThreadSafetyAnalysis.html

#if defined(__clang__)
#define ARBITER_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define ARBITER_THREAD_ANNOTATION__(x)  // no-op outside clang
#endif

/// Declares a class to be a capability (a lock, in our usage).
#define CAPABILITY(x) ARBITER_THREAD_ANNOTATION__(capability(x))

/// Declares an RAII class that acquires in its constructor and
/// releases in its destructor.
#define SCOPED_CAPABILITY ARBITER_THREAD_ANNOTATION__(scoped_lockable)

/// Field may only be read/written with the given capability held.
#define GUARDED_BY(x) ARBITER_THREAD_ANNOTATION__(guarded_by(x))

/// Pointer field whose *pointee* may only be dereferenced with the
/// given capability held (the pointer itself is unguarded).
#define PT_GUARDED_BY(x) ARBITER_THREAD_ANNOTATION__(pt_guarded_by(x))

/// Lock-ordering edges: this capability must be acquired before/after
/// the listed ones.  Enforced under -Wthread-safety-beta; the runtime
/// LockRank registry (util/sync.h) checks the same order dynamically
/// in debug builds.
#define ACQUIRED_BEFORE(...) \
  ARBITER_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
  ARBITER_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))

/// The function may only be called with the listed capabilities held
/// (exclusively / shared).
#define REQUIRES(...) \
  ARBITER_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  ARBITER_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))

/// Legacy spellings kept for grep-ability with older codebases.
#define EXCLUSIVE_LOCKS_REQUIRED(...) REQUIRES(__VA_ARGS__)
#define SHARED_LOCKS_REQUIRED(...) REQUIRES_SHARED(__VA_ARGS__)

/// The function acquires/releases the listed capabilities (itself when
/// the list is empty, as on Mutex::Lock).
#define ACQUIRE(...) \
  ARBITER_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  ARBITER_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) \
  ARBITER_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  ARBITER_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))

/// The function attempts the acquisition; the first argument is the
/// return value that signals success.
#define TRY_ACQUIRE(...) \
  ARBITER_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  ARBITER_THREAD_ANNOTATION__(try_acquire_shared_capability(__VA_ARGS__))

/// The function must NOT be called with the listed capabilities held
/// (guards against self-deadlock on non-reentrant locks).
#define EXCLUDES(...) ARBITER_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// Asserts (at runtime, for the analysis) that the capability is held.
#define ASSERT_CAPABILITY(x) ARBITER_THREAD_ANNOTATION__(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) \
  ARBITER_THREAD_ANNOTATION__(assert_shared_capability(x))

/// The function returns a reference to the given capability.
#define RETURN_CAPABILITY(x) ARBITER_THREAD_ANNOTATION__(lock_returned(x))

/// Escape hatch: disables the analysis for one function.  Every use
/// must carry a comment explaining why the protocol cannot be
/// expressed (there are currently none in src/).
#define NO_THREAD_SAFETY_ANALYSIS \
  ARBITER_THREAD_ANNOTATION__(no_thread_safety_analysis)

#endif  // ARBITER_UTIL_THREAD_ANNOTATIONS_H_
