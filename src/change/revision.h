#ifndef ARBITER_CHANGE_REVISION_H_
#define ARBITER_CHANGE_REVISION_H_

#include "change/operator.h"

/// \file revision.h
/// Revision operators from the literature the paper compares against
/// (Section 1 and Theorem 3.2 discussion): Dalal, Satoh, Weber, and
/// Borgida.  All are implemented from their standard model-theoretic
/// definitions over a propositional vocabulary.
///
/// Shared edge-case conventions (matching [KM91]):
///  * μ unsatisfiable  → result unsatisfiable (R1).
///  * ψ unsatisfiable  → result is Mod(μ): with nothing to preserve,
///    every model of the new information is minimal (keeps (R3)).

namespace arbiter {

/// Dalal [Dal88]: Mod(ψ ∘ μ) = models of μ at minimum Hamming distance
/// from Mod(ψ), i.e. Min(Mod(μ), ≤ψ) with rank dist(ψ, I).
class DalalRevision : public TheoryChangeOperator {
 public:
  std::string name() const override { return "dalal"; }
  OperatorFamily family() const override {
    return OperatorFamily::kRevision;
  }
  ModelSet Change(const ModelSet& psi, const ModelSet& mu) const override;
};

/// Satoh [Sat88]: keep J ∈ Mod(μ) whose symmetric difference with some
/// I ∈ Mod(ψ) is set-inclusion minimal among all such differences.
class SatohRevision : public TheoryChangeOperator {
 public:
  std::string name() const override { return "satoh"; }
  OperatorFamily family() const override {
    return OperatorFamily::kRevision;
  }
  ModelSet Change(const ModelSet& psi, const ModelSet& mu) const override;
};

/// Weber [Web86]: let U be the union of Satoh's minimal difference
/// sets; keep J ∈ Mod(μ) agreeing with some I ∈ Mod(ψ) outside U.
class WeberRevision : public TheoryChangeOperator {
 public:
  std::string name() const override { return "weber"; }
  OperatorFamily family() const override {
    return OperatorFamily::kRevision;
  }
  ModelSet Change(const ModelSet& psi, const ModelSet& mu) const override;
};

/// Full-meet ("drastic") revision: ψ ∧ μ when consistent, else μ — the
/// least-committal AGM operator (all models of μ are equally close).
/// Included as the degenerate baseline in the compliance matrices.
class FullMeetRevision : public TheoryChangeOperator {
 public:
  std::string name() const override { return "full-meet"; }
  OperatorFamily family() const override {
    return OperatorFamily::kRevision;
  }
  ModelSet Change(const ModelSet& psi, const ModelSet& mu) const override;
};

/// Borgida [Bor85]: if ψ ∧ μ is satisfiable the result is Mod(ψ ∧ μ);
/// otherwise each model of ψ is changed independently to its
/// set-inclusion-closest models of μ (update-like fallback).
class BorgidaRevision : public TheoryChangeOperator {
 public:
  std::string name() const override { return "borgida"; }
  OperatorFamily family() const override {
    return OperatorFamily::kRevision;
  }
  ModelSet Change(const ModelSet& psi, const ModelSet& mu) const override;
};

}  // namespace arbiter

#endif  // ARBITER_CHANGE_REVISION_H_
