#ifndef ARBITER_MODEL_DISTANCE_SEMANTICS_H_
#define ARBITER_MODEL_DISTANCE_SEMANTICS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "model/model_set.h"
#include "util/bit.h"

/// \file distance_semantics.h
/// The pluggable distance layer: a *distance semantics* is a metric on
/// interpretations crossed with an aggregator over Mod(ψ).
///
///   * metric      — weighted Hamming distance with per-atom weights
///                   m_b >= 0; the empty weight vector means unit
///                   weights, i.e. Dalal's |I Δ J|.  (Weighted Hamming
///                   is the decomposable family both backends exploit;
///                   Lehmann–Magidor–Schlechta's distance semantics
///                   shows the paper's operators are two points in this
///                   family.)
///   * aggregator  — how per-model distances combine over Mod(ψ):
///                   min (Dalal revision), max (Revesz odist,
///                   Section 3), Σ (sdist, unit-weight wdist), or
///                   weighted Σ (Section 4 wdist, with a per-model
///                   weight function).
///
/// `SemanticArgmin` is the shared enumeration kernel: every concrete
/// operator in src/change/ (Dalal revision, max-/sum-fitting,
/// arbitration, wdist fitting) is a thin delegate to it, and the
/// enumerating `DistanceBackend` is exactly this kernel behind the
/// registry.  Edge conventions (matching the operators' axioms):
/// Mod(μ) empty → empty; Mod(ψ) empty → Mod(μ) for the min aggregator
/// (revision convention: ψ unsatisfiable ⇒ result is μ) and empty for
/// max/Σ/weighted-Σ (model-fitting (A2)).

namespace arbiter {

/// How per-model distances aggregate over Mod(ψ).
enum class DistanceAggregator { kMin, kMax, kSum, kWeightedSum };

/// Stable names: "min", "max", "sum", "weighted-sum".
std::string AggregatorName(DistanceAggregator aggregator);

/// A metric × aggregator pair (plus the per-model weight function for
/// the weighted-Σ aggregator).  Plain value type; cheap to copy.
struct DistanceSemantics {
  DistanceAggregator aggregator = DistanceAggregator::kMax;

  /// Per-atom metric weights m_b >= 0.  Empty means unit weights (the
  /// Dalal metric).  Entries beyond the vocabulary are ignored; atoms
  /// beyond the vector's size weigh 1.
  std::vector<int64_t> metric;

  /// Per-model weight for kWeightedSum (e.g. the vote counts of the
  /// paper's Example 4.1).  Ignored by the other aggregators.
  std::function<double(uint64_t)> model_weight;

  /// True iff the metric is (effectively) unit weights.
  bool unit_metric() const {
    for (int64_t w : metric) {
      if (w != 1) return false;
    }
    return true;
  }

  /// Weight of atom b under the metric (1 when unweighted).
  int64_t AtomWeight(int b) const {
    return b < static_cast<int>(metric.size()) ? metric[b] : 1;
  }

  /// E.g. "max/dalal", "sum/weighted-metric".
  std::string DebugName() const;
};

/// Factories for the paper's semantics (optionally non-Dalal metric).
DistanceSemantics MinSemantics(std::vector<int64_t> metric = {});
DistanceSemantics MaxSemantics(std::vector<int64_t> metric = {});
DistanceSemantics SumSemantics(std::vector<int64_t> metric = {});
DistanceSemantics WeightedSumSemantics(
    std::function<double(uint64_t)> model_weight,
    std::vector<int64_t> metric = {});

/// Weighted Hamming distance Σ_b m_b·[a_b ≠ b_b].  Unit metric
/// degenerates to Dist(a, b) = PopCount(a ^ b).
int64_t MetricDist(const DistanceSemantics& semantics, uint64_t a,
                   uint64_t b);

/// Σ_b m_b over the n-atom vocabulary: the diameter of the metric
/// space (n for the unit metric).
int64_t MetricDiameter(const DistanceSemantics& semantics, int num_terms);

/// min_{J ∈ Mod(ψ)} metric-dist(I, J).  Requires psi nonempty.
int64_t MetricMinDist(const DistanceSemantics& semantics,
                      const ModelSet& psi, uint64_t interpretation);

/// max_{J ∈ Mod(ψ)} metric-dist(I, J), pruned: exact whenever the
/// result is < bound (same contract as OverallDistBounded).  Requires
/// psi nonempty.
int64_t MetricOverallDistBounded(const DistanceSemantics& semantics,
                                 const ModelSet& psi,
                                 uint64_t interpretation, int64_t bound);

/// The shared enumeration kernel: Min(Mod(μ), ≤ψ) where ≤ψ ranks by
/// the aggregated metric distance to Mod(ψ).  Bit-identical to the
/// serial scan at any thread count (inherits the MinByIntBounded
/// guarantees).  kWeightedSum requires `model_weight` to be set.
ModelSet SemanticArgmin(const DistanceSemantics& semantics,
                        const ModelSet& psi, const ModelSet& mu);

}  // namespace arbiter

#endif  // ARBITER_MODEL_DISTANCE_SEMANTICS_H_
