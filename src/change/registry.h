#ifndef ARBITER_CHANGE_REGISTRY_H_
#define ARBITER_CHANGE_REGISTRY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "change/operator.h"
#include "util/status.h"

/// \file registry.h
/// Name-based construction of the built-in theory change operators.
/// Names: "dalal", "satoh", "weber", "borgida", "winslett", "forbus",
/// "revesz-max", "revesz-sum", "arbitration-max", "arbitration-sum".

namespace arbiter {

/// Creates the operator registered under `name`.
Result<std::shared_ptr<const TheoryChangeOperator>> MakeOperator(
    const std::string& name);

/// Creates the operator registered under `name`, computing distances
/// under the per-atom `metric` (empty = unit weights = the overload
/// above).  Only the distance-based operators support a non-unit
/// metric: "dalal", "forbus", "revesz-max", "revesz-sum",
/// "arbitration-max", "arbitration-sum".  Other names return
/// InvalidArgument when the metric is non-unit.
Result<std::shared_ptr<const TheoryChangeOperator>> MakeOperator(
    const std::string& name, const std::vector<int64_t>& metric);

/// Names of all registered operators, in a stable order.
std::vector<std::string> RegisteredOperatorNames();

/// Creates every registered operator (for compliance matrices).
std::vector<std::shared_ptr<const TheoryChangeOperator>> AllOperators();

}  // namespace arbiter

#endif  // ARBITER_CHANGE_REGISTRY_H_
