// Large-scale arbitration via SAT: two negotiating parties with
// positions over 32 issues.  2^32 interpretations rule out
// enumeration; the CEGAR min-max engine (src/solve/) finds the
// compromise directly with a CDCL solver and cardinality constraints.
//
// Build & run:  ./build/examples/treaty_negotiation

#include <cstdio>
#include <vector>

#include "logic/formula.h"
#include "solve/arbitration_sat.h"
#include "solve/dalal_sat.h"
#include "util/bit.h"

int main() {
  using namespace arbiter;

  const int kIssues = 32;

  // Party A wants issues 0..23 enacted and 24..31 blocked, but is
  // flexible between two platforms.
  std::vector<Formula> a_hard;
  for (int i = 0; i < 24; ++i) a_hard.push_back(Formula::Var(i));
  for (int i = 24; i < kIssues; ++i) a_hard.push_back(Not(Formula::Var(i)));
  Formula party_a = And(a_hard);

  // Party B wants the opposite on issues 8..31 and agrees on 0..7.
  std::vector<Formula> b_hard;
  for (int i = 0; i < 8; ++i) b_hard.push_back(Formula::Var(i));
  for (int i = 8; i < kIssues; ++i) {
    // B flips A's position on issues 8..23, wants 24..31 enacted.
    if (i < 24) {
      b_hard.push_back(Not(Formula::Var(i)));
    } else {
      b_hard.push_back(Formula::Var(i));
    }
  }
  Formula party_b = And(b_hard);

  std::printf("negotiating %d issues (2^%d interpretations)\n", kIssues,
              kIssues);
  std::printf("parties agree on issues 0-7 and clash on 8-31 (24 issues)\n");

  solve::CegarResult treaty =
      solve::CegarMaxArbitration(party_a, party_b, kIssues,
                                 /*max_models=*/3);
  std::printf("\noptimal max-regret per party: %d flipped issues\n",
              treaty.optimal_value);
  std::printf("CEGAR iterations: %d\n", treaty.iterations);
  std::printf("one optimal treaty (bitmask): 0x%08llx\n",
              static_cast<unsigned long long>(treaty.optimal_model));
  // A's ideal outcome is 0x00FFFFFF; contested issues are bits 8..31.
  const uint64_t contested = LowMask(32) ^ LowMask(8);
  std::printf("issues granted to A (of the 24 contested): %d\n",
              24 - PopCount((treaty.optimal_model ^ 0x00FFFFFFu) &
                            contested));

  // For comparison: if party B's position simply *overrode* A's
  // (revision), A would be ignored entirely.
  solve::SatRevisionResult overridden =
      solve::SatDalalRevise(party_a, party_b, kIssues, /*max_models=*/2);
  std::printf("\nrevision instead (B overrides A): distance %d, %zu "
              "model(s) — B's platform verbatim\n",
              overridden.min_distance, overridden.models.size());
  return 0;
}
