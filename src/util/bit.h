#ifndef ARBITER_UTIL_BIT_H_
#define ARBITER_UTIL_BIT_H_

#include <bit>
#include <cstdint>

/// \file bit.h
/// Bit-manipulation helpers used by interpretation and model-set code.

namespace arbiter {

/// Number of set bits in x.
inline int PopCount(uint64_t x) { return std::popcount(x); }

/// Index (0-based) of the lowest set bit.  x must be nonzero.
inline int LowestBit(uint64_t x) { return std::countr_zero(x); }

/// Clears the lowest set bit of x.
inline uint64_t ClearLowestBit(uint64_t x) { return x & (x - 1); }

/// True iff x is a power of two (exactly one bit set).
inline bool IsSingleBit(uint64_t x) { return x != 0 && (x & (x - 1)) == 0; }

/// A mask with the n lowest bits set.  Requires 0 <= n <= 64.
inline uint64_t LowMask(int n) {
  return n >= 64 ? ~0ULL : ((1ULL << n) - 1);
}

/// Calls fn(bit_index) for each set bit of x, in increasing order.
template <typename Fn>
inline void ForEachBit(uint64_t x, Fn fn) {
  while (x != 0) {
    fn(LowestBit(x));
    x = ClearLowestBit(x);
  }
}

}  // namespace arbiter

#endif  // ARBITER_UTIL_BIT_H_
