#include "change/operator.h"

#include "util/logging.h"

namespace arbiter {

const char* OperatorFamilyName(OperatorFamily family) {
  switch (family) {
    case OperatorFamily::kRevision:
      return "revision";
    case OperatorFamily::kUpdate:
      return "update";
    case OperatorFamily::kModelFitting:
      return "model-fitting";
    case OperatorFamily::kArbitration:
      return "arbitration";
  }
  return "unknown";
}

KnowledgeBase TheoryChangeOperator::Apply(const KnowledgeBase& psi,
                                          const KnowledgeBase& mu) const {
  ARBITER_CHECK(psi.num_terms() == mu.num_terms());
  return KnowledgeBase::FromModels(Change(psi.models(), mu.models()));
}

}  // namespace arbiter
