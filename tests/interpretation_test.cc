// Tests for Interpretation: bitmask semantics and Dalal's distance.

#include "logic/interpretation.h"

#include <gtest/gtest.h>

namespace arbiter {
namespace {

TEST(InterpretationTest, EmptyByDefault) {
  Interpretation i(3);
  EXPECT_EQ(i.bits(), 0u);
  EXPECT_EQ(i.Cardinality(), 0);
  for (int t = 0; t < 3; ++t) EXPECT_FALSE(i.Holds(t));
}

TEST(InterpretationTest, BitsAreMaskedToVocabulary) {
  Interpretation i(2, /*num_terms=*/1);  // bit 1 is outside
  EXPECT_EQ(i.bits(), 0u);
}

TEST(InterpretationTest, WithSetsAndClears) {
  Interpretation i(3);
  Interpretation j = i.With(1, true);
  EXPECT_TRUE(j.Holds(1));
  EXPECT_FALSE(i.Holds(1)) << "With must not mutate";
  EXPECT_FALSE(j.With(1, false).Holds(1));
}

TEST(InterpretationTest, DistanceMatchesPaperExample) {
  // Section 2: I = {A,B,C}, J = {C,D,E} => dist = 4.
  auto vocab = Vocabulary::FromNames({"A", "B", "C", "D", "E"}).ValueOrDie();
  auto i = Interpretation::FromNames(vocab, {"A", "B", "C"}).ValueOrDie();
  auto j = Interpretation::FromNames(vocab, {"C", "D", "E"}).ValueOrDie();
  EXPECT_EQ(i.DistanceTo(j), 4);
  EXPECT_EQ(j.DistanceTo(i), 4);  // symmetric
}

TEST(InterpretationTest, DistanceIsAMetric) {
  const int n = 4;
  for (uint64_t a = 0; a < 16; ++a) {
    Interpretation ia(a, n);
    EXPECT_EQ(ia.DistanceTo(ia), 0);
    for (uint64_t b = 0; b < 16; ++b) {
      Interpretation ib(b, n);
      EXPECT_EQ(ia.DistanceTo(ib), ib.DistanceTo(ia));
      if (a != b) {
        EXPECT_GT(ia.DistanceTo(ib), 0);
      }
      for (uint64_t c = 0; c < 16; ++c) {
        Interpretation ic(c, n);
        EXPECT_LE(ia.DistanceTo(ic),
                  ia.DistanceTo(ib) + ib.DistanceTo(ic));
      }
    }
  }
}

TEST(InterpretationTest, FromNamesUnknownTermFails) {
  auto vocab = Vocabulary::FromNames({"A"}).ValueOrDie();
  EXPECT_FALSE(Interpretation::FromNames(vocab, {"B"}).ok());
}

TEST(InterpretationTest, ToStringListsTrueTerms) {
  auto vocab = Vocabulary::FromNames({"S", "D", "Q"}).ValueOrDie();
  Interpretation i(0b011, 3);
  EXPECT_EQ(i.ToString(vocab), "{S, D}");
  EXPECT_EQ(Interpretation(0, 3).ToString(vocab), "{}");
}

TEST(InterpretationTest, ToBitStringLsbFirst) {
  EXPECT_EQ(Interpretation(0b001, 3).ToBitString(), "100");
  EXPECT_EQ(Interpretation(0b100, 3).ToBitString(), "001");
}

TEST(InterpretationTest, ComparisonOperators) {
  Interpretation a(1, 3), b(2, 3), a2(1, 3);
  EXPECT_EQ(a, a2);
  EXPECT_NE(a, b);
  EXPECT_LT(a, b);
}

TEST(InterpretationTest, HammingDistanceOnRawMasks) {
  EXPECT_EQ(HammingDistance(0b1010, 0b0110), 2);
  EXPECT_EQ(HammingDistance(0, 0), 0);
}

}  // namespace
}  // namespace arbiter
