#ifndef ARBITER_FOL_GROUND_H_
#define ARBITER_FOL_GROUND_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "logic/formula.h"
#include "logic/vocabulary.h"
#include "util/status.h"

/// \file ground.h
/// A finite-domain relational front end — the paper's first open
/// problem (§5: "extend arbitration from propositional to first-
/// order") made executable for the decidable finite-domain case.
///
/// Users declare a domain of constants and a set of relations; ground
/// atoms rel(c1, ..., ck) become propositional terms, and quantifiers
/// expand over the domain:
///
///   Grounder g({"ann", "bob"});
///   g.DeclareRelation("likes", 2);
///   auto f = g.Ground("forall x. exists y. likes(x, y)");
///
/// The result is an ordinary Formula over the grounder's vocabulary,
/// so every operator in the library (revision, update, arbitration,
/// merging, the SAT-based solvers) applies unchanged to relational
/// knowledge bases.
///
/// Syntax (extends the propositional grammar of logic/parser.h):
///
///   atom        := relation '(' term {',' term} ')' | proposition
///   term        := constant | variable       (variables are the
///                                             identifiers bound by an
///                                             enclosing quantifier)
///   quantified  := ('forall' | 'exists') var '.' formula
///
/// Quantifiers bind loosest; the propositional connectives keep their
/// precedences.  Nullary relations act as plain propositions.

namespace arbiter::fol {

/// A first-order term: either a declared constant or a bound variable.
struct Term {
  bool is_variable = false;
  std::string name;
};

/// The intermediate first-order AST produced by the parser.
class FolFormula;
using FolPtr = std::shared_ptr<const FolFormula>;

class FolFormula {
 public:
  enum class Kind {
    kAtom,
    kNot,
    kAnd,
    kOr,
    kImplies,
    kIff,
    kForall,
    kExists,
    kTrue,
    kFalse,
  };

  Kind kind;
  // kAtom:
  std::string relation;
  std::vector<Term> args;
  // connectives:
  std::vector<FolPtr> children;
  // quantifiers:
  std::string bound_variable;
};

/// Grounds finite-domain relational formulas to propositional ones.
class Grounder {
 public:
  /// Creates a grounder over the given constants (order is fixed).
  explicit Grounder(const std::vector<std::string>& constants);

  /// Declares a relation of the given arity (>= 0).  Ground atoms are
  /// registered in the vocabulary lazily, in lexicographic argument
  /// order on first use.
  Status DeclareRelation(const std::string& name, int arity);

  /// Pre-registers every ground atom of every declared relation so the
  /// vocabulary is complete and stable before any formula is parsed.
  /// Fails if the total atom count exceeds the vocabulary capacity.
  Status MaterializeAtoms();

  /// Parses and grounds a formula.
  Result<Formula> Ground(const std::string& text);

  /// Parses to the intermediate first-order AST without grounding.
  Result<FolPtr> ParseFol(const std::string& text) const;

  /// Grounds an already-parsed AST.
  Result<Formula> GroundAst(const FolPtr& ast);

  /// Name of the propositional term for rel(args...); registers it if
  /// new.  All args must be constants.
  Result<int> GroundAtom(const std::string& relation,
                         const std::vector<std::string>& constant_args);

  const Vocabulary& vocabulary() const { return vocab_; }
  const std::vector<std::string>& constants() const { return constants_; }
  int NumRelations() const { return static_cast<int>(relations_.size()); }

 private:
  Result<Formula> GroundWithEnv(
      const FolFormula& node,
      std::map<std::string, std::string>* env);

  std::vector<std::string> constants_;
  std::map<std::string, int> relation_arity_;
  std::vector<std::string> relations_;  // declaration order
  Vocabulary vocab_;
};

}  // namespace arbiter::fol

#endif  // ARBITER_FOL_GROUND_H_
