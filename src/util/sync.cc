#include "util/sync.h"

#if ARBITER_LOCK_RANK

#if defined(__GLIBC__)
#include <execinfo.h>
#include <unistd.h>
#define ARBITER_SYNC_HAVE_BACKTRACE 1
#else
#define ARBITER_SYNC_HAVE_BACKTRACE 0
#endif

#include <cstdio>
#include <cstdlib>
#include <type_traits>

namespace arbiter::sync_internal {

namespace {

constexpr int kMaxFrames = 24;

/// One lock the calling thread currently holds.
struct Held {
  const void* mu;
  int rank;
  const char* name;
  bool try_lock;
  void* frames[kMaxFrames];
  int depth;
};

/// A thread holding this many locks at once is a bug in its own right.
constexpr int kMaxHeld = 32;

/// The registry is per-thread: lock *order* is a property of one
/// thread's nesting, so no cross-thread state (or lock!) is needed.
///
/// Deliberately a trivially-destructible POD array, NOT a
/// std::vector: a vector would register a TLS destructor, and
/// atexit-destroyed statics (e.g. a global ThreadPool) still lock
/// mutexes *after* the main thread's TLS destructors have run —
/// a use-after-free the TSan job caught on first contact.
static_assert(std::is_trivially_destructible_v<Held>);
thread_local Held t_held[kMaxHeld];
thread_local int t_held_count = 0;

void PrintFrames(void* const* frames, int depth) {
#if ARBITER_SYNC_HAVE_BACKTRACE
  backtrace_symbols_fd(frames, depth, STDERR_FILENO);
#else
  (void)frames;
  (void)depth;
  std::fprintf(stderr, "  <no backtrace support on this platform>\n");
#endif
}

[[noreturn]] void Die(const Held& blocker, int rank, const char* name,
                      const char* what) {
  std::fprintf(stderr,
               "LockRank violation: %s\n"
               "  acquiring: \"%s\" (rank %d)\n"
               "  while holding (%d lock%s, acquisition order):\n",
               what, name, rank, t_held_count,
               t_held_count == 1 ? "" : "s");
  for (int i = 0; i < t_held_count; ++i) {
    std::fprintf(stderr, "    \"%s\" (rank %d)%s\n", t_held[i].name,
                 t_held[i].rank, t_held[i].try_lock ? " [try-lock]" : "");
  }
  std::fprintf(stderr, "  conflicting \"%s\" was acquired at:\n",
               blocker.name);
  PrintFrames(blocker.frames, blocker.depth);
  std::fprintf(stderr, "  this acquisition at:\n");
#if ARBITER_SYNC_HAVE_BACKTRACE
  void* now[kMaxFrames];
  PrintFrames(now, backtrace(now, kMaxFrames));
#endif
  std::abort();
}

}  // namespace

void NoteAcquire(const void* mu, int rank, const char* name, bool try_lock) {
  if (!try_lock) {
    for (int i = 0; i < t_held_count; ++i) {
      const Held& held = t_held[i];
      if (held.mu == mu) {
        Die(held, rank, name,
            "relocking a mutex this thread already holds (self-deadlock)");
      }
      if (held.rank >= rank) {
        Die(held, rank, name,
            "acquisition out of rank order (possible deadlock cycle)");
      }
    }
  }
  if (t_held_count == kMaxHeld) {
    std::fprintf(stderr,
                 "LockRank violation: thread holds %d locks at once "
                 "(acquiring \"%s\")\n",
                 kMaxHeld, name);
    std::abort();
  }
  Held& held = t_held[t_held_count++];
  held.mu = mu;
  held.rank = rank;
  held.name = name;
  held.try_lock = try_lock;
  held.depth = 0;
#if ARBITER_SYNC_HAVE_BACKTRACE
  held.depth = backtrace(held.frames, kMaxFrames);
#endif
}

void NoteRelease(const void* mu) {
  for (int i = t_held_count - 1; i >= 0; --i) {
    if (t_held[i].mu != mu) continue;
    for (int j = i; j + 1 < t_held_count; ++j) t_held[j] = t_held[j + 1];
    --t_held_count;
    return;
  }
  std::fprintf(stderr,
               "LockRank violation: releasing a mutex this thread does not "
               "hold\n");
  std::abort();
}

int HeldLockCountForTesting() { return t_held_count; }

}  // namespace arbiter::sync_internal

#endif  // ARBITER_LOCK_RANK
