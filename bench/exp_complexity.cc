// Experiment E8 (DESIGN.md): the Section 5 open problem — compare the
// computational cost of revision, update, and arbitration empirically.
//
// Two regimes:
//  1. Enumeration (n <= 20): every operator is polynomial in |Mod|,
//     but |Mod| is exponential in n.  We time all operator families on
//     random model sets of growing vocabulary size.
//  2. SAT-based (n up to 48): Dalal revision (NP oracle, binary
//     search) vs max-arbitration (Sigma_2-flavoured min-max, CEGAR).
//     The gap between the two illustrates the complexity separation
//     the literature later proved (revision in Delta_2^p vs
//     arbitration-style min-max being Sigma_2^p-hard).

#include <chrono>
#include <cstdio>
#include <vector>

#include "change/fitting.h"
#include "change/registry.h"
#include "change/revision.h"
#include "change/update.h"
#include "logic/generator.h"
#include "solve/arbitration_sat.h"
#include "solve/dalal_sat.h"

namespace {

using namespace arbiter;
using Clock = std::chrono::steady_clock;

double MsSince(Clock::time_point start) {
  return std::chrono::duration<double, std::milli>(Clock::now() - start)
      .count();
}

void EnumerationRegime() {
  std::printf("== E8a: enumeration regime (time per Change call, ms) ==\n");
  std::printf("%-4s", "n");
  for (const auto& op : AllOperators()) {
    if (op->name().rfind("arbitration", 0) == 0) continue;
    std::printf("%12s", op->name().c_str());
  }
  std::printf("%12s\n", "arb-max");
  Rng rng(1);
  for (int n = 6; n <= 12; n += 2) {
    // Random model sets with ~15% density (the cubic per-model update
    // operators dominate beyond this).
    const uint64_t space = 1ULL << n;
    std::vector<uint64_t> mp, mm;
    for (uint64_t m = 0; m < space; ++m) {
      if (rng.NextBool(0.15)) mp.push_back(m);
      if (rng.NextBool(0.15)) mm.push_back(m);
    }
    ModelSet psi = ModelSet::FromMasks(mp, n);
    ModelSet mu = ModelSet::FromMasks(mm, n);
    std::printf("%-4d", n);
    for (const auto& op : AllOperators()) {
      if (op->name().rfind("arbitration", 0) == 0) continue;
      auto start = Clock::now();
      ModelSet result = op->Change(psi, mu);
      std::printf("%12.3f", MsSince(start));
      (void)result;
    }
    ArbitrationOperator arb = MakeMaxArbitration();
    auto start = Clock::now();
    ModelSet result = arb.Change(psi, mu);
    (void)result;
    std::printf("%12.3f\n", MsSince(start));
  }
  std::printf("\n");
}

void SatRegime() {
  std::printf(
      "== E8b: SAT regime — Dalal revision vs CEGAR max-arbitration ==\n");
  std::printf("random 3-CNF pairs (clause/variable ratio 2.0):\n");
  std::printf("%-6s %14s %14s %12s %12s %10s\n", "n", "revise(ms)",
              "arbitrate(ms)", "rev dist", "arb value", "cegar its");
  for (int n = 10; n <= 16; n += 2) {
    Rng rng(7 * n);
    // psi / mu: random 3-CNF at ratio 2.0 (under-constrained: many
    // models, so the distance optimization does real work).
    Formula psi = RandomKCnf(&rng, n, 2 * n, 3);
    Formula mu = RandomKCnf(&rng, n, 2 * n, 3);
    auto start = Clock::now();
    solve::SatRevisionResult rev =
        solve::SatDalalRevise(psi, mu, n, /*max_models=*/1);
    double rev_ms = MsSince(start);
    start = Clock::now();
    solve::CegarResult arb =
        solve::CegarMaxArbitration(psi, mu, n, /*max_models=*/1);
    double arb_ms = MsSince(start);
    std::printf("%-6d %14.2f %14.2f %12d %12d %10d\n", n, rev_ms, arb_ms,
                rev.min_distance, arb.optimal_value, arb.iterations);
  }
  // Revision alone keeps scaling on random instances.
  std::printf("\nrandom 3-CNF, revision only (arbitration's min-max is a\n"
              "level higher in the polynomial hierarchy and stalls on\n"
              "unstructured instances past ~16 variables):\n");
  std::printf("%-6s %14s %12s\n", "n", "revise(ms)", "rev dist");
  for (int n = 20; n <= 44; n += 8) {
    Rng rng(7 * n);
    Formula psi = RandomKCnf(&rng, n, 2 * n, 3);
    Formula mu = RandomKCnf(&rng, n, 2 * n, 3);
    auto start = Clock::now();
    solve::SatRevisionResult rev =
        solve::SatDalalRevise(psi, mu, n, /*max_models=*/1);
    std::printf("%-6d %14.2f %12d\n", n, MsSince(start),
                rev.min_distance);
  }
  // Structured inputs (two platforms d issues apart) stay tractable:
  // CEGAR needs only a handful of witnesses.
  std::printf("\nstructured two-platform arbitration (parties %s):\n",
              "disagree on half the issues");
  std::printf("%-6s %14s %12s %10s\n", "n", "arbitrate(ms)", "arb value",
              "cegar its");
  for (int n = 16; n <= 40; n += 8) {
    std::vector<Formula> lits_a, lits_b;
    for (int i = 0; i < n; ++i) {
      bool contested = i >= n / 2;
      lits_a.push_back(Not(Formula::Var(i)));
      lits_b.push_back(contested ? Formula::Var(i)
                                 : Not(Formula::Var(i)));
    }
    Formula a = And(lits_a);
    Formula b = And(lits_b);
    auto start = Clock::now();
    solve::CegarResult arb =
        solve::CegarMaxArbitration(a, b, n, /*max_models=*/1);
    std::printf("%-6d %14.2f %12d %10d\n", n, MsSince(start),
                arb.optimal_value, arb.iterations);
  }
  std::printf(
      "\n(shape: revision = one NP oracle + binary search; arbitration = "
      "min-max,\n a level above — tractable only when structure keeps the "
      "witness set small)\n");
}

}  // namespace

int main() {
  EnumerationRegime();
  SatRegime();
  return 0;
}
