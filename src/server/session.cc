#include "server/session.h"

#include <vector>

namespace arbiter::server {

bool ServeStream(std::istream& in, std::ostream& out, BeliefServer* server) {
  Frame frame;
  std::string error;
  while (true) {
    switch (ReadFrame(in, &frame, &error)) {
      case ReadOutcome::kEof:
        return false;
      case ReadOutcome::kError:
        // A malformed frame leaves the stream position unknowable, so
        // the session ends rather than guessing at resynchronization.
        WriteError(out, error);
        return false;
      case ReadOutcome::kFrame:
        break;
    }
    switch (frame.kind) {
      case Frame::Kind::kPing:
        WritePong(out, frame.id);
        break;
      case Frame::Kind::kShutdown:
        WriteBye(out, frame.id);
        return true;
      case Frame::Kind::kBatch: {
        BatchResult result =
            server->ExecuteBatch(frame.store, frame.statements);
        std::vector<std::string> lines;
        lines.reserve(result.outcomes.size());
        for (const StatementOutcome& outcome : result.outcomes) {
          lines.push_back(RenderOutcome(outcome));
        }
        WriteReply(out, frame.id, result.epoch, lines);
        break;
      }
    }
  }
}

}  // namespace arbiter::server
