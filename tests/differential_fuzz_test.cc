// Fixed-seed smoke tier of the differential fuzz harness: >= 500
// randomized cases cross-checking the serial/pruned/parallel kernels,
// the Theorem 3.1/4.1 representation constructions, arbitration
// commutativity, and BeliefStore atomicity + Save/Load/replay.  The
// long-running configurable version lives in bench/fuzz_driver.cc.

#include "test_support/differential.h"

#include <gtest/gtest.h>

#include "model/distance.h"
#include "test_support/fuzz_generators.h"
#include "util/random.h"

namespace arbiter::test_support {
namespace {

TEST(DifferentialFuzzTest, FixedSeedSmokeTier) {
  DifferentialOptions options;
  options.seed = 0xA7B17E5;
  options.num_cases = 500;
  DifferentialReport report = RunDifferentialFuzz(options);
  EXPECT_EQ(report.cases_run, 500);
  EXPECT_GT(report.checks_run, 0);
  EXPECT_TRUE(report.ok()) << report.Summary();
}

TEST(DifferentialFuzzTest, DeterministicInSeed) {
  DifferentialOptions options;
  options.seed = 0xDECAF;
  options.num_cases = 20;
  DifferentialReport a = RunDifferentialFuzz(options);
  DifferentialReport b = RunDifferentialFuzz(options);
  EXPECT_EQ(a.cases_run, b.cases_run);
  EXPECT_EQ(a.checks_run, b.checks_run);
  EXPECT_EQ(a.divergences.size(), b.divergences.size());
}

TEST(DifferentialFuzzTest, ReferenceKernelsAgreeWithDefinitions) {
  // Anchor the references themselves on a hand-computed example:
  // psi = {00, 11} over 2 terms.
  ModelSet psi = ModelSet::FromMasks({0b00, 0b11}, 2);
  EXPECT_EQ(ReferenceOverallDist(psi, 0b00), 2);  // to 11
  EXPECT_EQ(ReferenceOverallDist(psi, 0b01), 1);
  EXPECT_EQ(ReferenceSumDist(psi, 0b00), 2);  // 0 + 2
  EXPECT_EQ(ReferenceSumDist(psi, 0b01), 2);  // 1 + 1
  EXPECT_EQ(OverallDist(psi, 0b00), 2);
  EXPECT_EQ(SumDist(psi, 0b01), 2);
}

TEST(DifferentialFuzzTest, DivergenceFormattingIsStable) {
  Divergence d{3, 42, "kernel/odist", "I=1"};
  EXPECT_EQ(d.ToString(), "[case 3 seed 42] kernel/odist: I=1");
  DifferentialReport report;
  report.cases_run = 1;
  report.checks_run = 7;
  report.divergences.push_back(d);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.Summary().find("1 divergences"), std::string::npos);
}

TEST(DifferentialFuzzTest, GeneratorsAreDeterministicAndWellFormed) {
  Rng a(123), b(123);
  Vocabulary va = RandomVocabulary(&a, 2, 5);
  Vocabulary vb = RandomVocabulary(&b, 2, 5);
  EXPECT_EQ(va.names(), vb.names());
  EXPECT_EQ(RandomFormulaText(&a, va, 4), RandomFormulaText(&b, vb, 4));
  ModelSet ms = RandomModelSet(&a, 4, 0.3);
  EXPECT_FALSE(ms.empty());
  WeightedKnowledgeBase wkb = RandomWeightedBase(&a, 4, 0.3);
  EXPECT_TRUE(wkb.IsSatisfiable());
  std::vector<StoreOp> script = RandomStoreScript(&a, va, 10, 0.3);
  EXPECT_EQ(script.size(), 10u);
}

}  // namespace
}  // namespace arbiter::test_support
