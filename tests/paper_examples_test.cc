// Mechanical re-derivation of every worked example in the paper:
//  * the Section 1 intro database example {A, B, A&B->C} changed by !C,
//  * Example 3.1 (classroom model-fitting; result {S, D}),
//  * Example 4.1 (35 students, weighted; result {D} with wdist 30 vs 35),
//  * the Section 1 jury motivation (9 vs 2 witnesses).

#include <gtest/gtest.h>

#include "change/fitting.h"
#include "change/revision.h"
#include "change/update.h"
#include "change/weighted.h"
#include "core/arbiter.h"
#include "model/distance.h"

namespace arbiter {
namespace {

// --- Section 1 intro example -------------------------------------------

TEST(IntroExample, RevisionKeepsResultWithinNewInformation) {
  Arbiter arb({"A", "B", "C"});
  KnowledgeBase psi = *arb.ParseKb("A & B & (A & B -> C)");
  KnowledgeBase mu = *arb.ParseKb("!C");
  // Mod(psi) = {ABC}; the revised theory must imply !C and stay
  // consistent (R1, R3).
  KnowledgeBase revised = arb.Revise(psi, mu);
  EXPECT_TRUE(revised.IsSatisfiable());
  EXPECT_TRUE(revised.Implies(mu));
  // Dalal keeps the closest !C-worlds to {A,B,C}: {A,B} at distance 1.
  ModelSet expected = ModelSet::FromMasks({0b011}, 3);  // {A, B}
  EXPECT_EQ(revised.models(), expected);
}

TEST(IntroExample, ThreeChangeTypesDisagree) {
  Arbiter arb({"A", "B", "C"});
  // psi: either the constraint view or plain facts; mu contradicts C.
  KnowledgeBase psi = *arb.ParseKb("(A & B & C) | (A & !B & !C)");
  KnowledgeBase mu = *arb.ParseKb("!A | !C");
  KnowledgeBase revised = arb.Revise(psi, mu);
  KnowledgeBase updated = arb.Update(psi, mu);
  KnowledgeBase fitted = arb.Fit(psi, mu);
  // All satisfy success (R1/U1/A1).
  EXPECT_TRUE(revised.Implies(mu));
  EXPECT_TRUE(updated.Implies(mu));
  EXPECT_TRUE(fitted.Implies(mu));
  // Revision keeps only globally closest worlds; update keeps
  // per-world closest, so it is at least as inclusive.
  EXPECT_TRUE(revised.models().IsSubsetOf(updated.models()));
}

// --- Example 3.1: the classroom -----------------------------------------

class Example31 : public ::testing::Test {
 protected:
  // Terms in the paper's order: S(QL), D(atalog), Q(BE).  The paper
  // writes mu = (!S & D) | (S & D) but lists Mod(mu) = {{D}, {S,D}} —
  // i.e. it implicitly reads the offer as not including QBE.  We make
  // that explicit with & !Q so the model sets match the text verbatim.
  Example31() : arb_({"S", "D", "Q"}) {
    mu_ = *arb_.ParseKb("((!S & D) | (S & D)) & !Q");
    psi_ = *arb_.ParseKb("(S & !D & !Q) | (!S & D & !Q) | (S & D & Q)");
  }
  Arbiter arb_;
  KnowledgeBase mu_{Formula::False(), 3};
  KnowledgeBase psi_{Formula::False(), 3};
};

TEST_F(Example31, ModelSetsMatchPaper) {
  // Mod(mu) = { {D}, {S,D} }, Mod(psi) = { {S}, {D}, {S,D,Q} }.
  EXPECT_EQ(mu_.models(), ModelSet::FromMasks({0b010, 0b011}, 3));
  EXPECT_EQ(psi_.models(),
            ModelSet::FromMasks({0b001, 0b010, 0b111}, 3));
}

TEST_F(Example31, OdistValuesMatchPaper) {
  // odist(psi, {D}) = 2 and odist(psi, {S,D}) = 1.
  EXPECT_EQ(OverallDist(psi_.models(), 0b010), 2);
  EXPECT_EQ(OverallDist(psi_.models(), 0b011), 1);
}

TEST_F(Example31, ModelFittingPicksSqlAndDatalog) {
  KnowledgeBase result = arb_.Fit(psi_, mu_);
  EXPECT_EQ(result.models(), ModelSet::FromMasks({0b011}, 3))
      << "the instructor should teach both SQL and Datalog";
}

TEST_F(Example31, DalalRevisionWouldPickDatalogOnly) {
  // The paper notes a revision operator like Dalal's would suggest
  // teaching Datalog only ({D} is distance 0 from the student wish
  // {D}).
  KnowledgeBase result = arb_.Revise(psi_, mu_);
  EXPECT_TRUE(result.models().Contains(0b010));
  EXPECT_EQ(MinDist(psi_.models(), 0b010), 0);
}

TEST_F(Example31, ArbitrationOverFullSpace) {
  // "If the instructor were willing to teach any combination" —
  // arbitration: (psi | mu) |> M.
  KnowledgeBase result = arb_.Arbitrate(psi_, mu_);
  EXPECT_TRUE(result.IsSatisfiable());
  // Every chosen world minimizes the overall distance to the combined
  // voices.
  ModelSet combined = psi_.models().Union(mu_.models());
  int best = OverallDist(combined, result.models()[0]);
  for (uint64_t m = 0; m < 8; ++m) {
    EXPECT_GE(OverallDist(combined, m), best);
  }
}

// --- Example 4.1: weighted classroom ------------------------------------

class Example41 : public ::testing::Test {
 protected:
  Example41() : arb_({"S", "D", "Q"}) {
    mu_ = WeightedKnowledgeBase(3);
    mu_.SetWeight(0b010, 1.0);  // {D}
    mu_.SetWeight(0b011, 1.0);  // {S,D}
    psi_ = WeightedKnowledgeBase(3);
    psi_.SetWeight(0b001, 10.0);  // 10 students want SQL only
    psi_.SetWeight(0b010, 20.0);  // 20 want Datalog only
    psi_.SetWeight(0b111, 5.0);   // 5 want S, D and Q
  }
  Arbiter arb_;
  WeightedKnowledgeBase mu_{3};
  WeightedKnowledgeBase psi_{3};
};

TEST_F(Example41, WdistValuesMatchPaper) {
  // wdist(psi, {D}) = 30 and wdist(psi, {S,D}) = 35.
  EXPECT_DOUBLE_EQ(psi_.WeightedDistTo(0b010), 30.0);
  EXPECT_DOUBLE_EQ(psi_.WeightedDistTo(0b011), 35.0);
}

TEST_F(Example41, WeightedFittingPicksDatalogOnly) {
  WdistFitting fitting;
  WeightedKnowledgeBase result = fitting.Change(psi_, mu_);
  EXPECT_DOUBLE_EQ(result.Weight(0b010), 1.0)
      << "{D} keeps its mu-weight";
  EXPECT_DOUBLE_EQ(result.Weight(0b011), 0.0) << "{S,D} is dropped";
  for (uint64_t m : {0b000, 0b001, 0b100, 0b101, 0b110, 0b111}) {
    EXPECT_DOUBLE_EQ(result.Weight(m), 0.0);
  }
}

TEST_F(Example41, MajorityFlipsTheUnweightedOutcome) {
  // With unit weights (Example 3.1) fitting chose {S,D}; the 20-student
  // majority for Datalog flips it to {D} (the paper's point).
  MaxFitting unweighted;
  ModelSet unweighted_result = unweighted.Change(
      ModelSet::FromMasks({0b001, 0b010, 0b111}, 3), mu_.Support());
  EXPECT_EQ(unweighted_result, ModelSet::FromMasks({0b011}, 3));
  WdistFitting weighted;
  EXPECT_DOUBLE_EQ(weighted.Change(psi_, mu_).Weight(0b010), 1.0);
}

// --- Section 1: the jury ------------------------------------------------

TEST(JuryExample, NineVersusTwoWitnesses) {
  // Nine witnesses say A started the fight, two say B did (and not A).
  // Weighted arbitration should side with the majority.
  WeightedKnowledgeBase crowd(2);
  crowd.SetWeight(0b01, 9.0);  // {A-started}
  crowd.SetWeight(0b10, 2.0);  // {B-started}
  WeightedArbitration delta;
  WeightedKnowledgeBase verdict =
      delta.Change(crowd, WeightedKnowledgeBase(2));
  EXPECT_GT(verdict.Weight(0b01), 0.0) << "majority verdict: A started it";
  EXPECT_DOUBLE_EQ(verdict.Weight(0b10), 0.0);
}

TEST(JuryExample, EqualVoicesKeepBothVerdicts) {
  WeightedKnowledgeBase crowd(2);
  crowd.SetWeight(0b01, 5.0);
  crowd.SetWeight(0b10, 5.0);
  WeightedArbitration delta;
  WeightedKnowledgeBase verdict =
      delta.Change(crowd, WeightedKnowledgeBase(2));
  // Symmetric evidence: both candidate verdicts survive arbitration.
  EXPECT_EQ(verdict.Weight(0b01) > 0, verdict.Weight(0b10) > 0);
}

}  // namespace
}  // namespace arbiter
