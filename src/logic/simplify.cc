#include "logic/simplify.h"

#include <vector>

namespace arbiter {

namespace {

// NNF with an explicit polarity flag to avoid rebuilding Not nodes.
Formula NnfImpl(const Formula& f, bool negated) {
  switch (f.kind()) {
    case FormulaKind::kTrue:
      return negated ? Formula::False() : Formula::True();
    case FormulaKind::kFalse:
      return negated ? Formula::True() : Formula::False();
    case FormulaKind::kVar:
      return negated ? Not(f) : f;
    case FormulaKind::kNot:
      return NnfImpl(f.child(0), !negated);
    case FormulaKind::kAnd: {
      std::vector<Formula> parts;
      parts.reserve(f.num_children());
      for (const Formula& c : f.children()) parts.push_back(NnfImpl(c, negated));
      return negated ? Or(std::move(parts)) : And(std::move(parts));
    }
    case FormulaKind::kOr: {
      std::vector<Formula> parts;
      parts.reserve(f.num_children());
      for (const Formula& c : f.children()) parts.push_back(NnfImpl(c, negated));
      return negated ? And(std::move(parts)) : Or(std::move(parts));
    }
    case FormulaKind::kImplies:
      // a -> b  ==  !a | b;  !(a -> b)  ==  a & !b.
      if (negated) {
        return And(NnfImpl(f.child(0), false), NnfImpl(f.child(1), true));
      }
      return Or(NnfImpl(f.child(0), true), NnfImpl(f.child(1), false));
    case FormulaKind::kIff:
      // a <-> b  ==  (a & b) | (!a & !b);  negation swaps to xor.
      if (negated) {
        return Or(And(NnfImpl(f.child(0), false), NnfImpl(f.child(1), true)),
                  And(NnfImpl(f.child(0), true), NnfImpl(f.child(1), false)));
      }
      return Or(And(NnfImpl(f.child(0), false), NnfImpl(f.child(1), false)),
                And(NnfImpl(f.child(0), true), NnfImpl(f.child(1), true)));
    case FormulaKind::kXor:
      return NnfImpl(Iff(f.child(0), f.child(1)), !negated);
  }
  ARBITER_CHECK_MSG(false, "unreachable formula kind");
  return Formula::False();
}

}  // namespace

Formula Nnf(const Formula& f) { return NnfImpl(f, false); }

Formula Assign(const Formula& f, int var, bool value) {
  switch (f.kind()) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
      return f;
    case FormulaKind::kVar:
      if (f.var() == var) return value ? Formula::True() : Formula::False();
      return f;
    case FormulaKind::kNot:
      return Not(Assign(f.child(0), var, value));
    case FormulaKind::kAnd: {
      std::vector<Formula> parts;
      parts.reserve(f.num_children());
      for (const Formula& c : f.children()) parts.push_back(Assign(c, var, value));
      return And(std::move(parts));
    }
    case FormulaKind::kOr: {
      std::vector<Formula> parts;
      parts.reserve(f.num_children());
      for (const Formula& c : f.children()) parts.push_back(Assign(c, var, value));
      return Or(std::move(parts));
    }
    case FormulaKind::kImplies:
      return Implies(Assign(f.child(0), var, value),
                     Assign(f.child(1), var, value));
    case FormulaKind::kIff:
      return Iff(Assign(f.child(0), var, value),
                 Assign(f.child(1), var, value));
    case FormulaKind::kXor:
      return Xor(Assign(f.child(0), var, value),
                 Assign(f.child(1), var, value));
  }
  ARBITER_CHECK_MSG(false, "unreachable formula kind");
  return Formula::False();
}

Formula Fold(const Formula& f) {
  switch (f.kind()) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
    case FormulaKind::kVar:
      return f;
    case FormulaKind::kNot:
      return Not(Fold(f.child(0)));
    case FormulaKind::kAnd: {
      std::vector<Formula> parts;
      parts.reserve(f.num_children());
      for (const Formula& c : f.children()) parts.push_back(Fold(c));
      return And(std::move(parts));
    }
    case FormulaKind::kOr: {
      std::vector<Formula> parts;
      parts.reserve(f.num_children());
      for (const Formula& c : f.children()) parts.push_back(Fold(c));
      return Or(std::move(parts));
    }
    case FormulaKind::kImplies:
      return Implies(Fold(f.child(0)), Fold(f.child(1)));
    case FormulaKind::kIff:
      return Iff(Fold(f.child(0)), Fold(f.child(1)));
    case FormulaKind::kXor:
      return Xor(Fold(f.child(0)), Fold(f.child(1)));
  }
  ARBITER_CHECK_MSG(false, "unreachable formula kind");
  return Formula::False();
}

}  // namespace arbiter
