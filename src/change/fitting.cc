#include "change/fitting.h"

#include "model/distance.h"
#include "model/preorder.h"

namespace arbiter {

ModelSet MaxFitting::Change(const ModelSet& psi, const ModelSet& mu) const {
  ARBITER_CHECK(psi.num_terms() == mu.num_terms());
  if (psi.empty() || mu.empty()) return ModelSet(mu.num_terms());
  return MinByInt(mu, [&psi](uint64_t i) {
    return static_cast<int64_t>(OverallDist(psi, i));
  });
}

ModelSet SumFitting::Change(const ModelSet& psi, const ModelSet& mu) const {
  ARBITER_CHECK(psi.num_terms() == mu.num_terms());
  if (psi.empty() || mu.empty()) return ModelSet(mu.num_terms());
  return MinByInt(mu, [&psi](uint64_t i) { return SumDist(psi, i); });
}

ArbitrationOperator::ArbitrationOperator(
    std::shared_ptr<const TheoryChangeOperator> fitting)
    : fitting_(std::move(fitting)) {
  ARBITER_CHECK(fitting_ != nullptr);
}

ModelSet ArbitrationOperator::Change(const ModelSet& psi,
                                     const ModelSet& phi) const {
  ARBITER_CHECK(psi.num_terms() == phi.num_terms());
  ModelSet combined = psi.Union(phi);
  return fitting_->Change(combined, ModelSet::Full(psi.num_terms()));
}

ModelSet LexFitting::Change(const ModelSet& psi, const ModelSet& mu) const {
  ARBITER_CHECK(psi.num_terms() == mu.num_terms());
  if (psi.empty() || mu.empty()) return ModelSet(mu.num_terms());
  // Fixed order irrespective of ψ: smallest interpretation mask wins.
  return ModelSet::Singleton(mu[0], mu.num_terms());
}

ArbitrationOperator MakeMaxArbitration() {
  return ArbitrationOperator(std::make_shared<MaxFitting>());
}

ArbitrationOperator MakeSumArbitration() {
  return ArbitrationOperator(std::make_shared<SumFitting>());
}

}  // namespace arbiter
