// Tests for the belief-merging extension (Σ, GMax, and max aggregates
// over k sources under integrity constraints).

#include "change/merge.h"

#include <gtest/gtest.h>

#include "change/fitting.h"
#include "model/distance.h"
#include "model/preorder.h"
#include "util/random.h"

namespace arbiter {
namespace {

ModelSet Ms(std::vector<uint64_t> masks, int n) {
  return ModelSet::FromMasks(std::move(masks), n);
}

TEST(MergeTest, SumFavorsMajority) {
  // Two sources at 00, one at 11: sum picks 00.
  std::vector<ModelSet> sources = {Ms({0b00}, 2), Ms({0b00}, 2),
                                   Ms({0b11}, 2)};
  EXPECT_EQ(Merge(sources, MergeAggregate::kSum), Ms({0b00}, 2));
}

TEST(MergeTest, GMaxIsEgalitarian) {
  // Same input: GMax compares worst-off sources first.
  // 00 -> sorted distances (2,0,0); 01/10 -> (1,1,1); 11 -> (2,2,0).
  // (1,1,1) < (2,0,0) lexicographically, so the compromise wins.
  std::vector<ModelSet> sources = {Ms({0b00}, 2), Ms({0b00}, 2),
                                   Ms({0b11}, 2)};
  EXPECT_EQ(Merge(sources, MergeAggregate::kGMax), Ms({0b01, 0b10}, 2));
}

TEST(MergeTest, MaxGeneralizesArbitrationToManySources) {
  // With two singleton sources and no constraint, max-merging equals
  // the paper's Δ on those sources.
  ArbitrationOperator arb = MakeMaxArbitration();
  ModelSet a = Ms({0b000}, 3);
  ModelSet b = Ms({0b110}, 3);
  EXPECT_EQ(Merge({a, b}, MergeAggregate::kMax), arb.Change(a, b));
}

TEST(MergeTest, ConstraintRestrictsCandidates) {
  std::vector<ModelSet> sources = {Ms({0b00}, 2), Ms({0b11}, 2)};
  ModelSet mu = Ms({0b01, 0b11}, 2);
  ModelSet result = Merge(sources, mu, MergeAggregate::kSum);
  EXPECT_TRUE(result.IsSubsetOf(mu));
  // 01: 1+1 = 2; 11: 2+0 = 2 — tie, both kept.
  EXPECT_EQ(result, mu);
}

TEST(MergeTest, EmptySourcesAreIgnored) {
  std::vector<ModelSet> sources = {Ms({0b01}, 2), ModelSet(2)};
  EXPECT_EQ(Merge(sources, MergeAggregate::kSum), Ms({0b01}, 2));
}

TEST(MergeTest, AllEmptyOrUnsatConstraintGivesEmpty) {
  std::vector<ModelSet> none = {ModelSet(2), ModelSet(2)};
  EXPECT_TRUE(Merge(none, MergeAggregate::kSum).empty());
  std::vector<ModelSet> one = {Ms({0b01}, 2)};
  EXPECT_TRUE(Merge(one, ModelSet(2), MergeAggregate::kGMax).empty());
}

TEST(MergeTest, SingleSourceUnderConstraintIsDalalRevision) {
  // k = 1: every aggregate degenerates to "closest models of mu".
  Rng rng(111);
  for (int round = 0; round < 50; ++round) {
    std::vector<uint64_t> ms, mm;
    for (uint64_t m = 0; m < 8; ++m) {
      if (rng.NextBool(0.4)) ms.push_back(m);
      if (rng.NextBool(0.4)) mm.push_back(m);
    }
    if (ms.empty() || mm.empty()) continue;
    ModelSet source = Ms(ms, 3), mu = Ms(mm, 3);
    ModelSet expected = MinByInt(mu, [&](uint64_t i) {
      return static_cast<int64_t>(MinDist(source, i));
    });
    for (MergeAggregate agg : {MergeAggregate::kSum, MergeAggregate::kGMax,
                               MergeAggregate::kMax}) {
      EXPECT_EQ(Merge({source}, mu, agg), expected)
          << MergeAggregateName(agg);
    }
  }
}

TEST(MergeTest, MergeIsOrderInvariant) {
  Rng rng(222);
  for (int round = 0; round < 30; ++round) {
    std::vector<ModelSet> sources;
    for (int s = 0; s < 4; ++s) {
      std::vector<uint64_t> m;
      for (uint64_t i = 0; i < 8; ++i) {
        if (rng.NextBool(0.4)) m.push_back(i);
      }
      sources.push_back(Ms(m, 3));
    }
    std::vector<ModelSet> shuffled = {sources[2], sources[0], sources[3],
                                      sources[1]};
    for (MergeAggregate agg : {MergeAggregate::kSum, MergeAggregate::kGMax,
                               MergeAggregate::kMax}) {
      EXPECT_EQ(Merge(sources, agg), Merge(shuffled, agg));
    }
  }
}

TEST(MergeTest, UnanimityIsRespected) {
  // If all sources share a model satisfying the constraint, merging
  // returns exactly the shared models (distance vector all-zero).
  std::vector<ModelSet> sources = {Ms({0b01, 0b10}, 2), Ms({0b01}, 2),
                                   Ms({0b01, 0b11}, 2)};
  for (MergeAggregate agg : {MergeAggregate::kSum, MergeAggregate::kGMax,
                             MergeAggregate::kMax}) {
    EXPECT_EQ(Merge(sources, agg), Ms({0b01}, 2));
  }
}

TEST(WeightedMergeTest, SingleZeroOneSourceMatchesSumFitting) {
  Rng rng(333);
  SumFitting plain;
  for (int round = 0; round < 30; ++round) {
    std::vector<uint64_t> ms, mm;
    for (uint64_t m = 0; m < 8; ++m) {
      if (rng.NextBool(0.4)) ms.push_back(m);
      if (rng.NextBool(0.4)) mm.push_back(m);
    }
    if (ms.empty() || mm.empty()) continue;
    ModelSet source = Ms(ms, 3), mu = Ms(mm, 3);
    WeightedKnowledgeBase merged = MergeWeighted(
        {WeightedKnowledgeBase::FromModelSet(source)},
        WeightedKnowledgeBase::FromModelSet(mu));
    EXPECT_EQ(merged.Support(), plain.Change(source, mu)) << round;
  }
}

TEST(WeightedMergeTest, AssociativeInTheSources) {
  // Unlike pairwise Δ, weighted merging is order- and grouping-
  // insensitive: ⊔ is associative and the fit happens once.
  WeightedKnowledgeBase a(3), b(3), c(3);
  a.SetWeight(0b000, 2);
  b.SetWeight(0b011, 1);
  b.SetWeight(0b111, 4);
  c.SetWeight(0b101, 3);
  WeightedKnowledgeBase grouped =
      MergeWeighted({MergeWeighted({a, b}).Or(c)});
  WeightedKnowledgeBase flat = MergeWeighted({a, b, c});
  // Both rank by the same combined wdist when the intermediate merge
  // is not collapsed; here we check the flat merge directly against
  // the definition instead.
  WeightedKnowledgeBase combined = a.Or(b).Or(c);
  double best = 1e300;
  for (uint64_t m = 0; m < 8; ++m) {
    best = std::min(best, combined.WeightedDistTo(m));
  }
  for (uint64_t m = 0; m < 8; ++m) {
    EXPECT_EQ(flat.Weight(m) > 0, combined.WeightedDistTo(m) == best);
  }
  (void)grouped;
}

TEST(WeightedMergeTest, MajorityOfCrowdsWins) {
  // Two crowds: 30 voices near 00, 10 voices at 11.
  WeightedKnowledgeBase crowd1(2), crowd2(2);
  crowd1.SetWeight(0b00, 30);
  crowd2.SetWeight(0b11, 10);
  WeightedKnowledgeBase merged = MergeWeighted({crowd1, crowd2});
  EXPECT_GT(merged.Weight(0b00), 0.0);
  EXPECT_DOUBLE_EQ(merged.Weight(0b11), 0.0);
}

TEST(WeightedMergeTest, UnsatInputsGiveUnsatResult) {
  WeightedKnowledgeBase empty(2);
  EXPECT_FALSE(MergeWeighted({empty, empty}).IsSatisfiable());
  WeightedKnowledgeBase some(2);
  some.SetWeight(1, 1);
  EXPECT_FALSE(MergeWeighted({some}, empty).IsSatisfiable());
}

TEST(MergeTest, AggregateNames) {
  EXPECT_STREQ(MergeAggregateName(MergeAggregate::kSum), "sum");
  EXPECT_STREQ(MergeAggregateName(MergeAggregate::kGMax), "gmax");
  EXPECT_STREQ(MergeAggregateName(MergeAggregate::kMax), "max");
}

}  // namespace
}  // namespace arbiter
