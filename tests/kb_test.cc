// Tests for KnowledgeBase: formula/model pairing and semantic algebra.

#include "kb/knowledge_base.h"

#include <gtest/gtest.h>

#include "logic/parser.h"

namespace arbiter {
namespace {

class KbTest : public ::testing::Test {
 protected:
  KbTest() : vocab_(Vocabulary::Synthetic(3)) {}
  KnowledgeBase Kb(const std::string& text) {
    return KnowledgeBase(MustParse(text, &vocab_), vocab_.size());
  }
  Vocabulary vocab_;
};

TEST_F(KbTest, ModelsComputedEagerly) {
  KnowledgeBase kb = Kb("p0 & !p1");
  EXPECT_EQ(kb.models(), ModelSet::FromMasks({0b001, 0b101}, 3));
  EXPECT_EQ(kb.num_terms(), 3);
}

TEST_F(KbTest, Satisfiability) {
  EXPECT_TRUE(Kb("p0 | p1").IsSatisfiable());
  EXPECT_FALSE(Kb("p0 & !p0").IsSatisfiable());
}

TEST_F(KbTest, ImplicationAndEquivalence) {
  KnowledgeBase strong = Kb("p0 & p1");
  KnowledgeBase weak = Kb("p0");
  EXPECT_TRUE(strong.Implies(weak));
  EXPECT_FALSE(weak.Implies(strong));
  EXPECT_TRUE(Kb("p0 -> p1").EquivalentTo(Kb("!p0 | p1")));
  EXPECT_FALSE(Kb("p0").EquivalentTo(Kb("p1")));
}

TEST_F(KbTest, SemanticAlgebra) {
  KnowledgeBase a = Kb("p0");
  KnowledgeBase b = Kb("p1");
  EXPECT_TRUE(a.Conjoin(b).EquivalentTo(Kb("p0 & p1")));
  EXPECT_TRUE(a.Disjoin(b).EquivalentTo(Kb("p0 | p1")));
  EXPECT_TRUE(a.Negate().EquivalentTo(Kb("!p0")));
}

TEST_F(KbTest, FromModelsUsesMintermForm) {
  ModelSet models = ModelSet::FromMasks({0b010, 0b111}, 3);
  KnowledgeBase kb = KnowledgeBase::FromModels(models);
  EXPECT_EQ(kb.models(), models);
  // Formula re-evaluates to the same models.
  EXPECT_EQ(ModelSet::FromFormula(kb.formula(), 3), models);
}

TEST_F(KbTest, UnsatisfiableFromEmptyModels) {
  KnowledgeBase kb = KnowledgeBase::FromModels(ModelSet(3));
  EXPECT_FALSE(kb.IsSatisfiable());
  EXPECT_TRUE(kb.formula().is_false());
}

TEST_F(KbTest, ToStringUsesVocabulary) {
  EXPECT_EQ(Kb("p0 & p1").ToString(vocab_), "p0 & p1");
}

}  // namespace
}  // namespace arbiter
