#ifndef ARBITER_STORE_BELIEF_STORE_H_
#define ARBITER_STORE_BELIEF_STORE_H_

#include <map>
#include <string>
#include <vector>

#include "kb/knowledge_base.h"
#include "logic/vocabulary.h"
#include "util/status.h"

/// \file belief_store.h
/// A small transactional repository of named belief bases — the
/// database-facing surface of the library.  Each base is a knowledge
/// base over the store's shared vocabulary; changes are applied
/// through any registered theory change operator and every applied
/// change is journaled, so they can be undone.
///
///   BeliefStore store;
///   store.Define("jury", "g & a & (g & a -> v)");
///   store.Apply("jury", "dalal", "!v");          // revise in place
///   store.Entails("jury", "g");                  // -> true
///   store.Undo("jury");                          // back to the start
///
/// The vocabulary grows as formulas mention new terms; bases defined
/// earlier are transparently re-evaluated over the grown vocabulary
/// (their formulas don't mention the new terms, so their models simply
/// leave them free).
///
/// ## Failure semantics (strong error guarantee)
///
/// Every operation that can fail is transactional: inputs are parsed
/// and validated against a *scratch copy* of the store vocabulary, and
/// the store commits — vocabulary growth, base formula, undo stack and
/// journal together — only after every validation step has succeeded.
/// A non-OK Status therefore implies the store is observably unchanged:
/// `Dump()`, `Names()`, `vocabulary()`, `History()` and `HistoryDepth()`
/// all return exactly what they returned before the call.  In
/// particular a parse error or capacity overflow in `Define`, `Apply`,
/// `Entails`, `ConsistentWith` or `Counterfactual` never leaks
/// partially-registered terms into the vocabulary (which would silently
/// reinterpret every existing base over a larger universe).  The
/// differential fuzz harness (`src/test_support/`) replays randomized
/// op scripts with injected failures to enforce this guarantee.

namespace arbiter {

/// One journaled change applied to a base.
struct ChangeRecord {
  std::string op_name;
  std::string evidence_text;
};

class BeliefStore {
 public:
  BeliefStore() = default;

  const Vocabulary& vocabulary() const { return vocab_; }

  /// Defines (or redefines) a named base from formula text.
  /// Redefinition clears the base's history.
  Status Define(const std::string& name, const std::string& formula_text);

  /// True iff a base with this name exists.
  bool Contains(const std::string& name) const;

  /// Removes a base.
  Status Drop(const std::string& name);

  /// Names of all bases, sorted.
  std::vector<std::string> Names() const;

  /// Current contents of a base (re-evaluated over the current
  /// vocabulary if it has grown since the base was last touched).
  Result<KnowledgeBase> Get(const std::string& name) const;

  /// Applies `target <- target <op> evidence` in place and journals
  /// the change.  `op_name` is any registry name ("dalal", "winslett",
  /// "revesz-max", "arbitration-max", "two-sided-dalal", ...).
  Status Apply(const std::string& target, const std::string& op_name,
               const std::string& evidence_text);

  /// Reverts the most recent Apply on the base.  Fails if there is
  /// nothing to undo.
  Status Undo(const std::string& target);

  /// Number of undoable changes on a base (0 if unknown base).
  int HistoryDepth(const std::string& name) const;

  /// The journal of a base, oldest first.
  std::vector<ChangeRecord> History(const std::string& name) const;

  /// Semantic entailment: does the base imply the formula?
  Result<bool> Entails(const std::string& name,
                       const std::string& formula_text);

  /// Consistency: is base ∧ formula satisfiable?
  Result<bool> ConsistentWith(const std::string& name,
                              const std::string& formula_text);

  /// KM counterfactual via update (the Ramsey test): "if `antecedent`
  /// were made true, would `consequent` hold?" — evaluated as
  /// (base ⋄ antecedent) ⊨ consequent with Winslett's update.
  Result<bool> Counterfactual(const std::string& name,
                              const std::string& antecedent_text,
                              const std::string& consequent_text);

  /// Human-readable listing of every base and its models.
  std::string Dump() const;

  /// Serializes the store (vocabulary, base formulas, undo stacks, and
  /// journals) to a line-based text format.  Each base is written as
  /// its *current* formula, one `undo` line per pre-change formula
  /// (oldest first), and its journal as `hist` lines.  State is
  /// persisted verbatim, never reconstructed by re-running operators:
  /// not every operator commutes with vocabulary growth, so replay
  /// over the final vocabulary could diverge from the saved state.
  std::string Save() const;

  /// Reconstructs a store from Save() output.  Formulas, undo stacks,
  /// and journals are restored syntactically (operator names and
  /// evidence are validated but not re-executed), so `History()`,
  /// `HistoryDepth()`, and `Undo()` survive a Save/Load round trip
  /// exactly.
  static Result<BeliefStore> Load(const std::string& text);

 private:
  struct Entry {
    Formula formula;
    std::vector<Formula> undo_stack;   // previous formulas
    std::vector<ChangeRecord> journal;  // applied changes
  };

  /// Parses `text` against `*scratch` (a copy of vocab_) and validates
  /// the enumeration capacity.  Callers commit the scratch vocabulary
  /// back into the store only once the whole operation has succeeded.
  static Result<Formula> ParseValidated(const std::string& text,
                                        Vocabulary* scratch);
  Result<const Entry*> Find(const std::string& name) const;

  Vocabulary vocab_;
  std::map<std::string, Entry> bases_;
};

}  // namespace arbiter

#endif  // ARBITER_STORE_BELIEF_STORE_H_
