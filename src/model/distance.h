#ifndef ARBITER_MODEL_DISTANCE_H_
#define ARBITER_MODEL_DISTANCE_H_

#include <cstdint>
#include <vector>

#include "model/model_set.h"
#include "util/bit.h"

/// \file distance.h
/// The distance measures of the paper:
///
///  * dist(I, J)   — Dalal's Hamming distance |I Δ J| (Section 2);
///  * dist(ψ, I)   — min over Mod(ψ) (Dalal; used by revision);
///  * odist(ψ, I)  — max over Mod(ψ) (Revesz; used by model-fitting,
///                   Section 3);
///  * sdist(ψ, I)  — sum over Mod(ψ) (the unweighted instance of
///                   wdist from Section 4, i.e. every model weight 1).

namespace arbiter {

/// Dalal's distance between two interpretations.
inline int Dist(uint64_t a, uint64_t b) { return PopCount(a ^ b); }

/// dist(ψ, I) = min_{J ∈ Mod(ψ)} dist(I, J).  Requires psi nonempty.
int MinDist(const ModelSet& psi, uint64_t interpretation);

/// odist(ψ, I) = max_{J ∈ Mod(ψ)} dist(I, J).  Requires psi nonempty.
/// Saturates early once the max reaches the diameter num_terms.
int OverallDist(const ModelSet& psi, uint64_t interpretation);

/// Σ_{J ∈ Mod(ψ)} dist(I, J): wdist with unit weights.
int64_t SumDist(const ModelSet& psi, uint64_t interpretation);

/// Branch-and-bound variants for argmin scans: once the running
/// aggregate meets/exceeds `bound`, the candidate can no longer beat an
/// incumbent minimum of `bound - 1`, so the scan aborts.  Contract:
/// the returned value equals the exact aggregate whenever it is
/// < `bound`; otherwise it is some value >= `bound` (a certificate
/// that the exact aggregate is too).  Aggregates are monotone
/// nondecreasing in the scan, which is what makes the abort sound.

/// Bounded odist.  Also saturates at the diameter.  Requires psi
/// nonempty.
int OverallDistBounded(const ModelSet& psi, uint64_t interpretation,
                       int bound);

/// Bounded Σ-dist.
int64_t SumDistBounded(const ModelSet& psi, uint64_t interpretation,
                       int64_t bound);

/// Closed-form Σ-dist: sdist decomposes over bit columns,
///
///   sdist(ψ, I) = Σ_b  (I_b = 1 ?  |Mod(ψ)| - ones_b  :  ones_b)
///
/// where ones_b counts the models of ψ with bit b set.  One O(|Mod(ψ)|
/// · n) pass precomputes the column counts; every query is then O(n)
/// instead of O(|Mod(ψ)|) and returns the exact same integer as
/// SumDist.  This is what makes Σ-fitting linear in |Mod(μ)| + |Mod(ψ)|
/// rather than their product.
class SumDistOracle {
 public:
  /// Builds the column counts (parallelized over Mod(ψ)).  ψ must be
  /// nonempty: over an empty set every column count is 0 and every
  /// query would return the meaningless constant 0, silently ranking
  /// all candidates equal — so construction fails loudly instead.
  explicit SumDistOracle(const ModelSet& psi);

  /// As above, but distances are the weighted Hamming metric with
  /// per-atom weights `metric` (empty = unit weights).  Entries must
  /// be >= 0; atoms beyond the vector's size weigh 1.
  SumDistOracle(const ModelSet& psi, const std::vector<int64_t>& metric);

  /// sdist(ψ, I), exactly as SumDist would return it (scaled per
  /// column by the metric weights, if any).
  int64_t operator()(uint64_t interpretation) const {
    int64_t total = 0;
    for (int b = 0; b < num_terms_; ++b) {
      const int64_t ones = ones_[b];
      const int64_t column =
          ((interpretation >> b) & 1) != 0 ? size_ - ones : ones;
      total += weights_[b] * column;
    }
    return total;
  }

 private:
  int num_terms_;
  int64_t size_;
  int64_t ones_[kMaxEnumTerms] = {};
  int64_t weights_[kMaxEnumTerms] = {};
};

}  // namespace arbiter

#endif  // ARBITER_MODEL_DISTANCE_H_
