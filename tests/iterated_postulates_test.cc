// Iterated-revision (Darwiche–Pearl style, knowledge-base-level)
// postulates: exhaustive ground truth per operator.  Headline: NO
// KB-level operator in the library satisfies all four — every one
// fails at least (I2) — matching the DP theory's point that iteration
// needs epistemic states richer than bases.

#include "postulates/iterated_checker.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "change/registry.h"

namespace arbiter {
namespace {

std::vector<std::string> Fails(const std::string& name, int n) {
  IteratedChecker checker(MakeOperator(name).ValueOrDie(), n);
  return checker.FailingPostulates();
}

TEST(IteratedPostulatesTest, EveryOperatorFailsI2) {
  for (const std::string& name : RegisteredOperatorNames()) {
    std::vector<std::string> failing = Fails(name, 2);
    EXPECT_NE(std::find(failing.begin(), failing.end(), "I2"),
              failing.end())
        << name << " unexpectedly satisfies I2";
  }
}

TEST(IteratedPostulatesTest, FullMeetAndLexComeClosest) {
  // The two degenerate operators lose only (I2) at n = 2 and n = 3.
  for (const char* name : {"full-meet", "lex-fitting"}) {
    EXPECT_EQ(Fails(name, 2), std::vector<std::string>{"I2"}) << name;
    EXPECT_EQ(Fails(name, 3), std::vector<std::string>{"I2"}) << name;
  }
}

TEST(IteratedPostulatesTest, DalalFailsAllFourAtN3) {
  EXPECT_EQ(Fails("dalal", 3),
            (std::vector<std::string>{"I1", "I2", "I3", "I4"}));
  // At n = 2 it still keeps I3.
  EXPECT_EQ(Fails("dalal", 2),
            (std::vector<std::string>{"I1", "I2", "I4"}));
}

TEST(IteratedPostulatesTest, TwoSidedArbitrationKeepsI3I4) {
  for (const char* name : {"two-sided-dalal", "two-sided-satoh"}) {
    EXPECT_EQ(Fails(name, 3), (std::vector<std::string>{"I1", "I2"}))
        << name;
  }
}

TEST(IteratedPostulatesTest, ReveszOperatorsFailAllFour) {
  for (const char* name : {"revesz-max", "revesz-sum",
                           "arbitration-max", "arbitration-sum"}) {
    EXPECT_EQ(Fails(name, 2),
              (std::vector<std::string>{"I1", "I2", "I3", "I4"}))
        << name;
  }
}

TEST(IteratedPostulatesTest, CounterexampleDescribe) {
  IteratedChecker checker(MakeOperator("dalal").ValueOrDie(), 2);
  auto cex = checker.CheckExhaustive(IteratedPostulate::kI2);
  ASSERT_TRUE(cex.has_value());
  std::string desc = cex->Describe();
  EXPECT_NE(desc.find("I2"), std::string::npos);
  EXPECT_NE(desc.find("mu1="), std::string::npos);
}

TEST(IteratedPostulatesTest, NamesAndStatements) {
  EXPECT_EQ(AllIteratedPostulates().size(), 4u);
  for (IteratedPostulate p : AllIteratedPostulates()) {
    EXPECT_FALSE(IteratedPostulateName(p).empty());
    EXPECT_FALSE(IteratedPostulateStatement(p).empty());
  }
}

}  // namespace
}  // namespace arbiter
