#ifndef ARBITER_CHANGE_REGISTRY_H_
#define ARBITER_CHANGE_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "change/operator.h"
#include "util/status.h"

/// \file registry.h
/// Name-based construction of the built-in theory change operators.
/// Names: "dalal", "satoh", "weber", "borgida", "winslett", "forbus",
/// "revesz-max", "revesz-sum", "arbitration-max", "arbitration-sum".

namespace arbiter {

/// Creates the operator registered under `name`.
Result<std::shared_ptr<const TheoryChangeOperator>> MakeOperator(
    const std::string& name);

/// Names of all registered operators, in a stable order.
std::vector<std::string> RegisteredOperatorNames();

/// Creates every registered operator (for compliance matrices).
std::vector<std::shared_ptr<const TheoryChangeOperator>> AllOperators();

}  // namespace arbiter

#endif  // ARBITER_CHANGE_REGISTRY_H_
