#include "sat/solver.h"

#include <algorithm>
#include <cmath>

namespace arbiter::sat {

Solver::Solver() = default;
Solver::~Solver() = default;

Var Solver::NewVar() {
  Var v = NumVars();
  watches_.emplace_back();
  watches_.emplace_back();
  assigns_.push_back(LBool::kUndef);
  polarity_.push_back(false);
  reason_.push_back(nullptr);
  level_.push_back(0);
  activity_.push_back(0.0);
  heap_index_.push_back(-1);
  seen_.push_back(false);
  HeapInsert(v);
  return v;
}

// ---------------------------------------------------------------------------
// Clause management
// ---------------------------------------------------------------------------

Clause* Solver::AllocClause(std::vector<Lit> lits, bool learnt) {
  auto clause = std::make_unique<Clause>();
  clause->lits = std::move(lits);
  clause->learnt = learnt;
  Clause* raw = clause.get();
  clauses_.push_back(std::move(clause));
  if (learnt) {
    ++num_learnt_clauses_;
  } else {
    ++num_problem_clauses_;
  }
  return raw;
}

void Solver::AttachClause(Clause* c) {
  ARBITER_DCHECK(c->size() >= 2);
  watches_[(~(*c)[0]).code()].push_back(Watcher{c, (*c)[1]});
  watches_[(~(*c)[1]).code()].push_back(Watcher{c, (*c)[0]});
}

void Solver::DetachClause(Clause* c) {
  ARBITER_DCHECK(c->size() >= 2);
  for (Lit w : {(*c)[0], (*c)[1]}) {
    std::vector<Watcher>& ws = watches_[(~w).code()];
    for (size_t i = 0; i < ws.size(); ++i) {
      if (ws[i].clause == c) {
        ws[i] = ws.back();
        ws.pop_back();
        break;
      }
    }
  }
}

void Solver::RemoveClause(Clause* c) {
  DetachClause(c);
  c->deleted = true;
  if (c->learnt) {
    --num_learnt_clauses_;
  } else {
    --num_problem_clauses_;
  }
}

bool Solver::Satisfied(const Clause& c) const {
  for (Lit l : c.lits) {
    if (Value(l) == LBool::kTrue) return true;
  }
  return false;
}

bool Solver::AddClause(std::vector<Lit> lits) {
  ARBITER_CHECK(DecisionLevel() == 0);
  if (!ok_) return false;
  // Sort, deduplicate, drop false literals, detect tautologies and
  // already-satisfied clauses.
  std::sort(lits.begin(), lits.end());
  std::vector<Lit> out;
  Lit prev;
  for (Lit l : lits) {
    ARBITER_CHECK_MSG(l.var() >= 0 && l.var() < NumVars(),
                      "literal over unknown variable");
    if (Value(l) == LBool::kTrue || (prev.defined() && l == ~prev)) {
      return true;  // clause is already true or tautological
    }
    if (Value(l) == LBool::kFalse || l == prev) continue;
    out.push_back(l);
    prev = l;
  }
  if (out.empty()) {
    ok_ = false;
    return false;
  }
  if (out.size() == 1) {
    UncheckedEnqueue(out[0], nullptr);
    ok_ = (Propagate() == nullptr);
    return ok_;
  }
  Clause* c = AllocClause(std::move(out), /*learnt=*/false);
  AttachClause(c);
  return true;
}

// ---------------------------------------------------------------------------
// Trail / propagation
// ---------------------------------------------------------------------------

void Solver::UncheckedEnqueue(Lit l, Clause* reason) {
  ARBITER_DCHECK(Value(l) == LBool::kUndef);
  assigns_[l.var()] = BoolToLBool(!l.negated());
  reason_[l.var()] = reason;
  level_[l.var()] = DecisionLevel();
  trail_.push_back(l);
}

Clause* Solver::Propagate() {
  Clause* conflict = nullptr;
  while (qhead_ < static_cast<int>(trail_.size())) {
    const Lit p = trail_[qhead_++];  // p is now true
    std::vector<Watcher>& ws = watches_[p.code()];
    size_t keep = 0;
    size_t i = 0;
    for (; i < ws.size(); ++i) {
      // Fast path: blocker already true.
      if (Value(ws[i].blocker) == LBool::kTrue) {
        ws[keep++] = ws[i];
        continue;
      }
      Clause& c = *ws[i].clause;
      // Normalize so the false watched literal (~p) is c[1].
      const Lit false_lit = ~p;
      if (c[0] == false_lit) std::swap(c[0], c[1]);
      ARBITER_DCHECK(c[1] == false_lit);
      // If the other watch is true the clause is satisfied.
      if (Value(c[0]) == LBool::kTrue) {
        ws[keep++] = Watcher{&c, c[0]};
        continue;
      }
      // Look for a replacement watch.
      bool moved = false;
      for (int k = 2; k < c.size(); ++k) {
        if (Value(c[k]) != LBool::kFalse) {
          std::swap(c[1], c[k]);
          watches_[(~c[1]).code()].push_back(Watcher{&c, c[0]});
          moved = true;
          break;
        }
      }
      if (moved) continue;
      // Clause is unit or conflicting.
      if (Value(c[0]) == LBool::kFalse) {
        conflict = &c;
        ws[keep++] = Watcher{&c, c[0]};
        // Copy the remaining watchers and stop propagating.
        for (++i; i < ws.size(); ++i) ws[keep++] = ws[i];
        qhead_ = static_cast<int>(trail_.size());
        break;
      }
      ws[keep++] = Watcher{&c, c[0]};
      UncheckedEnqueue(c[0], &c);
      ++stats_.propagations;
    }
    ws.resize(keep);
    if (conflict != nullptr) break;
  }
  return conflict;
}

void Solver::CancelUntil(int target_level) {
  if (DecisionLevel() <= target_level) return;
  const int bound = trail_lim_[target_level];
  for (int i = static_cast<int>(trail_.size()) - 1; i >= bound; --i) {
    Var v = trail_[i].var();
    polarity_[v] = (assigns_[v] == LBool::kTrue);
    assigns_[v] = LBool::kUndef;
    reason_[v] = nullptr;
    if (!HeapContains(v)) HeapInsert(v);
  }
  trail_.resize(bound);
  trail_lim_.resize(target_level);
  qhead_ = bound;
}

// ---------------------------------------------------------------------------
// Conflict analysis (first UIP + recursive minimization)
// ---------------------------------------------------------------------------

void Solver::Analyze(Clause* conflict, std::vector<Lit>* out_learnt,
                     int* out_btlevel) {
  out_learnt->clear();
  out_learnt->push_back(Lit());  // placeholder for the asserting literal
  int counter = 0;
  Lit p;  // undefined
  int index = static_cast<int>(trail_.size()) - 1;

  Clause* reason = conflict;
  do {
    ARBITER_DCHECK(reason != nullptr);
    if (reason->learnt) ClauseBumpActivity(reason);
    for (Lit q : reason->lits) {
      if (p.defined() && q == p) continue;
      Var v = q.var();
      if (!seen_[v] && level_[v] > 0) {
        seen_[v] = true;
        VarBumpActivity(v);
        if (level_[v] >= DecisionLevel()) {
          ++counter;
        } else {
          out_learnt->push_back(q);
        }
      }
    }
    // Select the next trail literal to expand.
    while (!seen_[trail_[index].var()]) --index;
    p = trail_[index];
    --index;
    reason = reason_[p.var()];
    seen_[p.var()] = false;
    --counter;
  } while (counter > 0);
  (*out_learnt)[0] = ~p;

  // Recursive clause minimization.
  analyze_toclear_ = *out_learnt;
  for (const Lit l : *out_learnt) seen_[l.var()] = true;
  uint32_t abstract_levels = 0;
  for (size_t i = 1; i < out_learnt->size(); ++i) {
    abstract_levels |= 1u << (level_[(*out_learnt)[i].var()] & 31);
  }
  size_t keep = 1;
  for (size_t i = 1; i < out_learnt->size(); ++i) {
    Lit l = (*out_learnt)[i];
    if (reason_[l.var()] == nullptr || !LitRedundant(l, abstract_levels)) {
      (*out_learnt)[keep++] = l;
    } else {
      ++stats_.minimized_literals;
    }
  }
  out_learnt->resize(keep);

  for (Lit l : analyze_toclear_) seen_[l.var()] = false;
  analyze_toclear_.clear();

  // Find the backtrack level: the second-highest level in the clause.
  if (out_learnt->size() == 1) {
    *out_btlevel = 0;
  } else {
    size_t max_i = 1;
    for (size_t i = 2; i < out_learnt->size(); ++i) {
      if (level_[(*out_learnt)[i].var()] >
          level_[(*out_learnt)[max_i].var()]) {
        max_i = i;
      }
    }
    std::swap((*out_learnt)[1], (*out_learnt)[max_i]);
    *out_btlevel = level_[(*out_learnt)[1].var()];
  }

  stats_.learnt_literals += out_learnt->size();
}

bool Solver::LitRedundant(Lit l, uint32_t abstract_levels) {
  analyze_stack_.clear();
  analyze_stack_.push_back(l);
  const size_t top = analyze_toclear_.size();
  while (!analyze_stack_.empty()) {
    Lit cur = analyze_stack_.back();
    analyze_stack_.pop_back();
    Clause* reason = reason_[cur.var()];
    ARBITER_DCHECK(reason != nullptr);
    for (Lit q : reason->lits) {
      Var v = q.var();
      if (v == cur.var()) continue;  // the implied literal itself
      if (seen_[v] || level_[v] == 0) continue;
      if (reason_[v] != nullptr &&
          ((1u << (level_[v] & 31)) & abstract_levels) != 0) {
        seen_[v] = true;
        analyze_stack_.push_back(q);
        analyze_toclear_.push_back(q);
      } else {
        // Not removable: undo the marks added during this call.
        for (size_t j = top; j < analyze_toclear_.size(); ++j) {
          seen_[analyze_toclear_[j].var()] = false;
        }
        analyze_toclear_.resize(top);
        return false;
      }
    }
  }
  return true;
}

void Solver::AnalyzeFinal(Lit p, std::vector<Lit>* out_conflict) {
  out_conflict->clear();
  out_conflict->push_back(p);
  if (DecisionLevel() == 0) return;
  seen_[p.var()] = true;
  for (int i = static_cast<int>(trail_.size()) - 1;
       i >= trail_lim_[0]; --i) {
    Var v = trail_[i].var();
    if (!seen_[v]) continue;
    if (reason_[v] == nullptr) {
      ARBITER_DCHECK(level_[v] > 0);
      out_conflict->push_back(~trail_[i]);
    } else {
      for (Lit q : reason_[v]->lits) {
        if (q.var() != v && level_[q.var()] > 0) seen_[q.var()] = true;
      }
    }
    seen_[v] = false;
  }
  seen_[p.var()] = false;
}

// ---------------------------------------------------------------------------
// Activity heuristics
// ---------------------------------------------------------------------------

void Solver::VarBumpActivity(Var v) {
  activity_[v] += var_inc_;
  if (activity_[v] > 1e100) {
    for (double& a : activity_) a *= 1e-100;
    var_inc_ *= 1e-100;
  }
  if (HeapContains(v)) HeapUpdate(v);
}

void Solver::VarDecayActivity() { var_inc_ /= var_decay_; }

void Solver::ClauseBumpActivity(Clause* c) {
  c->activity += clause_inc_;
  if (c->activity > 1e20) {
    for (const auto& clause : clauses_) {
      if (clause->learnt && !clause->deleted) clause->activity *= 1e-20;
    }
    clause_inc_ *= 1e-20;
  }
}

void Solver::ClauseDecayActivity() { clause_inc_ /= clause_decay_; }

Lit Solver::PickBranchLit() {
  while (!HeapEmpty()) {
    Var v = HeapRemoveMax();
    if (Value(v) == LBool::kUndef) {
      return Lit(v, !polarity_[v]);  // phase saving
    }
  }
  return Lit();  // undefined: all variables assigned
}

// ---------------------------------------------------------------------------
// Binary max-heap keyed on activity_
// ---------------------------------------------------------------------------

void Solver::HeapInsert(Var v) {
  ARBITER_DCHECK(!HeapContains(v));
  heap_index_[v] = static_cast<int>(heap_.size());
  heap_.push_back(v);
  HeapPercolateUp(heap_index_[v]);
}

void Solver::HeapUpdate(Var v) {
  HeapPercolateUp(heap_index_[v]);
  HeapPercolateDown(heap_index_[v]);
}

Var Solver::HeapRemoveMax() {
  ARBITER_DCHECK(!heap_.empty());
  Var top = heap_[0];
  heap_[0] = heap_.back();
  heap_index_[heap_[0]] = 0;
  heap_.pop_back();
  heap_index_[top] = -1;
  if (!heap_.empty()) HeapPercolateDown(0);
  return top;
}

void Solver::HeapPercolateUp(int i) {
  Var v = heap_[i];
  while (i > 0) {
    int parent = (i - 1) >> 1;
    if (activity_[heap_[parent]] >= activity_[v]) break;
    heap_[i] = heap_[parent];
    heap_index_[heap_[i]] = i;
    i = parent;
  }
  heap_[i] = v;
  heap_index_[v] = i;
}

void Solver::HeapPercolateDown(int i) {
  Var v = heap_[i];
  const int n = static_cast<int>(heap_.size());
  for (;;) {
    int child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n &&
        activity_[heap_[child + 1]] > activity_[heap_[child]]) {
      ++child;
    }
    if (activity_[heap_[child]] <= activity_[v]) break;
    heap_[i] = heap_[child];
    heap_index_[heap_[i]] = i;
    i = child;
  }
  heap_[i] = v;
  heap_index_[v] = i;
}

// ---------------------------------------------------------------------------
// Learnt clause DB reduction
// ---------------------------------------------------------------------------

void Solver::ReduceDB() {
  ++stats_.reduce_db_runs;
  std::vector<Clause*> learnts;
  for (const auto& c : clauses_) {
    if (c->learnt && !c->deleted) learnts.push_back(c.get());
  }
  std::sort(learnts.begin(), learnts.end(),
            [](const Clause* a, const Clause* b) {
              if ((a->size() > 2) != (b->size() > 2)) return a->size() > 2;
              return a->activity < b->activity;
            });
  const double threshold =
      clause_inc_ / std::max<size_t>(learnts.size(), 1);
  size_t removed = 0;
  for (size_t i = 0; i < learnts.size(); ++i) {
    Clause* c = learnts[i];
    if (c->size() <= 2) continue;
    // Never remove reason clauses of current assignments.
    bool locked = false;
    for (Lit l : c->lits) {
      if (reason_[l.var()] == c && Value(l) == LBool::kTrue) {
        locked = true;
        break;
      }
    }
    if (locked) continue;
    if (i < learnts.size() / 2 || c->activity < threshold) {
      RemoveClause(c);
      ++removed;
    }
  }
  // Physically drop deleted clauses when they dominate the arena.
  if (removed > 0 && clauses_.size() > 64 &&
      removed * 4 > clauses_.size()) {
    clauses_.erase(std::remove_if(clauses_.begin(), clauses_.end(),
                                  [](const std::unique_ptr<Clause>& c) {
                                    return c->deleted;
                                  }),
                   clauses_.end());
  }
}

// ---------------------------------------------------------------------------
// Search
// ---------------------------------------------------------------------------

double Solver::LubySequence(double y, int i) {
  // Finite-subsequence trick from MiniSat.
  int size = 1;
  int seq = 0;
  while (size < i + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != i) {
    size = (size - 1) >> 1;
    --seq;
    i = i % size;
  }
  return std::pow(y, seq);
}

SolveStatus Solver::Search(int64_t max_conflicts) {
  int64_t conflicts_here = 0;
  std::vector<Lit> learnt;
  double max_learnts =
      max_learnts_factor_ * std::max(num_problem_clauses_, 100);

  for (;;) {
    Clause* conflict = Propagate();
    if (conflict != nullptr) {
      ++stats_.conflicts;
      ++conflicts_here;
      if (DecisionLevel() == 0) return SolveStatus::kUnsat;
      int btlevel = 0;
      Analyze(conflict, &learnt, &btlevel);
      CancelUntil(btlevel);
      if (learnt.size() == 1) {
        UncheckedEnqueue(learnt[0], nullptr);
      } else {
        Clause* c = AllocClause(learnt, /*learnt=*/true);
        ClauseBumpActivity(c);
        AttachClause(c);
        UncheckedEnqueue(learnt[0], c);
      }
      ++stats_.learnt_clauses;
      VarDecayActivity();
      ClauseDecayActivity();
      continue;
    }

    // No conflict.
    if (conflicts_here >= max_conflicts) {
      CancelUntil(0);
      return SolveStatus::kUnknown;  // restart
    }
    if (conflict_budget_ >= 0 &&
        static_cast<int64_t>(stats_.conflicts) > conflict_budget_) {
      CancelUntil(0);
      return SolveStatus::kUnknown;
    }
    if (num_learnt_clauses_ > max_learnts +
                                  static_cast<double>(trail_.size())) {
      ReduceDB();
      max_learnts *= learnt_growth_;
    }

    // Assumptions first, then a decision.
    Lit next;
    while (DecisionLevel() < static_cast<int>(assumptions_.size())) {
      Lit a = assumptions_[DecisionLevel()];
      if (Value(a) == LBool::kTrue) {
        trail_lim_.push_back(static_cast<int>(trail_.size()));
      } else if (Value(a) == LBool::kFalse) {
        // The assumption is refuted by the others already enqueued:
        // extract the failing subset for FailedAssumptions().
        std::vector<Lit> negated_core;
        AnalyzeFinal(~a, &negated_core);
        failed_assumptions_.clear();
        for (Lit l : negated_core) failed_assumptions_.push_back(~l);
        return SolveStatus::kUnsat;
      } else {
        next = a;
        break;
      }
    }
    if (!next.defined()) {
      next = PickBranchLit();
      if (!next.defined()) {
        // All variables assigned: a model.
        model_.assign(assigns_.begin(), assigns_.end());
        return SolveStatus::kSat;
      }
      ++stats_.decisions;
    }
    trail_lim_.push_back(static_cast<int>(trail_.size()));
    UncheckedEnqueue(next, nullptr);
  }
}

void Solver::SimplifyDb() {
  if (!ok_ || DecisionLevel() != 0) return;
  // Make sure root-level propagation is complete first.
  if (Propagate() != nullptr) {
    ok_ = false;
    return;
  }
  // Root-level assignments are permanent facts; drop their reason
  // pointers so removing the (now satisfied) reason clauses is safe.
  for (Lit l : trail_) reason_[l.var()] = nullptr;
  size_t removed = 0;
  for (const auto& owned : clauses_) {
    Clause* c = owned.get();
    if (c->deleted) continue;
    if (Satisfied(*c)) {
      RemoveClause(c);
      ++removed;
      continue;
    }
    // Not satisfied and fully propagated at level 0: both watches are
    // unassigned, so falsified literals sit at positions >= 2 and can
    // be dropped without touching the watcher lists.
    for (int k = c->size() - 1; k >= 2; --k) {
      if (Value((*c)[k]) == LBool::kFalse) {
        (*c)[k] = c->lits.back();
        c->lits.pop_back();
      }
    }
  }
  if (removed > 0 && clauses_.size() > 64 &&
      removed * 4 > clauses_.size()) {
    clauses_.erase(std::remove_if(clauses_.begin(), clauses_.end(),
                                  [](const std::unique_ptr<Clause>& c) {
                                    return c->deleted;
                                  }),
                   clauses_.end());
  }
}

SolveStatus Solver::Solve() { return SolveAssuming({}); }

SolveStatus Solver::SolveAssuming(const std::vector<Lit>& assumptions) {
  if (!ok_) return SolveStatus::kUnsat;
  SimplifyDb();
  if (!ok_) return SolveStatus::kUnsat;
  assumptions_ = assumptions;
  failed_assumptions_.clear();
  model_.clear();

  SolveStatus status = SolveStatus::kUnknown;
  for (int restart = 0; status == SolveStatus::kUnknown; ++restart) {
    const double base = 100.0;
    int64_t budget = static_cast<int64_t>(LubySequence(2.0, restart) * base);
    status = Search(budget);
    if (status == SolveStatus::kUnknown) ++stats_.restarts;
    if (conflict_budget_ >= 0 &&
        static_cast<int64_t>(stats_.conflicts) > conflict_budget_) {
      break;
    }
  }
  CancelUntil(0);
  assumptions_.clear();
  return status;
}

}  // namespace arbiter::sat
