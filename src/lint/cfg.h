#ifndef ARBITER_LINT_CFG_H_
#define ARBITER_LINT_CFG_H_

#include <vector>

#include "store/script.h"

/// \file cfg.h
/// Control-flow graph over parsed `.belief` scripts, the substrate of
/// the dataflow lint layer (dataflow.h, flow_checks.h).
///
/// The script language is line-based and loop-free, so the CFG is a
/// DAG: statements chain in order, and each conditional forks into a
/// *taken* edge (through its guarded inner statement, which may itself
/// be a conditional) and a *fall-through* edge; both re-join at the
/// next top-level statement.  A synthetic entry node precedes the
/// first statement and a synthetic exit node terminates every path.
///
/// Edge convention: for a guard node (a kConditional statement),
/// successor 0 is the taken edge and successor 1 the fall-through
/// edge.  Every other node has exactly one successor.

namespace arbiter::lint {

struct CfgNode {
  enum class Kind {
    kEntry,      ///< synthetic start; no statement
    kStatement,  ///< one ScriptStatement (guards included)
    kExit,       ///< synthetic end; no statement
  };

  Kind kind = Kind::kStatement;
  /// The statement this node executes; null for entry/exit.  Points
  /// into the Cfg's owned script, stable for the Cfg's lifetime.
  const ScriptStatement* stmt = nullptr;
  /// True iff stmt is a conditional guard (two out-edges).
  bool is_guard = false;
  /// Index of the enclosing top-level statement (-1 for entry/exit);
  /// nested inner statements share their guard's index and line.
  int top_level = -1;

  std::vector<int> succs;
  std::vector<int> preds;
};

/// An immutable CFG.  Owns a copy of the script so statement pointers
/// in nodes stay valid.
class Cfg {
 public:
  /// Builds the CFG for `script`.
  static Cfg Build(BeliefScript script);

  const std::vector<CfgNode>& nodes() const { return nodes_; }
  const CfgNode& node(int id) const { return nodes_[id]; }
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  int entry() const { return 0; }
  int exit_node() const { return exit_; }
  const BeliefScript& script() const { return script_; }

  /// Node ids in reverse post-order from the entry (a topological
  /// order, since the graph is a DAG): every node appears after all of
  /// its predecessors.  Forward dataflow converges in one sweep.
  const std::vector<int>& ReversePostOrder() const { return rpo_; }

 private:
  Cfg() = default;

  BeliefScript script_;
  std::vector<CfgNode> nodes_;
  std::vector<int> rpo_;
  int exit_ = 0;
};

}  // namespace arbiter::lint

#endif  // ARBITER_LINT_CFG_H_
