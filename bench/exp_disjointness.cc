// Experiment E6 (DESIGN.md): Theorem 3.2 — revision, update, and
// model-fitting are pairwise disjoint operator classes.  For every
// registered operator we check, exhaustively over 2 terms, which
// premise axioms it satisfies and confirm that no operator satisfies
// any forbidden combination.  The Appendix B witness constructions are
// then traced against representative operators.

#include <cstdio>

#include "change/registry.h"
#include "postulates/theorems.h"
#include "util/string_util.h"

namespace {

using namespace arbiter;

void PrintClaim(const char* title,
                const std::vector<DisjointnessRow>& rows) {
  std::printf("\n%s\n", title);
  std::printf("  %-26s %-22s %-16s %s\n", "operator", "satisfies",
              "violates", "claim holds");
  for (const DisjointnessRow& row : rows) {
    std::printf("  %-26s %-22s %-16s %s\n", row.op_name.c_str(),
                Join(row.satisfied_premises, ",").c_str(),
                Join(row.violated_premises, ",").c_str(),
                row.conclusion_blocked ? "yes" : "NO - VIOLATED");
  }
}

}  // namespace

int main() {
  Theorem32Report report = VerifyTheorem32(AllOperators(), 2);
  std::printf("Theorem 3.2: pairwise disjointness of the three classes "
              "(exhaustive, n=2)\n");
  PrintClaim("Claim 1 - no operator satisfies both (R2) and (A8):",
             report.r2_a8);
  PrintClaim("Claim 2 - no operator satisfies (U2), (U8) and (A8):",
             report.u2_u8_a8);
  PrintClaim("Claim 3 - no operator satisfies (R1), (R2), (R3) and (U8):",
             report.r123_u8);
  std::printf("\nall claims hold: %s\n",
              report.all_claims_hold ? "yes" : "NO");

  std::printf("\n--- Appendix B witness traces ---\n\n");
  std::printf("%s\n", TraceR2A8Witness(*MakeOperator("dalal").ValueOrDie(),
                                       2)
                          .c_str());
  std::printf("%s\n",
              TraceU2U8A8Witness(*MakeOperator("winslett").ValueOrDie(), 2)
                  .c_str());
  std::printf("%s\n", TraceR123U8Witness(
                          *MakeOperator("dalal").ValueOrDie(), 2)
                          .c_str());
  return report.all_claims_hold ? 0 : 1;
}
