#ifndef ARBITER_LINT_DIAGNOSTIC_H_
#define ARBITER_LINT_DIAGNOSTIC_H_

#include <cstddef>
#include <string>
#include <vector>

/// \file diagnostic.h
/// The diagnostics engine behind arblint: a location-carrying finding
/// type plus text and JSON renderers.  Checks are identified by stable
/// string ids ("script/undo-empty", "dimacs/unused-var", ...) so CI
/// configurations and the fixture corpus can pin them.
///
/// Diagnostics may carry *fix-its* — byte-range replacement edits over
/// the original input text.  `ApplyFixIts` applies a batch of edits
/// (sorted, deduplicated, overlap-safe); `tools/arblint --fix` drives
/// it to a fixpoint.  The SARIF renderer (sarif.h) exports fix-its as
/// SARIF `fixes` so code-scanning UIs can offer them.

namespace arbiter::lint {

/// How bad a finding is.  Orderable: kError > kWarning > kNote.
enum class Severity {
  kNote = 0,     ///< informational; never affects exit codes
  kWarning = 1,  ///< suspicious but executable (error under --werror)
  kError = 2,    ///< the artifact is broken; executing it would fail
};

/// Short lowercase name ("note", "warning", "error").
const char* SeverityName(Severity severity);

/// Escapes a string for inclusion in a JSON string literal (shared by
/// the JSON and SARIF renderers).
std::string JsonEscape(const std::string& s);

/// One byte-range replacement edit over the *original* input text.
/// Replacing [offset, offset+length) with `replacement` fixes the
/// finding it is attached to.
struct FixIt {
  size_t offset = 0;        ///< byte offset into the input text
  size_t length = 0;        ///< bytes to delete (0 = pure insertion)
  std::string replacement;  ///< bytes to insert ("" = pure deletion)

  bool operator==(const FixIt& other) const {
    return offset == other.offset && length == other.length &&
           replacement == other.replacement;
  }
};

/// One finding, anchored to a source location.
struct Diagnostic {
  std::string file;       ///< input path ("<stdin>" when piped)
  int line = 0;           ///< 1-based; 0 anchors to the whole file
  int col = 1;            ///< 1-based column of the offending token
  Severity severity = Severity::kWarning;
  std::string check_id;   ///< stable id, e.g. "script/use-before-define"
  std::string message;    ///< what is wrong
  std::string note;       ///< optional context or suggested fix
  /// Machine-applicable edits that fix the finding (usually 0 or 1).
  std::vector<FixIt> fixits;
  /// Proof-certification status of the SAT verdict behind the finding
  /// (arblint --certify): -1 = not applicable (certification off, or
  /// the finding is not SAT-derived), 1 = the refutation was accepted
  /// by the independent DRAT checker, 0 = certification failed (the
  /// finding is emitted downgraded one severity notch).  Serialized to
  /// JSON/SARIF only when != -1.
  int certified = -1;

  bool operator==(const Diagnostic& other) const;

  /// "file:line:col: severity: message [check_id]" (+ "  note: ...").
  std::string ToString() const;
};

/// Renders diagnostics one per line, GCC style, ready for a terminal.
std::string RenderText(const std::vector<Diagnostic>& diagnostics);

/// Renders diagnostics as a JSON array of objects with keys
/// {file, line, col, severity, check_id, message, note, fixits} plus
/// "certified" when the diagnostic carries a certification verdict.
/// The schema is documented in docs/LINTING.md.
std::string RenderJson(const std::vector<Diagnostic>& diagnostics);

/// Renders a full report object:
///   {"tool": {"name": "arblint", "version": ..., "solver": ...},
///    "diagnostics": [...]}
/// where the diagnostics array is exactly RenderJson's output and the
/// solver string identifies the decision procedure behind semantic
/// verdicts (util/version.h).  `tools/arblint --format=json` emits
/// this shape.
std::string RenderJsonReport(const std::vector<Diagnostic>& diagnostics);

/// Canonicalizes diagnostics for rendering: stable sort by
/// (file, line, col, check id) — ties broken by severity, message,
/// note — then exact-duplicate removal.  Multi-analyzer merges and any
/// future parallel lint pass through this, so output is byte-identical
/// regardless of emission order.
void NormalizeDiagnostics(std::vector<Diagnostic>* diagnostics);

/// Applies every fix-it carried by `diagnostics` to `text` in one
/// batch: edits are sorted by offset, exact duplicates applied once,
/// and an edit overlapping an already-accepted one is skipped (the
/// batch stays well-defined even if two checks target the same bytes).
/// Returns the edited text; `applied`/`skipped` (optional) receive the
/// edit counts.
std::string ApplyFixIts(const std::string& text,
                        const std::vector<Diagnostic>& diagnostics,
                        int* applied = nullptr, int* skipped = nullptr);

/// The highest severity present (kNote when empty).
Severity MaxSeverity(const std::vector<Diagnostic>& diagnostics);

/// Counts diagnostics at exactly `severity`.
int CountAtSeverity(const std::vector<Diagnostic>& diagnostics,
                    Severity severity);

}  // namespace arbiter::lint

#endif  // ARBITER_LINT_DIAGNOSTIC_H_
