#ifndef ARBITER_LINT_DATAFLOW_H_
#define ARBITER_LINT_DATAFLOW_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "change/operator.h"
#include "lint/cfg.h"
#include "logic/formula.h"

/// \file dataflow.h
/// Path-sensitive abstract interpretation of belief scripts: the
/// abstract domain, join semantics, transfer functions, and a worklist
/// fixpoint engine over the script CFG (cfg.h).  flow_checks.h turns
/// the fixpoint into diagnostics.
///
/// Per base, the abstract value tracks
///  * a satisfiability lattice ⊥ < {unsat, sat} < ⊤ over the base's
///    current formula,
///  * the exact current formula where the paper's postulates force it
///    ((R1)/(U1)/(A1) unsat evidence, (R2) consistent revision, (R2)/
///    (U2) entailed evidence, define, undo of a tracked change),
///  * entailment facts — formulas the base provably entails on *every*
///    path, decided by the SAT core; conditional guards contribute
///    facts on their taken edge,
///  * an undo-depth interval [lo, hi] (branching makes exact depths
///    unknowable; the interval stays sound) plus an abstract history
///    stack of restore formulas while the depth is exact, and
///  * a model-count interval from bounded AllSAT.
///
/// Joins at merge points are fact-preserving: a formula survives the
/// join if the *other* side's abstract value also proves the base
/// entails it (so `define b := x & y` in one branch and `x & z` in the
/// other still yields the joined fact `x`).  All proofs are decided by
/// the SAT core, never by running theory change.

namespace arbiter::lint {

/// Satisfiability of a base's current formula.  kBottom = no value
/// (the base is undefined); kTop = unknown.
enum class SatLattice { kBottom, kUnsat, kSat, kTop };

SatLattice JoinSat(SatLattice a, SatLattice b);

/// Closed integer interval; joins widen to the convex hull.
struct IntInterval {
  int lo = 0;
  int hi = 0;

  bool operator==(const IntInterval& other) const {
    return lo == other.lo && hi == other.hi;
  }
};

/// Decides satisfiability / entailment / bounded model counts over the
/// script's vocabulary via the SAT core.  Queries are memoized per
/// analysis (formulas are compared structurally).
class SemanticOracle {
 public:
  /// `num_terms` is the script vocabulary size; `model_cap` bounds the
  /// AllSAT enumeration behind CountModels.
  SemanticOracle(int num_terms, int64_t model_cap);

  bool Sat(const Formula& f) const;
  bool Taut(const Formula& f) const { return !Sat(Not(f)); }
  bool Entails(const Formula& a, const Formula& b) const {
    return !Sat(And(a, Not(b)));
  }

  /// Certified mode (arblint --certify): every UNSAT answer is solved
  /// with DRAT recording and re-checked by the independent proof
  /// checker.  Flow verdicts are read off the whole fixpoint, so
  /// certification is aggregated rather than attributed per query:
  /// `all_unsat_certified()` is true iff every UNSAT verdict this
  /// oracle produced was accepted by the checker.
  void EnableCertification() { certify_ = true; }
  bool certify_enabled() const { return certify_; }
  bool all_unsat_certified() const { return all_unsat_certified_; }

  /// Model-count interval of f: exact [c, c] when the bounded AllSAT
  /// enumeration finishes under the cap, otherwise [cap, space()].
  void CountModels(const Formula& f, int64_t* lo, int64_t* hi) const;

  /// 2^num_terms, the size of the interpretation space.
  int64_t space() const { return space_; }
  int num_terms() const { return num_terms_; }

 private:
  int num_terms_;
  int64_t model_cap_;
  int64_t space_;
  bool certify_ = false;
  mutable bool all_unsat_certified_ = true;
  mutable std::map<uint64_t, bool> sat_cache_;
};

/// Abstract value of one base.
struct AbstractBase {
  /// True iff the base is defined on every path reaching here.  (Its
  /// mere presence in AbstractState::bases means "defined on at least
  /// one path".)
  bool surely_defined = false;
  SatLattice sat = SatLattice::kTop;
  /// The base's exact current formula, when the postulates force it.
  std::optional<Formula> exact;
  /// Formulas the base provably entails on every reaching path.
  std::vector<Formula> facts;
  /// Undo-history depth interval.
  IntInterval depth;
  /// Abstract undo stack (restore formulas, top at back); meaningful
  /// only while the depth is exact (lo == hi == stack.size()).
  std::vector<std::optional<Formula>> stack;
  /// Model-count interval of the current formula.
  int64_t models_lo = 0;
  int64_t models_hi = 0;

  bool DepthExact() const {
    return depth.lo == depth.hi &&
           static_cast<size_t>(depth.lo) == stack.size();
  }
};

bool BaseEquals(const AbstractBase& a, const AbstractBase& b);

/// Abstract program state at a CFG point.
struct AbstractState {
  bool reachable = false;
  std::map<std::string, AbstractBase> bases;
};

bool StateEquals(const AbstractState& a, const AbstractState& b);

/// True iff `value` proves its base entails f (on every path the value
/// summarizes): f is a tautology, the base is unsatisfiable, the exact
/// formula entails f, or the conjunction of facts entails f.
bool ProvesEntails(const SemanticOracle& oracle, const AbstractBase& value,
                   const Formula& f);

/// True iff `value` proves its base does NOT entail f on any path:
/// the exact formula is satisfiable and fails to entail f, or the base
/// is provably satisfiable while f is unsatisfiable.
bool ProvesNotEntails(const SemanticOracle& oracle,
                      const AbstractBase& value, const Formula& f);

/// Fact-preserving join of two abstract values of the same base.
AbstractBase JoinBase(const SemanticOracle& oracle, const AbstractBase& a,
                      const AbstractBase& b);

/// Join at a CFG merge point.  An unreachable side is the identity; a
/// base present on one side only loses `surely_defined`.
AbstractState JoinState(const SemanticOracle& oracle,
                        const AbstractState& a, const AbstractState& b);

/// Per-statement semantic inputs resolved by the front end: the parsed
/// payload formula (nullopt on formula-syntax errors) and, for change
/// statements, the named operator's family (nullopt when unknown).
struct StatementInfo {
  std::optional<Formula> payload;
  std::optional<OperatorFamily> family;
};

/// The worklist fixpoint engine.  Owns nothing; cfg and info must
/// outlive it.
class ScriptDataflow {
 public:
  ScriptDataflow(const Cfg* cfg,
                 const std::map<const ScriptStatement*, StatementInfo>* info,
                 SemanticOracle oracle);

  /// Iterates edge transfer + merge joins to a fixpoint.  Terminates
  /// on any CFG (the worklist is RPO-prioritized; on the DAG cfgs the
  /// script language produces, this is a single sweep).
  void Run();

  /// Joined in-state of a node (valid after Run()).
  const AbstractState& InState(int node) const { return in_states_[node]; }

  /// Out-state along `node`'s successor edge `i` (taken edge is 0 for
  /// guards; see cfg.h).
  const AbstractState& EdgeState(int node, int i) const {
    return edge_states_[node][i];
  }

  const SemanticOracle& oracle() const { return oracle_; }
  const StatementInfo& InfoFor(const ScriptStatement* stmt) const;

 private:
  void Transfer(int node, const AbstractState& in,
                std::vector<AbstractState>* outs) const;

  const Cfg* cfg_;
  const std::map<const ScriptStatement*, StatementInfo>* info_;
  SemanticOracle oracle_;
  std::vector<AbstractState> in_states_;
  std::vector<std::vector<AbstractState>> edge_states_;
};

}  // namespace arbiter::lint

#endif  // ARBITER_LINT_DATAFLOW_H_
