#ifndef ARBITER_CHANGE_WEIGHTED_H_
#define ARBITER_CHANGE_WEIGHTED_H_

#include <string>

#include "kb/weighted_kb.h"

/// \file weighted.h
/// Weighted model-fitting and weighted arbitration (paper, Section 4).
///
/// The concrete operator ranks interpretations by
///   wdist(ψ̃, I) = Σ_J dist(I, J) · ψ̃(J)
/// and applies the paper's weighted Min:
///   Mod(ψ̃ ▷ μ̃)(I) = μ̃(I) if I ∈ Min(support(μ̃), ≤ψ̃) else 0.
///
/// Weighted arbitration is ψ̃ Δ φ̃ = (ψ̃ ∨ φ̃) ▷ M̃ with M̃ uniform weight
/// one (Corollary 4.1).

namespace arbiter {

/// A binary weighted theory change operator.
class WeightedChangeOperator {
 public:
  virtual ~WeightedChangeOperator() = default;
  virtual std::string name() const = 0;
  virtual WeightedKnowledgeBase Change(
      const WeightedKnowledgeBase& psi,
      const WeightedKnowledgeBase& mu) const = 0;
};

/// The paper's wdist-based weighted model-fitting operator.
class WdistFitting : public WeightedChangeOperator {
 public:
  std::string name() const override { return "wdist-fitting"; }
  WeightedKnowledgeBase Change(
      const WeightedKnowledgeBase& psi,
      const WeightedKnowledgeBase& mu) const override;
};

/// Weighted arbitration: (ψ̃ ∨ φ̃) ▷ M̃.
class WeightedArbitration : public WeightedChangeOperator {
 public:
  std::string name() const override { return "weighted-arbitration"; }
  WeightedKnowledgeBase Change(
      const WeightedKnowledgeBase& psi,
      const WeightedKnowledgeBase& phi) const override;
};

}  // namespace arbiter

#endif  // ARBITER_CHANGE_WEIGHTED_H_
