#include "core/arbiter.h"

#include "change/fitting.h"
#include "change/revision.h"
#include "change/update.h"
#include "change/weighted.h"

namespace arbiter {

Arbiter::Arbiter(const std::vector<std::string>& term_names) {
  vocab_ = Vocabulary::FromNames(term_names).ValueOrDie();
}

Result<KnowledgeBase> Arbiter::ParseKb(const std::string& text) {
  Result<Formula> f = Parse(text, &vocab_);
  if (!f.ok()) return f.status();
  if (vocab_.size() > kMaxEnumTerms) {
    return Status::CapacityExceeded(
        "vocabulary exceeds enumeration limit; use src/solve/ for "
        "SAT-based operations");
  }
  return KnowledgeBase(*f, vocab_.size());
}

KnowledgeBase Arbiter::Rebase(const KnowledgeBase& kb) const {
  return KnowledgeBase(kb.formula(), vocab_.size());
}

Result<WeightedKnowledgeBase> Arbiter::ParseWeightedKb(
    const std::string& text) {
  Result<Formula> f = Parse(text, &vocab_);
  if (!f.ok()) return f.status();
  return WeightedKnowledgeBase::FromFormula(*f, vocab_.size());
}

Result<KnowledgeBase> Arbiter::Change(const std::string& op_name,
                                      const KnowledgeBase& psi,
                                      const KnowledgeBase& mu) const {
  auto op = MakeOperator(op_name);
  if (!op.ok()) return op.status();
  return (*op)->Apply(psi, mu);
}

KnowledgeBase Arbiter::Revise(const KnowledgeBase& psi,
                              const KnowledgeBase& mu) const {
  return DalalRevision().Apply(psi, mu);
}

KnowledgeBase Arbiter::Update(const KnowledgeBase& psi,
                              const KnowledgeBase& mu) const {
  return WinslettUpdate().Apply(psi, mu);
}

KnowledgeBase Arbiter::Fit(const KnowledgeBase& psi,
                           const KnowledgeBase& mu) const {
  return MaxFitting().Apply(psi, mu);
}

KnowledgeBase Arbiter::Arbitrate(const KnowledgeBase& psi,
                                 const KnowledgeBase& phi) const {
  return MakeMaxArbitration().Apply(psi, phi);
}

WeightedKnowledgeBase Arbiter::ArbitrateWeighted(
    const WeightedKnowledgeBase& psi,
    const WeightedKnowledgeBase& phi) const {
  return WeightedArbitration().Change(psi, phi);
}

const char* Version() { return "1.0.0"; }

}  // namespace arbiter
