#ifndef ARBITER_LOGIC_MINIMIZE_H_
#define ARBITER_LOGIC_MINIMIZE_H_

#include <cstdint>
#include <vector>

#include "logic/formula.h"

/// \file minimize.h
/// Two-level minimization of model sets into compact DNF via
/// Quine–McCluskey prime implicants with a greedy cover.  Results of
/// theory change are computed semantically (sets of models); without
/// minimization they print as full minterm disjunctions, which are
/// unreadable past a handful of models.  KnowledgeBase::FromModels
/// (and hence the store, REPL, and examples) uses this.
///
/// Exact minimum cover is NP-hard; the greedy cover is within the
/// usual ln(n) factor and exact on small inputs in practice.  The
/// result is always logically equivalent to the input model set.

namespace arbiter {

/// A compact DNF formula whose models over `num_terms` terms are
/// exactly `models`.  Empty input yields ⊥; the full space yields ⊤.
/// Requires num_terms <= kMaxEnumTerms.
Formula MinimizeToDnf(const std::vector<uint64_t>& models, int num_terms);

/// An implicant: the conjunction of literals fixing `value` on the
/// bits of `care_mask` (other variables free).
struct Implicant {
  uint64_t care_mask = 0;
  uint64_t value = 0;

  bool Covers(uint64_t model) const {
    return (model & care_mask) == value;
  }
  bool operator==(const Implicant& o) const {
    return care_mask == o.care_mask && value == o.value;
  }
  bool operator<(const Implicant& o) const {
    return care_mask != o.care_mask ? care_mask < o.care_mask
                                    : value < o.value;
  }
};

/// All prime implicants of the model set (exposed for testing).
std::vector<Implicant> PrimeImplicants(const std::vector<uint64_t>& models,
                                       int num_terms);

}  // namespace arbiter

#endif  // ARBITER_LOGIC_MINIMIZE_H_
