#ifndef ARBITER_SERVER_SESSION_H_
#define ARBITER_SERVER_SESSION_H_

#include <istream>
#include <ostream>

#include "server/frame.h"
#include "server/server.h"

/// \file session.h
/// One client session: a frame loop over an istream/ostream pair.
/// The same loop serves stdio and every accepted socket connection.

namespace arbiter::server {

/// Serves frames from `in` until end of stream, a protocol error
/// (reported as an ERR response), or a SHUTDOWN frame.  Returns true
/// iff the session ended with SHUTDOWN — the transport decides whether
/// that stops the whole process (stdio/belief_serve) or just the
/// connection.
bool ServeStream(std::istream& in, std::ostream& out, BeliefServer* server);

}  // namespace arbiter::server

#endif  // ARBITER_SERVER_SESSION_H_
