// Serial-vs-pruned-vs-parallel comparison for the fitting operators
// (ISSUE: parallel + pruned distance kernels).  Emits machine-readable
// JSON to BENCH_parallel.json (or argv[1]).
//
// Arms, per (operator, n) workload:
//   * seed_serial   — the pre-optimization baseline, reimplemented
//                     locally: unpruned odist/sdist inside a naive
//                     two-pass argmin (exactly what the seed shipped).
//   * pruned_serial — the library with the pool pinned to 1 thread:
//                     branch-and-bound kernels, no threading.
//   * parallel_T    — the library at T = 2, 4, 8 threads (pruned AND
//                     chunked across the pool).
//
// Every arm's ModelSet result is checked bit-identical against the
// seed arm before timing is reported; a mismatch aborts the run.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "change/fitting.h"
#include "model/distance.h"
#include "util/parallel.h"
#include "util/random.h"

namespace {

using namespace arbiter;
using Clock = std::chrono::steady_clock;

ModelSet RandomSet(Rng* rng, int n, double density) {
  std::vector<uint64_t> masks;
  for (uint64_t m = 0; m < (1ULL << n); ++m) {
    if (rng->NextBool(density)) masks.push_back(m);
  }
  if (masks.empty()) masks.push_back(0);
  return ModelSet::FromMasks(std::move(masks), n);
}

// ---- Seed baseline: unpruned kernels + naive argmin. ----

int SeedOverallDist(const ModelSet& psi, uint64_t i) {
  int worst = -1;
  for (uint64_t j : psi) worst = std::max(worst, Dist(i, j));
  return worst;
}

int64_t SeedSumDist(const ModelSet& psi, uint64_t i) {
  int64_t total = 0;
  for (uint64_t j : psi) total += Dist(i, j);
  return total;
}

template <typename RankFn>
ModelSet SeedMinByInt(const ModelSet& s, const RankFn& rank) {
  int64_t best = INT64_MAX;
  for (uint64_t m : s) best = std::min(best, rank(m));
  std::vector<uint64_t> out;
  for (uint64_t m : s) {
    if (rank(m) == best) out.push_back(m);
  }
  return ModelSet::FromMasks(std::move(out), s.num_terms());
}

ModelSet SeedMaxFitting(const ModelSet& psi, const ModelSet& mu) {
  return SeedMinByInt(mu, [&psi](uint64_t i) {
    return static_cast<int64_t>(SeedOverallDist(psi, i));
  });
}

ModelSet SeedSumFitting(const ModelSet& psi, const ModelSet& mu) {
  return SeedMinByInt(mu, [&psi](uint64_t i) { return SeedSumDist(psi, i); });
}

// ---- Harness ----

struct ArmResult {
  std::string arm;
  int threads = 1;  // pool size while the arm ran (seed arm: 1)
  double ns_per_call = 0;
  int reps = 0;
};

// Times fn() adaptively: calibrate with one call, then rep until the
// arm has ~0.4s or kMinReps, whichever is larger.
template <typename Fn>
ArmResult TimeArm(const std::string& name, int threads, const Fn& fn) {
  constexpr double kTargetSec = 0.4;
  constexpr int kMinReps = 3;
  auto t0 = Clock::now();
  fn();
  double once = std::chrono::duration<double>(Clock::now() - t0).count();
  int reps = std::max(kMinReps, static_cast<int>(kTargetSec / (once + 1e-9)));
  reps = std::min(reps, 10000);
  t0 = Clock::now();
  for (int r = 0; r < reps; ++r) fn();
  double total = std::chrono::duration<double>(Clock::now() - t0).count();
  return {name, threads, total / reps * 1e9, reps};
}

struct Workload {
  std::string op;  // "revesz-max" | "revesz-sum"
  int n;
  ModelSet psi;
  ModelSet mu;
  std::vector<ArmResult> arms;
};

void Fail(const std::string& msg) {
  std::fprintf(stderr, "bench_parallel: %s\n", msg.c_str());
  std::exit(1);
}

std::string JsonEscape(const std::string& s) { return s; }  // names are safe

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_parallel.json";
  const int hw = static_cast<int>(std::thread::hardware_concurrency());
  const double density = 0.15;
  const int thread_arms[] = {2, 4, 8};

  std::vector<Workload> workloads;
  for (int n : {16, 18}) {
    Rng rng(42 + n);
    ModelSet psi = RandomSet(&rng, n, density);
    ModelSet mu = RandomSet(&rng, n, density);
    workloads.push_back({"revesz-max", n, psi, mu, {}});
    workloads.push_back({"revesz-sum", n, psi, mu, {}});
  }

  MaxFitting max_fit;
  SumFitting sum_fit;
  for (Workload& w : workloads) {
    const bool is_max = w.op == "revesz-max";
    ModelSet expected = is_max ? SeedMaxFitting(w.psi, w.mu)
                               : SeedSumFitting(w.psi, w.mu);
    auto lib = [&] {
      return is_max ? max_fit.Change(w.psi, w.mu)
                    : sum_fit.Change(w.psi, w.mu);
    };

    w.arms.push_back(TimeArm("seed_serial", 1, [&] {
      ModelSet r = is_max ? SeedMaxFitting(w.psi, w.mu)
                          : SeedSumFitting(w.psi, w.mu);
      if (r != expected) Fail("seed arm nondeterministic");
    }));

    ThreadPool::Instance().SetNumThreads(1);
    if (lib() != expected) Fail(w.op + ": pruned_serial result mismatch");
    w.arms.push_back(TimeArm("pruned_serial", 1, lib));

    for (int t : thread_arms) {
      ThreadPool::Instance().SetNumThreads(t);
      if (lib() != expected) {
        Fail(w.op + ": parallel result mismatch at " + std::to_string(t) +
             " threads");
      }
      w.arms.push_back(
          TimeArm("parallel_" + std::to_string(t), t, lib));
    }
    ThreadPool::Instance().SetNumThreads(0);

    std::printf("%-10s n=%d  |psi|=%zu |mu|=%zu\n", w.op.c_str(), w.n,
                w.psi.size(), w.mu.size());
    const double seed_ns = w.arms.front().ns_per_call;
    for (const ArmResult& a : w.arms) {
      std::printf("  %-14s %12.0f ns/call  (%.2fx vs seed, reps=%d)\n",
                  a.arm.c_str(), a.ns_per_call, seed_ns / a.ns_per_call,
                  a.reps);
    }
  }

  FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) Fail("cannot open " + out_path);
  std::fprintf(f, "{\n  \"benchmark\": \"bench_parallel\",\n");
  std::fprintf(f, "  \"hardware_concurrency\": %d,\n", hw);
  std::fprintf(f, "  \"density\": %.2f,\n  \"workloads\": [\n", density);
  for (size_t i = 0; i < workloads.size(); ++i) {
    const Workload& w = workloads[i];
    std::fprintf(f,
                 "    {\"operator\": \"%s\", \"num_terms\": %d, "
                 "\"psi_models\": %zu, \"mu_models\": %zu, \"arms\": [\n",
                 JsonEscape(w.op).c_str(), w.n, w.psi.size(), w.mu.size());
    const double seed_ns = w.arms.front().ns_per_call;
    for (size_t j = 0; j < w.arms.size(); ++j) {
      const ArmResult& a = w.arms[j];
      std::fprintf(f,
                   "      {\"arm\": \"%s\", \"threads\": %d, "
                   "\"ns_per_call\": %.0f, \"reps\": %d, "
                   "\"speedup_vs_seed\": %.3f}%s\n",
                   a.arm.c_str(), a.threads, a.ns_per_call, a.reps,
                   seed_ns / a.ns_per_call,
                   j + 1 < w.arms.size() ? "," : "");
    }
    std::fprintf(f, "    ]}%s\n", i + 1 < workloads.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
