// Tests for the update operators (Winslett PMA, Forbus).

#include "change/update.h"

#include <gtest/gtest.h>

#include "change/revision.h"
#include "util/random.h"

namespace arbiter {
namespace {

ModelSet Ms(std::vector<uint64_t> masks, int n) {
  return ModelSet::FromMasks(std::move(masks), n);
}

TEST(WinslettTest, UpdatesEachModelIndependently) {
  // The classic book/magazine example: psi = (b & !m) | (!b & m)
  // ("exactly one on the table"), mu = b ("the book is on the table").
  // Update: each world moves minimally — {b,!m} stays, {!b,m} becomes
  // {b,m} (m keeps its value).  Result: b, with m free.
  WinslettUpdate op;
  ModelSet psi = Ms({0b01, 0b10}, 2);  // b=bit0, m=bit1
  ModelSet mu = Ms({0b01, 0b11}, 2);   // b true
  EXPECT_EQ(op.Change(psi, mu), Ms({0b01, 0b11}, 2));
  // Revision instead collapses to the closest worlds globally: b & !m.
  EXPECT_EQ(DalalRevision().Change(psi, mu), Ms({0b01}, 2));
}

TEST(WinslettTest, PerModelInclusionMinimal) {
  WinslettUpdate op;
  ModelSet psi = Ms({0b000}, 3);
  ModelSet mu = Ms({0b001, 0b011}, 3);  // diffs {p0} ⊂ {p0,p1}
  EXPECT_EQ(op.Change(psi, mu), Ms({0b001}, 3));
}

TEST(WinslettTest, IncomparableDiffsBothKept) {
  WinslettUpdate op;
  ModelSet psi = Ms({0b000}, 3);
  ModelSet mu = Ms({0b001, 0b110}, 3);  // {p0} vs {p1,p2}: incomparable
  EXPECT_EQ(op.Change(psi, mu), mu);
}

TEST(ForbusTest, PerModelMinimumCardinality) {
  ForbusUpdate op;
  ModelSet psi = Ms({0b000}, 3);
  ModelSet mu = Ms({0b001, 0b110}, 3);  // distances 1 and 2
  EXPECT_EQ(op.Change(psi, mu), Ms({0b001}, 3));
}

TEST(UpdateTest, UnsatPsiGivesUnsatResult) {
  // (U-style): update of an empty knowledge base is empty — unlike our
  // revision convention.
  ModelSet empty(2);
  ModelSet mu = Ms({0b01}, 2);
  EXPECT_TRUE(WinslettUpdate().Change(empty, mu).empty());
  EXPECT_TRUE(ForbusUpdate().Change(empty, mu).empty());
  EXPECT_EQ(DalalRevision().Change(empty, mu), mu);
}

TEST(UpdateTest, UnsatMuGivesUnsatResult) {
  ModelSet psi = Ms({0b01}, 2);
  EXPECT_TRUE(WinslettUpdate().Change(psi, ModelSet(2)).empty());
  EXPECT_TRUE(ForbusUpdate().Change(psi, ModelSet(2)).empty());
}

TEST(UpdateTest, DecomposesOverPsiModels) {
  // (U8): updating a disjunction = union of the updates.
  Rng rng(654);
  WinslettUpdate winslett;
  ForbusUpdate forbus;
  for (int round = 0; round < 100; ++round) {
    std::vector<uint64_t> m1, m2, mm;
    for (uint64_t m = 0; m < 8; ++m) {
      if (rng.NextBool(0.4)) m1.push_back(m);
      if (rng.NextBool(0.4)) m2.push_back(m);
      if (rng.NextBool(0.4)) mm.push_back(m);
    }
    ModelSet psi1 = Ms(m1, 3), psi2 = Ms(m2, 3), mu = Ms(mm, 3);
    for (const TheoryChangeOperator* op :
         {static_cast<const TheoryChangeOperator*>(&winslett),
          static_cast<const TheoryChangeOperator*>(&forbus)}) {
      EXPECT_EQ(op->Change(psi1.Union(psi2), mu),
                op->Change(psi1, mu).Union(op->Change(psi2, mu)))
          << op->name() << " round " << round;
    }
  }
}

TEST(UpdateTest, InertiaOnImpliedInformation) {
  // (U2): if psi implies mu, update changes nothing.
  Rng rng(777);
  WinslettUpdate winslett;
  ForbusUpdate forbus;
  for (int round = 0; round < 50; ++round) {
    std::vector<uint64_t> mm;
    for (uint64_t m = 0; m < 8; ++m) {
      if (rng.NextBool(0.5)) mm.push_back(m);
    }
    if (mm.empty()) continue;
    ModelSet mu = Ms(mm, 3);
    // psi: random nonempty subset of mu.
    std::vector<uint64_t> mp;
    for (uint64_t m : mu) {
      if (rng.NextBool(0.5)) mp.push_back(m);
    }
    if (mp.empty()) mp.push_back(mu[0]);
    ModelSet psi = Ms(mp, 3);
    EXPECT_EQ(winslett.Change(psi, mu), psi);
    EXPECT_EQ(forbus.Change(psi, mu), psi);
  }
}

TEST(UpdateTest, ForbusRefinesWinslett) {
  // Forbus's cardinality-minimal diffs are a subset of Winslett's
  // ⊆-minimal ones per model... globally the union relation still
  // holds: every Forbus result model is a Winslett result model.
  Rng rng(135);
  for (int round = 0; round < 100; ++round) {
    std::vector<uint64_t> mp, mm;
    for (uint64_t m = 0; m < 16; ++m) {
      if (rng.NextBool(0.3)) mp.push_back(m);
      if (rng.NextBool(0.3)) mm.push_back(m);
    }
    ModelSet psi = Ms(mp, 4), mu = Ms(mm, 4);
    EXPECT_TRUE(ForbusUpdate()
                    .Change(psi, mu)
                    .IsSubsetOf(WinslettUpdate().Change(psi, mu)))
        << "round " << round;
  }
}

TEST(UpdateTest, FamiliesAndNames) {
  EXPECT_EQ(WinslettUpdate().family(), OperatorFamily::kUpdate);
  EXPECT_EQ(WinslettUpdate().name(), "winslett");
  EXPECT_EQ(ForbusUpdate().name(), "forbus");
}

}  // namespace
}  // namespace arbiter
