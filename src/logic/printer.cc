#include "logic/printer.h"

namespace arbiter {

namespace {

// Binding strength, loosest to tightest.  Matches the parser's grammar.
int Precedence(FormulaKind kind) {
  switch (kind) {
    case FormulaKind::kIff:
      return 1;
    case FormulaKind::kImplies:
      return 2;
    case FormulaKind::kXor:
      return 3;
    case FormulaKind::kOr:
      return 4;
    case FormulaKind::kAnd:
      return 5;
    case FormulaKind::kNot:
      return 6;
    default:
      return 7;  // atoms
  }
}

void Print(const Formula& f, const Vocabulary& vocab, int parent_prec,
           std::string* out) {
  const int prec = Precedence(f.kind());
  const bool need_parens = prec < parent_prec;
  if (need_parens) out->push_back('(');
  switch (f.kind()) {
    case FormulaKind::kTrue:
      *out += "true";
      break;
    case FormulaKind::kFalse:
      *out += "false";
      break;
    case FormulaKind::kVar:
      *out += vocab.Name(f.var());
      break;
    case FormulaKind::kNot:
      *out += "!";
      Print(f.child(0), vocab, prec + 1, out);
      break;
    case FormulaKind::kAnd:
      for (int i = 0; i < f.num_children(); ++i) {
        if (i > 0) *out += " & ";
        Print(f.child(i), vocab, prec, out);
      }
      break;
    case FormulaKind::kOr:
      for (int i = 0; i < f.num_children(); ++i) {
        if (i > 0) *out += " | ";
        Print(f.child(i), vocab, prec, out);
      }
      break;
    case FormulaKind::kImplies:
      // Right-associative: the left operand needs strictly tighter binding.
      Print(f.child(0), vocab, prec + 1, out);
      *out += " -> ";
      Print(f.child(1), vocab, prec, out);
      break;
    case FormulaKind::kIff:
      Print(f.child(0), vocab, prec + 1, out);
      *out += " <-> ";
      Print(f.child(1), vocab, prec + 1, out);
      break;
    case FormulaKind::kXor:
      Print(f.child(0), vocab, prec + 1, out);
      *out += " ^ ";
      Print(f.child(1), vocab, prec + 1, out);
      break;
  }
  if (need_parens) out->push_back(')');
}

}  // namespace

std::string ToString(const Formula& f, const Vocabulary& vocab) {
  ARBITER_CHECK(f.MaxVar() < vocab.size());
  std::string out;
  Print(f, vocab, 0, &out);
  return out;
}

std::string ToString(const Formula& f) {
  Vocabulary vocab = Vocabulary::Synthetic(f.MaxVar() + 1);
  return ToString(f, vocab);
}

}  // namespace arbiter
