#ifndef ARBITER_TEST_SUPPORT_PROOF_FUZZ_H_
#define ARBITER_TEST_SUPPORT_PROOF_FUZZ_H_

#include <cstdint>
#include <string>

/// \file proof_fuzz.h
/// Proof-certification fuzzing: random CNF instances (over- and
/// under-constrained k-CNF plus crafted pigeonhole cases) solved with
/// proof recording on, through both the raw CDCL path and the full
/// SatELite pipeline.  Every UNSAT verdict must come back with a
/// DRAT refutation the independent checker accepts; every SAT verdict
/// must come back with a model that satisfies the instance.  Shared by
/// the fixed-seed ctest smoke tier and bench/fuzz_driver --proof-cases.

namespace arbiter::test_support {

struct ProofFuzzOptions {
  uint64_t seed = 0;
  int cases = 100;
  /// Stop at the first failing case (the driver keeps going to count).
  bool stop_on_failure = true;
};

struct ProofFuzzResult {
  int cases_run = 0;
  int unsat_cases = 0;    // instances with at least one UNSAT verdict
  int sat_cases = 0;
  int failures = 0;
  /// Human-readable description of the first failure (seed, pipeline,
  /// and checker error), empty when all cases passed.
  std::string first_failure;
};

/// Runs `options.cases` random instances through both pipelines with
/// certification on.  Deterministic in `options.seed`.
ProofFuzzResult RunProofFuzz(const ProofFuzzOptions& options);

}  // namespace arbiter::test_support

#endif  // ARBITER_TEST_SUPPORT_PROOF_FUZZ_H_
