// DIMACS regression corpus for the SAT tier: every instance under
// tests/dimacs_corpus/ carries a "c expect: sat|unsat" annotation and
// is solved four ways — preprocessing tier, preprocessing disabled,
// raw CDCL solver, and (small instances) the DPLL baseline.  SAT
// answers are checked against the original clauses through the tier's
// ModelValue, which exercises model reconstruction for every variable
// BVE eliminated (nothing is frozen here).

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "proof/certify.h"
#include "sat/dimacs.h"
#include "sat/dpll.h"
#include "sat/preprocessor.h"
#include "sat/solver.h"

namespace arbiter::sat {
namespace {

constexpr const char* kCorpusDir =
    ARBITER_SOURCE_DIR "/tests/dimacs_corpus";

struct CorpusCase {
  std::string name;
  bool expect_sat = false;
  CnfInstance instance;
};

std::vector<CorpusCase> LoadCorpus() {
  std::vector<CorpusCase> cases;
  for (const auto& entry :
       std::filesystem::directory_iterator(kCorpusDir)) {
    if (entry.path().extension() != ".cnf") continue;
    std::ifstream in(entry.path());
    std::stringstream buffer;
    buffer << in.rdbuf();
    const std::string text = buffer.str();
    CorpusCase c;
    c.name = entry.path().filename().string();
    const size_t pos = text.find("c expect: ");
    EXPECT_NE(pos, std::string::npos)
        << c.name << " is missing its 'c expect:' annotation";
    if (pos == std::string::npos) continue;
    // "unsat" also contains "sat", so match the longer word first.
    c.expect_sat = text.compare(pos + 10, 5, "unsat") != 0;
    Result<CnfInstance> parsed = ParseDimacs(text);
    EXPECT_TRUE(parsed.ok()) << c.name << ": " << parsed.status().ToString();
    if (!parsed.ok()) continue;
    c.instance = std::move(parsed).ValueOrDie();
    cases.push_back(std::move(c));
  }
  std::sort(cases.begin(), cases.end(),
            [](const CorpusCase& a, const CorpusCase& b) {
              return a.name < b.name;
            });
  return cases;
}

void Load(const CnfInstance& instance, ClauseSink* sink) {
  for (int v = 0; v < instance.num_vars; ++v) sink->NewVar();
  for (const std::vector<Lit>& c : instance.clauses) sink->AddClause(c);
}

bool ModelSatisfies(const CnfInstance& instance, const SatEngine& engine) {
  for (const std::vector<Lit>& c : instance.clauses) {
    bool satisfied = false;
    for (const Lit l : c) {
      if (engine.ModelValue(l.var()) != l.negated()) {
        satisfied = true;
        break;
      }
    }
    if (!satisfied) return false;
  }
  return true;
}

TEST(SatDimacsCorpusTest, CorpusIsNonTrivial) {
  const std::vector<CorpusCase> corpus = LoadCorpus();
  EXPECT_GE(corpus.size(), 5u);
  bool any_sat = false, any_unsat = false;
  for (const CorpusCase& c : corpus) {
    (c.expect_sat ? any_sat : any_unsat) = true;
  }
  EXPECT_TRUE(any_sat);
  EXPECT_TRUE(any_unsat);
}

TEST(SatDimacsCorpusTest, TierMatchesAnnotations) {
  for (const CorpusCase& c : LoadCorpus()) {
    SatPreprocessor tier;
    Load(c.instance, &tier);
    const SolveStatus status = tier.Solve();
    EXPECT_EQ(status == SolveStatus::kSat, c.expect_sat) << c.name;
    if (status == SolveStatus::kSat) {
      EXPECT_TRUE(ModelSatisfies(c.instance, tier))
          << c.name << " (eliminated=" << tier.pstats().eliminated_vars
          << ")";
    }
  }
}

TEST(SatDimacsCorpusTest, DisabledReplayMatchesAnnotations) {
  SetSatPreprocessingEnabled(false);
  for (const CorpusCase& c : LoadCorpus()) {
    SatPreprocessor replay;
    Load(c.instance, &replay);
    const SolveStatus status = replay.Solve();
    EXPECT_EQ(status == SolveStatus::kSat, c.expect_sat) << c.name;
    if (status == SolveStatus::kSat) {
      EXPECT_TRUE(ModelSatisfies(c.instance, replay)) << c.name;
    }
  }
  SetSatPreprocessingEnabled(true);
}

TEST(SatDimacsCorpusTest, RawSolverMatchesAnnotations) {
  for (const CorpusCase& c : LoadCorpus()) {
    Solver solver;
    Load(c.instance, &solver);
    EXPECT_EQ(solver.Solve() == SolveStatus::kSat, c.expect_sat) << c.name;
  }
}

TEST(SatDimacsCorpusTest, EveryUnsatInstanceCertifies) {
  // Every UNSAT verdict in the corpus must come with a DRAT refutation
  // the independent checker accepts — through both the preprocessing
  // pipeline and the raw CDCL path.
  for (const CorpusCase& c : LoadCorpus()) {
    if (c.expect_sat) continue;
    for (const bool use_pp : {true, false}) {
      const proof::CnfProofResult result =
          proof::SolveCnfWithProof(c.instance, use_pp);
      EXPECT_EQ(result.status, SolveStatus::kUnsat)
          << c.name << " pp=" << use_pp;
      EXPECT_TRUE(result.certified)
          << c.name << " pp=" << use_pp << ": "
          << result.check.error;
    }
  }
}

TEST(SatDimacsCorpusTest, DpllAgreesOnSmallInstances) {
  for (const CorpusCase& c : LoadCorpus()) {
    if (c.instance.num_vars > 45) continue;  // DPLL is exponential
    DpllSolver dpll(c.instance.num_vars);
    for (const std::vector<Lit>& cl : c.instance.clauses) {
      dpll.AddClause(cl);
    }
    EXPECT_EQ(dpll.Solve() == SolveStatus::kSat, c.expect_sat) << c.name;
  }
}

}  // namespace
}  // namespace arbiter::sat
