#ifndef ARBITER_CHANGE_BACKEND_H_
#define ARBITER_CHANGE_BACKEND_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "logic/formula.h"
#include "model/distance_semantics.h"
#include "model/model_set.h"
#include "util/status.h"

/// \file backend.h
/// DistanceBackend: how a distance-semantics argmin gets *computed*.
///
/// The semantics layer (model/distance_semantics.h) fixes *what*
/// ψ ▷ μ means — a metric × aggregator argmin over Mod(μ).  A backend
/// fixes *how*:
///
///   * "enum"      — materialize Mod(ψ) and Mod(μ) by brute-force
///                   enumeration and run SemanticArgmin.  Exact for
///                   every aggregator, but capped at kMaxEnumTerms
///                   (24) atoms: 2^n interpretations.  This is the
///                   oracle the differential harness trusts.
///   * "counting"  — never enumerates an interpretation space.
///                   min  → SAT binary search on a unary counter
///                          (solve/dalal_sat.h);
///                   max  → CEGAR min–max (solve/arbitration_sat.h);
///                   Σ    → one #SAT column-counting pass over ψ
///                          collapses sdist to a linear objective,
///                          minimized by branch-and-bound over CNF(μ)
///                          (solve/sum_sat.h), with a per-backend
///                          column cache across calls.
///                   Serves 63 atoms for min/max (uint64 model masks),
///                   and computes the Σ optimum up to ~120 atoms with
///                   models omitted past 63.  Weighted-Σ needs a
///                   per-model weight function — enumeration only.
///
/// Both backends implement identical edge conventions, and the
/// differential fuzz harness checks them bit-identical on every family
/// up to the enumeration ceiling.

namespace arbiter {

/// Result of a backend-computed change.
struct DistanceChangeResult {
  /// Models of ψ ▷ μ (empty ModelSet(0) when models_omitted).
  ModelSet models = ModelSet(0);
  /// True iff model enumeration stopped at the cap.
  bool truncated = false;
  /// True when the vocabulary exceeds 63 atoms: only `optimal` is
  /// computed (Σ aggregator only).
  bool models_omitted = false;
  /// The aggregated distance at the argmin, in decimal (Σ values can
  /// exceed 64 bits).  Empty when the result is empty or the ψ-unsat
  /// convention applies (distance undefined).
  std::string optimal;
};

/// Strategy interface: computes SemanticArgmin without promising *how*.
class DistanceBackend {
 public:
  virtual ~DistanceBackend() = default;

  /// Registry name ("enum", "counting").
  virtual std::string name() const = 0;

  /// Largest vocabulary this backend serves for the given semantics.
  virtual int MaxTerms(const DistanceSemantics& semantics) const = 0;

  /// Computes ψ ▷ μ under `semantics` over an n-term vocabulary.
  /// Fails with kCapacityExceeded past MaxTerms (or when a counting
  /// budget is exhausted) and kUnsupported for aggregator/backend
  /// combinations that cannot work (weighted-Σ on "counting").
  /// Non-const: the counting backend memoizes column counts.
  virtual Result<DistanceChangeResult> Change(
      const DistanceSemantics& semantics, const Formula& psi,
      const Formula& mu, int num_terms, int64_t max_models = 1024) = 0;
};

/// Fresh backend instances (each with its own caches, so concurrent
/// owners never share mutable state).
std::shared_ptr<DistanceBackend> MakeEnumeratingBackend();
std::shared_ptr<DistanceBackend> MakeCountingBackend();

/// Looks up a backend by registry name; kNotFound lists the known
/// names.  Returns a fresh instance per call.
Result<std::shared_ptr<DistanceBackend>> MakeDistanceBackend(
    const std::string& name);

/// The registry's names, in presentation order: {"enum", "counting"}.
std::vector<std::string> DistanceBackendNames();

/// How a registry operator name maps onto the backend interface:
/// which semantics to run, and whether the call is an arbitration
/// (ψ ▷ μ rewritten as (ψ ∨ μ) ▷ ⊤, Theorem 3.1's reduction).
struct BackendOperatorSpec {
  DistanceSemantics semantics;
  bool arbitration = false;
};

/// Resolves a distance-based operator name ("dalal", "revesz-max",
/// "revesz-sum", "arbitration-max", "arbitration-sum") to a backend
/// call spec carrying `metric`.  Other registry operators (updates,
/// set-theoretic revisions) are not distance argmins — kUnsupported.
Result<BackendOperatorSpec> BackendOperatorFor(
    const std::string& op_name, std::vector<int64_t> metric = {});

}  // namespace arbiter

#endif  // ARBITER_CHANGE_BACKEND_H_
