// Iterated theory change: fixed points, convergence, and order
// sensitivity when the same evidence (or stream of evidence) is
// incorporated repeatedly — the jury hearing witness after witness.

#include <gtest/gtest.h>

#include "change/fitting.h"
#include "change/merge.h"
#include "change/registry.h"
#include "store/belief_store.h"
#include "util/random.h"

namespace arbiter {
namespace {

ModelSet Ms(std::vector<uint64_t> masks, int n) {
  return ModelSet::FromMasks(std::move(masks), n);
}

TEST(IteratedTest, RepeatedArbitrationEntersAShortCycle) {
  // Iterating psi <- psi Δ phi lives in a finite space, so it must
  // eventually cycle — but, perhaps surprisingly, it does NOT always
  // reach a fixed point: the consensus can oscillate (the re-arbitrated
  // verdict swings back toward phi, then away again).  We verify that
  // every trajectory enters a cycle quickly, and that both behaviours
  // (fixpoints and genuine oscillations) occur.
  Rng rng(77);
  ArbitrationOperator arb = MakeMaxArbitration();
  int fixpoints = 0;
  int oscillations = 0;
  for (int round = 0; round < 50; ++round) {
    std::vector<uint64_t> mp, mf;
    for (uint64_t m = 0; m < 8; ++m) {
      if (rng.NextBool(0.4)) mp.push_back(m);
      if (rng.NextBool(0.4)) mf.push_back(m);
    }
    ModelSet psi = Ms(mp, 3);
    ModelSet phi = Ms(mf, 3);
    std::vector<ModelSet> seen = {psi};
    int cycle_length = -1;
    for (int step = 0; step < 64; ++step) {
      psi = arb.Change(psi, phi);
      for (size_t k = 0; k < seen.size(); ++k) {
        if (seen[k] == psi) {
          cycle_length = static_cast<int>(seen.size() - k);
          break;
        }
      }
      if (cycle_length >= 0) break;
      seen.push_back(psi);
    }
    ASSERT_GE(cycle_length, 1) << "no cycle within 64 steps, round "
                               << round;
    if (cycle_length == 1) {
      ++fixpoints;
    } else {
      ++oscillations;
    }
  }
  EXPECT_GT(fixpoints, 0);
  EXPECT_GT(oscillations, 0)
      << "expected some oscillating consensus trajectories";
}

TEST(IteratedTest, RevisionByConjunctionVsSequence) {
  // (R5)/(R6) connect psi o (mu1 & mu2) with (psi o mu1) & mu2; the
  // *sequential* (psi o mu1) o mu2 may differ — iterated revision is
  // underdetermined by the AGM axioms.  Find a witness.
  auto dalal = MakeOperator("dalal").ValueOrDie();
  bool found_difference = false;
  Rng rng(31);
  for (int round = 0; round < 200 && !found_difference; ++round) {
    std::vector<uint64_t> mp, m1, m2;
    for (uint64_t m = 0; m < 8; ++m) {
      if (rng.NextBool(0.4)) mp.push_back(m);
      if (rng.NextBool(0.4)) m1.push_back(m);
      if (rng.NextBool(0.4)) m2.push_back(m);
    }
    ModelSet psi = Ms(mp, 3), mu1 = Ms(m1, 3), mu2 = Ms(m2, 3);
    ModelSet sequential = dalal->Change(dalal->Change(psi, mu1), mu2);
    ModelSet combined = dalal->Change(psi, mu1.Intersect(mu2));
    if (sequential != combined) found_difference = true;
  }
  EXPECT_TRUE(found_difference)
      << "sequential and one-shot revision should diverge somewhere";
}

TEST(IteratedTest, PairwiseArbitrationOrderMatters) {
  // Three voices merged pairwise in different orders can disagree —
  // the reason Merge() exists as a k-ary primitive.
  ArbitrationOperator arb = MakeMaxArbitration();
  bool order_matters = false;
  Rng rng(13);
  for (int round = 0; round < 200 && !order_matters; ++round) {
    std::vector<uint64_t> ma, mb, mc;
    for (uint64_t m = 0; m < 8; ++m) {
      if (rng.NextBool(0.3)) ma.push_back(m);
      if (rng.NextBool(0.3)) mb.push_back(m);
      if (rng.NextBool(0.3)) mc.push_back(m);
    }
    ModelSet a = Ms(ma, 3), b = Ms(mb, 3), c = Ms(mc, 3);
    if (arb.Change(arb.Change(a, b), c) !=
        arb.Change(a, arb.Change(b, c))) {
      order_matters = true;
    }
  }
  EXPECT_TRUE(order_matters);
}

TEST(IteratedTest, KaryMergeDiffersFromIteratedPairwise) {
  // A concrete case: voices at 000, 000, 111.
  ModelSet v1 = Ms({0b000}, 3);
  ModelSet v2 = Ms({0b000}, 3);
  ModelSet v3 = Ms({0b111}, 3);
  ModelSet kary = Merge({v1, v2, v3}, MergeAggregate::kSum);
  ArbitrationOperator arb = MakeSumArbitration();
  ModelSet pairwise = arb.Change(arb.Change(v1, v2), v3);
  // Σ-merging respects the 2-vs-1 majority; iterated pairwise Δ first
  // collapses v1, v2 into one voice and loses the head count.
  EXPECT_EQ(kary, Ms({0b000}, 3));
  EXPECT_NE(pairwise, kary);
}

TEST(IteratedTest, StoreDrivenWitnessSequence) {
  // The paper's jury: witnesses arrive one at a time.  With revision,
  // the last witness always wins; with arbitration the crowd's
  // verdicts accumulate more symmetrically.
  BeliefStore revising;
  ASSERT_TRUE(revising.Define("case", "true").ok());
  ASSERT_TRUE(revising.Apply("case", "dalal", "armed").ok());
  ASSERT_TRUE(revising.Apply("case", "dalal", "!armed & fled").ok());
  EXPECT_EQ(*revising.Entails("case", "!armed"), true)
      << "revision: the later witness overrides";

  BeliefStore arbitrating;
  ASSERT_TRUE(arbitrating.Define("case", "true").ok());
  ASSERT_TRUE(arbitrating.Apply("case", "two-sided-dalal", "armed").ok());
  ASSERT_TRUE(
      arbitrating.Apply("case", "two-sided-dalal", "!armed & fled").ok());
  EXPECT_EQ(*arbitrating.Entails("case", "!armed"), false)
      << "arbitration: the earlier voice is not silenced";
  EXPECT_EQ(*arbitrating.ConsistentWith("case", "armed"), true);
}

TEST(IteratedTest, UpdateStreamsCommuteOnIndependentFacts) {
  // Updating with facts over disjoint variables is order-insensitive
  // for Winslett (per-model minimal change touches only the mentioned
  // variables).
  auto winslett = MakeOperator("winslett").ValueOrDie();
  Rng rng(5);
  for (int round = 0; round < 50; ++round) {
    std::vector<uint64_t> mp;
    for (uint64_t m = 0; m < 16; ++m) {
      if (rng.NextBool(0.4)) mp.push_back(m);
    }
    if (mp.empty()) continue;
    ModelSet psi = Ms(mp, 4);
    // mu1 fixes variable 0 true; mu2 fixes variable 3 false.
    std::vector<uint64_t> m1, m2;
    for (uint64_t m = 0; m < 16; ++m) {
      if (m & 1) m1.push_back(m);
      if (!(m & 8)) m2.push_back(m);
    }
    ModelSet mu1 = Ms(m1, 4), mu2 = Ms(m2, 4);
    EXPECT_EQ(winslett->Change(winslett->Change(psi, mu1), mu2),
              winslett->Change(winslett->Change(psi, mu2), mu1))
        << "round " << round;
  }
}

}  // namespace
}  // namespace arbiter
