#include "change/registry.h"

#include "change/commutative.h"
#include "change/fitting.h"
#include "change/revision.h"
#include "change/update.h"

namespace arbiter {

Result<std::shared_ptr<const TheoryChangeOperator>> MakeOperator(
    const std::string& name) {
  if (name == "dalal") return {std::make_shared<DalalRevision>()};
  if (name == "satoh") return {std::make_shared<SatohRevision>()};
  if (name == "weber") return {std::make_shared<WeberRevision>()};
  if (name == "borgida") return {std::make_shared<BorgidaRevision>()};
  if (name == "full-meet") return {std::make_shared<FullMeetRevision>()};
  if (name == "winslett") return {std::make_shared<WinslettUpdate>()};
  if (name == "forbus") return {std::make_shared<ForbusUpdate>()};
  if (name == "revesz-max") return {std::make_shared<MaxFitting>()};
  if (name == "revesz-sum") return {std::make_shared<SumFitting>()};
  if (name == "lex-fitting") return {std::make_shared<LexFitting>()};
  if (name == "arbitration-max") {
    return {std::make_shared<ArbitrationOperator>(
        std::make_shared<MaxFitting>())};
  }
  if (name == "arbitration-sum") {
    return {std::make_shared<ArbitrationOperator>(
        std::make_shared<SumFitting>())};
  }
  if (name == "two-sided-dalal") {
    return {std::make_shared<RevisionBasedArbitration>(
        std::make_shared<DalalRevision>())};
  }
  if (name == "two-sided-satoh") {
    return {std::make_shared<RevisionBasedArbitration>(
        std::make_shared<SatohRevision>())};
  }
  return Status::NotFound("no operator named \"" + name + "\"");
}

Result<std::shared_ptr<const TheoryChangeOperator>> MakeOperator(
    const std::string& name, const std::vector<int64_t>& metric) {
  bool unit = true;
  for (int64_t w : metric) {
    if (w < 0) return Status::InvalidArgument("negative metric weight");
    if (w != 1) unit = false;
  }
  if (unit) return MakeOperator(name);
  if (name == "dalal") {
    return {MakeFittingOperator(MinSemantics(metric), "dalal")};
  }
  if (name == "forbus") return {std::make_shared<ForbusUpdate>(metric)};
  if (name == "revesz-max") {
    return {MakeFittingOperator(MaxSemantics(metric), "revesz-max")};
  }
  if (name == "revesz-sum") {
    return {MakeFittingOperator(SumSemantics(metric), "revesz-sum")};
  }
  if (name == "arbitration-max") {
    return {std::make_shared<ArbitrationOperator>(
        MakeFittingOperator(MaxSemantics(metric)))};
  }
  if (name == "arbitration-sum") {
    return {std::make_shared<ArbitrationOperator>(
        MakeFittingOperator(SumSemantics(metric)))};
  }
  Result<std::shared_ptr<const TheoryChangeOperator>> base =
      MakeOperator(name);
  if (!base.ok()) return base;
  return Status::InvalidArgument("operator \"" + name +
                                 "\" does not support a non-unit metric");
}

std::vector<std::string> RegisteredOperatorNames() {
  return {"dalal",      "satoh",      "weber",
          "borgida",    "full-meet",  "winslett",   "forbus",
          "revesz-max", "revesz-sum", "lex-fitting",
          "arbitration-max", "arbitration-sum",
          "two-sided-dalal", "two-sided-satoh"};
}

std::vector<std::shared_ptr<const TheoryChangeOperator>> AllOperators() {
  std::vector<std::shared_ptr<const TheoryChangeOperator>> out;
  for (const std::string& name : RegisteredOperatorNames()) {
    out.push_back(MakeOperator(name).ValueOrDie());
  }
  return out;
}

}  // namespace arbiter
