#include "logic/interpretation.h"

namespace arbiter {

Result<Interpretation> Interpretation::FromNames(
    const Vocabulary& vocab, const std::vector<std::string>& true_terms) {
  uint64_t bits = 0;
  for (const std::string& name : true_terms) {
    Result<int> idx = vocab.Lookup(name);
    if (!idx.ok()) return idx.status();
    bits |= 1ULL << *idx;
  }
  return Interpretation(bits, vocab.size());
}

std::string Interpretation::ToString(const Vocabulary& vocab) const {
  ARBITER_CHECK(vocab.size() == num_terms_);
  std::string out = "{";
  bool first = true;
  ForEachBit(bits_, [&](int i) {
    if (!first) out += ", ";
    out += vocab.Name(i);
    first = false;
  });
  out += "}";
  return out;
}

std::string Interpretation::ToBitString() const {
  std::string out;
  out.reserve(num_terms_);
  for (int i = 0; i < num_terms_; ++i) {
    out.push_back(Holds(i) ? '1' : '0');
  }
  return out;
}

}  // namespace arbiter
