// Weighted postulate checking (F1)-(F8), experiment E7.
//
// Theorem 4.1's concrete operator (wdist-based weighted model-fitting)
// passes every weighted axiom: the weighted ∨ *sums* weights, making
// wdist additive and the assignment genuinely loyal — in contrast to
// the plain Section 3 operators (see postulate_checker_test.cc).

#include "postulates/weighted_checker.h"

#include <gtest/gtest.h>

#include "model/distance.h"

namespace arbiter {
namespace {

std::vector<WeightedPostulate> AllF() {
  return {WeightedPostulate::kF1, WeightedPostulate::kF2,
          WeightedPostulate::kF3, WeightedPostulate::kF4,
          WeightedPostulate::kF5, WeightedPostulate::kF6,
          WeightedPostulate::kF7, WeightedPostulate::kF8};
}

TEST(WeightedPostulatesTest, WdistFittingPassesBinaryExhaustiveN2) {
  WdistFitting op;
  WeightedPostulateChecker checker(&op, 2);
  for (WeightedPostulate p : AllF()) {
    auto cex = checker.CheckExhaustiveBinary(p);
    EXPECT_FALSE(cex.has_value())
        << WeightedPostulateName(p) << ": " << cex->description;
  }
}

TEST(WeightedPostulatesTest, WdistFittingPassesBinaryExhaustiveN1) {
  WdistFitting op;
  WeightedPostulateChecker checker(&op, 1);
  for (WeightedPostulate p : AllF()) {
    EXPECT_FALSE(checker.CheckExhaustiveBinary(p).has_value())
        << WeightedPostulateName(p);
  }
}

class WeightedSampledTest
    : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(WeightedSampledTest, WdistFittingPassesRandomWeights) {
  auto [num_terms, samples] = GetParam();
  WdistFitting op;
  WeightedPostulateChecker checker(&op, num_terms);
  for (WeightedPostulate p : AllF()) {
    auto cex = checker.CheckSampled(p, samples, /*seed=*/99);
    EXPECT_FALSE(cex.has_value())
        << "n=" << num_terms << " " << WeightedPostulateName(p) << ": "
        << cex->description;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, WeightedSampledTest,
                         ::testing::Values(std::pair{2, 1500},
                                           std::pair{3, 800},
                                           std::pair{4, 300}));

TEST(WeightedPostulatesTest, BrokenOperatorIsCaught) {
  // Negative control: an operator returning mu unchanged violates F2
  // (unsatisfiable psi must give an unsatisfiable result).
  class Identity : public WeightedChangeOperator {
   public:
    std::string name() const override { return "identity"; }
    WeightedKnowledgeBase Change(
        const WeightedKnowledgeBase& /*psi*/,
        const WeightedKnowledgeBase& mu) const override {
      return mu;
    }
  };
  Identity op;
  WeightedPostulateChecker checker(&op, 2);
  EXPECT_TRUE(
      checker.CheckExhaustiveBinary(WeightedPostulate::kF2).has_value());
  // It trivially satisfies F1 (result == mu implies mu).
  EXPECT_FALSE(
      checker.CheckExhaustiveBinary(WeightedPostulate::kF1).has_value());
}

TEST(WeightedPostulatesTest, MaxAggregateViolatesF8) {
  // Negative control matching the plain-world finding: a max-based
  // weighted operator (ignoring weights, max over support) fails F8.
  class WeightedMax : public WeightedChangeOperator {
   public:
    std::string name() const override { return "weighted-max"; }
    WeightedKnowledgeBase Change(
        const WeightedKnowledgeBase& psi,
        const WeightedKnowledgeBase& mu) const override {
      if (!psi.IsSatisfiable() || !mu.IsSatisfiable()) {
        return WeightedKnowledgeBase(mu.num_terms());
      }
      ModelSet support = psi.Support();
      TotalPreorder order(psi.num_terms(), [&support](uint64_t i) {
        return static_cast<double>(OverallDist(support, i));
      });
      return mu.MinimalBy(order);
    }
  };
  WeightedMax op;
  WeightedPostulateChecker checker(&op, 2);
  EXPECT_TRUE(
      checker.CheckExhaustiveBinary(WeightedPostulate::kF8).has_value());
}

TEST(WeightedPostulatesTest, NamesAreStable) {
  EXPECT_EQ(WeightedPostulateName(WeightedPostulate::kF1), "F1");
  EXPECT_EQ(WeightedPostulateName(WeightedPostulate::kF8), "F8");
}

}  // namespace
}  // namespace arbiter
