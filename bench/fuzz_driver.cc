// Standalone differential fuzz driver: the long-running counterpart of
// tests/differential_fuzz_test.cc.  Runs N randomized cases through the
// cross-implementation checks in src/test_support/differential.cc and
// exits nonzero on any divergence, printing each one with its case
// seed so it can be replayed.
//
//   fuzz_driver [--cases N] [--seed S] [--min-terms N] [--max-terms N]
//               [--large-terms N] [--no-store] [--no-kernels]
//               [--server-cases N] [--proof-cases N]
//
// --server-cases additionally runs N concurrent-session interleaving
// cases through the belief server's differential harness
// (src/server/differential.h): randomized writer/reader threads, then
// a serial replay that must reproduce every batch bit for bit.
//
// --proof-cases additionally runs N random CNF instances through both
// solving pipelines with DRAT recording on
// (src/test_support/proof_fuzz.h): every UNSAT verdict must come back
// with a refutation the independent checker accepts, and every SAT
// model must satisfy the instance.
//
// CI runs a small fixed-seed tier (see bench/CMakeLists.txt); nightly
// or manual runs can push --cases into the millions.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "server/differential.h"
#include "test_support/differential.h"
#include "test_support/proof_fuzz.h"

namespace {

uint64_t ParseU64(const char* text, const char* flag) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(text, &end, 0);
  if (end == text || *end != '\0') {
    std::fprintf(stderr, "fuzz_driver: bad value for %s: %s\n", flag, text);
    std::exit(2);
  }
  return static_cast<uint64_t>(v);
}

}  // namespace

int main(int argc, char** argv) {
  arbiter::test_support::DifferentialOptions options;
  int server_cases = 0;
  int proof_cases = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "fuzz_driver: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--cases") {
      options.num_cases = static_cast<int>(ParseU64(next(), "--cases"));
    } else if (arg == "--seed") {
      options.seed = ParseU64(next(), "--seed");
    } else if (arg == "--min-terms") {
      options.min_terms = static_cast<int>(ParseU64(next(), "--min-terms"));
    } else if (arg == "--max-terms") {
      options.max_terms = static_cast<int>(ParseU64(next(), "--max-terms"));
    } else if (arg == "--large-terms") {
      options.large_terms =
          static_cast<int>(ParseU64(next(), "--large-terms"));
    } else if (arg == "--no-store") {
      options.check_store = false;
    } else if (arg == "--no-kernels") {
      options.check_kernels = false;
    } else if (arg == "--server-cases") {
      server_cases = static_cast<int>(ParseU64(next(), "--server-cases"));
    } else if (arg == "--proof-cases") {
      proof_cases = static_cast<int>(ParseU64(next(), "--proof-cases"));
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: fuzz_driver [--cases N] [--seed S] [--min-terms N] "
          "[--max-terms N] [--large-terms N] [--no-store] [--no-kernels] "
          "[--server-cases N] [--proof-cases N]\n");
      return 0;
    } else {
      std::fprintf(stderr, "fuzz_driver: unknown flag %s\n", arg.c_str());
      return 2;
    }
  }

  const arbiter::test_support::DifferentialReport report =
      arbiter::test_support::RunDifferentialFuzz(options);
  std::printf("fuzz_driver: %s (seed 0x%llx)\n", report.Summary().c_str(),
              static_cast<unsigned long long>(options.seed));
  if (!report.ok()) {
    for (const auto& d : report.divergences) {
      std::fprintf(stderr, "DIVERGENCE %s\n", d.ToString().c_str());
    }
    return 1;
  }

  for (int c = 0; c < server_cases; ++c) {
    arbiter::server::ServerFuzzOptions server_options;
    server_options.seed = options.seed + static_cast<uint64_t>(c);
    const arbiter::server::ServerFuzzReport server_report =
        arbiter::server::RunServerInterleavingFuzz(server_options);
    if (!server_report.ok()) {
      std::fprintf(stderr,
                   "SERVER DIVERGENCE case %d (seed 0x%llx), %d mismatched "
                   "batches:\n%s\n",
                   c,
                   static_cast<unsigned long long>(server_options.seed),
                   server_report.mismatches, server_report.detail.c_str());
      return 1;
    }
  }
  if (server_cases > 0) {
    std::printf("fuzz_driver: %d server interleaving cases, 0 mismatches\n",
                server_cases);
  }

  if (proof_cases > 0) {
    arbiter::test_support::ProofFuzzOptions proof_options;
    proof_options.seed = options.seed;
    proof_options.cases = proof_cases;
    proof_options.stop_on_failure = false;
    const arbiter::test_support::ProofFuzzResult proof_report =
        arbiter::test_support::RunProofFuzz(proof_options);
    std::printf(
        "fuzz_driver: %d proof cases (%d unsat certified, %d sat), "
        "%d failures\n",
        proof_report.cases_run, proof_report.unsat_cases,
        proof_report.sat_cases, proof_report.failures);
    if (proof_report.failures > 0) {
      std::fprintf(stderr, "PROOF FAILURE %s\n",
                   proof_report.first_failure.c_str());
      return 1;
    }
  }
  return 0;
}
