#ifndef ARBITER_PROOF_CERTIFY_H_
#define ARBITER_PROOF_CERTIFY_H_

#include <vector>

#include "proof/checker.h"
#include "proof/proof_log.h"
#include "sat/dimacs.h"
#include "sat/engine.h"
#include "sat/preprocessor.h"

/// \file certify.h
/// Certification glue: a SatEngine wrapper that records the formula it
/// was fed and the DRAT steps the solving stack emitted, and re-checks
/// every UNSAT verdict with the independent DratChecker before anyone
/// is allowed to believe it.  This is what `arblint --certify` and the
/// counting backend's certified revision steps are built on.

namespace arbiter::proof {

/// Process-wide certification toggle.  Defaults to the ARBITER_CERTIFY
/// environment variable (unset, empty, or "0" = off); the setters
/// override the environment until cleared.  Thread-safe: the override
/// is an atomic, so server sessions and pool workers may query it
/// while another thread toggles (each solve samples it once).
bool CertificationEnabled();
void SetCertificationEnabled(bool enabled);
void ClearCertificationOverride();

/// Test hook: when set, every certification attempt reports failure
/// even if the checker accepted the proof.  Exercises the diagnostic
/// downgrade path without needing a genuinely broken proof.
void SetCertificationFailureForTesting(bool force_fail);

/// Result of re-checking one UNSAT verdict.
struct CertifyOutcome {
  /// Recording was on for this solver; when false nothing was checked.
  bool enabled = false;
  /// The proof was accepted by the independent checker.
  bool ok = false;
  DratCheckResult check;
};

/// A `SatPreprocessor` (CDCL + SatELite pipeline) that additionally
/// keeps the verbatim formula clauses and a `ProofRecorder` of every
/// derived addition/deletion when certification is enabled.  With
/// certification disabled it adds one untaken branch per AddClause and
/// never touches the solving stack's behavior.
class CertifyingSolver : public sat::SatEngine {
 public:
  explicit CertifyingSolver(bool enabled = CertificationEnabled());

  // ClauseSink.
  sat::Var NewVar() override { return pp_.NewVar(); }
  int NumVars() const override { return pp_.NumVars(); }
  bool AddClause(std::vector<sat::Lit> lits) override;

  // SatPreprocessor passthroughs used by the counting backend.
  void Freeze(sat::Var v) { pp_.Freeze(v); }
  void FreezeRange(sat::Var begin, sat::Var end) {
    pp_.FreezeRange(begin, end);
  }
  void Preprocess() { pp_.Preprocess(); }

  // SatEngine.
  sat::SolveStatus Solve() override;
  sat::SolveStatus SolveAssuming(
      const std::vector<sat::Lit>& assumptions) override;
  bool ModelValue(sat::Var v) const override { return pp_.ModelValue(v); }
  const std::vector<sat::Lit>& FailedAssumptions() const override {
    return pp_.FailedAssumptions();
  }
  bool InConflict() const override { return pp_.InConflict(); }

  bool enabled() const { return enabled_; }
  const ProofRecorder& recorder() const { return recorder_; }
  const std::vector<std::vector<sat::Lit>>& formula() const {
    return formula_;
  }

  /// The recorded DRAT proof with a trailing empty clause guaranteed
  /// (the certifier always closes the refutation explicitly).
  std::vector<ProofStep> BuildProof() const;

  /// Re-checks the most recent UNSAT verdict: runs the DratChecker on
  /// the recorded formula (plus the last solve's assumptions as unit
  /// clauses) against the recorded proof.  Call only after a solve
  /// returned kUnsat, and — for callers that go on to enumerate models
  /// with AllSAT-style blocking clauses — *before* any non-implied
  /// clause is added, since those would not certify.
  CertifyOutcome CertifyLastUnsat();

  sat::SatPreprocessor& preprocessor() { return pp_; }

 private:
  bool enabled_;
  ProofRecorder recorder_;
  std::vector<std::vector<sat::Lit>> formula_;
  std::vector<sat::Lit> last_assumptions_;
  sat::SatPreprocessor pp_;
};

/// Solve outcome of `SolveCnfWithProof`.
struct CnfProofResult {
  sat::SolveStatus status = sat::SolveStatus::kUnknown;
  /// On kUnsat: the recorded DRAT refutation (trailing empty clause
  /// included) and the independent checker's verdict on it.
  std::vector<ProofStep> proof;
  DratCheckResult check;
  bool certified = false;
  /// On kSat: the model, indexed by variable.
  std::vector<bool> model;
};

/// Solves a CNF instance with proof recording on, and certifies the
/// refutation when the answer is UNSAT.  `use_preprocessor` toggles
/// the SatELite pipeline (both paths must certify — the fuzz harness
/// runs each instance through both).
CnfProofResult SolveCnfWithProof(const sat::CnfInstance& cnf,
                                 bool use_preprocessor);

}  // namespace arbiter::proof

#endif  // ARBITER_PROOF_CERTIFY_H_
