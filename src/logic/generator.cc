#include "logic/generator.h"

#include <algorithm>

#include "logic/vocabulary.h"
#include "util/logging.h"

namespace arbiter {

namespace {

Formula RandomFormulaImpl(Rng* rng, const RandomFormulaOptions& options,
                          int depth) {
  const bool must_leaf = depth >= options.max_depth;
  if (must_leaf || rng->NextBool(options.leaf_prob)) {
    // Leaves: mostly variables, occasionally constants.
    uint64_t pick = rng->NextBelow(10);
    if (pick == 0) return Formula::True();
    if (pick == 1) return Formula::False();
    return Formula::Var(static_cast<int>(rng->NextBelow(options.num_terms)));
  }
  const int max_kind = options.use_extended_connectives ? 6 : 3;
  switch (rng->NextBelow(max_kind)) {
    case 0:
      return Not(RandomFormulaImpl(rng, options, depth + 1));
    case 1: {
      int arity = 2 + static_cast<int>(rng->NextBelow(2));
      std::vector<Formula> parts;
      for (int i = 0; i < arity; ++i) {
        parts.push_back(RandomFormulaImpl(rng, options, depth + 1));
      }
      return And(std::move(parts));
    }
    case 2: {
      int arity = 2 + static_cast<int>(rng->NextBelow(2));
      std::vector<Formula> parts;
      for (int i = 0; i < arity; ++i) {
        parts.push_back(RandomFormulaImpl(rng, options, depth + 1));
      }
      return Or(std::move(parts));
    }
    case 3:
      return Implies(RandomFormulaImpl(rng, options, depth + 1),
                     RandomFormulaImpl(rng, options, depth + 1));
    case 4:
      return Iff(RandomFormulaImpl(rng, options, depth + 1),
                 RandomFormulaImpl(rng, options, depth + 1));
    default:
      return Xor(RandomFormulaImpl(rng, options, depth + 1),
                 RandomFormulaImpl(rng, options, depth + 1));
  }
}

}  // namespace

Formula RandomFormula(Rng* rng, const RandomFormulaOptions& options) {
  ARBITER_CHECK(rng != nullptr);
  ARBITER_CHECK(options.num_terms >= 1);
  return RandomFormulaImpl(rng, options, 0);
}

Formula RandomKCnf(Rng* rng, int num_terms, int num_clauses, int k) {
  ARBITER_CHECK(rng != nullptr);
  ARBITER_CHECK(k >= 1 && k <= num_terms);
  std::vector<Formula> clauses;
  clauses.reserve(num_clauses);
  std::vector<int> vars(num_terms);
  for (int i = 0; i < num_terms; ++i) vars[i] = i;
  for (int c = 0; c < num_clauses; ++c) {
    // Partial Fisher-Yates: first k entries become the clause variables.
    for (int i = 0; i < k; ++i) {
      int j = i + static_cast<int>(rng->NextBelow(num_terms - i));
      std::swap(vars[i], vars[j]);
    }
    std::vector<Formula> lits;
    lits.reserve(k);
    for (int i = 0; i < k; ++i) {
      Formula v = Formula::Var(vars[i]);
      lits.push_back(rng->NextBool() ? v : Not(v));
    }
    clauses.push_back(Or(std::move(lits)));
  }
  return And(std::move(clauses));
}

std::vector<uint64_t> RandomModelSetMasks(Rng* rng, int num_terms,
                                          double density) {
  ARBITER_CHECK(rng != nullptr);
  ARBITER_CHECK(num_terms >= 0 && num_terms <= kMaxEnumTerms);
  const uint64_t space = 1ULL << num_terms;
  std::vector<uint64_t> out;
  for (;;) {
    out.clear();
    for (uint64_t bits = 0; bits < space; ++bits) {
      if (rng->NextBool(density)) out.push_back(bits);
    }
    if (!out.empty()) return out;
  }
}

}  // namespace arbiter
