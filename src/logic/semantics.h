#ifndef ARBITER_LOGIC_SEMANTICS_H_
#define ARBITER_LOGIC_SEMANTICS_H_

#include <cstdint>
#include <vector>

#include "logic/formula.h"
#include "logic/vocabulary.h"

/// \file semantics.h
/// Enumeration-based semantics: Mod(φ), satisfiability, equivalence,
/// and the form(I1..Ik) construction from the paper's proofs (a formula
/// whose models are exactly a given set of interpretations).
///
/// All functions here enumerate the 2^n interpretation space and
/// require num_terms <= kMaxEnumTerms.  SAT-based alternatives for
/// larger vocabularies live in src/solve/.

namespace arbiter {

/// Returns the models of f over an n-term vocabulary, as a sorted
/// vector of bitmasks.
std::vector<uint64_t> EnumerateModels(const Formula& f, int num_terms);

/// Counts the models of f over an n-term vocabulary.
uint64_t CountModels(const Formula& f, int num_terms);

/// True iff f has at least one model over n terms.
bool IsSatisfiable(const Formula& f, int num_terms);

/// True iff every interpretation over n terms satisfies f.
bool IsTautology(const Formula& f, int num_terms);

/// True iff Mod(a) == Mod(b) over n terms.
bool AreEquivalent(const Formula& a, const Formula& b, int num_terms);

/// True iff Mod(a) ⊆ Mod(b) over n terms (a semantically implies b).
bool SemanticallyImplies(const Formula& a, const Formula& b, int num_terms);

/// The paper's form(I1, ..., Ik): a formula with exactly the given
/// models, built as a DNF of full minterms over n terms.  An empty model
/// list yields ⊥; the full space yields ⊤.
Formula FormulaFromModels(const std::vector<uint64_t>& models, int num_terms);

/// The full minterm (conjunction of n literals) satisfied exactly by
/// the interpretation with bitmask `bits`.
Formula Minterm(uint64_t bits, int num_terms);

}  // namespace arbiter

#endif  // ARBITER_LOGIC_SEMANTICS_H_
