#include "logic/semantics.h"

#include <algorithm>

#include "logic/eval.h"
#include "util/bit.h"
#include "util/logging.h"

namespace arbiter {

namespace {
void CheckEnumerable(int num_terms) {
  ARBITER_CHECK_MSG(num_terms >= 0 && num_terms <= kMaxEnumTerms,
                    "vocabulary too large for enumeration-based semantics");
}
}  // namespace

std::vector<uint64_t> EnumerateModels(const Formula& f, int num_terms) {
  CheckEnumerable(num_terms);
  ARBITER_CHECK(f.MaxVar() < num_terms);
  std::vector<uint64_t> models;
  const uint64_t space = 1ULL << num_terms;
  for (uint64_t bits = 0; bits < space; ++bits) {
    if (Evaluate(f, bits)) models.push_back(bits);
  }
  return models;
}

uint64_t CountModels(const Formula& f, int num_terms) {
  CheckEnumerable(num_terms);
  ARBITER_CHECK(f.MaxVar() < num_terms);
  uint64_t count = 0;
  const uint64_t space = 1ULL << num_terms;
  for (uint64_t bits = 0; bits < space; ++bits) {
    if (Evaluate(f, bits)) ++count;
  }
  return count;
}

bool IsSatisfiable(const Formula& f, int num_terms) {
  CheckEnumerable(num_terms);
  ARBITER_CHECK(f.MaxVar() < num_terms);
  const uint64_t space = 1ULL << num_terms;
  for (uint64_t bits = 0; bits < space; ++bits) {
    if (Evaluate(f, bits)) return true;
  }
  return false;
}

bool IsTautology(const Formula& f, int num_terms) {
  return !IsSatisfiable(Not(f), num_terms);
}

bool AreEquivalent(const Formula& a, const Formula& b, int num_terms) {
  CheckEnumerable(num_terms);
  ARBITER_CHECK(a.MaxVar() < num_terms && b.MaxVar() < num_terms);
  const uint64_t space = 1ULL << num_terms;
  for (uint64_t bits = 0; bits < space; ++bits) {
    if (Evaluate(a, bits) != Evaluate(b, bits)) return false;
  }
  return true;
}

bool SemanticallyImplies(const Formula& a, const Formula& b, int num_terms) {
  CheckEnumerable(num_terms);
  ARBITER_CHECK(a.MaxVar() < num_terms && b.MaxVar() < num_terms);
  const uint64_t space = 1ULL << num_terms;
  for (uint64_t bits = 0; bits < space; ++bits) {
    if (Evaluate(a, bits) && !Evaluate(b, bits)) return false;
  }
  return true;
}

Formula Minterm(uint64_t bits, int num_terms) {
  ARBITER_CHECK(num_terms >= 0 && num_terms <= kMaxVocabularyTerms);
  std::vector<Formula> literals;
  literals.reserve(num_terms);
  for (int i = 0; i < num_terms; ++i) {
    Formula v = Formula::Var(i);
    literals.push_back(((bits >> i) & 1) ? v : Not(v));
  }
  return And(std::move(literals));
}

Formula FormulaFromModels(const std::vector<uint64_t>& models,
                          int num_terms) {
  // No enumeration happens here: the masks are already materialized, so
  // any vocabulary whose interpretations fit in uint64 masks is fine.
  ARBITER_CHECK(num_terms >= 0 && num_terms <= kMaxVocabularyTerms);
  if (models.empty()) return Formula::False();
  if (num_terms < 64 && models.size() == (1ULL << num_terms)) {
    return Formula::True();
  }
  std::vector<Formula> minterms;
  minterms.reserve(models.size());
  for (uint64_t bits : models) {
    ARBITER_CHECK((bits & ~LowMask(num_terms)) == 0);
    minterms.push_back(Minterm(bits, num_terms));
  }
  return Or(std::move(minterms));
}

}  // namespace arbiter
