#include "change/weighted.h"

#include <utility>

namespace arbiter {

WeightedKnowledgeBase WdistFitting::Change(
    const WeightedKnowledgeBase& psi,
    const WeightedKnowledgeBase& mu) const {
  ARBITER_CHECK(psi.num_terms() == mu.num_terms());
  // (F2): unsatisfiable ψ̃ fits nothing; (F1): result within μ̃.
  if (!psi.IsSatisfiable() || !mu.IsSatisfiable()) {
    return WeightedKnowledgeBase(mu.num_terms());
  }
  return mu.MinimalBy(psi.WdistPreorder());
}

MetricWdistFitting::MetricWdistFitting(std::vector<int64_t> metric)
    : semantics_(SumSemantics(std::move(metric))) {}

WeightedKnowledgeBase MetricWdistFitting::Change(
    const WeightedKnowledgeBase& psi,
    const WeightedKnowledgeBase& mu) const {
  ARBITER_CHECK(psi.num_terms() == mu.num_terms());
  if (!psi.IsSatisfiable() || !mu.IsSatisfiable()) {
    return WeightedKnowledgeBase(mu.num_terms());
  }
  return mu.MinimalBy(psi.WdistPreorder(semantics_));
}

WeightedKnowledgeBase WeightedArbitration::Change(
    const WeightedKnowledgeBase& psi,
    const WeightedKnowledgeBase& phi) const {
  ARBITER_CHECK(psi.num_terms() == phi.num_terms());
  WdistFitting fitting;
  return fitting.Change(psi.Or(phi),
                        WeightedKnowledgeBase::Uniform(psi.num_terms()));
}

}  // namespace arbiter
