#include "model/model_set.h"

#include <algorithm>

#include "logic/interpretation.h"
#include "logic/semantics.h"
#include "util/bit.h"
#include "util/logging.h"

namespace arbiter {

ModelSet::ModelSet(int num_terms) : num_terms_(num_terms) {
  ARBITER_CHECK(num_terms >= 0 && num_terms <= kMaxVocabularyTerms);
}

ModelSet ModelSet::FromMasks(std::vector<uint64_t> masks, int num_terms) {
  ModelSet out(num_terms);
  const uint64_t valid = LowMask(num_terms);
  for (uint64_t m : masks) {
    ARBITER_CHECK_MSG((m & ~valid) == 0, "mask outside vocabulary");
  }
  std::sort(masks.begin(), masks.end());
  masks.erase(std::unique(masks.begin(), masks.end()), masks.end());
  out.masks_ = std::move(masks);
  return out;
}

ModelSet ModelSet::FromFormula(const Formula& f, int num_terms) {
  ModelSet out(num_terms);
  out.masks_ = EnumerateModels(f, num_terms);
  return out;
}

ModelSet ModelSet::Full(int num_terms) {
  ARBITER_CHECK(num_terms >= 0 && num_terms <= kMaxEnumTerms);
  ModelSet out(num_terms);
  const uint64_t space = 1ULL << num_terms;
  out.masks_.resize(space);
  for (uint64_t i = 0; i < space; ++i) out.masks_[i] = i;
  return out;
}

ModelSet ModelSet::Singleton(uint64_t bits, int num_terms) {
  return FromMasks({bits}, num_terms);
}

bool ModelSet::Contains(uint64_t bits) const {
  return std::binary_search(masks_.begin(), masks_.end(), bits);
}

ModelSet ModelSet::Union(const ModelSet& other) const {
  ARBITER_CHECK(num_terms_ == other.num_terms_);
  ModelSet out(num_terms_);
  out.masks_.reserve(masks_.size() + other.masks_.size());
  std::set_union(masks_.begin(), masks_.end(), other.masks_.begin(),
                 other.masks_.end(), std::back_inserter(out.masks_));
  return out;
}

ModelSet ModelSet::Intersect(const ModelSet& other) const {
  ARBITER_CHECK(num_terms_ == other.num_terms_);
  ModelSet out(num_terms_);
  std::set_intersection(masks_.begin(), masks_.end(), other.masks_.begin(),
                        other.masks_.end(), std::back_inserter(out.masks_));
  return out;
}

ModelSet ModelSet::Difference(const ModelSet& other) const {
  ARBITER_CHECK(num_terms_ == other.num_terms_);
  ModelSet out(num_terms_);
  std::set_difference(masks_.begin(), masks_.end(), other.masks_.begin(),
                      other.masks_.end(), std::back_inserter(out.masks_));
  return out;
}

ModelSet ModelSet::Complement() const {
  ARBITER_CHECK_MSG(num_terms_ <= kMaxEnumTerms,
                    "complement requires enumerable vocabulary");
  ModelSet out(num_terms_);
  const uint64_t space = 1ULL << num_terms_;
  out.masks_.reserve(space - masks_.size());
  size_t idx = 0;
  for (uint64_t i = 0; i < space; ++i) {
    if (idx < masks_.size() && masks_[idx] == i) {
      ++idx;
    } else {
      out.masks_.push_back(i);
    }
  }
  return out;
}

bool ModelSet::IsSubsetOf(const ModelSet& other) const {
  ARBITER_CHECK(num_terms_ == other.num_terms_);
  return std::includes(other.masks_.begin(), other.masks_.end(),
                       masks_.begin(), masks_.end());
}

Formula ModelSet::ToFormula() const {
  return FormulaFromModels(masks_, num_terms_);
}

std::string ModelSet::ToString(const Vocabulary& vocab) const {
  ARBITER_CHECK(vocab.size() == num_terms_);
  std::string out = "{";
  for (size_t i = 0; i < masks_.size(); ++i) {
    if (i > 0) out += ", ";
    out += Interpretation(masks_[i], num_terms_).ToString(vocab);
  }
  out += "}";
  return out;
}

std::string ModelSet::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < masks_.size(); ++i) {
    if (i > 0) out += ", ";
    out += Interpretation(masks_[i], num_terms_).ToBitString();
  }
  out += "}";
  return out;
}

}  // namespace arbiter
