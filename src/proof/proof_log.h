#ifndef ARBITER_PROOF_PROOF_LOG_H_
#define ARBITER_PROOF_PROOF_LOG_H_

#include <utility>
#include <vector>

#include "sat/types.h"
#include "util/logging.h"

/// \file proof_log.h
/// The proof-logging sink interface between the CDCL tier and the
/// proof subsystem.  The solver and the preprocessor call `OnAdd` for
/// every clause they *derive* (learnt clauses, strengthened forms,
/// BVE resolvents, derived units, the empty clause on refutation) and
/// `OnDelete` for every clause they retire (ReduceDB eviction,
/// root-satisfied removal, subsumption, BVE originals).  The sequence
/// of calls is exactly a DRAT proof of the solver's UNSAT verdicts:
/// every added clause is RUP with respect to the clause database at
/// the time of the call (see docs/PROOFS.md for the per-site
/// arguments), and deletions only ever weaken the database.
///
/// This header is intentionally dependency-free beyond sat/types.h so
/// `src/sat` can name the interface without linking the proof library;
/// the checker, serializers, and certification glue live in
/// src/proof/*.cc and depend on sat only for the literal encoding.
///
/// Logging is off by default everywhere: a null sink costs one
/// untaken branch per site.

namespace arbiter::proof {

/// One DRAT step: an addition or a deletion of a clause, in original
/// (caller-visible) variable numbering.
struct ProofStep {
  bool is_delete = false;
  std::vector<sat::Lit> lits;

  bool operator==(const ProofStep& other) const {
    return is_delete == other.is_delete && lits == other.lits;
  }
};

/// Receives derived-clause additions and clause deletions.
class ProofLog {
 public:
  virtual ~ProofLog() = default;

  /// `lits` is a clause implied by the current database (RUP or RAT).
  virtual void OnAdd(const std::vector<sat::Lit>& lits) = 0;

  /// `lits` is a clause the producer will no longer use.
  virtual void OnDelete(const std::vector<sat::Lit>& lits) = 0;
};

/// In-memory recorder: keeps the step sequence for later
/// serialization (drat.h) or direct checking (checker.h).
class ProofRecorder : public ProofLog {
 public:
  void OnAdd(const std::vector<sat::Lit>& lits) override {
    steps_.push_back(ProofStep{false, lits});
  }
  void OnDelete(const std::vector<sat::Lit>& lits) override {
    steps_.push_back(ProofStep{true, lits});
  }

  const std::vector<ProofStep>& steps() const { return steps_; }
  void Clear() { steps_.clear(); }

  /// True iff some addition is the empty clause (a complete
  /// refutation has been logged).
  bool HasEmptyClause() const {
    for (const ProofStep& s : steps_) {
      if (!s.is_delete && s.lits.empty()) return true;
    }
    return false;
  }

 private:
  std::vector<ProofStep> steps_;
};

/// Adapter installed on the preprocessor's inner solver: translates
/// the solver's dense variable numbering back to the caller's original
/// numbering before forwarding (the map is `solver2orig`, owned by the
/// preprocessor and read at call time so post-preprocess NewVar growth
/// is picked up).
class RemapProofLog : public ProofLog {
 public:
  RemapProofLog(ProofLog* sink, const std::vector<sat::Var>* solver2orig)
      : sink_(sink), solver2orig_(solver2orig) {}

  void OnAdd(const std::vector<sat::Lit>& lits) override {
    sink_->OnAdd(Map(lits));
  }
  void OnDelete(const std::vector<sat::Lit>& lits) override {
    sink_->OnDelete(Map(lits));
  }

 private:
  std::vector<sat::Lit> Map(const std::vector<sat::Lit>& lits) const {
    std::vector<sat::Lit> out;
    out.reserve(lits.size());
    for (const sat::Lit l : lits) {
      ARBITER_DCHECK(l.var() >= 0 &&
                     static_cast<size_t>(l.var()) < solver2orig_->size());
      out.push_back(sat::Lit((*solver2orig_)[l.var()], l.negated()));
    }
    return out;
  }

  ProofLog* sink_;
  const std::vector<sat::Var>* solver2orig_;
};

}  // namespace arbiter::proof

#endif  // ARBITER_PROOF_PROOF_LOG_H_
