// ModelSet kernel benchmarks: set algebra, Mod(φ), form(models).

#include <benchmark/benchmark.h>

#include "logic/generator.h"
#include "logic/semantics.h"
#include "model/model_set.h"
#include "util/bit.h"

namespace {

using namespace arbiter;

ModelSet RandomSet(Rng* rng, int n, double density) {
  std::vector<uint64_t> masks;
  for (uint64_t m = 0; m < (1ULL << n); ++m) {
    if (rng->NextBool(density)) masks.push_back(m);
  }
  return ModelSet::FromMasks(std::move(masks), n);
}

void BM_ModelSetUnion(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(n);
  ModelSet a = RandomSet(&rng, n, 0.4);
  ModelSet b = RandomSet(&rng, n, 0.4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Union(b));
  }
  state.SetItemsProcessed(state.iterations() * (a.size() + b.size()));
}
BENCHMARK(BM_ModelSetUnion)->Arg(10)->Arg(14)->Arg(18)->Arg(22);

void BM_ModelSetIntersect(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(n + 1);
  ModelSet a = RandomSet(&rng, n, 0.4);
  ModelSet b = RandomSet(&rng, n, 0.4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Intersect(b));
  }
}
BENCHMARK(BM_ModelSetIntersect)->Arg(10)->Arg(14)->Arg(18)->Arg(22);

void BM_ModelSetComplement(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(n + 2);
  ModelSet a = RandomSet(&rng, n, 0.4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Complement());
  }
}
BENCHMARK(BM_ModelSetComplement)->Arg(10)->Arg(14)->Arg(18);

void BM_ModFromFormula(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(n + 3);
  Formula f = RandomKCnf(&rng, n, 3 * n, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ModelSet::FromFormula(f, n));
  }
  state.SetItemsProcessed(state.iterations() * (1LL << n));
}
BENCHMARK(BM_ModFromFormula)->Arg(10)->Arg(14)->Arg(18);

void BM_FormFromModels(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(n + 4);
  ModelSet a = RandomSet(&rng, n, 0.3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.ToFormula());
  }
  state.SetItemsProcessed(state.iterations() * a.size());
}
BENCHMARK(BM_FormFromModels)->Arg(8)->Arg(12)->Arg(16);

void BM_ModelSetContains(benchmark::State& state) {
  const int n = 20;
  Rng rng(5);
  ModelSet a = RandomSet(&rng, n, 0.3);
  uint64_t probe = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Contains(probe));
    probe = (probe + 0x9E3779B9) & LowMask(n);
  }
}
BENCHMARK(BM_ModelSetContains);

}  // namespace
