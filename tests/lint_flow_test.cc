// Tests for the dataflow lint layer (src/lint/dataflow.h,
// src/lint/flow_checks.h): the semantic oracle, the abstract domain
// and its fact-preserving join, and the flow/* verdicts the analysis
// reads off the fixpoint — including the path-sensitive cases the
// single-statement pass cannot see.

#include "lint/dataflow.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "lint/flow_checks.h"
#include "lint/lint.h"

namespace arbiter::lint {
namespace {

Formula V(int i) { return Formula::Var(i); }

FlowAnalysis Analyze(const std::string& text) {
  return AnalyzeScriptFlow("test.belief", text, LintOptions{}, {});
}

bool HasVerdict(const FlowAnalysis& flow, FlowVerdict::Kind kind,
                int line) {
  for (const FlowVerdict& v : flow.verdicts) {
    if (v.kind == kind && v.line == line) return true;
  }
  return false;
}

bool HasDiagnostic(const FlowAnalysis& flow, int line,
                   const std::string& check_id) {
  for (const Diagnostic& d : flow.diagnostics) {
    if (d.line == line && d.check_id == check_id) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// SemanticOracle

TEST(SemanticOracleTest, SatTautEntails) {
  SemanticOracle oracle(2, 64);
  EXPECT_TRUE(oracle.Sat(V(0)));
  EXPECT_FALSE(oracle.Sat(And(V(0), Not(V(0)))));
  EXPECT_TRUE(oracle.Taut(Or(V(0), Not(V(0)))));
  EXPECT_FALSE(oracle.Taut(V(0)));
  EXPECT_TRUE(oracle.Entails(And(V(0), V(1)), V(0)));
  EXPECT_FALSE(oracle.Entails(V(0), V(1)));
  EXPECT_EQ(oracle.space(), 4);
}

TEST(SemanticOracleTest, CountModelsExactUnderCap) {
  SemanticOracle oracle(3, 64);
  int64_t lo = -1;
  int64_t hi = -1;
  oracle.CountModels(V(0), &lo, &hi);
  EXPECT_EQ(lo, 4);  // one free pair of terms
  EXPECT_EQ(hi, 4);
  oracle.CountModels(And(V(0), Not(V(0))), &lo, &hi);
  EXPECT_EQ(lo, 0);
  EXPECT_EQ(hi, 0);
  oracle.CountModels(Or(V(0), Not(V(0))), &lo, &hi);
  EXPECT_EQ(lo, 8);
  EXPECT_EQ(hi, 8);
}

TEST(SemanticOracleTest, CountModelsWidensAboveCap) {
  SemanticOracle oracle(4, 4);  // cap below the 8 models of a literal
  int64_t lo = -1;
  int64_t hi = -1;
  oracle.CountModels(V(0), &lo, &hi);
  EXPECT_EQ(lo, 4);   // at least the cap's worth of models exist
  EXPECT_EQ(hi, 16);  // and no more than the whole space
}

// ---------------------------------------------------------------------------
// Abstract domain

TEST(AbstractDomainTest, JoinSatIsAJoin) {
  EXPECT_EQ(JoinSat(SatLattice::kBottom, SatLattice::kSat),
            SatLattice::kSat);
  EXPECT_EQ(JoinSat(SatLattice::kUnsat, SatLattice::kUnsat),
            SatLattice::kUnsat);
  EXPECT_EQ(JoinSat(SatLattice::kUnsat, SatLattice::kSat),
            SatLattice::kTop);
  EXPECT_EQ(JoinSat(SatLattice::kTop, SatLattice::kUnsat),
            SatLattice::kTop);
}

TEST(AbstractDomainTest, ProvesEntailsUsesExactAndFacts) {
  SemanticOracle oracle(3, 64);
  AbstractBase value;
  value.surely_defined = true;
  value.sat = SatLattice::kSat;
  value.exact = And(V(0), V(1));
  EXPECT_TRUE(ProvesEntails(oracle, value, V(0)));
  EXPECT_FALSE(ProvesEntails(oracle, value, V(2)));
  EXPECT_TRUE(ProvesNotEntails(oracle, value, V(2)));

  AbstractBase by_facts;
  by_facts.surely_defined = true;
  by_facts.sat = SatLattice::kSat;
  by_facts.facts = {V(0), Or(V(1), V(2))};
  EXPECT_TRUE(ProvesEntails(oracle, by_facts, Or(V(0), V(1))));
  EXPECT_FALSE(ProvesEntails(oracle, by_facts, V(1)));
  // Facts alone cannot refute an entailment (the true value may be
  // stronger), so ProvesNotEntails must stay conservative.
  EXPECT_FALSE(ProvesNotEntails(oracle, by_facts, V(1)));
}

TEST(AbstractDomainTest, JoinPreservesSharedConsequences) {
  SemanticOracle oracle(3, 64);
  AbstractBase a;
  a.surely_defined = true;
  a.sat = SatLattice::kSat;
  a.exact = And(V(0), V(1));
  AbstractBase b;
  b.surely_defined = true;
  b.sat = SatLattice::kSat;
  b.exact = And(V(0), V(2));

  const AbstractBase joined = JoinBase(oracle, a, b);
  EXPECT_TRUE(joined.surely_defined);
  EXPECT_EQ(joined.sat, SatLattice::kSat);
  EXPECT_FALSE(joined.exact.has_value()) << "values differ across paths";
  // x & y on one side and x & z on the other still join to fact x.
  EXPECT_TRUE(ProvesEntails(oracle, joined, V(0)));
  EXPECT_FALSE(ProvesEntails(oracle, joined, V(1)));
  EXPECT_FALSE(ProvesEntails(oracle, joined, V(2)));
}

TEST(AbstractDomainTest, JoinEqualExactValuesKeepsExact) {
  SemanticOracle oracle(2, 64);
  AbstractBase a;
  a.surely_defined = true;
  a.sat = SatLattice::kSat;
  a.exact = And(V(0), V(1));
  const AbstractBase joined = JoinBase(oracle, a, a);
  ASSERT_TRUE(joined.exact.has_value());
  EXPECT_TRUE(joined.exact->Equals(And(V(0), V(1))));
}

TEST(AbstractDomainTest, JoinWidensDepthToHull) {
  SemanticOracle oracle(1, 64);
  AbstractBase a;
  a.surely_defined = true;
  a.depth = {0, 1};
  AbstractBase b;
  b.surely_defined = true;
  b.depth = {3, 3};
  b.stack = {std::nullopt, std::nullopt, std::nullopt};
  const AbstractBase joined = JoinBase(oracle, a, b);
  EXPECT_EQ(joined.depth, (IntInterval{0, 3}));
  EXPECT_FALSE(joined.DepthExact());
}

TEST(AbstractDomainTest, JoinStateDropsSurelyDefinedOnOneSidedBases) {
  SemanticOracle oracle(1, 64);
  AbstractState a;
  a.reachable = true;
  a.bases["b"].surely_defined = true;
  AbstractState unreachable;  // identity element
  AbstractState other;
  other.reachable = true;

  const AbstractState keep = JoinState(oracle, a, unreachable);
  EXPECT_TRUE(keep.bases.at("b").surely_defined);
  const AbstractState merged = JoinState(oracle, a, other);
  EXPECT_TRUE(merged.reachable);
  ASSERT_TRUE(merged.bases.count("b"));
  EXPECT_FALSE(merged.bases.at("b").surely_defined);
}

// ---------------------------------------------------------------------------
// Flow verdicts: the path-sensitive cases the single-statement pass
// cannot see.

TEST(FlowChecksTest, RedundantChangeAtJoin) {
  // Both branch values entail a, so fact a survives the join and the
  // revision by a is (R2)-redundant on every path; neither branch is
  // known at the change statement itself.
  const FlowAnalysis flow = Analyze(
      "define chi := p\n"
      "change chi by revesz-max with q\n"
      "define psi := a & b\n"
      "if chi entails q then define psi := a & c\n"
      "change psi by dalal with a\n");
  ASSERT_TRUE(flow.ran);
  EXPECT_TRUE(HasVerdict(flow, FlowVerdict::Kind::kRedundantChange, 5));
  EXPECT_TRUE(HasDiagnostic(flow, 5, "flow/redundant-change"));
}

TEST(FlowChecksTest, GuardFactMakesInnerChangeRedundant) {
  // After fitting the value is unknown; the dalal revision restores
  // satisfiability (registered revisions with satisfiable evidence are
  // satisfiable) with only the fact c.  On the taken edge the guard
  // adds the fact a, so the guarded revision by a is a no-op exactly
  // where it can execute — provable only with the guard's path fact.
  const FlowAnalysis flow = Analyze(
      "define psi := a\n"
      "change psi by revesz-max with b\n"
      "change psi by dalal with c\n"
      "if psi entails a then change psi by dalal with a\n");
  ASSERT_TRUE(flow.ran);
  EXPECT_TRUE(HasVerdict(flow, FlowVerdict::Kind::kRedundantChange, 4));
}

TEST(FlowChecksTest, NoRedundancyWhileSatisfiabilityUnknown) {
  // The guard proves psi entails a & b, but after fitting psi might be
  // unsatisfiable, and revising an unsatisfiable base by a satisfiable
  // formula genuinely moves it; the analysis must stay quiet.
  const FlowAnalysis flow = Analyze(
      "define psi := a\n"
      "change psi by revesz-max with b\n"
      "if psi entails a & b then change psi by dalal with a\n");
  ASSERT_TRUE(flow.ran);
  EXPECT_FALSE(HasVerdict(flow, FlowVerdict::Kind::kRedundantChange, 3));
}

TEST(FlowChecksTest, UndoEmptyThroughDepthIntervalJoin) {
  // The guard provably holds, so the redefinition always executes and
  // the depth interval joins to [0, 0]: the undo must hit an empty
  // history even though no single statement shows it.
  const FlowAnalysis flow = Analyze(
      "define psi := a\n"
      "if psi entails a then define psi := b\n"
      "undo psi\n");
  ASSERT_TRUE(flow.ran);
  EXPECT_TRUE(HasVerdict(flow, FlowVerdict::Kind::kUndoEmpty, 3));
  EXPECT_TRUE(HasDiagnostic(flow, 3, "flow/undo-empty"));
}

TEST(FlowChecksTest, UndoAfterChangeIsFine) {
  const FlowAnalysis flow = Analyze(
      "define psi := a\n"
      "change psi by dalal with b\n"
      "undo psi\n");
  ASSERT_TRUE(flow.ran);
  EXPECT_TRUE(flow.verdicts.empty())
      << "undo with depth [1, 1] must not be flagged";
}

TEST(FlowChecksTest, UndoPossiblyNonEmptyIsNotFlagged) {
  // One path has depth 1, the other 0: interval [0, 1] — no verdict.
  const FlowAnalysis flow = Analyze(
      "define chi := p\n"
      "change chi by revesz-max with q\n"
      "define psi := a\n"
      "if chi entails q then change psi by dalal with b\n"
      "undo psi\n");
  ASSERT_TRUE(flow.ran);
  EXPECT_FALSE(HasVerdict(flow, FlowVerdict::Kind::kUndoEmpty, 5));
}

TEST(FlowChecksTest, UnreachableBehindDecidedGuard) {
  const FlowAnalysis flow = Analyze(
      "define psi := a & b\n"
      "if psi entails !a then assert psi entails b\n"
      "assert psi entails a\n");
  ASSERT_TRUE(flow.ran);
  EXPECT_TRUE(HasVerdict(flow, FlowVerdict::Kind::kUnreachable, 2));
  EXPECT_TRUE(HasVerdict(flow, FlowVerdict::Kind::kAssertPasses, 3));
  // The unreachable inner assert must not also produce assert verdicts.
  EXPECT_FALSE(HasVerdict(flow, FlowVerdict::Kind::kAssertPasses, 2));
  EXPECT_FALSE(HasVerdict(flow, FlowVerdict::Kind::kAssertFails, 2));
}

TEST(FlowChecksTest, AssertDecidedByModelCountInterval) {
  // psi joins to fact a with exactly 4 models on each branch (over
  // {p, q, a, b}); a & (b | q) has 6 models, so equivalence provably
  // fails even though the fact set cannot refute it.
  const FlowAnalysis flow = Analyze(
      "define chi := p\n"
      "change chi by revesz-max with p | q\n"
      "define psi := a & b\n"
      "if chi entails q then define psi := a & !b\n"
      "assert psi entails a\n"
      "assert psi equivalent-to a & (b | q)\n");
  ASSERT_TRUE(flow.ran);
  EXPECT_TRUE(HasVerdict(flow, FlowVerdict::Kind::kAssertPasses, 5));
  EXPECT_TRUE(HasVerdict(flow, FlowVerdict::Kind::kAssertFails, 6));
}

TEST(FlowChecksTest, DeadDefineFlagsOnlyUnreadValues) {
  const FlowAnalysis flow = Analyze(
      "define psi := a\n"
      "define psi := b\n"
      "assert psi entails b\n");
  ASSERT_TRUE(flow.ran);
  EXPECT_TRUE(HasVerdict(flow, FlowVerdict::Kind::kDeadDefine, 1));
  EXPECT_FALSE(HasVerdict(flow, FlowVerdict::Kind::kDeadDefine, 2));
  EXPECT_TRUE(HasDiagnostic(flow, 1, "flow/dead-define"));
}

TEST(FlowChecksTest, GuardReadKeepsDefineAlive) {
  // The redefinition only happens on the taken edge; the fall-through
  // path reads the first value, so neither define is dead.
  const FlowAnalysis flow = Analyze(
      "define chi := p\n"
      "change chi by revesz-max with q\n"
      "define psi := a\n"
      "if chi entails q then define psi := b\n"
      "assert psi entails a | b\n");
  ASSERT_TRUE(flow.ran);
  EXPECT_FALSE(HasVerdict(flow, FlowVerdict::Kind::kDeadDefine, 3));
  EXPECT_FALSE(HasVerdict(flow, FlowVerdict::Kind::kDeadDefine, 4));
}

TEST(FlowChecksTest, FittingAndArbitrationAreExemptFromRedundancy) {
  // Example 3.1: fitting with entailed evidence still genuinely moves
  // the base, so no redundancy verdict may fire for fitting or
  // arbitration operators.
  const FlowAnalysis flow = Analyze(
      "define psi := a & b\n"
      "change psi by revesz-max with a\n"
      "define chi := a & b\n"
      "change chi by arbitration-max with a\n");
  ASSERT_TRUE(flow.ran);
  for (const FlowVerdict& v : flow.verdicts) {
    EXPECT_NE(v.kind, FlowVerdict::Kind::kRedundantChange)
        << "line " << v.line;
  }
}

TEST(FlowChecksTest, VerdictsRecordRuntimeComparableText) {
  const FlowAnalysis flow = Analyze(
      "define psi := a\n"
      "if psi entails a then define psi := b\n"
      "undo psi\n");
  ASSERT_TRUE(flow.ran);
  ASSERT_FALSE(flow.verdicts.empty());
  bool found = false;
  for (const FlowVerdict& v : flow.verdicts) {
    if (v.kind == FlowVerdict::Kind::kUndoEmpty) {
      found = true;
      EXPECT_EQ(v.base, "psi");
      EXPECT_EQ(v.statement, "undo psi");
    }
  }
  EXPECT_TRUE(found);
}

TEST(FlowChecksTest, SuppressionKeepsVerdictDropsDiagnostic) {
  const std::string text =
      "define psi := a\n"
      "undo psi\n";
  const FlowAnalysis loud =
      AnalyzeScriptFlow("test.belief", text, LintOptions{}, {});
  EXPECT_TRUE(HasDiagnostic(loud, 2, "flow/undo-empty"));
  const FlowAnalysis quiet = AnalyzeScriptFlow(
      "test.belief", text, LintOptions{}, {{2, "script/undo-empty"}});
  EXPECT_FALSE(HasDiagnostic(quiet, 2, "flow/undo-empty"))
      << "same-line single-statement finding must suppress the restated "
         "flow diagnostic";
  EXPECT_TRUE(HasVerdict(quiet, FlowVerdict::Kind::kUndoEmpty, 2))
      << "the verdict itself must survive suppression";
}

TEST(FlowChecksTest, TautologicalGuardGetsUnwrapFixIt) {
  const FlowAnalysis flow = Analyze(
      "define psi := a\n"
      "if psi entails a | !a then undo psi\n");
  ASSERT_TRUE(flow.ran);
  ASSERT_TRUE(flow.guard_unwraps.count(2));
  EXPECT_EQ(flow.guard_unwraps.at(2).replacement, "undo psi");
}

// Evaluating a guard registers its atoms in the store vocabulary even
// when the guarded statement is skipped, and change operators do not
// commute with vocabulary growth (belief_store.h).  Fix-its that
// remove evaluated text are withheld unless the removal provably
// leaves every later operator's vocabulary unchanged.

bool FixItAt(const FlowAnalysis& flow, int line,
             const std::string& check_id) {
  for (const Diagnostic& d : flow.diagnostics) {
    if (d.line == line && d.check_id == check_id) return !d.fixits.empty();
  }
  return false;
}

TEST(FlowChecksTest, DeleteFixItWithheldWhenRemovalShrinksVocabulary) {
  // Line 2's guard is the only text registering `b` before the change
  // on line 3, so deleting it would shift dalal's vocabulary.
  const FlowAnalysis flow = Analyze(
      "define psi := true\n"
      "if psi entails b then undo psi\n"
      "change psi by dalal with a\n");
  ASSERT_TRUE(flow.ran);
  EXPECT_TRUE(HasDiagnostic(flow, 2, "flow/unreachable"));
  EXPECT_FALSE(FixItAt(flow, 2, "flow/unreachable"));
}

TEST(FlowChecksTest, DeleteFixItOfferedWhenAtomsRegisterEarlier) {
  // `b` is already registered by line 1's payload, so removing the
  // dead guard cannot move any registration point.
  const FlowAnalysis flow = Analyze(
      "define psi := a & !b\n"
      "if psi entails b then undo psi\n"
      "change psi by dalal with a\n");
  ASSERT_TRUE(flow.ran);
  EXPECT_TRUE(FixItAt(flow, 2, "flow/unreachable"));
}

TEST(FlowChecksTest, DeleteFixItOfferedWhenNoChangeFollows) {
  // Fresh atoms are fine to drop when no operator application can see
  // the difference: queries are invariant under vocabulary growth.
  const FlowAnalysis flow = Analyze(
      "define psi := true\n"
      "if psi entails b then undo psi\n"
      "assert psi entails true\n");
  ASSERT_TRUE(flow.ran);
  EXPECT_TRUE(FixItAt(flow, 2, "flow/unreachable"));
}

TEST(FlowChecksTest, GuardUnwrapWithheldWhenGuardIntroducesAtoms) {
  // The tautological guard is the first mention of `b`; unwrapping it
  // would delay b's registration past the change on line 3.
  const FlowAnalysis flow = Analyze(
      "define psi := a\n"
      "if psi entails b | !b then undo psi\n"
      "change psi by dalal with a\n");
  ASSERT_TRUE(flow.ran);
  EXPECT_FALSE(flow.guard_unwraps.count(2));

  // With `b` registered on line 1 the unwrap is safe again.
  const FlowAnalysis safe = Analyze(
      "define psi := a & b\n"
      "if psi entails b | !b then undo psi\n"
      "change psi by dalal with a\n");
  ASSERT_TRUE(safe.ran);
  EXPECT_TRUE(safe.guard_unwraps.count(2));
}

TEST(FlowChecksTest, SkipsOnSyntaxErrorsAndWhenDisabled) {
  const FlowAnalysis broken = Analyze(
      "define psi := a\n"
      "not a statement\n"
      "undo psi\n");
  EXPECT_FALSE(broken.ran);
  EXPECT_TRUE(broken.verdicts.empty());

  LintOptions off;
  off.enable_dataflow = false;
  const FlowAnalysis disabled =
      AnalyzeScriptFlow("test.belief", "define psi := a\nundo psi\n", off,
                        {});
  EXPECT_FALSE(disabled.ran);
}

// ---------------------------------------------------------------------------
// End-to-end through LintScriptText.

TEST(FlowChecksTest, LintScriptTextCarriesFlowDiagnosticsAndFixIts) {
  const std::vector<Diagnostic> diags = LintScriptText(
      "test.belief",
      "define psi := a\n"
      "define psi := b\n"
      "assert psi entails b\n",
      LintOptions{});
  bool dead = false;
  for (const Diagnostic& d : diags) {
    if (d.check_id == "flow/dead-define") {
      dead = true;
      ASSERT_EQ(d.fixits.size(), 1u);
      EXPECT_EQ(d.fixits[0].offset, 0u);
      EXPECT_EQ(d.fixits[0].length, 16u);  // "define psi := a\n"
      EXPECT_EQ(d.fixits[0].replacement, "");
    }
  }
  EXPECT_TRUE(dead);
}

TEST(FlowChecksTest, DataflowOffRemovesFlowDiagnostics) {
  LintOptions off;
  off.enable_dataflow = false;
  const std::vector<Diagnostic> diags = LintScriptText(
      "test.belief",
      "define psi := a\n"
      "define psi := b\n",
      off);
  for (const Diagnostic& d : diags) {
    EXPECT_NE(d.check_id.rfind("flow/", 0), 0u) << d.check_id;
  }
}

}  // namespace
}  // namespace arbiter::lint
