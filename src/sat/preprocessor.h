#ifndef ARBITER_SAT_PREPROCESSOR_H_
#define ARBITER_SAT_PREPROCESSOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "proof/proof_log.h"
#include "sat/engine.h"
#include "sat/solver.h"

/// \file preprocessor.h
/// SatELite-style CNF preprocessing in front of the CDCL solver:
/// subsumption, self-subsuming resolution, and bounded variable
/// elimination (BVE) over occurrence lists with 64-bit clause
/// signatures, followed by a dense variable remapping so the inner
/// solver never sees the eliminated gaps.
///
/// The wrapper is a drop-in `SatEngine`: clauses are buffered until the
/// first solve (or an explicit `Preprocess()` call), simplified, and
/// loaded into the backing `Solver` under fresh dense indices.  Three
/// pieces keep the external view stable:
///
///  * **Freezing.**  Variables the caller will mention *after*
///    preprocessing — projected atoms for AllSAT, assumption literals,
///    anything fed to cardinality layers built on top — must be frozen
///    with `Freeze`/`FreezeRange` so BVE never eliminates them.  Only
///    unfrozen auxiliaries (Tseitin variables, typically) are
///    candidates.  Assumption variables of the solve that triggers lazy
///    preprocessing are frozen automatically.
///
///  * **Model reconstruction.**  Eliminating v records the clauses of
///    one polarity side; `ModelValue` extends the inner model over the
///    elimination stack in reverse, so eliminated variables still
///    report consistent values.
///
///  * **Remapping.**  `FailedAssumptions` and `ModelValue` translate
///    between original and solver indices; callers never see the dense
///    renaming.
///
/// The pass can be disabled process-wide (`SetSatPreprocessingEnabled`)
/// for differential testing: a wrapper *constructed* while disabled is a
/// pure passthrough — every call forwards straight to the inner solver,
/// so it is behaviorally (and bit-for-bit) the plain solver.  The flag
/// is sampled at construction time.
namespace arbiter::sat {

/// Counters produced by a `Preprocess()` run.
struct PreprocessStats {
  uint64_t eliminated_vars = 0;
  uint64_t subsumed_clauses = 0;
  uint64_t strengthened_literals = 0;
  uint64_t resolvents_added = 0;
  uint64_t fixed_vars = 0;   // roots derived by pre-solve unit propagation
  uint64_t rounds = 0;       // subsumption/BVE fixpoint iterations
};

/// Process-wide switch, sampled by each `SatPreprocessor` at
/// construction: when false, the wrapper forwards every call straight
/// to the inner solver.  Used by the differential fuzz harness to
/// compare preprocessed and raw runs bit-for-bit.
void SetSatPreprocessingEnabled(bool enabled);
bool SatPreprocessingEnabled();

/// Preprocessing size floor: `Preprocess()` skips the simplification
/// pipeline (identity load into the inner solver, after which the
/// wrapper is a pure passthrough) when fewer clauses than this were
/// buffered.  Below the default floor the buffering/occurrence-list
/// bookkeeping costs more than the simplification saves — measured on
/// the counting-backend arms of bench_solve, whose ladder instances
/// are 40-130 clauses each and are solved in tens of microseconds.
/// Tests that assert pipeline behavior on tiny instances set the
/// floor to 0.
void SetSatPreprocessMinClauses(int min_clauses);
int SatPreprocessMinClauses();

class SatPreprocessor : public SatEngine {
 public:
  SatPreprocessor() = default;

  // ClauseSink.  Before preprocessing, clauses are buffered; after, they
  // are remapped and forwarded to the inner solver (new clauses must not
  // mention eliminated variables — freeze anything you plan to revisit).
  Var NewVar() override;
  int NumVars() const override { return num_vars_; }
  bool AddClause(std::vector<Lit> lits) override;

  /// Marks v (or [begin, end)) as never eliminable.  Must be called
  /// before preprocessing runs; frozen variables keep valid meanings
  /// for later clauses, assumptions, and model queries.
  void Freeze(Var v);
  void FreezeRange(Var begin, Var end);

  /// Runs the simplification pipeline (subject to the size floor
  /// above) and loads the result into the inner solver.  Idempotent;
  /// runs lazily on the first solve if not called explicitly.
  void Preprocess();
  bool preprocessed() const { return preprocessed_; }

  // SatEngine.
  SolveStatus Solve() override;
  SolveStatus SolveAssuming(const std::vector<Lit>& assumptions) override;
  bool ModelValue(Var v) const override;
  const std::vector<Lit>& FailedAssumptions() const override {
    return replay_ ? solver_.FailedAssumptions() : failed_assumptions_;
  }
  bool InConflict() const override;

  /// Installs a DRAT sink covering the whole pipeline, in *original*
  /// variable numbering: the buffered-phase simplifications (derived
  /// units, strengthening, subsumption, BVE resolvents/originals) log
  /// directly, and the inner solver's steps are translated back
  /// through `solver2orig_`.  Install before adding clauses.  Nullptr
  /// or never calling this keeps every site a single untaken branch.
  void SetProofLog(proof::ProofLog* log);

  const PreprocessStats& pstats() const { return pstats_; }
  /// The backing solver (valid after preprocessing) — for stats and
  /// budget control.
  Solver& solver() { return solver_; }
  const Solver& solver() const { return solver_; }

 private:
  // A buffered clause: literals sorted by code, plus a Bloom-style
  // signature (bit var%64) for fast subsumption rejection.
  struct PendingClause {
    std::vector<Lit> lits;
    uint64_t sig = 0;
    bool dead = false;
  };

  // Elimination record: `p`'s variable was eliminated; `clauses` are the
  // clauses that contained `p` at elimination time (other literals
  // only are stored — `p` itself is implicit).  Model extension sets p
  // true iff some stored clause is otherwise unsatisfied.
  struct ElimRecord {
    Lit p;
    std::vector<std::vector<Lit>> clauses;
  };

  static uint64_t Signature(const std::vector<Lit>& lits);

  // Buffered-phase helpers.
  LBool FixedValue(Lit l) const;
  bool AddPending(std::vector<Lit> lits);
  bool SetFixed(Lit l);
  bool PropagateFixed();
  void AttachOcc(int ci);
  bool ClauseContains(const PendingClause& c, Lit l) const;

  // Simplification passes.
  bool SubsumptionPass();
  bool TrySubsumeWith(int ci);
  bool StrengthenClause(int ci, Lit l);
  void KillClause(int ci);
  void TouchClause(int ci);
  bool BvePass();
  bool TryEliminate(Var v);

  void BuildSolver();
  void ExtendModel();

  int num_vars_ = 0;
  bool contradiction_ = false;
  bool preprocessed_ = false;
  // When true the wrapper is a zero-overhead passthrough to the plain
  // solver (no buffering, no remapping): sampled at construction from
  // the process-wide switch (so differential runs compare like for
  // like), or entered when a lazy preprocess falls below the size floor
  // and loads the buffer identically.
  bool replay_ = !SatPreprocessingEnabled();

  std::vector<std::vector<Lit>> buffer_;   // clauses as received, moved
                                           // into the pipeline (or the
                                           // solver) by Preprocess
  std::vector<PendingClause> pending_;
  std::vector<std::vector<int>> occ_;      // lit code -> pending indices
  std::vector<char> frozen_;               // by var
  std::vector<LBool> fixed_;               // root-level values, by var
  std::vector<Lit> fixed_queue_;           // units awaiting propagation
  std::vector<char> eliminated_;           // by var
  std::vector<int> subsume_queue_;         // pending indices to re-check
  std::vector<char> in_subsume_queue_;
  std::vector<char> touched_;              // by var: occ lists changed
                                           // since the last BVE attempt

  std::vector<ElimRecord> elim_stack_;
  std::vector<int> orig2solver_;           // -1: eliminated or fixed
  std::vector<Var> solver2orig_;
  std::vector<LBool> model_;               // extended model, by orig var
  std::vector<Lit> failed_assumptions_;    // in original variables

  PreprocessStats pstats_;
  proof::ProofLog* proof_ = nullptr;
  std::unique_ptr<proof::RemapProofLog> remap_log_;
  Solver solver_;
};

}  // namespace arbiter::sat

#endif  // ARBITER_SAT_PREPROCESSOR_H_
