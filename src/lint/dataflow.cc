#include "lint/dataflow.h"

#include <algorithm>
#include <set>
#include <utility>

#include "enc/tseitin.h"
#include "sat/all_sat.h"
#include "sat/preprocessor.h"
#include "solve/sat_bridge.h"
#include "util/logging.h"

namespace arbiter::lint {

namespace {

/// Cap on tracked facts per base; joins beyond it drop candidates.
constexpr int kMaxFacts = 16;

bool ContainsFormula(const std::vector<Formula>& haystack,
                     const Formula& f) {
  for (const Formula& g : haystack) {
    if (g.Equals(f)) return true;
  }
  return false;
}

/// Flattens nested conjunctions into their conjunct list.
void Conjuncts(const Formula& f, std::vector<Formula>* out) {
  if (f.kind() == FormulaKind::kAnd) {
    for (const Formula& child : f.children()) Conjuncts(child, out);
  } else {
    out->push_back(f);
  }
}

/// Candidate facts a join may preserve from one side: its facts, its
/// exact formula, and their top-level conjuncts (so `x & y` joined
/// with `x & z` can keep `x`).
std::vector<Formula> FactCandidates(const AbstractBase& v) {
  std::vector<Formula> out;
  auto add = [&out](const Formula& f) {
    if (!f.is_true() && !ContainsFormula(out, f)) out.push_back(f);
  };
  for (const Formula& f : v.facts) {
    add(f);
    Conjuncts(f, &out);
  }
  if (v.exact) {
    add(*v.exact);
    std::vector<Formula> parts;
    Conjuncts(*v.exact, &parts);
    for (const Formula& part : parts) add(part);
  }
  return out;
}

/// Replaces v's value with the exact formula f (postulate-forced),
/// refreshing satisfiability and the model-count interval.
void SetExactValue(const SemanticOracle& oracle, AbstractBase* v,
                   const Formula& f) {
  v->exact = f;
  v->facts.clear();
  v->sat = oracle.Sat(f) ? SatLattice::kSat : SatLattice::kUnsat;
  oracle.CountModels(f, &v->models_lo, &v->models_hi);
}

/// Replaces v's value with "satisfiable, entails each of `facts`".
void SetFactsValue(const SemanticOracle& oracle, AbstractBase* v,
                   std::vector<Formula> facts) {
  v->exact.reset();
  v->facts = std::move(facts);
  v->sat = SatLattice::kSat;
  v->models_lo = 1;
  v->models_hi = oracle.space();
}

/// Forgets everything about v's value (keeps definedness and depth).
void SetUnknownValue(const SemanticOracle& oracle, AbstractBase* v) {
  v->exact.reset();
  v->facts.clear();
  v->sat = SatLattice::kTop;
  v->models_lo = 0;
  v->models_hi = oracle.space();
}

}  // namespace

SatLattice JoinSat(SatLattice a, SatLattice b) {
  if (a == SatLattice::kBottom) return b;
  if (b == SatLattice::kBottom) return a;
  if (a == b) return a;
  return SatLattice::kTop;
}

SemanticOracle::SemanticOracle(int num_terms, int64_t model_cap)
    : num_terms_(num_terms), model_cap_(std::max<int64_t>(model_cap, 1)) {
  ARBITER_CHECK(num_terms_ >= 0 && num_terms_ <= 62);
  space_ = int64_t{1} << num_terms_;
}

bool SemanticOracle::Sat(const Formula& f) const {
  if (f.is_true()) return true;
  if (f.is_false()) return false;
  const uint64_t key = f.Hash();
  auto it = sat_cache_.find(key);
  if (it != sat_cache_.end()) return it->second;
  bool sat;
  if (certify_) {
    const solve::CertifiedSatResult r =
        solve::SatIsSatisfiableCertified(f, std::max(num_terms_, 1));
    sat = r.sat;
    if (r.certify_attempted && !r.certified) all_unsat_certified_ = false;
  } else {
    sat = solve::SatIsSatisfiable(f, std::max(num_terms_, 1));
  }
  sat_cache_.emplace(key, sat);
  return sat;
}

void SemanticOracle::CountModels(const Formula& f, int64_t* lo,
                                 int64_t* hi) const {
  if (!Sat(f)) {
    *lo = *hi = 0;
    return;
  }
  if (num_terms_ == 0) {
    *lo = *hi = 1;
    return;
  }
  sat::SatPreprocessor solver;
  enc::TseitinEncoder encoder(&solver);
  encoder.ReserveInputVars(num_terms_);
  if (!encoder.Assert(f)) {
    *lo = *hi = 0;
    return;
  }
  solver.FreezeRange(0, num_terms_);  // enumeration projects onto inputs
  sat::AllSatOptions options;
  options.num_project = num_terms_;
  options.max_models = model_cap_;
  const int64_t count =
      sat::EnumerateAllSat(&solver, options, [](uint64_t) { return true; });
  if (count < model_cap_) {
    *lo = *hi = count;
  } else {
    *lo = model_cap_;
    *hi = space_;
  }
}

bool BaseEquals(const AbstractBase& a, const AbstractBase& b) {
  if (a.surely_defined != b.surely_defined || a.sat != b.sat ||
      !(a.depth == b.depth) || a.models_lo != b.models_lo ||
      a.models_hi != b.models_hi) {
    return false;
  }
  if (a.exact.has_value() != b.exact.has_value()) return false;
  if (a.exact && !a.exact->Equals(*b.exact)) return false;
  if (a.facts.size() != b.facts.size()) return false;
  for (size_t i = 0; i < a.facts.size(); ++i) {
    if (!a.facts[i].Equals(b.facts[i])) return false;
  }
  if (a.stack.size() != b.stack.size()) return false;
  for (size_t i = 0; i < a.stack.size(); ++i) {
    if (a.stack[i].has_value() != b.stack[i].has_value()) return false;
    if (a.stack[i] && !a.stack[i]->Equals(*b.stack[i])) return false;
  }
  return true;
}

bool StateEquals(const AbstractState& a, const AbstractState& b) {
  if (a.reachable != b.reachable) return false;
  if (a.bases.size() != b.bases.size()) return false;
  auto ia = a.bases.begin();
  auto ib = b.bases.begin();
  for (; ia != a.bases.end(); ++ia, ++ib) {
    if (ia->first != ib->first || !BaseEquals(ia->second, ib->second)) {
      return false;
    }
  }
  return true;
}

bool ProvesEntails(const SemanticOracle& oracle, const AbstractBase& value,
                   const Formula& f) {
  if (f.is_true() || oracle.Taut(f)) return true;
  if (value.sat == SatLattice::kUnsat) return true;
  if (value.exact) return oracle.Entails(*value.exact, f);
  if (!value.facts.empty()) {
    return oracle.Entails(And(value.facts), f);
  }
  return false;
}

bool ProvesNotEntails(const SemanticOracle& oracle,
                      const AbstractBase& value, const Formula& f) {
  if (value.exact) {
    return oracle.Sat(*value.exact) && !oracle.Entails(*value.exact, f);
  }
  return value.sat == SatLattice::kSat && !oracle.Sat(f);
}

AbstractBase JoinBase(const SemanticOracle& oracle, const AbstractBase& a,
                      const AbstractBase& b) {
  AbstractBase out;
  out.surely_defined = a.surely_defined && b.surely_defined;
  out.sat = JoinSat(a.sat, b.sat);
  if (a.exact && b.exact && a.exact->Equals(*b.exact)) {
    out.exact = a.exact;
  } else {
    // Fact-preserving join: a candidate survives when the *other*
    // side's value also proves the base entails it (both directions).
    for (const Formula& f : FactCandidates(a)) {
      if (static_cast<int>(out.facts.size()) >= kMaxFacts) break;
      if (ProvesEntails(oracle, b, f) && !ContainsFormula(out.facts, f)) {
        out.facts.push_back(f);
      }
    }
    for (const Formula& f : FactCandidates(b)) {
      if (static_cast<int>(out.facts.size()) >= kMaxFacts) break;
      if (ProvesEntails(oracle, a, f) && !ContainsFormula(out.facts, f)) {
        out.facts.push_back(f);
      }
    }
  }
  out.depth.lo = std::min(a.depth.lo, b.depth.lo);
  out.depth.hi = std::max(a.depth.hi, b.depth.hi);
  if (a.DepthExact() && b.DepthExact() && a.depth.lo == b.depth.lo) {
    out.stack.resize(a.stack.size());
    for (size_t i = 0; i < a.stack.size(); ++i) {
      if (a.stack[i] && b.stack[i] && a.stack[i]->Equals(*b.stack[i])) {
        out.stack[i] = a.stack[i];
      }
    }
  }
  out.models_lo = std::min(a.models_lo, b.models_lo);
  out.models_hi = std::max(a.models_hi, b.models_hi);
  return out;
}

AbstractState JoinState(const SemanticOracle& oracle,
                        const AbstractState& a, const AbstractState& b) {
  if (!a.reachable) return b;
  if (!b.reachable) return a;
  AbstractState out;
  out.reachable = true;
  for (const auto& [name, value] : a.bases) {
    auto it = b.bases.find(name);
    if (it == b.bases.end()) {
      // Defined on one side only.  Keeping the value is sound because
      // every verdict is conditioned on surely_defined (an undefined
      // use halts the concrete run before the claim could be tested).
      AbstractBase v = value;
      v.surely_defined = false;
      out.bases.emplace(name, std::move(v));
    } else {
      out.bases.emplace(name, JoinBase(oracle, value, it->second));
    }
  }
  for (const auto& [name, value] : b.bases) {
    if (a.bases.count(name)) continue;
    AbstractBase v = value;
    v.surely_defined = false;
    out.bases.emplace(name, std::move(v));
  }
  return out;
}

ScriptDataflow::ScriptDataflow(
    const Cfg* cfg,
    const std::map<const ScriptStatement*, StatementInfo>* info,
    SemanticOracle oracle)
    : cfg_(cfg), info_(info), oracle_(std::move(oracle)) {
  ARBITER_CHECK(cfg_ != nullptr && info_ != nullptr);
}

const StatementInfo& ScriptDataflow::InfoFor(
    const ScriptStatement* stmt) const {
  static const StatementInfo kEmpty;
  auto it = info_->find(stmt);
  return it == info_->end() ? kEmpty : it->second;
}

void ScriptDataflow::Transfer(int node_id, const AbstractState& in,
                              std::vector<AbstractState>* outs) const {
  const CfgNode& node = cfg_->node(node_id);
  outs->assign(node.succs.size(), AbstractState{});
  if (!in.reachable) return;
  if (node.kind != CfgNode::Kind::kStatement) {
    for (AbstractState& out : *outs) out = in;
    return;
  }
  const ScriptStatement& stmt = *node.stmt;
  const StatementInfo& info = InfoFor(node.stmt);
  switch (stmt.kind) {
    case ScriptStatement::Kind::kDefine: {
      AbstractState out = in;
      AbstractBase& v = out.bases[stmt.base];
      v = AbstractBase{};
      v.surely_defined = true;  // a failed define halts the run anyway
      if (info.payload) {
        SetExactValue(oracle_, &v, *info.payload);
      } else {
        SetUnknownValue(oracle_, &v);
      }
      (*outs)[0] = std::move(out);
      return;
    }
    case ScriptStatement::Kind::kChange: {
      AbstractState out = in;
      AbstractBase& v = out.bases[stmt.base];
      // History push; the abstract stack stays meaningful only while
      // the depth is exact.
      const bool was_exact_depth = v.DepthExact();
      const std::optional<Formula> old_exact = v.exact;
      const SatLattice old_sat = v.sat;
      v.depth.lo += 1;
      v.depth.hi += 1;
      if (was_exact_depth) {
        v.stack.push_back(old_exact);
      } else {
        v.stack.clear();
      }
      if (!info.payload || !info.family) {
        SetUnknownValue(oracle_, &v);
      } else {
        const Formula& mu = *info.payload;
        const OperatorFamily family = *info.family;
        const bool revision = family == OperatorFamily::kRevision;
        const bool update = family == OperatorFamily::kUpdate;
        if (!revision && !update) {
          // Model fitting / arbitration move the base in ways the
          // postulates leave open (Example 3.1); track nothing.
          SetUnknownValue(oracle_, &v);
        } else if (!oracle_.Sat(mu)) {
          // (R1)/(U1): success forces the inconsistent evidence.
          SetExactValue(oracle_, &v, Formula::False());
        } else if (revision) {
          if (old_exact && oracle_.Sat(And(*old_exact, mu))) {
            // (R2): consistent revision is plain conjunction.
            SetExactValue(oracle_, &v, And(*old_exact, mu));
          } else {
            // Success + consistency: the result entails μ and is
            // satisfiable (registered revisions fall back to Mod(μ)
            // for inconsistent ψ).
            SetFactsValue(oracle_, &v, {mu});
          }
        } else {  // update
          if (old_sat == SatLattice::kUnsat) {
            // Pointwise update of the empty model set stays empty.
            SetExactValue(oracle_, &v, Formula::False());
          } else if (old_exact && oracle_.Sat(*old_exact) &&
                     oracle_.Entails(*old_exact, mu)) {
            // (U2): updating with entailed evidence is the identity.
            v.exact = old_exact;
            v.sat = old_sat;
          } else {
            v.exact.reset();
            v.facts = {mu};
            v.sat = old_sat == SatLattice::kSat ? SatLattice::kSat
                                                : SatLattice::kTop;
            v.models_lo = v.sat == SatLattice::kSat ? 1 : 0;
            v.models_hi = oracle_.space();
          }
        }
      }
      (*outs)[0] = std::move(out);
      return;
    }
    case ScriptStatement::Kind::kUndo: {
      AbstractState out = in;
      auto it = out.bases.find(stmt.base);
      if (it == out.bases.end()) {
        // Undefined use: the run halts here; modeling fall-through as
        // a no-op only over-approximates reachability.
        (*outs)[0] = std::move(out);
        return;
      }
      AbstractBase& v = it->second;
      if (v.depth.hi == 0) {
        // Provably empty history on every path: the concrete run
        // hard-errors (flow/undo-empty); no-op keeps the analysis
        // sound downstream.
        (*outs)[0] = std::move(out);
        return;
      }
      if (v.DepthExact() && !v.stack.empty()) {
        const std::optional<Formula> restored = v.stack.back();
        v.stack.pop_back();
        v.depth.lo -= 1;
        v.depth.hi -= 1;
        if (restored) {
          SetExactValue(oracle_, &v, *restored);
        } else {
          const IntInterval depth = v.depth;
          auto stack = std::move(v.stack);
          SetUnknownValue(oracle_, &v);
          v.depth = depth;
          v.stack = std::move(stack);
        }
      } else {
        v.depth.lo = std::max(v.depth.lo - 1, 0);
        v.depth.hi -= 1;
        v.stack.clear();
        const IntInterval depth = v.depth;
        SetUnknownValue(oracle_, &v);
        v.depth = depth;
      }
      (*outs)[0] = std::move(out);
      return;
    }
    case ScriptStatement::Kind::kAssertEntails:
    case ScriptStatement::Kind::kAssertConsistent:
    case ScriptStatement::Kind::kAssertEquivalent:
    // Backend/metric selection never touches any base's belief state.
    case ScriptStatement::Kind::kSetBackend:
    case ScriptStatement::Kind::kSetWeight: {
      (*outs)[0] = in;
      return;
    }
    case ScriptStatement::Kind::kConditional: {
      AbstractState taken = in;
      AbstractState fall = in;
      auto it = in.bases.find(stmt.base);
      const AbstractBase* v =
          it == in.bases.end() ? nullptr : &it->second;
      if (v != nullptr && info.payload) {
        const Formula& f = *info.payload;
        if (ProvesNotEntails(oracle_, *v, f)) {
          taken.reachable = false;
          taken.bases.clear();
        } else {
          AbstractBase& tv = taken.bases[stmt.base];
          if (!tv.exact && !ContainsFormula(tv.facts, f) &&
              static_cast<int>(tv.facts.size()) < kMaxFacts &&
              !f.is_true()) {
            tv.facts.push_back(f);
          }
        }
        if (ProvesEntails(oracle_, *v, f)) {
          fall.reachable = false;
          fall.bases.clear();
        }
      }
      if (outs->size() >= 1) (*outs)[0] = std::move(taken);
      if (outs->size() >= 2) (*outs)[1] = std::move(fall);
      return;
    }
  }
}

void ScriptDataflow::Run() {
  const int n = cfg_->num_nodes();
  in_states_.assign(n, AbstractState{});
  edge_states_.assign(n, {});
  for (int i = 0; i < n; ++i) {
    edge_states_[i].resize(cfg_->node(i).succs.size());
  }

  // RPO-prioritized worklist: on the DAG cfgs the parser produces,
  // every node pops after all its predecessors have stabilized.
  std::vector<int> rpo_pos(n, n);
  const std::vector<int>& rpo = cfg_->ReversePostOrder();
  for (size_t i = 0; i < rpo.size(); ++i) {
    rpo_pos[rpo[i]] = static_cast<int>(i);
  }
  std::set<std::pair<int, int>> worklist;
  worklist.insert({rpo_pos[cfg_->entry()], cfg_->entry()});

  while (!worklist.empty()) {
    const int node_id = worklist.begin()->second;
    worklist.erase(worklist.begin());
    const CfgNode& node = cfg_->node(node_id);

    AbstractState in;
    if (node_id == cfg_->entry()) {
      in.reachable = true;
    } else {
      for (int pred : node.preds) {
        const CfgNode& p = cfg_->node(pred);
        for (size_t j = 0; j < p.succs.size(); ++j) {
          if (p.succs[j] != node_id) continue;
          in = JoinState(oracle_, in, edge_states_[pred][j]);
        }
      }
    }
    in_states_[node_id] = in;

    std::vector<AbstractState> outs;
    Transfer(node_id, in, &outs);
    for (size_t i = 0; i < outs.size(); ++i) {
      if (StateEquals(outs[i], edge_states_[node_id][i])) continue;
      edge_states_[node_id][i] = std::move(outs[i]);
      const int succ = node.succs[i];
      worklist.insert({rpo_pos[succ], succ});
    }
  }
}

}  // namespace arbiter::lint
