#ifndef ARBITER_MODEL_LOYAL_H_
#define ARBITER_MODEL_LOYAL_H_

#include <functional>
#include <optional>
#include <string>

#include "model/distance_semantics.h"
#include "model/model_set.h"
#include "model/preorder.h"

/// \file loyal.h
/// Loyal assignments (paper, Section 3): a function mapping each
/// knowledge base ψ to a total pre-order ≤ψ such that
///
///   (1) ψ1 ↔ ψ2 implies ≤ψ1 = ≤ψ2;
///   (2) I <ψ1 J and I ≤ψ2 J imply I <ψ1∨ψ2 J;
///   (3) I ≤ψ1 J and I ≤ψ2 J imply I ≤ψ1∨ψ2 J.
///
/// Because our assignments are keyed on Mod(ψ) (a ModelSet), condition
/// (1) holds by construction; the checker verifies (2) and (3)
/// exhaustively over all pairs of satisfiable knowledge bases of a
/// small vocabulary, plus determinism of the assignment.

namespace arbiter {

/// An assignment ψ ↦ ≤ψ, keyed semantically.
using PreorderAssignment =
    std::function<TotalPreorder(const ModelSet& psi)>;

/// A concrete loyalty violation, for diagnostics.
struct LoyaltyViolation {
  int condition;  // 1, 2, or 3
  ModelSet psi1;
  ModelSet psi2;
  uint64_t i;
  uint64_t j;

  std::string Describe() const;
};

/// Exhaustively checks loyalty conditions (1)–(3) of `assignment` over
/// every pair of nonempty knowledge bases on an n-term vocabulary.
/// Returns std::nullopt if loyal, else the first violation found.
/// Cost is Θ(4^(2^n)); intended for n <= 2 exhaustive, n == 3 feasible
/// (~4M pair checks).
std::optional<LoyaltyViolation> CheckLoyalty(
    const PreorderAssignment& assignment, int num_terms);

/// The paper's concrete assignments, usable with CheckLoyalty and the
/// operator constructions:

/// ≤ψ ranked by dist(ψ, I) = min Hamming distance (Dalal; revision).
TotalPreorder DalalPreorder(const ModelSet& psi);

/// ≤ψ ranked by odist(ψ, I) = max Hamming distance (Revesz, Section 3).
TotalPreorder OverallDistPreorder(const ModelSet& psi);

/// ≤ψ ranked by Σ_J dist(I, J) (unit-weight wdist, Section 4).
TotalPreorder SumDistPreorder(const ModelSet& psi);

/// ≤ψ ranked by the given distance semantics (aggregated metric
/// distance to Mod(ψ)).  Generalizes the three assignments above:
/// MinSemantics() gives DalalPreorder, MaxSemantics() gives
/// OverallDistPreorder, SumSemantics() gives SumDistPreorder — with
/// identical ranks on the unit metric.  Requires psi nonempty.
TotalPreorder SemanticsPreorder(const DistanceSemantics& semantics,
                                const ModelSet& psi);

/// The assignment ψ ↦ SemanticsPreorder(semantics, ψ), usable with
/// CheckLoyalty and the representation checkers.
PreorderAssignment MakeSemanticsAssignment(DistanceSemantics semantics);

}  // namespace arbiter

#endif  // ARBITER_MODEL_LOYAL_H_
