#ifndef ARBITER_CHANGE_UPDATE_H_
#define ARBITER_CHANGE_UPDATE_H_

#include <vector>

#include "change/operator.h"
#include "model/distance_semantics.h"

/// \file update.h
/// Update operators in the Katsuno–Mendelzon sense: each model of ψ is
/// changed independently and the results are unioned,
///
///   Mod(ψ ⋄ μ) = ⋃_{I ∈ Mod(ψ)} Min(Mod(μ), ≤_I).
///
/// ψ unsatisfiable yields an unsatisfiable result (the union over an
/// empty set — consistent with axiom (U3) needing ψ satisfiable).

namespace arbiter {

/// Winslett's possible models approach [Win88]: per-model ⊆-minimal
/// symmetric differences.
class WinslettUpdate : public TheoryChangeOperator {
 public:
  std::string name() const override { return "winslett"; }
  OperatorFamily family() const override { return OperatorFamily::kUpdate; }
  ModelSet Change(const ModelSet& psi, const ModelSet& mu) const override;
};

/// Forbus-style update: per-model minimum Hamming distance (the
/// cardinality analogue of Winslett).  Optionally takes a per-atom
/// metric; the default is the unit (Dalal) metric.
class ForbusUpdate : public TheoryChangeOperator {
 public:
  ForbusUpdate() = default;
  explicit ForbusUpdate(std::vector<int64_t> metric);

  std::string name() const override { return "forbus"; }
  OperatorFamily family() const override { return OperatorFamily::kUpdate; }
  ModelSet Change(const ModelSet& psi, const ModelSet& mu) const override;

 private:
  DistanceSemantics semantics_ = MinSemantics();
};

}  // namespace arbiter

#endif  // ARBITER_CHANGE_UPDATE_H_
