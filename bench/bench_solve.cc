// SAT-based operator benchmarks (experiment E8b): Dalal revision via
// distance binary search and max-arbitration via CEGAR, on
// vocabularies far beyond the enumeration limit, plus the
// enumeration/SAT crossover.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <utility>
#include <vector>

#include "change/backend.h"
#include "change/fitting.h"
#include "change/revision.h"
#include "logic/generator.h"
#include "model/distance_semantics.h"
#include "model/model_set.h"
#include "solve/arbitration_sat.h"
#include "solve/dalal_sat.h"
#include "util/bit.h"
#include "util/logging.h"

namespace {

using namespace arbiter;

// Random 3-CNF at 2n clauses puts single instances on wildly different
// solver trajectories — the n=36 arm used to swing several-fold run to
// run on its one fixed seed.  Each iteration therefore times a sweep
// of 8 seeded instances and reports the median, which tracks the
// instance family instead of one trajectory.  Seed 0 is the original
// n*3 seed, keeping history comparable.
constexpr int kDalalSweepSeeds = 8;

std::vector<std::pair<Formula, Formula>> DalalSweepInstances(int n) {
  std::vector<std::pair<Formula, Formula>> instances;
  instances.reserve(kDalalSweepSeeds);
  for (int s = 0; s < kDalalSweepSeeds; ++s) {
    Rng rng(static_cast<uint64_t>(n) * 3 + 101 * s);
    Formula psi = RandomKCnf(&rng, n, 2 * n, 3);
    Formula mu = RandomKCnf(&rng, n, 2 * n, 3);
    instances.emplace_back(std::move(psi), std::move(mu));
  }
  return instances;
}

void BM_SatDalalRevise(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const std::vector<std::pair<Formula, Formula>> instances =
      DalalSweepInstances(n);
  for (auto _ : state) {
    std::array<double, kDalalSweepSeeds> seconds;
    for (int s = 0; s < kDalalSweepSeeds; ++s) {
      const auto start = std::chrono::steady_clock::now();
      benchmark::DoNotOptimize(solve::SatDalalRevise(
          instances[s].first, instances[s].second, n, /*max_models=*/1));
      const auto stop = std::chrono::steady_clock::now();
      seconds[s] = std::chrono::duration<double>(stop - start).count();
    }
    std::nth_element(seconds.begin(),
                     seconds.begin() + kDalalSweepSeeds / 2, seconds.end());
    state.SetIterationTime(seconds[kDalalSweepSeeds / 2]);
  }
}
BENCHMARK(BM_SatDalalRevise)
    ->Arg(12)
    ->Arg(20)
    ->Arg(28)
    ->Arg(36)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

void BM_CegarArbitrationRandom(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(n * 5);
  Formula a = RandomKCnf(&rng, n, 2 * n, 3);
  Formula b = RandomKCnf(&rng, n, 2 * n, 3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        solve::CegarMaxArbitration(a, b, n, /*max_models=*/1));
  }
}
BENCHMARK(BM_CegarArbitrationRandom)
    ->Arg(10)
    ->Arg(12)
    ->Arg(14)
    ->Iterations(2)
    ->Unit(benchmark::kMillisecond);

void BM_CegarArbitrationStructured(benchmark::State& state) {
  // Two conjunction platforms disagreeing on half the issues: the
  // regime where CEGAR shines (witness set of size ~2).
  const int n = static_cast<int>(state.range(0));
  std::vector<Formula> lits_a, lits_b;
  for (int i = 0; i < n; ++i) {
    lits_a.push_back(Not(Formula::Var(i)));
    lits_b.push_back(i >= n / 2 ? Formula::Var(i) : Not(Formula::Var(i)));
  }
  Formula a = And(lits_a);
  Formula b = And(lits_b);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        solve::CegarMaxArbitration(a, b, n, /*max_models=*/1));
  }
}
BENCHMARK(BM_CegarArbitrationStructured)
    ->Arg(16)
    ->Arg(24)
    ->Arg(32)
    ->Arg(40)
    ->Unit(benchmark::kMillisecond);

void BM_EnumDalalCrossover(benchmark::State& state) {
  // The enumeration arm of the crossover: Mod(ψ), Mod(μ) computed by
  // truth table, then the polynomial scan.  Compare with
  // BM_SatDalalRevise at equal n to locate the crossover point.
  const int n = static_cast<int>(state.range(0));
  Rng rng(n * 3);
  Formula psi = RandomKCnf(&rng, n, 2 * n, 3);
  Formula mu = RandomKCnf(&rng, n, 2 * n, 3);
  DalalRevision op;
  for (auto _ : state) {
    ModelSet spsi = ModelSet::FromFormula(psi, n);
    ModelSet smu = ModelSet::FromFormula(mu, n);
    benchmark::DoNotOptimize(op.Change(spsi, smu));
  }
}
BENCHMARK(BM_EnumDalalCrossover)
    ->Arg(12)
    ->Arg(16)
    ->Arg(20)
    ->Unit(benchmark::kMillisecond);

// --- Distance backends past the enumeration wall -----------------------
//
// The arms below go through the DistanceBackend registry (the layer the
// BeliefStore uses), not the raw solve:: entry points, so they measure
// what `set backend counting` actually buys a script.

/// ψ as independent `width`-literal OR blocks: the #SAT column counter
/// decomposes these into components, which is what keeps Σ aggregation
/// exact at 100+ atoms.
Formula BlockPsi(int n, int width) {
  std::vector<Formula> blocks;
  for (int base = 0; base + width <= n; base += width) {
    std::vector<Formula> lits;
    for (int i = 0; i < width; ++i) {
      lits.push_back(Formula::Var(base + i));
    }
    blocks.push_back(Or(std::move(lits)));
  }
  return And(std::move(blocks));
}

/// μ pinning every atom except the last `free_vars` ones: the Σ argmin
/// search runs branch-and-bound over 2^free_vars candidates.
Formula PinnedMu(int n, int free_vars) {
  std::vector<Formula> lits;
  for (int i = 0; i < n - free_vars; ++i) {
    lits.push_back(i % 2 == 0 ? Formula::Var(i) : Not(Formula::Var(i)));
  }
  return And(std::move(lits));
}

void BM_CountingBackendSumFitting(benchmark::State& state) {
  // The acceptance arm: Σ-fitting (revesz-sum) at 100+ atoms, where
  // 2^n enumeration is out of the question.  Past 63 atoms only the
  // optimal distance is reported (models_omitted).
  const int n = static_cast<int>(state.range(0));
  const Formula psi = BlockPsi(n, 5);
  const Formula mu = PinnedMu(n, 10);
  auto backend = MakeCountingBackend();
  for (auto _ : state) {
    Result<DistanceChangeResult> r =
        backend->Change(SumSemantics(), psi, mu, n, /*max_models=*/64);
    ARBITER_CHECK(r.ok());
    benchmark::DoNotOptimize(r->optimal);
  }
}
BENCHMARK(BM_CountingBackendSumFitting)
    ->Arg(60)
    ->Arg(100)
    ->Arg(120)
    ->Unit(benchmark::kMillisecond);

void BM_CountingBackendSumCacheReuse(benchmark::State& state) {
  // Same ψ, alternating μ: every Change after the first hits the
  // backend's column-count cache, so the per-query cost collapses to
  // the linear-objective minimization.
  const int n = static_cast<int>(state.range(0));
  const Formula psi = BlockPsi(n, 5);
  const Formula mu_a = PinnedMu(n, 10);
  const Formula mu_b = And(PinnedMu(n, 10), Not(Formula::Var(n - 1)));
  auto backend = MakeCountingBackend();
  // Warm the cache outside the timed region.
  ARBITER_CHECK(
      backend->Change(SumSemantics(), psi, mu_a, n, 64).ok());
  bool flip = false;
  for (auto _ : state) {
    const Formula& mu = flip ? mu_b : mu_a;
    flip = !flip;
    Result<DistanceChangeResult> r =
        backend->Change(SumSemantics(), psi, mu, n, /*max_models=*/64);
    ARBITER_CHECK(r.ok());
    benchmark::DoNotOptimize(r->optimal);
  }
}
BENCHMARK(BM_CountingBackendSumCacheReuse)
    ->Arg(100)
    ->Unit(benchmark::kMillisecond);

void BM_CountingBackendMinMax(benchmark::State& state) {
  // min (dalal) and max (revesz-max) at the counting backend's 63-atom
  // mask ceiling, on the disagreeing-platforms shape where CEGAR's
  // witness set stays small.
  const int n = static_cast<int>(state.range(0));
  std::vector<Formula> lits_a, lits_b;
  for (int i = 0; i < n; ++i) {
    lits_a.push_back(Not(Formula::Var(i)));
    lits_b.push_back(i >= n / 2 ? Formula::Var(i) : Not(Formula::Var(i)));
  }
  const Formula psi = And(std::move(lits_a));
  const Formula mu = And(std::move(lits_b));
  auto backend = MakeCountingBackend();
  const DistanceSemantics semantics =
      state.range(1) == 0 ? MinSemantics() : MaxSemantics();
  for (auto _ : state) {
    Result<DistanceChangeResult> r =
        backend->Change(semantics, psi, mu, n, /*max_models=*/4);
    ARBITER_CHECK(r.ok());
    benchmark::DoNotOptimize(r->optimal);
  }
}
BENCHMARK(BM_CountingBackendMinMax)
    ->Args({40, 0})
    ->Args({63, 0})
    ->Args({40, 1})
    ->Args({63, 1})
    ->Unit(benchmark::kMillisecond);

void BM_SatOverallDist(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(n * 7);
  Formula psi = RandomKCnf(&rng, n, 2 * n, 3);
  uint64_t point = rng.Next() & LowMask(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solve::SatOverallDist(psi, n, point));
  }
}
BENCHMARK(BM_SatOverallDist)->Arg(12)->Arg(20)->Arg(28);

}  // namespace
