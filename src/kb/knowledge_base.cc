#include "kb/knowledge_base.h"

#include "logic/minimize.h"
#include "logic/printer.h"

namespace arbiter {

KnowledgeBase::KnowledgeBase(Formula formula, int num_terms)
    : formula_(formula), models_(ModelSet::FromFormula(formula, num_terms)) {}

KnowledgeBase KnowledgeBase::FromModels(const ModelSet& models) {
  // Minimized DNF keeps store dumps and example output readable; the
  // raw minterm form is available via ModelSet::ToFormula.
  KnowledgeBase kb(MinimizeToDnf(models.masks(), models.num_terms()),
                   models.num_terms());
  return kb;
}

KnowledgeBase KnowledgeBase::Conjoin(const KnowledgeBase& other) const {
  return FromModels(models_.Intersect(other.models()));
}

KnowledgeBase KnowledgeBase::Disjoin(const KnowledgeBase& other) const {
  return FromModels(models_.Union(other.models()));
}

KnowledgeBase KnowledgeBase::Negate() const {
  return FromModels(models_.Complement());
}

std::string KnowledgeBase::ToString(const Vocabulary& vocab) const {
  return arbiter::ToString(formula_, vocab);
}

}  // namespace arbiter
