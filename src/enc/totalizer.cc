#include "enc/totalizer.h"

namespace arbiter::enc {

using sat::Lit;
using sat::ClauseSink;

std::vector<Lit> Totalizer::Build(ClauseSink* sink,
                                  const std::vector<Lit>& lits, int lo,
                                  int hi) {
  const int n = hi - lo;
  ARBITER_DCHECK(n >= 1);
  if (n == 1) return {lits[lo]};
  const int mid = lo + n / 2;
  std::vector<Lit> left = Build(sink, lits, lo, mid);
  std::vector<Lit> right = Build(sink, lits, mid, hi);
  const int p = static_cast<int>(left.size());
  const int q = static_cast<int>(right.size());
  std::vector<Lit> out(n);
  for (int i = 0; i < n; ++i) out[i] = Lit::Pos(sink->NewVar());
  // Merge clauses.  Convention: left[-1] / right[-1] are "true",
  // left[p] / right[q] are "false".
  for (int i = 0; i <= p; ++i) {
    for (int j = 0; j <= q; ++j) {
      // (>=i left) & (>=j right) -> (>=i+j out), for i+j >= 1:
      //   !left[i-1] | !right[j-1] | out[i+j-1]
      if (i + j >= 1 && i + j <= n) {
        std::vector<Lit> clause;
        if (i >= 1) clause.push_back(~left[i - 1]);
        if (j >= 1) clause.push_back(~right[j - 1]);
        clause.push_back(out[i + j - 1]);
        sink->AddClause(std::move(clause));
      }
      // (<=i left) & (<=j right) -> (<=i+j out):
      //   left[i] | right[j] | !out[i+j]   (indices as counts)
      if (i + j < n) {
        std::vector<Lit> clause;
        if (i < p) clause.push_back(left[i]);
        if (j < q) clause.push_back(right[j]);
        clause.push_back(~out[i + j]);
        sink->AddClause(std::move(clause));
      }
    }
  }
  return out;
}

Totalizer::Totalizer(ClauseSink* sink, const std::vector<Lit>& lits) {
  ARBITER_CHECK(sink != nullptr);
  if (lits.empty()) return;
  outputs_ = Build(sink, lits, 0, static_cast<int>(lits.size()));
}

}  // namespace arbiter::enc
