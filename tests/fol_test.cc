// Tests for the finite-domain relational grounder (the paper's §5
// open problem, decidable fragment).

#include "fol/ground.h"

#include <gtest/gtest.h>

#include "change/fitting.h"
#include "logic/eval.h"
#include "logic/semantics.h"
#include "model/model_set.h"

namespace arbiter::fol {
namespace {

class GrounderTest : public ::testing::Test {
 protected:
  GrounderTest() : g_({"ann", "bob"}) {
    ARBITER_CHECK(g_.DeclareRelation("likes", 2).ok());
    ARBITER_CHECK(g_.DeclareRelation("happy", 1).ok());
    ARBITER_CHECK(g_.DeclareRelation("raining", 0).ok());
  }
  Grounder g_;
};

TEST_F(GrounderTest, DeclareRejectsDuplicatesAndBadInput) {
  EXPECT_FALSE(g_.DeclareRelation("likes", 2).ok());
  EXPECT_FALSE(g_.DeclareRelation("", 1).ok());
  EXPECT_FALSE(g_.DeclareRelation("neg", -1).ok());
}

TEST_F(GrounderTest, GroundAtomNamesAreStable) {
  Result<int> a = g_.GroundAtom("likes", {"ann", "bob"});
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(g_.vocabulary().Name(*a), "likes(ann,bob)");
  EXPECT_EQ(*g_.GroundAtom("likes", {"ann", "bob"}), *a) << "idempotent";
  Result<int> n = g_.GroundAtom("raining", {});
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(g_.vocabulary().Name(*n), "raining");
}

TEST_F(GrounderTest, GroundAtomChecksArityAndDeclaration) {
  EXPECT_FALSE(g_.GroundAtom("likes", {"ann"}).ok());
  EXPECT_FALSE(g_.GroundAtom("mystery", {"ann"}).ok());
}

TEST_F(GrounderTest, MaterializeRegistersAllAtoms) {
  ASSERT_TRUE(g_.MaterializeAtoms().ok());
  // 2^2 likes + 2 happy + 1 raining.
  EXPECT_EQ(g_.vocabulary().size(), 7);
  EXPECT_TRUE(g_.vocabulary().Contains("likes(bob,ann)"));
  EXPECT_TRUE(g_.vocabulary().Contains("happy(ann)"));
}

TEST_F(GrounderTest, ForallExpandsToConjunction) {
  ASSERT_TRUE(g_.MaterializeAtoms().ok());
  Result<Formula> f = g_.Ground("forall x. happy(x)");
  ASSERT_TRUE(f.ok()) << f.status().ToString();
  Result<Formula> expected = g_.Ground("happy(ann) & happy(bob)");
  EXPECT_TRUE(AreEquivalent(*f, *expected, g_.vocabulary().size()));
}

TEST_F(GrounderTest, ExistsExpandsToDisjunction) {
  ASSERT_TRUE(g_.MaterializeAtoms().ok());
  Result<Formula> f = g_.Ground("exists x. likes(x, ann)");
  ASSERT_TRUE(f.ok());
  Result<Formula> expected = g_.Ground("likes(ann,ann) | likes(bob,ann)");
  EXPECT_TRUE(AreEquivalent(*f, *expected, g_.vocabulary().size()));
}

TEST_F(GrounderTest, NestedQuantifiersAndShadowing) {
  ASSERT_TRUE(g_.MaterializeAtoms().ok());
  Result<Formula> f =
      g_.Ground("forall x. exists y. likes(x, y) & happy(y)");
  ASSERT_TRUE(f.ok()) << f.status().ToString();
  // Shadowing: the inner x rebinds.
  Result<Formula> shadow =
      g_.Ground("forall x. (happy(x) & exists x. likes(x, x))");
  ASSERT_TRUE(shadow.ok()) << shadow.status().ToString();
  Result<Formula> expected = g_.Ground(
      "(happy(ann) | happy(bob)) -> false | "
      "(happy(ann) & happy(bob)) & (likes(ann,ann) | likes(bob,bob))");
  // Just verify the shadowed form's semantics directly:
  Result<Formula> direct = g_.Ground(
      "(happy(ann) & (likes(ann,ann) | likes(bob,bob))) & "
      "(happy(bob) & (likes(ann,ann) | likes(bob,bob)))");
  EXPECT_TRUE(AreEquivalent(*shadow, *direct, g_.vocabulary().size()));
  (void)expected;
}

TEST_F(GrounderTest, ImplicationScopesQuantifiedConsequent) {
  ASSERT_TRUE(g_.MaterializeAtoms().ok());
  Result<Formula> f =
      g_.Ground("raining -> forall x. !happy(x)");
  ASSERT_TRUE(f.ok());
  Result<Formula> expected =
      g_.Ground("raining -> (!happy(ann) & !happy(bob))");
  EXPECT_TRUE(AreEquivalent(*f, *expected, g_.vocabulary().size()));
}

TEST_F(GrounderTest, UnknownTermIsRejected) {
  Result<Formula> f = g_.Ground("happy(carol)");
  EXPECT_FALSE(f.ok());
  EXPECT_NE(f.status().message().find("carol"), std::string::npos);
  // Unbound variable is the same error.
  EXPECT_FALSE(g_.Ground("likes(x, ann)").ok());
}

TEST_F(GrounderTest, ParseErrors) {
  EXPECT_FALSE(g_.Ground("forall . happy(ann)").ok());
  EXPECT_FALSE(g_.Ground("forall x happy(x)").ok());
  EXPECT_FALSE(g_.Ground("likes(ann,").ok());
  EXPECT_FALSE(g_.Ground("likes(ann bob)").ok());
  EXPECT_FALSE(g_.Ground("").ok());
}

TEST_F(GrounderTest, ArbitrationOverRelationalKbs) {
  // The §5 payoff: the propositional operators apply unchanged to
  // grounded relational theories.  Ann's and Bob's views of who likes
  // whom are arbitrated.
  ASSERT_TRUE(g_.MaterializeAtoms().ok());
  const int n = g_.vocabulary().size();
  Formula ann_view =
      *g_.Ground("likes(ann, bob) & !likes(bob, ann) & happy(ann)");
  Formula bob_view =
      *g_.Ground("!likes(ann, bob) & likes(bob, ann) & happy(bob)");
  ArbitrationOperator arb = MakeMaxArbitration();
  ModelSet verdict = arb.Change(ModelSet::FromFormula(ann_view, n),
                                ModelSet::FromFormula(bob_view, n));
  EXPECT_FALSE(verdict.empty());
  // Every consensus world sits between the two views.
  Formula integrity = *g_.Ground("exists x. happy(x)");
  bool some_world_keeps_integrity = false;
  for (uint64_t m : verdict) {
    if (Evaluate(integrity, m)) some_world_keeps_integrity = true;
  }
  EXPECT_TRUE(some_world_keeps_integrity);
}

TEST(GrounderDomainTest, LargerDomainCounts) {
  Grounder g({"a", "b", "c"});
  ASSERT_TRUE(g.DeclareRelation("edge", 2).ok());
  ASSERT_TRUE(g.MaterializeAtoms().ok());
  EXPECT_EQ(g.vocabulary().size(), 9);
  // Reflexive closure property as a formula: forall x. edge(x, x).
  Result<Formula> f = g.Ground("forall x. edge(x, x)");
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(CountModels(*f, 9), 1ULL << 6)
      << "three atoms fixed, six free";
}

TEST(GrounderDomainTest, CapacityGuard) {
  // 3 constants, arity 4 -> 81 atoms > 64-term vocabulary capacity.
  Grounder g({"a", "b", "c"});
  ASSERT_TRUE(g.DeclareRelation("r", 4).ok());
  EXPECT_FALSE(g.MaterializeAtoms().ok());
}

}  // namespace
}  // namespace arbiter::fol
