#include "change/explain.h"

#include <algorithm>

#include "change/registry.h"
#include "logic/interpretation.h"
#include "model/distance.h"

namespace arbiter {

namespace {

std::string ModelName(uint64_t m, int n) {
  return Interpretation(m, n).ToBitString();
}

/// Finds the ψ-model attaining the given distance statistic for I.
uint64_t WitnessFor(const ModelSet& psi, uint64_t candidate,
                    bool farthest) {
  uint64_t best = psi[0];
  for (uint64_t j : psi) {
    int d = Dist(candidate, j);
    int b = Dist(candidate, best);
    if ((farthest && d > b) || (!farthest && d < b)) best = j;
  }
  return best;
}

}  // namespace

std::string ChangeExplanation::ToString(const Vocabulary& vocab) const {
  std::string out = op_name + ": " + summary + "\n";
  for (const CandidateExplanation& c : candidates) {
    out += "  ";
    out += c.selected ? "[*] " : "[ ] ";
    out += Interpretation(c.model, vocab.size()).ToString(vocab);
    if (c.rank >= 0) {
      double r = c.rank;
      out += "  rank ";
      if (r == static_cast<int64_t>(r)) {
        out += std::to_string(static_cast<int64_t>(r));
      } else {
        out += std::to_string(r);
      }
    }
    if (!c.note.empty()) out += "  (" + c.note + ")";
    out += "\n";
  }
  return out;
}

Result<ChangeExplanation> ExplainChange(const std::string& op_name,
                                        const ModelSet& psi,
                                        const ModelSet& mu) {
  auto op = MakeOperator(op_name);
  if (!op.ok()) return op.status();
  const int n = mu.num_terms();
  ModelSet result = (*op)->Change(psi, mu);

  ChangeExplanation out;
  out.op_name = op_name;

  // Arbitration fits the whole interpretation space against the union
  // of the two voices; explain it in those terms.
  const bool is_arbitration =
      (*op)->family() == OperatorFamily::kArbitration;
  const ModelSet voices = is_arbitration ? psi.Union(mu) : psi;
  const ModelSet candidates =
      is_arbitration && op_name.rfind("arbitration", 0) == 0
          ? ModelSet::Full(n)
          : (is_arbitration ? psi.Union(mu) : mu);
  const ModelSet& psi_for_rank = voices;

  const bool psi_live = !psi_for_rank.empty();
  for (uint64_t m : candidates) {
    CandidateExplanation c;
    c.model = m;
    c.selected = result.Contains(m);
    if (psi_live) {
      if (op_name == "dalal") {
        c.rank = MinDist(psi_for_rank, m);
        c.note = "closest voice " + ModelName(WitnessFor(psi_for_rank, m, false), n);
      } else if (op_name == "revesz-max" || op_name == "arbitration-max") {
        c.rank = OverallDist(psi_for_rank, m);
        c.note =
            "farthest voice " + ModelName(WitnessFor(psi_for_rank, m, true), n);
      } else if (op_name == "revesz-sum" || op_name == "arbitration-sum") {
        c.rank = static_cast<double>(SumDist(psi_for_rank, m));
        c.note = "total disagreement across " +
                 std::to_string(psi_for_rank.size()) + " voices";
      } else if (op_name == "forbus" || op_name == "winslett" ||
                 op_name == "borgida") {
        // Per-model semantics: name the origin worlds this candidate
        // serves (for which psi-model is it among the closest?).
        int served = 0;
        uint64_t example = 0;
        for (uint64_t i : psi_for_rank) {
          int best = n + 1;
          for (uint64_t j : mu) best = std::min(best, Dist(i, j));
          if (Dist(i, m) == best) {
            ++served;
            example = i;
          }
        }
        c.rank = MinDist(psi_for_rank, m);
        if (served > 0) {
          c.note = "nearest option for " + std::to_string(served) +
                   " world(s), e.g. " + ModelName(example, n);
        }
      } else if (op_name == "satoh" || op_name == "weber") {
        c.rank = MinDist(psi_for_rank, m);
        uint64_t witness = WitnessFor(psi_for_rank, m, false);
        c.note = "difference set size " +
                 std::to_string(Dist(m, witness)) + " vs " +
                 ModelName(witness, n);
      }
    }
    out.candidates.push_back(c);
  }
  // Sort by rank (unranked keep mu order at the end), selected first
  // within equal ranks.
  std::stable_sort(out.candidates.begin(), out.candidates.end(),
                   [](const CandidateExplanation& a,
                      const CandidateExplanation& b) {
                     if ((a.rank >= 0) != (b.rank >= 0)) {
                       return a.rank >= 0;
                     }
                     if (a.rank != b.rank) return a.rank < b.rank;
                     return a.selected && !b.selected;
                   });

  out.summary = "selected " + std::to_string(result.size()) + " of " +
                std::to_string(candidates.size()) + " candidate(s)";
  if (!psi_live) {
    out.summary += " (the current theory is unsatisfiable)";
  } else if (op_name == "revesz-max" || op_name == "arbitration-max") {
    out.summary += ", minimizing the worst disagreement with " +
                   std::to_string(psi_for_rank.size()) + " voice(s)";
  } else if (op_name == "dalal") {
    out.summary += ", minimizing the distance to the nearest voice";
  } else if (op_name == "revesz-sum" || op_name == "arbitration-sum") {
    out.summary += ", minimizing the total disagreement";
  }
  return out;
}

}  // namespace arbiter
