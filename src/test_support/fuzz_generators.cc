#include "test_support/fuzz_generators.h"

#include "change/registry.h"
#include "logic/generator.h"
#include "logic/printer.h"
#include "util/logging.h"

namespace arbiter::test_support {

namespace {

const char* const kBaseNames[] = {"alpha", "beta", "gamma", "delta"};
constexpr int kNumBaseNames = 4;

/// Malformed inputs the parser must reject.
const char* const kBadFormulas[] = {"",     "a &",  "((b",   "!&",
                                    "a b c", "-> x", "oops(", ")"};
constexpr int kNumBadFormulas = 8;

/// A conjunction of fresh terms wide enough to push any small store
/// vocabulary past kMaxEnumTerms — parses fine, then trips the
/// capacity validation.
std::string CapacityBomb() {
  std::string out = "cap0";
  for (int i = 1; i <= kMaxEnumTerms; ++i) {
    out += " & cap" + std::to_string(i);
  }
  return out;
}

std::string RandomBaseName(Rng* rng) {
  return kBaseNames[rng->NextBelow(kNumBaseNames)];
}

std::string RandomOperatorName(Rng* rng) {
  static const std::vector<std::string> names = RegisteredOperatorNames();
  ARBITER_CHECK(!names.empty());
  return names[rng->NextBelow(names.size())];
}

}  // namespace

Vocabulary RandomVocabulary(Rng* rng, int min_terms, int max_terms) {
  ARBITER_CHECK(1 <= min_terms && min_terms <= max_terms &&
                max_terms <= kMaxEnumTerms);
  const int n =
      static_cast<int>(rng->NextInRange(min_terms, max_terms));
  Vocabulary vocab;
  for (int i = 0; i < n; ++i) {
    vocab.AddTerm("t" + std::to_string(i)).ValueOrDie();
  }
  return vocab;
}

std::string RandomFormulaText(Rng* rng, const Vocabulary& vocab,
                              int max_depth) {
  ARBITER_CHECK(vocab.size() >= 1);
  RandomFormulaOptions options;
  options.num_terms = vocab.size();
  options.max_depth = max_depth;
  return ToString(RandomFormula(rng, options), vocab);
}

ModelSet RandomModelSet(Rng* rng, int num_terms, double density) {
  return ModelSet::FromMasks(RandomModelSetMasks(rng, num_terms, density),
                             num_terms);
}

WeightedKnowledgeBase RandomWeightedBase(Rng* rng, int num_terms,
                                         double density) {
  WeightedKnowledgeBase out(num_terms);
  bool any = false;
  for (uint64_t i = 0; i < out.space_size(); ++i) {
    if (!rng->NextBool(density)) continue;
    double w = 0;
    switch (rng->NextBelow(4)) {
      case 0:
        w = static_cast<double>(rng->NextInRange(1, 16));
        break;
      case 1:
        w = 0.5 * static_cast<double>(rng->NextInRange(1, 9));
        break;
      case 2:
        w = static_cast<double>(rng->NextInRange(1, 1000)) * 1e6;
        break;
      default:
        w = rng->NextDouble() + 1e-3;
        break;
    }
    out.SetWeight(i, w);
    any = true;
  }
  if (!any) out.SetWeight(rng->NextBelow(out.space_size()), 1.0);
  return out;
}

std::string StoreOp::ToString() const {
  switch (kind) {
    case Kind::kDefine:
      return "define " + base + " := " + text;
    case Kind::kApply:
      return "apply " + base + " " + op_name + " with " + text;
    case Kind::kUndo:
      return "undo " + base;
    case Kind::kDrop:
      return "drop " + base;
    case Kind::kEntails:
      return "entails " + base + " ? " + text;
    case Kind::kConsistentWith:
      return "consistent " + base + " ? " + text;
    case Kind::kBadDefine:
      return "bad-define " + base + " := " + text;
    case Kind::kBadApply:
      return "bad-apply " + base + " " + op_name + " with " + text;
    case Kind::kBadQuery:
      return "bad-query " + base + " ? " + text;
  }
  return "?";
}

std::vector<StoreOp> RandomStoreScript(Rng* rng, const Vocabulary& vocab,
                                       int length, double bad_prob) {
  std::vector<StoreOp> script;
  script.reserve(length);
  for (int i = 0; i < length; ++i) {
    StoreOp op;
    if (rng->NextBool(bad_prob)) {
      switch (rng->NextBelow(3)) {
        case 0:
          op.kind = StoreOp::Kind::kBadDefine;
          op.base = RandomBaseName(rng);
          // Mix parse errors with capacity overflows.
          op.text = rng->NextBool(0.3)
                        ? CapacityBomb()
                        : kBadFormulas[rng->NextBelow(kNumBadFormulas)];
          break;
        case 1:
          op.kind = StoreOp::Kind::kBadApply;
          op.base = rng->NextBool(0.3) ? "no_such_base"
                                       : RandomBaseName(rng);
          op.op_name = rng->NextBool(0.5) ? "no-such-op"
                                          : RandomOperatorName(rng);
          op.text = rng->NextBool(0.3)
                        ? CapacityBomb()
                        : (rng->NextBool(0.5)
                               ? std::string(kBadFormulas[rng->NextBelow(
                                     kNumBadFormulas)])
                               : RandomFormulaText(rng, vocab, 3));
          break;
        default:
          op.kind = StoreOp::Kind::kBadQuery;
          op.base = rng->NextBool(0.3) ? "no_such_base"
                                       : RandomBaseName(rng);
          op.text = rng->NextBool(0.3)
                        ? CapacityBomb()
                        : kBadFormulas[rng->NextBelow(kNumBadFormulas)];
          break;
      }
      script.push_back(op);
      continue;
    }
    switch (rng->NextBelow(6)) {
      case 0:
        op.kind = StoreOp::Kind::kDefine;
        op.base = RandomBaseName(rng);
        op.text = RandomFormulaText(rng, vocab, 4);
        break;
      case 1:
      case 2:
        op.kind = StoreOp::Kind::kApply;
        op.base = RandomBaseName(rng);
        op.op_name = RandomOperatorName(rng);
        op.text = RandomFormulaText(rng, vocab, 3);
        break;
      case 3:
        op.kind = rng->NextBool(0.7) ? StoreOp::Kind::kUndo
                                     : StoreOp::Kind::kDrop;
        op.base = RandomBaseName(rng);
        break;
      case 4:
        op.kind = StoreOp::Kind::kEntails;
        op.base = RandomBaseName(rng);
        op.text = RandomFormulaText(rng, vocab, 3);
        break;
      default:
        op.kind = StoreOp::Kind::kConsistentWith;
        op.base = RandomBaseName(rng);
        op.text = RandomFormulaText(rng, vocab, 3);
        break;
    }
    script.push_back(op);
  }
  return script;
}

BeliefScriptCase RandomBeliefScript(Rng* rng, const Vocabulary& vocab,
                                    int length, double bad_prob) {
  BeliefScriptCase out;
  out.ill_formed = rng->NextBool(bad_prob);
  std::vector<std::string> lines;
  std::vector<std::string> defined;
  // Undo-depth interval [lo, hi] per defined base.  Guarded statements
  // may or may not run, so a guarded change widens hi, a guarded undo
  // lowers lo, and a guarded define can clear the history on one path
  // only.  Undo is emitted only where lo > 0, so a well-formed script
  // never hits an empty history on any path — exactly the soundness
  // claim the dataflow layer's interval domain makes.
  struct Depth {
    int lo = 0;
    int hi = 0;
  };
  std::vector<Depth> depth;
  auto define_index = [&](const std::string& base) {
    for (size_t i = 0; i < defined.size(); ++i) {
      if (defined[i] == base) return static_cast<int>(i);
    }
    defined.push_back(base);
    depth.push_back(Depth{});
    return static_cast<int>(defined.size()) - 1;
  };
  auto pick_defined = [&]() {
    return static_cast<int>(rng->NextBelow(defined.size()));
  };
  auto random_assert = [&]() {
    static const char* const kRelations[] = {
        "entails", "consistent-with", "equivalent-to"};
    return "assert " + defined[pick_defined()] + " " +
           kRelations[rng->NextBelow(3)] + " " +
           RandomFormulaText(rng, vocab, 3);
  };
  // One statement usable inside a guard, targeting an already-defined
  // base (a guarded define of a fresh base would leave it undefined on
  // the fall-through path, and a later unguarded use would hard-error
  // there).  Depth effects are applied as "may run".
  auto guarded_simple = [&]() -> std::string {
    const int b = pick_defined();
    switch (rng->NextBelow(4)) {
      case 0: {
        depth[b].hi += 1;
        return "change " + defined[b] + " by " + RandomOperatorName(rng) +
               " with " + RandomFormulaText(rng, vocab, 3);
      }
      case 1: {
        if (depth[b].lo > 0) {
          depth[b].lo -= 1;
          return "undo " + defined[b];
        }
        return random_assert();
      }
      case 2: {
        depth[b].lo = 0;
        return "define " + defined[b] + " := " +
               RandomFormulaText(rng, vocab, 3);
      }
      default:
        return random_assert();
    }
  };
  auto random_guard = [&]() {
    return "if " + defined[pick_defined()] + " entails " +
           RandomFormulaText(rng, vocab, 2) + " then ";
  };
  for (int i = 0; i < length; ++i) {
    if (defined.empty()) {
      const std::string base = RandomBaseName(rng);
      lines.push_back("define " + base + " := " +
                      RandomFormulaText(rng, vocab, 4));
      define_index(base);
      continue;
    }
    switch (rng->NextBelow(6)) {
      case 0: {
        const std::string base = RandomBaseName(rng);
        lines.push_back("define " + base + " := " +
                        RandomFormulaText(rng, vocab, 4));
        depth[define_index(base)] = Depth{};
        break;
      }
      case 1:
      case 2: {
        const int b = pick_defined();
        lines.push_back("change " + defined[b] + " by " +
                        RandomOperatorName(rng) + " with " +
                        RandomFormulaText(rng, vocab, 3));
        depth[b].lo += 1;
        depth[b].hi += 1;
        break;
      }
      case 3: {
        const int b = pick_defined();
        if (depth[b].lo > 0) {
          lines.push_back("undo " + defined[b]);
          depth[b].lo -= 1;
          depth[b].hi -= 1;
        } else {
          lines.push_back(random_assert());
        }
        break;
      }
      case 4: {
        lines.push_back(random_assert());
        break;
      }
      default: {
        // Conditionals guard any statement on an already-defined base,
        // including another conditional one level deep, so branch-local
        // changes, undos, and redefines all occur.
        const std::string guard = random_guard();
        if (rng->NextBelow(4) == 0) {
          lines.push_back(guard + random_guard() + guarded_simple());
        } else {
          lines.push_back(guard + guarded_simple());
        }
        break;
      }
    }
  }
  if (out.ill_formed) {
    std::vector<std::string> defect;
    switch (rng->NextBelow(6)) {
      case 0:
        defect.push_back("frobnicate " + RandomBaseName(rng));
        break;
      case 1:
        defect.push_back("undo base_that_never_was");
        break;
      case 2:
        defect.push_back("change " + RandomBaseName(rng) +
                         " by no-such-op with " +
                         RandomFormulaText(rng, vocab, 2));
        break;
      case 3:
        defect.push_back(
            "define " + RandomBaseName(rng) + " := " +
            kBadFormulas[rng->NextBelow(kNumBadFormulas)]);
        break;
      case 4:
        // A fresh base with an immediately-empty history.
        defect.push_back("define ill_base := " +
                         RandomFormulaText(rng, vocab, 2));
        defect.push_back("undo ill_base");
        break;
      default:
        defect.push_back("define " + RandomBaseName(rng) + " := " +
                         CapacityBomb());
        break;
    }
    // Splicing extra statements anywhere preserves the well-formed
    // part's define-before-use order.
    const size_t at = rng->NextBelow(lines.size() + 1);
    lines.insert(lines.begin() + static_cast<int>(at), defect.begin(),
                 defect.end());
  }
  for (const std::string& line : lines) {
    out.text += line;
    out.text += '\n';
  }
  return out;
}

}  // namespace arbiter::test_support
