#ifndef ARBITER_MODEL_MODEL_SET_H_
#define ARBITER_MODEL_MODEL_SET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "logic/formula.h"
#include "logic/vocabulary.h"

/// \file model_set.h
/// A set of interpretations over a fixed vocabulary — the semantic
/// object Mod(ψ) that every operator in the paper manipulates.
///
/// Stored as a sorted, duplicate-free vector of interpretation
/// bitmasks; all set algebra is linear merges.  Operations that touch
/// the whole interpretation space (Complement, Full) require
/// num_terms <= kMaxEnumTerms.

namespace arbiter {

/// An immutable-ish value type for sets of interpretations.
class ModelSet {
 public:
  /// The empty set over an n-term vocabulary.
  explicit ModelSet(int num_terms);

  /// Builds from bitmasks (any order, duplicates allowed).
  static ModelSet FromMasks(std::vector<uint64_t> masks, int num_terms);

  /// Mod(f) over n terms (brute-force enumeration; n <= kMaxEnumTerms).
  static ModelSet FromFormula(const Formula& f, int num_terms);

  /// The set of all 2^n interpretations (the paper's M).
  static ModelSet Full(int num_terms);

  /// The singleton {bits}.
  static ModelSet Singleton(uint64_t bits, int num_terms);

  int num_terms() const { return num_terms_; }
  size_t size() const { return masks_.size(); }
  bool empty() const { return masks_.empty(); }

  /// Membership test (binary search).
  bool Contains(uint64_t bits) const;

  const std::vector<uint64_t>& masks() const { return masks_; }
  uint64_t operator[](size_t i) const { return masks_[i]; }

  std::vector<uint64_t>::const_iterator begin() const {
    return masks_.begin();
  }
  std::vector<uint64_t>::const_iterator end() const { return masks_.end(); }

  ModelSet Union(const ModelSet& other) const;
  ModelSet Intersect(const ModelSet& other) const;
  ModelSet Difference(const ModelSet& other) const;
  ModelSet Complement() const;

  bool IsSubsetOf(const ModelSet& other) const;

  /// The paper's form(I1..Ik): a formula with exactly these models.
  Formula ToFormula() const;

  /// e.g. "{{}, {S, D}}" with names from vocab.
  std::string ToString(const Vocabulary& vocab) const;
  /// e.g. "{0b00, 0b11}" without names.
  std::string ToString() const;

  bool operator==(const ModelSet& o) const {
    return num_terms_ == o.num_terms_ && masks_ == o.masks_;
  }
  bool operator!=(const ModelSet& o) const { return !(*this == o); }

 private:
  int num_terms_;
  std::vector<uint64_t> masks_;  // sorted, unique
};

}  // namespace arbiter

#endif  // ARBITER_MODEL_MODEL_SET_H_
