#include "postulates/checker.h"

#include "util/bit.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/random.h"

namespace arbiter {

namespace {

std::string CodeToString(SetCode code, int num_terms) {
  if (code == kUnusedCode) return "-";
  std::string out = "{";
  bool first = true;
  for (uint64_t m = 0; m < (1ULL << num_terms); ++m) {
    if ((code >> m) & 1) {
      if (!first) out += ",";
      std::string bits;
      for (int i = 0; i < num_terms; ++i) {
        bits.push_back(((m >> i) & 1) ? '1' : '0');
      }
      out += bits;
      first = false;
    }
  }
  out += "}";
  return out;
}

}  // namespace

std::string PostulateCounterexample::Describe() const {
  std::string out = PostulateName(postulate) + " violated:";
  out += " psi1=" + CodeToString(psi1, num_terms);
  if (psi2 != kUnusedCode) out += " psi2=" + CodeToString(psi2, num_terms);
  if (mu1 != kUnusedCode) out += " mu1=" + CodeToString(mu1, num_terms);
  if (mu2 != kUnusedCode) out += " mu2=" + CodeToString(mu2, num_terms);
  if (phi != kUnusedCode) out += " phi=" + CodeToString(phi, num_terms);
  out += "  [" + PostulateStatement(postulate) + "]";
  return out;
}

PostulateChecker::PostulateChecker(
    std::shared_ptr<const TheoryChangeOperator> op, int num_terms)
    : op_(std::move(op)), num_terms_(num_terms) {
  ARBITER_CHECK(op_ != nullptr);
  ARBITER_CHECK_MSG(num_terms >= 1 && num_terms <= 6,
                    "set codes require 2^n <= 64");
  space_ = 1ULL << num_terms_;
  num_codes_ = space_ >= 32 ? 0 : (1ULL << space_);
  if (num_terms_ <= 3) {
    const uint64_t slots = num_codes_ * num_codes_;
    flat_cache_ = std::make_unique<std::atomic<SetCode>[]>(slots);
    for (uint64_t i = 0; i < slots; ++i) {
      flat_cache_[i].store(kUnusedCode, std::memory_order_relaxed);
    }
  }
}

ModelSet PostulateChecker::CodeToModelSet(SetCode code) const {
  std::vector<uint64_t> masks;
  for (uint64_t m = 0; m < space_; ++m) {
    if ((code >> m) & 1) masks.push_back(m);
  }
  return ModelSet::FromMasks(std::move(masks), num_terms_);
}

SetCode PostulateChecker::Change(SetCode psi, SetCode mu) {
  if (flat_cache_) {
    // Lock-free memo: a result code fits in space_ <= 8 bits, so it can
    // never collide with the kUnusedCode sentinel.  Racing workers may
    // both compute a miss; the operator is deterministic, so both
    // stores write the same value.
    std::atomic<SetCode>& slot = flat_cache_[psi * num_codes_ + mu];
    SetCode cached = slot.load(std::memory_order_relaxed);
    if (cached != kUnusedCode) return cached;
    num_change_calls_.fetch_add(1, std::memory_order_relaxed);
    ModelSet result = op_->Change(CodeToModelSet(psi), CodeToModelSet(mu));
    SetCode out = 0;
    for (uint64_t m : result) out |= SetCode{1} << m;
    slot.store(out, std::memory_order_relaxed);
    return out;
  }
  auto key = std::make_pair(psi, mu);
  auto it = map_cache_.find(key);
  if (it != map_cache_.end()) return it->second;
  num_change_calls_.fetch_add(1, std::memory_order_relaxed);
  ModelSet result = op_->Change(CodeToModelSet(psi), CodeToModelSet(mu));
  SetCode out = 0;
  for (uint64_t m : result) out |= SetCode{1} << m;
  map_cache_.emplace(key, out);
  return out;
}

bool PostulateChecker::Holds(Postulate p, SetCode psi1, SetCode psi2,
                             SetCode mu1, SetCode mu2, SetCode phi) {
  auto implies = [](SetCode a, SetCode b) { return (a & ~b) == 0; };
  switch (p) {
    case Postulate::kR1:
    case Postulate::kU1:
    case Postulate::kA1:
      return implies(Change(psi1, mu1), mu1);
    case Postulate::kR2: {
      SetCode both = psi1 & mu1;
      return both == 0 || Change(psi1, mu1) == both;
    }
    case Postulate::kR3:
      return mu1 == 0 || Change(psi1, mu1) != 0;
    case Postulate::kR4:
    case Postulate::kU4:
    case Postulate::kA4:
      // Semantic operators are syntax-independent by construction;
      // verify determinism of the (uncached) operator.
      return op_->Change(CodeToModelSet(psi1), CodeToModelSet(mu1)) ==
             op_->Change(CodeToModelSet(psi1), CodeToModelSet(mu1));
    case Postulate::kR5:
    case Postulate::kU5:
    case Postulate::kA5:
      return implies(Change(psi1, mu1) & phi, Change(psi1, mu1 & phi));
    case Postulate::kR6:
    case Postulate::kA6: {
      SetCode narrowed = Change(psi1, mu1) & phi;
      return narrowed == 0 || implies(Change(psi1, mu1 & phi), narrowed);
    }
    case Postulate::kU2:
      return !implies(psi1, mu1) || Change(psi1, mu1) == psi1;
    case Postulate::kU3:
    case Postulate::kA3:
      return psi1 == 0 || mu1 == 0 || Change(psi1, mu1) != 0;
    case Postulate::kU6: {
      SetCode r1 = Change(psi1, mu1);
      SetCode r2 = Change(psi1, mu2);
      return !(implies(r1, mu2) && implies(r2, mu1)) || r1 == r2;
    }
    case Postulate::kU7:
      return PopCount(psi1) != 1 ||
             implies(Change(psi1, mu1) & Change(psi1, mu2),
                     Change(psi1, mu1 | mu2));
    case Postulate::kU8:
      return Change(psi1 | psi2, mu1) ==
             (Change(psi1, mu1) | Change(psi2, mu1));
    case Postulate::kA2:
      return psi1 != 0 || Change(psi1, mu1) == 0;
    case Postulate::kA7:
      return implies(Change(psi1, mu1) & Change(psi2, mu1),
                     Change(psi1 | psi2, mu1));
    case Postulate::kA8: {
      SetCode both = Change(psi1, mu1) & Change(psi2, mu1);
      return both == 0 || implies(Change(psi1 | psi2, mu1), both);
    }
  }
  ARBITER_CHECK_MSG(false, "unreachable postulate");
  return false;
}

namespace {

/// Which quantifier shape a postulate has.
enum class Shape {
  kPsiMu,       // forall psi, mu
  kPsiMuPhi,    // forall psi, mu, phi
  kPsiMu1Mu2,   // forall psi, mu1, mu2
  kPsi1Psi2Mu,  // forall psi1, psi2, mu
};

Shape ShapeOf(Postulate p) {
  switch (p) {
    case Postulate::kR5:
    case Postulate::kR6:
    case Postulate::kU5:
    case Postulate::kA5:
    case Postulate::kA6:
      return Shape::kPsiMuPhi;
    case Postulate::kU6:
    case Postulate::kU7:
      return Shape::kPsiMu1Mu2;
    case Postulate::kU8:
    case Postulate::kA7:
    case Postulate::kA8:
      return Shape::kPsi1Psi2Mu;
    default:
      return Shape::kPsiMu;
  }
}

}  // namespace

std::optional<PostulateCounterexample> PostulateChecker::CheckExhaustive(
    Postulate p) {
  ARBITER_CHECK_MSG(num_terms_ <= 3,
                    "exhaustive checking supported for num_terms <= 3");
  const uint64_t n = num_codes_;
  const Shape shape = ShapeOf(p);
  auto make_cex = [&](SetCode a, SetCode b, SetCode c, SetCode d,
                      SetCode e) {
    return PostulateCounterexample{p, num_terms_, a, b, c, d, e};
  };
  // Scans every tuple with outer code `a`, in the serial scan order;
  // returns the first violation within the slice.
  auto scan_slice =
      [&](SetCode a) -> std::optional<PostulateCounterexample> {
    switch (shape) {
      case Shape::kPsiMu:
        for (SetCode mu = 0; mu < n; ++mu) {
          if (!Holds(p, a, kUnusedCode, mu, kUnusedCode, kUnusedCode)) {
            return make_cex(a, kUnusedCode, mu, kUnusedCode, kUnusedCode);
          }
        }
        break;
      case Shape::kPsiMuPhi:
        for (SetCode mu = 0; mu < n; ++mu) {
          for (SetCode phi = 0; phi < n; ++phi) {
            if (!Holds(p, a, kUnusedCode, mu, kUnusedCode, phi)) {
              return make_cex(a, kUnusedCode, mu, kUnusedCode, phi);
            }
          }
        }
        break;
      case Shape::kPsiMu1Mu2:
        for (SetCode mu1 = 0; mu1 < n; ++mu1) {
          for (SetCode mu2 = 0; mu2 < n; ++mu2) {
            if (!Holds(p, a, kUnusedCode, mu1, mu2, kUnusedCode)) {
              return make_cex(a, kUnusedCode, mu1, mu2, kUnusedCode);
            }
          }
        }
        break;
      case Shape::kPsi1Psi2Mu:
        for (SetCode psi2 = 0; psi2 < n; ++psi2) {
          for (SetCode mu = 0; mu < n; ++mu) {
            if (!Holds(p, a, psi2, mu, kUnusedCode, kUnusedCode)) {
              return make_cex(a, psi2, mu, kUnusedCode, kUnusedCode);
            }
          }
        }
        break;
    }
    return std::nullopt;
  };
  // Parallelize over outer-code slices.  Each worker records the first
  // violation of each slice it owns; slices beyond an already-violating
  // slice are skipped (pure speedup — the merged report is the first
  // violation in slice order either way).  Only the n = 256 universe
  // (three terms) is worth fanning out; smaller universes stay serial
  // via the single-chunk fast path.
  const uint64_t grain = n >= 256 ? 4 : n;
  std::vector<std::optional<PostulateCounterexample>> found(n);
  std::atomic<uint64_t> first_hit{n};
  ParallelFor(0, n, grain, [&](uint64_t lo, uint64_t hi) {
    for (uint64_t a = lo; a < hi; ++a) {
      if (first_hit.load(std::memory_order_relaxed) < a) return;
      std::optional<PostulateCounterexample> cex = scan_slice(a);
      if (cex.has_value()) {
        found[a] = std::move(cex);
        uint64_t cur = first_hit.load(std::memory_order_relaxed);
        while (a < cur && !first_hit.compare_exchange_weak(
                              cur, a, std::memory_order_relaxed)) {
        }
        return;
      }
    }
  });
  for (uint64_t a = 0; a < n; ++a) {
    if (found[a].has_value()) return found[a];
  }
  return std::nullopt;
}

std::optional<PostulateCounterexample> PostulateChecker::CheckSampled(
    Postulate p, int num_samples, uint64_t seed) {
  Rng rng(seed);
  const uint64_t mask = space_ >= 64 ? ~0ULL : ((1ULL << space_) - 1);
  for (int s = 0; s < num_samples; ++s) {
    SetCode a = rng.Next() & mask;
    SetCode b = rng.Next() & mask;
    SetCode c = rng.Next() & mask;
    switch (ShapeOf(p)) {
      case Shape::kPsiMu:
        if (!Holds(p, a, kUnusedCode, b, kUnusedCode, kUnusedCode)) {
          return PostulateCounterexample{p,          num_terms_, a,
                                         kUnusedCode, b,          kUnusedCode,
                                         kUnusedCode};
        }
        break;
      case Shape::kPsiMuPhi:
        if (!Holds(p, a, kUnusedCode, b, kUnusedCode, c)) {
          return PostulateCounterexample{p,           num_terms_, a,
                                         kUnusedCode, b,          kUnusedCode,
                                         c};
        }
        break;
      case Shape::kPsiMu1Mu2:
        if (!Holds(p, a, kUnusedCode, b, c, kUnusedCode)) {
          return PostulateCounterexample{p,           num_terms_, a,
                                         kUnusedCode, b,          c,
                                         kUnusedCode};
        }
        break;
      case Shape::kPsi1Psi2Mu:
        if (!Holds(p, a, b, c, kUnusedCode, kUnusedCode)) {
          return PostulateCounterexample{p, num_terms_,  a, b, c,
                                         kUnusedCode, kUnusedCode};
        }
        break;
    }
  }
  return std::nullopt;
}

std::vector<ComplianceEntry> PostulateChecker::ComplianceMatrix() {
  std::vector<ComplianceEntry> out;
  for (Postulate p : AllPostulates()) {
    std::optional<PostulateCounterexample> cex = CheckExhaustive(p);
    out.push_back(ComplianceEntry{p, !cex.has_value(), cex});
  }
  return out;
}

bool SatisfiesAll(std::shared_ptr<const TheoryChangeOperator> op,
                  const std::vector<Postulate>& postulates, int num_terms) {
  PostulateChecker checker(std::move(op), num_terms);
  for (Postulate p : postulates) {
    if (checker.CheckExhaustive(p).has_value()) return false;
  }
  return true;
}

}  // namespace arbiter
