// Golden-diagnostic corpus for arblint.  Every file under
// tests/lint_fixtures/ embeds its expected findings as comment lines:
//
//   # expect: <line> <check_id>     (.belief and .wkb files)
//   c expect: <line> <check_id>     (.cnf files)
//
// The test lints each file and requires the multiset of emitted
// (line, check_id) pairs to equal the expectations exactly — pinned
// diagnostics cannot silently move, vanish, or gain noise.  A second
// test requires every check in the registry to be pinned by at least
// one fixture, so new checks must ship with a golden example.

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint/lint.h"
#include "util/string_util.h"

namespace arbiter::lint {
namespace {

namespace fs = std::filesystem;

const char kFixtureDir[] = ARBITER_SOURCE_DIR "/tests/lint_fixtures";

using LineCheck = std::pair<int, std::string>;

std::string ReadFile(const fs::path& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in) << "cannot read " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Extracts `expect:` annotations from fixture text.
std::vector<LineCheck> ParseExpectations(const std::string& text) {
  std::vector<LineCheck> out;
  for (const std::string& raw : Split(text, '\n')) {
    const std::string line = Trim(raw);
    std::string rest;
    if (line.rfind("# expect: ", 0) == 0) {
      rest = line.substr(10);
    } else if (line.rfind("c expect: ", 0) == 0) {
      rest = line.substr(10);
    } else {
      continue;
    }
    std::istringstream in(rest);
    LineCheck expectation;
    in >> expectation.first >> expectation.second;
    EXPECT_FALSE(in.fail()) << "malformed expectation: " << line;
    out.push_back(expectation);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<fs::path> FixtureFiles() {
  std::vector<fs::path> files;
  for (const fs::directory_entry& entry :
       fs::directory_iterator(kFixtureDir)) {
    if (entry.is_regular_file()) files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(LintFixturesTest, CorpusExists) {
  EXPECT_GE(FixtureFiles().size(), 15u) << kFixtureDir;
}

TEST(LintFixturesTest, GoldenDiagnosticsMatchExactly) {
  for (const fs::path& path : FixtureFiles()) {
    SCOPED_TRACE(path.filename().string());
    const std::string text = ReadFile(path);
    const Result<InputKind> kind = InputKindForPath(path.string());
    ASSERT_TRUE(kind.ok()) << kind.status().ToString();

    std::vector<LineCheck> got;
    for (const Diagnostic& d :
         LintText(*kind, path.filename().string(), text)) {
      got.emplace_back(d.line, d.check_id);
    }
    std::sort(got.begin(), got.end());

    const std::vector<LineCheck> want = ParseExpectations(text);
    std::string rendered;
    for (const Diagnostic& d :
         LintText(*kind, path.filename().string(), text)) {
      rendered += d.ToString() + "\n";
    }
    EXPECT_EQ(got, want) << "diagnostics were:\n" << rendered;
  }
}

TEST(LintFixturesTest, EveryCheckIsPinnedByAFixture) {
  std::set<std::string> pinned;
  for (const fs::path& path : FixtureFiles()) {
    for (const LineCheck& e : ParseExpectations(ReadFile(path))) {
      pinned.insert(e.second);
    }
  }
  for (const CheckInfo& info : AllChecks()) {
    EXPECT_TRUE(pinned.count(info.id) > 0)
        << "check " << info.id
        << " has no golden fixture under tests/lint_fixtures/";
  }
}

}  // namespace
}  // namespace arbiter::lint
