#ifndef ARBITER_ENC_TOTALIZER_H_
#define ARBITER_ENC_TOTALIZER_H_

#include <vector>

#include "sat/cnf.h"
#include "util/logging.h"

/// \file totalizer.h
/// The totalizer cardinality encoding of Bailleux & Boufkhad (2003):
/// a balanced binary tree of unary merges.  Compared with the running
/// sequential counter (cardinality.h / UnaryCounter):
///
///  * same interface — output literal k is true iff >= k inputs are;
///  * O(n log n) auxiliary variables vs O(n^2) for the running sum,
///    but O(n^2) clauses in both (merge products);
///  * better propagation structure in practice (balanced depth).
///
/// The ablation benchmark bench_encodings.cc measures both on the
/// distance-bounding workloads used by src/solve/.

namespace arbiter::enc {

/// A totalizer over the given literals; thresholds usable as
/// assumptions or asserted as units, exactly like UnaryCounter.
class Totalizer {
 public:
  Totalizer(sat::ClauseSink* sink, const std::vector<sat::Lit>& lits);

  int size() const { return static_cast<int>(outputs_.size()); }

  /// Literal true iff >= k inputs are true.  Requires 1 <= k <= size().
  sat::Lit AtLeast(int k) const {
    ARBITER_CHECK(k >= 1 && k <= size());
    return outputs_[k - 1];
  }

  /// Literal true iff <= k inputs are true.  Requires 0 <= k < size().
  sat::Lit AtMost(int k) const { return ~AtLeast(k + 1); }

 private:
  /// Builds the subtree over lits[lo, hi) and returns its unary
  /// output vector (outputs[i] <=> at least i+1 true in the range).
  std::vector<sat::Lit> Build(sat::ClauseSink* sink,
                              const std::vector<sat::Lit>& lits, int lo,
                              int hi);

  std::vector<sat::Lit> outputs_;
};

}  // namespace arbiter::enc

#endif  // ARBITER_ENC_TOTALIZER_H_
