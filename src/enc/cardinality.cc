#include "enc/cardinality.h"

namespace arbiter::enc {

using sat::Lit;
using sat::ClauseSink;

void AddAtMostK(ClauseSink* sink, const std::vector<Lit>& lits, int k) {
  ARBITER_CHECK(sink != nullptr);
  const int n = static_cast<int>(lits.size());
  if (k < 0) {
    sink->AddClause({});  // unsatisfiable
    return;
  }
  if (k >= n) return;
  if (k == 0) {
    for (Lit l : lits) sink->AddUnit(~l);
    return;
  }
  // Sinz sequential counter: registers s[i][j] = "at least j+1 true
  // among lits[0..i]".
  std::vector<std::vector<Lit>> s(n - 1, std::vector<Lit>(k));
  for (int i = 0; i < n - 1; ++i) {
    for (int j = 0; j < k; ++j) s[i][j] = Lit::Pos(sink->NewVar());
  }
  // lits[0] -> s[0][0]
  sink->AddBinary(~lits[0], s[0][0]);
  // !s[0][j] for j >= 1
  for (int j = 1; j < k; ++j) sink->AddUnit(~s[0][j]);
  for (int i = 1; i < n - 1; ++i) {
    // lits[i] -> s[i][0];  s[i-1][0] -> s[i][0]
    sink->AddBinary(~lits[i], s[i][0]);
    sink->AddBinary(~s[i - 1][0], s[i][0]);
    for (int j = 1; j < k; ++j) {
      // lits[i] & s[i-1][j-1] -> s[i][j];  s[i-1][j] -> s[i][j]
      sink->AddTernary(~lits[i], ~s[i - 1][j - 1], s[i][j]);
      sink->AddBinary(~s[i - 1][j], s[i][j]);
    }
    // lits[i] & s[i-1][k-1] -> conflict
    sink->AddBinary(~lits[i], ~s[i - 1][k - 1]);
  }
  // Final element.
  sink->AddBinary(~lits[n - 1], ~s[n - 2][k - 1]);
}

void AddAtLeastK(ClauseSink* sink, const std::vector<Lit>& lits, int k) {
  ARBITER_CHECK(sink != nullptr);
  const int n = static_cast<int>(lits.size());
  if (k <= 0) return;
  if (k > n) {
    sink->AddClause({});
    return;
  }
  // At least k of lits  ==  at most n-k of their negations.
  std::vector<Lit> negs;
  negs.reserve(n);
  for (Lit l : lits) negs.push_back(~l);
  AddAtMostK(sink, negs, n - k);
}

void AddExactlyK(ClauseSink* sink, const std::vector<Lit>& lits, int k) {
  AddAtMostK(sink, lits, k);
  AddAtLeastK(sink, lits, k);
}

Lit EncodeXorEquals(ClauseSink* sink, Lit a, Lit b) {
  ARBITER_CHECK(sink != nullptr);
  Lit d = Lit::Pos(sink->NewVar());
  sink->AddTernary(~d, a, b);
  sink->AddTernary(~d, ~a, ~b);
  sink->AddTernary(d, ~a, b);
  sink->AddTernary(d, a, ~b);
  return d;
}

UnaryCounter::UnaryCounter(ClauseSink* sink, const std::vector<Lit>& lits) {
  ARBITER_CHECK(sink != nullptr);
  const int n = static_cast<int>(lits.size());
  outputs_.resize(n);
  if (n == 0) return;
  // Totalizer-style unary sum built as a chain of merges; we use a
  // simple O(n^2)-clause running-sum construction: row[i][j] = "at
  // least j+1 of the first i+1 inputs are true".
  std::vector<Lit> prev;   // row for prefix length i
  for (int i = 0; i < n; ++i) {
    std::vector<Lit> row(i + 1);
    for (int j = 0; j <= i; ++j) row[j] = Lit::Pos(sink->NewVar());
    if (i == 0) {
      // row[0] <-> lits[0]
      sink->AddBinary(~row[0], lits[0]);
      sink->AddBinary(row[0], ~lits[0]);
    } else {
      for (int j = 0; j <= i; ++j) {
        // row[j] is true iff at least j+1 true among first i+1 inputs:
        //   row[j] <- prev[j]                    (already enough)
        //   row[j] <- prev[j-1] & lits[i]        (becomes enough)
        //   row[j] -> prev[j] | (prev[j-1] & lits[i])
        if (j < i) sink->AddBinary(~prev[j], row[j]);
        if (j == 0) {
          sink->AddBinary(~lits[i], row[0]);
          // row[0] -> prev[0] | lits[i]
          sink->AddTernary(~row[0], prev[0], lits[i]);
        } else {
          if (j - 1 <= i - 1) {
            sink->AddTernary(~prev[j - 1], ~lits[i], row[j]);
          }
          // row[j] -> prev[j] | (prev[j-1] & lits[i])
          // CNF: (!row[j] | prev[j] | prev[j-1]) & (!row[j] | prev[j] | lits[i])
          if (j < i) {
            sink->AddTernary(~row[j], prev[j], prev[j - 1]);
            sink->AddTernary(~row[j], prev[j], lits[i]);
          } else {
            // j == i: prev[j] does not exist (can't have i+1 of i inputs)
            sink->AddBinary(~row[j], prev[j - 1]);
            sink->AddBinary(~row[j], lits[i]);
          }
        }
      }
    }
    prev = std::move(row);
  }
  outputs_ = std::move(prev);
}

}  // namespace arbiter::enc
