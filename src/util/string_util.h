#ifndef ARBITER_UTIL_STRING_UTIL_H_
#define ARBITER_UTIL_STRING_UTIL_H_

#include <cstdint>
#include <string>
#include <vector>

/// \file string_util.h
/// Small string helpers shared by the parser, printers, and benchmarks.

namespace arbiter {

/// Joins the given pieces with a separator.
std::string Join(const std::vector<std::string>& pieces,
                 const std::string& sep);

/// Strips ASCII whitespace from both ends.
std::string Trim(const std::string& s);

/// Splits s on the given delimiter character; keeps empty pieces.
std::vector<std::string> Split(const std::string& s, char delim);

/// True iff c can start an identifier ([A-Za-z_]).
bool IsIdentStart(char c);

/// True iff c can continue an identifier ([A-Za-z0-9_']).
bool IsIdentCont(char c);

/// Strict base-10 int64 parse (optional leading '-', digits only, no
/// surrounding whitespace).  Returns false on malformed input or
/// overflow, leaving *out untouched.
bool ParseInt64(const std::string& s, int64_t* out);

}  // namespace arbiter

#endif  // ARBITER_UTIL_STRING_UTIL_H_
