// Tests for the revision operators (Dalal, Satoh, Weber, Borgida).

#include "change/revision.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace arbiter {
namespace {

ModelSet Ms(std::vector<uint64_t> masks, int n) {
  return ModelSet::FromMasks(std::move(masks), n);
}

TEST(DalalTest, ConsistentCaseIsConjunction) {
  // (R2): if psi & mu is satisfiable, the revision is psi & mu.
  DalalRevision op;
  ModelSet psi = Ms({0b00, 0b01}, 2);
  ModelSet mu = Ms({0b01, 0b10}, 2);
  EXPECT_EQ(op.Change(psi, mu), Ms({0b01}, 2));
}

TEST(DalalTest, PicksMinimumHammingDistance) {
  DalalRevision op;
  ModelSet psi = Ms({0b111}, 3);
  ModelSet mu = Ms({0b000, 0b110, 0b100}, 3);  // distances 3, 1, 2
  EXPECT_EQ(op.Change(psi, mu), Ms({0b110}, 3));
}

TEST(DalalTest, KeepsAllTiedMinima) {
  DalalRevision op;
  ModelSet psi = Ms({0b11}, 2);
  ModelSet mu = Ms({0b01, 0b10}, 2);  // both at distance 1
  EXPECT_EQ(op.Change(psi, mu), Ms({0b01, 0b10}, 2));
}

TEST(DalalTest, EdgeCases) {
  DalalRevision op;
  ModelSet empty(2);
  ModelSet mu = Ms({0b01}, 2);
  EXPECT_TRUE(op.Change(mu, empty).empty()) << "mu unsat -> unsat";
  EXPECT_EQ(op.Change(empty, mu), mu) << "psi unsat -> Mod(mu)";
}

TEST(SatohTest, MinimalDiffSetsNotCardinality) {
  // Satoh is set-inclusion minimal: a diff {a,b} survives when no
  // smaller diff is included in it, even if a singleton diff exists
  // elsewhere that is not a subset.
  SatohRevision op;
  // psi = {00}, mu = {01, 10, 11}: diffs {0b01}, {0b10}, {0b11}.
  // {0b11} ⊃ {0b01}: dominated.  Result: {01, 10}.
  ModelSet psi = Ms({0b00}, 2);
  ModelSet mu = Ms({0b01, 0b10, 0b11}, 2);
  EXPECT_EQ(op.Change(psi, mu), Ms({0b01, 0b10}, 2));
}

TEST(SatohTest, DiffersFromDalalOnIncomparableDiffs) {
  // psi = {000}, mu = {001, 110}: diffs {p0} (size 1) and {p1,p2}
  // (size 2) are ⊆-incomparable, so Satoh keeps both while Dalal keeps
  // only the smaller.
  ModelSet psi = Ms({0b000}, 3);
  ModelSet mu = Ms({0b001, 0b110}, 3);
  EXPECT_EQ(SatohRevision().Change(psi, mu), mu);
  EXPECT_EQ(DalalRevision().Change(psi, mu), Ms({0b001}, 3));
}

TEST(SatohTest, ConsistentCaseIsConjunction) {
  SatohRevision op;
  ModelSet psi = Ms({0b00, 0b11}, 2);
  ModelSet mu = Ms({0b11, 0b10}, 2);
  EXPECT_EQ(op.Change(psi, mu), Ms({0b11}, 2));
}

TEST(WeberTest, UsesUnionOfMinimalDiffs) {
  // Weber forgets the variables touched by any minimal diff, so it is
  // coarser than Satoh.
  WeberRevision op;
  ModelSet psi = Ms({0b000}, 3);
  ModelSet mu = Ms({0b001, 0b110}, 3);
  // Minimal diffs: {p0}, {p1,p2}; union covers all three variables, so
  // every model of mu agreeing with psi outside {p0,p1,p2} survives.
  EXPECT_EQ(op.Change(psi, mu), mu);
}

TEST(WeberTest, CoarserThanSatohOnRandomInputs) {
  Rng rng(99);
  SatohRevision satoh;
  WeberRevision weber;
  for (int round = 0; round < 100; ++round) {
    std::vector<uint64_t> mp, mm;
    for (uint64_t m = 0; m < 16; ++m) {
      if (rng.NextBool(0.3)) mp.push_back(m);
      if (rng.NextBool(0.3)) mm.push_back(m);
    }
    ModelSet psi = Ms(mp, 4), mu = Ms(mm, 4);
    EXPECT_TRUE(
        satoh.Change(psi, mu).IsSubsetOf(weber.Change(psi, mu)))
        << "round " << round;
  }
}

TEST(BorgidaTest, ConsistentCaseIsConjunction) {
  BorgidaRevision op;
  ModelSet psi = Ms({0b00, 0b01}, 2);
  ModelSet mu = Ms({0b01, 0b11}, 2);
  EXPECT_EQ(op.Change(psi, mu), Ms({0b01}, 2));
}

TEST(BorgidaTest, InconsistentCaseActsPerModel) {
  BorgidaRevision op;
  // psi = {00, 11}, mu = {01, 10}: disjoint.  Each model of psi
  // independently selects its ⊆-minimal changes — all four diffs are
  // singletons, so everything survives.
  ModelSet psi = Ms({0b00, 0b11}, 2);
  ModelSet mu = Ms({0b01, 0b10}, 2);
  EXPECT_EQ(op.Change(psi, mu), mu);
}

TEST(RevisionTest, AllSatisfySuccessAndConsistency) {
  // (R1) and (R3) across random inputs for all four operators.
  Rng rng(321);
  DalalRevision dalal;
  SatohRevision satoh;
  WeberRevision weber;
  BorgidaRevision borgida;
  const TheoryChangeOperator* ops[] = {&dalal, &satoh, &weber, &borgida};
  for (int round = 0; round < 100; ++round) {
    std::vector<uint64_t> mp, mm;
    for (uint64_t m = 0; m < 8; ++m) {
      if (rng.NextBool(0.4)) mp.push_back(m);
      if (rng.NextBool(0.4)) mm.push_back(m);
    }
    if (mm.empty()) continue;
    ModelSet psi = Ms(mp, 3), mu = Ms(mm, 3);
    for (const TheoryChangeOperator* op : ops) {
      ModelSet result = op->Change(psi, mu);
      EXPECT_TRUE(result.IsSubsetOf(mu)) << op->name();   // R1
      EXPECT_FALSE(result.empty()) << op->name();          // R3
    }
  }
}

TEST(RevisionTest, FamiliesAndNames) {
  EXPECT_EQ(DalalRevision().family(), OperatorFamily::kRevision);
  EXPECT_EQ(DalalRevision().name(), "dalal");
  EXPECT_EQ(SatohRevision().name(), "satoh");
  EXPECT_EQ(WeberRevision().name(), "weber");
  EXPECT_EQ(BorgidaRevision().name(), "borgida");
}

TEST(RevisionTest, ApplyWrapsFormulas) {
  DalalRevision op;
  KnowledgeBase psi = KnowledgeBase::FromModels(Ms({0b11}, 2));
  KnowledgeBase mu = KnowledgeBase::FromModels(Ms({0b00, 0b01}, 2));
  KnowledgeBase result = op.Apply(psi, mu);
  EXPECT_EQ(result.models(), Ms({0b01}, 2));
}

}  // namespace
}  // namespace arbiter
