#ifndef ARBITER_LINT_SARIF_H_
#define ARBITER_LINT_SARIF_H_

#include <string>
#include <vector>

#include "lint/diagnostic.h"

/// \file sarif.h
/// SARIF 2.1.0 renderer for arblint diagnostics, the interchange
/// format GitHub code scanning and most SARIF viewers ingest.  One
/// call produces one `run`: the tool driver lists every registered
/// check as a `rule`, each diagnostic becomes a `result` referencing
/// its rule by index, and fix-its export as SARIF `fixes` (byte-range
/// `deletedRegion` + `insertedContent` replacements).
///
/// Severity mapping: kError → "error", kWarning → "warning",
/// kNote → "note" (SARIF `level` values).

namespace arbiter::lint {

/// Renders `diagnostics` as a complete SARIF 2.1.0 log (a single run
/// named "arblint").  Callers should NormalizeDiagnostics first so
/// output is deterministic.
std::string RenderSarif(const std::vector<Diagnostic>& diagnostics);

}  // namespace arbiter::lint

#endif  // ARBITER_LINT_SARIF_H_
