#ifndef ARBITER_KB_KNOWLEDGE_BASE_H_
#define ARBITER_KB_KNOWLEDGE_BASE_H_

#include <string>

#include "logic/formula.h"
#include "model/model_set.h"

/// \file knowledge_base.h
/// A propositional knowledge base: a formula paired with its cached
/// model set over a fixed vocabulary.  The paper identifies knowledge
/// bases up to logical equivalence (axioms (R4)/(U4)/(A4)); this class
/// keeps the syntactic formula for display and the semantic ModelSet
/// for computation.

namespace arbiter {

class KnowledgeBase {
 public:
  /// Builds from a formula; models are enumerated eagerly
  /// (num_terms <= kMaxEnumTerms).
  KnowledgeBase(Formula formula, int num_terms);

  /// Builds from a model set; the formula is form(models).
  static KnowledgeBase FromModels(const ModelSet& models);

  const Formula& formula() const { return formula_; }
  const ModelSet& models() const { return models_; }
  int num_terms() const { return models_.num_terms(); }

  bool IsSatisfiable() const { return !models_.empty(); }

  /// Semantic implication: Mod(this) ⊆ Mod(other).
  bool Implies(const KnowledgeBase& other) const {
    return models_.IsSubsetOf(other.models());
  }

  /// Logical equivalence: Mod(this) == Mod(other).
  bool EquivalentTo(const KnowledgeBase& other) const {
    return models_ == other.models();
  }

  /// this ∧ other, computed semantically.
  KnowledgeBase Conjoin(const KnowledgeBase& other) const;
  /// this ∨ other, computed semantically.
  KnowledgeBase Disjoin(const KnowledgeBase& other) const;
  /// ¬this, computed semantically.
  KnowledgeBase Negate() const;

  std::string ToString(const Vocabulary& vocab) const;

 private:
  Formula formula_;
  ModelSet models_;
};

}  // namespace arbiter

#endif  // ARBITER_KB_KNOWLEDGE_BASE_H_
