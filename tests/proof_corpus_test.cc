// Golden accept/reject corpus for the DRAT checker: each case under
// tests/proof_corpus/ is a DIMACS instance plus a proof (ASCII or
// binary, autodetected), with the expected verdict pinned here.  The
// reject cases are the standard proof mutations — dropped step,
// flipped literal, deletion reordered before a dependent addition,
// truncation — each of which the checker must refuse.

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "proof/checker.h"
#include "proof/drat.h"
#include "sat/dimacs.h"

namespace arbiter::proof {
namespace {

constexpr const char* kCorpusDir = ARBITER_SOURCE_DIR "/tests/proof_corpus";

struct GoldenCase {
  const char* name;
  bool accept;
};

// The manifest is explicit (rather than directory-scanned) so a
// missing file is a test failure, not a silently shrunk corpus.
constexpr GoldenCase kCases[] = {
    {"basic", true},
    {"with_deletion", true},
    {"rat_fresh_unit", true},
    {"chain", true},
    {"basic_binary", true},
    {"php3", true},
    {"reject_drop_step", false},
    {"reject_flipped_lit", false},
    {"reject_reordered_delete", false},
    {"reject_truncated", false},
};

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing corpus file: " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

class ProofCorpusTest : public ::testing::TestWithParam<GoldenCase> {};

TEST_P(ProofCorpusTest, VerdictMatchesManifest) {
  const GoldenCase& gc = GetParam();
  const std::string base = std::string(kCorpusDir) + "/" + gc.name;
  const std::string cnf_text = ReadFile(base + ".cnf");
  const std::string proof_bytes = ReadFile(base + ".drat");
  ASSERT_FALSE(cnf_text.empty());

  Result<sat::CnfInstance> cnf = sat::ParseDimacs(cnf_text);
  ASSERT_TRUE(cnf.ok()) << cnf.status().ToString();
  Result<std::vector<ProofStep>> proof = ParseDrat(proof_bytes);
  ASSERT_TRUE(proof.ok()) << proof.status().ToString();

  // Both checking modes must agree with the manifest: backward
  // (production) and forward (every step verified).
  for (const bool backward : {true, false}) {
    DratChecker checker;
    for (const auto& clause : cnf.ValueOrDie().clauses) {
      checker.AddFormulaClause(clause);
    }
    DratCheckOptions options;
    options.backward = backward;
    const DratCheckResult result =
        checker.Check(proof.ValueOrDie(), options);
    EXPECT_EQ(result.ok, gc.accept)
        << gc.name << " (backward=" << backward << "): " << result.error;
    if (!gc.accept) {
      EXPECT_FALSE(result.error.empty());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Corpus, ProofCorpusTest,
                         ::testing::ValuesIn(kCases),
                         [](const auto& info) {
                           return std::string(info.param.name);
                         });

}  // namespace
}  // namespace arbiter::proof
