#ifndef ARBITER_UTIL_LOGGING_H_
#define ARBITER_UTIL_LOGGING_H_

#include <cstdio>
#include <cstdlib>

/// \file logging.h
/// Minimal CHECK/DCHECK assertion macros.
///
/// Library code uses ARBITER_CHECK for unrecoverable precondition
/// violations (programming errors, not data errors).  Data errors are
/// reported through arbiter::Status instead.

#define ARBITER_CHECK(cond)                                                  \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", __FILE__,          \
                   __LINE__, #cond);                                         \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#define ARBITER_CHECK_MSG(cond, msg)                                         \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::fprintf(stderr, "CHECK failed at %s:%d: %s (%s)\n", __FILE__,     \
                   __LINE__, #cond, msg);                                    \
      std::abort();                                                          \
    }                                                                        \
  } while (0)

#ifdef NDEBUG
#define ARBITER_DCHECK(cond) \
  do {                       \
  } while (0)
#else
#define ARBITER_DCHECK(cond) ARBITER_CHECK(cond)
#endif

#endif  // ARBITER_UTIL_LOGGING_H_
