// Tests for the script control-flow graph (src/lint/cfg.h): node and
// edge shape for straight-line scripts, conditional forks and joins,
// nested conditionals, edge cases (conditional as the final statement,
// empty script), and the reverse post-order invariant.

#include "lint/cfg.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "store/script.h"

namespace arbiter::lint {
namespace {

Cfg BuildFrom(const std::string& text) {
  Result<BeliefScript> script = ParseScript(text);
  EXPECT_TRUE(script.ok()) << script.status().ToString();
  return Cfg::Build(*script);
}

/// Returns the ids of statement nodes in node-id order.
std::vector<int> StatementNodes(const Cfg& cfg) {
  std::vector<int> out;
  for (int id = 0; id < cfg.num_nodes(); ++id) {
    if (cfg.node(id).kind == CfgNode::Kind::kStatement) out.push_back(id);
  }
  return out;
}

/// Checks structural invariants every CFG must satisfy: entry/exit
/// shape, succ/pred symmetry, out-degree (2 for guards, 1 otherwise,
/// 0 for exit), and that RPO is a topological order of a DAG.
void CheckInvariants(const Cfg& cfg) {
  ASSERT_GE(cfg.num_nodes(), 2);
  EXPECT_EQ(cfg.entry(), 0);
  EXPECT_EQ(cfg.node(cfg.entry()).kind, CfgNode::Kind::kEntry);
  EXPECT_EQ(cfg.node(cfg.exit_node()).kind, CfgNode::Kind::kExit);
  EXPECT_TRUE(cfg.node(cfg.entry()).preds.empty());
  EXPECT_TRUE(cfg.node(cfg.exit_node()).succs.empty());

  for (int id = 0; id < cfg.num_nodes(); ++id) {
    const CfgNode& node = cfg.node(id);
    if (node.kind == CfgNode::Kind::kExit) {
      EXPECT_TRUE(node.succs.empty());
    } else if (node.is_guard) {
      EXPECT_EQ(node.succs.size(), 2u) << "guard node " << id;
    } else {
      EXPECT_EQ(node.succs.size(), 1u) << "node " << id;
    }
    for (int succ : node.succs) {
      const std::vector<int>& back = cfg.node(succ).preds;
      EXPECT_NE(std::find(back.begin(), back.end(), id), back.end())
          << id << " -> " << succ << " has no matching pred edge";
    }
    for (int pred : node.preds) {
      const std::vector<int>& fwd = cfg.node(pred).succs;
      EXPECT_NE(std::find(fwd.begin(), fwd.end(), id), fwd.end())
          << pred << " -> " << id << " has no matching succ edge";
    }
  }

  // RPO covers every node once and places each node after all preds.
  const std::vector<int>& rpo = cfg.ReversePostOrder();
  ASSERT_EQ(static_cast<int>(rpo.size()), cfg.num_nodes());
  std::vector<int> position(cfg.num_nodes(), -1);
  for (size_t i = 0; i < rpo.size(); ++i) {
    ASSERT_GE(rpo[i], 0);
    ASSERT_LT(rpo[i], cfg.num_nodes());
    EXPECT_EQ(position[rpo[i]], -1) << "duplicate in RPO";
    position[rpo[i]] = static_cast<int>(i);
  }
  EXPECT_EQ(rpo.front(), cfg.entry());
  for (int id = 0; id < cfg.num_nodes(); ++id) {
    for (int pred : cfg.node(id).preds) {
      EXPECT_LT(position[pred], position[id])
          << "RPO is not topological: " << pred << " -> " << id;
    }
  }
}

TEST(CfgTest, EmptyScript) {
  const Cfg cfg = BuildFrom("# just a comment\n");
  CheckInvariants(cfg);
  EXPECT_EQ(cfg.num_nodes(), 2);  // entry -> exit
  EXPECT_EQ(cfg.node(cfg.entry()).succs,
            std::vector<int>{cfg.exit_node()});
}

TEST(CfgTest, StraightLineChains) {
  const Cfg cfg = BuildFrom(
      "define b := x\n"
      "change b by dalal with y\n"
      "undo b\n");
  CheckInvariants(cfg);
  EXPECT_EQ(cfg.num_nodes(), 5);  // entry, 3 statements, exit
  const std::vector<int> stmts = StatementNodes(cfg);
  ASSERT_EQ(stmts.size(), 3u);
  int at = cfg.entry();
  for (int id : stmts) {
    ASSERT_EQ(cfg.node(at).succs.size(), 1u);
    EXPECT_EQ(cfg.node(at).succs[0], id);
    at = id;
  }
  EXPECT_EQ(cfg.node(at).succs[0], cfg.exit_node());
  EXPECT_EQ(cfg.node(stmts[1]).top_level, 1);
}

TEST(CfgTest, ConditionalForksAndJoins) {
  const Cfg cfg = BuildFrom(
      "define b := x\n"
      "if b entails x then undo b\n"
      "assert b entails x\n");
  CheckInvariants(cfg);
  // entry, define, guard, inner undo, assert, exit.
  EXPECT_EQ(cfg.num_nodes(), 6);

  int guard = -1;
  int inner = -1;
  int join = -1;
  for (int id = 0; id < cfg.num_nodes(); ++id) {
    const CfgNode& node = cfg.node(id);
    if (node.is_guard) guard = id;
    if (node.stmt != nullptr &&
        node.stmt->kind == ScriptStatement::Kind::kUndo) {
      inner = id;
    }
    if (node.stmt != nullptr &&
        node.stmt->kind == ScriptStatement::Kind::kAssertEntails) {
      join = id;
    }
  }
  ASSERT_NE(guard, -1);
  ASSERT_NE(inner, -1);
  ASSERT_NE(join, -1);
  // Successor 0 is the taken edge (through the inner statement),
  // successor 1 falls through to the join.
  EXPECT_EQ(cfg.node(guard).succs[0], inner);
  EXPECT_EQ(cfg.node(guard).succs[1], join);
  EXPECT_EQ(cfg.node(inner).succs[0], join);
  EXPECT_EQ(cfg.node(join).preds.size(), 2u);
  // The inner statement shares the guard's top-level index and line.
  EXPECT_EQ(cfg.node(inner).top_level, cfg.node(guard).top_level);
  EXPECT_EQ(cfg.node(inner).stmt->line, cfg.node(guard).stmt->line);
}

TEST(CfgTest, NestedConditionals) {
  const Cfg cfg = BuildFrom(
      "define b := x & y\n"
      "if b entails x then if b entails y then undo b\n"
      "assert b entails x\n");
  CheckInvariants(cfg);
  // entry, define, outer guard, inner guard, undo, assert, exit.
  EXPECT_EQ(cfg.num_nodes(), 7);

  std::vector<int> guards;
  int undo = -1;
  int join = -1;
  for (int id = 0; id < cfg.num_nodes(); ++id) {
    const CfgNode& node = cfg.node(id);
    if (node.is_guard) guards.push_back(id);
    if (node.stmt != nullptr &&
        node.stmt->kind == ScriptStatement::Kind::kUndo) {
      undo = id;
    }
    if (node.stmt != nullptr &&
        node.stmt->kind == ScriptStatement::Kind::kAssertEntails) {
      join = id;
    }
  }
  ASSERT_EQ(guards.size(), 2u);
  ASSERT_NE(undo, -1);
  ASSERT_NE(join, -1);
  const int outer = guards[0];
  const int nested = guards[1];
  // Outer taken edge enters the nested guard; both fall-throughs and
  // the undo all re-join at the next top-level statement.
  EXPECT_EQ(cfg.node(outer).succs[0], nested);
  EXPECT_EQ(cfg.node(outer).succs[1], join);
  EXPECT_EQ(cfg.node(nested).succs[0], undo);
  EXPECT_EQ(cfg.node(nested).succs[1], join);
  EXPECT_EQ(cfg.node(undo).succs[0], join);
  EXPECT_EQ(cfg.node(join).preds.size(), 3u);
  EXPECT_EQ(cfg.node(undo).top_level, cfg.node(outer).top_level);
}

TEST(CfgTest, ConditionalAsFinalStatement) {
  const Cfg cfg = BuildFrom(
      "define b := x\n"
      "if b entails x then undo b\n");
  CheckInvariants(cfg);
  // entry, define, guard, undo, exit: both guard edges reach exit.
  EXPECT_EQ(cfg.num_nodes(), 5);
  int guard = -1;
  int undo = -1;
  for (int id = 0; id < cfg.num_nodes(); ++id) {
    if (cfg.node(id).is_guard) guard = id;
    if (cfg.node(id).stmt != nullptr &&
        cfg.node(id).stmt->kind == ScriptStatement::Kind::kUndo) {
      undo = id;
    }
  }
  ASSERT_NE(guard, -1);
  ASSERT_NE(undo, -1);
  EXPECT_EQ(cfg.node(guard).succs[0], undo);
  EXPECT_EQ(cfg.node(guard).succs[1], cfg.exit_node());
  EXPECT_EQ(cfg.node(undo).succs[0], cfg.exit_node());
  EXPECT_EQ(cfg.node(cfg.exit_node()).preds.size(), 2u);
}

TEST(CfgTest, OwnsScriptCopy) {
  Cfg cfg = BuildFrom("define b := x\n");
  // Statement pointers must target the Cfg's own script storage.
  const CfgNode& node = cfg.node(cfg.node(cfg.entry()).succs[0]);
  ASSERT_NE(node.stmt, nullptr);
  EXPECT_EQ(node.stmt, &cfg.script().statements[0]);
  EXPECT_EQ(node.stmt->base, "b");
}

}  // namespace
}  // namespace arbiter::lint
