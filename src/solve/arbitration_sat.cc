#include "solve/arbitration_sat.h"

#include <algorithm>
#include <memory>

#include "enc/totalizer.h"
#include "enc/tseitin.h"
#include "solve/sat_bridge.h"

namespace arbiter::solve {

using sat::Lit;
using sat::Solver;
using sat::SolveStatus;

int SatOverallDist(const Formula& psi, int num_terms, uint64_t point,
                   uint64_t* witness) {
  ARBITER_CHECK(num_terms >= 1 && num_terms <= 63);
  Solver solver;
  enc::TseitinEncoder encoder(&solver);
  encoder.ReserveInputVars(num_terms);
  if (!encoder.Assert(psi)) return -1;
  if (solver.Solve() != SolveStatus::kSat) return -1;

  auto extract = [&]() {
    uint64_t y = 0;
    for (int i = 0; i < num_terms; ++i) {
      if (solver.ModelValue(i)) y |= 1ULL << i;
    }
    return y;
  };
  uint64_t best_witness = extract();

  enc::Totalizer counter(&solver,
                            MakeConstDiffLits(num_terms, point));
  // Largest k such that some y ⊨ ψ has dist(point, y) >= k.
  int lo = 0;
  int hi = num_terms;
  while (lo < hi) {
    int mid = (lo + hi + 1) / 2;
    if (solver.SolveAssuming({counter.AtLeast(mid)}) == SolveStatus::kSat) {
      best_witness = extract();
      lo = mid;
    } else {
      hi = mid - 1;
    }
  }
  if (witness != nullptr) *witness = best_witness;
  return lo;
}

namespace {

/// Shared master-problem state for the CEGAR loop.
struct Master {
  Solver solver;
  int num_terms;
  /// One unary counter per collected witness y: counts the bits where
  /// the candidate x differs from y.
  std::vector<std::unique_ptr<enc::Totalizer>> counters;

  explicit Master(const Formula& mu, int n) : num_terms(n) {
    enc::TseitinEncoder encoder(&solver);
    encoder.ReserveInputVars(n);
    encoder.Assert(mu);
  }

  void AddWitness(uint64_t y) {
    counters.push_back(std::make_unique<enc::Totalizer>(
        &solver, MakeConstDiffLits(num_terms, y)));
  }

  /// Assumption set bounding the distance to every witness by k.
  std::vector<Lit> BoundAssumptions(int k) const {
    std::vector<Lit> out;
    for (const auto& c : counters) {
      if (k < c->size()) out.push_back(c->AtMost(k));
    }
    return out;
  }

  uint64_t ExtractModel() const {
    uint64_t x = 0;
    for (int i = 0; i < num_terms; ++i) {
      if (solver.ModelValue(i)) x |= 1ULL << i;
    }
    return x;
  }

  /// Permanently blocks the candidate x (projection on the inputs).
  bool Block(uint64_t x) {
    std::vector<Lit> clause;
    clause.reserve(num_terms);
    for (int i = 0; i < num_terms; ++i) {
      clause.push_back(Lit(i, /*negated=*/((x >> i) & 1) != 0));
    }
    return solver.AddClause(std::move(clause));
  }
};

}  // namespace

CegarResult CegarMaxFitting(const Formula& psi, const Formula& mu,
                            int num_terms, int64_t max_models) {
  ARBITER_CHECK(num_terms >= 1 && num_terms <= 63);
  CegarResult result;
  if (!SatIsSatisfiable(psi, num_terms)) return result;  // (A2)

  Master master(mu, num_terms);
  if (master.solver.Solve() != SolveStatus::kSat) return result;  // μ unsat

  // Initialize the incumbent from any model of μ.
  uint64_t incumbent = master.ExtractModel();
  uint64_t y0 = 0;
  int best = SatOverallDist(psi, num_terms, incumbent, &y0);
  ARBITER_CHECK(best >= 0);
  master.AddWitness(y0);
  ++result.iterations;

  // Tighten: look for x ⊨ μ with all witness distances <= best - 1.
  while (best > 0) {
    ++result.iterations;
    SolveStatus status =
        master.solver.SolveAssuming(master.BoundAssumptions(best - 1));
    if (status != SolveStatus::kSat) break;  // best is optimal
    uint64_t candidate = master.ExtractModel();
    uint64_t y = 0;
    int value = SatOverallDist(psi, num_terms, candidate, &y);
    ARBITER_CHECK(value >= 0);
    if (value < best) {
      best = value;
      incumbent = candidate;
    }
    // dist(candidate, y) = value >= best, so the new counter excludes
    // this candidate at every future threshold: guaranteed progress.
    master.AddWitness(y);
  }

  result.optimal_value = best;
  result.optimal_model = incumbent;

  // Enumerate all optimal models: candidates passing the witness
  // bounds at k = best, verified (and either recorded or refuted) by
  // the oracle.
  std::vector<Lit> bounds = master.BoundAssumptions(best);
  while (static_cast<int64_t>(result.models.size()) <= max_models) {
    ++result.iterations;
    if (master.solver.SolveAssuming(bounds) != SolveStatus::kSat) break;
    uint64_t candidate = master.ExtractModel();
    uint64_t y = 0;
    int value = SatOverallDist(psi, num_terms, candidate, &y);
    if (value <= best) {
      result.models.push_back(candidate);
      if (!master.Block(candidate)) break;
    } else {
      master.AddWitness(y);
      bounds = master.BoundAssumptions(best);
    }
  }
  if (static_cast<int64_t>(result.models.size()) > max_models) {
    result.models.resize(max_models);
    result.truncated = true;
  }
  std::sort(result.models.begin(), result.models.end());
  return result;
}

CegarResult CegarMaxArbitration(const Formula& psi, const Formula& phi,
                                int num_terms, int64_t max_models) {
  return CegarMaxFitting(Or(psi, phi), Formula::True(), num_terms,
                         max_models);
}

}  // namespace arbiter::solve
