// A tiny interactive shell over the BeliefStore — the "database" face
// of the library.  Reads commands from stdin, one per line:
//
//   define <name> <formula>          create/replace a belief base
//   <op> <name> <formula>            change a base in place, where <op>
//                                    is any operator: dalal, satoh,
//                                    weber, borgida, winslett, forbus,
//                                    revesz-max, revesz-sum,
//                                    arbitration-max, two-sided-dalal...
//   ask <name> <formula>             entailment query
//   consistent <name> <formula>      consistency query
//   if <name> <antecedent> ? <consequent>   counterfactual (update)
//   explain <op> <name> <formula>    show the operator's decision trace
//   undo <name>                      revert the last change
//   show                             dump all bases
//   quit
//
// Try:
//   printf 'define jury g & a\narbitration-max jury !a\nshow\nquit\n' |
//       ./build/examples/belief_repl
//
// With --connect <socket> the shell becomes the reference client for a
// running belief_serve: every input line is sent as a one-statement
// BATCH frame in the `.belief` statement language (define/change/
// assert/query/...; see docs/SERVER.md), and the reply lines are
// printed.  --store <name> picks the server-side store (default
// "main"); 'quit' leaves, 'shutdown' stops the server.

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>

#include "change/explain.h"
#include "change/registry.h"
#include "kb/knowledge_base.h"
#include "logic/parser.h"
#include "store/belief_store.h"

namespace {

// Splits "name rest-of-line" into the name and the remainder.
bool SplitHead(const std::string& input, std::string* head,
               std::string* rest) {
  std::istringstream in(input);
  if (!(in >> *head)) return false;
  std::getline(in, *rest);
  size_t start = rest->find_first_not_of(' ');
  *rest = start == std::string::npos ? "" : rest->substr(start);
  return true;
}

// Reads one logical line: strips a trailing '\r' (CRLF input) so
// formulas never pick up stray carriage returns.
bool ReadLine(std::string* line) {
  if (!std::getline(std::cin, *line)) return false;
  if (!line->empty() && line->back() == '\r') line->pop_back();
  return true;
}

// ---------------------------------------------------------------------
// Client mode: speak the belief_serve frame protocol over AF_UNIX.

bool SendAll(int fd, const std::string& data) {
  const char* p = data.data();
  size_t len = data.size();
  while (len > 0) {
    ssize_t n = ::write(fd, p, len);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    p += n;
    len -= static_cast<size_t>(n);
  }
  return true;
}

class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}

  bool Read(std::string* out) {
    out->clear();
    while (true) {
      size_t nl = buffer_.find('\n');
      if (nl != std::string::npos) {
        *out = buffer_.substr(0, nl);
        buffer_.erase(0, nl + 1);
        if (!out->empty() && out->back() == '\r') out->pop_back();
        return true;
      }
      char chunk[4096];
      ssize_t n;
      do {
        n = ::read(fd_, chunk, sizeof(chunk));
      } while (n < 0 && errno == EINTR);
      if (n <= 0) return false;
      buffer_.append(chunk, static_cast<size_t>(n));
    }
  }

 private:
  int fd_;
  std::string buffer_;
};

// Parses "REPLY <id> <epoch> <n>"; returns false on anything else.
bool ParseReplyHeader(const std::string& header, long* count) {
  std::istringstream in(header);
  std::string verb, id, epoch;
  return (in >> verb >> id >> epoch >> *count) && verb == "REPLY" &&
         *count >= 0;
}

int RunClient(const std::string& socket_path, const std::string& store) {
  int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    std::fprintf(stderr, "error: socket(): %s\n", std::strerror(errno));
    return 1;
  }
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "error: socket path too long\n");
    ::close(fd);
    return 1;
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    std::fprintf(stderr, "error: connect(%s): %s\n", socket_path.c_str(),
                 std::strerror(errno));
    ::close(fd);
    return 1;
  }
  if (isatty(STDIN_FILENO)) {
    std::fprintf(stderr,
                 "connected to %s (store \"%s\") — statements per line; "
                 "'quit' to leave, 'shutdown' to stop the server\n",
                 socket_path.c_str(), store.c_str());
  }

  LineReader reader(fd);
  unsigned long next_id = 1;
  std::string line;
  int exit_code = 0;
  while (ReadLine(&line)) {
    if (line == "quit" || line == "exit") break;
    if (line == "shutdown") {
      SendAll(fd, "SHUTDOWN " + std::to_string(next_id++) + "\n");
      std::string bye;
      if (reader.Read(&bye)) std::printf("%s\n", bye.c_str());
      break;
    }
    std::string frame = "BATCH " + std::to_string(next_id++) + " " + store +
                        " 1\n" + line + "\n";
    if (!SendAll(fd, frame)) {
      std::fprintf(stderr, "error: connection lost\n");
      exit_code = 1;
      break;
    }
    std::string header;
    if (!reader.Read(&header)) {
      std::fprintf(stderr, "error: server closed the connection\n");
      exit_code = 1;
      break;
    }
    long count = 0;
    if (!ParseReplyHeader(header, &count)) {
      // ERR or protocol violation: report and stop (the session is
      // unrecoverable by design).
      std::printf("%s\n", header.c_str());
      std::fflush(stdout);
      exit_code = 1;
      break;
    }
    for (long i = 0; i < count; ++i) {
      std::string outcome;
      if (!reader.Read(&outcome)) {
        std::fprintf(stderr, "error: truncated reply\n");
        ::close(fd);
        return 1;
      }
      std::printf("%s\n", outcome.c_str());
    }
    std::fflush(stdout);
  }
  ::close(fd);
  return exit_code;
}

}  // namespace

int main(int argc, char** argv) {
  std::string connect_path;
  std::string store = "main";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--connect" && i + 1 < argc) {
      connect_path = argv[++i];
    } else if (arg == "--store" && i + 1 < argc) {
      store = argv[++i];
    } else {
      std::fprintf(stderr,
                   "usage: belief_repl [--connect <socket> [--store <n>]]\n");
      return 2;
    }
  }
  if (!connect_path.empty()) return RunClient(connect_path, store);

  arbiter::BeliefStore local_store;
  std::string line;
  // The banner is chatter, not output: keep it off pipes so scripted
  // use sees only answers.
  if (isatty(STDIN_FILENO)) {
    std::printf("arbiter belief shell — 'help' for commands\n");
  }
  while (ReadLine(&line)) {
    std::string command, rest;
    if (!SplitHead(line, &command, &rest)) continue;
    if (command == "quit" || command == "exit") break;
    if (command == "help") {
      std::printf(
          "commands: define <n> <f> | <op> <n> <f> | ask <n> <f> | "
          "consistent <n> <f> | if <n> <a> ? <c> | undo <n> | show | "
          "quit\noperators:");
      for (const std::string& name : arbiter::RegisteredOperatorNames()) {
        std::printf(" %s", name.c_str());
      }
      std::printf("\n");
      std::fflush(stdout);
      continue;
    }
    if (command == "show") {
      std::printf("%s", local_store.Dump().c_str());
      std::fflush(stdout);
      continue;
    }
    std::string name, text;
    if (!SplitHead(rest, &name, &text)) {
      std::printf("error: expected a base name\n");
      std::fflush(stdout);
      continue;
    }
    arbiter::Status status;
    if (command == "define") {
      status = local_store.Define(name, text);
    } else if (command == "undo") {
      status = local_store.Undo(name);
    } else if (command == "ask") {
      arbiter::Result<bool> r = local_store.Entails(name, text);
      if (r.ok()) {
        std::printf("%s\n", *r ? "yes" : "no");
        std::fflush(stdout);
        continue;
      }
      status = r.status();
    } else if (command == "consistent") {
      arbiter::Result<bool> r = local_store.ConsistentWith(name, text);
      if (r.ok()) {
        std::printf("%s\n", *r ? "yes" : "no");
        std::fflush(stdout);
        continue;
      }
      status = r.status();
    } else if (command == "if") {
      size_t qmark = text.find('?');
      if (qmark == std::string::npos) {
        std::printf("error: counterfactual needs '<antecedent> ? "
                    "<consequent>'\n");
        std::fflush(stdout);
        continue;
      }
      arbiter::Result<bool> r = local_store.Counterfactual(
          name, text.substr(0, qmark), text.substr(qmark + 1));
      if (r.ok()) {
        std::printf("%s\n", *r ? "yes" : "no");
        std::fflush(stdout);
        continue;
      }
      status = r.status();
    } else if (command == "explain") {
      // rest was split as "<op>" -> name, "<base> <formula>" -> text.
      std::string base, formula;
      if (!SplitHead(text, &base, &formula)) {
        std::printf("error: explain <op> <base> <formula>\n");
        std::fflush(stdout);
        continue;
      }
      arbiter::Result<arbiter::KnowledgeBase> kb = local_store.Get(base);
      if (!kb.ok()) {
        std::printf("error: %s\n", kb.status().ToString().c_str());
        std::fflush(stdout);
        continue;
      }
      // Parse the evidence over a scratch copy of the vocabulary so a
      // failed parse cannot half-grow the store's terms.
      arbiter::Vocabulary vocab = local_store.vocabulary();
      arbiter::Result<arbiter::Formula> mu = arbiter::Parse(formula, &vocab);
      if (!mu.ok()) {
        std::printf("error: %s\n", mu.status().ToString().c_str());
        std::fflush(stdout);
        continue;
      }
      arbiter::KnowledgeBase evidence(*mu, vocab.size());
      arbiter::KnowledgeBase base_kb(kb->formula(), vocab.size());
      arbiter::Result<arbiter::ChangeExplanation> explanation =
          arbiter::ExplainChange(name, base_kb.models(),
                                 evidence.models());
      if (!explanation.ok()) {
        std::printf("error: %s\n",
                    explanation.status().ToString().c_str());
        std::fflush(stdout);
        continue;
      }
      std::printf("%s", explanation->ToString(vocab).c_str());
      std::fflush(stdout);
      continue;
    } else {
      // Treat the command as an operator name.
      status = local_store.Apply(name, command, text);
    }
    if (!status.ok()) {
      std::printf("error: %s\n", status.ToString().c_str());
    }
    std::fflush(stdout);
  }
  return 0;
}
