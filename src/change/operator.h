#ifndef ARBITER_CHANGE_OPERATOR_H_
#define ARBITER_CHANGE_OPERATOR_H_

#include <string>

#include "kb/knowledge_base.h"
#include "model/model_set.h"

/// \file operator.h
/// The theory change operator interface.
///
/// All operators are defined semantically — a map
/// Mod(ψ) × Mod(μ) → Mod(ψ * μ) — which bakes in the irrelevance-of-
/// syntax axioms (R4)/(U4)/(A4).  A formula-level convenience wrapper
/// converts the result back to a formula via form(...).

namespace arbiter {

/// Which family the operator is designed to belong to.  Theorem 3.2
/// shows these classes are pairwise disjoint; the postulate checkers in
/// src/postulates/ verify the claim on these implementations.
enum class OperatorFamily {
  kRevision,      ///< AGM/KM (R1)–(R6)
  kUpdate,        ///< KM (U1)–(U8)
  kModelFitting,  ///< Revesz (A1)–(A8)
  kArbitration,   ///< ψ Δ φ = (ψ ∨ φ) ▷ ⊤
};

/// Returns a display name for a family.
const char* OperatorFamilyName(OperatorFamily family);

/// A binary theory change operator ψ * μ.
class TheoryChangeOperator {
 public:
  virtual ~TheoryChangeOperator() = default;

  /// Short unique identifier, e.g. "dalal" or "revesz-max".
  virtual std::string name() const = 0;

  /// The family this operator is intended to satisfy.
  virtual OperatorFamily family() const = 0;

  /// Semantic change: returns Mod(ψ * μ) given Mod(ψ) and Mod(μ).
  /// Both sets must share a vocabulary size.
  virtual ModelSet Change(const ModelSet& psi, const ModelSet& mu) const = 0;

  /// Formula-level convenience: applies Change to the model sets and
  /// wraps the result as a knowledge base.
  KnowledgeBase Apply(const KnowledgeBase& psi,
                      const KnowledgeBase& mu) const;
};

}  // namespace arbiter

#endif  // ARBITER_CHANGE_OPERATOR_H_
