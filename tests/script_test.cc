// Tests for belief scripts: parsing, execution, assertions,
// conditionals, and failure reporting.

#include "store/script.h"

#include <gtest/gtest.h>

namespace arbiter {
namespace {

TEST(ScriptParseTest, ParsesEveryStatementKind) {
  const char* text = R"(
# a comment
define jury := g & a
change jury by dalal with !g
undo jury
assert jury entails g
assert jury consistent-with a
assert jury equivalent-to g & a
if jury entails g then change jury by winslett with a
)";
  Result<BeliefScript> script = ParseScript(text);
  ASSERT_TRUE(script.ok()) << script.status().ToString();
  ASSERT_EQ(script->statements.size(), 7u);
  EXPECT_EQ(script->statements[0].kind, ScriptStatement::Kind::kDefine);
  EXPECT_EQ(script->statements[1].kind, ScriptStatement::Kind::kChange);
  EXPECT_EQ(script->statements[1].op_name, "dalal");
  EXPECT_EQ(script->statements[2].kind, ScriptStatement::Kind::kUndo);
  EXPECT_EQ(script->statements[3].kind,
            ScriptStatement::Kind::kAssertEntails);
  EXPECT_EQ(script->statements[6].kind,
            ScriptStatement::Kind::kConditional);
  ASSERT_EQ(script->statements[6].inner.size(), 1u);
  EXPECT_EQ(script->statements[6].inner[0].kind,
            ScriptStatement::Kind::kChange);
}

TEST(ScriptParseTest, SyntaxErrorsCarryLineNumbers) {
  Result<BeliefScript> r = ParseScript("define x := a\nbogus things\n");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("line 2"), std::string::npos);
  EXPECT_FALSE(ParseScript("define x\n").ok());
  EXPECT_FALSE(ParseScript("change x with a\n").ok());
  EXPECT_FALSE(ParseScript("assert x resembles a\n").ok());
  EXPECT_FALSE(ParseScript("if x entails a change\n").ok());
}

TEST(ScriptParseTest, NestedConditionals) {
  Result<BeliefScript> script = ParseScript(
      "define kb := a & b\n"
      "if kb entails a then if kb entails b then assert kb entails a\n");
  ASSERT_TRUE(script.ok()) << script.status().ToString();
  ASSERT_EQ(script->statements.size(), 2u);
  const ScriptStatement& outer = script->statements[1];
  ASSERT_EQ(outer.kind, ScriptStatement::Kind::kConditional);
  EXPECT_EQ(outer.formula, "a");
  ASSERT_EQ(outer.inner.size(), 1u);
  const ScriptStatement& mid = outer.inner[0];
  ASSERT_EQ(mid.kind, ScriptStatement::Kind::kConditional);
  EXPECT_EQ(mid.formula, "b");
  ASSERT_EQ(mid.inner.size(), 1u);
  EXPECT_EQ(mid.inner[0].kind, ScriptStatement::Kind::kAssertEntails);

  // Both guards hold, so the innermost assertion runs and passes.
  BeliefStore store;
  Result<ScriptReport> report = RunScript(*script, &store);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->AllPassed()) << report->ToString();
}

TEST(ScriptParseTest, LineNumbersCountCommentsAndBlanks) {
  const char* text =
      "\n"
      "# leading comment\n"
      "define kb := a\n"
      "\n"
      "   # indented comment\n"
      "assert kb entails a\n"
      "if kb entails a then undo kb\n";
  Result<BeliefScript> script = ParseScript(text);
  ASSERT_TRUE(script.ok()) << script.status().ToString();
  ASSERT_EQ(script->statements.size(), 3u);
  EXPECT_EQ(script->statements[0].line, 3);
  EXPECT_EQ(script->statements[1].line, 6);
  EXPECT_EQ(script->statements[2].line, 7);
  // The guarded statement shares its guard's source line.
  ASSERT_EQ(script->statements[2].inner.size(), 1u);
  EXPECT_EQ(script->statements[2].inner[0].line, 7);
}

TEST(ScriptParseTest, IndentedStatementsParse) {
  Result<BeliefScript> script =
      ParseScript("   define kb := a\n\t assert kb entails a\n");
  ASSERT_TRUE(script.ok()) << script.status().ToString();
  ASSERT_EQ(script->statements.size(), 2u);
  EXPECT_EQ(script->statements[0].line, 1);
  EXPECT_EQ(script->statements[1].line, 2);
}

TEST(ScriptRunTest, FullJuryScenario) {
  const char* text = R"(
define jury := g & a & (g & a -> v)
assert jury entails v
change jury by dalal with !v
assert jury entails g & a
assert jury entails !v
change jury by arbitration-max with !g & !a
assert jury consistent-with g
undo jury
assert jury entails g & a
)";
  BeliefStore store;
  Result<ScriptReport> report = RunScriptText(text, &store);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->AllPassed()) << report->ToString();
  EXPECT_EQ(report->steps.size(), 9u);
}

TEST(ScriptRunTest, FailedAssertionIsRecordedAndRunContinues) {
  const char* text = R"(
define kb := a
assert kb entails b
assert kb entails a
)";
  BeliefStore store;
  Result<ScriptReport> report = RunScriptText(text, &store);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->AllPassed());
  EXPECT_EQ(report->failures, 1);
  ASSERT_EQ(report->steps.size(), 3u);
  EXPECT_FALSE(report->steps[1].ok);
  EXPECT_TRUE(report->steps[2].ok) << "run continued past the failure";
}

TEST(ScriptRunTest, HardErrorStopsTheRun) {
  const char* text = R"(
define kb := a
change kb by no-such-operator with b
assert kb entails a
)";
  BeliefStore store;
  Result<ScriptReport> report = RunScriptText(text, &store);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->steps.size(), 2u) << "stopped at the bad operator";
  EXPECT_FALSE(report->steps[1].ok);
}

TEST(ScriptRunTest, ConditionalGuards) {
  const char* text = R"(
define kb := a & b
if kb entails a then change kb by dalal with !b
assert kb entails !b
if kb entails b then change kb by dalal with !a
assert kb entails a
)";
  BeliefStore store;
  Result<ScriptReport> report = RunScriptText(text, &store);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->AllPassed()) << report->ToString();
  // The second conditional must have been skipped (kb no longer
  // entails b after the first change).
  bool saw_skip = false;
  for (const ScriptStepResult& step : report->steps) {
    if (step.skipped) saw_skip = true;
  }
  EXPECT_TRUE(saw_skip);
}

TEST(ScriptRunTest, EquivalenceAssertion) {
  const char* text = R"(
define kb := a -> b
assert kb equivalent-to !a | b
assert kb equivalent-to a & b
)";
  BeliefStore store;
  Result<ScriptReport> report = RunScriptText(text, &store);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->failures, 1);
  EXPECT_TRUE(report->steps[1].ok);
  EXPECT_FALSE(report->steps[2].ok);
}

TEST(ScriptRunTest, ReportRendering) {
  BeliefStore store;
  Result<ScriptReport> report =
      RunScriptText("define kb := a\nassert kb entails !a\n", &store);
  ASSERT_TRUE(report.ok());
  std::string text = report->ToString();
  EXPECT_NE(text.find("ok   [line 1]"), std::string::npos) << text;
  EXPECT_NE(text.find("FAIL [line 2]"), std::string::npos) << text;
  EXPECT_NE(text.find("1 failure(s)"), std::string::npos) << text;
}

TEST(ScriptRunTest, EquivalenceScratchDoesNotPolluteStore) {
  BeliefStore store;
  Result<ScriptReport> report = RunScriptText(
      "define kb := a\nassert kb equivalent-to a\n", &store);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->AllPassed());
  EXPECT_FALSE(store.Contains("__rhs"));
}

// --- set backend / set weight ------------------------------------------

TEST(ScriptParseTest, SetStatementsParseAndRenderRoundTrip) {
  Result<BeliefScript> script = ParseScript(
      "set backend counting\n"
      "set weight gears 12\n");
  ASSERT_TRUE(script.ok()) << script.status().ToString();
  ASSERT_EQ(script->statements.size(), 2u);
  const ScriptStatement& backend = script->statements[0];
  EXPECT_EQ(backend.kind, ScriptStatement::Kind::kSetBackend);
  EXPECT_EQ(backend.formula, "counting");
  EXPECT_EQ(RenderStatement(backend), "set backend counting");
  const ScriptStatement& weight = script->statements[1];
  EXPECT_EQ(weight.kind, ScriptStatement::Kind::kSetWeight);
  EXPECT_EQ(weight.base, "gears");
  EXPECT_EQ(weight.formula, "12");
  EXPECT_EQ(RenderStatement(weight), "set weight gears 12");
}

TEST(ScriptParseTest, SetStatementSyntaxErrors) {
  EXPECT_FALSE(ParseScript("set\n").ok());
  EXPECT_FALSE(ParseScript("set backend\n").ok());
  EXPECT_FALSE(ParseScript("set backend counting extra\n").ok());
  EXPECT_FALSE(ParseScript("set weight a\n").ok());
  EXPECT_FALSE(ParseScript("set weight a twelve\n").ok());
  EXPECT_FALSE(ParseScript("set gears b 3\n").ok());
}

TEST(ScriptRunTest, SetBackendUnlocksWideVocabularies) {
  std::string wide;
  for (int i = 1; i <= 30; ++i) {
    if (i > 1) wide += " & ";
    wide += "p" + std::to_string(i);
  }
  BeliefStore store;
  Result<ScriptReport> report = RunScriptText(
      "set backend counting\n"
      "define kb := " + wide + "\n"
      "change kb by dalal with !p1\n"
      "assert kb entails !p1\n"
      "assert kb entails p2\n"
      "assert kb equivalent-to !p1 & " + wide.substr(5) + "\n",
      &store);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->AllPassed()) << report->ToString();
}

TEST(ScriptRunTest, SetBackendUnknownNameIsAHardError) {
  BeliefStore store;
  Result<ScriptReport> report = RunScriptText(
      "set backend zorp\ndefine kb := a\n", &store);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->AllPassed());
  ASSERT_EQ(report->steps.size(), 1u) << "hard error stops the run";
  EXPECT_FALSE(report->steps[0].ok);
}

TEST(ScriptRunTest, SetWeightChangesTheOutcome) {
  // Unweighted, revising a & b by !(a & b) keeps both one-flip worlds;
  // weighting a at 5 makes giving up b strictly cheaper.
  BeliefStore store;
  Result<ScriptReport> report = RunScriptText(
      "define kb := a & b\n"
      "set weight a 5\n"
      "set weight b 1\n"
      "change kb by dalal with !(a & b)\n"
      "assert kb entails a\n"
      "assert kb entails !b\n",
      &store);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->AllPassed()) << report->ToString();
}

TEST(ScriptRunTest, SetWeightRejectsNegativeAtRunTime) {
  BeliefStore store;
  Result<ScriptReport> report =
      RunScriptText("set weight a -3\n", &store);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->AllPassed());
}

}  // namespace
}  // namespace arbiter
