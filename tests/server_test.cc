// Tests for the belief server: wire-protocol framing, statement
// parsing, batch execution with epoch snapshots, the shared operator-
// result cache, and the hostile-input guarantee (a malformed client
// gets a structured error, never an abort).

#include "server/server.h"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "server/frame.h"
#include "server/session.h"

namespace arbiter::server {
namespace {

// ---------------------------------------------------------------------
// Framing

TEST(FrameTest, ReadsBatchFrame) {
  std::istringstream in("BATCH 7 main 2\ndefine kb := a\nassert kb entails a\n");
  Frame frame;
  std::string error;
  ASSERT_EQ(ReadFrame(in, &frame, &error), ReadOutcome::kFrame) << error;
  EXPECT_EQ(frame.kind, Frame::Kind::kBatch);
  EXPECT_EQ(frame.id, "7");
  EXPECT_EQ(frame.store, "main");
  ASSERT_EQ(frame.statements.size(), 2u);
  EXPECT_EQ(frame.statements[0], "define kb := a");
}

TEST(FrameTest, ReadsPingAndShutdown) {
  std::istringstream in("PING a1\n\nSHUTDOWN a2\n");
  Frame frame;
  std::string error;
  ASSERT_EQ(ReadFrame(in, &frame, &error), ReadOutcome::kFrame);
  EXPECT_EQ(frame.kind, Frame::Kind::kPing);
  EXPECT_EQ(frame.id, "a1");
  // The blank line between frames is tolerated.
  ASSERT_EQ(ReadFrame(in, &frame, &error), ReadOutcome::kFrame);
  EXPECT_EQ(frame.kind, Frame::Kind::kShutdown);
  EXPECT_EQ(frame.id, "a2");
  EXPECT_EQ(ReadFrame(in, &frame, &error), ReadOutcome::kEof);
}

TEST(FrameTest, StripsCarriageReturns) {
  std::istringstream in("BATCH 1 s 1\r\ndefine kb := a\r\n");
  Frame frame;
  std::string error;
  ASSERT_EQ(ReadFrame(in, &frame, &error), ReadOutcome::kFrame) << error;
  EXPECT_EQ(frame.statements[0], "define kb := a");
}

TEST(FrameTest, RejectsMalformedHeaders) {
  for (const char* bad : {
           "NOPE 1\n",              // unknown verb
           "BATCH 1 main\n",        // missing count
           "BATCH 1 main x\n",      // non-numeric count
           "BATCH 1 main -1\n",     // negative count
           "BATCH 1 main 2\nonly one line\n",  // EOF inside the body
           "PING\n",                // missing id
       }) {
    std::istringstream in(bad);
    Frame frame;
    std::string error;
    EXPECT_EQ(ReadFrame(in, &frame, &error), ReadOutcome::kError)
        << "accepted: " << bad;
    EXPECT_FALSE(error.empty());
  }
}

TEST(FrameTest, RejectsOversizedBatchAndLine) {
  {
    std::istringstream in("BATCH 1 main 1000000\n");
    Frame frame;
    std::string error;
    EXPECT_EQ(ReadFrame(in, &frame, &error), ReadOutcome::kError);
  }
  {
    std::string huge(kMaxLineBytes + 10, 'a');
    std::istringstream in("PING " + huge + "\n");
    Frame frame;
    std::string error;
    EXPECT_EQ(ReadFrame(in, &frame, &error), ReadOutcome::kError);
  }
}

TEST(FrameTest, FlattenLineKeepsFramingIntact) {
  EXPECT_EQ(FlattenLine("a\nb\rc"), "a b c");
  std::ostringstream out;
  WriteReply(out, "9", 3, {"ok", "val evil\ninjection"});
  EXPECT_EQ(out.str(), "REPLY 9 3 2\nok\nval evil injection\n");
}

// ---------------------------------------------------------------------
// Statement parsing

TEST(ParseServerStatementTest, ParsesQueryForms) {
  Result<ServerStatement> s =
      ParseServerStatement("query kb entails a & b");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->kind, ServerStatement::Kind::kQueryEntails);
  EXPECT_EQ(s->base, "kb");
  EXPECT_EQ(s->formula, "a & b");

  s = ParseServerStatement("query kb models");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->kind, ServerStatement::Kind::kQueryModels);

  s = ParseServerStatement("query kb dist dalal !a");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->kind, ServerStatement::Kind::kQueryDist);
  EXPECT_EQ(s->op_name, "dalal");

  s = ParseServerStatement("stats");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->kind, ServerStatement::Kind::kStats);
}

TEST(ParseServerStatementTest, FallsBackToScriptGrammar) {
  Result<ServerStatement> s =
      ParseServerStatement("change kb by dalal with !a");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->kind, ServerStatement::Kind::kScript);
  EXPECT_TRUE(StatementMutates(*s));

  s = ParseServerStatement("assert kb entails a");
  ASSERT_TRUE(s.ok());
  EXPECT_FALSE(StatementMutates(*s));

  s = ParseServerStatement("# a comment");
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->kind, ServerStatement::Kind::kNoop);

  EXPECT_FALSE(ParseServerStatement("frobnicate kb").ok());
  EXPECT_FALSE(ParseServerStatement("query kb telepathy a").ok());
}

// ---------------------------------------------------------------------
// Batch execution and epochs

std::vector<std::string> Render(const BatchResult& batch) {
  std::vector<std::string> lines;
  for (const StatementOutcome& o : batch.outcomes) {
    lines.push_back(RenderOutcome(o));
  }
  return lines;
}

TEST(BeliefServerTest, WriteBatchCommitsAndBumpsEpoch) {
  BeliefServer server;
  EXPECT_EQ(server.StoreEpoch("main"), 0u);
  BatchResult batch = server.ExecuteBatch(
      "main", {"define kb := g & a", "assert kb entails g",
               "change kb by dalal with !a", "assert kb entails !a"});
  EXPECT_TRUE(batch.committed);
  EXPECT_EQ(batch.epoch, 0u) << "epoch observed, not published";
  EXPECT_EQ(server.StoreEpoch("main"), 1u);
  EXPECT_EQ(Render(batch), (std::vector<std::string>{"ok", "ok", "ok", "ok"}));
}

TEST(BeliefServerTest, ReadOnlyBatchDoesNotBumpEpoch) {
  BeliefServer server;
  server.ExecuteBatch("main", {"define kb := g & a"});
  BatchResult batch = server.ExecuteBatch(
      "main", {"query kb entails g", "query kb consistent-with !a",
               "assert kb entails a & g"});
  EXPECT_FALSE(batch.committed);
  EXPECT_EQ(batch.epoch, 1u);
  EXPECT_EQ(server.StoreEpoch("main"), 1u);
  EXPECT_EQ(Render(batch),
            (std::vector<std::string>{"val true", "val false", "ok"}));
}

TEST(BeliefServerTest, FailedAssertionRendersFailNotError) {
  BeliefServer server;
  server.ExecuteBatch("main", {"define kb := g"});
  BatchResult batch = server.ExecuteBatch("main", {"assert kb entails !g"});
  ASSERT_EQ(batch.outcomes.size(), 1u);
  EXPECT_EQ(batch.outcomes[0].kind, StatementOutcome::Kind::kFailed);
  EXPECT_FALSE(batch.committed);
}

TEST(BeliefServerTest, MutatingNothingPublishesNothing) {
  BeliefServer server;
  server.ExecuteBatch("main", {"define kb := g"});
  // A write-classified batch whose only statement errors must not
  // publish a new epoch.
  BatchResult batch =
      server.ExecuteBatch("main", {"change kb by zorp with a"});
  EXPECT_FALSE(batch.committed);
  EXPECT_EQ(batch.outcomes[0].kind, StatementOutcome::Kind::kError);
  EXPECT_EQ(batch.outcomes[0].code, StatusCode::kNotFound);
  EXPECT_EQ(server.StoreEpoch("main"), 1u);
}

TEST(BeliefServerTest, StoresAreIndependent) {
  BeliefServer server;
  server.ExecuteBatch("left", {"define kb := a"});
  server.ExecuteBatch("right", {"define kb := !a"});
  EXPECT_EQ(Render(server.ExecuteBatch("left", {"query kb entails a"})),
            (std::vector<std::string>{"val true"}));
  EXPECT_EQ(Render(server.ExecuteBatch("right", {"query kb entails a"})),
            (std::vector<std::string>{"val false"}));
  EXPECT_EQ(server.StoreNames(),
            (std::vector<std::string>{"left", "right"}));
  EXPECT_TRUE(server.SaveStore("left").ok());
  EXPECT_EQ(server.SaveStore("gone").status().code(), StatusCode::kNotFound);
}

TEST(BeliefServerTest, QueryDistReportsOptimalDistance) {
  BeliefServer server;
  server.ExecuteBatch("main", {"define kb := a & b & c"});
  BatchResult batch =
      server.ExecuteBatch("main", {"query kb dist dalal !a & !b"});
  ASSERT_EQ(batch.outcomes.size(), 1u);
  EXPECT_EQ(RenderOutcome(batch.outcomes[0]), "val 2");
}

TEST(BeliefServerTest, SharedCacheHitsAcrossStores) {
  BeliefServer server;
  const std::vector<std::string> lines = {"define kb := g & a",
                                          "change kb by dalal with !a"};
  server.ExecuteBatch("one", lines);
  const OperatorResultCache::Stats cold = server.CacheStats();
  EXPECT_GE(cold.misses, 1u);
  // Same change, different store, differently shaped but equivalent
  // base text (duplicate conjunct, extra parens): canonical-form keys
  // make these the same entry.  (Term first-mention order must match —
  // vocabulary order is part of the key, since cached formulas carry
  // term indices.)
  server.ExecuteBatch("two", {"define kb := g & (a & g)",
                              "change kb by dalal with !a"});
  const OperatorResultCache::Stats warm = server.CacheStats();
  EXPECT_GE(warm.hits, cold.hits + 1);
  // And the answers agree.
  EXPECT_EQ(Render(server.ExecuteBatch("one", {"query kb models"})),
            Render(server.ExecuteBatch("two", {"query kb models"})));
}

TEST(BeliefServerTest, StatsStatementReportsCounters) {
  BeliefServer server;
  BatchResult batch = server.ExecuteBatch("main", {"stats"});
  ASSERT_EQ(batch.outcomes.size(), 1u);
  EXPECT_EQ(batch.outcomes[0].kind, StatementOutcome::Kind::kValue);
  EXPECT_NE(batch.outcomes[0].text.find("hits="), std::string::npos);
}

// ---------------------------------------------------------------------
// Hostile input: structured errors, never an abort

TEST(BeliefServerTest, SurvivesHostileStatements) {
  BeliefServer server;
  server.ExecuteBatch("main", {"define kb := a"});
  // Deeply nested formula: the parser's depth cap turns what was a
  // stack overflow into kInvalidArgument.
  std::string deep(5000, '(');
  deep += "a";
  deep += std::string(5000, ')');
  BatchResult batch = server.ExecuteBatch("main", {"define bomb := " + deep});
  ASSERT_EQ(batch.outcomes.size(), 1u);
  EXPECT_EQ(batch.outcomes[0].kind, StatementOutcome::Kind::kError);
  EXPECT_EQ(batch.outcomes[0].code, StatusCode::kInvalidArgument);

  // Absurd metric weight: kOutOfRange, not a later overflow.
  batch = server.ExecuteBatch(
      "main", {"set weight a 99999999999999999999999999"});
  EXPECT_EQ(batch.outcomes[0].kind, StatementOutcome::Kind::kError);
  batch = server.ExecuteBatch("main", {"set weight a 2000000000"});
  EXPECT_EQ(batch.outcomes[0].kind, StatementOutcome::Kind::kError);
  EXPECT_EQ(batch.outcomes[0].code, StatusCode::kOutOfRange);

  // Unknown backend, unknown store reads, garbage statements.
  batch = server.ExecuteBatch("main", {"set backend quantum"});
  EXPECT_EQ(batch.outcomes[0].kind, StatementOutcome::Kind::kError);
  batch = server.ExecuteBatch("main", {"query ghost entails a", "]]]]"});
  EXPECT_EQ(batch.outcomes[0].code, StatusCode::kNotFound);
  EXPECT_EQ(batch.outcomes[1].kind, StatementOutcome::Kind::kError);

  // The server is still alive and correct.
  EXPECT_EQ(Render(server.ExecuteBatch("main", {"query kb entails a"})),
            (std::vector<std::string>{"val true"}));
}

// ---------------------------------------------------------------------
// Sessions over streams

TEST(ServeStreamTest, RunsAFullSession) {
  BeliefServer server;
  std::istringstream in(
      "PING 1\n"
      "BATCH 2 main 2\n"
      "define kb := g & a\n"
      "assert kb entails g\n"
      "BATCH 3 main 1\n"
      "query kb entails a\n"
      "SHUTDOWN 4\n");
  std::ostringstream out;
  EXPECT_TRUE(ServeStream(in, out, &server)) << "shutdown requested";
  EXPECT_EQ(out.str(),
            "PONG 1\n"
            "REPLY 2 0 2\nok\nok\n"
            "REPLY 3 1 1\nval true\n"
            "BYE 4\n");
}

TEST(ServeStreamTest, MalformedFrameEndsSessionWithErr) {
  BeliefServer server;
  std::istringstream in("BATCH oops\n");
  std::ostringstream out;
  EXPECT_FALSE(ServeStream(in, out, &server));
  EXPECT_EQ(out.str().rfind("ERR ", 0), 0u) << out.str();
}

TEST(ServeStreamTest, EofEndsSessionQuietly) {
  BeliefServer server;
  std::istringstream in("PING 1\n");
  std::ostringstream out;
  EXPECT_FALSE(ServeStream(in, out, &server));
  EXPECT_EQ(out.str(), "PONG 1\n");
}

}  // namespace
}  // namespace arbiter::server
