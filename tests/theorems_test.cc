// Theorem 3.2 (pairwise disjointness), experiment E6: empirical
// verification over every registered operator, plus the Appendix B
// witness traces.

#include "postulates/theorems.h"

#include <gtest/gtest.h>

#include "change/registry.h"

namespace arbiter {
namespace {

TEST(Theorem32Test, AllThreeClaimsHoldOnTheRegistry) {
  Theorem32Report report = VerifyTheorem32(AllOperators(), 2);
  EXPECT_TRUE(report.all_claims_hold);
  EXPECT_EQ(report.r2_a8.size(), AllOperators().size());
  for (const DisjointnessRow& row : report.r2_a8) {
    EXPECT_TRUE(row.conclusion_blocked)
        << row.op_name << " satisfies both R2 and A8";
  }
  for (const DisjointnessRow& row : report.u2_u8_a8) {
    EXPECT_TRUE(row.conclusion_blocked)
        << row.op_name << " satisfies U2, U8 and A8";
  }
  for (const DisjointnessRow& row : report.r123_u8) {
    EXPECT_TRUE(row.conclusion_blocked)
        << row.op_name << " satisfies R1, R2, R3 and U8";
  }
}

TEST(Theorem32Test, DalalSatisfiesR2HenceFailsA8) {
  Theorem32Report report =
      VerifyTheorem32({MakeOperator("dalal").ValueOrDie()}, 2);
  const DisjointnessRow& row = report.r2_a8[0];
  EXPECT_EQ(row.satisfied_premises, std::vector<std::string>{"R2"});
  EXPECT_EQ(row.violated_premises, std::vector<std::string>{"A8"});
}

TEST(Theorem32Test, WinslettSatisfiesU2U8HenceFailsA8) {
  Theorem32Report report =
      VerifyTheorem32({MakeOperator("winslett").ValueOrDie()}, 2);
  const DisjointnessRow& row = report.u2_u8_a8[0];
  EXPECT_EQ(row.satisfied_premises,
            (std::vector<std::string>{"U2", "U8"}));
  EXPECT_EQ(row.violated_premises, std::vector<std::string>{"A8"});
}

TEST(Theorem32Test, DalalSatisfiesR123HenceFailsU8) {
  Theorem32Report report =
      VerifyTheorem32({MakeOperator("dalal").ValueOrDie()}, 2);
  const DisjointnessRow& row = report.r123_u8[0];
  EXPECT_EQ(row.satisfied_premises,
            (std::vector<std::string>{"R1", "R2", "R3"}));
  EXPECT_EQ(row.violated_premises, std::vector<std::string>{"U8"});
}

TEST(Theorem32Test, LexFittingSatisfiesA8HenceFailsR2) {
  Theorem32Report report =
      VerifyTheorem32({MakeOperator("lex-fitting").ValueOrDie()}, 2);
  const DisjointnessRow& row = report.r2_a8[0];
  EXPECT_EQ(row.satisfied_premises, std::vector<std::string>{"A8"});
  EXPECT_EQ(row.violated_premises, std::vector<std::string>{"R2"});
}

TEST(WitnessTraceTest, R2A8TraceAgainstDalal) {
  // Dalal satisfies R2, so the Appendix B construction must show the
  // A8 requirement failing.
  std::string trace =
      TraceR2A8Witness(*MakeOperator("dalal").ValueOrDie(), 2);
  EXPECT_NE(trace.find("claim 1"), std::string::npos);
  EXPECT_NE(trace.find("FAILS -> R2 and A8 incompatible"),
            std::string::npos)
      << trace;
}

TEST(WitnessTraceTest, U2U8A8TraceAgainstWinslett) {
  std::string trace =
      TraceU2U8A8Witness(*MakeOperator("winslett").ValueOrDie(), 2);
  EXPECT_NE(trace.find("claim 2"), std::string::npos);
  EXPECT_NE(trace.find("FAILS -> U2+U8 and A8 incompatible"),
            std::string::npos)
      << trace;
}

TEST(WitnessTraceTest, R123U8TraceAgainstDalal) {
  std::string trace =
      TraceR123U8Witness(*MakeOperator("dalal").ValueOrDie(), 2);
  EXPECT_NE(trace.find("claim 3"), std::string::npos);
  EXPECT_NE(trace.find("NO -> R1-R3 and U8 incompatible"),
            std::string::npos)
      << trace;
}

TEST(WitnessTraceTest, TracesNameTheOperator) {
  std::string trace =
      TraceR2A8Witness(*MakeOperator("satoh").ValueOrDie(), 3);
  EXPECT_NE(trace.find("satoh"), std::string::npos);
}

}  // namespace
}  // namespace arbiter
