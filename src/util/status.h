#ifndef ARBITER_UTIL_STATUS_H_
#define ARBITER_UTIL_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "util/logging.h"

/// \file status.h
/// Arrow-style Status / Result<T> error handling.
///
/// The arbiter library does not throw exceptions.  Operations that can
/// fail on bad input (parsing, capacity limits) return a Status or a
/// Result<T>; internal invariant violations abort via ARBITER_CHECK.

namespace arbiter {

/// Broad category of a failure.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< malformed input (e.g. parse error)
  kOutOfRange,        ///< index or size outside supported bounds
  kCapacityExceeded,  ///< enumeration limits exceeded (too many variables)
  kNotFound,          ///< lookup failed (e.g. unknown operator name)
  kUnsupported,       ///< operation not supported by this implementation
  kInternal,          ///< bug or resource exhaustion inside the library
};

/// Returns a short human-readable name for a status code.
const char* StatusCodeName(StatusCode code);

/// A success-or-error value.  Cheap to copy on the success path.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status CapacityExceeded(std::string msg) {
    return Status(StatusCode::kCapacityExceeded, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<code>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (the common success path).
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit construction from an error status.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT
    ARBITER_DCHECK(!std::get<Status>(repr_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(repr_);
  }

  /// Returns the contained value; aborts if this holds an error.
  const T& ValueOrDie() const& {
    ARBITER_CHECK_MSG(ok(), status().ToString().c_str());
    return std::get<T>(repr_);
  }
  T&& ValueOrDie() && {
    ARBITER_CHECK_MSG(ok(), status().ToString().c_str());
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }

 private:
  std::variant<T, Status> repr_;
};

/// Propagates a non-OK status out of the enclosing function.
#define ARBITER_RETURN_NOT_OK(expr)             \
  do {                                          \
    ::arbiter::Status _st = (expr);             \
    if (!_st.ok()) return _st;                  \
  } while (0)

}  // namespace arbiter

#endif  // ARBITER_UTIL_STATUS_H_
