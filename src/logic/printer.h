#ifndef ARBITER_LOGIC_PRINTER_H_
#define ARBITER_LOGIC_PRINTER_H_

#include <string>

#include "logic/formula.h"
#include "logic/vocabulary.h"

/// \file printer.h
/// Renders formulas back to the parser's concrete syntax with a minimal
/// number of parentheses.  Round trip: Parse(ToString(f)) is logically
/// (and structurally, modulo n-ary flattening) equal to f.

namespace arbiter {

/// Pretty-prints `f` using names from `vocab`.
/// Requires f.MaxVar() < vocab.size().
std::string ToString(const Formula& f, const Vocabulary& vocab);

/// Pretty-prints `f` with synthetic names p0, p1, ...
std::string ToString(const Formula& f);

}  // namespace arbiter

#endif  // ARBITER_LOGIC_PRINTER_H_
