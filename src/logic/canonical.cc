#include "logic/canonical.h"

#include <algorithm>
#include <utility>
#include <vector>

namespace arbiter {

namespace {

/// One canonicalized subformula: its rendered text plus enough shape
/// information to flatten nested ∧/∨ and fold constants.
struct CanonPart {
  enum class Shape { kTrue, kFalse, kLeaf, kAnd, kOr };
  Shape shape = Shape::kLeaf;
  std::string text;
  /// Sorted, deduplicated child renderings (kAnd/kOr only).
  std::vector<std::string> parts;
};

class Canonicalizer {
 public:
  Canonicalizer(const Vocabulary& vocab, int64_t budget)
      : vocab_(vocab), budget_(budget) {}

  Result<CanonPart> Run(const Formula& f, bool positive) {
    if (--budget_ < 0) {
      return Status::CapacityExceeded(
          "canonicalization budget exhausted (iff/xor chains expand "
          "exponentially under NNF)");
    }
    switch (f.kind()) {
      case FormulaKind::kTrue:
        return Constant(positive);
      case FormulaKind::kFalse:
        return Constant(!positive);
      case FormulaKind::kVar: {
        CanonPart out;
        out.shape = CanonPart::Shape::kLeaf;
        out.text = positive ? vocab_.Name(f.var())
                            : "!" + vocab_.Name(f.var());
        return out;
      }
      case FormulaKind::kNot:
        return Run(f.child(0), !positive);
      case FormulaKind::kAnd:
        return Nary(f.children(), positive, /*conjunctive=*/positive);
      case FormulaKind::kOr:
        return Nary(f.children(), positive, /*conjunctive=*/!positive);
      case FormulaKind::kImplies: {
        // a -> b  ==  !a | b.
        Result<CanonPart> lhs = Run(f.child(0), !positive);
        if (!lhs.ok()) return lhs;
        Result<CanonPart> rhs = Run(f.child(1), positive);
        if (!rhs.ok()) return rhs;
        return Combine({*lhs, *rhs}, /*conjunctive=*/!positive);
      }
      case FormulaKind::kIff:
        return Biconditional(f, positive);
      case FormulaKind::kXor:
        return Biconditional(f, !positive);
    }
    return Status::Internal("unreachable formula kind");
  }

 private:
  static CanonPart Constant(bool value) {
    CanonPart out;
    out.shape = value ? CanonPart::Shape::kTrue : CanonPart::Shape::kFalse;
    out.text = value ? "T" : "F";
    return out;
  }

  /// (a <-> b) under `positive` polarity:
  ///   pos: (a & b) | (!a & !b);   neg: (a & !b) | (!a & b).
  Result<CanonPart> Biconditional(const Formula& f, bool positive) {
    const Formula& a = f.child(0);
    const Formula& b = f.child(1);
    Result<CanonPart> at = Run(a, true);
    if (!at.ok()) return at;
    Result<CanonPart> af = Run(a, false);
    if (!af.ok()) return af;
    Result<CanonPart> bt = Run(b, true);
    if (!bt.ok()) return bt;
    Result<CanonPart> bf = Run(b, false);
    if (!bf.ok()) return bf;
    Result<CanonPart> left =
        Combine({*at, positive ? *bt : *bf}, /*conjunctive=*/true);
    if (!left.ok()) return left;
    Result<CanonPart> right =
        Combine({*af, positive ? *bf : *bt}, /*conjunctive=*/true);
    if (!right.ok()) return right;
    return Combine({*left, *right}, /*conjunctive=*/false);
  }

  Result<CanonPart> Nary(const std::vector<Formula>& children, bool positive,
                         bool conjunctive) {
    std::vector<CanonPart> parts;
    parts.reserve(children.size());
    for (const Formula& child : children) {
      Result<CanonPart> part = Run(child, positive);
      if (!part.ok()) return part;
      parts.push_back(*std::move(part));
    }
    return Combine(parts, conjunctive);
  }

  /// Builds the flattened, sorted, deduplicated ∧/∨ over `parts`,
  /// folding ⊤/⊥ and collapsing singletons.
  Result<CanonPart> Combine(const std::vector<CanonPart>& parts,
                            bool conjunctive) {
    const CanonPart::Shape same = conjunctive ? CanonPart::Shape::kAnd
                                              : CanonPart::Shape::kOr;
    std::vector<std::string> flat;
    for (const CanonPart& part : parts) {
      if (--budget_ < 0) {
        return Status::CapacityExceeded(
            "canonicalization budget exhausted while flattening");
      }
      if (conjunctive ? part.shape == CanonPart::Shape::kTrue
                      : part.shape == CanonPart::Shape::kFalse) {
        continue;  // identity element
      }
      if (conjunctive ? part.shape == CanonPart::Shape::kFalse
                      : part.shape == CanonPart::Shape::kTrue) {
        return Constant(!conjunctive);  // absorbing element
      }
      if (part.shape == same) {
        flat.insert(flat.end(), part.parts.begin(), part.parts.end());
      } else {
        flat.push_back(part.text);
      }
    }
    std::sort(flat.begin(), flat.end());
    flat.erase(std::unique(flat.begin(), flat.end()), flat.end());
    if (flat.empty()) return Constant(conjunctive);
    CanonPart out;
    if (flat.size() == 1) {
      // A singleton keeps its child's shape only if it is a leaf; a
      // nested n-ary child was already flattened above.
      out.shape = CanonPart::Shape::kLeaf;
      out.text = flat[0];
      return out;
    }
    out.shape = same;
    std::string text = conjunctive ? "(&" : "(|";
    for (const std::string& piece : flat) {
      text += ' ';
      text += piece;
    }
    text += ')';
    out.text = std::move(text);
    out.parts = std::move(flat);
    return out;
  }

  const Vocabulary& vocab_;
  int64_t budget_;
};

}  // namespace

Result<std::string> CanonicalFormText(const Formula& f,
                                      const Vocabulary& vocab,
                                      int64_t max_nodes) {
  if (f.MaxVar() >= vocab.size()) {
    return Status::InvalidArgument(
        "formula mentions term index " + std::to_string(f.MaxVar()) +
        " beyond the vocabulary (" + std::to_string(vocab.size()) +
        " terms)");
  }
  Canonicalizer canon(vocab, max_nodes);
  Result<CanonPart> part = canon.Run(f, /*positive=*/true);
  if (!part.ok()) return part.status();
  return part->text;
}

}  // namespace arbiter
