#include "sat/dpll.h"

namespace arbiter::sat {

void DpllSolver::AddClause(std::vector<Lit> lits) {
  if (lits.empty()) trivially_unsat_ = true;
  clauses_.push_back(std::move(lits));
}

SolveStatus DpllSolver::Solve() {
  if (trivially_unsat_) return SolveStatus::kUnsat;
  std::vector<LBool> assign(num_vars_, LBool::kUndef);
  if (!Dpll(&assign)) return SolveStatus::kUnsat;
  model_.assign(num_vars_, false);
  for (Var v = 0; v < num_vars_; ++v) {
    model_[v] = (assign[v] == LBool::kTrue);
  }
  return SolveStatus::kSat;
}

bool DpllSolver::PropagateUnits(std::vector<LBool>* assign) const {
  bool changed = true;
  while (changed) {
    changed = false;
    for (const std::vector<Lit>& clause : clauses_) {
      int num_undef = 0;
      Lit last_undef;
      bool satisfied = false;
      for (Lit l : clause) {
        LBool val = LitValue((*assign)[l.var()], l.negated());
        if (val == LBool::kTrue) {
          satisfied = true;
          break;
        }
        if (val == LBool::kUndef) {
          ++num_undef;
          last_undef = l;
        }
      }
      if (satisfied) continue;
      if (num_undef == 0) return false;  // conflict
      if (num_undef == 1) {
        (*assign)[last_undef.var()] =
            BoolToLBool(!last_undef.negated());
        changed = true;
      }
    }
  }
  return true;
}

Var DpllSolver::PickVar(const std::vector<LBool>& assign) const {
  for (Var v = 0; v < num_vars_; ++v) {
    if (assign[v] == LBool::kUndef) return v;
  }
  return kUndefVar;
}

bool DpllSolver::Dpll(std::vector<LBool>* assign) {
  if (!PropagateUnits(assign)) return false;
  Var v = PickVar(*assign);
  if (v == kUndefVar) return true;  // every clause checked by propagation
  ++decisions_;
  for (LBool value : {LBool::kTrue, LBool::kFalse}) {
    std::vector<LBool> saved = *assign;
    (*assign)[v] = value;
    if (Dpll(assign)) return true;
    *assign = saved;
  }
  return false;
}

}  // namespace arbiter::sat
