#ifndef ARBITER_LINT_EMITTER_H_
#define ARBITER_LINT_EMITTER_H_

#include <string>
#include <utility>
#include <vector>

#include "lint/diagnostic.h"
#include "lint/lint.h"
#include "util/logging.h"

/// \file emitter.h
/// Shared emission plumbing for the single-statement linter (lint.cc)
/// and the dataflow pass (flow_checks.cc): registry lookup, per-check
/// suppression, location fill-in, fix-it attachment.  Internal to
/// src/lint; not part of the public lint API.

namespace arbiter::lint {

class Emitter {
 public:
  Emitter(std::string file, const LintOptions& options,
          std::vector<Diagnostic>* out)
      : file_(std::move(file)), options_(options), out_(out) {}

  void Emit(const std::string& check_id, int line, int col,
            std::string message, std::string note = "",
            std::vector<FixIt> fixits = {}) {
    const CheckInfo* info = FindCheck(check_id);
    ARBITER_CHECK_MSG(info != nullptr, check_id.c_str());
    for (const std::string& disabled : options_.disabled_checks) {
      if (disabled == check_id) return;
    }
    Diagnostic d;
    d.file = file_;
    d.line = line;
    d.col = col < 1 ? 1 : col;
    d.severity = info->severity;
    d.check_id = check_id;
    d.message = std::move(message);
    d.note = std::move(note);
    d.fixits = std::move(fixits);
    out_->push_back(std::move(d));
  }

  const LintOptions& options() const { return options_; }
  const std::string& file() const { return file_; }

 private:
  std::string file_;
  const LintOptions& options_;
  std::vector<Diagnostic>* out_;
};

}  // namespace arbiter::lint

#endif  // ARBITER_LINT_EMITTER_H_
