#include "test_support/cnf_instances.h"

#include <utility>

#include "util/logging.h"

namespace arbiter::test_support {

using sat::Lit;
using sat::Var;

std::vector<std::vector<Lit>> KCnfClauses(const Formula& f) {
  auto clause_lits = [](const Formula& clause) {
    std::vector<Lit> lits;
    const std::vector<Formula> singleton = {clause};
    const std::vector<Formula>& parts =
        clause.kind() == FormulaKind::kOr ? clause.children() : singleton;
    for (const Formula& lit : parts) {
      if (lit.is_var()) {
        lits.push_back(Lit::Pos(lit.var()));
      } else {
        ARBITER_DCHECK(lit.kind() == FormulaKind::kNot);
        lits.push_back(Lit::Neg(lit.child(0).var()));
      }
    }
    return lits;
  };
  std::vector<std::vector<Lit>> clauses;
  if (f.kind() == FormulaKind::kAnd) {
    clauses.reserve(f.num_children());
    for (const Formula& clause : f.children()) {
      clauses.push_back(clause_lits(clause));
    }
  } else {
    clauses.push_back(clause_lits(f));
  }
  return clauses;
}

void LoadKCnf(const Formula& f, sat::ClauseSink* sink) {
  for (std::vector<Lit>& lits : KCnfClauses(f)) {
    sink->AddClause(std::move(lits));
  }
}

void AddPigeonhole(sat::ClauseSink* sink, int holes) {
  const int pigeons = holes + 1;
  std::vector<std::vector<Var>> in(pigeons, std::vector<Var>(holes));
  for (int p = 0; p < pigeons; ++p) {
    for (int h = 0; h < holes; ++h) in[p][h] = sink->NewVar();
  }
  for (int p = 0; p < pigeons; ++p) {
    std::vector<Lit> clause;
    clause.reserve(holes);
    for (int h = 0; h < holes; ++h) clause.push_back(Lit::Pos(in[p][h]));
    sink->AddClause(std::move(clause));
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        sink->AddBinary(Lit::Neg(in[p1][h]), Lit::Neg(in[p2][h]));
      }
    }
  }
}

void AddBveChains(sat::ClauseSink* sink, int chains, int length) {
  // Inputs first so callers can freeze the prefix [0, chains * length).
  std::vector<Var> inputs;
  inputs.reserve(static_cast<size_t>(chains) * length);
  for (int i = 0; i < chains * length; ++i) inputs.push_back(sink->NewVar());
  std::vector<Lit> heads;
  heads.reserve(chains);
  for (int c = 0; c < chains; ++c) {
    // aux_0 := input, aux_{i+1} <-> (aux_i AND input_{i+1}); every aux
    // has 2-3 occurrences per polarity, well inside the BVE bounds, and
    // its definition resolvents are mostly tautological — the classic
    // shape variable elimination dissolves.
    Var prev = inputs[static_cast<size_t>(c) * length];
    for (int i = 1; i < length; ++i) {
      const Var input = inputs[static_cast<size_t>(c) * length + i];
      const Var aux = sink->NewVar();
      sink->AddBinary(Lit::Neg(aux), Lit::Pos(prev));
      sink->AddBinary(Lit::Neg(aux), Lit::Pos(input));
      sink->AddTernary(Lit::Pos(aux), Lit::Neg(prev), Lit::Neg(input));
      prev = aux;
    }
    heads.push_back(Lit::Pos(prev));
  }
  // At least one full chain must hold.  A disjunction (not per-chain
  // units) keeps root unit propagation from dissolving the chains
  // before variable elimination gets to them.
  sink->AddClause(std::move(heads));
}

}  // namespace arbiter::test_support
