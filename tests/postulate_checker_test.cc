// Exhaustive postulate compliance (experiments E4-E6).
//
// The expectations below are the *observed* ground truth from
// exhaustive checking over every knowledge-base tuple at n = 2 and
// n = 3, recorded as regressions.  Highlights:
//
//  * Dalal satisfies (R1)-(R6) — Katsuno-Mendelzon's claim — and fails
//    (U2)/(U8)/(A2)/(A8).
//  * Winslett and Forbus satisfy (U1)-(U8) and fail (R2)/(R3)/(R6).
//  * The paper's concrete operators revesz-max and revesz-sum satisfy
//    (A1)-(A7) resp. (A1)-(A6) but BOTH FAIL (A8) — the paper's
//    "clearly this is a loyal assignment" does not hold in the plain
//    union semantics (see loyal_test.cc for the structural reason).
//  * lex-fitting (psi-oblivious order) satisfies all of (A1)-(A8):
//    the model-fitting class is nonempty, so Theorem 3.1 is not
//    vacuous.
//  * Satoh and Weber lose (R6) (and more) at n = 3: known from the
//    literature, reproduced mechanically here.

#include "postulates/checker.h"

#include <gtest/gtest.h>

#include <set>

#include "change/registry.h"

namespace arbiter {
namespace {

std::set<std::string> FailingPostulates(const std::string& op_name, int n) {
  PostulateChecker checker(MakeOperator(op_name).ValueOrDie(), n);
  std::set<std::string> failing;
  for (Postulate p : AllPostulates()) {
    if (checker.CheckExhaustive(p).has_value()) {
      failing.insert(PostulateName(p));
    }
  }
  return failing;
}

using Set = std::set<std::string>;

TEST(ComplianceN2, Dalal) {
  EXPECT_EQ(FailingPostulates("dalal", 2), Set({"U2", "U8", "A2", "A8"}));
}

TEST(ComplianceN2, Satoh) {
  EXPECT_EQ(FailingPostulates("satoh", 2), Set({"U2", "U8", "A2", "A8"}));
}

TEST(ComplianceN2, Weber) {
  EXPECT_EQ(FailingPostulates("weber", 2),
            Set({"R5", "U2", "U5", "U8", "A2", "A5", "A8"}));
}

TEST(ComplianceN2, Borgida) {
  EXPECT_EQ(FailingPostulates("borgida", 2),
            Set({"U2", "U8", "A2", "A8"}));
}

TEST(ComplianceN2, Winslett) {
  EXPECT_EQ(FailingPostulates("winslett", 2),
            Set({"R2", "R3", "R6", "A6", "A8"}));
}

TEST(ComplianceN2, Forbus) {
  EXPECT_EQ(FailingPostulates("forbus", 2),
            Set({"R2", "R3", "R6", "A6", "A8"}));
}

TEST(ComplianceN2, ReveszMax) {
  EXPECT_EQ(FailingPostulates("revesz-max", 2),
            Set({"R2", "R3", "U2", "U8", "A8"}));
}

TEST(ComplianceN2, ReveszSum) {
  EXPECT_EQ(FailingPostulates("revesz-sum", 2),
            Set({"R2", "R3", "U2", "U8", "A7", "A8"}));
}

TEST(ComplianceN2, LexFittingSatisfiesAllAAxioms) {
  Set failing = FailingPostulates("lex-fitting", 2);
  for (const char* a : {"A1", "A2", "A3", "A4", "A5", "A6", "A7", "A8"}) {
    EXPECT_EQ(failing.count(a), 0u) << a;
  }
  // And per Theorem 3.2 it cannot also be a revision operator.
  EXPECT_EQ(failing.count("R2"), 1u);
}

// n = 3 spot checks for the operators whose compliance changes with
// vocabulary growth (Satoh/Weber/Borgida lose axioms) and the headline
// fitting operators (stable).

TEST(ComplianceN3, SatohLosesR6) {
  PostulateChecker checker(MakeOperator("satoh").ValueOrDie(), 3);
  EXPECT_TRUE(checker.CheckExhaustive(Postulate::kR6).has_value());
  EXPECT_FALSE(checker.CheckExhaustive(Postulate::kR5).has_value());
  for (Postulate p : {Postulate::kR1, Postulate::kR2, Postulate::kR3,
                      Postulate::kR4}) {
    EXPECT_FALSE(checker.CheckExhaustive(p).has_value())
        << PostulateName(p);
  }
}

TEST(ComplianceN3, WeberLosesR5AndR6) {
  PostulateChecker checker(MakeOperator("weber").ValueOrDie(), 3);
  EXPECT_TRUE(checker.CheckExhaustive(Postulate::kR5).has_value());
  EXPECT_TRUE(checker.CheckExhaustive(Postulate::kR6).has_value());
  EXPECT_FALSE(checker.CheckExhaustive(Postulate::kR2).has_value());
}

TEST(ComplianceN3, DalalKeepsAllRevisionAxioms) {
  PostulateChecker checker(MakeOperator("dalal").ValueOrDie(), 3);
  for (Postulate p : RevisionPostulates()) {
    EXPECT_FALSE(checker.CheckExhaustive(p).has_value())
        << PostulateName(p);
  }
  EXPECT_TRUE(checker.CheckExhaustive(Postulate::kA8).has_value());
}

TEST(ComplianceN3, WinslettKeepsAllUpdateAxioms) {
  PostulateChecker checker(MakeOperator("winslett").ValueOrDie(), 3);
  for (Postulate p : UpdatePostulates()) {
    EXPECT_FALSE(checker.CheckExhaustive(p).has_value())
        << PostulateName(p);
  }
}

TEST(ComplianceN3, ReveszMaxSatisfiesA1toA7FailsA8) {
  PostulateChecker checker(MakeOperator("revesz-max").ValueOrDie(), 3);
  for (Postulate p : {Postulate::kA1, Postulate::kA2, Postulate::kA3,
                      Postulate::kA4, Postulate::kA5, Postulate::kA6,
                      Postulate::kA7}) {
    EXPECT_FALSE(checker.CheckExhaustive(p).has_value())
        << PostulateName(p);
  }
  auto cex = checker.CheckExhaustive(Postulate::kA8);
  ASSERT_TRUE(cex.has_value());
  EXPECT_EQ(cex->postulate, Postulate::kA8);
}

TEST(ComplianceN3, LexFittingSatisfiesAllAAxioms) {
  PostulateChecker checker(MakeOperator("lex-fitting").ValueOrDie(), 3);
  for (Postulate p : FittingPostulates()) {
    EXPECT_FALSE(checker.CheckExhaustive(p).has_value())
        << PostulateName(p);
  }
}

TEST(CheckerTest, ComplianceMatrixCoversAllPostulates) {
  PostulateChecker checker(MakeOperator("dalal").ValueOrDie(), 2);
  std::vector<ComplianceEntry> matrix = checker.ComplianceMatrix();
  EXPECT_EQ(matrix.size(), AllPostulates().size());
  for (const ComplianceEntry& entry : matrix) {
    EXPECT_EQ(entry.satisfied, !entry.counterexample.has_value());
  }
}

TEST(CheckerTest, CounterexampleDescribesWitness) {
  PostulateChecker checker(MakeOperator("dalal").ValueOrDie(), 2);
  auto cex = checker.CheckExhaustive(Postulate::kA8);
  ASSERT_TRUE(cex.has_value());
  std::string desc = cex->Describe();
  EXPECT_NE(desc.find("A8"), std::string::npos);
  EXPECT_NE(desc.find("psi1="), std::string::npos);
}

TEST(CheckerTest, SampledAgreesWithExhaustiveOnViolations) {
  // Sampling finds the (dense) A8 violations of dalal quickly, and
  // finds nothing for axioms dalal satisfies.
  PostulateChecker checker(MakeOperator("dalal").ValueOrDie(), 2);
  EXPECT_TRUE(
      checker.CheckSampled(Postulate::kA8, 5000, /*seed=*/1).has_value());
  EXPECT_FALSE(
      checker.CheckSampled(Postulate::kR1, 5000, /*seed=*/2).has_value());
  EXPECT_FALSE(
      checker.CheckSampled(Postulate::kR2, 5000, /*seed=*/3).has_value());
}

TEST(CheckerTest, SampledWorksBeyondExhaustiveLimit) {
  // n = 4 is beyond the exhaustive limit; sampling still runs.
  PostulateChecker checker(MakeOperator("dalal").ValueOrDie(), 4);
  EXPECT_FALSE(
      checker.CheckSampled(Postulate::kR1, 300, /*seed=*/4).has_value());
  EXPECT_TRUE(
      checker.CheckSampled(Postulate::kA8, 3000, /*seed=*/5).has_value());
}

TEST(CheckerTest, ChangeCallsAreMemoized) {
  PostulateChecker checker(MakeOperator("dalal").ValueOrDie(), 2);
  checker.CheckExhaustive(Postulate::kR1);
  uint64_t calls_after_first = checker.num_change_calls();
  checker.CheckExhaustive(Postulate::kU8);
  // U8 needs only unions of already-seen pairs: cache keeps the count
  // at the number of distinct pairs.
  EXPECT_EQ(checker.num_change_calls(), calls_after_first);
}

TEST(SatisfiesAllTest, Helper) {
  EXPECT_TRUE(SatisfiesAll(MakeOperator("dalal").ValueOrDie(),
                           RevisionPostulates(), 2));
  EXPECT_FALSE(SatisfiesAll(MakeOperator("dalal").ValueOrDie(),
                            FittingPostulates(), 2));
  EXPECT_TRUE(SatisfiesAll(MakeOperator("winslett").ValueOrDie(),
                           UpdatePostulates(), 2));
  EXPECT_TRUE(SatisfiesAll(MakeOperator("lex-fitting").ValueOrDie(),
                           FittingPostulates(), 2));
}

}  // namespace
}  // namespace arbiter
