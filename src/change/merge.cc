#include "change/merge.h"

#include <algorithm>

#include "model/distance.h"
#include "model/preorder.h"
#include "util/logging.h"
#include "util/parallel.h"

namespace arbiter {

const char* MergeAggregateName(MergeAggregate aggregate) {
  switch (aggregate) {
    case MergeAggregate::kSum:
      return "sum";
    case MergeAggregate::kGMax:
      return "gmax";
    case MergeAggregate::kMax:
      return "max";
  }
  return "unknown";
}

ModelSet Merge(const std::vector<ModelSet>& sources, const ModelSet& mu,
               MergeAggregate aggregate) {
  return Merge(sources, mu, aggregate, /*metric=*/{});
}

ModelSet Merge(const std::vector<ModelSet>& sources, const ModelSet& mu,
               MergeAggregate aggregate, const std::vector<int64_t>& metric) {
  const int n = mu.num_terms();
  std::vector<const ModelSet*> live;
  for (const ModelSet& s : sources) {
    ARBITER_CHECK(s.num_terms() == n);
    if (!s.empty()) live.push_back(&s);
  }
  if (live.empty() || mu.empty()) return ModelSet(n);

  const DistanceSemantics semantics = MinSemantics(metric);
  auto source_dist = [&semantics](const ModelSet& s, uint64_t i) {
    return MetricMinDist(semantics, s, i);
  };

  // Per-candidate distance vectors.
  auto dist_vector = [&live, &source_dist](uint64_t i) {
    std::vector<int64_t> d;
    d.reserve(live.size());
    for (const ModelSet* s : live) d.push_back(source_dist(*s, i));
    return d;
  };

  switch (aggregate) {
    case MergeAggregate::kSum: {
      // Σ of per-source metric distances, pruned against the incumbent
      // and parallelized through the shared argmin engine.
      return MinByIntBounded(mu, [&live, &source_dist](uint64_t i,
                                                       int64_t bound) {
        int64_t total = 0;
        for (const ModelSet* s : live) {
          total += source_dist(*s, i);
          if (total >= bound) break;
        }
        return total;
      });
    }
    case MergeAggregate::kMax: {
      return MinByIntBounded(mu, [&live, &source_dist](uint64_t i,
                                                       int64_t bound) {
        int64_t worst = 0;
        for (const ModelSet* s : live) {
          worst = std::max<int64_t>(worst, source_dist(*s, i));
          if (worst >= bound) break;
        }
        return worst;
      });
    }
    case MergeAggregate::kGMax: {
      // Lexicographic rank vectors don't fit the integer argmin engine;
      // chunk the candidates, keep a per-chunk incumbent + ties, and
      // fold the chunk results in chunk order (deterministic at any
      // thread count because the vector order is total).
      constexpr uint64_t kGrain = 512;
      struct ChunkBest {
        std::vector<int64_t> best;
        std::vector<uint64_t> ties;
      };
      const uint64_t size = mu.size();
      std::vector<ChunkBest> parts(ParallelForNumChunks(0, size, kGrain));
      ParallelFor(0, size, kGrain, [&](uint64_t lo, uint64_t hi) {
        ChunkBest& cb = parts[lo / kGrain];
        for (uint64_t idx = lo; idx < hi; ++idx) {
          std::vector<int64_t> d = dist_vector(mu[idx]);
          std::sort(d.begin(), d.end(), std::greater<int64_t>());
          if (cb.ties.empty() || d < cb.best) {
            cb.best = std::move(d);
            cb.ties.assign(1, mu[idx]);
          } else if (d == cb.best) {
            cb.ties.push_back(mu[idx]);
          }
        }
      });
      std::vector<int64_t> best;
      std::vector<uint64_t> out;
      for (ChunkBest& cb : parts) {
        if (cb.ties.empty()) continue;
        if (out.empty() || cb.best < best) {
          best = std::move(cb.best);
          out = std::move(cb.ties);
        } else if (cb.best == best) {
          out.insert(out.end(), cb.ties.begin(), cb.ties.end());
        }
      }
      return ModelSet::FromMasks(std::move(out), n);
    }
  }
  ARBITER_CHECK_MSG(false, "unreachable aggregate");
  return ModelSet(n);
}

ModelSet Merge(const std::vector<ModelSet>& sources,
               MergeAggregate aggregate) {
  ARBITER_CHECK(!sources.empty());
  return Merge(sources, ModelSet::Full(sources[0].num_terms()), aggregate);
}

WeightedKnowledgeBase MergeWeighted(
    const std::vector<WeightedKnowledgeBase>& sources,
    const WeightedKnowledgeBase& constraint) {
  const int n = constraint.num_terms();
  WeightedKnowledgeBase combined(n);
  for (const WeightedKnowledgeBase& s : sources) {
    ARBITER_CHECK(s.num_terms() == n);
    combined = combined.Or(s);
  }
  if (!combined.IsSatisfiable() || !constraint.IsSatisfiable()) {
    return WeightedKnowledgeBase(n);
  }
  return constraint.MinimalBy(combined.WdistPreorder());
}

WeightedKnowledgeBase MergeWeighted(
    const std::vector<WeightedKnowledgeBase>& sources) {
  ARBITER_CHECK(!sources.empty());
  return MergeWeighted(
      sources, WeightedKnowledgeBase::Uniform(sources[0].num_terms()));
}

}  // namespace arbiter
