// Two-sided (commutative) arbitration: the (ψ∘φ)∨(φ∘ψ) construction
// and the C1-C8 postulates distilled from the post-1993 arbitration
// literature.  Expectations are exhaustive ground truth at n = 2, 3.

#include "change/commutative.h"

#include <gtest/gtest.h>

#include "change/fitting.h"
#include "change/registry.h"
#include "postulates/commutative_checker.h"
#include "util/random.h"

namespace arbiter {
namespace {

ModelSet Ms(std::vector<uint64_t> masks, int n) {
  return ModelSet::FromMasks(std::move(masks), n);
}

TEST(TwoSidedTest, CompatiblePartiesIntersect) {
  // (C2)+(C3): agreement collapses to the conjunction.
  RevisionBasedArbitration op = MakeTwoSidedDalalArbitration();
  ModelSet a = Ms({0b00, 0b01}, 2);
  ModelSet b = Ms({0b01, 0b11}, 2);
  EXPECT_EQ(op.Change(a, b), Ms({0b01}, 2));
}

TEST(TwoSidedTest, ConflictKeepsBothSidesClosestModels)  {
  // Parties at {00} and {11}: each side's closest models of the other
  // side are kept; the result straddles both camps.
  RevisionBasedArbitration op = MakeTwoSidedDalalArbitration();
  ModelSet a = Ms({0b00}, 2);
  ModelSet b = Ms({0b11}, 2);
  EXPECT_EQ(op.Change(a, b), Ms({0b00, 0b11}, 2));
}

TEST(TwoSidedTest, StaysWithinTheUnion) {
  // (C5) containment — the property Revesz's Δ deliberately drops.
  Rng rng(9);
  RevisionBasedArbitration op = MakeTwoSidedDalalArbitration();
  ArbitrationOperator revesz = MakeMaxArbitration();
  bool revesz_escaped_union = false;
  for (int round = 0; round < 100; ++round) {
    std::vector<uint64_t> ma, mb;
    for (uint64_t m = 0; m < 8; ++m) {
      if (rng.NextBool(0.3)) ma.push_back(m);
      if (rng.NextBool(0.3)) mb.push_back(m);
    }
    ModelSet a = Ms(ma, 3), b = Ms(mb, 3);
    ModelSet both = a.Union(b);
    EXPECT_TRUE(op.Change(a, b).IsSubsetOf(both)) << round;
    if (!revesz.Change(a, b).IsSubsetOf(both)) revesz_escaped_union = true;
  }
  EXPECT_TRUE(revesz_escaped_union)
      << "Revesz's consensus should sometimes sit strictly between "
         "the parties";
}

TEST(TwoSidedTest, UnsatisfiablePartyConcedes) {
  RevisionBasedArbitration op = MakeTwoSidedDalalArbitration();
  ModelSet empty(2);
  ModelSet b = Ms({0b01}, 2);
  EXPECT_EQ(op.Change(empty, b), b);
  EXPECT_EQ(op.Change(b, empty), b);
  EXPECT_TRUE(op.Change(empty, empty).empty());
}

TEST(CommutativePostulatesTest, TwoSidedDalalSatisfiesAll) {
  for (int n = 2; n <= 3; ++n) {
    CommutativeChecker checker(MakeOperator("two-sided-dalal").ValueOrDie(),
                               n);
    for (CommutativePostulate p : AllCommutativePostulates()) {
      auto cex = checker.CheckExhaustive(p);
      EXPECT_FALSE(cex.has_value())
          << "n=" << n << ": " << cex->Describe();
    }
  }
}

TEST(CommutativePostulatesTest, TwoSidedSatohLosesTrichotomyAtN3) {
  CommutativeChecker n2(MakeOperator("two-sided-satoh").ValueOrDie(), 2);
  EXPECT_TRUE(n2.FailingPostulates().empty());
  CommutativeChecker n3(MakeOperator("two-sided-satoh").ValueOrDie(), 3);
  EXPECT_EQ(n3.FailingPostulates(), std::vector<std::string>{"C7"});
}

TEST(CommutativePostulatesTest, ReveszDeltaTradeoff) {
  // Revesz's Δ is commutative (C1) and consistent (C4) but trades away
  // containment and the conjunction postulates: its consensus may
  // assert genuinely new compromise worlds.
  for (const char* name : {"arbitration-max", "arbitration-sum"}) {
    CommutativeChecker checker(MakeOperator(name).ValueOrDie(), 2);
    EXPECT_EQ(checker.FailingPostulates(),
              (std::vector<std::string>{"C2", "C3", "C5", "C7", "C8"}))
        << name;
  }
}

TEST(CommutativePostulatesTest, PlainRevisionIsNotCommutative) {
  CommutativeChecker checker(MakeOperator("dalal").ValueOrDie(), 2);
  EXPECT_EQ(checker.FailingPostulates(),
            (std::vector<std::string>{"C1", "C4", "C8"}));
}

TEST(CommutativePostulatesTest, CounterexampleDescribe) {
  CommutativeChecker checker(MakeOperator("dalal").ValueOrDie(), 2);
  auto cex = checker.CheckExhaustive(CommutativePostulate::kC1);
  ASSERT_TRUE(cex.has_value());
  EXPECT_NE(cex->Describe().find("C1"), std::string::npos);
  EXPECT_NE(cex->Describe().find("psi="), std::string::npos);
}

TEST(CommutativePostulatesTest, NamesAndStatements) {
  EXPECT_EQ(AllCommutativePostulates().size(), 8u);
  for (CommutativePostulate p : AllCommutativePostulates()) {
    EXPECT_FALSE(CommutativePostulateName(p).empty());
    EXPECT_FALSE(CommutativePostulateStatement(p).empty());
  }
}

TEST(TwoSidedTest, NameReflectsUnderlyingRevision) {
  EXPECT_EQ(MakeTwoSidedDalalArbitration().name(), "two-sided(dalal)");
  EXPECT_EQ(MakeTwoSidedDalalArbitration().family(),
            OperatorFamily::kArbitration);
}

}  // namespace
}  // namespace arbiter
