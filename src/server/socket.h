#ifndef ARBITER_SERVER_SOCKET_H_
#define ARBITER_SERVER_SOCKET_H_

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "server/server.h"
#include "util/status.h"
#include "util/sync.h"

/// \file socket.h
/// AF_UNIX transport: a listener thread accepts connections and serves
/// each with the shared frame loop (session.h) on its own thread.  All
/// sessions hit the same BeliefServer, so its snapshot/epoch model is
/// what keeps them coherent.

namespace arbiter::server {

class UnixSocketServer {
 public:
  explicit UnixSocketServer(BeliefServer* server);
  ~UnixSocketServer();

  UnixSocketServer(const UnixSocketServer&) = delete;
  UnixSocketServer& operator=(const UnixSocketServer&) = delete;

  /// Binds and listens on `path` (unlinking a stale socket file first)
  /// and starts the accept thread.
  Status Start(const std::string& path);

  /// Closes the listener, shuts down live connections, joins all
  /// threads, and removes the socket file.  Idempotent.
  void Stop();

  /// True once any session received a SHUTDOWN frame.
  bool shutdown_requested() const {
    return shutdown_requested_.load(std::memory_order_acquire);
  }

 private:
  void AcceptLoop();
  void ServeConnection(int fd);

  BeliefServer* server_;
  /// path_/listen_fd_/accept_thread_ are owned by the Start/Stop
  /// thread: written before the accept thread starts and after it is
  /// joined, so they need no guard (the accept thread only reads
  /// listen_fd_, which is immutable while it runs).
  std::string path_;
  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> shutdown_requested_{false};

  /// kConnections ranks below every server lock: a connection thread
  /// serves batches (stores/writer/ptr/cache/pool locks) only after
  /// conns_mu_ is released, and Stop holds conns_mu_ only around fd
  /// shutdown and the thread-vector move.
  Mutex conns_mu_{LockRank::kConnections, "UnixSocketServer::conns_mu_"};
  std::vector<int> live_fds_ GUARDED_BY(conns_mu_);
  /// Joined by Stop after the accept thread (the only writer besides
  /// Stop) is itself joined, so no late emplace can be missed.
  std::vector<std::thread> conn_threads_ GUARDED_BY(conns_mu_);
};

}  // namespace arbiter::server

#endif  // ARBITER_SERVER_SOCKET_H_
