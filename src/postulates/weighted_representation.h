#ifndef ARBITER_POSTULATES_WEIGHTED_REPRESENTATION_H_
#define ARBITER_POSTULATES_WEIGHTED_REPRESENTATION_H_

#include <string>

#include "change/weighted.h"
#include "model/preorder.h"

/// \file weighted_representation.h
/// Executable Theorem 4.1: the weighted analogue of the Theorem 3.1
/// construction.  From a weighted operator ▷ we derive, for each
/// weighted base ψ̃, the relation
///
///   I ≤ψ̃ J   iff   (ψ̃ ▷ 1_{I,J})(I) > 0
///
/// where 1_{I,J} is the 0/1 base supported on {I, J} (the weighted
/// form(I, J)).  The checker then validates, over sampled weighted
/// bases:
///
///   (1) the derived relations are total pre-orders;
///   (2) the derived assignment satisfies the *weighted* loyalty
///       conditions — where ∨ is the pointwise SUM, the semantics that
///       repairs the plain-union failure of experiment E4;
///   (3) Min-representation: ψ̃ ▷ μ̃ equals μ̃ restricted to the
///       ≤ψ̃-minimal support, for sampled μ̃.
///
/// Theorem 4.1 promises all three for any (F1)-(F8) operator; the
/// wdist operator passes, and weight-ignoring aggregates fail (2).

namespace arbiter {

struct WeightedRepresentationReport {
  bool preorders_ok = false;
  bool assignment_loyal = false;
  bool representation_exact = false;
  std::string detail;

  bool IsWeightedModelFitting() const {
    return preorders_ok && assignment_loyal && representation_exact;
  }
};

/// Runs the Theorem 4.1 construction on `op` over an n-term
/// vocabulary with `num_samples` random weighted-base draws.
WeightedRepresentationReport CheckWeightedRepresentation(
    const WeightedChangeOperator& op, int num_terms, int num_samples,
    uint64_t seed);

/// The derived pre-order of one weighted base under `op` (ranks by
/// |{J : J ≤ I}| so ties are preserved).  Exposed for testing.
TotalPreorder DeriveWeightedPreorder(const WeightedChangeOperator& op,
                                     const WeightedKnowledgeBase& psi);

}  // namespace arbiter

#endif  // ARBITER_POSTULATES_WEIGHTED_REPRESENTATION_H_
