#ifndef ARBITER_SERVER_FRAME_H_
#define ARBITER_SERVER_FRAME_H_

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

/// \file frame.h
/// The belief-server wire protocol: newline-framed, human-typable, and
/// bounded so a hostile peer can neither overflow the process nor make
/// it allocate without limit.
///
/// Requests (one header line, statements on following lines):
///
///   BATCH <id> <store> <n>      n statement lines follow (see
///                               docs/SERVER.md for the statement
///                               language; blank / '#' lines are no-ops)
///   PING <id>
///   SHUTDOWN <id>
///
/// Responses:
///
///   REPLY <id> <epoch> <n>      n outcome lines follow, in statement
///                               order: `ok` | `val <text>` |
///                               `fail <text>` | `err <code> <text>`
///   PONG <id>
///   BYE <id>
///   ERR <message>               malformed frame; the session ends
///
/// <id> is an opaque client token echoed verbatim; <epoch> is the store
/// snapshot the batch observed.  Every limit violation is a protocol
/// error, never an abort: the server must survive arbitrary bytes.

namespace arbiter::server {

/// Hard ceiling on statements per BATCH frame.
inline constexpr size_t kMaxFrameStatements = 4096;

/// Hard ceiling on any single protocol line, in bytes.
inline constexpr size_t kMaxLineBytes = 1 << 20;

/// One parsed request frame.
struct Frame {
  enum class Kind { kBatch, kPing, kShutdown };
  Kind kind = Kind::kPing;
  std::string id;
  std::string store;                     ///< kBatch only
  std::vector<std::string> statements;   ///< kBatch only
};

enum class ReadOutcome {
  kFrame,  ///< *frame was filled
  kEof,    ///< clean end of stream before any frame byte
  kError,  ///< malformed input; *error describes it, session should end
};

/// Reads the next frame.  Blank lines between frames are tolerated;
/// CR before LF is stripped (so CRLF peers work).  Oversized lines,
/// unknown verbs, malformed headers, and EOF inside a BATCH body are
/// kError.
ReadOutcome ReadFrame(std::istream& in, Frame* frame, std::string* error);

/// Response writers.  `lines` / messages are flattened to single lines
/// (embedded newlines become spaces) so the framing cannot be broken
/// by payload content.  Writers flush: a reply must not sit in a
/// buffer while the client waits.
void WriteReply(std::ostream& out, const std::string& id, uint64_t epoch,
                const std::vector<std::string>& lines);
void WritePong(std::ostream& out, const std::string& id);
void WriteBye(std::ostream& out, const std::string& id);
void WriteError(std::ostream& out, const std::string& message);

/// Replaces newlines (and CR) with spaces.
std::string FlattenLine(const std::string& text);

}  // namespace arbiter::server

#endif  // ARBITER_SERVER_FRAME_H_
