#ifndef ARBITER_LOGIC_FORMULA_H_
#define ARBITER_LOGIC_FORMULA_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "util/logging.h"

/// \file formula.h
/// Immutable propositional formula AST.
///
/// The paper builds formulas from terms with ¬, ∧, ∨ (Section 2).  We
/// additionally support →, ↔, ⊕ and the constants ⊤/⊥ as first-class
/// node kinds; they are eliminated by NNF conversion (simplify.h) where
/// algorithms need the core connectives only.
///
/// Formula is a cheap-to-copy value type: a shared pointer to an
/// immutable node.  Subtrees are shared, so formulas form DAGs.

namespace arbiter {

/// Node discriminator.
enum class FormulaKind : uint8_t {
  kTrue,     ///< ⊤
  kFalse,    ///< ⊥
  kVar,      ///< a propositional term
  kNot,      ///< ¬child
  kAnd,      ///< conjunction of >= 2 children
  kOr,       ///< disjunction of >= 2 children
  kImplies,  ///< child0 → child1
  kIff,      ///< child0 ↔ child1
  kXor,      ///< child0 ⊕ child1
};

class Formula;

namespace internal {
struct FormulaNode {
  FormulaKind kind;
  int var;  // valid iff kind == kVar
  std::vector<Formula> children;
};
}  // namespace internal

/// An immutable propositional formula.
class Formula {
 public:
  /// Default-constructed formula is ⊥ (so containers are usable);
  /// prefer the named factories.
  Formula();

  /// The constant true formula.
  static Formula True();
  /// The constant false formula.
  static Formula False();
  /// The formula consisting of term `var` (a vocabulary index >= 0).
  static Formula Var(int var);

  FormulaKind kind() const { return node_->kind; }
  bool is_true() const { return kind() == FormulaKind::kTrue; }
  bool is_false() const { return kind() == FormulaKind::kFalse; }
  bool is_var() const { return kind() == FormulaKind::kVar; }
  bool is_literal() const {
    return is_var() ||
           (kind() == FormulaKind::kNot && child(0).is_var());
  }

  /// Term index; requires kind() == kVar.
  int var() const {
    ARBITER_DCHECK(is_var());
    return node_->var;
  }

  int num_children() const {
    return static_cast<int>(node_->children.size());
  }
  const Formula& child(int i) const {
    ARBITER_DCHECK(i >= 0 && i < num_children());
    return node_->children[i];
  }
  const std::vector<Formula>& children() const { return node_->children; }

  /// Number of AST nodes (shared subtrees counted once per occurrence).
  int Size() const;

  /// Maximum nesting depth (a variable or constant has depth 1).
  int Depth() const;

  /// Largest variable index occurring in the formula, or -1 if none.
  int MaxVar() const;

  /// Deep structural equality (not logical equivalence).
  bool Equals(const Formula& other) const;

  /// Structural hash consistent with Equals().
  uint64_t Hash() const;

  /// True if both wrap the same node object (fast, conservative).
  bool SameNode(const Formula& other) const { return node_ == other.node_; }

  /// Stable identity of the underlying node; usable as a cache key for
  /// the lifetime of any Formula sharing it.
  const void* NodeId() const { return node_.get(); }

 private:
  friend Formula Not(const Formula&);
  friend Formula And(std::vector<Formula>);
  friend Formula Or(std::vector<Formula>);
  friend Formula Implies(const Formula&, const Formula&);
  friend Formula Iff(const Formula&, const Formula&);
  friend Formula Xor(const Formula&, const Formula&);

  explicit Formula(std::shared_ptr<const internal::FormulaNode> node)
      : node_(std::move(node)) {}

  std::shared_ptr<const internal::FormulaNode> node_;
};

/// ¬f, with double negation collapsed and constants folded.
Formula Not(const Formula& f);

/// n-ary conjunction.  Empty input yields ⊤; singleton is returned as-is;
/// ⊥ children short-circuit; ⊤ children are dropped.
Formula And(std::vector<Formula> children);
/// Binary conjunction convenience.
Formula And(const Formula& a, const Formula& b);
Formula And(const Formula& a, const Formula& b, const Formula& c);

/// n-ary disjunction.  Empty input yields ⊥; duals of And's rules apply.
Formula Or(std::vector<Formula> children);
/// Binary disjunction convenience.
Formula Or(const Formula& a, const Formula& b);
Formula Or(const Formula& a, const Formula& b, const Formula& c);

/// a → b.
Formula Implies(const Formula& a, const Formula& b);
/// a ↔ b.
Formula Iff(const Formula& a, const Formula& b);
/// a ⊕ b.
Formula Xor(const Formula& a, const Formula& b);

}  // namespace arbiter

#endif  // ARBITER_LOGIC_FORMULA_H_
