#ifndef ARBITER_LOGIC_PARSER_H_
#define ARBITER_LOGIC_PARSER_H_

#include <string>

#include "logic/formula.h"
#include "logic/vocabulary.h"
#include "util/status.h"

/// \file parser.h
/// A recursive-descent parser for propositional formulas.
///
/// Grammar (loosest to tightest binding):
///
///   iff     := implies ( ("<->" | "iff") implies )*          (left assoc)
///   implies := xor ( ("->" | "implies") implies )?           (right assoc)
///   xor     := or ( ("^" | "xor") or )*                      (left assoc)
///   or      := and ( ("|" | "||" | "\/" | "or") and )*
///   and     := unary ( ("&" | "&&" | "/\" | "and") unary )*
///   unary   := ("!" | "~" | "not") unary | atom
///   atom    := ident | "true" | "false" | "(" iff ")"
///
/// Identifiers match [A-Za-z_][A-Za-z0-9_']* minus the keywords.

namespace arbiter {

/// Controls how the parser treats variables absent from the vocabulary.
enum class ParseMode {
  kAutoRegister,  ///< unknown identifiers are added to the vocabulary
  kStrict,        ///< unknown identifiers are a parse error
};

/// Parses `text` into a formula over `vocab`.  In kAutoRegister mode
/// (the default) new term names are appended to `vocab`.
Result<Formula> Parse(const std::string& text, Vocabulary* vocab,
                      ParseMode mode = ParseMode::kAutoRegister);

/// Parses with a throwaway vocabulary; useful in tests where only the
/// shape of the formula matters.
Result<Formula> ParseSynthetic(const std::string& text, int num_terms);

/// Convenience wrapper that aborts on parse errors.  Intended for
/// literals in tests, examples, and benchmarks.
Formula MustParse(const std::string& text, Vocabulary* vocab);

}  // namespace arbiter

#endif  // ARBITER_LOGIC_PARSER_H_
