#ifndef ARBITER_TEST_SUPPORT_DIFFERENTIAL_H_
#define ARBITER_TEST_SUPPORT_DIFFERENTIAL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "kb/weighted_kb.h"
#include "model/model_set.h"

/// \file differential.h
/// The differential fuzz/invariant harness.  Each case draws a random
/// vocabulary, model sets, weighted bases, and a BeliefStore op script
/// from a per-case seed, then cross-checks independent implementations
/// of the same semantics against each other:
///
///  * **Kernels** — the naive serial distance aggregates (re-implemented
///    here with no pruning and no thread pool) vs the production
///    `OverallDist`/`SumDist`, their `*Bounded` branch-and-bound
///    variants (including the exact-below-bound contract), and the
///    `SumDistOracle` column decomposition; the pruned+parallel
///    `MinByIntBounded` argmin behind `MaxFitting`/`SumFitting` must be
///    bit-identical to the naive scan at every configured thread count.
///  * **Representation theorems** — `Min(Mod(μ), ≤ψ)` computed from the
///    loyal assignments (`DalalPreorder`, `OverallDistPreorder`,
///    `SumDistPreorder`) must equal the concrete operators (Theorems
///    3.1/4.1); the weighted wdist operator must match a naive
///    weighted-Min reference.
///  * **Commutativity** — every registered arbitration-family operator
///    and the weighted arbitration satisfy ψ Δ φ ≡ φ Δ ψ (the A7-side
///    symmetry).
///  * **Backends** — the counting `DistanceBackend` (SAT/#SAT argmins)
///    vs the enumerating oracle on random formula pairs: the model
///    sets, optimal-distance strings, and truncation flags must be
///    bit-identical for min/max/Σ aggregation under unit and random
///    weighted metrics, at every configured thread count — and, on the
///    counting side, bit-identical with SAT preprocessing enabled and
///    disabled.
///  * **SAT tier** — the preprocessing solver tier (subsumption + BVE
///    in front of the CDCL solver) vs the DPLL baseline on random
///    3-CNF with a random frozen subset: statuses agree, models
///    (including values reconstructed for eliminated variables)
///    satisfy every clause, assumption solves auto-freeze their
///    variables, and failed-assumption cores are genuine unsatisfiable
///    subsets.
///  * **Store** — random op scripts with injected failures: any op that
///    returns non-OK must leave the store byte-identical (strong error
///    guarantee), and Save → Load → replay must reproduce the store
///    (bases, vocabulary, journals, and undo stacks).
///  * **Lint** — random `.belief` scripts cross-check the arblint
///    contract: a well-formed script lints clean of error-severity
///    diagnostics outside the flow/ family and executes without hard
///    errors, while a script with an injected defect (unknown keyword,
///    use-before-define, unknown operator, malformed formula,
///    empty-history undo, capacity bomb) always produces at least one
///    error diagnostic.  Every dataflow verdict is additionally held
///    against the concrete run report (a statement proved unreachable
///    never executes, a proved assertion outcome matches the step, a
///    proved empty-history undo hard-errors), and on scripts that run
///    without hard errors `arblint --fix` must preserve the executed
///    assertion outcomes and converge to a fix-clean text.
///
/// Everything is deterministic in `seed`, so a reported divergence is
/// reproducible by re-running its case seed.

namespace arbiter::test_support {

struct DifferentialOptions {
  uint64_t seed = 0xA7B17E5;
  int num_cases = 500;

  /// Vocabulary size range for the full-check cases.
  int min_terms = 2;
  int max_terms = 5;

  /// Every `large_kernel_every`-th case runs a kernel-only check over a
  /// `large_terms`-bit space, big enough to leave the argmin's inline
  /// fast path and exercise the chunked parallel scan.
  int large_kernel_every = 16;
  int large_terms = 10;

  /// Thread counts the kernels are swept over (the pool is restored to
  /// its default configuration afterwards).
  std::vector<int> thread_counts = {1, 2, 7};

  bool check_kernels = true;
  bool check_backends = true;
  bool check_sat = true;
  bool check_representation = true;
  bool check_weighted = true;
  bool check_commutativity = true;
  bool check_store = true;
  bool check_script_lint = true;
};

/// One observed disagreement between implementations.
struct Divergence {
  int case_index = 0;
  uint64_t case_seed = 0;
  std::string check;   ///< short id, e.g. "kernel/odist" or "store/atomicity"
  std::string detail;

  std::string ToString() const;
};

struct DifferentialReport {
  int cases_run = 0;
  int64_t checks_run = 0;
  std::vector<Divergence> divergences;

  bool ok() const { return divergences.empty(); }
  /// One-paragraph human-readable outcome (lists first divergences).
  std::string Summary() const;
};

/// Runs the harness.  Deterministic in options.seed.
DifferentialReport RunDifferentialFuzz(const DifferentialOptions& options);

/// Naive reference kernels: serial, unpruned, pool-free.  Exposed so
/// unit tests can cross-check them directly.
int ReferenceOverallDist(const ModelSet& psi, uint64_t interpretation);
int64_t ReferenceSumDist(const ModelSet& psi, uint64_t interpretation);

/// Naive model fitting: scores every candidate with the reference
/// aggregate (max or sum) and keeps the argmin set.
ModelSet ReferenceFitting(const ModelSet& psi, const ModelSet& mu,
                          bool use_sum);

/// Naive Dalal revision: argmin of the reference min-distance.
ModelSet ReferenceDalalRevision(const ModelSet& psi, const ModelSet& mu);

/// Naive weighted model fitting (paper, Section 4): wdist by direct
/// summation, weighted Min by a serial scan over the support.
WeightedKnowledgeBase ReferenceWdistFitting(const WeightedKnowledgeBase& psi,
                                            const WeightedKnowledgeBase& mu);

}  // namespace arbiter::test_support

#endif  // ARBITER_TEST_SUPPORT_DIFFERENTIAL_H_
