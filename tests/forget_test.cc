// Tests for variable forgetting (existential quantification).

#include "model/forget.h"

#include <gtest/gtest.h>

#include "logic/generator.h"
#include "logic/parser.h"
#include "logic/semantics.h"
#include "logic/simplify.h"
#include "util/random.h"

namespace arbiter {
namespace {

TEST(ForgetTest, ClosesUnderFlip) {
  ModelSet s = ModelSet::FromMasks({0b001}, 3);
  ModelSet forgotten = Forget(s, 0);
  EXPECT_EQ(forgotten, ModelSet::FromMasks({0b000, 0b001}, 3));
}

TEST(ForgetTest, MatchesShannonExpansion) {
  // Mod(∃p φ) = Mod(φ[p:=T] ∨ φ[p:=F]).
  Rng rng(41);
  RandomFormulaOptions options;
  options.num_terms = 4;
  for (int round = 0; round < 100; ++round) {
    Formula f = RandomFormula(&rng, options);
    int var = static_cast<int>(rng.NextBelow(4));
    ModelSet direct = Forget(ModelSet::FromFormula(f, 4), var);
    Formula expanded = Or(Assign(f, var, true), Assign(f, var, false));
    EXPECT_EQ(direct, ModelSet::FromFormula(expanded, 4))
        << "round " << round << " var " << var;
  }
}

TEST(ForgetTest, IdempotentAndMonotone) {
  Rng rng(43);
  for (int round = 0; round < 50; ++round) {
    std::vector<uint64_t> masks;
    for (uint64_t m = 0; m < 16; ++m) {
      if (rng.NextBool(0.3)) masks.push_back(m);
    }
    ModelSet s = ModelSet::FromMasks(masks, 4);
    int var = static_cast<int>(rng.NextBelow(4));
    ModelSet once = Forget(s, var);
    EXPECT_EQ(Forget(once, var), once);
    EXPECT_TRUE(s.IsSubsetOf(once));
    EXPECT_TRUE(IsIndependentOf(once, var));
  }
}

TEST(ForgetTest, ForgetAllCommutes) {
  Rng rng(47);
  for (int round = 0; round < 30; ++round) {
    std::vector<uint64_t> masks;
    for (uint64_t m = 0; m < 16; ++m) {
      if (rng.NextBool(0.3)) masks.push_back(m);
    }
    ModelSet s = ModelSet::FromMasks(masks, 4);
    EXPECT_EQ(ForgetAll(s, 0b0101), Forget(Forget(s, 2), 0));
  }
}

TEST(ForgetTest, IndependenceDetection) {
  Vocabulary v = Vocabulary::Synthetic(3);
  ModelSet s = ModelSet::FromFormula(MustParse("p0 & (p2 | !p2)", &v), 3);
  EXPECT_TRUE(IsIndependentOf(s, 1));
  EXPECT_TRUE(IsIndependentOf(s, 2));
  EXPECT_FALSE(IsIndependentOf(s, 0));
}

TEST(ForgetTest, EmptySetStaysEmpty) {
  ModelSet empty(3);
  EXPECT_TRUE(Forget(empty, 1).empty());
  EXPECT_TRUE(ForgetAll(empty, 0b111).empty());
}

TEST(ForgetTest, ForgettingEverythingGivesFullOrEmpty) {
  ModelSet s = ModelSet::FromMasks({0b10}, 2);
  EXPECT_EQ(ForgetAll(s, 0b11), ModelSet::Full(2));
}

}  // namespace
}  // namespace arbiter
