// Unit tests for the counting backend's Σ machinery:
//  * CountColumns — exact model counts and per-column tallies, checked
//    against brute-force enumeration of the input space,
//  * MinimizeLinearOverCnf — branch-and-bound minimization of a linear
//    pseudo-Boolean objective over CNF models, collecting all ties,
//  * SatSumFitting — the glue that turns one counting pass over psi
//    into a linear objective minimized over Mod(mu),
//  * ColumnCountCache — structural memoization of psi's counts.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "enc/tseitin.h"
#include "logic/formula.h"
#include "logic/parser.h"
#include "model/distance.h"
#include "model/model_set.h"
#include "sat/cnf.h"
#include "sat/count.h"
#include "solve/sum_sat.h"

namespace arbiter::solve {
namespace {

Formula Syn(const std::string& text, int num_terms) {
  Result<Formula> f = ParseSynthetic(text, num_terms);
  ARBITER_CHECK_MSG(f.ok(), f.status().message().c_str());
  return *f;
}

sat::CnfFormula EncodeCnf(const Formula& f, int num_inputs) {
  sat::CnfFormula cnf;
  enc::TseitinEncoder encoder(&cnf);
  encoder.ReserveInputVars(num_inputs);
  encoder.Assert(f);
  return cnf;
}

// --- Int128ToString ----------------------------------------------------

TEST(Int128ToString, RendersDecimalExactly) {
  EXPECT_EQ(Int128ToString(0), "0");
  EXPECT_EQ(Int128ToString(42), "42");
  EXPECT_EQ(Int128ToString(-7), "-7");
  // 2^100 = 1267650600228229401496703205376.
  EXPECT_EQ(Int128ToString(Int128{1} << 100),
            "1267650600228229401496703205376");
  EXPECT_EQ(Int128ToString(-(Int128{1} << 100)),
            "-1267650600228229401496703205376");
}

// --- CountColumns vs brute force ---------------------------------------

TEST(CountColumns, MatchesBruteForceEnumeration) {
  const int n = 6;
  const std::vector<std::string> formulas = {
      "p0",
      "p0 | p1 | p2",
      "(p0 | p1) & (p2 | !p3) & (p4 | p5)",
      "p0 ^ p1 ^ p2 ^ p3",
      "(p0 -> p1) & (p1 -> p2) & !(p3 & p4 & p5)",
      "(p0 <-> p1) & (p2 | p3) & (!p4 | p5)",
  };
  for (const std::string& text : formulas) {
    SCOPED_TRACE(text);
    const Formula f = Syn(text, n);
    sat::CnfFormula cnf = EncodeCnf(f, n);
    sat::ColumnCountResult counts = sat::CountColumns(cnf, n);
    ASSERT_TRUE(counts.completed);

    const ModelSet models = ModelSet::FromFormula(f, n);
    EXPECT_EQ(static_cast<uint64_t>(counts.total), models.size());
    ASSERT_EQ(counts.ones.size(), static_cast<size_t>(n));
    for (int b = 0; b < n; ++b) {
      uint64_t expected = 0;
      for (uint64_t m : models) expected += (m >> b) & 1;
      EXPECT_EQ(static_cast<uint64_t>(counts.ones[b]), expected)
          << "column " << b;
    }
  }
}

TEST(CountColumns, UnsatisfiableFormulaCountsZero) {
  const Formula f = Syn("p0 & !p0", 3);
  sat::CnfFormula cnf = EncodeCnf(f, 3);
  sat::ColumnCountResult counts = sat::CountColumns(cnf, 3);
  ASSERT_TRUE(counts.completed);
  EXPECT_EQ(static_cast<uint64_t>(counts.total), 0u);
}

TEST(CountColumns, DecomposesIndependentBlocks) {
  // Ten independent 2-var blocks: count = 3^10, far beyond what a
  // non-decomposing DPLL could touch in the step budget used here.
  const int n = 20;
  std::string text;
  for (int b = 0; b < 10; ++b) {
    if (b > 0) text += " & ";
    text += "(p" + std::to_string(2 * b) + " | p" +
            std::to_string(2 * b + 1) + ")";
  }
  sat::CnfFormula cnf = EncodeCnf(Syn(text, n), n);
  sat::ColumnCountResult counts =
      sat::CountColumns(cnf, n, /*max_steps=*/1 << 16);
  ASSERT_TRUE(counts.completed);
  uint64_t expected = 1;
  for (int b = 0; b < 10; ++b) expected *= 3;
  EXPECT_EQ(static_cast<uint64_t>(counts.total), expected);
  // Each variable is true in 2 of its block's 3 assignments.
  for (int b = 0; b < n; ++b) {
    EXPECT_EQ(static_cast<uint64_t>(counts.ones[b]), expected / 3 * 2);
  }
  EXPECT_GT(counts.components_solved, 1u);
}

// --- MinimizeLinearOverCnf ---------------------------------------------

TEST(MinimizeLinear, FindsOptimumAndAllTies) {
  // Minimize 2*p0 + p1 - 3*p2 over (p0 | p1): optimum is p1 alone with
  // p2 on, objective 1 - 3 = -2, a single model {p1, p2} = 0b110.
  const int n = 3;
  sat::CnfFormula cnf = EncodeCnf(Syn("p0 | p1", n), n);
  LinearMinResult r = MinimizeLinearOverCnf(cnf, n, {2, 1, -3},
                                            /*max_models=*/64);
  ASSERT_TRUE(r.sat);
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(Int128ToString(r.optimal), "-2");
  EXPECT_EQ(r.models, (std::vector<uint64_t>{0b110}));
}

TEST(MinimizeLinear, CollectsEveryTiedModel) {
  // Objective 0 everywhere: every model of mu ties at 0.
  const int n = 3;
  const Formula mu = Syn("p0 | p1 | p2", n);
  sat::CnfFormula cnf = EncodeCnf(mu, n);
  LinearMinResult r = MinimizeLinearOverCnf(cnf, n, {0, 0, 0},
                                            /*max_models=*/64);
  ASSERT_TRUE(r.sat);
  const ModelSet expected = ModelSet::FromFormula(mu, n);
  ASSERT_EQ(r.models.size(), expected.size());
  for (size_t i = 0; i < r.models.size(); ++i) {
    EXPECT_EQ(r.models[i], expected[i]);
  }
}

TEST(MinimizeLinear, UnsatisfiableCnfReportsUnsat) {
  sat::CnfFormula cnf = EncodeCnf(Syn("p0 & !p0", 2), 2);
  LinearMinResult r = MinimizeLinearOverCnf(cnf, 2, {1, 1}, 16);
  EXPECT_FALSE(r.sat);
}

TEST(MinimizeLinear, MatchesBruteForceOnDenseObjectives) {
  const int n = 5;
  const std::vector<std::string> formulas = {
      "(p0 | p1) & (!p2 | p3 | p4)",
      "p0 ^ p1 ^ p2",
      "(p0 -> p1) & (p2 -> p3) & (p0 | p2 | p4)",
  };
  const std::vector<Int128> weights = {3, -2, 5, -1, 4};
  for (const std::string& text : formulas) {
    SCOPED_TRACE(text);
    const Formula f = Syn(text, n);
    sat::CnfFormula cnf = EncodeCnf(f, n);
    LinearMinResult r = MinimizeLinearOverCnf(cnf, n, weights, 64);
    ASSERT_TRUE(r.sat);

    Int128 best = 0;
    bool first = true;
    std::vector<uint64_t> argmin;
    for (const uint64_t m : ModelSet::FromFormula(f, n)) {
      Int128 obj = 0;
      for (int b = 0; b < n; ++b) {
        if ((m >> b) & 1) obj += weights[b];
      }
      if (first || obj < best) {
        best = obj;
        argmin = {m};
        first = false;
      } else if (obj == best) {
        argmin.push_back(m);
      }
    }
    EXPECT_EQ(Int128ToString(r.optimal), Int128ToString(best));
    EXPECT_EQ(r.models, argmin);
  }
}

// --- SatSumFitting vs the enumeration oracle ---------------------------

TEST(SatSumFitting, MatchesSumDistOracleArgmin) {
  const int n = 5;
  const std::vector<std::pair<std::string, std::string>> cases = {
      {"(p0 | p1) & !p4", "p2 | p3"},
      {"p0 ^ p1", "(p2 & p3) | p4"},
      {"!(p0 & p1 & p2)", "p0 & (p1 | p3)"},
  };
  for (const auto& [psi_text, mu_text] : cases) {
    SCOPED_TRACE(psi_text + "  |>  " + mu_text);
    const Formula psi = Syn(psi_text, n);
    const Formula mu = Syn(mu_text, n);
    SumFittingResult r = SatSumFitting(psi, mu, n, /*max_models=*/64);
    ASSERT_TRUE(r.completed);
    ASSERT_FALSE(r.psi_unsat);
    ASSERT_FALSE(r.mu_unsat);

    const ModelSet psi_models = ModelSet::FromFormula(psi, n);
    const SumDistOracle sdist(psi_models);
    int64_t best = 0;
    bool first = true;
    std::vector<uint64_t> argmin;
    for (const uint64_t m : ModelSet::FromFormula(mu, n)) {
      const int64_t d = sdist(m);
      if (first || d < best) {
        best = d;
        argmin = {m};
        first = false;
      } else if (d == best) {
        argmin.push_back(m);
      }
    }
    EXPECT_EQ(r.optimal_decimal, std::to_string(best));
    EXPECT_EQ(r.models, argmin);
  }
}

TEST(SatSumFitting, WeightedMetricScalesColumns) {
  // psi = p0 & p1 with metric {5, 1, 1}: flipping p0 costs 5.
  // Mod(psi) = {0b011}; mu = !p0 forces the flip, so the optimum is 5
  // plus whatever p1/p2 choices minimize (keep p1, keep !p2): 5.
  const int n = 3;
  const Formula psi = Syn("p0 & p1 & !p2", n);
  const Formula mu = Syn("!p0", n);
  SumFittingResult r =
      SatSumFitting(psi, mu, n, /*max_models=*/16, /*metric=*/{5, 1, 1});
  ASSERT_TRUE(r.completed);
  EXPECT_EQ(r.optimal_decimal, "5");
  EXPECT_EQ(r.models, (std::vector<uint64_t>{0b010}));
}

TEST(SatSumFitting, PsiAndMuUnsatEdges) {
  const int n = 3;
  SumFittingResult psi_unsat =
      SatSumFitting(Syn("p0 & !p0", n), Syn("p1", n), n);
  EXPECT_TRUE(psi_unsat.psi_unsat);
  EXPECT_TRUE(psi_unsat.models.empty());

  SumFittingResult mu_unsat =
      SatSumFitting(Syn("p1", n), Syn("p0 & !p0", n), n);
  EXPECT_TRUE(mu_unsat.mu_unsat);
  EXPECT_TRUE(mu_unsat.models.empty());
}

// --- ColumnCountCache --------------------------------------------------

TEST(ColumnCountCacheTest, HitsOnStructurallyEqualPsi) {
  const int n = 4;
  const Formula psi = Syn("(p0 | p1) & p2", n);
  const Formula mu_a = Syn("p3", n);
  const Formula mu_b = Syn("!p3 & p0", n);
  ColumnCountCache cache;
  SumFittingResult a = SatSumFitting(psi, mu_a, n, 16, {}, &cache);
  ASSERT_TRUE(a.completed);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 1u);
  SumFittingResult b = SatSumFitting(psi, mu_b, n, 16, {}, &cache);
  ASSERT_TRUE(b.completed);
  EXPECT_EQ(cache.hits(), 1u)
      << "the second call must reuse psi's column counts";
  EXPECT_EQ(cache.misses(), 1u);
  // Both fittings pull toward psi's mass at {p0, p1, p2}: with p3
  // forced by mu, the unique argmin keeps all three set.
  EXPECT_EQ(a.models, (std::vector<uint64_t>{0b1111}));
  EXPECT_EQ(b.models, (std::vector<uint64_t>{0b0111}));
}

}  // namespace
}  // namespace arbiter::solve
