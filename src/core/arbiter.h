#ifndef ARBITER_CORE_ARBITER_H_
#define ARBITER_CORE_ARBITER_H_

#include <memory>
#include <string>

#include "change/registry.h"
#include "kb/knowledge_base.h"
#include "kb/weighted_kb.h"
#include "logic/parser.h"
#include "logic/vocabulary.h"

/// \file arbiter.h
/// The high-level façade of the library: parse textual knowledge
/// bases over a shared vocabulary and change them with any registered
/// operator.
///
/// Quickstart:
///
///   arbiter::Arbiter arb({"fight_started_by_A", "fight_started_by_B"});
///   auto psi = arb.ParseKb("fight_started_by_A & !fight_started_by_B");
///   auto mu  = arb.ParseKb("!fight_started_by_A & fight_started_by_B");
///   auto verdict = arb.Arbitrate(*psi, *mu);
///   std::cout << verdict.ToString(arb.vocabulary());

namespace arbiter {

class Arbiter {
 public:
  /// Starts with an empty vocabulary; terms are added by parsing.
  Arbiter() = default;

  /// Starts with the given term names (order fixes the indices).
  explicit Arbiter(const std::vector<std::string>& term_names);

  const Vocabulary& vocabulary() const { return vocab_; }
  Vocabulary* mutable_vocabulary() { return &vocab_; }

  /// Parses a formula, auto-registering new terms, and pairs it with
  /// its models.  All knowledge bases produced by one Arbiter share a
  /// vocabulary; parse every formula before changing anything, or use
  /// Rebase() to re-evaluate earlier bases after the vocabulary grew.
  Result<KnowledgeBase> ParseKb(const std::string& text);

  /// Re-evaluates a knowledge base over the current (possibly larger)
  /// vocabulary.
  KnowledgeBase Rebase(const KnowledgeBase& kb) const;

  /// Parses into a 0/1 weighted base.
  Result<WeightedKnowledgeBase> ParseWeightedKb(const std::string& text);

  /// Applies the operator registered under `op_name`.
  Result<KnowledgeBase> Change(const std::string& op_name,
                               const KnowledgeBase& psi,
                               const KnowledgeBase& mu) const;

  /// Dalal revision (AGM/KM): new information wins.
  KnowledgeBase Revise(const KnowledgeBase& psi,
                       const KnowledgeBase& mu) const;

  /// Winslett update (KM): new information is more recent.
  KnowledgeBase Update(const KnowledgeBase& psi,
                       const KnowledgeBase& mu) const;

  /// Revesz model-fitting ψ ▷ μ (max-based, as printed in the paper).
  KnowledgeBase Fit(const KnowledgeBase& psi, const KnowledgeBase& mu) const;

  /// Arbitration ψ Δ φ (max-based): both sides are equal voices.
  KnowledgeBase Arbitrate(const KnowledgeBase& psi,
                          const KnowledgeBase& phi) const;

  /// Weighted arbitration (Section 4): wdist over summed weights.
  WeightedKnowledgeBase ArbitrateWeighted(
      const WeightedKnowledgeBase& psi,
      const WeightedKnowledgeBase& phi) const;

 private:
  Vocabulary vocab_;
};

/// Library version string, e.g. "1.0.0".
const char* Version();

}  // namespace arbiter

#endif  // ARBITER_CORE_ARBITER_H_
