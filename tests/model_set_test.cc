// Tests for ModelSet: construction, set algebra, formula round trips.

#include "model/model_set.h"

#include <gtest/gtest.h>

#include "logic/parser.h"
#include "logic/semantics.h"
#include "util/random.h"

namespace arbiter {
namespace {

TEST(ModelSetTest, EmptyAndFull) {
  ModelSet empty(3);
  EXPECT_TRUE(empty.empty());
  EXPECT_EQ(empty.size(), 0u);
  ModelSet full = ModelSet::Full(3);
  EXPECT_EQ(full.size(), 8u);
  for (uint64_t m = 0; m < 8; ++m) EXPECT_TRUE(full.Contains(m));
}

TEST(ModelSetTest, FromMasksSortsAndDeduplicates) {
  ModelSet s = ModelSet::FromMasks({3, 1, 3, 0}, 2);
  EXPECT_EQ(s.masks(), (std::vector<uint64_t>{0, 1, 3}));
}

TEST(ModelSetTest, FromFormula) {
  Vocabulary v;
  Formula f = MustParse("A <-> B", &v);
  EXPECT_EQ(ModelSet::FromFormula(f, 2).masks(),
            (std::vector<uint64_t>{0b00, 0b11}));
}

TEST(ModelSetTest, Singleton) {
  ModelSet s = ModelSet::Singleton(5, 3);
  EXPECT_EQ(s.size(), 1u);
  EXPECT_TRUE(s.Contains(5));
  EXPECT_FALSE(s.Contains(4));
}

TEST(ModelSetTest, SetAlgebra) {
  ModelSet a = ModelSet::FromMasks({0, 1, 2}, 2);
  ModelSet b = ModelSet::FromMasks({1, 3}, 2);
  EXPECT_EQ(a.Union(b).masks(), (std::vector<uint64_t>{0, 1, 2, 3}));
  EXPECT_EQ(a.Intersect(b).masks(), (std::vector<uint64_t>{1}));
  EXPECT_EQ(a.Difference(b).masks(), (std::vector<uint64_t>{0, 2}));
  EXPECT_EQ(b.Complement().masks(), (std::vector<uint64_t>{0, 2}));
}

TEST(ModelSetTest, AlgebraLawsOnRandomSets) {
  Rng rng(17);
  const int n = 4;
  for (int i = 0; i < 50; ++i) {
    std::vector<uint64_t> ma, mb;
    for (uint64_t m = 0; m < 16; ++m) {
      if (rng.NextBool(0.4)) ma.push_back(m);
      if (rng.NextBool(0.4)) mb.push_back(m);
    }
    ModelSet a = ModelSet::FromMasks(ma, n);
    ModelSet b = ModelSet::FromMasks(mb, n);
    // De Morgan.
    EXPECT_EQ(a.Union(b).Complement(),
              a.Complement().Intersect(b.Complement()));
    // Difference via complement.
    EXPECT_EQ(a.Difference(b), a.Intersect(b.Complement()));
    // Union/intersect commute.
    EXPECT_EQ(a.Union(b), b.Union(a));
    EXPECT_EQ(a.Intersect(b), b.Intersect(a));
    // Double complement.
    EXPECT_EQ(a.Complement().Complement(), a);
  }
}

TEST(ModelSetTest, SubsetChecks) {
  ModelSet a = ModelSet::FromMasks({1, 2}, 2);
  ModelSet b = ModelSet::FromMasks({0, 1, 2}, 2);
  EXPECT_TRUE(a.IsSubsetOf(b));
  EXPECT_FALSE(b.IsSubsetOf(a));
  EXPECT_TRUE(ModelSet(2).IsSubsetOf(a));
  EXPECT_TRUE(a.IsSubsetOf(a));
}

TEST(ModelSetTest, ToFormulaRoundTrip) {
  Rng rng(23);
  for (int i = 0; i < 30; ++i) {
    std::vector<uint64_t> masks;
    for (uint64_t m = 0; m < 8; ++m) {
      if (rng.NextBool(0.5)) masks.push_back(m);
    }
    ModelSet s = ModelSet::FromMasks(masks, 3);
    EXPECT_EQ(ModelSet::FromFormula(s.ToFormula(), 3), s);
  }
}

TEST(ModelSetTest, ToStringWithVocabulary) {
  auto v = Vocabulary::FromNames({"S", "D"}).ValueOrDie();
  ModelSet s = ModelSet::FromMasks({0b00, 0b11}, 2);
  EXPECT_EQ(s.ToString(v), "{{}, {S, D}}");
}

TEST(ModelSetTest, RejectsMaskOutsideVocabulary) {
  EXPECT_DEATH(ModelSet::FromMasks({4}, 2), "mask outside vocabulary");
}

TEST(ModelSetTest, VocabularyMismatchChecks) {
  ModelSet a(2), b(3);
  EXPECT_DEATH(a.Union(b), "");
}

}  // namespace
}  // namespace arbiter
