#include "lint/diagnostic.h"

#include <algorithm>
#include <tuple>

#include "util/version.h"

namespace arbiter::lint {

namespace {

/// Total order used by NormalizeDiagnostics: location first so renders
/// read in source order, then check id, then the remaining fields so
/// exact duplicates become adjacent.
auto SortKey(const Diagnostic& d) {
  return std::tie(d.file, d.line, d.col, d.check_id, d.severity, d.message,
                  d.note, d.certified);
}

}  // namespace

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          out += "\\u00";
          out += hex[(c >> 4) & 0xF];
          out += hex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

const char* SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

bool Diagnostic::operator==(const Diagnostic& other) const {
  return file == other.file && line == other.line && col == other.col &&
         severity == other.severity && check_id == other.check_id &&
         message == other.message && note == other.note &&
         fixits == other.fixits && certified == other.certified;
}

std::string Diagnostic::ToString() const {
  std::string out = file + ":" + std::to_string(line) + ":" +
                    std::to_string(col) + ": " + SeverityName(severity) +
                    ": " + message + " [" + check_id + "]";
  if (!note.empty()) out += "\n  note: " + note;
  return out;
}

std::string RenderText(const std::vector<Diagnostic>& diagnostics) {
  std::string out;
  for (const Diagnostic& d : diagnostics) {
    out += d.ToString();
    out += "\n";
  }
  return out;
}

std::string RenderJson(const std::vector<Diagnostic>& diagnostics) {
  std::string out = "[";
  for (size_t i = 0; i < diagnostics.size(); ++i) {
    const Diagnostic& d = diagnostics[i];
    if (i > 0) out += ",";
    out += "\n  {\"file\": \"" + JsonEscape(d.file) + "\"";
    out += ", \"line\": " + std::to_string(d.line);
    out += ", \"col\": " + std::to_string(d.col);
    out += std::string(", \"severity\": \"") + SeverityName(d.severity) +
           "\"";
    out += ", \"check_id\": \"" + JsonEscape(d.check_id) + "\"";
    out += ", \"message\": \"" + JsonEscape(d.message) + "\"";
    out += ", \"note\": \"" + JsonEscape(d.note) + "\"";
    out += ", \"fixits\": [";
    for (size_t j = 0; j < d.fixits.size(); ++j) {
      const FixIt& f = d.fixits[j];
      if (j > 0) out += ", ";
      out += "{\"offset\": " + std::to_string(f.offset) +
             ", \"length\": " + std::to_string(f.length) +
             ", \"replacement\": \"" + JsonEscape(f.replacement) + "\"}";
    }
    out += "]";
    if (d.certified != -1) {
      out += std::string(", \"certified\": ") +
             (d.certified == 1 ? "true" : "false");
    }
    out += "}";
  }
  out += diagnostics.empty() ? "]" : "\n]";
  out += "\n";
  return out;
}

std::string RenderJsonReport(const std::vector<Diagnostic>& diagnostics) {
  std::string out = "{\n";
  out += "\"tool\": {\"name\": \"arblint\", \"version\": \"";
  out += JsonEscape(kArblintVersion);
  out += "\", \"solver\": \"";
  out += JsonEscape(kSolverVersion);
  out += "\"},\n\"diagnostics\": ";
  out += RenderJson(diagnostics);
  out += "}\n";
  return out;
}

void NormalizeDiagnostics(std::vector<Diagnostic>* diagnostics) {
  std::stable_sort(diagnostics->begin(), diagnostics->end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     return SortKey(a) < SortKey(b);
                   });
  diagnostics->erase(
      std::unique(diagnostics->begin(), diagnostics->end()),
      diagnostics->end());
}

std::string ApplyFixIts(const std::string& text,
                        const std::vector<Diagnostic>& diagnostics,
                        int* applied, int* skipped) {
  std::vector<FixIt> edits;
  for (const Diagnostic& d : diagnostics) {
    for (const FixIt& f : d.fixits) {
      if (f.offset > text.size() || f.offset + f.length > text.size()) {
        continue;  // stale edit; never apply out of range
      }
      edits.push_back(f);
    }
  }
  std::sort(edits.begin(), edits.end(),
            [](const FixIt& a, const FixIt& b) {
              return std::tie(a.offset, a.length, a.replacement) <
                     std::tie(b.offset, b.length, b.replacement);
            });
  edits.erase(std::unique(edits.begin(), edits.end()), edits.end());

  int n_applied = 0;
  int n_skipped = 0;
  std::string out;
  out.reserve(text.size());
  size_t cursor = 0;
  for (const FixIt& f : edits) {
    if (f.offset < cursor) {
      ++n_skipped;  // overlaps an already-accepted edit
      continue;
    }
    out.append(text, cursor, f.offset - cursor);
    out += f.replacement;
    cursor = f.offset + f.length;
    ++n_applied;
  }
  out.append(text, cursor, text.size() - cursor);
  if (applied != nullptr) *applied = n_applied;
  if (skipped != nullptr) *skipped = n_skipped;
  return out;
}

Severity MaxSeverity(const std::vector<Diagnostic>& diagnostics) {
  Severity max = Severity::kNote;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity > max) max = d.severity;
  }
  return max;
}

int CountAtSeverity(const std::vector<Diagnostic>& diagnostics,
                    Severity severity) {
  int count = 0;
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == severity) ++count;
  }
  return count;
}

}  // namespace arbiter::lint
