#ifndef ARBITER_SAT_CNF_H_
#define ARBITER_SAT_CNF_H_

#include <utility>
#include <vector>

#include "sat/types.h"

/// \file cnf.h
/// ClauseSink: the minimal variable/clause interface shared by the CDCL
/// solver and the plain clause container below.  Encoders (Tseitin,
/// cardinality) target this interface, so the same clausification can
/// feed either a search engine or an analysis pass that needs to *hold*
/// the clauses — the model counter in sat/count.h, for example, which
/// the solver cannot serve because it enqueues level-0 units instead of
/// storing them.

namespace arbiter::sat {

/// Anything that accepts fresh variables and clauses.
class ClauseSink {
 public:
  virtual ~ClauseSink() = default;

  /// Creates a fresh variable and returns it.
  virtual Var NewVar() = 0;

  /// Number of variables created so far.
  virtual int NumVars() const = 0;

  /// Adds a clause (disjunction of literals).  Returns false if the
  /// sink became trivially unsatisfiable.
  virtual bool AddClause(std::vector<Lit> lits) = 0;

  /// Convenience single/double/triple literal forwarders.
  bool AddUnit(Lit a) { return AddClause({a}); }
  bool AddBinary(Lit a, Lit b) { return AddClause({a, b}); }
  bool AddTernary(Lit a, Lit b, Lit c) { return AddClause({a, b, c}); }
};

/// A CNF formula as plain data: a variable count plus a clause list.
/// Unlike Solver, every added clause (including units) stays visible,
/// which is what the counting backend's component decomposition needs.
class CnfFormula : public ClauseSink {
 public:
  Var NewVar() override { return num_vars_++; }
  int NumVars() const override { return num_vars_; }

  bool AddClause(std::vector<Lit> lits) override {
    if (lits.empty()) contradiction_ = true;
    clauses_.push_back(std::move(lits));
    return !contradiction_;
  }

  const std::vector<std::vector<Lit>>& clauses() const { return clauses_; }

  /// True iff an empty clause was added.
  bool contradiction() const { return contradiction_; }

 private:
  int num_vars_ = 0;
  bool contradiction_ = false;
  std::vector<std::vector<Lit>> clauses_;
};

}  // namespace arbiter::sat

#endif  // ARBITER_SAT_CNF_H_
