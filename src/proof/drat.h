#ifndef ARBITER_PROOF_DRAT_H_
#define ARBITER_PROOF_DRAT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "proof/proof_log.h"
#include "util/status.h"

/// \file drat.h
/// Standard DRAT serialization of proof steps, in both interchange
/// formats (docs/PROOFS.md documents the choices):
///
///  * **ASCII** — one step per line; deletions are prefixed `d `,
///    literals are 1-based signed DIMACS integers, each step ends in
///    `0`.  This is the drat-trim text format.
///  * **Binary** — each step starts with byte 'a' (0x61, addition) or
///    'd' (0x64, deletion) followed by the literals as variable-byte
///    encoded unsigned integers `(var+1)*2 + sign` (7 data bits per
///    byte, high bit = continuation), terminated by a 0 byte.  This is
///    the drat-trim binary format.
///
/// Parsers accept exactly what the writers produce plus whitespace
/// slack in ASCII; `DetectDratBinary` applies the drat-trim heuristic
/// so `tools/arbproof` can autodetect the format.

namespace arbiter::proof {

/// Serializes steps as ASCII DRAT.
std::string ToDratAscii(const std::vector<ProofStep>& steps);

/// Serializes steps as binary DRAT.
std::string ToDratBinary(const std::vector<ProofStep>& steps);

/// Parses ASCII DRAT.  Fails on malformed literals or a truncated
/// final step.
Result<std::vector<ProofStep>> ParseDratAscii(const std::string& text);

/// Parses binary DRAT.  Fails on an unknown step tag, a truncated
/// varint, or a missing terminator.
Result<std::vector<ProofStep>> ParseDratBinary(const std::string& bytes);

/// True iff `bytes` looks like *binary* DRAT: the first step tag is
/// 'a'/'d' followed by data that cannot start an ASCII proof line
/// (binary literal bytes for variable 1+ are >= 2 and either have the
/// high bit set or fall outside "[-d0-9 \n]").
bool DetectDratBinary(const std::string& bytes);

/// Parses either format, autodetecting via DetectDratBinary.
Result<std::vector<ProofStep>> ParseDrat(const std::string& bytes);

/// Streaming ProofLog that serializes each step into an owned buffer
/// as it arrives (ASCII or binary).  Used by `arbproof --solve --emit`
/// and anywhere the full in-memory step list is not wanted.
class DratWriter : public ProofLog {
 public:
  explicit DratWriter(bool binary) : binary_(binary) {}

  void OnAdd(const std::vector<sat::Lit>& lits) override {
    Append(false, lits);
  }
  void OnDelete(const std::vector<sat::Lit>& lits) override {
    Append(true, lits);
  }

  const std::string& data() const { return data_; }

 private:
  void Append(bool is_delete, const std::vector<sat::Lit>& lits);

  bool binary_;
  std::string data_;
};

}  // namespace arbiter::proof

#endif  // ARBITER_PROOF_DRAT_H_
