#ifndef ARBITER_MODEL_DISTANCE_H_
#define ARBITER_MODEL_DISTANCE_H_

#include <cstdint>

#include "model/model_set.h"
#include "util/bit.h"

/// \file distance.h
/// The distance measures of the paper:
///
///  * dist(I, J)   — Dalal's Hamming distance |I Δ J| (Section 2);
///  * dist(ψ, I)   — min over Mod(ψ) (Dalal; used by revision);
///  * odist(ψ, I)  — max over Mod(ψ) (Revesz; used by model-fitting,
///                   Section 3);
///  * sdist(ψ, I)  — sum over Mod(ψ) (the unweighted instance of
///                   wdist from Section 4, i.e. every model weight 1).

namespace arbiter {

/// Dalal's distance between two interpretations.
inline int Dist(uint64_t a, uint64_t b) { return PopCount(a ^ b); }

/// dist(ψ, I) = min_{J ∈ Mod(ψ)} dist(I, J).  Requires psi nonempty.
int MinDist(const ModelSet& psi, uint64_t interpretation);

/// odist(ψ, I) = max_{J ∈ Mod(ψ)} dist(I, J).  Requires psi nonempty.
int OverallDist(const ModelSet& psi, uint64_t interpretation);

/// Σ_{J ∈ Mod(ψ)} dist(I, J): wdist with unit weights.
int64_t SumDist(const ModelSet& psi, uint64_t interpretation);

}  // namespace arbiter

#endif  // ARBITER_MODEL_DISTANCE_H_
