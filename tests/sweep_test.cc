// Parameterized property sweeps across vocabulary sizes and seeds:
// cross-operator invariants that must hold on every random instance.

#include <gtest/gtest.h>

#include "change/fitting.h"
#include "change/merge.h"
#include "change/registry.h"
#include "change/revision.h"
#include "change/update.h"
#include "model/distance.h"
#include "solve/dalal_sat.h"
#include "solve/satoh_sat.h"
#include "util/random.h"

namespace arbiter {
namespace {

struct SweepParams {
  int num_terms;
  uint64_t seed;
};

void PrintTo(const SweepParams& p, std::ostream* os) {
  *os << "n" << p.num_terms << "_seed" << p.seed;
}

class OperatorSweepTest : public ::testing::TestWithParam<SweepParams> {
 protected:
  ModelSet RandomKb(Rng* rng, double density) {
    const int n = GetParam().num_terms;
    std::vector<uint64_t> masks;
    for (uint64_t m = 0; m < (1ULL << n); ++m) {
      if (rng->NextBool(density)) masks.push_back(m);
    }
    return ModelSet::FromMasks(std::move(masks), n);
  }
};

TEST_P(OperatorSweepTest, SuccessConsistencyAndSyntaxFreedom) {
  Rng rng(GetParam().seed);
  auto ops = AllOperators();
  for (int round = 0; round < 25; ++round) {
    ModelSet psi = RandomKb(&rng, 0.35);
    ModelSet mu = RandomKb(&rng, 0.35);
    for (const auto& op : ops) {
      ModelSet result = op->Change(psi, mu);
      // Determinism / syntax irrelevance at the semantic level.
      EXPECT_EQ(result, op->Change(psi, mu)) << op->name();
      if (op->family() == OperatorFamily::kRevision ||
          op->family() == OperatorFamily::kUpdate ||
          op->family() == OperatorFamily::kModelFitting) {
        EXPECT_TRUE(result.IsSubsetOf(mu)) << op->name();  // success
      }
      if (!psi.empty() && !mu.empty()) {
        EXPECT_FALSE(result.empty()) << op->name();  // consistency
      }
    }
  }
}

TEST_P(OperatorSweepTest, RevisionRefinementChain) {
  // On every instance: dalal ⊆ satoh ⊆ weber (cardinality-minimal
  // diffs are inclusion-minimal; Weber coarsens Satoh).
  Rng rng(GetParam().seed ^ 0x5555);
  DalalRevision dalal;
  SatohRevision satoh;
  WeberRevision weber;
  for (int round = 0; round < 25; ++round) {
    ModelSet psi = RandomKb(&rng, 0.3);
    ModelSet mu = RandomKb(&rng, 0.3);
    ModelSet d = dalal.Change(psi, mu);
    ModelSet s = satoh.Change(psi, mu);
    ModelSet w = weber.Change(psi, mu);
    EXPECT_TRUE(d.IsSubsetOf(s)) << "round " << round;
    EXPECT_TRUE(s.IsSubsetOf(w)) << "round " << round;
  }
}

TEST_P(OperatorSweepTest, ConsistentCaseCollapsesForRevisions) {
  // Whenever psi & mu is satisfiable, every R2-operator returns it.
  Rng rng(GetParam().seed ^ 0xAAAA);
  for (int round = 0; round < 25; ++round) {
    ModelSet psi = RandomKb(&rng, 0.5);
    ModelSet mu = RandomKb(&rng, 0.5);
    ModelSet both = psi.Intersect(mu);
    if (both.empty()) continue;
    for (const char* name : {"dalal", "satoh", "weber", "borgida"}) {
      EXPECT_EQ(MakeOperator(name).ValueOrDie()->Change(psi, mu), both)
          << name;
    }
  }
}

TEST_P(OperatorSweepTest, FittingEqualsRevisionOnSingletonPsi) {
  // With one voice, overall distance == distance: the paper's fitting
  // collapses to Dalal revision.
  Rng rng(GetParam().seed ^ 0x1234);
  DalalRevision dalal;
  MaxFitting fitting;
  SumFitting sum;
  const int n = GetParam().num_terms;
  for (int round = 0; round < 25; ++round) {
    ModelSet psi = ModelSet::Singleton(rng.NextBelow(1ULL << n), n);
    ModelSet mu = RandomKb(&rng, 0.4);
    EXPECT_EQ(fitting.Change(psi, mu), dalal.Change(psi, mu)) << round;
    EXPECT_EQ(sum.Change(psi, mu), dalal.Change(psi, mu)) << round;
  }
}

TEST_P(OperatorSweepTest, UpdateOnSingletonPsiEqualsRevision) {
  // KM: on complete knowledge bases, update and revision coincide
  // (per distance notion: Forbus/Dalal and Winslett/Borgida).
  Rng rng(GetParam().seed ^ 0x9876);
  const int n = GetParam().num_terms;
  for (int round = 0; round < 25; ++round) {
    ModelSet psi = ModelSet::Singleton(rng.NextBelow(1ULL << n), n);
    ModelSet mu = RandomKb(&rng, 0.4);
    if (mu.empty()) continue;
    EXPECT_EQ(ForbusUpdate().Change(psi, mu),
              DalalRevision().Change(psi, mu));
    if (psi.Intersect(mu).empty()) {
      EXPECT_EQ(WinslettUpdate().Change(psi, mu),
                BorgidaRevision().Change(psi, mu));
    }
  }
}

TEST_P(OperatorSweepTest, SatBackedOperatorsAgreeWithEnumeration) {
  Rng rng(GetParam().seed ^ 0x7777);
  const int n = GetParam().num_terms;
  DalalRevision dalal;
  SatohRevision satoh;
  for (int round = 0; round < 8; ++round) {
    ModelSet psi = RandomKb(&rng, 0.3);
    ModelSet mu = RandomKb(&rng, 0.3);
    Formula fpsi = psi.ToFormula();
    Formula fmu = mu.ToFormula();
    EXPECT_EQ(ModelSet::FromMasks(
                  solve::SatDalalRevise(fpsi, fmu, n).models, n),
              dalal.Change(psi, mu))
        << round;
    EXPECT_EQ(ModelSet::FromMasks(
                  solve::SatSatohRevise(fpsi, fmu, n).models, n),
              satoh.Change(psi, mu))
        << round;
  }
}

TEST_P(OperatorSweepTest, MergeGmaxDominatedByMaxValue) {
  // GMax refines max: its winners always achieve the optimal max.
  Rng rng(GetParam().seed ^ 0x3141);
  for (int round = 0; round < 15; ++round) {
    std::vector<ModelSet> sources;
    for (int s = 0; s < 3; ++s) {
      ModelSet src = RandomKb(&rng, 0.3);
      if (!src.empty()) sources.push_back(src);
    }
    if (sources.empty()) continue;
    ModelSet gmax = Merge(sources, MergeAggregate::kGMax);
    ModelSet maxm = Merge(sources, MergeAggregate::kMax);
    EXPECT_TRUE(gmax.IsSubsetOf(maxm)) << "round " << round;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OperatorSweepTest,
    ::testing::Values(SweepParams{2, 1}, SweepParams{2, 2},
                      SweepParams{3, 1}, SweepParams{3, 2},
                      SweepParams{3, 3}, SweepParams{4, 1},
                      SweepParams{4, 2}, SweepParams{5, 1}));

}  // namespace
}  // namespace arbiter
