// Executable Theorem 3.1: run the proof's pre-order construction on
// concrete operators and verify (or pinpoint the failure of) each step.

#include "postulates/representation.h"

#include <gtest/gtest.h>

#include "change/fitting.h"
#include "change/registry.h"
#include "model/distance.h"
#include "model/distance_semantics.h"
#include "model/loyal.h"

namespace arbiter {
namespace {

TEST(RepresentationTest, LexFittingIsAFullModelFittingOperator) {
  // The positive control satisfies (A1)-(A8); Theorem 3.1 promises the
  // derived assignment passes every step.
  for (int n = 2; n <= 3; ++n) {
    RepresentationReport report =
        CheckRepresentation(MakeOperator("lex-fitting").ValueOrDie(), n);
    EXPECT_TRUE(report.preorders_total) << report.detail;
    EXPECT_TRUE(report.preorders_transitive) << report.detail;
    EXPECT_TRUE(report.assignment_loyal) << report.detail;
    EXPECT_TRUE(report.representation_exact) << report.detail;
    EXPECT_TRUE(report.IsModelFitting());
  }
}

TEST(RepresentationTest, ReveszMaxRepresentableButNotLoyal) {
  // The paper's operator: the derived relation IS the odist pre-order
  // and reproduces the operator exactly (steps 1 and 3 pass), but the
  // assignment is not loyal (step 2 fails) — precisely the (A8) gap.
  RepresentationReport report =
      CheckRepresentation(MakeOperator("revesz-max").ValueOrDie(), 3);
  EXPECT_TRUE(report.preorders_total);
  EXPECT_TRUE(report.preorders_transitive);
  EXPECT_TRUE(report.representation_exact);
  EXPECT_FALSE(report.assignment_loyal);
  ASSERT_TRUE(report.loyalty_violation.has_value());
  EXPECT_EQ(report.loyalty_violation->condition, 2);
  EXPECT_FALSE(report.IsModelFitting());
}

TEST(RepresentationTest, ReveszSumSameShapeAsMax) {
  RepresentationReport report =
      CheckRepresentation(MakeOperator("revesz-sum").ValueOrDie(), 2);
  EXPECT_TRUE(report.preorders_total);
  EXPECT_TRUE(report.preorders_transitive);
  EXPECT_TRUE(report.representation_exact);
  EXPECT_FALSE(report.assignment_loyal);
}

TEST(RepresentationTest, DalalIsMinRepresentableButNotLoyal) {
  // Dalal is a *faithful*-assignment revision operator: the same
  // construction recovers its min-distance pre-order and reproduces
  // the operator, but loyalty (the model-fitting condition) fails.
  RepresentationReport report =
      CheckRepresentation(MakeOperator("dalal").ValueOrDie(), 2);
  EXPECT_TRUE(report.preorders_total);
  EXPECT_TRUE(report.preorders_transitive);
  EXPECT_TRUE(report.representation_exact);
  EXPECT_FALSE(report.assignment_loyal);
}

TEST(RepresentationTest, WinslettIsNotPointwiseRepresentable) {
  // Updates change each model independently; no single pre-order per ψ
  // can reproduce them (step 3 must fail when |Mod(ψ)| > 1).
  RepresentationReport report =
      CheckRepresentation(MakeOperator("winslett").ValueOrDie(), 2);
  EXPECT_FALSE(report.representation_exact);
  EXPECT_FALSE(report.IsModelFitting());
  EXPECT_FALSE(report.detail.empty());
}

TEST(DeriveRelationTest, MatchesOdistOrderForMaxFitting) {
  auto op = MakeOperator("revesz-max").ValueOrDie();
  ModelSet psi = ModelSet::FromMasks({0b001, 0b010, 0b111}, 3);
  DerivedRelation rel = DeriveRelation(*op, psi);
  EXPECT_TRUE(rel.Total());
  EXPECT_TRUE(rel.Reflexive());
  EXPECT_TRUE(rel.Transitive());
  for (uint64_t i = 0; i < 8; ++i) {
    for (uint64_t j = 0; j < 8; ++j) {
      EXPECT_EQ(rel.leq[i][j],
                OverallDist(psi, i) <= OverallDist(psi, j))
          << i << " vs " << j;
    }
  }
}

// --- Parametric over the distance-semantics family ---------------------
//
// Theorem 3.1's construction is not specific to odist: any operator
// that is an argmin of a per-psi total pre-order must survive steps 1
// (totality/transitivity) and 3 (exact reproduction).  Run the checker
// across metric x aggregator combinations, and require the derived
// relation to coincide with the semantics' own pre-order.

struct SemanticsCase {
  std::string label;
  DistanceSemantics semantics;
};

class SemanticsRepresentation
    : public ::testing::TestWithParam<SemanticsCase> {};

TEST_P(SemanticsRepresentation, ConstructionRecoversThePreorder) {
  const SemanticsCase& c = GetParam();
  auto op = MakeFittingOperator(c.semantics, c.label);
  for (int n = 2; n <= 3; ++n) {
    RepresentationReport report = CheckRepresentation(op, n);
    EXPECT_TRUE(report.preorders_total) << report.detail;
    EXPECT_TRUE(report.preorders_transitive) << report.detail;
    EXPECT_TRUE(report.representation_exact) << report.detail;
  }
  // The derived relation is exactly the semantics' pre-order.
  const int n = 3;
  ModelSet psi = ModelSet::FromMasks({0b001, 0b010, 0b111}, n);
  DerivedRelation rel = DeriveRelation(*op, psi);
  TotalPreorder expected = SemanticsPreorder(c.semantics, psi);
  for (uint64_t i = 0; i < 8; ++i) {
    for (uint64_t j = 0; j < 8; ++j) {
      EXPECT_EQ(rel.leq[i][j], expected.Leq(i, j))
          << c.label << ": " << i << " vs " << j;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    DistanceSemanticsFamily, SemanticsRepresentation,
    ::testing::Values(
        SemanticsCase{"min_dalal", MinSemantics()},
        SemanticsCase{"max_dalal", MaxSemantics()},
        SemanticsCase{"sum_dalal", SumSemantics()},
        SemanticsCase{"min_weighted", MinSemantics({2, 1, 3})},
        SemanticsCase{"max_weighted", MaxSemantics({2, 1, 3})},
        SemanticsCase{"sum_weighted", SumSemantics({2, 1, 3})}),
    [](const ::testing::TestParamInfo<SemanticsCase>& info) {
      return info.param.label;
    });

TEST(DeriveRelationTest, MinOfUsesStrictDomination) {
  auto op = MakeOperator("revesz-max").ValueOrDie();
  ModelSet psi = ModelSet::FromMasks({0b00}, 2);
  DerivedRelation rel = DeriveRelation(*op, psi);
  // Min over the full space w.r.t. distance-from-00 is {00}.
  EXPECT_EQ(rel.MinOf(ModelSet::Full(2)),
            ModelSet::FromMasks({0b00}, 2));
  // Min of an empty set is empty.
  EXPECT_TRUE(rel.MinOf(ModelSet(2)).empty());
}

}  // namespace
}  // namespace arbiter
