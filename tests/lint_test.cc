// Tests for the arblint diagnostics engine and static analyzers:
// the check registry, renderers, script/DIMACS/wkb checks, and the
// RunScript lint hook.

#include "lint/lint.h"

#include <gtest/gtest.h>

#include <set>

#include "kb/weighted_kb_io.h"
#include "lint/sarif.h"
#include "proof/certify.h"
#include "store/belief_store.h"
#include "util/version.h"

namespace arbiter::lint {
namespace {

bool Has(const std::vector<Diagnostic>& diags, int line,
         const std::string& check_id) {
  for (const Diagnostic& d : diags) {
    if (d.line == line && d.check_id == check_id) return true;
  }
  return false;
}

int Errors(const std::vector<Diagnostic>& diags) {
  return CountAtSeverity(diags, Severity::kError);
}

std::vector<Diagnostic> LintScript(const std::string& text,
                                   const LintOptions& options = {}) {
  return LintScriptText("test.belief", text, options);
}

TEST(LintRegistryTest, RegistryIsWellFormed) {
  const std::vector<CheckInfo>& checks = AllChecks();
  EXPECT_GE(checks.size(), 35u);
  std::set<std::string> ids;
  int flow_checks = 0;
  for (const CheckInfo& info : checks) {
    EXPECT_TRUE(ids.insert(info.id).second) << "duplicate id " << info.id;
    EXPECT_EQ(FindCheck(info.id), &info);
    const std::string id = info.id;
    EXPECT_TRUE(id.rfind("script/", 0) == 0 || id.rfind("dimacs/", 0) == 0 ||
                id.rfind("wkb/", 0) == 0 || id.rfind("flow/", 0) == 0)
        << id;
    if (id.rfind("flow/", 0) == 0) ++flow_checks;
  }
  EXPECT_EQ(flow_checks, 6);
  EXPECT_EQ(FindCheck("script/no-such-check"), nullptr);
}

TEST(LintRegistryTest, InputKindForPath) {
  EXPECT_EQ(*InputKindForPath("a/b/jury.belief"), InputKind::kBeliefScript);
  EXPECT_EQ(*InputKindForPath("a/b/jury.Belief"), InputKind::kBeliefScript);
  EXPECT_EQ(*InputKindForPath("kb.cnf"), InputKind::kDimacsCnf);
  EXPECT_EQ(*InputKindForPath("kb.CNF"), InputKind::kDimacsCnf);
  EXPECT_EQ(*InputKindForPath("KB.DIMACS"), InputKind::kDimacsCnf);
  EXPECT_EQ(*InputKindForPath("base.wkb"), InputKind::kWeightedKb);
  EXPECT_FALSE(InputKindForPath("README.md").ok());
  EXPECT_FALSE(InputKindForPath("no_extension").ok());
}

TEST(DiagnosticTest, ToStringAndRenderText) {
  Diagnostic d;
  d.file = "x.belief";
  d.line = 3;
  d.col = 7;
  d.severity = Severity::kError;
  d.check_id = "script/use-before-define";
  d.message = "base 'b' is used before any define";
  d.note = "add a define first";
  const std::string s = d.ToString();
  EXPECT_NE(s.find("x.belief:3:7: error:"), std::string::npos) << s;
  EXPECT_NE(s.find("[script/use-before-define]"), std::string::npos) << s;
  EXPECT_NE(s.find("note: add a define first"), std::string::npos) << s;
  EXPECT_NE(RenderText({d}).find(s), std::string::npos);
}

TEST(DiagnosticTest, RenderJsonEscapesAndShapes) {
  Diagnostic d;
  d.file = "a\"b.belief";
  d.line = 1;
  d.severity = Severity::kWarning;
  d.check_id = "script/redefine";
  d.message = "tab\there\nnewline";
  const std::string json = RenderJson({d});
  EXPECT_NE(json.find("\"file\": \"a\\\"b.belief\""), std::string::npos)
      << json;
  EXPECT_NE(json.find("tab\\there\\nnewline"), std::string::npos) << json;
  EXPECT_NE(json.find("\"severity\": \"warning\""), std::string::npos);
  EXPECT_EQ(RenderJson({}), "[]\n");
}

TEST(DiagnosticTest, SeverityAggregation) {
  Diagnostic note, warn, err;
  note.severity = Severity::kNote;
  warn.severity = Severity::kWarning;
  err.severity = Severity::kError;
  EXPECT_EQ(MaxSeverity({}), Severity::kNote);
  EXPECT_EQ(MaxSeverity({note, warn}), Severity::kWarning);
  EXPECT_EQ(MaxSeverity({warn, err, note}), Severity::kError);
  EXPECT_EQ(CountAtSeverity({warn, err, warn}, Severity::kWarning), 2);
}

TEST(ScriptLintTest, CleanScriptHasNoDiagnostics) {
  // Both assertions are statically decided (the base formula is exact
  // throughout), so the dataflow layer adds notes; nothing may warn or
  // error.
  const auto diags = LintScript(
      "define jury := g & a & (g & a -> v)\n"
      "assert jury entails v\n"
      "change jury by dalal with !v\n"
      "undo jury\n"
      "if jury entails g then assert jury consistent-with a\n");
  for (const Diagnostic& d : diags) {
    EXPECT_EQ(d.severity, Severity::kNote) << d.ToString();
    EXPECT_EQ(d.check_id, "flow/assert-passes") << d.ToString();
  }
  LintOptions off;
  off.enable_dataflow = false;
  EXPECT_TRUE(LintScript(
                  "define jury := g & a & (g & a -> v)\n"
                  "assert jury entails v\n"
                  "change jury by dalal with !v\n"
                  "undo jury\n"
                  "if jury entails g then assert jury consistent-with a\n",
                  off)
                  .empty());
}

TEST(ScriptLintTest, UseBeforeDefine) {
  const auto diags = LintScript("change b by dalal with x\n");
  EXPECT_TRUE(Has(diags, 1, "script/use-before-define"))
      << RenderText(diags);
}

TEST(ScriptLintTest, RecoversAndReportsMultipleErrors) {
  const auto diags = LintScript(
      "bogus statement\n"
      "define kb := a & &\n"
      "undo kb\n");
  EXPECT_TRUE(Has(diags, 1, "script/syntax")) << RenderText(diags);
  EXPECT_TRUE(Has(diags, 2, "script/formula-syntax"));
  // kb counts as defined despite its broken formula, so the undo is
  // flagged as empty-history, not use-before-define.
  EXPECT_TRUE(Has(diags, 3, "script/undo-empty"));
}

TEST(ScriptLintTest, UndoDepthTracksChangesAndRedefines) {
  const auto diags = LintScript(
      "define kb := a\n"
      "change kb by dalal with b\n"
      "undo kb\n"
      "undo kb\n"
      "change kb by dalal with b\n"
      "define kb := c\n"
      "undo kb\n");
  EXPECT_FALSE(Has(diags, 3, "script/undo-empty")) << RenderText(diags);
  EXPECT_TRUE(Has(diags, 4, "script/undo-empty"));
  EXPECT_TRUE(Has(diags, 6, "script/redefine"));
  EXPECT_TRUE(Has(diags, 7, "script/undo-empty"))
      << "redefinition clears history";
}

TEST(ScriptLintTest, GuardedChangeMakesUndoDepthInexact) {
  // The single-statement pass cannot prove the final undo hits an
  // empty history and must stay quiet.  The dataflow layer, however,
  // decides the guard (a | b never entails a), proves the change dead
  // and the undo empty on every path, and reports both.
  const auto diags = LintScript(
      "define kb := a | b\n"
      "if kb entails a then change kb by dalal with b\n"
      "undo kb\n");
  EXPECT_FALSE(Has(diags, 3, "script/undo-empty")) << RenderText(diags);
  EXPECT_TRUE(Has(diags, 2, "flow/unreachable"));
  EXPECT_TRUE(Has(diags, 3, "flow/undo-empty"));
}

TEST(ScriptLintTest, GuardedUndoAtProvablyEmptyHistoryIsFlagged) {
  // Whenever the guard holds, this undo fails at runtime; flag it.
  const auto diags = LintScript(
      "define kb := a\n"
      "if kb entails a then undo kb\n");
  EXPECT_TRUE(Has(diags, 2, "script/undo-empty")) << RenderText(diags);
}

TEST(ScriptLintTest, UnknownOperator) {
  const auto diags = LintScript(
      "define kb := a\n"
      "change kb by dallal with b\n");
  EXPECT_TRUE(Has(diags, 2, "script/unknown-operator"))
      << RenderText(diags);
}

TEST(ScriptLintTest, DegenerateFormulaWarnings) {
  const auto diags = LintScript(
      "define kb := a & !a\n"
      "define phi := p\n"
      "change phi by dalal with q & !q\n"
      "assert phi entails p | !p\n"
      "assert phi consistent-with q & !q\n"
      "if phi entails p | !p then assert phi entails p\n"
      "if phi entails p & !p then assert phi entails p\n");
  EXPECT_TRUE(Has(diags, 1, "script/unsat-define")) << RenderText(diags);
  EXPECT_TRUE(Has(diags, 3, "script/unsat-evidence"));
  EXPECT_TRUE(Has(diags, 4, "script/trivial-assert"));
  EXPECT_TRUE(Has(diags, 5, "script/trivial-assert"));
  EXPECT_TRUE(Has(diags, 6, "script/guard-tautology"));
  EXPECT_TRUE(Has(diags, 7, "script/guard-unsat"));
  EXPECT_EQ(Errors(diags), 0) << "all of these are warnings";
}

TEST(ScriptLintTest, VacuousChangeOnlyForRevisionAndUpdate) {
  const auto diags = LintScript(
      "define kb := a & b\n"
      "change kb by dalal with a\n"
      "change kb by winslett with b\n"
      "define chi := (s | d) & (!s | !d)\n"
      "change chi by revesz-max with s | d\n"
      "change chi by arbitration-max with s | d\n");
  EXPECT_TRUE(Has(diags, 2, "script/vacuous-change")) << RenderText(diags);
  EXPECT_TRUE(Has(diags, 3, "script/vacuous-change"));
  // Model fitting is loyal to all of Mod(chi) and genuinely moves even
  // when the evidence is entailed (paper, Example 3.1); arbitration
  // likewise.  Neither may be flagged.
  EXPECT_FALSE(Has(diags, 5, "script/vacuous-change"));
  EXPECT_FALSE(Has(diags, 6, "script/vacuous-change"));
}

TEST(ScriptLintTest, TrackedFormulaSurvivesUndo) {
  // After undo, the base is provably back to its pre-change formula,
  // so a revision with entailed evidence is again a provable no-op.
  const auto diags = LintScript(
      "define kb := a & b\n"
      "change kb by dalal with !a\n"
      "undo kb\n"
      "change kb by dalal with a\n");
  EXPECT_TRUE(Has(diags, 4, "script/vacuous-change")) << RenderText(diags);
}

TEST(ScriptLintTest, UnconstrainedAtom) {
  const auto diags = LintScript(
      "define kb := a\n"
      "assert kb entails mystery\n"
      "assert kb entails mystery\n");
  EXPECT_TRUE(Has(diags, 2, "script/unconstrained-atom"))
      << RenderText(diags);
  int count = 0;
  for (const Diagnostic& d : diags) {
    if (d.check_id == "script/unconstrained-atom") ++count;
  }
  EXPECT_EQ(count, 1) << "one diagnostic per atom, at its first use";
}

TEST(ScriptLintTest, CapacityMatchesRuntimeLimit) {
  std::string define = "define kb := a0";
  for (int i = 1; i < kMaxEnumTerms; ++i) {
    define += " | a" + std::to_string(i);
  }
  // Exactly at the limit: fine.
  EXPECT_EQ(Errors(LintScript(define + "\n")), 0);
  // One more atom pushes past it, exactly where the store rejects.
  const auto diags =
      LintScript(define + "\nchange kb by dalal with a_extra\n");
  EXPECT_TRUE(Has(diags, 2, "script/capacity")) << RenderText(diags);

  BeliefStore store;
  EXPECT_TRUE(store.Define("kb", define.substr(define.find(":=") + 3)).ok());
  EXPECT_FALSE(store.Apply("kb", "dalal", "a_extra").ok());
}

TEST(ScriptLintTest, DisabledChecksAreSuppressed) {
  LintOptions options;
  options.disabled_checks.push_back("script/use-before-define");
  const auto diags = LintScript("undo ghost\n", options);
  EXPECT_TRUE(diags.empty()) << RenderText(diags);
}

TEST(ScriptLintTest, HookAttachesFindingsToSteps) {
  const std::string text =
      "define kb := a\n"
      "assert kb entails ghost\n";
  BeliefStore store;
  Result<ScriptReport> report = RunScriptTextLinted(text, &store);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report->steps.size(), 2u);
  EXPECT_TRUE(report->steps[0].lint.empty());
  // The assertion draws both the unconstrained-atom warning and the
  // dataflow proof that it must fail (kb := a never entails ghost).
  ASSERT_EQ(report->steps[1].lint.size(), 2u);
  EXPECT_NE(report->steps[1].lint[0].find("flow/assert-fails"),
            std::string::npos)
      << report->steps[1].lint[0];
  EXPECT_NE(report->steps[1].lint[1].find("script/unconstrained-atom"),
            std::string::npos)
      << report->steps[1].lint[1];
  EXPECT_NE(report->ToString().find("lint:"), std::string::npos);
}

TEST(DimacsLintTest, CleanInstanceIsClean) {
  const auto diags =
      LintDimacsText("t.cnf", "c ok\np cnf 2 2\n1 -2 0\n-1 2 0\n");
  EXPECT_TRUE(diags.empty()) << RenderText(diags);
}

TEST(DimacsLintTest, UnsatInstanceIsReported) {
  const auto diags = LintDimacsText(
      "t.cnf", "p cnf 2 4\n1 2 0\n1 -2 0\n-1 2 0\n-1 -2 0\n");
  EXPECT_TRUE(Has(diags, 1, "dimacs/unsat")) << RenderText(diags);
}

TEST(DimacsLintTest, SolveGateSkipsLargeInstances) {
  LintOptions options;
  options.dimacs_solve_max_vars = 1;
  const auto diags = LintDimacsText(
      "t.cnf", "p cnf 2 4\n1 2 0\n1 -2 0\n-1 2 0\n-1 -2 0\n", options);
  EXPECT_FALSE(Has(diags, 1, "dimacs/unsat")) << RenderText(diags);
}

TEST(DimacsLintTest, EmptyClauseSuppressesSolverReport) {
  const auto diags = LintDimacsText("t.cnf", "p cnf 1 2\n0\n1 0\n");
  EXPECT_TRUE(Has(diags, 2, "dimacs/empty-clause")) << RenderText(diags);
  EXPECT_FALSE(Has(diags, 1, "dimacs/unsat"))
      << "trivial unsat already reported via the empty clause";
}

TEST(DimacsLintTest, MultiLineClausesAndFinalTermination) {
  // A clause may span lines; the terminating 0 matters, not layout.
  EXPECT_TRUE(LintDimacsText("t.cnf", "p cnf 3 1\n1\n2 3 0\n").empty());
  const auto diags = LintDimacsText("t.cnf", "p cnf 2 1\n1 2\n");
  EXPECT_TRUE(Has(diags, 2, "dimacs/syntax")) << RenderText(diags);
}

TEST(WkbLintTest, AgreesWithParserOnValidity) {
  // Lint-clean-of-errors and ParseWeightedKb must accept/reject the
  // same inputs (warnings are lint-only).
  const std::vector<std::string> cases = {
      "wkb 2\n0 1\n3 0.5\n",          // valid
      "wkb 2\n0 1\n0 2\n",            // valid, duplicate warning
      "wkb 2\n# only zeros\n0 0\n",   // valid, unsatisfiable warning
      "wkb 0\n",                      // terms out of range
      "wkb 2\n4 1\n",                 // bits out of range
      "wkb 2\n1 -3\n",                // negative weight
      "wkb 2\n1\n",                   // malformed entry
      "nope\n",                       // malformed header
  };
  for (const std::string& text : cases) {
    const bool lint_ok = Errors(LintWeightedKbText("t.wkb", text)) == 0;
    const bool parse_ok = ParseWeightedKb(text).ok();
    EXPECT_EQ(lint_ok, parse_ok)
        << text << RenderText(LintWeightedKbText("t.wkb", text));
  }
}

TEST(WkbLintTest, RoundTripThroughIo) {
  Result<WeightedKnowledgeBase> base =
      ParseWeightedKb("wkb 3\n0 1.5\n5 2\n7 0.25\n");
  ASSERT_TRUE(base.ok());
  Result<WeightedKnowledgeBase> again = ParseWeightedKb(ToWkbText(*base));
  ASSERT_TRUE(again.ok());
  for (uint64_t i = 0; i < base->space_size(); ++i) {
    EXPECT_EQ(base->Weight(i), again->Weight(i)) << i;
  }
  EXPECT_TRUE(LintWeightedKbText("t.wkb", ToWkbText(*base)).empty());
}

TEST(WkbLintTest, AggregateOverflowWarning) {
  // Individually representable weights whose wdist sum can still
  // exceed 2^53: flagged once, anchored on the header.
  const auto diags = LintWeightedKbText(
      "t.wkb", "wkb 4\n0 3000000000000000\n1 3000000000000000\n");
  EXPECT_TRUE(Has(diags, 1, "wkb/weight-overflow")) << RenderText(diags);
}

TEST(LintDispatchTest, LintTextDispatchesOnKind) {
  EXPECT_TRUE(Has(LintText(InputKind::kBeliefScript, "f", "undo x\n"), 1,
                  "script/use-before-define"));
  EXPECT_TRUE(Has(LintText(InputKind::kDimacsCnf, "f", "garbage\n"), 1,
                  "dimacs/syntax"));
  EXPECT_TRUE(Has(LintText(InputKind::kWeightedKb, "f", "garbage\n"), 1,
                  "wkb/syntax"));
}

// ---------------------------------------------------------------------------
// Deterministic output: NormalizeDiagnostics pins a stable total order
// and removes exact duplicates.

TEST(NormalizeTest, SortsByLocationThenCheckIdAndDedupes) {
  Diagnostic a;
  a.file = "a.belief";
  a.line = 2;
  a.col = 1;
  a.check_id = "script/undo-empty";
  Diagnostic b = a;
  b.check_id = "flow/undo-empty";
  Diagnostic c = a;
  c.line = 1;
  Diagnostic d = a;
  d.file = "b.belief";
  d.line = 1;

  std::vector<Diagnostic> diags = {a, d, b, c, a};  // a twice
  NormalizeDiagnostics(&diags);
  ASSERT_EQ(diags.size(), 4u) << "exact duplicate must be removed";
  EXPECT_EQ(diags[0], c) << "a.belief line 1 first";
  EXPECT_EQ(diags[1], b) << "same line: flow/ sorts before script/";
  EXPECT_EQ(diags[2], a);
  EXPECT_EQ(diags[3], d) << "file is the primary key";
}

TEST(NormalizeTest, KeepsNearDuplicatesThatDifferInMessage) {
  Diagnostic a;
  a.check_id = "script/syntax";
  a.message = "one";
  Diagnostic b = a;
  b.message = "two";
  std::vector<Diagnostic> diags = {b, a};
  NormalizeDiagnostics(&diags);
  ASSERT_EQ(diags.size(), 2u);
  EXPECT_EQ(diags[0].message, "one");
}

// ---------------------------------------------------------------------------
// Fix-its: application semantics and the lint -> fix -> re-lint loop.

TEST(FixItTest, RenderJsonCarriesFixits) {
  Diagnostic d;
  d.file = "x.belief";
  d.check_id = "flow/dead-define";
  d.fixits.push_back(FixIt{0, 5, "abc"});
  const std::string json = RenderJson({d});
  EXPECT_NE(json.find("\"fixits\": [{\"offset\": 0, \"length\": 5, "
                      "\"replacement\": \"abc\"}]"),
            std::string::npos)
      << json;
  EXPECT_NE(RenderJson({Diagnostic{}}).find("\"fixits\": []"),
            std::string::npos)
      << "fixits key must be present even when empty";
}

TEST(FixItTest, ApplyFixItsEditsByteRanges) {
  Diagnostic d;
  d.fixits.push_back(FixIt{6, 5, "world"});
  int applied = 0;
  int skipped = 0;
  EXPECT_EQ(ApplyFixIts("hello there!", {d}, &applied, &skipped),
            "hello world!");
  EXPECT_EQ(applied, 1);
  EXPECT_EQ(skipped, 0);
}

TEST(FixItTest, ApplyFixItsSkipsOverlapsAndOutOfRange) {
  Diagnostic d;
  d.fixits.push_back(FixIt{0, 4, "AAAA"});
  d.fixits.push_back(FixIt{2, 4, "BBBB"});   // overlaps the first
  d.fixits.push_back(FixIt{90, 4, "CCCC"});  // out of range
  d.fixits.push_back(FixIt{0, 4, "AAAA"});   // exact duplicate
  int applied = 0;
  int skipped = 0;
  EXPECT_EQ(ApplyFixIts("0123456789", {d}, &applied, &skipped),
            "AAAA456789");
  EXPECT_EQ(applied, 1);
  EXPECT_EQ(skipped, 1) << "only the genuine overlap counts as skipped";
}

TEST(FixItTest, ApplyAllFixItsReachesAFixpoint) {
  // Line 1 is a dead define (fix: delete); once deleted the remaining
  // script is fix-clean.
  const std::string text =
      "define psi := a\n"
      "define psi := b\n"
      "assert psi entails b\n";
  const FixResult fixed =
      ApplyAllFixIts(InputKind::kBeliefScript, "t.belief", text);
  EXPECT_EQ(fixed.text,
            "define psi := b\n"
            "assert psi entails b\n");
  EXPECT_GE(fixed.applied, 1);
  EXPECT_GE(fixed.iterations, 1);
  for (const Diagnostic& d : LintScriptText("t.belief", fixed.text, {})) {
    EXPECT_TRUE(d.fixits.empty())
        << "fixed text must re-lint free of fixable findings: "
        << d.ToString();
  }
}

TEST(FixItTest, ApplyAllFixItsUnwrapsTautologicalGuards) {
  const FixResult fixed = ApplyAllFixIts(
      InputKind::kBeliefScript, "t.belief",
      "define psi := a\n"
      "change psi by dalal with b\n"
      "if psi entails b | !b then undo psi\n");
  EXPECT_EQ(fixed.text,
            "define psi := a\n"
            "change psi by dalal with b\n"
            "undo psi\n");
}

TEST(FixItTest, ApplyAllFixItsLeavesCleanTextAlone) {
  const std::string text =
      "define psi := a\n"
      "change psi by dalal with b\n";
  const FixResult fixed =
      ApplyAllFixIts(InputKind::kBeliefScript, "t.belief", text);
  EXPECT_EQ(fixed.text, text);
  EXPECT_EQ(fixed.applied, 0);
}

// ---------------------------------------------------------------------------
// SARIF rendering.

TEST(SarifTest, EmitsSchemaRulesAndResults) {
  std::vector<Diagnostic> diags = LintScriptText(
      "t.belief",
      "define psi := a\n"
      "define psi := b\n"
      "assert psi entails b\n",
      {});
  NormalizeDiagnostics(&diags);
  const std::string sarif = RenderSarif(diags);
  EXPECT_NE(sarif.find("json.schemastore.org/sarif-2.1.0.json"),
            std::string::npos);
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
  EXPECT_NE(sarif.find("\"name\": \"arblint\""), std::string::npos);
  // Every registered check appears as a rule.
  for (const CheckInfo& info : AllChecks()) {
    EXPECT_NE(sarif.find("\"id\": \"" + std::string(info.id) + "\""),
              std::string::npos)
        << info.id;
  }
  EXPECT_NE(sarif.find("\"ruleId\": \"flow/dead-define\""),
            std::string::npos);
  EXPECT_NE(sarif.find("\"level\": \"warning\""), std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": 1"), std::string::npos);
  // The dead define's deletion exports as a SARIF fix.
  EXPECT_NE(sarif.find("\"deletedRegion\": {\"charOffset\": 0, "
                       "\"charLength\": 16}"),
            std::string::npos)
      << sarif;
}

TEST(SarifTest, EscapesMessageText) {
  Diagnostic d;
  d.file = "weird\"name.belief";
  d.check_id = "script/syntax";
  d.message = "line\nbreak";
  const std::string sarif = RenderSarif({d});
  EXPECT_NE(sarif.find("weird\\\"name.belief"), std::string::npos);
  EXPECT_NE(sarif.find("line\\nbreak"), std::string::npos);
}

TEST(SarifTest, EmptyDiagnosticsStillValidRun) {
  const std::string sarif = RenderSarif({});
  EXPECT_NE(sarif.find("\"results\": ["), std::string::npos);
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos);
}

TEST(SarifTest, DriverCarriesToolAndSolverVersions) {
  const std::string sarif = RenderSarif({});
  EXPECT_NE(sarif.find(std::string("\"version\": \"") + kArblintVersion +
                       "\""),
            std::string::npos)
      << sarif;
  EXPECT_NE(sarif.find(std::string("\"solver\": \"") + kSolverVersion +
                       "\""),
            std::string::npos)
      << sarif;
}

TEST(SarifTest, CertifiedPropertyOnlyWhenSet) {
  Diagnostic d;
  d.check_id = "script/unsat-define";
  d.message = "m";
  EXPECT_EQ(RenderSarif({d}).find("certified"), std::string::npos);
  d.certified = 0;
  EXPECT_NE(RenderSarif({d}).find("\"properties\": {\"certified\": false}"),
            std::string::npos);
  d.certified = 1;
  EXPECT_NE(RenderSarif({d}).find("\"properties\": {\"certified\": true}"),
            std::string::npos);
}

// --- Certified verdicts (arblint --certify) ------------------------

TEST(ReportTest, RenderJsonReportPinsToolAndSolverVersion) {
  // The version strings are part of the machine-readable surface;
  // bumping util/version.h must be a deliberate act that updates this
  // pin alongside it.
  EXPECT_STREQ(kArblintVersion, "0.4.0");
  EXPECT_STREQ(kSolverVersion, "arbiter-cdcl 0.4.0 (satelite-pre, drat)");
  Diagnostic d;
  d.check_id = "script/syntax";
  d.message = "m";
  const std::string report = RenderJsonReport({d});
  EXPECT_NE(report.find("\"tool\": {\"name\": \"arblint\", \"version\": "
                        "\"0.4.0\", \"solver\": \"arbiter-cdcl 0.4.0 "
                        "(satelite-pre, drat)\"}"),
            std::string::npos)
      << report;
  // The report wraps the plain RenderJson array unchanged.
  EXPECT_NE(report.find("\"diagnostics\": ["), std::string::npos);
  EXPECT_NE(report.find(RenderJson({d})), std::string::npos);
}

class CertifyLintTest : public ::testing::Test {
 protected:
  void TearDown() override {
    arbiter::proof::SetCertificationFailureForTesting(false);
  }
  static LintOptions CertifyOptions() {
    LintOptions options;
    options.certify = true;
    return options;
  }
};

TEST_F(CertifyLintTest, CertifiedVerdictKeepsSeverityAndTagsJson) {
  const auto diags = LintScript("define kb := a & !a\n", CertifyOptions());
  bool found = false;
  for (const Diagnostic& d : diags) {
    if (d.check_id != "script/unsat-define") continue;
    found = true;
    EXPECT_EQ(d.certified, 1);
    EXPECT_EQ(d.severity, Severity::kWarning);
  }
  ASSERT_TRUE(found) << RenderText(diags);
  const std::string json = RenderJson(diags);
  EXPECT_NE(json.find("\"certified\": true"), std::string::npos) << json;
  EXPECT_EQ(json.find("\"certified\": false"), std::string::npos) << json;
}

TEST_F(CertifyLintTest, DefaultModeHasNoCertifiedField) {
  const auto diags = LintScript("define kb := a & !a\n");
  ASSERT_TRUE(Has(diags, 1, "script/unsat-define")) << RenderText(diags);
  for (const Diagnostic& d : diags) EXPECT_EQ(d.certified, -1);
  EXPECT_EQ(RenderJson(diags).find("certified"), std::string::npos);
}

TEST_F(CertifyLintTest, FailedCertificationDowngradesOneNotch) {
  arbiter::proof::SetCertificationFailureForTesting(true);
  const auto diags = LintScript("define kb := a & !a\n", CertifyOptions());
  bool found = false;
  for (const Diagnostic& d : diags) {
    if (d.check_id != "script/unsat-define") continue;
    found = true;
    EXPECT_EQ(d.certified, 0);
    // unsat-define is registered as a warning; uncertified drops it to
    // a note and explains why.
    EXPECT_EQ(d.severity, Severity::kNote);
    EXPECT_NE(d.note.find("could not be certified"), std::string::npos)
        << d.note;
  }
  ASSERT_TRUE(found) << RenderText(diags);
  EXPECT_NE(RenderJson(diags).find("\"certified\": false"),
            std::string::npos);
}

TEST_F(CertifyLintTest, FlowFindingsShareTheOracleCertification) {
  // Flow verdicts are read off the whole fixpoint, so a certification
  // failure anywhere in the oracle taints every flow finding: the
  // flow/unreachable error below downgrades to a warning.
  arbiter::proof::SetCertificationFailureForTesting(true);
  const auto diags = LintScript(
      "define psi := a & !b\n"
      "if psi entails b then undo psi\n"
      "change psi by dalal with a\n",
      CertifyOptions());
  bool found = false;
  for (const Diagnostic& d : diags) {
    if (d.check_id != "flow/unreachable") continue;
    found = true;
    EXPECT_EQ(d.certified, 0);
    EXPECT_EQ(d.severity, Severity::kWarning);
  }
  ASSERT_TRUE(found) << RenderText(diags);
}

TEST_F(CertifyLintTest, FlowFindingsCertifyWhenAllChecksPass) {
  const auto diags = LintScript(
      "define psi := a & !b\n"
      "if psi entails b then undo psi\n"
      "change psi by dalal with a\n",
      CertifyOptions());
  bool found = false;
  for (const Diagnostic& d : diags) {
    if (d.check_id != "flow/unreachable") continue;
    found = true;
    EXPECT_EQ(d.certified, 1);
    EXPECT_EQ(d.severity, Severity::kError);
  }
  ASSERT_TRUE(found) << RenderText(diags);
}

TEST_F(CertifyLintTest, DimacsUnsatVerdictCertifies) {
  // The default DPLL verdict is untouched; under --certify the
  // instance is re-solved with the proof-logging CDCL pipeline and
  // the resulting refutation is checked.
  const auto diags = LintDimacsText(
      "t.cnf", "p cnf 2 4\n1 2 0\n1 -2 0\n-1 2 0\n-1 -2 0\n",
      CertifyOptions());
  bool found = false;
  for (const Diagnostic& d : diags) {
    if (d.check_id != "dimacs/unsat") continue;
    found = true;
    EXPECT_EQ(d.certified, 1);
  }
  ASSERT_TRUE(found) << RenderText(diags);
}

}  // namespace
}  // namespace arbiter::lint
