#include "enc/cardinality.h"

namespace arbiter::enc {

using sat::Lit;
using sat::Solver;

void AddAtMostK(Solver* solver, const std::vector<Lit>& lits, int k) {
  ARBITER_CHECK(solver != nullptr);
  const int n = static_cast<int>(lits.size());
  if (k < 0) {
    solver->AddClause({});  // unsatisfiable
    return;
  }
  if (k >= n) return;
  if (k == 0) {
    for (Lit l : lits) solver->AddUnit(~l);
    return;
  }
  // Sinz sequential counter: registers s[i][j] = "at least j+1 true
  // among lits[0..i]".
  std::vector<std::vector<Lit>> s(n - 1, std::vector<Lit>(k));
  for (int i = 0; i < n - 1; ++i) {
    for (int j = 0; j < k; ++j) s[i][j] = Lit::Pos(solver->NewVar());
  }
  // lits[0] -> s[0][0]
  solver->AddBinary(~lits[0], s[0][0]);
  // !s[0][j] for j >= 1
  for (int j = 1; j < k; ++j) solver->AddUnit(~s[0][j]);
  for (int i = 1; i < n - 1; ++i) {
    // lits[i] -> s[i][0];  s[i-1][0] -> s[i][0]
    solver->AddBinary(~lits[i], s[i][0]);
    solver->AddBinary(~s[i - 1][0], s[i][0]);
    for (int j = 1; j < k; ++j) {
      // lits[i] & s[i-1][j-1] -> s[i][j];  s[i-1][j] -> s[i][j]
      solver->AddTernary(~lits[i], ~s[i - 1][j - 1], s[i][j]);
      solver->AddBinary(~s[i - 1][j], s[i][j]);
    }
    // lits[i] & s[i-1][k-1] -> conflict
    solver->AddBinary(~lits[i], ~s[i - 1][k - 1]);
  }
  // Final element.
  solver->AddBinary(~lits[n - 1], ~s[n - 2][k - 1]);
}

void AddAtLeastK(Solver* solver, const std::vector<Lit>& lits, int k) {
  ARBITER_CHECK(solver != nullptr);
  const int n = static_cast<int>(lits.size());
  if (k <= 0) return;
  if (k > n) {
    solver->AddClause({});
    return;
  }
  // At least k of lits  ==  at most n-k of their negations.
  std::vector<Lit> negs;
  negs.reserve(n);
  for (Lit l : lits) negs.push_back(~l);
  AddAtMostK(solver, negs, n - k);
}

void AddExactlyK(Solver* solver, const std::vector<Lit>& lits, int k) {
  AddAtMostK(solver, lits, k);
  AddAtLeastK(solver, lits, k);
}

Lit EncodeXorEquals(Solver* solver, Lit a, Lit b) {
  ARBITER_CHECK(solver != nullptr);
  Lit d = Lit::Pos(solver->NewVar());
  solver->AddTernary(~d, a, b);
  solver->AddTernary(~d, ~a, ~b);
  solver->AddTernary(d, ~a, b);
  solver->AddTernary(d, a, ~b);
  return d;
}

UnaryCounter::UnaryCounter(Solver* solver, const std::vector<Lit>& lits) {
  ARBITER_CHECK(solver != nullptr);
  const int n = static_cast<int>(lits.size());
  outputs_.resize(n);
  if (n == 0) return;
  // Totalizer-style unary sum built as a chain of merges; we use a
  // simple O(n^2)-clause running-sum construction: row[i][j] = "at
  // least j+1 of the first i+1 inputs are true".
  std::vector<Lit> prev;   // row for prefix length i
  for (int i = 0; i < n; ++i) {
    std::vector<Lit> row(i + 1);
    for (int j = 0; j <= i; ++j) row[j] = Lit::Pos(solver->NewVar());
    if (i == 0) {
      // row[0] <-> lits[0]
      solver->AddBinary(~row[0], lits[0]);
      solver->AddBinary(row[0], ~lits[0]);
    } else {
      for (int j = 0; j <= i; ++j) {
        // row[j] is true iff at least j+1 true among first i+1 inputs:
        //   row[j] <- prev[j]                    (already enough)
        //   row[j] <- prev[j-1] & lits[i]        (becomes enough)
        //   row[j] -> prev[j] | (prev[j-1] & lits[i])
        if (j < i) solver->AddBinary(~prev[j], row[j]);
        if (j == 0) {
          solver->AddBinary(~lits[i], row[0]);
          // row[0] -> prev[0] | lits[i]
          solver->AddTernary(~row[0], prev[0], lits[i]);
        } else {
          if (j - 1 <= i - 1) {
            solver->AddTernary(~prev[j - 1], ~lits[i], row[j]);
          }
          // row[j] -> prev[j] | (prev[j-1] & lits[i])
          // CNF: (!row[j] | prev[j] | prev[j-1]) & (!row[j] | prev[j] | lits[i])
          if (j < i) {
            solver->AddTernary(~row[j], prev[j], prev[j - 1]);
            solver->AddTernary(~row[j], prev[j], lits[i]);
          } else {
            // j == i: prev[j] does not exist (can't have i+1 of i inputs)
            solver->AddBinary(~row[j], prev[j - 1]);
            solver->AddBinary(~row[j], lits[i]);
          }
        }
      }
    }
    prev = std::move(row);
  }
  outputs_ = std::move(prev);
}

}  // namespace arbiter::enc
