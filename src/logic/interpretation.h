#ifndef ARBITER_LOGIC_INTERPRETATION_H_
#define ARBITER_LOGIC_INTERPRETATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "logic/vocabulary.h"
#include "util/bit.h"

/// \file interpretation.h
/// Interpretations I ⊆ T (Section 2) represented as bitmasks.
///
/// Bit i of the mask is set iff term i is true in the interpretation.
/// Dalal's distance dist(I, J) = |I Δ J| is a popcount of the XOR.

namespace arbiter {

/// A propositional interpretation over a vocabulary of `num_terms` terms.
class Interpretation {
 public:
  /// The empty interpretation over n terms.
  explicit Interpretation(int num_terms)
      : bits_(0), num_terms_(num_terms) {
    ARBITER_DCHECK(num_terms >= 0 && num_terms <= kMaxVocabularyTerms);
  }

  /// An interpretation with the given true-term bitmask over n terms.
  Interpretation(uint64_t bits, int num_terms)
      : bits_(bits & LowMask(num_terms)), num_terms_(num_terms) {
    ARBITER_DCHECK(num_terms >= 0 && num_terms <= kMaxVocabularyTerms);
  }

  /// Builds the interpretation making exactly the named terms true.
  static Result<Interpretation> FromNames(
      const Vocabulary& vocab, const std::vector<std::string>& true_terms);

  uint64_t bits() const { return bits_; }
  int num_terms() const { return num_terms_; }

  /// True iff term i is true.  Requires 0 <= i < num_terms().
  bool Holds(int i) const {
    ARBITER_DCHECK(i >= 0 && i < num_terms_);
    return (bits_ >> i) & 1;
  }

  /// Returns a copy with term i set to `value`.
  Interpretation With(int i, bool value) const {
    ARBITER_DCHECK(i >= 0 && i < num_terms_);
    uint64_t b = value ? (bits_ | (1ULL << i)) : (bits_ & ~(1ULL << i));
    return Interpretation(b, num_terms_);
  }

  /// Number of true terms, |I|.
  int Cardinality() const { return PopCount(bits_); }

  /// Dalal's distance |I Δ J| (paper, Section 2).  Both interpretations
  /// must share a vocabulary size.
  int DistanceTo(const Interpretation& other) const {
    ARBITER_DCHECK(num_terms_ == other.num_terms_);
    return PopCount(bits_ ^ other.bits_);
  }

  /// Names of the true terms, e.g. "{S, D}".
  std::string ToString(const Vocabulary& vocab) const;

  /// Bit string, LSB (term 0) first, e.g. "101".
  std::string ToBitString() const;

  bool operator==(const Interpretation& o) const {
    return bits_ == o.bits_ && num_terms_ == o.num_terms_;
  }
  bool operator!=(const Interpretation& o) const { return !(*this == o); }
  bool operator<(const Interpretation& o) const {
    return bits_ < o.bits_;
  }

 private:
  uint64_t bits_;
  int num_terms_;
};

/// Dalal's distance on raw masks: |I Δ J|.
inline int HammingDistance(uint64_t a, uint64_t b) {
  return PopCount(a ^ b);
}

}  // namespace arbiter

#endif  // ARBITER_LOGIC_INTERPRETATION_H_
