#ifndef ARBITER_POSTULATES_COMMUTATIVE_CHECKER_H_
#define ARBITER_POSTULATES_COMMUTATIVE_CHECKER_H_

#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "change/operator.h"
#include "postulates/checker.h"

/// \file commutative_checker.h
/// Postulates for *commutative* arbitration, distilled from the
/// post-1993 literature (Liberatore & Schaerf's arbitration
/// postulates).  Where (A1)-(A8) describe one-sided model-fitting,
/// these describe a symmetric merge ψ ◇ φ:
///
///   (C1) ψ ◇ φ ≡ φ ◇ ψ                                 (commutativity)
///   (C2) ψ ∧ φ implies ψ ◇ φ
///   (C3) if ψ ∧ φ is satisfiable then ψ ◇ φ implies ψ ∧ φ
///   (C4) ψ ◇ φ is unsatisfiable iff ψ and φ both are   (consistency)
///   (C5) ψ ◇ φ implies ψ ∨ φ                           (containment)
///   (C6) equivalent inputs give equivalent outputs     (syntax irrel.)
///   (C7) ψ ◇ (φ1 ∨ φ2) is ψ ◇ φ1, or ψ ◇ φ2, or their disjunction
///                                                       (trichotomy)
///   (C8) for satisfiable ψ and φ:
///        (ψ ◇ φ) ∧ ψ is satisfiable iff (ψ ◇ φ) ∧ φ is  (fairness)
///
/// Revesz's Δ deliberately drops (C5): its consensus may sit strictly
/// between the parties (new interpretations neither asserted).  The
/// checker makes that trade-off measurable.

namespace arbiter {

enum class CommutativePostulate { kC1, kC2, kC3, kC4, kC5, kC6, kC7, kC8 };

/// "C1" ... "C8".
std::string CommutativePostulateName(CommutativePostulate p);

/// One-line informal statement.
std::string CommutativePostulateStatement(CommutativePostulate p);

/// All eight, in order.
std::vector<CommutativePostulate> AllCommutativePostulates();

struct CommutativeCounterexample {
  CommutativePostulate postulate;
  int num_terms;
  SetCode psi = kUnusedCode;
  SetCode phi1 = kUnusedCode;
  SetCode phi2 = kUnusedCode;

  std::string Describe() const;
};

/// Exhaustive checker over every knowledge-base pair/triple of an
/// n-term vocabulary (n <= 3), with memoized Change calls.  The sweep
/// over the outer ψ universe runs on the thread pool; the first
/// counterexample in scan order is reported at any thread count.
class CommutativeChecker {
 public:
  CommutativeChecker(std::shared_ptr<const TheoryChangeOperator> op,
                     int num_terms);

  std::optional<CommutativeCounterexample> CheckExhaustive(
      CommutativePostulate p);

  /// Convenience: the set of postulate names that fail.
  std::vector<std::string> FailingPostulates();

 private:
  SetCode Change(SetCode psi, SetCode phi);
  ModelSet CodeToModelSet(SetCode code) const;

  std::shared_ptr<const TheoryChangeOperator> op_;
  int num_terms_;
  uint64_t space_;
  uint64_t num_codes_;
  /// Lock-free memo (see PostulateChecker::flat_cache_).
  std::unique_ptr<std::atomic<SetCode>[]> cache_;
};

}  // namespace arbiter

#endif  // ARBITER_POSTULATES_COMMUTATIVE_CHECKER_H_
