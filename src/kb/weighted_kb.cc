#include "kb/weighted_kb.h"

#include <algorithm>
#include <cmath>

#include "logic/interpretation.h"
#include "model/distance.h"
#include "util/logging.h"

namespace arbiter {

WeightedKnowledgeBase::WeightedKnowledgeBase(int num_terms)
    : num_terms_(num_terms) {
  ARBITER_CHECK(num_terms >= 0 && num_terms <= kMaxEnumTerms);
  weights_.assign(uint64_t{1} << num_terms, 0.0);
}

WeightedKnowledgeBase WeightedKnowledgeBase::FromModelSet(
    const ModelSet& models) {
  WeightedKnowledgeBase out(models.num_terms());
  for (uint64_t m : models) out.weights_[m] = 1.0;
  return out;
}

WeightedKnowledgeBase WeightedKnowledgeBase::FromFormula(const Formula& f,
                                                         int num_terms) {
  return FromModelSet(ModelSet::FromFormula(f, num_terms));
}

WeightedKnowledgeBase WeightedKnowledgeBase::Uniform(int num_terms,
                                                     double weight) {
  ARBITER_CHECK(weight >= 0);
  WeightedKnowledgeBase out(num_terms);
  std::fill(out.weights_.begin(), out.weights_.end(), weight);
  return out;
}

void WeightedKnowledgeBase::SetWeight(uint64_t bits, double weight) {
  ARBITER_CHECK(bits < space_size());
  ARBITER_CHECK_MSG(weight >= 0, "weights must be nonnegative");
  weights_[bits] = weight;
}

WeightedKnowledgeBase WeightedKnowledgeBase::Or(
    const WeightedKnowledgeBase& other) const {
  ARBITER_CHECK(num_terms_ == other.num_terms_);
  WeightedKnowledgeBase out(num_terms_);
  for (uint64_t i = 0; i < space_size(); ++i) {
    out.weights_[i] = weights_[i] + other.weights_[i];
  }
  return out;
}

WeightedKnowledgeBase WeightedKnowledgeBase::And(
    const WeightedKnowledgeBase& other) const {
  ARBITER_CHECK(num_terms_ == other.num_terms_);
  WeightedKnowledgeBase out(num_terms_);
  for (uint64_t i = 0; i < space_size(); ++i) {
    out.weights_[i] = std::min(weights_[i], other.weights_[i]);
  }
  return out;
}

bool WeightedKnowledgeBase::IsSatisfiable() const {
  for (double w : weights_) {
    if (w > 0) return true;
  }
  return false;
}

bool WeightedKnowledgeBase::Implies(
    const WeightedKnowledgeBase& other) const {
  ARBITER_CHECK(num_terms_ == other.num_terms_);
  for (uint64_t i = 0; i < space_size(); ++i) {
    if (weights_[i] > other.weights_[i]) return false;
  }
  return true;
}

bool WeightedKnowledgeBase::EquivalentTo(
    const WeightedKnowledgeBase& other) const {
  ARBITER_CHECK(num_terms_ == other.num_terms_);
  return weights_ == other.weights_;
}

ModelSet WeightedKnowledgeBase::Support() const {
  std::vector<uint64_t> masks;
  for (uint64_t i = 0; i < space_size(); ++i) {
    if (weights_[i] > 0) masks.push_back(i);
  }
  return ModelSet::FromMasks(std::move(masks), num_terms_);
}

double WeightedKnowledgeBase::WeightedDistTo(uint64_t bits) const {
  ARBITER_CHECK(bits < space_size());
  double total = 0;
  for (uint64_t j = 0; j < space_size(); ++j) {
    if (weights_[j] > 0) {
      total += static_cast<double>(Dist(bits, j)) * weights_[j];
    }
  }
  return total;
}

double WeightedKnowledgeBase::WeightedDistTo(
    uint64_t bits, const DistanceSemantics& semantics) const {
  ARBITER_CHECK(bits < space_size());
  double total = 0;
  for (uint64_t j = 0; j < space_size(); ++j) {
    if (weights_[j] > 0) {
      total +=
          static_cast<double>(MetricDist(semantics, bits, j)) * weights_[j];
    }
  }
  return total;
}

TotalPreorder WeightedKnowledgeBase::WdistPreorder() const {
  ARBITER_CHECK_MSG(IsSatisfiable(),
                    "wdist pre-order needs a satisfiable base");
  return TotalPreorder(num_terms_,
                       [this](uint64_t i) { return WeightedDistTo(i); });
}

TotalPreorder WeightedKnowledgeBase::WdistPreorder(
    const DistanceSemantics& semantics) const {
  ARBITER_CHECK_MSG(IsSatisfiable(),
                    "wdist pre-order needs a satisfiable base");
  return TotalPreorder(num_terms_, [this, &semantics](uint64_t i) {
    return WeightedDistTo(i, semantics);
  });
}

WeightedKnowledgeBase WeightedKnowledgeBase::MinimalBy(
    const TotalPreorder& order) const {
  ARBITER_CHECK(order.num_terms() == num_terms_);
  WeightedKnowledgeBase out(num_terms_);
  ModelSet support = Support();
  if (support.empty()) return out;
  ModelSet minimal = order.MinOf(support);
  for (uint64_t m : minimal) out.weights_[m] = weights_[m];
  return out;
}

std::string WeightedKnowledgeBase::ToString(const Vocabulary& vocab) const {
  ARBITER_CHECK(vocab.size() == num_terms_);
  std::string out = "{";
  bool first = true;
  for (uint64_t i = 0; i < space_size(); ++i) {
    if (weights_[i] <= 0) continue;
    if (!first) out += ", ";
    out += Interpretation(i, num_terms_).ToString(vocab);
    out += ":";
    // Trim trailing zeros for integral weights.  The cast is only
    // defined for values representable as int64_t, so weights at or
    // beyond 2^63 take the plain double path.
    double w = weights_[i];
    if (w < 9223372036854775808.0 && w == std::floor(w)) {
      out += std::to_string(static_cast<int64_t>(w));
    } else {
      out += std::to_string(w);
    }
    first = false;
  }
  out += "}";
  return out;
}

}  // namespace arbiter
