#ifndef ARBITER_CHANGE_RESULT_CACHE_H_
#define ARBITER_CHANGE_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "logic/formula.h"
#include "logic/vocabulary.h"
#include "util/status.h"
#include "util/sync.h"

/// \file result_cache.h
/// Operator-result cache: memoized Mod(ψ ▷ μ).
///
/// KM-style change operators are pure functions of (Mod(ψ), Mod(μ))
/// and the distance semantics, so their results are safely memoizable
/// under a key that pins everything the computation reads:
///
///   backend ⊕ operator ⊕ metric ⊕ vocabulary (ordered names)
///           ⊕ canonical(ψ) ⊕ canonical(μ)
///
/// The ordered vocabulary is part of the key because a cached result
/// is stored as a Formula over term *indices*: two stores sharing the
/// cache may bind the same names to different indices.  Canonical
/// forms come from logic/canonical.h; requests whose canonicalization
/// exceeds its budget are simply not cached (counted as `skipped`).
///
/// The cache is a mutex-guarded LRU safe for concurrent use by many
/// stores/sessions; this is what turns the "millions of users, few
/// distinct KBs" traffic shape into cache hits instead of solver runs.

namespace arbiter {

/// Thread-safe LRU cache of operator results with hit/miss/eviction
/// counters.
class OperatorResultCache {
 public:
  /// A memoized change result: the committed formula, plus the
  /// aggregated optimal distance in decimal when the computing path
  /// produced one (backend paths do; registry enumeration does not).
  struct Value {
    Formula result;
    std::string optimal;
  };

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;
    /// Requests that bypassed the cache (canonicalization over budget).
    uint64_t skipped = 0;
    uint64_t size = 0;
    uint64_t capacity = 0;
  };

  explicit OperatorResultCache(size_t capacity = 1024);

  /// Returns the cached value and refreshes its recency, or nullopt
  /// (counted as hit/miss respectively).
  std::optional<Value> Lookup(const std::string& key);

  /// Inserts or refreshes `key`, evicting the least recently used
  /// entry when at capacity.
  void Insert(const std::string& key, Value value);

  /// Records a request that could not be cached.
  void RecordSkip();

  Stats stats() const;

  void Clear();

 private:
  using LruList = std::list<std::pair<std::string, Value>>;

  /// kResultCache ranks above the store locks (operator calls hit the
  /// cache while a writer batch holds writer_mu) and below the pool
  /// locks (cache methods never call out while holding mu_).
  mutable Mutex mu_{LockRank::kResultCache, "OperatorResultCache::mu_"};
  /// Set in the constructor, immutable afterwards.
  size_t capacity_;
  LruList lru_ GUARDED_BY(mu_);  // front = most recently used
  std::unordered_map<std::string, LruList::iterator> index_ GUARDED_BY(mu_);
  Stats stats_ GUARDED_BY(mu_);
};

/// Builds the canonical cache key described above.  Fails with
/// kCapacityExceeded when either formula exceeds the canonicalization
/// budget (callers should RecordSkip and compute directly).
Result<std::string> OperatorCacheKey(const std::string& backend_name,
                                     const std::string& op_name,
                                     const std::vector<int64_t>& metric,
                                     const Vocabulary& vocab,
                                     const Formula& base,
                                     const Formula& evidence);

}  // namespace arbiter

#endif  // ARBITER_CHANGE_RESULT_CACHE_H_
