// End-to-end proof tests across the solving stack: raw CDCL with a
// DRAT sink, the SatELite pipeline's logging (subsumption, SSR, BVE,
// derived units) translated back to original variables, assumption
// refutations, the CertifyingSolver wrapper, SolveCnfWithProof, the
// certification toggles, and the logging-disabled bit-identity
// guarantee the bench tier relies on.

#include <vector>

#include <gtest/gtest.h>

#include "proof/certify.h"
#include "proof/checker.h"
#include "proof/proof_log.h"
#include "sat/dimacs.h"
#include "sat/preprocessor.h"
#include "sat/solver.h"
#include "test_support/cnf_instances.h"

namespace arbiter::proof {
namespace {

using sat::Lit;
using sat::SolveStatus;
using sat::Var;

Lit P(Var v) { return Lit::Pos(v); }
Lit N(Var v) { return Lit::Neg(v); }

// Tiny instances below must still exercise the real preprocessing
// pipeline, not the size-floor passthrough.
const bool kFloorDropped = [] {
  sat::SetSatPreprocessMinClauses(0);
  return true;
}();

// Checks `proof` against `formula` with the independent checker,
// closing the refutation with an explicit empty clause if the log
// never recorded one (a root conflict logs it; a failed final
// propagation may not).
DratCheckResult CheckProof(const std::vector<std::vector<Lit>>& formula,
                           std::vector<ProofStep> proof) {
  bool closed = false;
  for (const ProofStep& s : proof) {
    if (!s.is_delete && s.lits.empty()) closed = true;
  }
  if (!closed) proof.push_back(ProofStep{false, {}});
  DratChecker checker;
  for (const auto& c : formula) checker.AddFormulaClause(c);
  return checker.Check(proof, DratCheckOptions{});
}

// A clause sink that tees AddClause into a formula copy, so tests can
// drive `Solver`/`SatPreprocessor` directly and still hand the checker
// the exact original clauses.
template <typename Engine>
class RecordedEngine {
 public:
  Var NewVar() { return engine_.NewVar(); }
  void Add(std::vector<Lit> lits) {
    formula_.push_back(lits);
    engine_.AddClause(std::move(lits));
  }
  Engine& engine() { return engine_; }
  const std::vector<std::vector<Lit>>& formula() const { return formula_; }

 private:
  Engine engine_;
  std::vector<std::vector<Lit>> formula_;
};

// ClauseSink adapter over RecordedEngine, for the test_support
// instance builders.
template <typename Engine>
class RecordedSink : public sat::ClauseSink {
 public:
  explicit RecordedSink(RecordedEngine<Engine>* rec) : rec_(rec) {}
  Var NewVar() override { return rec_->NewVar(); }
  int NumVars() const override { return rec_->engine().NumVars(); }
  bool AddClause(std::vector<Lit> lits) override {
    rec_->Add(std::move(lits));
    return true;
  }

 private:
  RecordedEngine<Engine>* rec_;
};

TEST(SolverProofTest, RawCdclUnsatProofCertifies) {
  RecordedEngine<sat::Solver> rec;
  ProofRecorder recorder;
  rec.engine().SetProofLog(&recorder);
  RecordedSink<sat::Solver> sink(&rec);
  test_support::AddPigeonhole(&sink, 3);  // PHP(4,3): UNSAT, needs learning
  ASSERT_EQ(rec.engine().Solve(), SolveStatus::kUnsat);
  const DratCheckResult result = CheckProof(rec.formula(), recorder.steps());
  EXPECT_TRUE(result.ok) << result.error;
  EXPECT_GT(result.stats.additions, 0u);
}

TEST(SolverProofTest, RawCdclLogsReduceDbDeletions) {
  // Big enough that ReduceDB fires; the checker must tolerate (and
  // exploit) the interleaved deletions.
  RecordedEngine<sat::Solver> rec;
  ProofRecorder recorder;
  rec.engine().SetProofLog(&recorder);
  RecordedSink<sat::Solver> sink(&rec);
  test_support::AddPigeonhole(&sink, 5);
  ASSERT_EQ(rec.engine().Solve(), SolveStatus::kUnsat);
  bool saw_delete = false;
  for (const ProofStep& s : recorder.steps()) saw_delete |= s.is_delete;
  EXPECT_TRUE(saw_delete) << "expected learnt-clause evictions in the log";
  const DratCheckResult result = CheckProof(rec.formula(), recorder.steps());
  EXPECT_TRUE(result.ok) << result.error;
}

TEST(SolverProofTest, PreprocessorPipelineProofCertifies) {
  // Pigeonhole through the full SatELite pipeline: derived units,
  // subsumption, strengthening and BVE all log in original numbering.
  RecordedEngine<sat::SatPreprocessor> rec;
  ProofRecorder recorder;
  rec.engine().SetProofLog(&recorder);
  RecordedSink<sat::SatPreprocessor> sink(&rec);
  test_support::AddPigeonhole(&sink, 4);
  ASSERT_EQ(rec.engine().Solve(), SolveStatus::kUnsat);
  const DratCheckResult result = CheckProof(rec.formula(), recorder.steps());
  EXPECT_TRUE(result.ok) << result.error;
}

TEST(SolverProofTest, BveEliminationStepsCertify) {
  // BVE-heavy satisfiable chains plus a contradiction on two inputs:
  // the pipeline eliminates the auxiliaries (logging resolvent adds
  // and original deletes) before the solver refutes the rest.
  RecordedEngine<sat::SatPreprocessor> rec;
  ProofRecorder recorder;
  rec.engine().SetProofLog(&recorder);
  RecordedSink<sat::SatPreprocessor> sink(&rec);
  test_support::AddBveChains(&sink, 3, 4);
  const Var x = rec.NewVar();
  rec.Add({P(x)});
  rec.Add({N(x)});
  ASSERT_EQ(rec.engine().Solve(), SolveStatus::kUnsat);
  const DratCheckResult result = CheckProof(rec.formula(), recorder.steps());
  EXPECT_TRUE(result.ok) << result.error;
}

TEST(SolverProofTest, AssumptionRefutationLogsNegatedCore) {
  // (a | b), (~a | b), assume ~b: UNSAT under assumptions only.  The
  // negated assumption core is DB-implied and must be in the log; with
  // the assumption added as a unit clause the refutation closes.
  RecordedEngine<sat::Solver> rec;
  ProofRecorder recorder;
  rec.engine().SetProofLog(&recorder);
  const Var a = rec.NewVar();
  const Var b = rec.NewVar();
  rec.Add({P(a), P(b)});
  rec.Add({N(a), P(b)});
  ASSERT_EQ(rec.engine().SolveAssuming({N(b)}), SolveStatus::kUnsat);
  auto formula = rec.formula();
  formula.push_back({N(b)});  // the refuted assumption, as a unit
  const DratCheckResult result = CheckProof(formula, recorder.steps());
  EXPECT_TRUE(result.ok) << result.error;
  // The same engine must stay usable without the assumption.
  EXPECT_EQ(rec.engine().Solve(), SolveStatus::kSat);
}

TEST(CertifyingSolverTest, CertifiesUnsatVerdict) {
  CertifyingSolver s(/*enabled=*/true);
  const Var a = s.NewVar();
  const Var b = s.NewVar();
  s.AddClause({P(a), P(b)});
  s.AddClause({P(a), N(b)});
  s.AddClause({N(a), P(b)});
  s.AddClause({N(a), N(b)});
  ASSERT_EQ(s.Solve(), SolveStatus::kUnsat);
  const CertifyOutcome outcome = s.CertifyLastUnsat();
  EXPECT_TRUE(outcome.enabled);
  EXPECT_TRUE(outcome.ok) << outcome.check.error;
}

TEST(CertifyingSolverTest, CertifiesAssumptionUnsat) {
  CertifyingSolver s(/*enabled=*/true);
  const Var a = s.NewVar();
  const Var b = s.NewVar();
  s.AddClause({N(a), P(b)});
  ASSERT_EQ(s.SolveAssuming({P(a), N(b)}), SolveStatus::kUnsat);
  const CertifyOutcome outcome = s.CertifyLastUnsat();
  EXPECT_TRUE(outcome.enabled);
  EXPECT_TRUE(outcome.ok) << outcome.check.error;
}

TEST(CertifyingSolverTest, CertifiesPigeonholeThroughPipeline) {
  CertifyingSolver s(/*enabled=*/true);
  test_support::AddPigeonhole(&s, 4);
  ASSERT_EQ(s.Solve(), SolveStatus::kUnsat);
  const CertifyOutcome outcome = s.CertifyLastUnsat();
  EXPECT_TRUE(outcome.ok) << outcome.check.error;
  // The checker's core is a subset of the formula.
  for (int idx : outcome.check.core) {
    EXPECT_GE(idx, 0);
    EXPECT_LT(idx, static_cast<int>(s.formula().size() +
                                    /*assumption units=*/0u));
  }
}

TEST(CertifyingSolverTest, DisabledWrapperReportsNotEnabled) {
  CertifyingSolver s(/*enabled=*/false);
  const Var a = s.NewVar();
  s.AddClause({P(a)});
  s.AddClause({N(a)});
  ASSERT_EQ(s.Solve(), SolveStatus::kUnsat);
  const CertifyOutcome outcome = s.CertifyLastUnsat();
  EXPECT_FALSE(outcome.enabled);
  EXPECT_FALSE(outcome.ok);
}

TEST(CertifyingSolverTest, ForcedFailureHookReportsUncertified) {
  SetCertificationFailureForTesting(true);
  CertifyingSolver s(/*enabled=*/true);
  const Var a = s.NewVar();
  s.AddClause({P(a)});
  s.AddClause({N(a)});
  ASSERT_EQ(s.Solve(), SolveStatus::kUnsat);
  const CertifyOutcome outcome = s.CertifyLastUnsat();
  SetCertificationFailureForTesting(false);
  EXPECT_TRUE(outcome.enabled);
  EXPECT_FALSE(outcome.ok);
}

TEST(CertifyingSolverTest, SatVerdictStillSat) {
  CertifyingSolver s(/*enabled=*/true);
  const Var a = s.NewVar();
  const Var b = s.NewVar();
  s.AddClause({P(a), P(b)});
  s.AddClause({N(a)});
  ASSERT_EQ(s.Solve(), SolveStatus::kSat);
  EXPECT_FALSE(s.ModelValue(a));
  EXPECT_TRUE(s.ModelValue(b));
}

TEST(CertificationToggleTest, OverrideWinsOverEnvironment) {
  ClearCertificationOverride();
  SetCertificationEnabled(true);
  EXPECT_TRUE(CertificationEnabled());
  SetCertificationEnabled(false);
  EXPECT_FALSE(CertificationEnabled());
  ClearCertificationOverride();
  // Back to the environment default (ARBITER_CERTIFY is not set in the
  // test environment, so off).
  EXPECT_FALSE(CertificationEnabled());
}

sat::CnfInstance PigeonholeCnf(int holes) {
  struct CollectSink : sat::ClauseSink {
    sat::CnfInstance cnf;
    Var NewVar() override { return cnf.num_vars++; }
    int NumVars() const override { return cnf.num_vars; }
    bool AddClause(std::vector<Lit> lits) override {
      cnf.clauses.push_back(std::move(lits));
      return true;
    }
  } sink;
  test_support::AddPigeonhole(&sink, holes);
  return sink.cnf;
}

TEST(SolveCnfWithProofTest, UnsatCertifiesBothPipelines) {
  const sat::CnfInstance cnf = PigeonholeCnf(3);
  for (bool pp : {false, true}) {
    const CnfProofResult r = SolveCnfWithProof(cnf, pp);
    EXPECT_EQ(r.status, SolveStatus::kUnsat);
    EXPECT_TRUE(r.certified) << "pp=" << pp << ": " << r.check.error;
    ASSERT_FALSE(r.proof.empty());
    EXPECT_TRUE(r.proof.back().lits.empty());
  }
}

TEST(SolveCnfWithProofTest, SatReturnsModel) {
  sat::CnfInstance cnf;
  cnf.num_vars = 2;
  cnf.clauses = {{P(0), P(1)}, {N(0), P(1)}};
  for (bool pp : {false, true}) {
    const CnfProofResult r = SolveCnfWithProof(cnf, pp);
    ASSERT_EQ(r.status, SolveStatus::kSat) << "pp=" << pp;
    ASSERT_EQ(r.model.size(), 2u);
    EXPECT_TRUE(r.model[1]);  // 1 is forced
  }
}

// The disabled-mode guarantee: a solver without a sink must behave
// bit-identically to one with a sink — same verdicts, same search
// statistics, same models.  (The bench tier measures the time side of
// the same claim; this pins the behavioral side in ctest.)
TEST(DisabledModeTest, LoggingDoesNotPerturbSearch) {
  for (int holes : {3, 4}) {
    sat::Solver plain;
    sat::Solver logged;
    ProofRecorder recorder;
    logged.SetProofLog(&recorder);
    struct DirectSink : sat::ClauseSink {
      sat::Solver* s;
      explicit DirectSink(sat::Solver* s) : s(s) {}
      Var NewVar() override { return s->NewVar(); }
      int NumVars() const override { return s->NumVars(); }
      bool AddClause(std::vector<Lit> lits) override {
        return s->AddClause(std::move(lits));
      }
    } plain_sink(&plain), logged_sink(&logged);
    test_support::AddPigeonhole(&plain_sink, holes);
    test_support::AddPigeonhole(&logged_sink, holes);
    ASSERT_EQ(plain.Solve(), SolveStatus::kUnsat);
    ASSERT_EQ(logged.Solve(), SolveStatus::kUnsat);
    const sat::SolverStats& a = plain.stats();
    const sat::SolverStats& b = logged.stats();
    EXPECT_EQ(a.decisions, b.decisions);
    EXPECT_EQ(a.propagations, b.propagations);
    EXPECT_EQ(a.conflicts, b.conflicts);
    EXPECT_EQ(a.restarts, b.restarts);
    EXPECT_EQ(a.learnt_clauses, b.learnt_clauses);
    EXPECT_EQ(a.learnt_literals, b.learnt_literals);
    EXPECT_EQ(a.reduce_db_runs, b.reduce_db_runs);
  }
}

TEST(DisabledModeTest, PreprocessorResultsMatchWithAndWithoutLogging) {
  RecordedEngine<sat::SatPreprocessor> plain;
  RecordedEngine<sat::SatPreprocessor> logged;
  ProofRecorder recorder;
  logged.engine().SetProofLog(&recorder);
  RecordedSink<sat::SatPreprocessor> ps(&plain), ls(&logged);
  test_support::AddBveChains(&ps, 2, 3);
  test_support::AddBveChains(&ls, 2, 3);
  plain.engine().Preprocess();
  logged.engine().Preprocess();
  EXPECT_EQ(plain.engine().pstats().eliminated_vars,
            logged.engine().pstats().eliminated_vars);
  EXPECT_EQ(plain.engine().pstats().subsumed_clauses,
            logged.engine().pstats().subsumed_clauses);
  EXPECT_EQ(plain.engine().pstats().strengthened_literals,
            logged.engine().pstats().strengthened_literals);
  ASSERT_EQ(plain.engine().Solve(), SolveStatus::kSat);
  ASSERT_EQ(logged.engine().Solve(), SolveStatus::kSat);
  for (Var v = 0; v < plain.engine().NumVars(); ++v) {
    EXPECT_EQ(plain.engine().ModelValue(v), logged.engine().ModelValue(v))
        << "var " << v;
  }
}

}  // namespace
}  // namespace arbiter::proof
