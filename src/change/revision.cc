#include "change/revision.h"

#include <vector>

#include "model/distance.h"
#include "model/distance_semantics.h"
#include "model/preorder.h"

namespace arbiter {

namespace {

/// Collects the set-inclusion-minimal elements of `masks` (each mask a
/// symmetric-difference set).  Quadratic; fine for enumeration scales.
std::vector<uint64_t> InclusionMinimal(std::vector<uint64_t> masks) {
  std::sort(masks.begin(), masks.end());
  masks.erase(std::unique(masks.begin(), masks.end()), masks.end());
  std::vector<uint64_t> minimal;
  for (uint64_t a : masks) {
    bool dominated = false;
    for (uint64_t b : masks) {
      if (b != a && (b & a) == b) {  // b ⊂ a
        dominated = true;
        break;
      }
    }
    if (!dominated) minimal.push_back(a);
  }
  return minimal;
}

/// Per-model inclusion-minimal change: the J ∈ mu whose diff with I is
/// ⊆-minimal among {I Δ J' : J' ∈ mu}.  Used by Winslett-style updates
/// and Borgida's inconsistent branch.
std::vector<uint64_t> PointwiseInclusionClosest(uint64_t i,
                                                const ModelSet& mu) {
  std::vector<uint64_t> result;
  for (uint64_t j : mu) {
    uint64_t diff = i ^ j;
    bool dominated = false;
    for (uint64_t j2 : mu) {
      uint64_t diff2 = i ^ j2;
      if (diff2 != diff && (diff2 & diff) == diff2) {  // diff2 ⊂ diff
        dominated = true;
        break;
      }
    }
    if (!dominated) result.push_back(j);
  }
  return result;
}

}  // namespace

ModelSet DalalRevision::Change(const ModelSet& psi,
                               const ModelSet& mu) const {
  // Min-aggregated Dalal metric; the semantics layer owns the edge
  // conventions (μ unsat → empty, ψ unsat → μ).
  return SemanticArgmin(MinSemantics(), psi, mu);
}

ModelSet SatohRevision::Change(const ModelSet& psi,
                               const ModelSet& mu) const {
  ARBITER_CHECK(psi.num_terms() == mu.num_terms());
  if (mu.empty()) return ModelSet(mu.num_terms());
  if (psi.empty()) return mu;
  // All pairwise difference sets.
  std::vector<uint64_t> diffs;
  diffs.reserve(psi.size() * mu.size());
  for (uint64_t i : psi) {
    for (uint64_t j : mu) diffs.push_back(i ^ j);
  }
  std::vector<uint64_t> minimal = InclusionMinimal(std::move(diffs));
  auto is_minimal = [&minimal](uint64_t d) {
    for (uint64_t m : minimal) {
      if (m == d) return true;
    }
    return false;
  };
  std::vector<uint64_t> result;
  for (uint64_t j : mu) {
    for (uint64_t i : psi) {
      if (is_minimal(i ^ j)) {
        result.push_back(j);
        break;
      }
    }
  }
  return ModelSet::FromMasks(std::move(result), mu.num_terms());
}

ModelSet WeberRevision::Change(const ModelSet& psi,
                               const ModelSet& mu) const {
  ARBITER_CHECK(psi.num_terms() == mu.num_terms());
  if (mu.empty()) return ModelSet(mu.num_terms());
  if (psi.empty()) return mu;
  std::vector<uint64_t> diffs;
  diffs.reserve(psi.size() * mu.size());
  for (uint64_t i : psi) {
    for (uint64_t j : mu) diffs.push_back(i ^ j);
  }
  uint64_t relevant = 0;  // union of all minimal difference sets
  for (uint64_t d : InclusionMinimal(std::move(diffs))) relevant |= d;
  std::vector<uint64_t> result;
  for (uint64_t j : mu) {
    for (uint64_t i : psi) {
      if (((i ^ j) & ~relevant) == 0) {
        result.push_back(j);
        break;
      }
    }
  }
  return ModelSet::FromMasks(std::move(result), mu.num_terms());
}

ModelSet FullMeetRevision::Change(const ModelSet& psi,
                                  const ModelSet& mu) const {
  ARBITER_CHECK(psi.num_terms() == mu.num_terms());
  ModelSet both = psi.Intersect(mu);
  return both.empty() ? mu : both;
}

ModelSet BorgidaRevision::Change(const ModelSet& psi,
                                 const ModelSet& mu) const {
  ARBITER_CHECK(psi.num_terms() == mu.num_terms());
  if (mu.empty()) return ModelSet(mu.num_terms());
  if (psi.empty()) return mu;
  ModelSet both = psi.Intersect(mu);
  if (!both.empty()) return both;
  std::vector<uint64_t> result;
  for (uint64_t i : psi) {
    for (uint64_t j : PointwiseInclusionClosest(i, mu)) {
      result.push_back(j);
    }
  }
  return ModelSet::FromMasks(std::move(result), mu.num_terms());
}

}  // namespace arbiter
