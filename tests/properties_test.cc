// Structural operator properties (exhaustive at n = 2), reproducing
// the paper's Section 3 argument: "all update operators are monotone"
// (KM92) while "no non-trivial revision operator can be monotone"
// (Gärdenfors' impossibility theorem) — hence revision ∩ update = ∅.
// Commutativity separates arbitration from both.

#include "change/properties.h"

#include <gtest/gtest.h>

#include "change/registry.h"

namespace arbiter {
namespace {

std::shared_ptr<const TheoryChangeOperator> Op(const std::string& name) {
  return MakeOperator(name).ValueOrDie();
}

TEST(MonotonyTest, AllUpdateOperatorsAreMonotone) {
  for (const char* name : {"winslett", "forbus"}) {
    auto cex = CheckMonotone(*Op(name), 2);
    EXPECT_FALSE(cex.has_value()) << name << ": " << cex->description;
    EXPECT_FALSE(CheckMonotone(*Op(name), 3).has_value()) << name;
  }
}

TEST(MonotonyTest, NoRevisionOperatorIsMonotone) {
  for (const char* name : {"dalal", "satoh", "weber", "borgida"}) {
    auto cex = CheckMonotone(*Op(name), 2);
    EXPECT_TRUE(cex.has_value()) << name;
    EXPECT_EQ(cex->property, "monotone");
  }
}

TEST(MonotonyTest, FittingOperatorsNeedNotBeMonotone) {
  EXPECT_TRUE(CheckMonotone(*Op("revesz-max"), 2).has_value());
  EXPECT_TRUE(CheckMonotone(*Op("revesz-sum"), 2).has_value());
  // The psi-oblivious control is trivially monotone.
  EXPECT_FALSE(CheckMonotone(*Op("lex-fitting"), 2).has_value());
}

TEST(CommutativityTest, OnlyArbitrationOperatorsCommute) {
  for (const char* name : {"arbitration-max", "arbitration-sum",
                           "two-sided-dalal", "two-sided-satoh"}) {
    EXPECT_FALSE(CheckCommutative(*Op(name), 2).has_value()) << name;
  }
  for (const char* name : {"dalal", "satoh", "weber", "borgida",
                           "winslett", "forbus", "revesz-max",
                           "revesz-sum", "lex-fitting"}) {
    EXPECT_TRUE(CheckCommutative(*Op(name), 2).has_value()) << name;
  }
}

TEST(IdempotenceTest, RevisionAndUpdateAreIdempotent) {
  for (const char* name :
       {"dalal", "satoh", "weber", "borgida", "winslett", "forbus",
        "lex-fitting"}) {
    EXPECT_FALSE(CheckIdempotent(*Op(name), 2).has_value()) << name;
  }
}

TEST(IdempotenceTest, FittingIsNotIdempotent) {
  // Re-fitting the fitted result against the same mu can move again:
  // the overall-closeness rank is relative to psi, which has changed.
  EXPECT_TRUE(CheckIdempotent(*Op("revesz-max"), 2).has_value());
  EXPECT_TRUE(CheckIdempotent(*Op("revesz-sum"), 2).has_value());
}

TEST(AssociativityTest, ArbitrationIsNotAssociative) {
  // Merging voices pairwise depends on the order — the reason k-ary
  // merging (merge.h) exists as its own primitive.
  for (const char* name : {"arbitration-max", "two-sided-dalal"}) {
    auto cex = CheckAssociative(*Op(name), 2);
    EXPECT_TRUE(cex.has_value()) << name;
  }
  // The psi-oblivious control happens to be associative.
  EXPECT_FALSE(CheckAssociative(*Op("lex-fitting"), 2).has_value());
}

TEST(SuccessTest, OneSidedOperatorsSatisfySuccess) {
  for (const char* name :
       {"dalal", "satoh", "weber", "borgida", "winslett", "forbus",
        "revesz-max", "revesz-sum", "lex-fitting"}) {
    EXPECT_FALSE(CheckSuccess(*Op(name), 2).has_value()) << name;
  }
  // Arbitration deliberately does not: both voices are negotiable.
  EXPECT_TRUE(CheckSuccess(*Op("arbitration-max"), 2).has_value());
  EXPECT_TRUE(CheckSuccess(*Op("two-sided-dalal"), 2).has_value());
}

TEST(VacuityTest, RevisionsAndTwoSidedArbitrationKeepConsistentJoins) {
  for (const char* name :
       {"dalal", "satoh", "weber", "borgida", "two-sided-dalal"}) {
    EXPECT_FALSE(CheckVacuity(*Op(name), 2).has_value()) << name;
  }
  for (const char* name : {"winslett", "revesz-max", "arbitration-max"}) {
    EXPECT_TRUE(CheckVacuity(*Op(name), 2).has_value()) << name;
  }
}

TEST(PropertiesTest, CounterexamplesAreDescriptive) {
  auto cex = CheckMonotone(*Op("dalal"), 2);
  ASSERT_TRUE(cex.has_value());
  EXPECT_NE(cex->description.find("psi="), std::string::npos);
}

}  // namespace
}  // namespace arbiter
