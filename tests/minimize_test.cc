// Tests for Quine–McCluskey DNF minimization.

#include "logic/minimize.h"

#include <gtest/gtest.h>

#include <set>

#include "logic/parser.h"
#include "logic/printer.h"
#include "logic/semantics.h"
#include "util/random.h"

namespace arbiter {
namespace {

TEST(MinimizeTest, TrivialCases) {
  EXPECT_TRUE(MinimizeToDnf({}, 3).is_false());
  EXPECT_TRUE(MinimizeToDnf({0, 1, 2, 3}, 2).is_true());
  EXPECT_TRUE(MinimizeToDnf({0}, 0).is_true());
}

TEST(MinimizeTest, SingleVariablePatterns) {
  // Models where p0 is true: {1, 3} over 2 terms -> just "p0".
  Formula f = MinimizeToDnf({0b01, 0b11}, 2);
  EXPECT_TRUE(f.is_var());
  EXPECT_EQ(f.var(), 0);
  // Models where p1 is false -> "!p1".
  Formula g = MinimizeToDnf({0b00, 0b01}, 2);
  EXPECT_EQ(ToString(g), "!p1");
}

TEST(MinimizeTest, ClassicTextbookExample) {
  // f(a,b,c) with models {0,1,2,5,6,7}: minimal DNF has 2-3 terms vs
  // 6 minterms.
  std::vector<uint64_t> models = {0, 1, 2, 5, 6, 7};
  Formula f = MinimizeToDnf(models, 3);
  EXPECT_EQ(EnumerateModels(f, 3), models);
  EXPECT_LT(f.Size(), FormulaFromModels(models, 3).Size());
}

TEST(MinimizeTest, XorHasNoCompression) {
  // Parity cannot be compressed: primes are the minterms themselves.
  std::vector<uint64_t> odd = {0b001, 0b010, 0b100, 0b111};
  std::vector<Implicant> primes = PrimeImplicants(odd, 3);
  EXPECT_EQ(primes.size(), 4u);
  for (const Implicant& p : primes) {
    EXPECT_EQ(p.care_mask, 0b111u);
  }
}

TEST(MinimizeTest, EquivalentToMintermDnfOnRandomSets) {
  Rng rng(2025);
  for (int n = 1; n <= 6; ++n) {
    for (int round = 0; round < 30; ++round) {
      std::vector<uint64_t> models;
      for (uint64_t m = 0; m < (1ULL << n); ++m) {
        if (rng.NextBool(0.4)) models.push_back(m);
      }
      Formula minimized = MinimizeToDnf(models, n);
      EXPECT_EQ(EnumerateModels(minimized, n), models)
          << "n=" << n << " round=" << round;
      EXPECT_LE(minimized.Size(), FormulaFromModels(models, n).Size() + 1)
          << "minimization must not blow up";
    }
  }
}

TEST(MinimizeTest, PrimeImplicantsCoverAndStayInside) {
  Rng rng(404);
  for (int round = 0; round < 30; ++round) {
    std::vector<uint64_t> models;
    for (uint64_t m = 0; m < 16; ++m) {
      if (rng.NextBool(0.4)) models.push_back(m);
    }
    if (models.empty()) continue;
    std::vector<Implicant> primes = PrimeImplicants(models, 4);
    std::set<uint64_t> model_set(models.begin(), models.end());
    for (const Implicant& p : primes) {
      // Soundness: every model covered by a prime is a model.
      for (uint64_t m = 0; m < 16; ++m) {
        if (p.Covers(m)) {
          EXPECT_TRUE(model_set.count(m)) << m;
        }
      }
    }
    // Completeness: every model is covered by some prime.
    for (uint64_t m : models) {
      bool covered = false;
      for (const Implicant& p : primes) covered |= p.Covers(m);
      EXPECT_TRUE(covered) << m;
    }
  }
}

TEST(MinimizeTest, PrimesAreMaximal) {
  // No prime may be contained in (weaker than) another.
  std::vector<uint64_t> models = {0, 1, 2, 5, 6, 7};
  std::vector<Implicant> primes = PrimeImplicants(models, 3);
  for (const Implicant& a : primes) {
    for (const Implicant& b : primes) {
      if (a == b) continue;
      // a subsumed by b: b's cares ⊆ a's cares and values agree there.
      bool subsumed = (b.care_mask & ~a.care_mask) == 0 &&
                      (a.value & b.care_mask) == b.value;
      EXPECT_FALSE(subsumed);
    }
  }
}

TEST(MinimizeTest, DuplicatesInInputAreFine) {
  Formula f = MinimizeToDnf({1, 1, 3, 3}, 2);
  EXPECT_EQ(EnumerateModels(f, 2), (std::vector<uint64_t>{1, 3}));
}

}  // namespace
}  // namespace arbiter
