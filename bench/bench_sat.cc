// Microbenchmarks for the SAT substrate: the production tier
// (SatPreprocessor in front of the arena CDCL solver) vs the raw
// solver and the DPLL baseline, on random 3-CNF (below, at, and above
// the satisfiability phase transition), pigeonhole, and BVE-heavy
// instances.
//
// Emits solver counters (conflicts/s, propagations/s, preprocessing
// stats) per arm, plus hardware_concurrency and build-type context so
// recorded JSON is interpretable across machines (the PR 1 bench
// numbers could not be told apart from a 1-core container run).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "logic/generator.h"
#include "proof/certify.h"
#include "proof/proof_log.h"
#include "sat/dpll.h"
#include "sat/preprocessor.h"
#include "sat/solver.h"
#include "solve/dalal_sat.h"
#include "test_support/cnf_instances.h"
#include "util/random.h"

namespace {

using namespace arbiter;
using sat::DpllSolver;
using sat::Lit;
using sat::SatPreprocessor;
using sat::Solver;
using test_support::AddBveChains;
using test_support::AddPigeonhole;
using test_support::LoadKCnf;

// Attaches per-second rate counters from solver stats accumulated over
// the timed region.
void ReportSolverRates(benchmark::State& state, uint64_t conflicts,
                       uint64_t propagations) {
  state.counters["conflicts/iter"] = benchmark::Counter(
      static_cast<double>(conflicts), benchmark::Counter::kAvgIterations);
  state.counters["conflicts/s"] = benchmark::Counter(
      static_cast<double>(conflicts), benchmark::Counter::kIsRate);
  state.counters["props/s"] = benchmark::Counter(
      static_cast<double>(propagations), benchmark::Counter::kIsRate);
}

// The production solving tier: preprocessing + arena CDCL, as used by
// src/solve/ and src/lint/.  Arm names are kept from the pre-tier
// bench so BENCH_sat.json stays comparable across PRs.
void BM_CdclRandom3Cnf(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const double ratio = static_cast<double>(state.range(1)) / 10.0;
  const int clauses = static_cast<int>(n * ratio);
  Rng rng(n * 31 + clauses);
  uint64_t conflicts = 0;
  uint64_t propagations = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Formula f = RandomKCnf(&rng, n, clauses, 3);
    SatPreprocessor solver;
    for (int i = 0; i < n; ++i) solver.NewVar();
    LoadKCnf(f, &solver);
    state.ResumeTiming();
    benchmark::DoNotOptimize(solver.Solve());
    conflicts += solver.solver().stats().conflicts;
    propagations += solver.solver().stats().propagations;
  }
  ReportSolverRates(state, conflicts, propagations);
}
BENCHMARK(BM_CdclRandom3Cnf)
    ->Args({50, 30})    // under-constrained (SAT)
    ->Args({50, 43})    // phase transition
    ->Args({50, 55})    // over-constrained (UNSAT)
    ->Args({100, 43})
    ->Args({150, 43})
    ->Args({200, 43});

// The raw solver with no preprocessing pass, for isolating the
// contribution of each layer of the tier.
void BM_RawCdclRandom3Cnf(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const double ratio = static_cast<double>(state.range(1)) / 10.0;
  const int clauses = static_cast<int>(n * ratio);
  Rng rng(n * 31 + clauses);
  uint64_t conflicts = 0;
  uint64_t propagations = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Formula f = RandomKCnf(&rng, n, clauses, 3);
    Solver solver;
    for (int i = 0; i < n; ++i) solver.NewVar();
    LoadKCnf(f, &solver);
    state.ResumeTiming();
    benchmark::DoNotOptimize(solver.Solve());
    conflicts += solver.stats().conflicts;
    propagations += solver.stats().propagations;
  }
  ReportSolverRates(state, conflicts, propagations);
}
BENCHMARK(BM_RawCdclRandom3Cnf)->Args({50, 43})->Args({150, 43});

void BM_DpllRandom3Cnf(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int clauses = static_cast<int>(n * 4.3);
  Rng rng(n * 17);
  for (auto _ : state) {
    state.PauseTiming();
    Formula f = RandomKCnf(&rng, n, clauses, 3);
    DpllSolver solver(n);
    for (auto& lits : test_support::KCnfClauses(f)) {
      solver.AddClause(std::move(lits));
    }
    state.ResumeTiming();
    benchmark::DoNotOptimize(solver.Solve());
  }
}
BENCHMARK(BM_DpllRandom3Cnf)->Arg(20)->Arg(30)->Arg(40);

void BM_CdclPigeonhole(benchmark::State& state) {
  const int holes = static_cast<int>(state.range(0));
  uint64_t conflicts = 0;
  uint64_t propagations = 0;
  uint64_t eliminated = 0;
  for (auto _ : state) {
    state.PauseTiming();
    SatPreprocessor solver;
    AddPigeonhole(&solver, holes);
    state.ResumeTiming();
    benchmark::DoNotOptimize(solver.Solve());
    conflicts += solver.solver().stats().conflicts;
    propagations += solver.solver().stats().propagations;
    eliminated += solver.pstats().eliminated_vars;
  }
  ReportSolverRates(state, conflicts, propagations);
  state.counters["eliminated/iter"] = benchmark::Counter(
      static_cast<double>(eliminated), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_CdclPigeonhole)->Arg(5)->Arg(6)->Arg(7);

void BM_RawCdclPigeonhole(benchmark::State& state) {
  const int holes = static_cast<int>(state.range(0));
  uint64_t conflicts = 0;
  uint64_t propagations = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Solver solver;
    AddPigeonhole(&solver, holes);
    state.ResumeTiming();
    benchmark::DoNotOptimize(solver.Solve());
    conflicts += solver.stats().conflicts;
    propagations += solver.stats().propagations;
  }
  ReportSolverRates(state, conflicts, propagations);
}
BENCHMARK(BM_RawCdclPigeonhole)->Arg(6)->Arg(7);

// DRAT logging overhead: identical to BM_CdclPigeonhole except an
// in-memory proof sink is attached, so the delta between the two arms
// is the cost of recording every learnt/deleted clause.  (With no sink
// attached the logging hooks are single-branch no-ops; the bit-identity
// test in proof_solver_test.cc pins that.)
void BM_CdclPigeonholeProofLogged(benchmark::State& state) {
  const int holes = static_cast<int>(state.range(0));
  uint64_t conflicts = 0;
  uint64_t propagations = 0;
  uint64_t steps = 0;
  for (auto _ : state) {
    state.PauseTiming();
    SatPreprocessor solver;
    proof::ProofRecorder recorder;
    solver.SetProofLog(&recorder);
    AddPigeonhole(&solver, holes);
    state.ResumeTiming();
    benchmark::DoNotOptimize(solver.Solve());
    conflicts += solver.solver().stats().conflicts;
    propagations += solver.solver().stats().propagations;
    steps += recorder.steps().size();
  }
  ReportSolverRates(state, conflicts, propagations);
  state.counters["proof_steps/iter"] = benchmark::Counter(
      static_cast<double>(steps), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_CdclPigeonholeProofLogged)->Arg(5)->Arg(6)->Arg(7);

// The full certified pipeline — proof-logged solve plus the
// independent DRAT checker's backward verification of the refutation.
void BM_CertifyPigeonhole(benchmark::State& state) {
  const int holes = static_cast<int>(state.range(0));
  uint64_t steps = 0;
  for (auto _ : state) {
    state.PauseTiming();
    proof::CertifyingSolver solver(/*enabled=*/true);
    AddPigeonhole(&solver, holes);
    state.ResumeTiming();
    benchmark::DoNotOptimize(solver.Solve());
    const proof::CertifyOutcome outcome = solver.CertifyLastUnsat();
    if (!outcome.ok) state.SkipWithError("refutation rejected");
    steps += solver.BuildProof().size();
  }
  state.counters["proof_steps/iter"] = benchmark::Counter(
      static_cast<double>(steps), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_CertifyPigeonhole)->Arg(5)->Arg(6)->Arg(7);

// Preprocessing throughput on an instance BVE can mostly dissolve:
// measures the occurrence-list/subsumption machinery itself.
void BM_PreprocessBveChains(benchmark::State& state) {
  const int chains = static_cast<int>(state.range(0));
  const int length = static_cast<int>(state.range(1));
  uint64_t eliminated = 0;
  for (auto _ : state) {
    state.PauseTiming();
    SatPreprocessor solver;
    AddBveChains(&solver, chains, length);
    solver.FreezeRange(0, chains * length);
    state.ResumeTiming();
    solver.Preprocess();
    benchmark::DoNotOptimize(solver.Solve());
    eliminated += solver.pstats().eliminated_vars;
  }
  state.counters["eliminated/iter"] = benchmark::Counter(
      static_cast<double>(eliminated), benchmark::Counter::kAvgIterations);
}
BENCHMARK(BM_PreprocessBveChains)->Args({10, 50})->Args({50, 100});

// End-to-end Dalal revision through the SAT tier, recorded here so the
// number lands in BENCH_sat.json.  A single random 3-CNF instance is
// trajectory-noisy (the old n=36 arm swung several-fold between runs
// on its one fixed seed), so each iteration times 8 seeded instances
// and reports the median.  Seed 0 is the original bench_solve seed
// (n*3), keeping history comparable.
constexpr int kDalalSweepSeeds = 8;

void BM_SatDalalReviseSweep(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  std::vector<std::pair<Formula, Formula>> instances;
  instances.reserve(kDalalSweepSeeds);
  for (int s = 0; s < kDalalSweepSeeds; ++s) {
    Rng rng(static_cast<uint64_t>(n) * 3 + 101 * s);
    Formula psi = RandomKCnf(&rng, n, 2 * n, 3);
    Formula mu = RandomKCnf(&rng, n, 2 * n, 3);
    instances.emplace_back(std::move(psi), std::move(mu));
  }
  for (auto _ : state) {
    std::array<double, kDalalSweepSeeds> seconds;
    for (int s = 0; s < kDalalSweepSeeds; ++s) {
      const auto start = std::chrono::steady_clock::now();
      benchmark::DoNotOptimize(solve::SatDalalRevise(
          instances[s].first, instances[s].second, n, /*max_models=*/1));
      const auto stop = std::chrono::steady_clock::now();
      seconds[s] = std::chrono::duration<double>(stop - start).count();
    }
    std::nth_element(seconds.begin(),
                     seconds.begin() + kDalalSweepSeeds / 2, seconds.end());
    state.SetIterationTime(seconds[kDalalSweepSeeds / 2]);
  }
}
BENCHMARK(BM_SatDalalReviseSweep)
    ->Arg(28)
    ->Arg(36)
    ->UseManualTime()
    ->Unit(benchmark::kMillisecond);

void BM_UnitPropagationThroughput(benchmark::State& state) {
  // A long implication chain: measures raw propagation speed.
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    Solver solver;
    std::vector<sat::Var> v;
    for (int i = 0; i < n; ++i) v.push_back(solver.NewVar());
    for (int i = 0; i + 1 < n; ++i) {
      solver.AddBinary(Lit::Neg(v[i]), Lit::Pos(v[i + 1]));
    }
    solver.AddUnit(Lit::Pos(v[0]));
    state.ResumeTiming();
    benchmark::DoNotOptimize(solver.Solve());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_UnitPropagationThroughput)->Arg(1000)->Arg(10000);

}  // namespace

int main(int argc, char** argv) {
  benchmark::AddCustomContext(
      "hardware_concurrency",
      std::to_string(std::thread::hardware_concurrency()));
#ifdef NDEBUG
  benchmark::AddCustomContext("arbiter_build_type", "Release");
#else
  benchmark::AddCustomContext("arbiter_build_type", "Debug");
#endif
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
