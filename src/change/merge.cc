#include "change/merge.h"

#include <algorithm>

#include "model/distance.h"
#include "util/logging.h"

namespace arbiter {

const char* MergeAggregateName(MergeAggregate aggregate) {
  switch (aggregate) {
    case MergeAggregate::kSum:
      return "sum";
    case MergeAggregate::kGMax:
      return "gmax";
    case MergeAggregate::kMax:
      return "max";
  }
  return "unknown";
}

ModelSet Merge(const std::vector<ModelSet>& sources, const ModelSet& mu,
               MergeAggregate aggregate) {
  const int n = mu.num_terms();
  std::vector<const ModelSet*> live;
  for (const ModelSet& s : sources) {
    ARBITER_CHECK(s.num_terms() == n);
    if (!s.empty()) live.push_back(&s);
  }
  if (live.empty() || mu.empty()) return ModelSet(n);

  // Per-candidate distance vectors.
  auto dist_vector = [&live](uint64_t i) {
    std::vector<int> d;
    d.reserve(live.size());
    for (const ModelSet* s : live) d.push_back(MinDist(*s, i));
    return d;
  };

  switch (aggregate) {
    case MergeAggregate::kSum: {
      int64_t best = -1;
      std::vector<uint64_t> out;
      for (uint64_t i : mu) {
        int64_t total = 0;
        for (const ModelSet* s : live) total += MinDist(*s, i);
        if (best < 0 || total < best) {
          best = total;
          out.clear();
        }
        if (total == best) out.push_back(i);
      }
      return ModelSet::FromMasks(std::move(out), n);
    }
    case MergeAggregate::kMax: {
      int best = -1;
      std::vector<uint64_t> out;
      for (uint64_t i : mu) {
        int worst = 0;
        for (const ModelSet* s : live) worst = std::max(worst, MinDist(*s, i));
        if (best < 0 || worst < best) {
          best = worst;
          out.clear();
        }
        if (worst == best) out.push_back(i);
      }
      return ModelSet::FromMasks(std::move(out), n);
    }
    case MergeAggregate::kGMax: {
      std::vector<int> best;
      std::vector<uint64_t> out;
      for (uint64_t i : mu) {
        std::vector<int> d = dist_vector(i);
        std::sort(d.begin(), d.end(), std::greater<int>());
        if (out.empty() || d < best) {
          best = d;
          out.clear();
          out.push_back(i);
        } else if (d == best) {
          out.push_back(i);
        }
      }
      return ModelSet::FromMasks(std::move(out), n);
    }
  }
  ARBITER_CHECK_MSG(false, "unreachable aggregate");
  return ModelSet(n);
}

ModelSet Merge(const std::vector<ModelSet>& sources,
               MergeAggregate aggregate) {
  ARBITER_CHECK(!sources.empty());
  return Merge(sources, ModelSet::Full(sources[0].num_terms()), aggregate);
}

WeightedKnowledgeBase MergeWeighted(
    const std::vector<WeightedKnowledgeBase>& sources,
    const WeightedKnowledgeBase& constraint) {
  const int n = constraint.num_terms();
  WeightedKnowledgeBase combined(n);
  for (const WeightedKnowledgeBase& s : sources) {
    ARBITER_CHECK(s.num_terms() == n);
    combined = combined.Or(s);
  }
  if (!combined.IsSatisfiable() || !constraint.IsSatisfiable()) {
    return WeightedKnowledgeBase(n);
  }
  return constraint.MinimalBy(combined.WdistPreorder());
}

WeightedKnowledgeBase MergeWeighted(
    const std::vector<WeightedKnowledgeBase>& sources) {
  ARBITER_CHECK(!sources.empty());
  return MergeWeighted(
      sources, WeightedKnowledgeBase::Uniform(sources[0].num_terms()));
}

}  // namespace arbiter
