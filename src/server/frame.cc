#include "server/frame.h"

#include <streambuf>

#include "util/string_util.h"

namespace arbiter::server {

namespace {

enum class LineOutcome { kLine, kEof, kTooLong };

/// Bounded line read straight off the streambuf: a hostile peer
/// sending gigabytes without a newline hits kMaxLineBytes instead of
/// growing a std::string without limit.
LineOutcome ReadLineBounded(std::istream& in, std::string* out) {
  out->clear();
  std::streambuf* sb = in.rdbuf();
  bool saw_any = false;
  while (true) {
    const int c = sb->sbumpc();
    if (c == std::char_traits<char>::eof()) {
      in.setstate(std::ios::eofbit);
      return saw_any ? LineOutcome::kLine : LineOutcome::kEof;
    }
    saw_any = true;
    if (c == '\n') return LineOutcome::kLine;
    if (out->size() >= kMaxLineBytes) return LineOutcome::kTooLong;
    out->push_back(static_cast<char>(c));
  }
}

void StripTrailingCr(std::string* line) {
  if (!line->empty() && line->back() == '\r') line->pop_back();
}

bool IsToken(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (c == ' ' || c == '\t' || c == '\n' || c == '\r') return false;
  }
  return true;
}

}  // namespace

std::string FlattenLine(const std::string& text) {
  std::string out = text;
  for (char& c : out) {
    if (c == '\n' || c == '\r') c = ' ';
  }
  return out;
}

ReadOutcome ReadFrame(std::istream& in, Frame* frame, std::string* error) {
  std::string line;
  // Skip blank separator lines before the header.
  while (true) {
    switch (ReadLineBounded(in, &line)) {
      case LineOutcome::kEof:
        return ReadOutcome::kEof;
      case LineOutcome::kTooLong:
        *error = "protocol line exceeds " + std::to_string(kMaxLineBytes) +
                 " bytes";
        return ReadOutcome::kError;
      case LineOutcome::kLine:
        break;
    }
    StripTrailingCr(&line);
    if (!Trim(line).empty()) break;
  }

  std::vector<std::string> parts = Split(Trim(line), ' ');
  // Split may produce empty tokens on repeated spaces; drop them.
  std::vector<std::string> tokens;
  for (std::string& part : parts) {
    if (!part.empty()) tokens.push_back(std::move(part));
  }
  if (tokens.empty()) {
    *error = "empty frame header";
    return ReadOutcome::kError;
  }

  const std::string& verb = tokens[0];
  if (verb == "PING" || verb == "SHUTDOWN") {
    if (tokens.size() != 2 || !IsToken(tokens[1])) {
      *error = "malformed " + verb + " header: expected '" + verb + " <id>'";
      return ReadOutcome::kError;
    }
    frame->kind = verb == "PING" ? Frame::Kind::kPing : Frame::Kind::kShutdown;
    frame->id = tokens[1];
    frame->store.clear();
    frame->statements.clear();
    return ReadOutcome::kFrame;
  }
  if (verb != "BATCH") {
    *error = "unknown frame verb \"" + FlattenLine(verb) + "\"";
    return ReadOutcome::kError;
  }
  if (tokens.size() != 4) {
    *error = "malformed BATCH header: expected 'BATCH <id> <store> <n>'";
    return ReadOutcome::kError;
  }
  int64_t count = 0;
  if (!IsToken(tokens[1]) || !IsToken(tokens[2]) ||
      !ParseInt64(tokens[3], &count) || count < 0) {
    *error = "malformed BATCH header: expected 'BATCH <id> <store> <n>'";
    return ReadOutcome::kError;
  }
  if (static_cast<size_t>(count) > kMaxFrameStatements) {
    *error = "BATCH of " + std::to_string(count) + " statements exceeds the " +
             std::to_string(kMaxFrameStatements) + "-statement limit";
    return ReadOutcome::kError;
  }
  frame->kind = Frame::Kind::kBatch;
  frame->id = tokens[1];
  frame->store = tokens[2];
  frame->statements.clear();
  frame->statements.reserve(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) {
    switch (ReadLineBounded(in, &line)) {
      case LineOutcome::kEof:
        *error = "stream ended inside a BATCH body (" + std::to_string(i) +
                 " of " + std::to_string(count) + " statements read)";
        return ReadOutcome::kError;
      case LineOutcome::kTooLong:
        *error = "statement line exceeds " + std::to_string(kMaxLineBytes) +
                 " bytes";
        return ReadOutcome::kError;
      case LineOutcome::kLine:
        break;
    }
    StripTrailingCr(&line);
    frame->statements.push_back(line);
  }
  return ReadOutcome::kFrame;
}

void WriteReply(std::ostream& out, const std::string& id, uint64_t epoch,
                const std::vector<std::string>& lines) {
  out << "REPLY " << FlattenLine(id) << ' ' << epoch << ' ' << lines.size()
      << '\n';
  for (const std::string& line : lines) out << FlattenLine(line) << '\n';
  out.flush();
}

void WritePong(std::ostream& out, const std::string& id) {
  out << "PONG " << FlattenLine(id) << '\n';
  out.flush();
}

void WriteBye(std::ostream& out, const std::string& id) {
  out << "BYE " << FlattenLine(id) << '\n';
  out.flush();
}

void WriteError(std::ostream& out, const std::string& message) {
  out << "ERR " << FlattenLine(message) << '\n';
  out.flush();
}

}  // namespace arbiter::server
