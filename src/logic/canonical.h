#ifndef ARBITER_LOGIC_CANONICAL_H_
#define ARBITER_LOGIC_CANONICAL_H_

#include <cstdint>
#include <string>

#include "logic/formula.h"
#include "logic/vocabulary.h"
#include "util/status.h"

/// \file canonical.h
/// Canonical syntactic forms — the cache-key substrate.
///
/// Katsuno–Mendelzon-style operators are pure functions of
/// (Mod(ψ), Mod(μ)) and the distance semantics, so an operator result
/// may be memoized under any key that identifies the *models* of its
/// inputs.  Full semantic canonization (a truth table or BDD) is as
/// expensive as the operator itself; instead we use a cheap syntactic
/// normal form that is insensitive to the noise real traffic actually
/// produces — reordered conjuncts/disjuncts, duplicated clauses,
/// double negation, vocabulary index permutation:
///
///   * the formula is rewritten into negation normal form on the fly
///     (polarity propagation; →, ↔, ⊕ expanded),
///   * ∧/∨ are flattened, their children rendered, sorted, and
///     deduplicated; ⊤/⊥ are folded,
///   * terms appear by *name*, so two stores that registered the same
///     terms in different order produce the same form.
///
/// CNF input therefore yields a canonical CNF rendering (sorted
/// clauses of sorted literals).  Distinct canonical texts may still be
/// logically equivalent — that only costs a cache miss, never
/// soundness.
///
/// ↔/⊕ chains can expand exponentially under NNF, so rendering runs
/// under a node budget; exceeding it returns kCapacityExceeded, which
/// cache layers treat as "this request is not cacheable" rather than
/// as a failure of the underlying operation.

namespace arbiter {

/// Default canonicalization work budget (visited nodes).
inline constexpr int64_t kDefaultCanonicalBudget = 1 << 20;

/// Renders the canonical form of `f` with term names from `vocab`.
/// Requires f.MaxVar() < vocab.size().  Fails with kCapacityExceeded
/// when NNF expansion exceeds `max_nodes` visited nodes.
Result<std::string> CanonicalFormText(
    const Formula& f, const Vocabulary& vocab,
    int64_t max_nodes = kDefaultCanonicalBudget);

}  // namespace arbiter

#endif  // ARBITER_LOGIC_CANONICAL_H_
